// Benchmarks regenerating every table and figure in the paper's evaluation
// (testing.B over the experiment registry, Quick configuration), plus
// micro-benchmarks of the substrates that bound experiment runtime.
//
//	go test -bench=. -benchmem
package thinbench_test

import (
	"testing"

	"thinbench"
	"thinbench/internal/bitmapcache"
	"thinbench/internal/display"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/sched"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

// benchExperiment regenerates one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := thinbench.QuickConfig()
		cfg.Seed = uint64(1999 + i)
		if _, err := thinbench.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1IdleActivity(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2CumulativeIdle(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3StallVsLoad(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4WebAnimations(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5AnimationProtocols(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6CacheOverflow(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7CacheCliff(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8RTTvsLoad(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9JitterVsLoad(b *testing.B)       { benchExperiment(b, "fig9") }

func BenchmarkTab1SystemMemory(b *testing.B)       { benchExperiment(b, "tab1") }
func BenchmarkTab2SessionMemory(b *testing.B)      { benchExperiment(b, "tab2") }
func BenchmarkTab3PagingLatency(b *testing.B)      { benchExperiment(b, "tab3") }
func BenchmarkTab4SessionSetup(b *testing.B)       { benchExperiment(b, "tab4") }
func BenchmarkTab5ProtocolComparison(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkTab6VIPSavings(b *testing.B)         { benchExperiment(b, "tab6") }

// Ablations beyond the paper.

func BenchmarkAblationLoopAwareCache(b *testing.B)       { benchExperiment(b, "abl1") }
func BenchmarkAblationInteractiveScheduler(b *testing.B) { benchExperiment(b, "abl2") }
func BenchmarkAblationMemoryReservation(b *testing.B)    { benchExperiment(b, "abl3") }
func BenchmarkAblationQuantumStretch(b *testing.B)       { benchExperiment(b, "abl4") }
func BenchmarkAblationRelatedWorkProtocols(b *testing.B) { benchExperiment(b, "abl5") }
func BenchmarkCapacityByProfile(b *testing.B)            { benchExperiment(b, "cap1") }

// Substrate micro-benchmarks.

func BenchmarkSchedulerDispatch(b *testing.B) {
	eng := simclock.NewEngine()
	cpu := sched.NewCPU(eng, sched.NewNTSched(sched.DefaultNTConfig()), simclock.Second)
	threads := make([]*sched.Thread, 16)
	for i := range threads {
		threads[i] = cpu.NewThread("t", 4+i%8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Submit(threads[i%len(threads)], &sched.WorkItem{Tag: "job", CPU: 100 * simclock.Microsecond})
		if i%64 == 63 {
			eng.RunFor(100 * simclock.Millisecond)
		}
	}
	eng.RunFor(simclock.Minute)
}

func BenchmarkRDPEncodeUpdate(b *testing.B) {
	srv := rdp.NewServer(rdp.DefaultConfig())
	ops := []display.Op{
		display.FillRect{Rect: display.Rect{X: 0, Y: 0, W: 300, H: 200}, Color: 2},
		display.DrawText{X: 10, Y: 10, Text: "benchmark text", Color: 1},
		display.PutBitmap{X: 50, Y: 50, Img: display.SyntheticPhoto(1, 0, 64, 64)},
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range srv.Update(ops) {
			bytes += int64(m.Size())
		}
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkXEncodeUpdate(b *testing.B) {
	srv := xwire.NewServer()
	ops := []display.Op{
		display.FillRect{Rect: display.Rect{X: 0, Y: 0, W: 300, H: 200}, Color: 2},
		display.DrawText{X: 10, Y: 10, Text: "benchmark text", Color: 1},
		display.PutBitmap{X: 50, Y: 50, Img: display.SyntheticPhoto(1, 0, 64, 64)},
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range srv.Update(ops) {
			bytes += int64(m.Size())
		}
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkLBXEncodeUpdate(b *testing.B) {
	srv := lbx.NewServer(lbx.DefaultConfig())
	ops := []display.Op{
		display.FillRect{Rect: display.Rect{X: 0, Y: 0, W: 300, H: 200}, Color: 2},
		display.DrawText{X: 10, Y: 10, Text: "benchmark text", Color: 1},
		display.PutBitmap{X: 50, Y: 50, Img: display.SyntheticFrame(1, 0, 64, 64)},
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range srv.Update(ops) {
			bytes += int64(m.Size())
		}
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkBitmapCacheFetch(b *testing.B) {
	c := bitmapcache.NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(bitmapcache.Key(i%128), 12*1024)
	}
}

func BenchmarkProtocolRoundTrip(b *testing.B) {
	cfg := rdp.DefaultConfig()
	srv := rdp.NewServer(cfg)
	cli := rdp.NewClient(cfg)
	img := display.SyntheticPhoto(3, 0, 64, 64)
	ops := []display.Op{display.PutBitmap{X: 10, Y: 10, Img: img}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range srv.Update(ops) {
			if err := cli.Apply(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkOfficeTraceGeneration(b *testing.B) {
	cfg := workload.DefaultOfficeConfig()
	cfg.TypingChars = 300
	cfg.PaintStrokes = 12
	cfg.PanelActions = 4
	cfg.ReviewScrolls = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := workload.OfficeTrace(cfg)
		if tr.Ops() == 0 {
			b.Fatal("empty trace")
		}
	}
}
