// Package thinbench is a reproduction, as a Go library, of Wong & Seltzer,
// "Operating System Support for Multi-User, Remote, Graphical Interaction"
// (USENIX Annual Technical Conference 2000).
//
// The paper is a measurement study of thin-client server operating systems
// — Windows NT Terminal Server Edition versus Linux with the X Window
// System — organized around one idea: user behavior generates resource
// load, and operating system design translates that load into
// user-perceived latency. This package provides that evaluation framework
// plus simulated implementations of every system the paper measures:
//
//   - a CPU scheduler simulator with the NT/TSE policy (priority levels,
//     30 ms quanta, quantum stretching, GUI wake boosts, balance-set
//     anti-starvation), the paper's round-robin model of Linux, and the
//     SVR4 interactive-class scheduler of Evans et al.;
//   - a virtual memory simulator (frame pool, clock replacement, swap cost
//     model) reproducing the §5.2 paging pathology and its fixes;
//   - a shared-Ethernet network simulator for the load/latency/jitter
//     relationship of Figures 8-9;
//   - three remote display protocols over real byte streams: RDP-like
//     (orders, batching, RLE, glyph and bitmap caches), X11-like (verbose
//     requests, 32-byte events), and LBX-like (transcoding, DEFLATE,
//     chunking);
//   - the 1.5 MB LRU client bitmap cache and a loop-aware extension;
//   - workload generators for every behavior in the paper (keystroke
//     repeat, office applications, banner ads, marquee tickers, looping
//     animations, CPU sinks, memory streamers).
//
// Every table and figure in the paper's evaluation is a registered
// Experiment; run them all with RunAll or individually via Lookup. The
// cmd/thinbench command is a CLI front end over the same registry.
package thinbench

import (
	"thinbench/internal/core"
	"thinbench/internal/latency"
	"thinbench/internal/simclock"
)

// Config controls experiment execution: the random seed (identical seeds
// reproduce identical results bit-for-bit) and the Quick flag, which
// shortens measurement windows while preserving every result's shape.
type Config = core.Config

// Experiment is one reproducible table or figure from the paper.
type Experiment = core.Experiment

// Result is an experiment's output: tables, series, and notes comparing
// against what the paper reports.
type Result = core.Result

// Series is one labeled data series of a figure.
type Series = core.Series

// System identifies an evaluated operating system configuration.
type System = core.System

// The paper's three systems.
const (
	SystemLinuxX        = core.SystemLinuxX
	SystemNTWorkstation = core.SystemNTWorkstation
	SystemTSE           = core.SystemTSE
)

// PerceptionThreshold is the 100 ms human perception limit the paper
// evaluates latency against.
const PerceptionThreshold = latency.PerceptionThreshold

// DefaultConfig runs experiments at the paper's measurement durations with
// the default seed.
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig runs experiments with shortened measurement windows, for
// smoke tests and benchmarks.
func QuickConfig() Config { return Config{Seed: 1999, Quick: true} }

// Experiments lists every registered experiment (figures fig1..fig9,
// tables tab1..tab6, ablations abl1..abl4), sorted by ID.
func Experiments() []Experiment { return core.Experiments() }

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) { return core.Lookup(id) }

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	exp, ok := core.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return exp.Run(cfg)
}

// RunAll executes every experiment in ID order.
func RunAll(cfg Config) ([]*Result, error) { return core.RunAll(cfg) }

// RunAllParallel executes every experiment across a concurrent session
// farm of the given worker count (<= 0 means GOMAXPROCS). Results are
// identical to RunAll — experiments are deterministic in the seed and
// share no state — only wall-clock time changes.
func RunAllParallel(cfg Config, workers int) ([]*Result, error) {
	return core.RunAllParallel(cfg, workers)
}

// UnknownExperimentError reports a Run call with an unregistered ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "thinbench: unknown experiment " + e.ID
}

// Duration re-exports the simulator's virtual time span type for callers
// configuring custom scenarios through the examples.
type Duration = simclock.Duration

// Common duration units.
const (
	Microsecond = simclock.Microsecond
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
)
