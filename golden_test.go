package thinbench_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"thinbench/internal/benchdoc"
)

// TestBenchBaselinesBitIdentical regenerates every checked-in BENCH
// document in-process, with the exact parameters its command line
// records, and golden-diffs the result against the file. Every field
// present in the checked-in baseline must be byte-for-byte unchanged —
// this is the repo-local version of CI's regenerate-and-diff jobs, and
// the proof that a refactor (like churn compiling through the schedule
// layer) preserved every number it inherited.
//
// The helper tolerates fields ADDED by newer code, so a future PR that
// extends a result type reuses this test unchanged: it regenerates the
// baselines, checks them in, and the old fields must still match.
func TestBenchBaselinesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("bench regeneration in -short mode")
	}
	regen := map[string]func() (any, error){
		"BENCH_contention.json": func() (any, error) {
			return benchdoc.Contention("1..16", "rdp,x,lbx", "rr,nt", false, 1999, 0)
		},
		"BENCH_shard.json": func() (any, error) {
			return benchdoc.Shard("6..30", "roundrobin,memaware,lataware", 3, false, 1999, 0)
		},
		"BENCH_churn.json": func() (any, error) {
			return benchdoc.Churn("22", "roundrobin,memaware,lataware", "0,0.15,0.3", 3, 2, 4, false, 1999, 0)
		},
		"BENCH_schedule.json": func() (any, error) {
			return benchdoc.Schedule("15", "officeday,flat", "roundrobin,lataware", 3, 2, 2, false, 1999, 0)
		},
	}
	for path, build := range regen {
		t.Run(path, func(t *testing.T) {
			t.Parallel()
			doc, err := build()
			if err != nil {
				t.Fatal(err)
			}
			assertGoldenSubset(t, path, doc)
		})
	}
}

// assertGoldenSubset checks that every field of the checked-in JSON
// baseline at path appears, with an identical value, in the regenerated
// document. Numbers compare by their JSON token text, so a drift of one
// ulp fails. Fields present only in the regenerated document are allowed
// (they are what a future PR checks in); fields missing from it are not.
func assertGoldenSubset(t *testing.T, path string, doc any) {
	t.Helper()
	baseline, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var want, got any
	if err := decodeNumbers(baseline, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if err := decodeNumbers(fresh, &got); err != nil {
		t.Fatal(err)
	}
	if diff := subsetDiff("", want, got); diff != "" {
		t.Fatalf("%s drifted from the checked-in baseline:\n%s", path, diff)
	}
}

func decodeNumbers(data []byte, v *any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// subsetDiff reports the first place the baseline's fields are missing or
// changed in the regenerated tree; empty means the baseline is a subset.
func subsetDiff(at string, want, got any) string {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: baseline has an object, regenerated has %T", at, got)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Sprintf("%s.%s: present in baseline, missing from regenerated", at, k)
			}
			if d := subsetDiff(at+"."+k, wv, gv); d != "" {
				return d
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Sprintf("%s: baseline has an array, regenerated has %T", at, got)
		}
		if len(w) != len(g) {
			return fmt.Sprintf("%s: baseline array has %d elements, regenerated %d", at, len(w), len(g))
		}
		for i := range w {
			if d := subsetDiff(fmt.Sprintf("%s[%d]", at, i), w[i], g[i]); d != "" {
				return d
			}
		}
	case json.Number:
		g, ok := got.(json.Number)
		if !ok || w.String() != g.String() {
			return fmt.Sprintf("%s: baseline %v, regenerated %v", at, want, got)
		}
	default:
		if want != got {
			return fmt.Sprintf("%s: baseline %v, regenerated %v", at, want, got)
		}
	}
	return ""
}
