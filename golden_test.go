package thinbench_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"thinbench/internal/benchdoc"
	"thinbench/internal/speed"
)

// baseline registers one checked-in BENCH document with the shared golden
// harness: how to regenerate it, which fields are machine-dependent
// (ignored), and which are ratcheted rather than diffed exactly. A future
// PR adding a sixth baseline appends one entry here.
type baseline struct {
	path  string
	build func() (any, error)
	// volatile names leaf fields that vary between machines or runs
	// (wall-clock rates, raw allocation counts): present in the baseline
	// for the record, never diffed.
	volatile []string
	// ratchet names numeric leaf fields gated against regression instead
	// of diffed exactly: the regenerated value may be at most ratchetTol
	// above the baseline (lower always passes — that is an improvement to
	// check in).
	ratchet []string
	// serial marks a baseline whose regeneration must not share the
	// process with concurrent tests (allocation counting reads the
	// process-global MemStats).
	serial bool
}

// ratchetTol is the allowed relative regression on ratcheted fields: wide
// enough to absorb the few-alloc runtime jitter that survives the farm's
// serial fast path (GC-timing-dependent allocations, worth well under a
// tenth of a percent), tight enough that a real allocation regression
// fails. Tightened from 2% once the farm worker pool and serial path
// stabilized the raw counts, and again to 0.5% after round 3 removed the
// per-event closures whose GC-timing jitter needed the wider band.
const ratchetTol = 0.005

func baselines() []baseline {
	volatileSpeed := benchdoc.SpeedVolatileFields()
	// Raw allocs ratchet alongside the per-event ratio now that the farm's
	// pooled workers and serial fast path keep the counts stable run to
	// run. The race detector changes allocation counts wholesale; under
	// -race only the event counts stay comparable.
	ratchetSpeed := []string{"allocs_per_event", "allocs"}
	if speed.RaceEnabled {
		volatileSpeed = append(volatileSpeed, "allocs", "allocs_per_event")
		ratchetSpeed = nil
	}
	return []baseline{
		{
			path: "BENCH_contention.json",
			build: func() (any, error) {
				return benchdoc.Contention("1..16", "rdp,x,lbx", "rr,nt", false, 1999, 0)
			},
		},
		{
			path: "BENCH_shard.json",
			build: func() (any, error) {
				return benchdoc.Shard("6..30", "roundrobin,memaware,lataware", 3, false, 1999, 0)
			},
		},
		{
			path: "BENCH_churn.json",
			build: func() (any, error) {
				return benchdoc.Churn("22", "roundrobin,memaware,lataware", "0,0.15,0.3", 3, 2, 4, false, 1999, 0)
			},
		},
		{
			path: "BENCH_schedule.json",
			build: func() (any, error) {
				return benchdoc.Schedule("15", "officeday,flat", "roundrobin,lataware", 3, 2, 2, false, 1999, 0)
			},
		},
		{
			path: "BENCH_control.json",
			build: func() (any, error) {
				return benchdoc.Control("officeday,shiftchange", 2, 0, false, 1999, 0)
			},
		},
		{
			path: "BENCH_speed.json",
			build: func() (any, error) {
				return benchdoc.Speed(false, 1999, 1, "")
			},
			volatile: volatileSpeed,
			ratchet:  ratchetSpeed,
			serial:   true,
		},
	}
}

// TestBenchBaselinesBitIdentical regenerates every checked-in BENCH
// document in-process, with the exact parameters its command line
// records, and golden-diffs the result against the file. Every field
// present in the checked-in baseline must be byte-for-byte unchanged
// (volatile fields excepted, ratcheted fields gated) — this is the
// repo-local version of CI's regenerate-and-diff jobs, and the proof that
// a refactor (like the calendar-queue event scheduler) preserved every
// number it inherited.
//
// The helper tolerates fields ADDED by newer code, so a future PR that
// extends a result type reuses this test unchanged: it regenerates the
// baselines, checks them in, and the old fields must still match.
func TestBenchBaselinesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("bench regeneration in -short mode")
	}
	for _, b := range baselines() {
		b := b
		t.Run(b.path, func(t *testing.T) {
			if !b.serial {
				// Serial entries run to completion inline, before any
				// parallel sibling starts, keeping the process quiet for
				// their allocation counting.
				t.Parallel()
			}
			doc, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			assertGoldenSubset(t, b, doc)
		})
	}
}

// assertGoldenSubset checks that every field of the checked-in JSON
// baseline appears, with an identical value, in the regenerated document.
// Numbers compare by their JSON token text, so a drift of one ulp fails.
// Fields present only in the regenerated document are allowed (they are
// what a future PR checks in); fields missing from it are not.
func assertGoldenSubset(t *testing.T, b baseline, doc any) {
	t.Helper()
	raw, err := os.ReadFile(b.path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var want, got any
	if err := decodeNumbers(raw, &want); err != nil {
		t.Fatalf("%s: %v", b.path, err)
	}
	if err := decodeNumbers(fresh, &got); err != nil {
		t.Fatal(err)
	}
	d := differ{volatile: toSet(b.volatile), ratchet: toSet(b.ratchet)}
	if diff := d.subsetDiff("", want, got); diff != "" {
		t.Fatalf("%s drifted from the checked-in baseline:\n%s", b.path, diff)
	}
}

func toSet(fields []string) map[string]bool {
	if len(fields) == 0 {
		return nil
	}
	m := make(map[string]bool, len(fields))
	for _, f := range fields {
		m[f] = true
	}
	return m
}

func decodeNumbers(data []byte, v *any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// differ walks baseline and regenerated trees in lockstep. Field-name
// classification applies at any depth, so "wall_ms" is volatile wherever a
// workload entry nests.
type differ struct {
	volatile map[string]bool
	ratchet  map[string]bool
}

// subsetDiff reports the first place the baseline's fields are missing or
// changed in the regenerated tree; empty means the baseline is a subset.
func (d differ) subsetDiff(at string, want, got any) string {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Sprintf("%s: baseline has an object, regenerated has %T", at, got)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Sprintf("%s.%s: present in baseline, missing from regenerated", at, k)
			}
			if d.volatile[k] {
				continue
			}
			if d.ratchet[k] {
				if diff := ratchetDiff(at+"."+k, wv, gv); diff != "" {
					return diff
				}
				continue
			}
			if diff := d.subsetDiff(at+"."+k, wv, gv); diff != "" {
				return diff
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Sprintf("%s: baseline has an array, regenerated has %T", at, got)
		}
		if len(w) != len(g) {
			return fmt.Sprintf("%s: baseline array has %d elements, regenerated %d", at, len(w), len(g))
		}
		for i := range w {
			if diff := d.subsetDiff(fmt.Sprintf("%s[%d]", at, i), w[i], g[i]); diff != "" {
				return diff
			}
		}
	case json.Number:
		g, ok := got.(json.Number)
		if !ok || w.String() != g.String() {
			return fmt.Sprintf("%s: baseline %v, regenerated %v", at, want, got)
		}
	default:
		if want != got {
			return fmt.Sprintf("%s: baseline %v, regenerated %v", at, want, got)
		}
	}
	return ""
}

// ratchetDiff gates a numeric field against regression: the regenerated
// value may exceed the baseline by at most ratchetTol (relatively). A
// lower value passes — improvements are checked in by regenerating the
// baseline.
func ratchetDiff(at string, want, got any) string {
	wn, wok := want.(json.Number)
	gn, gok := got.(json.Number)
	if !wok || !gok {
		return fmt.Sprintf("%s: ratchet field is not numeric (baseline %T, regenerated %T)", at, want, got)
	}
	wf, err1 := wn.Float64()
	gf, err2 := gn.Float64()
	if err1 != nil || err2 != nil {
		return fmt.Sprintf("%s: ratchet field parse (%v, %v)", at, err1, err2)
	}
	if gf > wf*(1+ratchetTol) {
		return fmt.Sprintf("%s: regression past the ratchet: baseline %v, regenerated %v (tolerance %g%%)",
			at, wn, gn, ratchetTol*100)
	}
	return ""
}
