// Typing: build the paper's Figure 3 measurement by hand from the
// scheduler substrate — a 20 Hz repeating key against a growing pile of
// CPU-bound "sink" processes — and watch the three schedulers diverge.
//
//	go run ./examples/typing
package main

import (
	"fmt"

	"thinbench/internal/latency"
	"thinbench/internal/sched"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

// measure runs one condition: nSinks CPU hogs, a 20 Hz key repeat, and the
// keystroke pipeline editor -> display encoder.
func measure(mk func() sched.Scheduler, interactive bool, nSinks int) latency.Report {
	eng := simclock.NewEngine()
	cpu := sched.NewCPU(eng, mk(), simclock.Second)

	editor := cpu.NewThread("editor", 9)
	editor.GUIBoost = true
	editor.Interactive = interactive
	encoder := cpu.NewThread("encoder", 8)
	encoder.Interactive = interactive

	for i := 0; i < nSinks; i++ {
		sink := cpu.NewThread(fmt.Sprintf("sink%d", i), 8)
		cpu.Submit(sink, &sched.WorkItem{Tag: "sink", CPU: simclock.Duration(1e12)})
	}

	tracker := latency.NewStallTracker(50 * simclock.Millisecond)
	tracker.Observe(0)
	span := 15 * simclock.Second
	for _, at := range workload.KeystrokeTimes(workload.TypingConfig{Rate: 20, Span: span}) {
		cpu.SubmitAt(at, editor, &sched.WorkItem{
			Tag: "echo", CPU: simclock.Millisecond, Coalesce: true,
			OnDone: func(*sched.WorkItem, simclock.Time, int) {
				cpu.Submit(encoder, &sched.WorkItem{
					Tag: "encode", CPU: 1500 * simclock.Microsecond, Coalesce: true,
					OnDone: func(_ *sched.WorkItem, done simclock.Time, _ int) { tracker.Observe(done) },
				})
			},
		})
	}
	eng.RunFor(span + simclock.Second)
	return latency.ReportFrom(fmt.Sprintf("%d sinks", nSinks), tracker)
}

func main() {
	fmt.Println("average interactive stall (ms) vs competing CPU-bound processes")
	fmt.Printf("%-8s %12s %12s %12s\n", "sinks", "round-robin", "NT policy", "SVR4-IA")
	for _, n := range []int{0, 2, 5, 10, 20} {
		rr := measure(func() sched.Scheduler { return sched.NewRRSched(10 * simclock.Millisecond) }, false, n)
		nt := measure(func() sched.Scheduler { return sched.NewNTSched(sched.DefaultNTConfig()) }, false, n)
		ia := measure(func() sched.Scheduler { return sched.NewSVR4IASched(10 * simclock.Millisecond) }, true, n)
		fmt.Printf("%-8d %12.1f %12.1f %12.1f\n", n, rr.MeanStallMs, nt.MeanStallMs, ia.MeanStallMs)
	}
	fmt.Println()
	fmt.Println("the SVR4 interactive class (Evans et al. 1993) keeps stalls flat —")
	fmt.Println("the fix the paper laments no Unix kernel of its day had adopted")
}
