// Protocols: replay one office-application session over all three remote
// display protocols and print prototap capture summaries — the §6.1.2
// comparison as a program.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

func main() {
	cfg := workload.DefaultOfficeConfig()
	cfg.TypingChars = 600
	cfg.PaintStrokes = 25
	cfg.PanelActions = 8
	cfg.ReviewScrolls = 75
	tr := workload.OfficeTrace(cfg)
	fmt.Printf("office workload: %d display ops, %d input events over %.0fs\n\n",
		tr.Ops(), tr.Events(), tr.Duration().Seconds())

	rdpCfg := rdp.DefaultConfig()
	rdpCfg.MotionSample = 8
	runs := []struct {
		srv  proto.Server
		cli  proto.Client
		opts workload.ReplayOpts
	}{
		{rdp.NewServer(rdpCfg), rdp.NewClient(rdpCfg), workload.ReplayOpts{
			InputCoalesce: 500 * simclock.Millisecond, DisplayCoalesce: simclock.Second}},
		{xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), workload.ReplayOpts{}},
		{lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), workload.ReplayOpts{
			InputCoalesce: 75 * simclock.Millisecond}},
	}
	var totals []int64
	for _, r := range runs {
		rec := trace.NewRecorder(simclock.Second)
		if err := workload.Replay(tr, r.srv, r.cli, rec, r.opts); err != nil {
			log.Fatal(err)
		}
		fmt.Print(rec.Summary(r.srv.Name()))
		fmt.Println()
		totals = append(totals, rec.Total().Bytes)
	}
	fmt.Printf("byte ratios: X/RDP = %.1f, LBX/RDP = %.1f (paper: 7.0 and 3.6)\n",
		float64(totals[1])/float64(totals[0]), float64(totals[2])/float64(totals[0]))
	fmt.Println("every client rendered the identical final screen from its own wire format")
}
