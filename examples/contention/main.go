// Contention: the paper's central question run end to end — how does
// user-perceived latency degrade as concurrent users share one server's
// processor, memory, and network? Every data point is one shared server:
// all users on one discrete-event clock, one scheduled CPU, one physical
// memory pool, and one 10 Mbps link, so the latency curve includes CPU
// queueing, paging feedback, and display-traffic queueing together.
//
//	go run ./examples/contention
package main

import (
	"fmt"

	"thinbench/internal/server"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

func main() {
	fmt.Println("echo latency vs concurrent users on one shared 64 MB / 10 Mbps server")
	fmt.Println()

	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	users := []int{1, 4, 8, 12, 14, 16}
	grid, err := server.Grid(base, []string{"rdp", "x"}, []string{"rr", "nt"}, users, 0, 1999)
	if err != nil {
		panic(err)
	}
	for _, sc := range grid {
		fmt.Printf("%s over the %s scheduler:\n", sc.Protocol, sc.Scheduler)
		for _, pt := range sc.Points {
			marker := ""
			if pt.Paging {
				marker = "  <- paging: working sets no longer fit"
			} else if pt.EchoP95Ms >= 100 {
				marker = "  <- beyond the 100 ms threshold of perception"
			}
			fmt.Printf("  %3d users: p95 %9.2f ms  (cpu %3.0f%%, link %3.0f%%)%s\n",
				pt.Users, pt.EchoP95Ms, pt.CPUUtilization*100, pt.LinkUtilization*100, marker)
		}
		fmt.Println()
	}

	// The sizing view of the same machine: latency-threshold capacity is
	// what operators can actually sell, and it never exceeds the memory
	// division.
	srv := sizing.DefaultServer()
	for _, p := range []sizing.Profile{sizing.LightAdmin(), sizing.Developer()} {
		n, est, limit := sizing.Capacity(srv, p, 60, 10*simclock.Second, 1999)
		fmt.Printf("%-12s capacity: %2d users (binding: %s, p95 %.1f ms); memory-only division says %d\n",
			p.Name, n, limit, est.P95EchoMs, sizing.MemoryCapacity(srv, p))
	}
}
