// Sharding: the paper sizes one multi-user machine; a fleet serving one
// population turns that into a placement problem. This walkthrough runs
// the same total population across a heterogeneous three-machine fleet —
// a big box (128 MB, 1.5x CPU), the paper's testbed machine, and a weak
// leftover (48 MB, 0.6x CPU) — under each placement policy, then asks the
// fleet-level sizing question: how many users fit before fleet p95 echo
// latency blows the 150 ms budget?
//
//	go run ./examples/sharding
package main

import (
	"fmt"

	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func main() {
	base := server.DefaultConfig()
	base.Span = 5 * simclock.Second
	machines := shard.DefaultFleet(3)

	fmt.Println("one population, three machines (128 MB/1.5x, 64 MB/1.0x, 48 MB/0.6x),")
	fmt.Println("three placement policies")
	fmt.Println()

	// 30 users is past what blind dealing survives: round-robin puts 10
	// sessions on the 48 MB machine whose §5.1.1 division is ~8, so that
	// shard pages and its users' echoes never come back.
	const users = 30
	for _, policy := range shard.Policies() {
		fr, err := shard.Run(shard.Config{
			Base:      base,
			Machines:  machines,
			Users:     users,
			Policy:    policy,
			ProbeSpan: 2 * simclock.Second,
			Seed:      1999,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s places %v -> fleet p95 %6.0f ms (worst shard %6.0f ms, censored %d)\n",
			policy, fr.Placement, fr.EchoP95Ms, fr.MaxShardP95Ms, fr.Censored)
		for _, sr := range fr.Shards {
			if sr.Users == 0 {
				fmt.Printf("    shard %d (%3d MB, %.1fx): idle\n", sr.Shard, sr.PhysicalKB/1024, sr.CPUSpeed)
				continue
			}
			marker := ""
			if sr.Paging {
				marker = "  <- paging: this machine's working sets no longer fit"
			}
			fmt.Printf("    shard %d (%3d MB, %.1fx): %2d users, p95 %6.0f ms%s\n",
				sr.Shard, sr.PhysicalKB/1024, sr.CPUSpeed, sr.Users, sr.EchoP95Ms, marker)
		}
		fmt.Println()
	}

	// The fleet-level sizing answer. The model codec keeps the wide
	// bisection frugal, exactly as in the single-machine capacity search.
	capBase := base
	capBase.Protocol = "model"
	capBase.Span = 3 * simclock.Second
	fmt.Println("fleet capacity (largest population with fleet p95 within 150 ms):")
	for _, policy := range shard.Policies() {
		cap, err := shard.FleetCapacity(shard.Config{
			Base:      capBase,
			Machines:  machines,
			Policy:    policy,
			ProbeSpan: simclock.Second,
			Seed:      1999,
		}, 60, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-10s %2d users (fleet p95 %5.0f ms, placement %v)\n",
			policy, cap.Users, cap.At.EchoP95Ms, cap.At.Placement)
	}
}
