// Churn and failover: the paper prices session setup (tab4's handshake
// bytes) and login memory (§5.1.1), but measures populations that log in
// once and stay. This walkthrough runs a fleet the way a real shift
// runs: a small population at nine o'clock, arrivals ramping in through
// the morning — each paying its protocol handshake on the contended
// link, its full-manifest page-ins, and its process-creation CPU before
// the first keystroke echoes — sessions turning over, and then a machine
// dying mid-shift. Its users' interactions censor at the kill and they
// re-login elsewhere through the live placement policy, a reconnect
// storm of full session setups against the survivors.
//
// The per-second fleet p95 timeline makes the transient visible: watch
// the excursion at the kill and how long each policy takes to come back.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"strings"

	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func main() {
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	killAt := 5 * simclock.Second

	fmt.Println("one heterogeneous fleet (128 MB/1.5x, 64 MB/1.0x, 48 MB/0.6x):")
	fmt.Println("6 users at open, ~2 arrivals/s ramping in, sessions turning over,")
	fmt.Printf("machine 2 killed at %v — its users re-login through the live policy\n\n", killAt)

	for _, policy := range []string{shard.PolicyRoundRobin, shard.PolicyLatAware} {
		fr, err := shard.Run(shard.Config{
			Base:            base,
			Machines:        shard.DefaultFleet(3),
			Users:           6,
			Policy:          policy,
			ChurnRatePerSec: 0.05,
			GrowthPerSec:    2,
			KillShard:       2,
			KillAt:          killAt,
			ProbeSpan:       2 * simclock.Second,
			Seed:            1999,
		})
		if err != nil {
			panic(err)
		}

		fmt.Printf("%s: opened %v, %d arrivals, %d departures, slowest login %.0f ms\n",
			policy, fr.Placement, fr.Arrivals, fr.Departures, fr.LoginMaxMs)
		for _, sr := range fr.Shards {
			note := ""
			if sr.Killed {
				note = fmt.Sprintf("  <- killed at %v with %d users aboard", killAt, sr.Departures)
			}
			fmt.Printf("    shard %d (%3d MB, %.1fx): %2d at open, peak %2d, %d arrivals%s\n",
				sr.Shard, sr.PhysicalKB/1024, sr.CPUSpeed, sr.Users, sr.PeakUsers, sr.Arrivals, note)
		}

		killSlice := int(killAt / server.TimelineSlice)
		fmt.Println("    fleet p95 per second:")
		for i, p95 := range fr.P95TimelineMs {
			bar := strings.Repeat("#", scale(p95))
			marker := ""
			if i == killSlice {
				marker = "  <- kill"
			}
			fmt.Printf("      %2d-%2ds %6.0f ms %s%s\n", i, i+1, p95, bar, marker)
		}
		recovery := "did not recover within the run"
		if fr.RecoveryMs >= 0 {
			recovery = fmt.Sprintf("recovered %.0f ms after the kill", fr.RecoveryMs)
		}
		fmt.Printf("    pre-kill p95 %.0f ms, peak %.0f ms, %s\n\n",
			fr.PreKillP95Ms, fr.PeakKillP95Ms, recovery)
	}
}

// scale compresses a millisecond value into a bar short enough for a
// terminal: one '#' per 10 ms, capped at 60 columns.
func scale(ms float64) int {
	n := int(ms / 10)
	if n > 60 {
		n = 60
	}
	return n
}
