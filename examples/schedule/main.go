// Trace-driven arrival schedules: the paper's §5 argues interactive load
// is bursty and correlated — a terminal server's day has a 9 AM login
// storm, a lunch dip, and a close-of-day exodus, not a memoryless
// trickle. This walkthrough compiles the built-in OfficeDay profile over
// a fleet population, shows the offered arrivals per second next to the
// fleet's p95 latency timeline, and then kills a machine in the middle of
// the morning ramp — the displaced users re-login into the surge, which
// is exactly the stress case SLIM's stateless-client argument is about.
//
//	go run ./examples/schedule
package main

import (
	"fmt"
	"strings"

	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func main() {
	day := schedule.OfficeDay()
	span := 10 * simclock.Second
	const users = 15
	killAt := 2 * simclock.Second

	fmt.Println("the OfficeDay profile (span maps 7:30-18:00; rates are relative):")
	fmt.Print(indent(schedule.Format(day)))
	fmt.Println()

	cfg := shard.Config{
		Base:     server.DefaultConfig(),
		Machines: shard.DefaultFleet(3),
		Users:    users,
		Policy:   shard.PolicyRoundRobin,
		Schedule: &day,
		Seed:     1999,
	}
	cfg.Base.Span = span

	// The offered load: when the profile's seats actually log in.
	plan, err := cfg.SchedulePlan()
	if err != nil {
		panic(err)
	}
	slices := server.TimelineSlices(span)
	arrivals := make([]int, slices)
	for _, s := range plan {
		if s.Login > 0 {
			arrivals[int(simclock.Duration(s.Login)/server.TimelineSlice)]++
		}
	}
	fmt.Printf("%d seats: logins per second (the 9 AM storm lands in seconds 1-2):\n", users)
	for i, n := range arrivals {
		fmt.Printf("  %2d-%2ds %2d %s\n", i, i+1, n, strings.Repeat("#", n*3))
	}
	fmt.Println()

	fmt.Printf("machine 2 (48 MB, 0.6x) killed at %v — mid-ramp, displaced users\n", killAt)
	fmt.Println("re-login into the surge through the live placement policy:")
	fmt.Println()
	cfg.KillShard, cfg.KillAt = 2, killAt
	fr, err := shard.Run(cfg)
	if err != nil {
		panic(err)
	}
	killSlice := int(killAt / server.TimelineSlice)
	fmt.Println("  fleet p95 per second:")
	for i, p95 := range fr.P95TimelineMs {
		marker := ""
		if i == killSlice {
			marker = "  <- kill, inside the storm"
		}
		fmt.Printf("    %2d-%2ds %6.0f ms %s%s\n", i, i+1, p95, bar(p95), marker)
	}
	recovery := "did not return to the pre-storm baseline within the run"
	if fr.RecoveryMs >= 0 {
		recovery = fmt.Sprintf("recovered %.0f ms after the kill", fr.RecoveryMs)
	}
	fmt.Printf("  pre-kill p95 %.0f ms, peak %.0f ms, %s\n", fr.PreKillP95Ms, fr.PeakKillP95Ms, recovery)
	fmt.Printf("  %d arrivals paid full session setup; slowest login waited %.0f ms\n\n",
		fr.Arrivals, fr.LoginMaxMs)

	// The same kill under flat (memoryless) load, for contrast.
	flat := schedule.Flat(schedule.DefaultFlatRate)
	cfg.Schedule = &flat
	fv, err := shard.Run(cfg)
	if err != nil {
		panic(err)
	}
	flatRec := "never"
	if fv.RecoveryMs >= 0 {
		flatRec = fmt.Sprintf("%.0f ms", fv.RecoveryMs)
	}
	fmt.Printf("the same kill under flat churn recovers in %s — a storm-time failure is the\n", flatRec)
	fmt.Println("expensive one, which is why capacity is sized against the worst minute")
	fmt.Println("(sizing.ScheduleCapacity), not the whole-day percentile.")
}

func indent(text string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

// bar compresses a millisecond value into a terminal bar: one '#' per
// 5 ms, capped at 60 columns.
func bar(ms float64) string {
	n := int(ms / 5)
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}
