// Capacity: the server-sizing question the paper's introduction poses —
// how many concurrent users can a box support before latency crosses the
// threshold of perception? Combines the memory bound (per-session
// compulsory load, §5.1.1) with the CPU bound (Figure 3's stall growth).
//
//	go run ./examples/capacity
package main

import (
	"fmt"

	"thinbench/internal/latency"
	"thinbench/internal/sched"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

// stallWithUsers models n concurrent interactive users on the Linux
// round-robin scheduler: each user is an editor+display pair receiving a
// 20 Hz repeat while the others' work competes for the CPU.
func stallWithUsers(n int) float64 {
	eng := simclock.NewEngine()
	cpu := sched.NewCPU(eng, sched.NewRRSched(10*simclock.Millisecond), simclock.Second)
	tracker := latency.NewStallTracker(50 * simclock.Millisecond)
	tracker.Observe(0)

	// User 0 is measured; the rest run a moderate mixed load (1.5 ms of
	// CPU per 50 ms — editing plus background work).
	editor := cpu.NewThread("editor0", 0)
	xsrv := cpu.NewThread("xserver0", 0)
	for i := 1; i < n; i++ {
		t := cpu.NewThread(fmt.Sprintf("user%d", i), 0)
		eng.Every(simclock.Time(i)*1000, 50*simclock.Millisecond, func(simclock.Time) {
			cpu.Submit(t, &sched.WorkItem{Tag: "work", CPU: 1500 * simclock.Microsecond})
		})
	}
	span := 20 * simclock.Second
	for _, at := range workload.KeystrokeTimes(workload.TypingConfig{Rate: 20, Span: span}) {
		cpu.SubmitAt(at, editor, &sched.WorkItem{
			Tag: "echo", CPU: simclock.Millisecond, Coalesce: true,
			OnDone: func(*sched.WorkItem, simclock.Time, int) {
				cpu.Submit(xsrv, &sched.WorkItem{
					Tag: "update", CPU: 1500 * simclock.Microsecond, Coalesce: true,
					OnDone: func(_ *sched.WorkItem, done simclock.Time, _ int) { tracker.Observe(done) },
				})
			},
		})
	}
	eng.RunFor(span + simclock.Second)
	return tracker.MeanStallMs()
}

func main() {
	fmt.Println("server sizing on a 64 MB machine")
	fmt.Println()
	fmt.Println("memory bound (sessions before paging):")
	fmt.Printf("  Linux/X:   %3d sessions (752 KB each after a 17 MB system)\n",
		session.Capacity(64*1024, session.LinuxSystemIdleKB, session.LinuxManifest()))
	fmt.Printf("  TSE:       %3d sessions (3,244 KB each after a 19 MB system)\n",
		session.Capacity(64*1024, session.TSESystemIdleKB, session.TSEManifest()))
	fmt.Printf("  TSE light: %3d sessions (2,100 KB with the DOS-prompt shell)\n",
		session.Capacity(64*1024, session.TSESystemIdleKB, session.TSELightManifest()))
	fmt.Println()
	fmt.Println("CPU bound (mean stall for one typist as active users grow, Linux/X):")
	for _, n := range []int{1, 5, 10, 20, 40, 60} {
		ms := stallWithUsers(n)
		marker := ""
		if ms >= 100 {
			marker = "  <- beyond the 100 ms threshold of perception"
		}
		fmt.Printf("  %3d users: %6.1f ms%s\n", n, ms, marker)
	}
	fmt.Println()
	fmt.Println("the binding constraint depends on the behavior profile — the paper's")
	fmt.Println("framework exists precisely to make this calculation explicit")
}
