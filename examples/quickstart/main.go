// Quickstart: run the reproduction's headline experiments through the
// public API and print their results next to what the paper reports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"thinbench"
)

func main() {
	cfg := thinbench.QuickConfig()

	fmt.Println("thinbench quickstart — three headline results from the paper")
	fmt.Println()

	// 1. The scheduler result: interactive stalls under CPU load (Fig. 3).
	//    TSE collapses near 10 competing processes; Linux degrades linearly.
	r, err := thinbench.Run("fig3", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())

	// 2. The memory result: paging latency after a streaming job evicts an
	//    idle editor (§5.2 table).
	r, err = thinbench.Run("tab3", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())

	// 3. The network result: protocol efficiency on the office workload
	//    (§6.1.2 table). RDP ships a fraction of X's bytes.
	r, err = thinbench.Run("tab5", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())

	fmt.Printf("human perception threshold used throughout: %v\n", thinbench.PerceptionThreshold)
	fmt.Println("run every table and figure with: go run ./cmd/thinbench -run all")
}
