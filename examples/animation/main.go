// Animation: the bitmap-cache cliff of Figure 7, measured directly against
// the RDP-like protocol, and the loop-aware eviction policy that removes
// it (the "more intelligent scheme" the paper sketches).
//
//	go run ./examples/animation
package main

import (
	"fmt"
	"log"

	"thinbench/internal/bitmapcache"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

// loadFor plays an n-frame looping animation over RDP with the given cache
// policy and reports steady-state Mbps.
func loadFor(frames int, policy bitmapcache.Policy) float64 {
	cfg := rdp.DefaultConfig()
	cfg.CachePolicy = policy
	srv := rdp.NewServer(cfg)
	cli := rdp.NewClient(cfg)
	tr := workload.AnimationTrace(workload.AnimationConfig{
		Seed: 7, Frames: frames, FPS: 5,
		W: workload.Figure7FrameW, H: workload.Figure7FrameH,
		X: 100, Y: 100, Span: 60 * simclock.Second, Photo: true,
	})
	rec := trace.NewRecorder(simclock.Second)
	if err := workload.Replay(tr, srv, cli, rec, workload.ReplayOpts{}); err != nil {
		log.Fatal(err)
	}
	mbps := rec.Series().Mbps()
	return rec.Series().MeanOver(len(mbps)/3, len(mbps)) * 8 / 1e6
}

func main() {
	frameKB := float64(workload.Figure7FrameW*workload.Figure7FrameH) / 1024
	fmt.Printf("looping animation over RDP, %.1f KB frames, 1.5 MB client cache\n\n", frameKB)
	fmt.Printf("%-8s %14s %14s\n", "frames", "LRU (Mbps)", "loop-aware")
	for _, n := range []int{40, 55, 65, 70, 80, 100} {
		fmt.Printf("%-8d %14.3f %14.3f\n", n, loadFor(n, bitmapcache.LRU), loadFor(n, bitmapcache.LoopAware))
	}
	fmt.Println()
	fmt.Println("LRU falls off a cliff once the loop exceeds the cache (paper Fig. 7:")
	fmt.Println("0.01 Mbps through 65 frames, 0.96 above); the loop-aware policy")
	fmt.Println("freezes a resident prefix and keeps most frames hitting.")
}
