package netsim

import (
	"testing"

	"thinbench/internal/simclock"
)

// BenchmarkLinkBatch measures the batched arbitration hot path: bursts of
// SendArgs packets drained through the FIFO ring. Steady state should be
// allocation-free per packet — the delivery record lives in the reused
// pending ring and the callback is a shared method value.
func BenchmarkLinkBatch(b *testing.B) {
	b.ReportAllocs()
	eng := simclock.NewEngine()
	l := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	var got int
	fn := DeliverFunc(func(now simclock.Time, a, _ int) { got += a })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			l.SendArgs(200, fn, 1, 0)
		}
		eng.Drain(1 << 20)
	}
	if got != 64*b.N {
		b.Fatalf("delivered %d packets, want %d", got, 64*b.N)
	}
}

// delivered is one observed delivery: the virtual time the last bit landed
// and the payload id carried by the packet.
type delivered struct {
	at simclock.Time
	id int
}

// refLink is the per-packet reference arbiter: the same queueing math as
// Link (one busyUntil horizon, a bounded queue, serialization + propagation
// delay) but with one closure-bearing engine event per packet and no
// batched drain. The property test checks the production Link's batched
// FIFO drain against it.
type refLink struct {
	eng       *simclock.Engine
	cfg       LinkConfig
	busyUntil simclock.Time
	inQueue   int
	drops     int64
	packets   int64
	bytes     int64
	seq       []delivered
	reenter   func(id, depth int)
}

func (r *refLink) txTime(bytes int) simclock.Duration {
	us := float64(bytes*8) / r.cfg.RateMbps
	return simclock.Duration(us)
}

func (r *refLink) send(bytes, id, depth int) bool {
	now := r.eng.Now()
	if r.inQueue >= r.cfg.QueuePackets {
		r.drops++
		return false
	}
	start := r.busyUntil
	if start < now {
		start = now
	}
	done := start.Add(r.txTime(bytes))
	r.busyUntil = done
	r.inQueue++
	r.eng.At(done.Add(r.cfg.Propagation), func(at simclock.Time) {
		r.inQueue--
		r.packets++
		r.bytes += int64(bytes)
		r.seq = append(r.seq, delivered{at: at, id: id})
		r.reenter(id, depth)
	})
	return true
}

// trafficPlan is a deterministic random packet schedule. Times are drawn
// from a narrow range so same-microsecond sends (and hence same-tick
// deliveries) occur; sizes span input-sized to MTU-sized packets.
type plannedSend struct {
	at    simclock.Time
	bytes int
	id    int
}

func makePlan(seed uint64, n int, span simclock.Time) []plannedSend {
	rng := simclock.NewRand(seed)
	plan := make([]plannedSend, n)
	for i := range plan {
		plan[i] = plannedSend{
			at:    simclock.Time(rng.Int63n(int64(span))),
			bytes: 40 + rng.Intn(1500),
			id:    i,
		}
	}
	return plan
}

// reenterSize derives a deterministic packet size for a reentrant send.
func reenterSize(id int) int { return 40 + (id*131)%700 }

// TestBatchedDeliveryMatchesPerPacket is the batched-arbitration property
// test: on randomized traffic — bursty enough to coalesce same-tick
// deliveries, overloaded enough to exercise queue-full drops, with
// reentrant sends issued from inside delivery callbacks — the production
// Link's batched FIFO drain must produce the identical (deliverAt, payload)
// sequence, drop count, and byte accounting as per-packet delivery events.
//
// The reference intentionally reimplements the arbitration math rather
// than calling into Link: it is the original one-event-per-packet design
// the batched drain replaced, kept as the oracle for delivery order.
func TestBatchedDeliveryMatchesPerPacket(t *testing.T) {
	cases := []struct {
		name  string
		cfg   LinkConfig
		n     int
		span  simclock.Time
		seeds []uint64
	}{
		// The paper's segment, lightly loaded: order and timing only.
		{"default", DefaultLinkConfig(), 400, simclock.Time(500 * 1000), []uint64{1, 2, 3}},
		// A tiny queue under a packet storm: drops dominate.
		{"overload", LinkConfig{RateMbps: 10, Propagation: 100, QueuePackets: 4}, 800, simclock.Time(100 * 1000), []uint64{11, 12, 13}},
		// Zero propagation with a burst window so deliveries tie on the
		// same microsecond and drain in one batch.
		{"same-tick", LinkConfig{RateMbps: 1000, Propagation: 0, QueuePackets: 64}, 600, simclock.Time(2 * 1000), []uint64{21, 22, 23}},
	}
	for _, tc := range cases {
		for _, seed := range tc.seeds {
			plan := makePlan(seed, tc.n, tc.span)

			// Batched run: the production Link, hot-path SendArgs form.
			beng := simclock.NewEngine()
			bl := NewLink(beng, tc.cfg, simclock.Second)
			var bseq []delivered
			var bfn DeliverFunc
			bfn = func(now simclock.Time, id, depth int) {
				bseq = append(bseq, delivered{at: now, id: id})
				if id%5 == 0 && depth < 2 {
					bl.SendArgs(reenterSize(id), bfn, id+1000000*(depth+1), depth+1)
				}
			}
			for _, s := range plan {
				s := s
				beng.At(s.at, func(simclock.Time) { bl.SendArgs(s.bytes, bfn, s.id, 0) })
			}
			beng.Drain(1 << 22)

			// Reference run: per-packet closures on a fresh engine.
			reng := simclock.NewEngine()
			rl := &refLink{eng: reng, cfg: bl.Config()}
			rl.reenter = func(id, depth int) {
				if id%5 == 0 && depth < 2 {
					rl.send(reenterSize(id), id+1000000*(depth+1), depth+1)
				}
			}
			for _, s := range plan {
				s := s
				reng.At(s.at, func(simclock.Time) { rl.send(s.bytes, s.id, 0) })
			}
			reng.Drain(1 << 22)

			if len(bseq) != len(rl.seq) {
				t.Fatalf("%s/seed=%d: batched delivered %d packets, reference %d",
					tc.name, seed, len(bseq), len(rl.seq))
			}
			for i := range bseq {
				if bseq[i] != rl.seq[i] {
					t.Fatalf("%s/seed=%d: delivery %d diverged: batched (%v, %d), reference (%v, %d)",
						tc.name, seed, i, bseq[i].at, bseq[i].id, rl.seq[i].at, rl.seq[i].id)
				}
			}
			if bl.Drops() != rl.drops {
				t.Fatalf("%s/seed=%d: batched dropped %d, reference %d", tc.name, seed, bl.Drops(), rl.drops)
			}
			if bl.SentPackets() != rl.packets || bl.SentBytes() != rl.bytes {
				t.Fatalf("%s/seed=%d: accounting diverged: batched (%d pkts, %d bytes), reference (%d, %d)",
					tc.name, seed, bl.SentPackets(), bl.SentBytes(), rl.packets, rl.bytes)
			}
			if got := len(bseq); got == 0 {
				t.Fatalf("%s/seed=%d: no deliveries observed; plan did not exercise the link", tc.name, seed)
			}
		}
	}
}
