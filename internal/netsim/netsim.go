// Package netsim simulates the paper's network testbed: a shared 10 Mbps
// Ethernet-class segment carrying thin-client traffic, background load, and
// ICMP-style probes. It provides the load-to-latency mapping of Figures 8
// and 9 (RTT and jitter versus offered load) and the TCP/IP versus VIP
// framing-overhead accounting used in §6.1.2.
package netsim

import (
	"thinbench/internal/metrics"
	"thinbench/internal/simclock"
)

// Header sizes used by the framing model, matching the paper's discussion
// of small-message overhead and the x-kernel virtual-IP (VIP) scheme that
// elides the 20-byte IP header in non-routed deployments.
const (
	IPHeaderBytes    = 20
	TCPHeaderBytes   = 20
	TCPIPHeaderBytes = IPHeaderBytes + TCPHeaderBytes
	// EthernetMTU is the payload capacity of the testbed's interface.
	EthernetMTU = 1500
)

// LinkConfig describes a shared network segment.
type LinkConfig struct {
	// RateMbps is the raw link rate (10 for the paper's aging Ethernet).
	RateMbps float64
	// Propagation is the one-way propagation + interface latency.
	Propagation simclock.Duration
	// QueuePackets bounds the transmit queue; packets beyond it drop.
	QueuePackets int
}

// DefaultLinkConfig is the paper's 10 Mbps shared segment.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		RateMbps:     10,
		Propagation:  100 * simclock.Microsecond,
		QueuePackets: 120,
	}
}

// Link is a single shared half-duplex medium: every sender (display
// traffic, input traffic, background load, probes) contends for the same
// transmission queue, as on the paper's non-switched Ethernet.
type Link struct {
	eng *simclock.Engine
	cfg LinkConfig

	busyUntil simclock.Time
	inQueue   int

	sentPackets int64
	sentBytes   int64
	drops       int64
	loadSeries  *metrics.Series

	// pending is the in-flight delivery FIFO. Delivery times are monotone
	// (busyUntil never decreases and propagation is constant), so engine
	// events fire in FIFO order and each drains the head. Keeping the
	// payload here instead of in a per-packet closure makes Send
	// allocation-free in steady state: the event comes from the engine's
	// pool and deliverFn is bound once at construction.
	//
	// Arbitration is batched: when an event fires, EVERY pending delivery
	// whose time has come drains in FIFO order, so same-tick deliveries
	// complete under one dispatch and the events the link scheduled for
	// them find nothing left to do. Events are still created eagerly at
	// Send time — lazy head-only scheduling would assign later engine
	// sequence numbers and could reorder equal-timestamp ties against
	// unrelated events, breaking bit-exact reproducibility. The delivered
	// (time, payload) sequence is bit-identical to per-packet arbitration
	// (property-tested in batch_test.go).
	pending   []delivery
	head      int
	deliverFn func(now simclock.Time)
}

// DeliverFunc is the payload-carrying delivery callback form: a single
// callback value (a method value bound once) shared across packets, with
// two caller-owned integer arguments carried in the delivery record — the
// zero-allocation alternative to a per-packet closure.
type DeliverFunc func(now simclock.Time, a, b int)

type delivery struct {
	bytes       int
	deliverAt   simclock.Time
	onDelivered func(now simclock.Time)
	fn          DeliverFunc
	a, b        int
}

// NewLink builds a link on the engine. loadBucket sets the resolution of
// the byte-load series (1 s buckets for the paper's Mbps traces).
func NewLink(eng *simclock.Engine, cfg LinkConfig, loadBucket simclock.Duration) *Link {
	if cfg.RateMbps <= 0 {
		panic("netsim: link rate must be positive")
	}
	if cfg.QueuePackets <= 0 {
		cfg.QueuePackets = 1
	}
	l := &Link{eng: eng, cfg: cfg, loadSeries: metrics.NewSeries(loadBucket)}
	l.deliverFn = l.deliverHead
	return l
}

// Config reports the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SentPackets reports delivered packet count.
func (l *Link) SentPackets() int64 { return l.sentPackets }

// SentBytes reports delivered byte count.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// Drops reports packets rejected by the full queue.
func (l *Link) Drops() int64 { return l.drops }

// LoadSeries reports bytes delivered per time bucket; use Series.Mbps to
// convert to megabits per second.
func (l *Link) LoadSeries() *metrics.Series { return l.loadSeries }

// TxTime reports the serialization delay for a packet of the given size.
func (l *Link) TxTime(bytes int) simclock.Duration {
	us := float64(bytes*8) / l.cfg.RateMbps // bits / (bits/us)
	return simclock.Duration(us)
}

// Send queues a packet of the given size. onDelivered, if non-nil, fires
// when the last bit arrives at the receiver. Send reports false when the
// queue is full and the packet was dropped.
func (l *Link) Send(bytes int, onDelivered func(now simclock.Time)) bool {
	return l.send(bytes, onDelivered, nil, 0, 0)
}

// SendArgs queues a packet whose delivery callback is a shared DeliverFunc
// (typically a method value bound once at construction) invoked with the
// two given arguments — the allocation-free form of Send for hot paths
// that would otherwise build a closure per packet.
func (l *Link) SendArgs(bytes int, fn DeliverFunc, a, b int) bool {
	return l.send(bytes, nil, fn, a, b)
}

//thinlint:hotpath
func (l *Link) send(bytes int, onDelivered func(now simclock.Time), fn DeliverFunc, a, b int) bool {
	now := l.eng.Now()
	if l.inQueue >= l.cfg.QueuePackets {
		l.drops++
		return false
	}
	start := l.busyUntil
	if start < now {
		start = now
	}
	done := start.Add(l.TxTime(bytes))
	l.busyUntil = done
	l.inQueue++
	l.loadSeries.AddSpan(start, done.Sub(start), float64(bytes))
	deliverAt := done.Add(l.cfg.Propagation)
	l.pending = append(l.pending, delivery{
		bytes: bytes, deliverAt: deliverAt,
		onDelivered: onDelivered, fn: fn, a: a, b: b,
	})
	l.eng.At(deliverAt, l.deliverFn)
	return true
}

// deliverHead is the link's arbitration event: every pending delivery
// whose time has arrived completes in FIFO order. In the common case the
// firing event drains exactly the one packet it was scheduled for;
// same-tick deliveries drain together under the first event, leaving the
// rest as no-ops.
//
//thinlint:hotpath
func (l *Link) deliverHead(at simclock.Time) {
	for l.head < len(l.pending) && l.pending[l.head].deliverAt <= at {
		l.deliverOne(at)
	}
}

// deliverOne completes the oldest in-flight packet. The head is popped
// before the callback runs so a reentrant Send sees a consistent FIFO.
//
//thinlint:hotpath
func (l *Link) deliverOne(at simclock.Time) {
	d := l.pending[l.head]
	l.pending[l.head] = delivery{}
	l.head++
	if l.head == len(l.pending) {
		l.pending = l.pending[:0]
		l.head = 0
	} else if l.head >= 256 && l.head*2 >= len(l.pending) {
		// Under sustained load the FIFO never empties; slide the live
		// tail down so the backing array stays bounded.
		n := copy(l.pending, l.pending[l.head:])
		for i := n; i < len(l.pending); i++ {
			l.pending[i] = delivery{}
		}
		l.pending = l.pending[:n]
		l.head = 0
	}
	l.inQueue--
	l.sentPackets++
	l.sentBytes += int64(d.bytes)
	if d.fn != nil {
		d.fn(at, d.a, d.b)
	} else if d.onDelivered != nil {
		d.onDelivered(at)
	}
}

// QueueDepth reports packets currently queued or in flight.
func (l *Link) QueueDepth() int { return l.inQueue }

// BackgroundLoad drives Poisson traffic at the given offered load until
// cancelled, modeling the synthetic load generator of §6.2. Packets are
// MTU-sized with TCP/IP headers.
func (l *Link) BackgroundLoad(offeredMbps float64, rng *simclock.Rand) (cancel func()) {
	if offeredMbps <= 0 {
		return func() {}
	}
	pktBytes := EthernetMTU + TCPIPHeaderBytes
	meanGap := simclock.Duration(float64(pktBytes*8) / offeredMbps) // us between packets
	stopped := false
	var arrive func(now simclock.Time)
	arrive = func(now simclock.Time) {
		if stopped {
			return
		}
		l.Send(pktBytes, nil)
		l.eng.At(now.Add(rng.ExpDuration(meanGap)), arrive)
	}
	l.eng.At(l.eng.Now().Add(rng.ExpDuration(meanGap)), arrive)
	return func() { stopped = true }
}

// Pinger measures round-trip times through the link: each probe is
// transmitted, "echoed" by the far side, and transmitted back over the same
// shared medium, exactly as ping behaves on a non-switched segment.
type Pinger struct {
	link  *Link
	bytes int
	rtts  *metrics.Summary
	dist  *metrics.Dist
	lost  int
}

// NewPinger builds a pinger with the given probe size (the paper uses
// ping's 64-byte default, about the size of an input-channel message).
func NewPinger(link *Link, probeBytes int) *Pinger {
	return &Pinger{link: link, bytes: probeBytes, rtts: &metrics.Summary{}, dist: &metrics.Dist{}}
}

// Run sends probes every interval for the given span, collecting RTTs.
func (p *Pinger) Run(interval, span simclock.Duration) {
	eng := p.link.eng
	deadline := eng.Now().Add(span)
	var probe func(now simclock.Time)
	probe = func(now simclock.Time) {
		if now > deadline {
			return
		}
		sent := now
		ok := p.link.Send(p.bytes, func(simclock.Time) {
			// Echo back over the same shared medium.
			p.link.Send(p.bytes, func(back simclock.Time) {
				rtt := back.Sub(sent).Milliseconds()
				p.rtts.Add(rtt)
				p.dist.Add(rtt)
			})
		})
		if !ok {
			p.lost++
		}
		eng.At(now.Add(interval), probe)
	}
	eng.At(eng.Now(), probe)
	eng.RunUntil(deadline.Add(5 * simclock.Second)) // let trailing echoes land
}

// MeanRTT reports the average round-trip time in milliseconds.
func (p *Pinger) MeanRTT() float64 { return p.rtts.Mean() }

// RTTVariance reports the RTT variance in ms^2, the paper's Figure 9 metric.
func (p *Pinger) RTTVariance() float64 { return p.rtts.Variance() }

// MaxRTT reports the worst observed RTT in milliseconds.
func (p *Pinger) MaxRTT() float64 { return p.rtts.Max() }

// Lost reports probes dropped by the full queue.
func (p *Pinger) Lost() int { return p.lost }

// Samples reports how many RTTs were collected.
func (p *Pinger) Samples() int64 { return p.rtts.N() }

// LoadLatencyPoint is one x/y pair of the Figure 8/9 sweeps.
type LoadLatencyPoint struct {
	OfferedMbps float64
	MeanRTTms   float64
	VarianceMs  float64
	MaxRTTms    float64
	Drops       int64
}

// SweepLoadLatency reproduces Figures 8 and 9: for each offered load, run
// pings for the span and record mean RTT and RTT variance.
func SweepLoadLatency(loads []float64, interval, span simclock.Duration, seed uint64) []LoadLatencyPoint {
	out := make([]LoadLatencyPoint, 0, len(loads))
	for i, load := range loads {
		eng := simclock.NewEngine()
		link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
		// Predates DeriveSeed; rewriting the derivation would shift every
		// Figure 8/9 point and the golden baselines with it.
		rng := simclock.NewRand(seed + uint64(i)*7919) //thinlint:allow seedflow.adhoc frozen: changing the stream would move published figure baselines
		stop := link.BackgroundLoad(load, rng)
		pinger := NewPinger(link, 64)
		pinger.Run(interval, span)
		stop()
		out = append(out, LoadLatencyPoint{
			OfferedMbps: load,
			MeanRTTms:   pinger.MeanRTT(),
			VarianceMs:  pinger.RTTVariance(),
			MaxRTTms:    pinger.MaxRTT(),
			Drops:       link.Drops(),
		})
	}
	return out
}
