package netsim

import (
	"math"
	"testing"

	"thinbench/internal/simclock"
)

func TestTxTime(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	// 1500 bytes at 10 Mbps = 1.2 ms.
	if got := link.TxTime(1500); got != 1200*simclock.Microsecond {
		t.Fatalf("TxTime(1500) = %v, want 1.2ms", got)
	}
	// 64 bytes = 51.2 us (truncated to 51).
	if got := link.TxTime(64); got != 51*simclock.Microsecond {
		t.Fatalf("TxTime(64) = %v, want 51us", got)
	}
}

func TestSendDelivers(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := DefaultLinkConfig()
	link := NewLink(eng, cfg, simclock.Second)
	var at simclock.Time
	if !link.Send(1500, func(now simclock.Time) { at = now }) {
		t.Fatal("Send failed on empty link")
	}
	eng.Drain(100)
	want := simclock.Time(1200 + 100) // tx + propagation
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if link.SentPackets() != 1 || link.SentBytes() != 1500 {
		t.Fatalf("counters = %d pkts %d bytes", link.SentPackets(), link.SentBytes())
	}
}

func TestSendQueuesSequentially(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	var times []simclock.Time
	for i := 0; i < 3; i++ {
		link.Send(1500, func(now simclock.Time) { times = append(times, now) })
	}
	eng.Drain(100)
	// Serialized back-to-back: deliveries at 1.3, 2.5, 3.7 ms.
	want := []simclock.Time{1300, 2500, 3700}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery times = %v, want %v", times, want)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.QueuePackets = 2
	link := NewLink(eng, cfg, simclock.Second)
	ok1 := link.Send(1500, nil)
	ok2 := link.Send(1500, nil)
	ok3 := link.Send(1500, nil)
	if !ok1 || !ok2 {
		t.Fatal("first two sends should succeed")
	}
	if ok3 {
		t.Fatal("third send should drop with queue depth 2")
	}
	if link.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", link.Drops())
	}
	eng.Drain(100)
	if link.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", link.QueueDepth())
	}
}

func TestLoadSeriesAccountsBytes(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	for i := 0; i < 10; i++ {
		link.Send(12500, nil) // 10 * 12500 B = 1 Mbit total
	}
	eng.Drain(1000)
	mbps := link.LoadSeries().Mbps()
	var total float64
	for _, v := range mbps {
		total += v
	}
	if math.Abs(total-1.0) > 0.01 {
		t.Fatalf("load series total = %v Mbps-seconds, want ~1", total)
	}
}

func TestBackgroundLoadApproximatesOffered(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	rng := simclock.NewRand(3)
	stop := link.BackgroundLoad(4.0, rng)
	eng.RunFor(20 * simclock.Second)
	stop()
	eng.RunFor(simclock.Second)
	gotMbps := float64(link.SentBytes()*8) / 1e6 / 20
	if gotMbps < 3.5 || gotMbps > 4.5 {
		t.Fatalf("background load delivered %.2f Mbps, want ~4", gotMbps)
	}
}

func TestPingUnloadedLink(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	p := NewPinger(link, 64)
	p.Run(simclock.Second, 10*simclock.Second)
	if p.Samples() < 10 {
		t.Fatalf("samples = %d, want >= 10", p.Samples())
	}
	// Unloaded RTT = 2*(51us + 100us) = ~0.3 ms.
	if p.MeanRTT() > 1.0 {
		t.Fatalf("unloaded mean RTT = %.3f ms, want well under 1ms", p.MeanRTT())
	}
	if p.RTTVariance() > 0.001 {
		t.Fatalf("unloaded RTT variance = %v, want ~0", p.RTTVariance())
	}
}

func TestRTTRisesWithLoad(t *testing.T) {
	points := SweepLoadLatency([]float64{0, 5, 9.6}, 200*simclock.Millisecond, 30*simclock.Second, 99)
	if points[0].MeanRTTms >= points[1].MeanRTTms || points[1].MeanRTTms >= points[2].MeanRTTms {
		t.Fatalf("RTT not monotone with load: %+v", points)
	}
	// The paper's 9.6 Mbps point: ~55 ms mean RTT. Accept the knee being
	// anywhere in the tens of milliseconds.
	if points[2].MeanRTTms < 20 || points[2].MeanRTTms > 120 {
		t.Fatalf("near-saturation RTT = %.1f ms, want tens of ms", points[2].MeanRTTms)
	}
	// Low-load RTT stays near zero.
	if points[0].MeanRTTms > 1 {
		t.Fatalf("idle RTT = %.2f ms, want < 1", points[0].MeanRTTms)
	}
}

func TestJitterExplodesNearSaturation(t *testing.T) {
	points := SweepLoadLatency([]float64{2, 9.6}, 200*simclock.Millisecond, 30*simclock.Second, 7)
	low, high := points[0].VarianceMs, points[1].VarianceMs
	if high < 50*low {
		t.Fatalf("variance did not explode near saturation: low=%.4f high=%.4f", low, high)
	}
}

func TestHeaderConstants(t *testing.T) {
	if TCPIPHeaderBytes != 40 || IPHeaderBytes != 20 {
		t.Fatal("header constants diverge from the paper's 20-byte IP / 40-byte TCP+IP model")
	}
}

func TestZeroBackgroundLoadIsNoop(t *testing.T) {
	eng := simclock.NewEngine()
	link := NewLink(eng, DefaultLinkConfig(), simclock.Second)
	stop := link.BackgroundLoad(0, simclock.NewRand(1))
	stop()
	eng.RunFor(simclock.Second)
	if link.SentPackets() != 0 {
		t.Fatal("zero offered load sent packets")
	}
}
