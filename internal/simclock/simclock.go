// Package simclock provides the virtual time base and discrete-event engine
// on which every simulated subsystem (scheduler, virtual memory, network)
// runs. Time is represented as integer microseconds so that event ordering is
// exact and runs are deterministic for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Milliseconds converts the time to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1e3) }

// Seconds converts the duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds converts the duration to floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)/1e3) }

// Millis builds a Duration from a floating-point number of milliseconds.
func Millis(ms float64) Duration { return Duration(ms * 1e3) }

// Micros builds a Duration from an integer number of microseconds.
func Micros(us int64) Duration { return Duration(us) }

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by insertion order so that runs are fully deterministic.
type Event struct {
	when Time
	seq  uint64
	fn   func(now Time)
	idx  int // heap index, -1 when not queued
}

// When reports the time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Scheduled reports whether the event is still pending in its engine.
func (e *Event) Scheduled() bool { return e != nil && e.idx >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator: a virtual clock plus an ordered queue
// of pending events. The zero value is not usable; use NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at the absolute virtual time when. Scheduling in the
// past (before Now) panics: it always indicates a simulation bug.
func (e *Engine) At(when Time, fn func(now Time)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn to run every period, starting at start. It returns a
// cancel function; fn keeps rescheduling itself until cancelled.
func (e *Engine) Every(start Time, period Duration, fn func(now Time)) (cancel func()) {
	if period <= 0 {
		panic("simclock: Every requires a positive period")
	}
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.At(now.Add(period), tick)
		}
	}
	e.At(start, tick)
	return func() { stopped = true }
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
	return true
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn(e.now)
	return true
}

// RunUntil dispatches events until the clock would pass deadline or the queue
// drains. The clock finishes exactly at deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Drain runs until no events remain. The limit guards against runaway
// self-rescheduling loops; Drain panics if more than limit events fire.
func (e *Engine) Drain(limit uint64) {
	start := e.fired
	for e.Step() {
		if e.fired-start > limit {
			panic("simclock: Drain exceeded event limit; runaway reschedule loop?")
		}
	}
}
