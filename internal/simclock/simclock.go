// Package simclock provides the virtual time base and discrete-event engine
// on which every simulated subsystem (scheduler, virtual memory, network)
// runs. Time is represented as integer microseconds so that event ordering is
// exact and runs are deterministic for a given seed.
package simclock

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Milliseconds converts the time to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)/1e3) }

// Seconds converts the duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds converts the duration to floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)/1e3) }

// Millis builds a Duration from a floating-point number of milliseconds.
func Millis(ms float64) Duration { return Duration(ms * 1e3) }

// Micros builds a Duration from an integer number of microseconds.
func Micros(us int64) Duration { return Duration(us) }

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by insertion order so that runs are fully deterministic.
//
// An *Event handle is valid only while the event is pending: once it fires
// or is cancelled, the engine may recycle the struct for a later schedule,
// so callers must drop (or overwrite) their reference no later than the
// callback returning. Holding a handle across its own firing and then
// calling Cancel or Scheduled on it observes the recycled event.
type Event struct {
	when Time
	seq  uint64
	fn   func(now Time)
	// fnArgs with (a, b) is the payload-carrying callback form (see
	// AtArgs); exactly one of fn and fnArgs is set.
	fnArgs func(now Time, a, b int)
	a, b   int
	idx    int // queue position marker, -1 when not queued
}

// When reports the time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Scheduled reports whether the event is still pending in its engine.
func (e *Event) Scheduled() bool { return e != nil && e.idx >= 0 }

// eventBefore is the global dispatch order: timestamp, then insertion
// sequence for same-tick ties.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// QueueKind selects the pending-event queue implementation backing an
// Engine. Both kinds dispatch in the identical (timestamp, sequence) order,
// so simulation results are bit-for-bit independent of the choice; only
// wall-clock speed differs.
type QueueKind int

const (
	// QueueCalendar is a Brown-style calendar queue: O(1) amortized
	// schedule and dispatch. The default.
	QueueCalendar QueueKind = iota
	// QueueHeap is the reference binary-heap queue (container/heap),
	// kept as the oracle the calendar queue is property-tested against.
	QueueHeap
)

func (k QueueKind) String() string {
	switch k {
	case QueueCalendar:
		return "calendar"
	case QueueHeap:
		return "heap"
	}
	return fmt.Sprintf("QueueKind(%d)", int(k))
}

// ParseQueueKind maps a CLI spelling ("calendar", "heap") to a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "calendar":
		return QueueCalendar, nil
	case "heap":
		return QueueHeap, nil
	}
	return 0, fmt.Errorf("simclock: unknown event queue %q (want calendar or heap)", s)
}

// DefaultQueue is the queue kind NewEngine uses. Flipping it (e.g. via the
// thinbench -eventq flag) must not change any simulation result.
var DefaultQueue = QueueCalendar

// eventQueue is the pending-event priority queue behind an Engine. All
// implementations order events by eventBefore.
type eventQueue interface {
	push(ev *Event)
	// pop removes and returns the earliest pending event, nil when empty.
	pop() *Event
	// popLE removes and returns the earliest pending event whose
	// timestamp is <= deadline, or nil if there is none.
	popLE(deadline Time) *Event
	// remove unlinks a pending event (ev.idx >= 0).
	remove(ev *Event) bool
	len() int
}

// heapQueue is the reference binary-heap implementation.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) popLE(deadline Time) *Event {
	if len(q.h) == 0 || q.h[0].when > deadline {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) remove(ev *Event) bool {
	heap.Remove(&q.h, ev.idx)
	ev.idx = -1
	return true
}

func (q *heapQueue) len() int { return len(q.h) }

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventBefore(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator: a virtual clock plus an ordered queue
// of pending events. The zero value is not usable; use NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	fired uint64
	// free recycles fired Event structs so steady-state dispatch does not
	// allocate. Events removed via Cancel are deliberately not recycled:
	// cancellation sites commonly keep the handle around, and leaking the
	// odd cancelled event to the GC is cheaper than a stale-handle bug.
	free []*Event
	// block is the tail of the current carve-out chunk: when the free list
	// is empty, events come off it one by one, so growing the pending set
	// by N costs N/eventBlock allocations instead of N.
	block []Event
}

// eventBlock is the carve-out chunk size for fresh Event structs.
const eventBlock = 64

// NewEngine returns an engine with the clock at zero and no pending events,
// backed by the DefaultQueue queue kind.
func NewEngine() *Engine { return NewEngineQueue(DefaultQueue) }

// NewEngineQueue returns an engine backed by the given queue kind. Results
// are identical across kinds; only speed differs.
func NewEngineQueue(kind QueueKind) *Engine {
	switch kind {
	case QueueHeap:
		return &Engine{queue: &heapQueue{}}
	case QueueCalendar:
		return &Engine{queue: newCalendarQueue()}
	}
	panic(fmt.Sprintf("simclock: unknown queue kind %d", int(kind)))
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return e.queue.len() }

// alloc takes an Event from the free list (or the heap) and stamps it.
func (e *Engine) alloc(when Time, fn func(now Time)) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		if len(e.block) == 0 {
			e.block = make([]Event, eventBlock)
		}
		ev = &e.block[0]
		e.block = e.block[1:]
	}
	ev.when = when
	ev.seq = e.seq
	ev.fn = fn
	ev.idx = -1
	e.seq++
	return ev
}

// recycle returns a fired event to the free list. The callback has already
// returned and the handle is dead by contract, so nothing can observe the
// reuse. The closure is dropped immediately so it does not outlive the
// event.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnArgs = nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at the absolute virtual time when. Scheduling in the
// past (before Now) panics: it always indicates a simulation bug.
func (e *Engine) At(when Time, fn func(now Time)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", when, e.now))
	}
	ev := e.alloc(when, fn)
	e.queue.push(ev)
	return ev
}

// AtArgs schedules a shared payload-carrying callback at the absolute
// virtual time when: fn fires with the integer payload (a, b) it was
// scheduled with. It is At for callers that would otherwise allocate a
// closure per scheduling — one bound method value plus the two-int payload
// replaces the per-event closure, exactly as netsim's SendArgs does for
// link deliveries. Firing order is identical to At for the same times.
func (e *Engine) AtArgs(when Time, fn func(now Time, a, b int), a, b int) *Event {
	if when < e.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", when, e.now))
	}
	ev := e.alloc(when, nil)
	ev.fnArgs = fn
	ev.a, ev.b = a, b
	e.queue.push(ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn to run every period, starting at start. It returns a
// cancel function; fn keeps rescheduling itself until cancelled.
func (e *Engine) Every(start Time, period Duration, fn func(now Time)) (cancel func()) {
	if period <= 0 {
		panic("simclock: Every requires a positive period")
	}
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.At(now.Add(period), tick)
		}
	}
	e.At(start, tick)
	return func() { stopped = true }
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.idx < 0 {
		return false
	}
	return e.queue.remove(ev)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	ev := e.queue.pop()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

func (e *Engine) fire(ev *Event) {
	e.now = ev.when
	e.fired++
	if ev.fnArgs != nil {
		ev.fnArgs(e.now, ev.a, ev.b)
	} else {
		ev.fn(e.now)
	}
	e.recycle(ev)
}

// RunUntil dispatches events until the clock would pass deadline or the queue
// drains. The clock finishes exactly at deadline.
func (e *Engine) RunUntil(deadline Time) {
	for {
		ev := e.queue.popLE(deadline)
		if ev == nil {
			break
		}
		e.fire(ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Drain runs until no events remain. The limit guards against runaway
// self-rescheduling loops; Drain panics if more than limit events fire.
func (e *Engine) Drain(limit uint64) {
	start := e.fired
	for e.Step() {
		if e.fired-start > limit {
			panic("simclock: Drain exceeded event limit; runaway reschedule loop?")
		}
	}
}
