package simclock

import "math"

// Rand is a small deterministic pseudo-random source (splitmix64 core) used
// throughout the simulator. It exists so simulations never touch the global
// math/rand state: every component owns a seeded stream and identical seeds
// reproduce identical runs bit-for-bit.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRand(seed uint64) *Rand {
	r := SeededRand(seed)
	return &r
}

// SeededRand is the value form of NewRand, for embedding a generator in a
// pre-allocated record instead of pointing at a separate allocation.
func SeededRand(seed uint64) Rand {
	return Rand{state: seed + 0x9e3779b97f4a7c15}
}

// DeriveSeed deterministically derives an independent child seed from a
// root seed and a stream index (splitmix64 finalizer over both). Concurrent
// sessions each seed their own Rand with DeriveSeed(root, index), so a farm
// run is reproducible bit-for-bit regardless of worker count or goroutine
// interleaving.
func DeriveSeed(root, stream uint64) uint64 {
	z := root ^ (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("simclock: Int63n requires n > 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpDuration draws an exponentially distributed duration with the given
// mean. Used for Poisson arrival processes in the network simulator.
func (r *Rand) ExpDuration(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// UniformDuration draws a uniform duration in [lo, hi].
func (r *Rand) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Int63n(int64(hi-lo)+1))
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation (Box–Muller, one value per call).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
