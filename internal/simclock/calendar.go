package simclock

// calendarQueue is a Brown-style calendar queue (Brown, CACM 1988): pending
// events hash into "day" buckets by timestamp, bucket count and width are a
// power of two (index is a shift and mask), and a cursor scans the current
// "year" window in time order. Schedule and dispatch are O(1) amortized when
// the bucket width tracks the mean gap between pending timestamps, which the
// count-driven rebuilds below maintain.
//
// Within a bucket events are kept sorted by (when, seq), so dispatch order is
// exactly eventBefore — identical to the reference heap, which the property
// tests in calendar_test.go verify on randomized streams.
//
// Every decision (bucket geometry, rebuild trigger, scan order) is a pure
// function of the event population, so runs remain bit-for-bit deterministic.
type calendarQueue struct {
	buckets  [][]*Event
	mask     int  // len(buckets)-1; bucket count is a power of two
	shift    uint // bucket width is 1<<shift microseconds
	count    int
	cur      int  // bucket the scan cursor is parked on
	curStart Time // inclusive start of the cursor bucket's current window
	hi, lo   int  // rebuild thresholds on count
}

const (
	calMinBuckets = 4
	// calInitShift starts buckets at 1 ms wide, a reasonable guess for
	// interactive workloads until the first rebuild measures the real gap.
	calInitShift = 10
	// calMaxShift caps bucket width at ~1 s so a single sparse outlier
	// cannot stretch the year to uselessness.
	calMaxShift = 20

	timeMax = Time(1<<63 - 1)
)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.setGeometry(calMinBuckets, calInitShift)
	return q
}

func (q *calendarQueue) setGeometry(nbuckets int, shift uint) {
	q.buckets = make([][]*Event, nbuckets)
	q.mask = nbuckets - 1
	q.shift = shift
	q.hi = 2 * nbuckets
	if nbuckets > calMinBuckets {
		q.lo = nbuckets / 4
	} else {
		q.lo = 0
	}
}

func (q *calendarQueue) bucketOf(t Time) int { return int(uint64(t)>>q.shift) & q.mask }

func (q *calendarQueue) windowStart(t Time) Time { return Time(uint64(t) >> q.shift << q.shift) }

func (q *calendarQueue) len() int { return q.count }

// push inserts ev into its day bucket, keeping the bucket sorted. The
// cursor invariant — no pending event is earlier than curStart — is
// restored by rewinding the cursor when ev lands behind it (possible after
// popLE parked the cursor on a far-future event and the clock stayed put).
func (q *calendarQueue) push(ev *Event) {
	if q.count == 0 || ev.when < q.curStart {
		q.cur = q.bucketOf(ev.when)
		q.curStart = q.windowStart(ev.when)
	}
	i := q.bucketOf(ev.when)
	q.buckets[i] = insertSorted(q.buckets[i], ev)
	ev.idx = i
	q.count++
	if q.count > q.hi {
		q.rebuild()
	}
}

func insertSorted(b []*Event, ev *Event) []*Event {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(b[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	return b
}

func (q *calendarQueue) pop() *Event { return q.scan(timeMax) }

func (q *calendarQueue) popLE(deadline Time) *Event { return q.scan(deadline) }

// scan removes and returns the earliest pending event if its timestamp is
// <= deadline. The cursor walks successive windows, skipping verified-empty
// ones; because same-window events always share a bucket, the first
// in-window event found is the global minimum. A full lap without a hit
// means the next event is more than a year away, so a direct search over
// bucket heads finds it and re-parks the cursor on its window.
func (q *calendarQueue) scan(deadline Time) *Event {
	if q.count == 0 {
		return nil
	}
	width := Time(1) << q.shift
	cur, curStart := q.cur, q.curStart
	for i := 0; i <= q.mask; i++ {
		if curStart > deadline {
			q.cur, q.curStart = cur, curStart
			return nil
		}
		b := q.buckets[cur]
		if len(b) > 0 && b[0].when < curStart+width {
			ev := b[0]
			q.cur, q.curStart = cur, curStart
			if ev.when > deadline {
				return nil
			}
			q.removeHead(cur)
			return ev
		}
		cur = (cur + 1) & q.mask
		curStart += width
	}
	min := q.minEvent()
	q.cur = q.bucketOf(min.when)
	q.curStart = q.windowStart(min.when)
	if min.when > deadline {
		return nil
	}
	q.removeHead(min.idx)
	return min
}

// removeHead unlinks the first event of bucket i and runs the shrink check.
func (q *calendarQueue) removeHead(i int) {
	b := q.buckets[i]
	ev := b[0]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[i] = b[:len(b)-1]
	ev.idx = -1
	q.count--
	if q.count < q.lo {
		q.rebuild()
	}
}

// minEvent returns the earliest pending event by scanning bucket heads
// (each bucket is sorted, so its head is its minimum).
func (q *calendarQueue) minEvent() *Event {
	var best *Event
	for _, b := range q.buckets {
		if len(b) > 0 && (best == nil || eventBefore(b[0], best)) {
			best = b[0]
		}
	}
	return best
}

// remove unlinks a pending event found by binary search in its bucket.
func (q *calendarQueue) remove(ev *Event) bool {
	b := q.buckets[ev.idx]
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(b[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(b) || b[lo] != ev {
		return false
	}
	copy(b[lo:], b[lo+1:])
	b[len(b)-1] = nil
	q.buckets[ev.idx] = b[:len(b)-1]
	ev.idx = -1
	q.count--
	if q.count < q.lo {
		q.rebuild()
	}
	return true
}

// rebuild resizes the calendar to the live population: bucket count is the
// next power of two >= count, bucket width the power of two nearest twice
// the mean gap between pending timestamps. Both inputs are deterministic
// functions of the pending set, so rebuild timing and geometry never vary
// between runs.
func (q *calendarQueue) rebuild() {
	if q.count == 0 {
		q.setGeometry(calMinBuckets, calInitShift)
		return
	}
	all := make([]*Event, 0, q.count)
	for _, b := range q.buckets {
		all = append(all, b...)
	}
	n := calMinBuckets
	for n < len(all) {
		n <<= 1
	}
	minW, maxW := all[0].when, all[0].when
	for _, ev := range all[1:] {
		if ev.when < minW {
			minW = ev.when
		}
		if ev.when > maxW {
			maxW = ev.when
		}
	}
	gap := int64(maxW-minW) * 2 / int64(len(all))
	var shift uint
	for shift < calMaxShift && int64(1)<<shift < gap {
		shift++
	}
	q.setGeometry(n, shift)
	q.cur = q.bucketOf(minW)
	q.curStart = q.windowStart(minW)
	for _, ev := range all {
		i := q.bucketOf(ev.when)
		q.buckets[i] = insertSorted(q.buckets[i], ev)
		ev.idx = i
	}
	q.count = len(all)
}
