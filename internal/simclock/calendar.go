package simclock

import "slices"

// calendarQueue is a Brown-style calendar queue (Brown, CACM 1988): pending
// events hash into "day" buckets by timestamp, bucket count and width are a
// power of two (index is a shift and mask), and a cursor scans the current
// "year" window in time order. Schedule and dispatch are O(1) amortized when
// the bucket width tracks the mean gap between pending timestamps, which the
// count-driven rebuilds below maintain.
//
// Within a bucket events are kept sorted by (when, seq), so dispatch order is
// exactly eventBefore — identical to the reference heap, which the property
// tests in calendar_test.go verify on randomized streams.
//
// Buckets hold pointer-free calEntry values, not *Event: shifting entries
// during sorted insert and head removal is then a plain memmove with no GC
// write barriers. The *Event itself parks in a slot table, written exactly
// once on push and cleared once on pop — with pointer-bearing bucket slices
// the barrier traffic of entry shifts dominated the whole simulator's CPU
// profile during GC marking phases.
//
// Every decision (bucket geometry, rebuild trigger, scan order) is a pure
// function of the event population, so runs remain bit-for-bit deterministic.
type calendarQueue struct {
	buckets  [][]calEntry
	mask     int  // len(buckets)-1; bucket count is a power of two
	shift    uint // bucket width is 1<<shift microseconds
	count    int
	cur      int  // bucket the scan cursor is parked on
	curStart Time // inclusive start of the cursor bucket's current window
	hi, lo   int  // rebuild thresholds on count
	// slots parks the pending *Events; bucket entries reference them by
	// index so the bucket slices stay pointer-free. freeSlot recycles ids.
	slots    []*Event
	freeSlot []int32
	// spill, backing, cnt, and headers are rebuild scratch, reused so
	// steady-state rebuilds allocate nothing: spill collects the pending
	// entries, cnt sizes each new bucket, backing is carved into bucket
	// slices (with slack, so post-rebuild pushes append in place instead
	// of immediately reallocating a full bucket), and headers backs the
	// buckets slice itself across geometry changes.
	spill   []calEntry
	backing []calEntry
	cnt     []int32
	headers [][]calEntry
}

// calCarveSlack is the spare capacity each carved bucket gets beyond its
// current population.
const calCarveSlack = 8

// calEntry is one pending event as a bucket sees it: the full dispatch key
// plus the slot holding the event. No pointers, so entry shifts are
// barrier-free memmoves.
type calEntry struct {
	when Time
	seq  uint64
	id   int32
}

// entryBefore mirrors eventBefore on the copied keys.
func entryBefore(a, b calEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// entryCmp is entryBefore as a three-way comparison; keys are unique, so
// it never reports equality and the sort order is total.
func entryCmp(a, b calEntry) int {
	if a.when != b.when {
		if a.when < b.when {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	return 1
}

const (
	calMinBuckets = 4
	// calInitShift starts buckets at 1 ms wide, a reasonable guess for
	// interactive workloads until the first rebuild measures the real gap.
	calInitShift = 10
	// calMaxShift caps bucket width at ~1 s so a single sparse outlier
	// cannot stretch the year to uselessness.
	calMaxShift = 20

	timeMax = Time(1<<63 - 1)
)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.setGeometry(calMinBuckets, calInitShift)
	return q
}

func (q *calendarQueue) setGeometry(nbuckets int, shift uint) {
	if cap(q.headers) < nbuckets {
		q.headers = make([][]calEntry, nbuckets)
	}
	q.buckets = q.headers[:nbuckets]
	for i := range q.buckets {
		q.buckets[i] = nil
	}
	q.mask = nbuckets - 1
	q.shift = shift
	q.hi = 2 * nbuckets
	if nbuckets > calMinBuckets {
		q.lo = nbuckets / 4
	} else {
		q.lo = 0
	}
}

func (q *calendarQueue) bucketOf(t Time) int { return int(uint64(t)>>q.shift) & q.mask }

func (q *calendarQueue) windowStart(t Time) Time { return Time(uint64(t) >> q.shift << q.shift) }

func (q *calendarQueue) len() int { return q.count }

// push inserts ev into its day bucket, keeping the bucket sorted. The
// cursor invariant — no pending event is earlier than curStart — is
// restored by rewinding the cursor when ev lands behind it (possible after
// popLE parked the cursor on a far-future event and the clock stayed put).
//
//thinlint:hotpath
func (q *calendarQueue) push(ev *Event) {
	if q.count == 0 || ev.when < q.curStart {
		q.cur = q.bucketOf(ev.when)
		q.curStart = q.windowStart(ev.when)
	}
	var id int32
	if n := len(q.freeSlot); n > 0 {
		id = q.freeSlot[n-1]
		q.freeSlot = q.freeSlot[:n-1]
	} else {
		id = int32(len(q.slots))
		q.slots = append(q.slots, nil)
	}
	q.slots[id] = ev
	i := q.bucketOf(ev.when)
	q.buckets[i] = insertSorted(q.buckets[i], calEntry{when: ev.when, seq: ev.seq, id: id})
	ev.idx = i
	q.count++
	if q.count > q.hi {
		q.rebuild()
	}
}

//thinlint:hotpath
func insertSorted(b []calEntry, ent calEntry) []calEntry {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryBefore(b[mid], ent) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, calEntry{})
	copy(b[lo+1:], b[lo:])
	b[lo] = ent
	return b
}

func (q *calendarQueue) pop() *Event { return q.scan(timeMax) }

func (q *calendarQueue) popLE(deadline Time) *Event { return q.scan(deadline) }

// scan removes and returns the earliest pending event if its timestamp is
// <= deadline. The cursor walks successive windows, skipping verified-empty
// ones; because same-window events always share a bucket, the first
// in-window event found is the global minimum. A full lap without a hit
// means the next event is more than a year away, so a direct search over
// bucket heads finds it and re-parks the cursor on its window.
//
//thinlint:hotpath
func (q *calendarQueue) scan(deadline Time) *Event {
	if q.count == 0 {
		return nil
	}
	width := Time(1) << q.shift
	cur, curStart := q.cur, q.curStart
	for i := 0; i <= q.mask; i++ {
		if curStart > deadline {
			q.cur, q.curStart = cur, curStart
			return nil
		}
		b := q.buckets[cur]
		if len(b) > 0 && b[0].when < curStart+width {
			q.cur, q.curStart = cur, curStart
			if b[0].when > deadline {
				return nil
			}
			return q.removeHead(cur)
		}
		cur = (cur + 1) & q.mask
		curStart += width
	}
	bi := q.minBucket()
	head := q.buckets[bi][0]
	q.cur = q.bucketOf(head.when)
	q.curStart = q.windowStart(head.when)
	if head.when > deadline {
		return nil
	}
	return q.removeHead(bi)
}

// removeHead unlinks the first event of bucket i, runs the shrink check,
// and returns the unlinked event.
//
//thinlint:hotpath
func (q *calendarQueue) removeHead(i int) *Event {
	b := q.buckets[i]
	id := b[0].id
	copy(b, b[1:])
	q.buckets[i] = b[:len(b)-1]
	ev := q.slots[id]
	q.slots[id] = nil
	q.freeSlot = append(q.freeSlot, id)
	ev.idx = -1
	q.count--
	if q.count < q.lo {
		q.rebuild()
	}
	return ev
}

// minBucket returns the bucket whose head is the earliest pending event
// (each bucket is sorted, so its head is its minimum). Only called when
// count > 0.
func (q *calendarQueue) minBucket() int {
	best := -1
	for i, b := range q.buckets {
		if len(b) > 0 && (best < 0 || entryBefore(b[0], q.buckets[best][0])) {
			best = i
		}
	}
	return best
}

// remove unlinks a pending event found by binary search in its bucket.
func (q *calendarQueue) remove(ev *Event) bool {
	b := q.buckets[ev.idx]
	target := calEntry{when: ev.when, seq: ev.seq}
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryBefore(b[mid], target) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(b) || b[lo].when != ev.when || b[lo].seq != ev.seq || q.slots[b[lo].id] != ev {
		return false
	}
	id := b[lo].id
	copy(b[lo:], b[lo+1:])
	q.buckets[ev.idx] = b[:len(b)-1]
	q.slots[id] = nil
	q.freeSlot = append(q.freeSlot, id)
	ev.idx = -1
	q.count--
	if q.count < q.lo {
		q.rebuild()
	}
	return true
}

// rebuild resizes the calendar to the live population: bucket count is the
// next power of two >= count, bucket width the power of two nearest twice
// the mean gap between pending timestamps. Both inputs are deterministic
// functions of the pending set, so rebuild timing and geometry never vary
// between runs. Slot ids are stable across rebuilds; only the bucket
// layout changes.
//
// Entries redistribute through the reused scratch buffers: one global sort
// (keys are unique, so the order is total and deterministic), a counting
// pass to carve backing into exact-capacity buckets, then in-order appends
// that keep every bucket sorted without per-entry shifting.
func (q *calendarQueue) rebuild() {
	if q.count == 0 {
		q.setGeometry(calMinBuckets, calInitShift)
		q.slots = q.slots[:0]
		q.freeSlot = q.freeSlot[:0]
		// Carve empty buckets out of the retained backing so a queue that
		// oscillates between empty and a small population (a link draining
		// between bursts) appends in place instead of regrowing each
		// bucket from nil every cycle.
		if c := cap(q.backing) / calMinBuckets; c > 0 {
			backing := q.backing[:cap(q.backing)]
			for i := range q.buckets {
				q.buckets[i] = backing[i*c : i*c : (i+1)*c]
			}
		}
		return
	}
	all := q.spill[:0]
	for _, b := range q.buckets {
		all = append(all, b...)
	}
	q.spill = all
	n := calMinBuckets
	for n < len(all) {
		n <<= 1
	}
	minW, maxW := all[0].when, all[0].when
	for _, ent := range all[1:] {
		if ent.when < minW {
			minW = ent.when
		}
		if ent.when > maxW {
			maxW = ent.when
		}
	}
	gap := int64(maxW-minW) * 2 / int64(len(all))
	var shift uint
	for shift < calMaxShift && int64(1)<<shift < gap {
		shift++
	}
	q.setGeometry(n, shift)
	q.cur = q.bucketOf(minW)
	q.curStart = q.windowStart(minW)

	slices.SortFunc(all, entryCmp)
	if cap(q.cnt) < n {
		q.cnt = make([]int32, n)
	}
	cnt := q.cnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, ent := range all {
		cnt[q.bucketOf(ent.when)]++
	}
	need := len(all) + n*calCarveSlack
	if cap(q.backing) < need {
		q.backing = make([]calEntry, 0, 2*need)
	}
	backing := q.backing[:cap(q.backing)]
	off := 0
	for i, c := range cnt {
		carve := int(c) + calCarveSlack
		q.buckets[i] = backing[off : off : off+carve]
		off += carve
	}
	for _, ent := range all {
		i := q.bucketOf(ent.when)
		q.buckets[i] = append(q.buckets[i], ent)
		q.slots[ent.id].idx = i
	}
	q.count = len(all)
}
