package simclock

import (
	"testing"
)

// queuePair drives the calendar queue and the reference heap with identical
// event streams and asserts every removal agrees. Events cannot be shared
// between queues (idx is per-queue state), so each logical event exists as a
// twin pair with the same (when, seq).
type queuePair struct {
	t    *testing.T
	cal  *calendarQueue
	heap *heapQueue
	seq  uint64
	// pending tracks live twins for remove targeting, keyed by insertion
	// order (holes compacted on use).
	pending [][2]*Event
	floor   Time // engine invariant: no push earlier than the last pop
}

func newQueuePair(t *testing.T) *queuePair {
	return &queuePair{t: t, cal: newCalendarQueue(), heap: &heapQueue{}}
}

func (p *queuePair) push(when Time) {
	if when < p.floor {
		when = p.floor
	}
	a := &Event{when: when, seq: p.seq, idx: -1}
	b := &Event{when: when, seq: p.seq, idx: -1}
	p.seq++
	p.cal.push(a)
	p.heap.push(b)
	p.pending = append(p.pending, [2]*Event{a, b})
	if p.cal.len() != p.heap.len() {
		p.t.Fatalf("len mismatch after push: calendar %d heap %d", p.cal.len(), p.heap.len())
	}
}

func (p *queuePair) note(got, want *Event, op string) {
	p.t.Helper()
	if (got == nil) != (want == nil) {
		p.t.Fatalf("%s: calendar %v heap %v", op, got, want)
	}
	if got == nil {
		return
	}
	if got.when != want.when || got.seq != want.seq {
		p.t.Fatalf("%s: calendar popped (when=%d seq=%d), heap (when=%d seq=%d)",
			op, got.when, got.seq, want.when, want.seq)
	}
	if got.when < p.floor {
		p.t.Fatalf("%s: popped when %d below floor %d", op, got.when, p.floor)
	}
	p.floor = got.when
	p.drop(got.seq)
}

func (p *queuePair) drop(seq uint64) {
	for i, tw := range p.pending {
		if tw[0].seq == seq {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return
		}
	}
}

func (p *queuePair) pop() bool {
	got, want := p.cal.pop(), p.heap.pop()
	p.note(got, want, "pop")
	return got != nil
}

func (p *queuePair) popLE(deadline Time) bool {
	got, want := p.cal.popLE(deadline), p.heap.popLE(deadline)
	p.note(got, want, "popLE")
	return got != nil
}

func (p *queuePair) remove(i int) {
	if len(p.pending) == 0 {
		return
	}
	tw := p.pending[i%len(p.pending)]
	okA := tw[0].idx >= 0 && p.cal.remove(tw[0])
	okB := tw[1].idx >= 0 && p.heap.remove(tw[1])
	if okA != okB {
		p.t.Fatalf("remove: calendar %v heap %v", okA, okB)
	}
	if okA {
		p.drop(tw[0].seq)
	}
}

func (p *queuePair) drain() {
	for p.pop() {
	}
	if p.cal.len() != 0 || p.heap.len() != 0 {
		p.t.Fatalf("drain left calendar %d heap %d events", p.cal.len(), p.heap.len())
	}
}

// TestCalendarMatchesHeapRandomStreams is the core property test: on
// randomized interleavings of push / pop / bounded pop / mid-queue remove,
// the calendar queue and the reference heap agree on every removal —
// including same-tick ties (decided by seq) and pops that cross rebuilds.
func TestCalendarMatchesHeapRandomStreams(t *testing.T) {
	regimes := []struct {
		name   string
		seed   uint64
		spread Duration // timestamp spread around the floor
		ties   int      // 1-in-n pushes reuse the exact floor timestamp
	}{
		{"dense_ties", 1, 50, 2},
		{"interactive_mix", 2, 5000, 8},
		{"wide_spread", 3, 90 * 1e6, 16},
		{"sparse_years", 4, 3600 * 1e6, 4},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			r := NewRand(reg.seed)
			p := newQueuePair(t)
			for op := 0; op < 4000; op++ {
				switch v := r.Intn(10); {
				case v < 6:
					when := p.floor + Time(r.Int63n(int64(reg.spread)+1))
					if r.Intn(reg.ties) == 0 {
						when = p.floor
					}
					p.push(when)
				case v < 8:
					p.pop()
				case v == 8:
					p.popLE(p.floor + Time(r.Int63n(int64(reg.spread)+1)))
				default:
					p.remove(r.Intn(1 << 20))
				}
			}
			p.drain()
		})
	}
}

// TestCalendarRebuildGrowShrink forces the queue through its full resize
// range: bulk pushes double the calendar repeatedly, then near-total
// removal shrinks it back, with order checked throughout.
func TestCalendarRebuildGrowShrink(t *testing.T) {
	p := newQueuePair(t)
	r := NewRand(99)
	for i := 0; i < 3000; i++ {
		p.push(Time(r.Int63n(20 * 1e6)))
	}
	for i := 0; i < 2900; i++ {
		if r.Intn(3) == 0 {
			p.remove(r.Intn(1 << 20))
		} else {
			p.pop()
		}
	}
	p.push(p.floor + 3600*1e6) // far-future outlier: full-lap direct search
	p.drain()
}

// TestCalendarCursorRewind covers the popLE-then-push-behind case: a
// bounded pop parks the cursor on a far-future event, then new events
// arrive before it and must still come out first.
func TestCalendarCursorRewind(t *testing.T) {
	p := newQueuePair(t)
	p.push(90 * 1e6) // far future parks the cursor after a failed popLE
	if p.popLE(1e6) {
		t.Fatal("popLE returned an event past the deadline")
	}
	p.push(2e6) // behind the parked cursor
	p.push(2e6) // same-tick tie
	if !p.popLE(5e6) || !p.popLE(5e6) {
		t.Fatal("events pushed behind the cursor were not found")
	}
	p.drain()
}

// FuzzCalendarQueue feeds arbitrary operation tapes through both queues.
// Byte pairs decode to (op, argument); deltas stretch up to ~year scale so
// the fuzzer can reach the bucket-rebuild and direct-search paths.
func FuzzCalendarQueue(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 1, 0, 0, 200, 2, 50})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 1, 1, 0, 1, 0})
	// Push bursts at exponentially growing offsets: crosses calMaxShift.
	burst := make([]byte, 0, 64)
	for i := byte(0); i < 32; i++ {
		burst = append(burst, 0, i*8)
	}
	f.Add(burst)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := newQueuePair(t)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], int64(data[i+1])
			switch op % 4 {
			case 0: // push at an exponentially scaled offset
				p.push(p.floor + Time(arg*arg*arg))
			case 1:
				p.pop()
			case 2:
				p.popLE(p.floor + Time(arg*arg))
			case 3:
				p.remove(int(arg))
			}
		}
		p.drain()
	})
}
