package simclock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	var t0 Time
	t1 := t0.Add(5 * Millisecond)
	if t1 != Time(5000) {
		t.Fatalf("Add: got %d, want 5000", t1)
	}
	if d := t1.Sub(t0); d != 5*Millisecond {
		t.Fatalf("Sub: got %v, want 5ms", d)
	}
	if s := Time(1500000).Seconds(); s != 1.5 {
		t.Fatalf("Seconds: got %v, want 1.5", s)
	}
	if ms := Duration(2500).Milliseconds(); ms != 2.5 {
		t.Fatalf("Milliseconds: got %v, want 2.5", ms)
	}
	if Millis(3.5) != Duration(3500) {
		t.Fatalf("Millis(3.5) = %d, want 3500", Millis(3.5))
	}
	if Micros(42) != Duration(42) {
		t.Fatalf("Micros(42) = %d", Micros(42))
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Drain(100)
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Drain(100)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events fired out of insertion order: %v", order)
	}
}

func TestEngineAfterAndRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(5*Millisecond, func(now Time) {
		fired++
		if now != Time(5*Millisecond) {
			t.Errorf("fired at %v, want 5ms", now)
		}
	})
	e.After(15*Millisecond, func(Time) { fired++ })
	e.RunUntil(Time(10 * Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after RunUntil(10ms)", fired)
	}
	if e.Now() != Time(10*Millisecond) {
		t.Fatalf("Now = %v, want exactly 10ms", e.Now())
	}
	e.RunFor(10 * Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after RunFor", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.Drain(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func(Time) { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Scheduled() {
		t.Fatal("event still scheduled after cancel")
	}
	if e.Cancel(ev) {
		t.Fatal("double-cancel returned true")
	}
	e.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var times []Time
	cancel := e.Every(Time(10), 20, func(now Time) { times = append(times, now) })
	e.RunUntil(Time(75))
	cancel()
	e.RunUntil(Time(200))
	want := []Time{10, 30, 50, 70}
	if len(times) != len(want) {
		t.Fatalf("fired %d times (%v), want %v", len(times), times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestEngineEveryZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(period=0) did not panic")
		}
	}()
	e.Every(0, 0, func(Time) {})
}

func TestEngineDrainLimit(t *testing.T) {
	e := NewEngine()
	var loop func(now Time)
	loop = func(now Time) { e.At(now+1, loop) }
	e.At(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("Drain did not panic on runaway loop")
		}
	}()
	e.Drain(1000)
}

func TestEngineEventAccounting(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func(Time) {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	e.Drain(100)
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// Property: events always fire in non-decreasing time order, no matter the
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off), func(now Time) { fired = append(fired, now) })
		}
		e.Drain(uint64(len(offsets)) + 1)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if d := r.UniformDuration(10, 20); d < 10 || d > 20 {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if r.UniformDuration(20, 10) != 20 {
		t.Fatal("UniformDuration with hi<=lo should return lo")
	}
}

func TestRandIntnPanics(t *testing.T) {
	r := NewRand(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandExpDurationMean(t *testing.T) {
	r := NewRand(7)
	const n = 20000
	mean := Duration(1000)
	var sum float64
	for i := 0; i < n; i++ {
		d := r.ExpDuration(mean)
		if d < 0 {
			t.Fatalf("negative exponential draw: %v", d)
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-1000) > 50 {
		t.Fatalf("exponential mean = %.1f, want ~1000", got)
	}
	if r.ExpDuration(0) != 0 {
		t.Fatal("ExpDuration(0) should be 0")
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(9)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("normal stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestDeriveSeedDeterministicAndIndependent(t *testing.T) {
	if DeriveSeed(1999, 0) != DeriveSeed(1999, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Distinct streams and distinct roots must give distinct seeds.
	seen := map[uint64]bool{}
	for root := uint64(0); root < 4; root++ {
		for stream := uint64(0); stream < 64; stream++ {
			s := DeriveSeed(root, stream)
			if seen[s] {
				t.Fatalf("seed collision at root=%d stream=%d", root, stream)
			}
			seen[s] = true
		}
	}
	// Derived streams should not be trivially correlated with the parent.
	a, b := NewRand(DeriveSeed(7, 0)), NewRand(DeriveSeed(7, 1))
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws across derived streams", same)
	}
}
