package simclock

import "testing"

// BenchmarkCalendarPushPop measures the calendar queue's steady-state
// schedule/dispatch cycle at a stable pending population, the regime every
// simulation run spends nearly all its time in. The pointer-free bucket
// entries and the engine's event free list should keep the cycle
// allocation-free; bucket growth and rebuilds amortize to near zero.
func BenchmarkCalendarPushPop(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngineQueue(QueueCalendar)
	fn := func(now Time) {}
	const population = 512
	for i := 0; i < population; i++ {
		eng.At(Time(i*13), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.At(eng.Now()+Time(population*13), fn)
		eng.Step()
	}
}
