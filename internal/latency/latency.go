// Package latency implements the paper's measurement methodology:
// user-perceived latency via Endo et al.'s "measuring lost time" technique,
// cumulative latency curves (Figure 2), interactive-stall extraction from
// display-message inter-arrival times (Figure 3), and jitter statistics.
package latency

import (
	"thinbench/internal/metrics"
	"thinbench/internal/simclock"
)

// PerceptionThreshold is the human perception limit the paper uses: users
// are "generally irritated by latencies 100ms or greater".
const PerceptionThreshold = 100 * simclock.Millisecond

// EventLog accumulates CPU busy events (handler executions) in the style of
// the Pentium-counter/idle-loop instrumentation of Endo et al.: each event
// has a duration, and the distribution of durations characterizes the
// system's compulsory load.
type EventLog struct {
	hist  *metrics.Histogram
	total simclock.Duration
	count int64
}

// NewEventLog builds a log with the given histogram resolution, e.g.
// 10 ms buckets out to 600 ms for Figure 2.
func NewEventLog(bucket simclock.Duration, buckets int) *EventLog {
	return &EventLog{hist: metrics.NewHistogram(bucket.Milliseconds(), buckets)}
}

// Add records one busy event.
func (l *EventLog) Add(d simclock.Duration) {
	l.hist.Add(d.Milliseconds())
	l.total += d
	l.count++
}

// Count reports the number of events.
func (l *EventLog) Count() int64 { return l.count }

// Total reports the aggregate busy time.
func (l *EventLog) Total() simclock.Duration { return l.total }

// CurvePoint is one point of a cumulative latency curve.
type CurvePoint struct {
	// LatencyMs is the event-duration threshold (x axis).
	LatencyMs float64
	// CumulativeSec is the total busy time contributed by events of at
	// most LatencyMs (y axis).
	CumulativeSec float64
}

// CumulativeCurve produces the Figure 2 transform: for each event-length
// threshold, the total time consumed by events no longer than it.
func (l *EventLog) CumulativeCurve() []CurvePoint {
	weighted := l.hist.CumulativeWeighted()
	out := make([]CurvePoint, len(weighted))
	for i, w := range weighted {
		out[i] = CurvePoint{
			LatencyMs:     l.hist.BucketLow(i + 1), // bucket upper edge
			CumulativeSec: w / 1000,
		}
	}
	return out
}

// StallTracker extracts interactive stalls from a stream of display-message
// arrival times, per the paper's Figure 3 methodology: with character
// repeat at 20 Hz the server should emit an update every 50 ms; a stall is
// the amount by which an inter-arrival gap exceeds that period.
type StallTracker struct {
	period simclock.Duration
	last   simclock.Time
	primed bool

	stalls      metrics.Summary
	intervals   metrics.Summary
	perceptible int64
}

// NewStallTracker builds a tracker for the given expected message period.
func NewStallTracker(period simclock.Duration) *StallTracker {
	return &StallTracker{period: period}
}

// Observe records one display-message arrival.
func (s *StallTracker) Observe(t simclock.Time) {
	if !s.primed {
		s.primed = true
		s.last = t
		return
	}
	gap := t.Sub(s.last)
	s.last = t
	s.intervals.Add(gap.Milliseconds())
	stall := gap - s.period
	if stall < 0 {
		stall = 0
	}
	s.stalls.Add(stall.Milliseconds())
	if stall >= PerceptionThreshold {
		s.perceptible++
	}
}

// N reports the number of inter-arrival gaps observed.
func (s *StallTracker) N() int64 { return s.stalls.N() }

// MeanStallMs reports the paper's Figure 3 metric: average stall length.
func (s *StallTracker) MeanStallMs() float64 { return s.stalls.Mean() }

// MaxStallMs reports the worst stall.
func (s *StallTracker) MaxStallMs() float64 { return s.stalls.Max() }

// JitterMs reports the standard deviation of inter-arrival times, the
// paper's consistency metric.
func (s *StallTracker) JitterMs() float64 { return s.intervals.Stddev() }

// Perceptible reports how many stalls crossed the perception threshold.
func (s *StallTracker) Perceptible() int64 { return s.perceptible }

// Report is a bundle of user-perceived latency statistics for one
// experiment condition.
type Report struct {
	Condition   string
	MeanStallMs float64
	MaxStallMs  float64
	JitterMs    float64
	Perceptible int64
	Samples     int64
}

// ReportFrom summarizes a tracker.
func ReportFrom(condition string, s *StallTracker) Report {
	return Report{
		Condition:   condition,
		MeanStallMs: s.MeanStallMs(),
		MaxStallMs:  s.MaxStallMs(),
		JitterMs:    s.JitterMs(),
		Perceptible: s.Perceptible(),
		Samples:     s.N(),
	}
}
