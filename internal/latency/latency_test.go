package latency

import (
	"math"
	"testing"

	"thinbench/internal/simclock"
)

func TestEventLogTotals(t *testing.T) {
	l := NewEventLog(10*simclock.Millisecond, 60)
	l.Add(5 * simclock.Millisecond)
	l.Add(250 * simclock.Millisecond)
	l.Add(250 * simclock.Millisecond)
	if l.Count() != 3 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Total() != 505*simclock.Millisecond {
		t.Fatalf("Total = %v", l.Total())
	}
}

func TestCumulativeCurveShape(t *testing.T) {
	l := NewEventLog(10*simclock.Millisecond, 60)
	// 100 events of 5ms and two of 255ms.
	for i := 0; i < 100; i++ {
		l.Add(5 * simclock.Millisecond)
	}
	l.Add(255 * simclock.Millisecond)
	l.Add(255 * simclock.Millisecond)
	curve := l.CumulativeCurve()
	if len(curve) != 60 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Monotone nondecreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].CumulativeSec < curve[i-1].CumulativeSec {
			t.Fatal("cumulative curve not monotone")
		}
	}
	// The first bucket holds 100 * 5ms = 0.5s; the midpoint estimate is
	// 100 * 5ms = 0.5s exactly (bucket midpoint is 5ms).
	if math.Abs(curve[0].CumulativeSec-0.5) > 1e-9 {
		t.Fatalf("first bucket cumulative = %v, want 0.5", curve[0].CumulativeSec)
	}
	if curve[0].LatencyMs != 10 {
		t.Fatalf("first threshold = %v, want 10", curve[0].LatencyMs)
	}
	// The long events appear only past 250ms.
	at240 := curve[23].CumulativeSec
	at260 := curve[25].CumulativeSec
	if at260 <= at240 {
		t.Fatal("255ms events missing from the curve tail")
	}
	// Final point includes everything: 0.5 + 2*0.255 ≈ 1.01 (midpoint 255).
	last := curve[len(curve)-1].CumulativeSec
	if math.Abs(last-1.01) > 0.01 {
		t.Fatalf("final cumulative = %v, want ~1.01", last)
	}
}

func TestStallTrackerNoStallsAtNominalRate(t *testing.T) {
	s := NewStallTracker(50 * simclock.Millisecond)
	for i := 0; i < 21; i++ {
		s.Observe(simclock.Time(i) * simclock.Time(50*simclock.Millisecond))
	}
	if s.N() != 20 {
		t.Fatalf("N = %d, want 20", s.N())
	}
	if s.MeanStallMs() != 0 {
		t.Fatalf("mean stall = %v, want 0", s.MeanStallMs())
	}
	if s.JitterMs() != 0 {
		t.Fatalf("jitter = %v, want 0", s.JitterMs())
	}
	if s.Perceptible() != 0 {
		t.Fatal("perceptible stalls on a nominal stream")
	}
}

func TestStallTrackerMeasuresGaps(t *testing.T) {
	s := NewStallTracker(50 * simclock.Millisecond)
	times := []int64{0, 50, 100, 300, 350} // one 200ms gap = 150ms stall
	for _, ms := range times {
		s.Observe(simclock.Time(ms) * simclock.Time(simclock.Millisecond))
	}
	if s.MaxStallMs() != 150 {
		t.Fatalf("max stall = %v, want 150", s.MaxStallMs())
	}
	// Mean over 4 gaps: (0+0+150+0)/4 = 37.5.
	if s.MeanStallMs() != 37.5 {
		t.Fatalf("mean stall = %v, want 37.5", s.MeanStallMs())
	}
	if s.Perceptible() != 1 {
		t.Fatalf("perceptible = %d, want 1", s.Perceptible())
	}
	if s.JitterMs() == 0 {
		t.Fatal("jitter should be nonzero with a gap")
	}
}

func TestStallTrackerEarlyArrivalsClampToZero(t *testing.T) {
	s := NewStallTracker(50 * simclock.Millisecond)
	s.Observe(0)
	s.Observe(simclock.Time(20 * simclock.Millisecond)) // early: no negative stall
	if s.MeanStallMs() != 0 {
		t.Fatalf("early arrival produced stall %v", s.MeanStallMs())
	}
}

func TestReportFrom(t *testing.T) {
	s := NewStallTracker(50 * simclock.Millisecond)
	s.Observe(0)
	s.Observe(simclock.Time(250 * simclock.Millisecond))
	r := ReportFrom("tse load=10", s)
	if r.Condition != "tse load=10" || r.Samples != 1 {
		t.Fatalf("report = %+v", r)
	}
	if r.MeanStallMs != 200 || r.Perceptible != 1 {
		t.Fatalf("report stats = %+v", r)
	}
}

func TestPerceptionThreshold(t *testing.T) {
	if PerceptionThreshold != 100*simclock.Millisecond {
		t.Fatal("perception threshold diverges from the paper's 100ms")
	}
}
