package vm

import (
	"testing"
	"testing/quick"

	"thinbench/internal/simclock"
)

func smallConfig() Config {
	return Config{
		PhysicalKB:   64, // 16 frames of 4 KB
		PageKB:       4,
		SwapSeek:     8 * simclock.Millisecond,
		SwapPage:     500 * simclock.Microsecond,
		ClusterPages: 4,
	}
}

func TestTouchFaultsOnlyOnce(t *testing.T) {
	m := New(smallConfig())
	p := m.NewProcess("p", 16)
	if !m.Touch(p, 0) {
		t.Fatal("first touch should fault")
	}
	if m.Touch(p, 0) {
		t.Fatal("second touch should hit")
	}
	if p.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", p.Resident())
	}
	if got := m.Stats().Faults; got != 1 {
		t.Fatalf("faults = %d, want 1", got)
	}
}

func TestTouchAllAndSpan(t *testing.T) {
	m := New(smallConfig())
	p := m.NewProcess("p", 32) // 8 pages
	if f := m.TouchAll(p); f != 8 {
		t.Fatalf("TouchAll faults = %d, want 8", f)
	}
	if f := m.TouchAll(p); f != 0 {
		t.Fatalf("second TouchAll faults = %d, want 0", f)
	}
	m.Evict(p, 2)
	m.Evict(p, 3)
	// Span covering pages 2..3 (KB 8..16).
	if f := m.TouchSpan(p, 8, 8); f != 2 {
		t.Fatalf("TouchSpan faults = %d, want 2", f)
	}
}

func TestTouchOutOfRangePanics(t *testing.T) {
	m := New(smallConfig())
	p := m.NewProcess("p", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range touch did not panic")
		}
	}()
	m.Touch(p, 99)
}

func TestEvictionWhenFull(t *testing.T) {
	m := New(smallConfig()) // 16 frames
	a := m.NewProcess("a", 64)
	b := m.NewProcess("b", 64)
	m.TouchAll(a) // fills memory
	if m.FreePages() != 0 {
		t.Fatalf("free = %d, want 0", m.FreePages())
	}
	m.TouchAll(b) // forces eviction of a
	if a.Resident()+b.Resident() != m.TotalPages() {
		t.Fatalf("resident %d+%d != total %d", a.Resident(), b.Resident(), m.TotalPages())
	}
	if m.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	m := New(smallConfig())
	sys := m.NewProcess("sys", 24) // 6 pages pinned
	sys.Pinned = true
	m.TouchAll(sys)
	hog := m.NewProcess("hog", 256)
	m.TouchAll(hog)
	m.TouchAll(hog)
	if sys.Resident() != 6 {
		t.Fatalf("pinned process lost pages: resident = %d, want 6", sys.Resident())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllPinnedPanics(t *testing.T) {
	m := New(smallConfig())
	sys := m.NewProcess("sys", 64)
	sys.Pinned = true
	m.TouchAll(sys)
	other := m.NewProcess("other", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("allocation with all frames pinned did not panic")
		}
	}()
	m.Touch(other, 0)
}

func TestClockSecondChance(t *testing.T) {
	cfg := smallConfig()
	m := New(cfg)
	a := m.NewProcess("a", 32) // 8 pages
	b := m.NewProcess("b", 64) // 16 pages
	m.TouchAll(a)
	// Fill the rest with b, then keep streaming b. a's pages are
	// referenced; they survive the first sweep but fall on later ones.
	m.TouchAll(b)
	m.TouchAll(b)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.Resident()+b.Resident() != m.TotalPages() {
		t.Fatal("accounting broken after clock churn")
	}
}

func TestInteractiveReservation(t *testing.T) {
	cfg := smallConfig()
	cfg.ReserveInteractive = true
	m := New(cfg)
	editor := m.NewProcess("editor", 24) // 6 pages, interactive
	editor.Interactive = true
	m.TouchAll(editor)
	hog := m.NewProcess("hog", 512)
	m.TouchAll(hog)
	m.TouchAll(hog)
	if editor.Resident() != 6 {
		t.Fatalf("reservation failed: editor resident = %d, want 6", editor.Resident())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReservationFallbackWhenOnlyInteractiveLeft(t *testing.T) {
	cfg := smallConfig()
	cfg.ReserveInteractive = true
	m := New(cfg)
	editor := m.NewProcess("editor", 64) // claims everything, interactive
	editor.Interactive = true
	m.TouchAll(editor)
	hog := m.NewProcess("hog", 8)
	// Nothing but interactive pages exist; the hog must still make progress.
	if !m.Touch(hog, 0) {
		t.Fatal("expected a fault")
	}
	if hog.Resident() != 1 {
		t.Fatal("hog failed to allocate despite fallback")
	}
}

func TestHogThrottleSelfEvicts(t *testing.T) {
	cfg := smallConfig()
	cfg.HogFrameLimit = 0.25 // at most 4 of 16 frames
	m := New(cfg)
	editor := m.NewProcess("editor", 24)
	editor.Interactive = true
	m.TouchAll(editor)
	hog := m.NewProcess("hog", 512)
	m.TouchAll(hog)
	if hog.Resident() > 4 {
		t.Fatalf("throttled hog owns %d frames, limit 4", hog.Resident())
	}
	if editor.Resident() != 6 {
		t.Fatalf("editor lost pages to a throttled hog: %d/6 resident", editor.Resident())
	}
	if m.Stats().SelfEvict == 0 {
		t.Fatal("no self-evictions recorded")
	}
}

func TestEvictAllReleasesFrames(t *testing.T) {
	m := New(smallConfig())
	p := m.NewProcess("p", 32)
	m.TouchAll(p)
	free := m.FreePages()
	m.EvictAll(p)
	if p.Resident() != 0 {
		t.Fatal("EvictAll left resident pages")
	}
	if m.FreePages() != free+8 {
		t.Fatalf("free pages = %d, want %d", m.FreePages(), free+8)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultCostClustering(t *testing.T) {
	m := New(smallConfig()) // seek 8ms, page 0.5ms, cluster 4
	if got := m.FaultCost(0); got != 0 {
		t.Fatalf("FaultCost(0) = %v, want 0", got)
	}
	// 8 faults = 2 clusters: 2*8ms + 8*0.5ms = 20ms.
	if got := m.FaultCost(8); got != 20*simclock.Millisecond {
		t.Fatalf("FaultCost(8) = %v, want 20ms", got)
	}
	// 9 faults = 3 clusters: 24 + 4.5 = 28.5ms.
	if got := m.FaultCost(9); got != simclock.Duration(28500) {
		t.Fatalf("FaultCost(9) = %v, want 28.5ms", got)
	}
}

func TestFreeKBAndResidentKB(t *testing.T) {
	m := New(smallConfig())
	p := m.NewProcess("p", 16)
	m.TouchAll(p)
	if m.ResidentKB(p) != 16 {
		t.Fatalf("ResidentKB = %d, want 16", m.ResidentKB(p))
	}
	if m.FreeKB() != 64-16 {
		t.Fatalf("FreeKB = %d, want 48", m.FreeKB())
	}
}

// Property: under arbitrary touch/evict interleavings, the frame accounting
// invariants hold.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		cfg := smallConfig()
		cfg.PhysicalKB = 128
		m := New(cfg)
		procs := []*Process{
			m.NewProcess("a", 96),
			m.NewProcess("b", 200),
			m.NewProcess("c", 64),
		}
		procs[0].Interactive = true
		for _, op := range ops {
			p := procs[int(op)%len(procs)]
			page := (int(op) / 4) % p.Pages()
			switch (op >> 13) % 3 {
			case 0, 1:
				m.Touch(p, page)
			case 2:
				m.Evict(p, page)
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPagingScenarioLowDemand(t *testing.T) {
	s := PagingScenario{
		Config:       DefaultConfig(),
		SystemKB:     17 * 1024,
		EditorKB:     2 * 1024,
		HogFactor:    0.3, // well under available memory
		HogSeconds:   30,
		BaseResponse: 50 * simclock.Millisecond,
	}
	res := s.Run(simclock.NewRand(1))
	if res.EditorFaults != 0 {
		t.Fatalf("low demand run faulted %d pages, want 0", res.EditorFaults)
	}
	if res.Latency != 50*simclock.Millisecond {
		t.Fatalf("low demand latency = %v, want exactly 50ms", res.Latency)
	}
}

func TestPagingScenarioHighDemand(t *testing.T) {
	s := PagingScenario{
		Config:       DefaultConfig(),
		SystemKB:     17 * 1024,
		EditorKB:     4 * 1024,
		HogFactor:    1.2,
		HogSeconds:   30,
		BaseResponse: 50 * simclock.Millisecond,
	}
	res := s.Run(simclock.NewRand(1))
	if res.EditorEvicted == 0 {
		t.Fatal("streamer failed to evict the editor")
	}
	if res.Latency <= 100*simclock.Millisecond {
		t.Fatalf("high demand latency = %v, want well beyond perception threshold", res.Latency)
	}
	if res.HogTouches == 0 {
		t.Fatal("hog did no work")
	}
}

func TestPagingScenarioReservationFixes(t *testing.T) {
	base := PagingScenario{
		Config:       DefaultConfig(),
		SystemKB:     17 * 1024,
		EditorKB:     4 * 1024,
		HogFactor:    1.2,
		HogSeconds:   30,
		BaseResponse: 50 * simclock.Millisecond,
	}
	fixed := base
	fixed.Config.ReserveInteractive = true
	if res := fixed.Run(simclock.NewRand(1)); res.Latency != 50*simclock.Millisecond {
		t.Fatalf("reservation run latency = %v, want 50ms", res.Latency)
	}
	throttled := base
	throttled.Config.HogFrameLimit = 0.5
	if res := throttled.Run(simclock.NewRand(1)); res.Latency != 50*simclock.Millisecond {
		t.Fatalf("throttled run latency = %v, want 50ms", res.Latency)
	}
}

func TestPagingScenarioRunNSpread(t *testing.T) {
	s := PagingScenario{
		Config:             DefaultConfig(),
		SystemKB:           17 * 1024,
		EditorKB:           4 * 1024,
		HogFactor:          1.2,
		HogSeconds:         30,
		BaseResponse:       50 * simclock.Millisecond,
		SeekJitterFrac:     0.3,
		RandomizeKeystroke: true,
		RefaultProb:        0.3,
	}
	results := s.RunN(10, 42)
	if len(results) != 10 {
		t.Fatalf("RunN returned %d results", len(results))
	}
	min, max := results[0].Latency, results[0].Latency
	for _, r := range results {
		if r.Latency < min {
			min = r.Latency
		}
		if r.Latency > max {
			max = r.Latency
		}
	}
	if max <= min {
		t.Fatal("RunN produced no spread; randomization is broken")
	}
	if float64(max) < 1.5*float64(min) {
		t.Fatalf("spread too tight: min=%v max=%v", min, max)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	s := PagingScenario{
		Config:             DefaultConfig(),
		SystemKB:           17 * 1024,
		EditorKB:           4 * 1024,
		HogFactor:          1.2,
		HogSeconds:         30,
		BaseResponse:       50 * simclock.Millisecond,
		SeekJitterFrac:     0.3,
		RandomizeKeystroke: true,
		RefaultProb:        0.3,
	}
	a := s.RunN(5, 7)
	b := s.RunN(5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}
