// Package vm simulates a paged virtual memory system: a physical frame
// pool shared by processes, a global-clock replacement policy, and a swap
// device with a seek + transfer + clustering cost model.
//
// It reproduces the paper's §5.2 pathology — a streaming, non-interactive
// job evicts an idle interactive application, and the next keystroke pays
// seconds of page-in latency — and implements the fix the paper endorses
// from Evans et al.: reserving physical memory for interactive processes
// and throttling streaming hogs.
package vm

import (
	"fmt"

	"thinbench/internal/simclock"
)

// Config parameterizes the memory system.
type Config struct {
	// PhysicalKB is the machine's physical memory (paper testbed scale:
	// tens of MB).
	PhysicalKB int
	// PageKB is the page size (4 KB on both systems).
	PageKB int
	// SwapSeek is the positioning cost charged once per cluster transfer.
	SwapSeek simclock.Duration
	// SwapPage is the per-page transfer time.
	SwapPage simclock.Duration
	// ClusterPages is the page-in clustering factor (readahead): pages per
	// seek. Linux's swap readahead clusters more aggressively than NT's
	// pagefile reads, one contributor to the paper's 3-4x latency gap.
	ClusterPages int
	// ReserveInteractive, when true, prevents non-interactive processes
	// from evicting interactive processes' frames (the Evans et al.
	// reservation policy). Default off: neither TSE nor Linux protects
	// interactive memory, which is the paper's complaint.
	ReserveInteractive bool
	// HogFrameLimit, when positive, caps the fraction (0..1) of physical
	// frames a single non-interactive process may own, forcing streaming
	// jobs to recycle their own pages (the Evans et al. throttle).
	HogFrameLimit float64
}

// DefaultConfig is a testbed-scale machine: 64 MB RAM, 4 KB pages, and a
// late-90s disk (~8 ms positioning, ~0.5 ms per 4 KB page transfer).
func DefaultConfig() Config {
	return Config{
		PhysicalKB:   64 * 1024,
		PageKB:       4,
		SwapSeek:     8 * simclock.Millisecond,
		SwapPage:     500 * simclock.Microsecond,
		ClusterPages: 8,
	}
}

// Process is an address space: a fixed-size set of virtual pages.
type Process struct {
	Name string
	// Interactive marks the process as interactive for the reservation and
	// throttling policies.
	Interactive bool
	// Pinned pages are never evicted (kernel and wired service memory).
	Pinned bool

	frames   []int32 // per-page frame index, -1 when not resident
	resident int
}

// Pages reports the process's virtual size in pages.
func (p *Process) Pages() int { return len(p.frames) }

// Resident reports the number of resident pages.
func (p *Process) Resident() int { return p.resident }

// IsResident reports whether virtual page i is in memory.
func (p *Process) IsResident(i int) bool { return p.frames[i] >= 0 }

type frame struct {
	owner *Process
	page  int32
	ref   bool
}

// Stats counts memory system activity.
type Stats struct {
	Faults     int64 // page faults (touches to non-resident pages)
	Evictions  int64 // frames reclaimed from a process
	ClockSweep int64 // frames examined by the clock hand
	SelfEvict  int64 // evictions forced by the hog throttle
}

// Manager is the physical memory manager.
type Manager struct {
	cfg    Config
	frames []frame
	free   []int32 // free frame list
	hand   int32   // clock hand
	procs  []*Process
	stats  Stats
}

// New builds a manager for the configured physical memory.
func New(cfg Config) *Manager {
	if cfg.PageKB <= 0 {
		cfg.PageKB = 4
	}
	if cfg.ClusterPages <= 0 {
		cfg.ClusterPages = 1
	}
	n := cfg.PhysicalKB / cfg.PageKB
	if n <= 0 {
		panic("vm: no physical memory configured")
	}
	m := &Manager{cfg: cfg, frames: make([]frame, n), free: make([]int32, 0, n)}
	for i := n - 1; i >= 0; i-- {
		m.frames[i].page = -1
		m.free = append(m.free, int32(i))
	}
	return m
}

// Config reports the active configuration.
func (m *Manager) Config() Config { return m.cfg }

// Stats reports cumulative activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// TotalPages reports physical memory size in pages.
func (m *Manager) TotalPages() int { return len(m.frames) }

// FreePages reports the current free frame count.
func (m *Manager) FreePages() int { return len(m.free) }

// FreeKB reports free memory in KB.
func (m *Manager) FreeKB() int { return len(m.free) * m.cfg.PageKB }

// ResidentKB reports a process's resident set in KB.
func (m *Manager) ResidentKB(p *Process) int { return p.resident * m.cfg.PageKB }

// NewProcess creates a process with sizeKB of virtual memory, initially
// fully non-resident.
func (m *Manager) NewProcess(name string, sizeKB int) *Process {
	pages := (sizeKB + m.cfg.PageKB - 1) / m.cfg.PageKB
	p := &Process{Name: name, frames: make([]int32, pages)}
	for i := range p.frames {
		p.frames[i] = -1
	}
	m.procs = append(m.procs, p)
	return p
}

// Touch references virtual page i of p, faulting it in if needed.
// It reports whether a fault occurred.
func (m *Manager) Touch(p *Process, i int) bool {
	if i < 0 || i >= len(p.frames) {
		panic(fmt.Sprintf("vm: touch out of range: page %d of %d-page process %s", i, len(p.frames), p.Name))
	}
	if f := p.frames[i]; f >= 0 {
		m.frames[f].ref = true
		return false
	}
	m.stats.Faults++
	f := m.allocFrame(p)
	m.frames[f] = frame{owner: p, page: int32(i), ref: true}
	p.frames[i] = f
	p.resident++
	return true
}

// TouchAll references every page of p in order, returning the fault count.
func (m *Manager) TouchAll(p *Process) int {
	faults := 0
	for i := range p.frames {
		if m.Touch(p, i) {
			faults++
		}
	}
	return faults
}

// TouchSpan references pages covering [startKB, startKB+lenKB), returning
// the fault count.
func (m *Manager) TouchSpan(p *Process, startKB, lenKB int) int {
	first := startKB / m.cfg.PageKB
	last := (startKB + lenKB - 1) / m.cfg.PageKB
	faults := 0
	for i := first; i <= last && i < len(p.frames); i++ {
		if m.Touch(p, i) {
			faults++
		}
	}
	return faults
}

// Evict removes virtual page i of p from memory (no-op when not resident).
func (m *Manager) Evict(p *Process, i int) {
	f := p.frames[i]
	if f < 0 {
		return
	}
	m.frames[f] = frame{page: -1}
	p.frames[i] = -1
	p.resident--
	m.free = append(m.free, f)
	m.stats.Evictions++
}

// EvictAll removes every resident page of p (process exit).
func (m *Manager) EvictAll(p *Process) {
	for i := range p.frames {
		m.Evict(p, i)
	}
}

// allocFrame finds a frame for p, reclaiming one when memory is full.
func (m *Manager) allocFrame(p *Process) int32 {
	// Hog throttle: a capped process past its limit must recycle its own
	// frames even if free memory exists elsewhere.
	if m.cfg.HogFrameLimit > 0 && !p.Interactive {
		limit := int(m.cfg.HogFrameLimit * float64(len(m.frames)))
		if p.resident >= limit {
			if f := m.reclaimFrom(p); f >= 0 {
				m.stats.SelfEvict++
				return f
			}
		}
	}
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		return f
	}
	return m.clockReclaim(p)
}

// clockReclaim runs the global clock over frames: referenced frames get a
// second chance; the first unreferenced, unpinned, policy-eligible frame is
// reclaimed. Guaranteed to terminate: after two full sweeps every
// reclaimable frame has had its reference bit cleared.
func (m *Manager) clockReclaim(for_ *Process) int32 {
	n := int32(len(m.frames))
	protectInteractive := m.cfg.ReserveInteractive && !for_.Interactive
	var fallback int32 = -1
	for sweep := int32(0); sweep < 3*n; sweep++ {
		i := m.hand
		m.hand = (m.hand + 1) % n
		fr := &m.frames[i]
		m.stats.ClockSweep++
		if fr.owner == nil || fr.owner.Pinned {
			continue
		}
		if protectInteractive && fr.owner.Interactive {
			if fallback < 0 {
				fallback = i // reclaim only if nothing else exists
			}
			continue
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		return m.takeFrame(i)
	}
	if fallback >= 0 {
		return m.takeFrame(fallback)
	}
	panic("vm: out of memory: all frames pinned")
}

// reclaimFrom reclaims one of p's own frames (oldest by clock order),
// or -1 when p has none resident.
func (m *Manager) reclaimFrom(p *Process) int32 {
	n := int32(len(m.frames))
	var candidate int32 = -1
	for sweep := int32(0); sweep < 2*n; sweep++ {
		i := m.hand
		m.hand = (m.hand + 1) % n
		fr := &m.frames[i]
		if fr.owner != p {
			continue
		}
		if fr.ref {
			fr.ref = false
			if candidate < 0 {
				candidate = i
			}
			continue
		}
		return m.takeFrame(i)
	}
	if candidate >= 0 {
		return m.takeFrame(candidate)
	}
	return -1
}

// takeFrame detaches frame i from its owner and returns it.
func (m *Manager) takeFrame(i int32) int32 {
	fr := &m.frames[i]
	if fr.owner != nil {
		fr.owner.frames[fr.page] = -1
		fr.owner.resident--
		m.stats.Evictions++
	}
	*fr = frame{page: -1}
	return i
}

// FaultCost converts a fault count into page-in time under the clustering
// disk model: one seek per cluster plus a per-page transfer.
func (m *Manager) FaultCost(faults int) simclock.Duration {
	if faults <= 0 {
		return 0
	}
	clusters := (faults + m.cfg.ClusterPages - 1) / m.cfg.ClusterPages
	return simclock.Duration(clusters)*m.cfg.SwapSeek + simclock.Duration(faults)*m.cfg.SwapPage
}

// CheckInvariants validates internal accounting: every resident page maps to
// a frame owned by it, resident+free counts add up, and no frame is double
// mapped. Used by property tests and available to callers as a debugging
// aid; it returns an error describing the first violation found.
func (m *Manager) CheckInvariants() error {
	used := 0
	for fi := range m.frames {
		fr := m.frames[fi]
		if fr.owner == nil {
			continue
		}
		used++
		if fr.page < 0 || int(fr.page) >= len(fr.owner.frames) {
			return fmt.Errorf("frame %d maps out-of-range page %d of %s", fi, fr.page, fr.owner.Name)
		}
		if fr.owner.frames[fr.page] != int32(fi) {
			return fmt.Errorf("frame %d and process %s disagree about page %d", fi, fr.owner.Name, fr.page)
		}
	}
	if used+len(m.free) != len(m.frames) {
		return fmt.Errorf("frame leak: %d used + %d free != %d total", used, len(m.free), len(m.frames))
	}
	for _, p := range m.procs {
		count := 0
		for _, f := range p.frames {
			if f >= 0 {
				count++
			}
		}
		if count != p.resident {
			return fmt.Errorf("process %s resident count %d != actual %d", p.Name, p.resident, count)
		}
	}
	return nil
}
