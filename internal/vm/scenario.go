package vm

import (
	"thinbench/internal/simclock"
)

// PagingScenario reproduces the paper's §5.2 experiment: an interactive
// editor sits idle ("think time") while a streaming job touches more memory
// than the machine has; after 30 seconds the user types one keystroke and
// the editor's working set must page back in from disk.
type PagingScenario struct {
	Config Config
	// SystemKB is pinned kernel + service memory (17 MB Linux, 19 MB TSE).
	SystemKB int
	// EditorKB is the interactive session's working set: the per-session
	// login processes plus the editor application and its library pages.
	EditorKB int
	// HogFactor sizes the streaming job relative to physical memory.
	// Values >= 1 model the paper's ">= 100% page demand" column; smaller
	// values leave the editor resident.
	HogFactor float64
	// HogSeconds is how long the streamer runs before the keystroke.
	HogSeconds int
	// BaseResponse is the no-fault keystroke response time (the paper's
	// 50 ms screen-update cadence).
	BaseResponse simclock.Duration
	// SeekJitterFrac adds per-cluster positioning noise: each seek is drawn
	// from Normal(SwapSeek, SwapSeek*frac), floored at a quarter seek.
	SeekJitterFrac float64
	// StreamClusterPages is the clustering factor for the hog's sequential
	// streaming (defaults to 8): sequential reads cluster well on either
	// OS; Config.ClusterPages governs only the editor's page-ins, which is
	// where the systems differ.
	StreamClusterPages int
	// RandomizeKeystroke enables the run-to-run variation behind the
	// paper's min/avg/max spread: the redraw touches a random fraction of
	// the working set (a repaint may need only the visible buffer, or a
	// full relayout), and with RefaultProb the still-active streamer
	// re-evicts pages mid-page-in, charging extra faults.
	RandomizeKeystroke bool
	// RefaultProb is the chance a run suffers refaulting (0..1).
	RefaultProb float64
	// TouchFloor is the minimum working-set fraction a keystroke repaint
	// touches (default 0.12). The paper's TSE min latency is a much larger
	// share of its average than Linux's, reflecting NT's deeper
	// GDI/csrss repaint path touching more of the set every time.
	TouchFloor float64
}

// PagingResult reports one run of the scenario.
type PagingResult struct {
	// Latency is the measured keystroke-to-update time.
	Latency simclock.Duration
	// EditorFaults is how many editor page-ins the keystroke paid for
	// (including refaults).
	EditorFaults int
	// EditorEvicted is how many editor pages the streamer displaced.
	EditorEvicted int
	// HogTouches is how many pages the streamer touched in its run.
	HogTouches int
}

// Run executes the scenario once with the given random stream.
func (s PagingScenario) Run(rng *simclock.Rand) PagingResult {
	m := New(s.Config)

	system := m.NewProcess("system", s.SystemKB)
	system.Pinned = true
	m.TouchAll(system)

	editor := m.NewProcess("editor-session", s.EditorKB)
	editor.Interactive = true
	m.TouchAll(editor)
	residentBefore := editor.Resident()

	// The streamer touches each byte of a region sized HogFactor x physical
	// memory, sequentially with wraparound, for HogSeconds of disk-bound
	// virtual time. Sequential streaming is cluster-friendly, so each fault
	// costs an amortized share of a seek plus one page transfer.
	hogKB := int(s.HogFactor * float64(s.Config.PhysicalKB))
	result := PagingResult{}
	if hogKB > 0 {
		hog := m.NewProcess("streamer", hogKB)
		streamCluster := s.StreamClusterPages
		if streamCluster <= 0 {
			streamCluster = 8
		}
		perFault := s.Config.SwapSeek/simclock.Duration(streamCluster) + s.Config.SwapPage
		perHit := simclock.Microsecond
		budget := simclock.Duration(s.HogSeconds) * simclock.Second
		var elapsed simclock.Duration
		page := 0
		for elapsed < budget {
			if m.Touch(hog, page) {
				elapsed += perFault
			} else {
				elapsed += perHit
			}
			result.HogTouches++
			page++
			if page >= hog.Pages() {
				page = 0
			}
		}
	}
	result.EditorEvicted = residentBefore - editor.Resident()

	// The keystroke. The redraw touches some or all of the working set;
	// non-resident pages fault back in from swap.
	fraction := 1.0
	refault := 1.0
	if s.RandomizeKeystroke && rng != nil {
		floor := s.TouchFloor
		if floor <= 0 {
			floor = 0.12
		}
		u := rng.Float64()
		fraction = floor + (1-floor)*u*u // skewed toward partial repaints
		if rng.Float64() < s.RefaultProb {
			refault = 1.0 + 1.8*rng.Float64()
		}
	}
	touchPages := int(fraction * float64(editor.Pages()))
	if touchPages < 1 {
		touchPages = 1
	}
	faults := 0
	for i := 0; i < touchPages; i++ {
		if m.Touch(editor, i) {
			faults++
		}
	}
	faults = int(float64(faults) * refault)
	result.EditorFaults = faults
	result.Latency = s.BaseResponse + s.faultCostNoisy(faults, rng)
	return result
}

// faultCostNoisy is FaultCost with per-cluster seek jitter.
func (s PagingScenario) faultCostNoisy(faults int, rng *simclock.Rand) simclock.Duration {
	if faults <= 0 {
		return 0
	}
	cp := s.Config.ClusterPages
	if cp <= 0 {
		cp = 1
	}
	clusters := (faults + cp - 1) / cp
	total := simclock.Duration(faults) * s.Config.SwapPage
	for i := 0; i < clusters; i++ {
		seek := s.Config.SwapSeek
		if s.SeekJitterFrac > 0 && rng != nil {
			drawn := simclock.Duration(rng.Normal(float64(seek), s.SeekJitterFrac*float64(seek)))
			floor := seek / 4
			if drawn < floor {
				drawn = floor
			}
			seek = drawn
		}
		total += seek
	}
	return total
}

// RunN executes the scenario n times with distinct substreams and returns
// all results, matching the paper's "ranges and averages over ten runs".
func (s PagingScenario) RunN(n int, seed uint64) []PagingResult {
	out := make([]PagingResult, 0, n)
	for i := 0; i < n; i++ {
		// Predates DeriveSeed; the published paging averages are functions
		// of these exact substreams.
		rng := simclock.NewRand(seed + uint64(i)*1001) //thinlint:allow seedflow.adhoc frozen: changing the substreams would move published paging results
		out = append(out, s.Run(rng))
	}
	return out
}
