// Package workload generates the user behaviors the paper measures:
// 20 Hz keystroke repeat, office-application interaction sessions
// (word processing, bitmap painting, control-panel configuration),
// animated banner advertisements, scrolling marquee tickers, the combined
// synthetic web page of Figure 4, and parameterized looping animations for
// the bitmap-cache studies of Figures 5-7.
//
// A workload is a Trace: timestamped display-update batches (what the
// application drew) and input batches (what the user did). Traces are
// deterministic in their parameters, so every protocol sees a byte-
// identical behavior stream — the property the paper's §6.1.2 comparison
// depends on.
package workload

import (
	"sort"

	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

// DisplayBatch is one application flush: the drawing operations generated
// together (one damage pass, one animation frame, one character echo). The
// operations live as entries [From, To) of a shared pointer-free op tape —
// a whole trace's drawing typically shares one tape — so storing, replaying,
// and encoding a trace never boxes an op into the display.Op interface.
type DisplayBatch struct {
	At       simclock.Time
	Tape     *display.OpTape
	From, To int
}

// Len reports the batch's operation count.
func (b DisplayBatch) Len() int { return b.To - b.From }

// Ops materializes the batch's span as boxed display.Op values, for tests
// and diagnostics; replay paths encode straight from the tape instead.
func (b DisplayBatch) Ops() []display.Op {
	if b.Tape == nil {
		return nil
	}
	return b.Tape.AppendTo(nil, b.From, b.To)
}

// InputBatch is the input events gathered in one client flush interval.
type InputBatch struct {
	At     simclock.Time
	Events []display.InputEvent
}

// Trace is a complete, ordered behavior recording.
type Trace struct {
	Name    string
	Display []DisplayBatch
	Input   []InputBatch
}

// Duration reports the time of the last batch in the trace.
func (t *Trace) Duration() simclock.Duration {
	var last simclock.Time
	if n := len(t.Display); n > 0 && t.Display[n-1].At > last {
		last = t.Display[n-1].At
	}
	if n := len(t.Input); n > 0 && t.Input[n-1].At > last {
		last = t.Input[n-1].At
	}
	return simclock.Duration(last)
}

// Shift offsets every batch by d.
func (t *Trace) Shift(d simclock.Duration) {
	for i := range t.Display {
		t.Display[i].At = t.Display[i].At.Add(d)
	}
	for i := range t.Input {
		t.Input[i].At = t.Input[i].At.Add(d)
	}
}

// Append concatenates another trace after this one's end, preserving order.
func (t *Trace) Append(o Trace) {
	o.Shift(t.Duration())
	t.Display = append(t.Display, o.Display...)
	t.Input = append(t.Input, o.Input...)
}

// Merge interleaves another trace at its own timestamps.
func (t *Trace) Merge(o Trace) {
	t.Display = append(t.Display, o.Display...)
	t.Input = append(t.Input, o.Input...)
	sort.SliceStable(t.Display, func(i, j int) bool { return t.Display[i].At < t.Display[j].At })
	sort.SliceStable(t.Input, func(i, j int) bool { return t.Input[i].At < t.Input[j].At })
}

// Ops reports the total display operation count.
func (t *Trace) Ops() int {
	n := 0
	for _, b := range t.Display {
		n += b.Len()
	}
	return n
}

// Events reports the total input event count.
func (t *Trace) Events() int {
	n := 0
	for _, b := range t.Input {
		n += len(b.Events)
	}
	return n
}

// builder accumulates batches with a moving clock. All display batches
// append into one owned op tape; hot generation loops write the tape
// directly (open/commit) while compound flushes go through draw.
type builder struct {
	t    Trace
	now  simclock.Time
	rng  *simclock.Rand
	tape *display.OpTape

	pendingInput []display.InputEvent
	inputFlush   simclock.Duration
	lastFlush    simclock.Time
}

func newBuilder(name string, seed uint64, inputFlush simclock.Duration) *builder {
	return &builder{
		t:          Trace{Name: name},
		rng:        simclock.NewRand(seed),
		tape:       new(display.OpTape),
		inputFlush: inputFlush,
	}
}

// advance moves the clock, flushing input batches on window boundaries.
func (b *builder) advance(d simclock.Duration) {
	b.now = b.now.Add(d)
	if len(b.pendingInput) > 0 && b.now.Sub(b.lastFlush) >= b.inputFlush {
		b.flushInput()
	}
}

func (b *builder) flushInput() {
	if len(b.pendingInput) == 0 {
		return
	}
	b.t.Input = append(b.t.Input, InputBatch{At: b.now, Events: b.pendingInput})
	b.pendingInput = nil
	b.lastFlush = b.now
}

func (b *builder) input(evs ...display.InputEvent) {
	b.pendingInput = append(b.pendingInput, evs...)
}

func (b *builder) draw(ops ...display.Op) {
	if len(ops) == 0 {
		return
	}
	from := b.open()
	b.tape.AppendOps(ops)
	b.commit(from)
}

// open starts a display batch at the current instant: append operations to
// b.tape, then commit the returned mark. Between open and commit the clock
// must not advance.
func (b *builder) open() int { return b.tape.Len() }

// commit flushes the operations appended since the matching open as one
// batch; an empty span is dropped.
func (b *builder) commit(from int) {
	if b.tape.Len() == from {
		return
	}
	b.t.Display = append(b.t.Display, DisplayBatch{At: b.now, Tape: b.tape, From: from, To: b.tape.Len()})
}

func (b *builder) finish() Trace {
	b.flushInput()
	return b.t
}
