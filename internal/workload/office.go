package workload

import (
	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

// OfficeConfig scales the §6.1.2 application workload: a predefined set of
// user interactions with a word processor (WordPerfect in the paper), a
// bitmap editor (the Gimp), and a control-panel applet.
type OfficeConfig struct {
	Seed uint64
	// TypingChars is the number of characters typed in the word processor.
	TypingChars int
	// PaintStrokes is the number of brush strokes drawn in the editor.
	PaintStrokes int
	// PanelActions is the number of control-panel interactions.
	PanelActions int
	// ReviewScrolls is the number of scroll steps while reading the
	// document back (mouse-heavy, display-light).
	ReviewScrolls int
	// InputFlush is the client-side input flush window; motion events
	// gathered within one window share a batch.
	InputFlush simclock.Duration
}

// DefaultOfficeConfig sizes the workload to several minutes of active use,
// with the motion-heavy interaction profile the paper's input-channel
// numbers imply (tens of thousands of pointer events).
func DefaultOfficeConfig() OfficeConfig {
	return OfficeConfig{
		Seed:          0x0ff1ce,
		TypingChars:   2400,
		PaintStrokes:  100,
		PanelActions:  30,
		ReviewScrolls: 300,
		InputFlush:    25 * simclock.Millisecond,
	}
}

// OfficeTrace generates the full §6.1.2 workload: WordPerfect editing,
// Gimp painting, control-panel configuration, and a document review pass.
func OfficeTrace(cfg OfficeConfig) Trace {
	b := newBuilder("office", cfg.Seed, cfg.InputFlush)
	wordProcessor(b, cfg)
	bitmapEditor(b, cfg)
	controlPanel(b, cfg)
	documentReview(b, cfg)
	return b.finish()
}

// uiIcon returns one of a small set of repeated interface bitmaps
// (toolbar buttons, window decorations): flat-colored and reused
// constantly, exactly the content the TSE bitmap cache was designed for.
func uiIcon(n int) *display.Bitmap {
	return display.SyntheticFrame(0x1c0f+uint64(n%12), 0, 24, 24)
}

// windowChrome draws a window frame: title bar, borders, toolbar icons.
func windowChrome(b *builder, x, y, w, h int, title string) {
	from := b.open()
	b.tape.Fill(display.Rect{X: x, Y: y, W: w, H: h}, 7)
	b.tape.Fill(display.Rect{X: x, Y: y, W: w, H: 18}, 4)
	b.tape.Text(x+4, y+2, title, 15)
	b.commit(from)
	from = b.open()
	for i := 0; i < 8; i++ {
		b.tape.Blit(x+4+i*28, y+22, uiIcon(i))
	}
	b.commit(from)
}

// wordProcessor models document editing: typing with character echo,
// periodic word wrap and scrolling, menu usage.
func wordProcessor(b *builder, cfg OfficeConfig) {
	windowChrome(b, 40, 30, 640, 460, "WordPerfect - report.wpd")
	col, line := 0, 0
	for i := 0; i < cfg.TypingChars; i++ {
		// Keystroke: press + release, then the echo drawn at the caret.
		code := uint16(30 + b.rng.Intn(26))
		b.input(display.KeyEvent{Down: true, Code: code})
		b.advance(30 * simclock.Millisecond)
		b.input(display.KeyEvent{Down: false, Code: code})
		ch := string(rune('a' + int(code-30)))
		from := b.open()
		b.tape.Text(56+col*display.GlyphW, 80+line*16, ch, 0)
		b.commit(from)
		col++
		if col >= 70 { // word wrap
			col, line = 0, line+1
			if line >= 24 { // scroll the document up one line
				line = 23
				from = b.open()
				b.tape.Copy(display.Rect{X: 56, Y: 96, W: 560, H: 368}, 56, 80)
				b.tape.Fill(display.Rect{X: 56, Y: 448, W: 560, H: 16}, 7)
				b.commit(from)
			}
		}
		// Typing cadence with jitter around ~7 chars/sec.
		b.advance(b.rng.UniformDuration(80*simclock.Millisecond, 200*simclock.Millisecond))
		// Occasionally open a menu: mouse travel + a menu panel with icons.
		if i%400 == 399 {
			mouseTravel(b, 56+col*8, 80+line*16, 120, 36, 14)
			from = b.open()
			b.tape.Fill(display.Rect{X: 100, Y: 50, W: 180, H: 220}, 7)
			b.tape.Text(104, 54, "File Edit View Insert", 0)
			b.tape.Blit(104, 70, uiIcon(9))
			b.tape.Blit(104, 98, uiIcon(10))
			b.commit(from)
			b.input(display.MouseButton{Down: true, Button: 1})
			b.advance(100 * simclock.Millisecond)
			b.input(display.MouseButton{Down: false, Button: 1})
			// Menu closes: the document region repaints.
			from = b.open()
			b.tape.Fill(display.Rect{X: 100, Y: 50, W: 180, H: 220}, 7)
			b.commit(from)
			mouseTravel(b, 120, 36, 56+col*8, 80+line*16, 10)
		}
	}
}

// brushStamp returns the brush stamp bitmap for one stroke. Within a
// stroke the same stamp lands again and again — repeated content that a
// bitmap cache turns into swap messages while X must retransmit the pixels
// every placement. Each stroke's brush differs (color/size tweaks), so the
// cache pays a fresh miss per stroke.
func brushStamp(stroke int) *display.Bitmap {
	return display.SyntheticBlocky(0xb25+uint64(stroke), 0, 32, 32, 3)
}

// bitmapEditor models the paper's Gimp task, "creating a simple bitmap":
// drag strokes stamping the brush onto a canvas — motion-heavy input and
// image-heavy display. Stroke ends occasionally produce a unique blended
// region (filter preview), content no cache can help with.
func bitmapEditor(b *builder, cfg OfficeConfig) {
	windowChrome(b, 100, 80, 560, 420, "The GIMP - untitled.xcf")
	// Tool palette with repeated icons.
	from := b.open()
	for i := 0; i < 12; i++ {
		b.tape.Blit(110, 130+i*28, uiIcon(i))
	}
	b.commit(from)
	for s := 0; s < cfg.PaintStrokes; s++ {
		// Move to the stroke start.
		x0, y0 := 180+b.rng.Intn(380), 150+b.rng.Intn(300)
		mouseTravel(b, 200, 200, x0, y0, 12+b.rng.Intn(10))
		b.input(display.MouseButton{Down: true, Button: 1})
		stamp := brushStamp(s)
		// Drag: continuous motion at ~80 Hz; every few samples the brush
		// stamps the canvas.
		steps := 60 + b.rng.Intn(80)
		x, y := x0, y0
		for i := 0; i < steps; i++ {
			x += b.rng.Intn(9) - 4
			y += b.rng.Intn(7) - 3
			b.input(display.MouseMove{X: x, Y: y})
			b.advance(12 * simclock.Millisecond)
			if i%3 == 0 {
				from = b.open()
				b.tape.Blit(x-16, y-16, stamp)
				b.commit(from)
			}
		}
		b.input(display.MouseButton{Down: false, Button: 1})
		// Filter/blend preview after each stroke: a unique photographic
		// region no cache or codec can shrink.
		from = b.open()
		b.tape.Blit(x-32, y-32, display.SyntheticPhoto(0xb1e4d, s, 64, 64))
		b.commit(from)
		b.advance(b.rng.UniformDuration(200*simclock.Millisecond, 900*simclock.Millisecond))
	}
}

// documentReview models reading the document back: continuous pointer
// movement and scroll steps that cost the display channel almost nothing
// (CopyArea plus one repainted line) while the input channel streams
// motion — the traffic profile where X's 32-byte events hurt most.
func documentReview(b *builder, cfg OfficeConfig) {
	x, y := 400, 300
	for s := 0; s < cfg.ReviewScrolls; s++ {
		// Wander the pointer while reading.
		steps := 30 + b.rng.Intn(30)
		for i := 0; i < steps; i++ {
			x += b.rng.Intn(13) - 6
			y += b.rng.Intn(9) - 4
			b.input(display.MouseMove{X: x, Y: y})
			b.advance(14 * simclock.Millisecond)
		}
		// Scroll one line.
		b.input(display.MouseButton{Down: true, Button: 4})
		b.input(display.MouseButton{Down: false, Button: 4})
		from := b.open()
		b.tape.Copy(display.Rect{X: 56, Y: 96, W: 560, H: 368}, 56, 80)
		b.tape.Fill(display.Rect{X: 56, Y: 448, W: 560, H: 16}, 7)
		b.tape.Text(56, 448, "the quick brown fox jumps over the lazy dog", 0)
		b.commit(from)
		b.advance(b.rng.UniformDuration(100*simclock.Millisecond, 400*simclock.Millisecond))
	}
}

// controlPanel models applet configuration: dialog navigation with
// repeated widget bitmaps, label text, and field entry.
func controlPanel(b *builder, cfg OfficeConfig) {
	windowChrome(b, 200, 120, 420, 340, "Network Configuration")
	for a := 0; a < cfg.PanelActions; a++ {
		// Move to a tab or widget and click.
		mouseTravel(b, 300+b.rng.Intn(40), 300, 220+b.rng.Intn(360), 140+b.rng.Intn(280), 16)
		b.input(display.MouseButton{Down: true, Button: 1})
		b.advance(90 * simclock.Millisecond)
		b.input(display.MouseButton{Down: false, Button: 1})
		// The tab body repaints: panel fill, labels, repeated widgets.
		from := b.open()
		b.tape.Fill(display.Rect{X: 208, Y: 160, W: 404, H: 290}, 7)
		b.tape.Text(216, 170, "IP Address:", 0)
		b.tape.Text(216, 200, "Subnet Mask:", 0)
		b.tape.Text(216, 230, "Default Gateway:", 0)
		for i := 0; i < 5; i++ {
			b.tape.Blit(560, 166+i*30, uiIcon(i+4))
		}
		b.commit(from)
		// Type a short value into a field.
		for i := 0; i < 11; i++ {
			code := uint16(2 + b.rng.Intn(10))
			b.input(display.KeyEvent{Down: true, Code: code})
			b.advance(40 * simclock.Millisecond)
			b.input(display.KeyEvent{Down: false, Code: code})
			from = b.open()
			b.tape.Text(320+i*display.GlyphW, 170+(a%3)*30, "0", 0)
			b.commit(from)
			b.advance(80 * simclock.Millisecond)
		}
		b.advance(b.rng.UniformDuration(300*simclock.Millisecond, 1200*simclock.Millisecond))
	}
}

// mouseTravel emits motion samples along the path from (x0,y0) to (x1,y1)
// at the era's ~60-80 Hz mouse sampling rate.
func mouseTravel(b *builder, x0, y0, x1, y1, steps int) {
	if steps < 1 {
		steps = 1
	}
	for i := 1; i <= steps; i++ {
		x := x0 + (x1-x0)*i/steps
		y := y0 + (y1-y0)*i/steps
		b.input(display.MouseMove{X: x, Y: y})
		b.advance(14 * simclock.Millisecond)
	}
}
