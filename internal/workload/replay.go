package workload

import (
	"fmt"

	"thinbench/internal/proto"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
)

// ReplayOpts models each protocol's flushing behavior during a Replay.
type ReplayOpts struct {
	// InputCoalesce merges input batches closer together than this into
	// one EncodeInput call. The TSE client coalesces aggressively
	// (~200 ms) and samples motion; X flushes at event-queue granularity.
	InputCoalesce simclock.Duration
	// DisplayCoalesce merges display batches within the window into one
	// Update call: TSE's display driver aggregates damage on a timer and
	// ships many orders per PDU, while X requests flow individually.
	DisplayCoalesce simclock.Duration
}

// Replay plays a behavior trace through a protocol endpoint pair,
// recording all traffic. Display batches are encoded by the server and
// applied by the client (so decoding is verified as a side effect); input
// batches are encoded by the client and decoded by the server.
func Replay(tr Trace, srv proto.Server, cli proto.Client, rec *trace.Recorder, opts ReplayOpts) error {
	inputs := coalesceInput(tr.Input, opts.InputCoalesce)
	displays := coalesceDisplay(tr.Display, opts.DisplayCoalesce)
	di, ii := 0, 0
	for di < len(displays) || ii < len(inputs) {
		nextDisplay := di < len(displays) &&
			(ii >= len(inputs) || displays[di].At <= inputs[ii].At)
		if nextDisplay {
			b := displays[di]
			di++
			for _, m := range srv.Update(b.Ops) {
				if rec != nil {
					rec.Record(b.At, m)
				}
				if err := cli.Apply(m); err != nil {
					return fmt.Errorf("replay %s: display batch at %v: %w", tr.Name, b.At, err)
				}
			}
			continue
		}
		b := inputs[ii]
		ii++
		for _, m := range cli.EncodeInput(b.Events) {
			if rec != nil {
				rec.Record(b.At, m)
			}
			// Note: a legitimately empty decode is possible (a VNC-style
			// server deduplicates repeated pointer positions), so only a
			// decode error fails the replay.
			if _, err := srv.DecodeInput(m); err != nil {
				return fmt.Errorf("replay %s: input batch at %v: %w", tr.Name, b.At, err)
			}
		}
	}
	if rec != nil {
		rec.Flush()
	}
	return nil
}

// coalesceInput merges input batches arriving within the window, keeping
// the final batch's timestamp as the flush instant.
func coalesceInput(in []InputBatch, window simclock.Duration) []InputBatch {
	if window <= 0 || len(in) == 0 {
		return in
	}
	out := make([]InputBatch, 0, len(in))
	acc := InputBatch{At: in[0].At}
	windowStart := in[0].At
	for _, b := range in {
		if b.At.Sub(windowStart) >= window && len(acc.Events) > 0 {
			out = append(out, acc)
			acc = InputBatch{}
			windowStart = b.At
		}
		acc.At = b.At
		acc.Events = append(acc.Events, b.Events...)
	}
	if len(acc.Events) > 0 {
		out = append(out, acc)
	}
	return out
}

// coalesceDisplay merges display batches arriving within the window,
// preserving operation order.
func coalesceDisplay(in []DisplayBatch, window simclock.Duration) []DisplayBatch {
	if window <= 0 || len(in) == 0 {
		return in
	}
	out := make([]DisplayBatch, 0, len(in))
	acc := DisplayBatch{At: in[0].At}
	windowStart := in[0].At
	for _, b := range in {
		if b.At.Sub(windowStart) >= window && len(acc.Ops) > 0 {
			out = append(out, acc)
			acc = DisplayBatch{}
			windowStart = b.At
		}
		acc.At = b.At
		acc.Ops = append(acc.Ops, b.Ops...)
	}
	if len(acc.Ops) > 0 {
		out = append(out, acc)
	}
	return out
}
