package workload

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
)

// ReplayOpts models each protocol's flushing behavior during a Replay.
type ReplayOpts struct {
	// InputCoalesce merges input batches closer together than this into
	// one EncodeInput call. The TSE client coalesces aggressively
	// (~200 ms) and samples motion; X flushes at event-queue granularity.
	InputCoalesce simclock.Duration
	// DisplayCoalesce merges display batches within the window into one
	// Update call: TSE's display driver aggregates damage on a timer and
	// ships many orders per PDU, while X requests flow individually.
	DisplayCoalesce simclock.Duration
}

// Replay plays a behavior trace through a protocol endpoint pair,
// recording all traffic. Display batches are encoded by the server and
// applied by the client (so decoding is verified as a side effect); input
// batches are encoded by the client and decoded by the server.
//
// Servers implementing proto.TapeServer encode straight from the trace's op
// tape into reused scratch — no op is boxed and no payload buffer is
// allocated per batch (every protocol client copies what it keeps out of a
// payload before Apply returns, so reusing the scratch across batches is
// safe). Other servers get the batch materialized as boxed ops.
func Replay(tr Trace, srv proto.Server, cli proto.Client, rec *trace.Recorder, opts ReplayOpts) error {
	inputs := coalesceInput(tr.Input, opts.InputCoalesce)
	displays := coalesceDisplay(tr.Display, opts.DisplayCoalesce)
	ts, _ := srv.(proto.TapeServer)
	var sc proto.Scratch
	var opsBuf []display.Op
	di, ii := 0, 0
	for di < len(displays) || ii < len(inputs) {
		nextDisplay := di < len(displays) &&
			(ii >= len(inputs) || displays[di].At <= inputs[ii].At)
		if nextDisplay {
			b := displays[di]
			di++
			var msgs []proto.Message
			if ts != nil {
				msgs = ts.UpdateTape(b.Tape, b.From, b.To, &sc)
			} else {
				opsBuf = b.Tape.AppendTo(opsBuf[:0], b.From, b.To)
				msgs = srv.Update(opsBuf)
			}
			for _, m := range msgs {
				if rec != nil {
					rec.Record(b.At, m)
				}
				if err := cli.Apply(m); err != nil {
					return fmt.Errorf("replay %s: display batch at %v: %w", tr.Name, b.At, err)
				}
			}
			continue
		}
		b := inputs[ii]
		ii++
		for _, m := range cli.EncodeInput(b.Events) {
			if rec != nil {
				rec.Record(b.At, m)
			}
			// Note: a legitimately empty decode is possible (a VNC-style
			// server deduplicates repeated pointer positions), so only a
			// decode error fails the replay.
			if _, err := srv.DecodeInput(m); err != nil {
				return fmt.Errorf("replay %s: input batch at %v: %w", tr.Name, b.At, err)
			}
		}
	}
	if rec != nil {
		rec.Flush()
	}
	return nil
}

// coalesceInput merges input batches arriving within the window, keeping
// the final batch's timestamp as the flush instant.
func coalesceInput(in []InputBatch, window simclock.Duration) []InputBatch {
	if window <= 0 || len(in) == 0 {
		return in
	}
	out := make([]InputBatch, 0, len(in))
	acc := InputBatch{At: in[0].At}
	windowStart := in[0].At
	for _, b := range in {
		if b.At.Sub(windowStart) >= window && len(acc.Events) > 0 {
			out = append(out, acc)
			acc = InputBatch{}
			windowStart = b.At
		}
		acc.At = b.At
		acc.Events = append(acc.Events, b.Events...)
	}
	if len(acc.Events) > 0 {
		out = append(out, acc)
	}
	return out
}

// coalesceDisplay merges display batches arriving within the window,
// preserving operation order. Batches that are adjacent spans of the same
// tape (the common case: one trace, one tape, appended in order) merge by
// widening the span; interleaved tapes fall back to copying the spans onto
// one shared merge tape.
func coalesceDisplay(in []DisplayBatch, window simclock.Duration) []DisplayBatch {
	if window <= 0 || len(in) == 0 {
		return in
	}
	out := make([]DisplayBatch, 0, len(in))
	var merged *display.OpTape
	acc := DisplayBatch{At: in[0].At}
	windowStart := in[0].At
	for _, b := range in {
		if b.At.Sub(windowStart) >= window && acc.Len() > 0 {
			out = append(out, acc)
			acc = DisplayBatch{}
			windowStart = b.At
		}
		acc.At = b.At
		acc = extendBatch(acc, b, &merged)
	}
	if acc.Len() > 0 {
		out = append(out, acc)
	}
	return out
}

// extendBatch appends b's span onto acc. An empty acc adopts b's span; a
// contiguous same-tape continuation widens it; anything else moves acc onto
// the shared merge tape (created on first use) and appends b there. Spans
// already flushed from the merge tape are never rewritten — it only grows.
func extendBatch(acc, b DisplayBatch, merged **display.OpTape) DisplayBatch {
	switch {
	case b.Len() == 0:
		return acc
	case acc.Len() == 0:
		acc.Tape, acc.From, acc.To = b.Tape, b.From, b.To
		return acc
	case acc.Tape == b.Tape && acc.To == b.From:
		acc.To = b.To
		return acc
	}
	if *merged == nil {
		*merged = new(display.OpTape)
	}
	if acc.Tape != *merged || acc.To != (*merged).Len() {
		from := (*merged).Len()
		(*merged).AppendTape(acc.Tape, acc.From, acc.To)
		acc.Tape, acc.From, acc.To = *merged, from, (*merged).Len()
	}
	(*merged).AppendTape(b.Tape, b.From, b.To)
	acc.To = (*merged).Len()
	return acc
}
