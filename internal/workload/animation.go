package workload

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

// AnimationConfig describes a looping animation, the workload family behind
// Figures 5, 6, and 7.
type AnimationConfig struct {
	Seed uint64
	// Frames is the loop length (the paper sweeps 25..100 in Figure 7).
	Frames int
	// FPS is the playback rate (Figure 5 uses a 50 ms delay GIF = 20 Hz).
	FPS float64
	// W, H are the frame dimensions.
	W, H int
	// X, Y place the animation on screen.
	X, Y int
	// Span is how long the animation plays.
	Span simclock.Duration
	// Photo selects photographic (incompressible) frame content, the
	// realistic choice for GIF advertisements.
	Photo bool
	// Block, when positive, overrides content generation with flat blocks
	// of the given size: partially compressible content between the Photo
	// and flat-UI extremes (dithered GIF art).
	Block int
}

// Figure7FrameW/H size the Figure 7 sweep's frames so that 65 frames fit
// the 1.5 MB TSE cache and 70 do not: 160x143 = 22,880 bytes per frame,
// 65 x 22,880 = 1,487,200 <= 1,572,864 < 1,601,600 = 70 x 22,880.
const (
	Figure7FrameW = 160
	Figure7FrameH = 143
)

// AnimationTrace plays the animation: one PutBitmap per frame tick, with
// the frame content cycling over the loop.
func AnimationTrace(cfg AnimationConfig) Trace {
	if cfg.FPS <= 0 || cfg.Frames <= 0 {
		panic("workload: animation needs positive FPS and frame count")
	}
	t := Trace{Name: "animation"}
	period := simclock.Duration(1e6 / cfg.FPS)
	gen := display.SyntheticFrame
	if cfg.Photo {
		gen = display.SyntheticPhoto
	}
	if cfg.Block > 0 {
		block := cfg.Block
		gen = func(seed uint64, i, w, h int) *display.Bitmap {
			return display.SyntheticBlocky(seed, i, w, h, block)
		}
	}
	// Pre-render the loop's frames once; playback reuses them, exactly as a
	// GIF decoder does.
	frames := make([]*display.Bitmap, cfg.Frames)
	for i := range frames {
		frames[i] = gen(cfg.Seed, i, cfg.W, cfg.H)
	}
	tape := new(display.OpTape)
	for at := simclock.Time(0); at < simclock.Time(cfg.Span); at = at.Add(period) {
		i := int(int64(at)/int64(period)) % cfg.Frames
		from := tape.Len()
		tape.Blit(cfg.X, cfg.Y, frames[i])
		t.Display = append(t.Display, DisplayBatch{At: at, Tape: tape, From: from, To: tape.Len()})
	}
	return t
}

// WebPageConfig composes the paper's Figure 4 synthetic web page, modeled
// after msnbc.com: one animated GIF banner advertisement plus an HTML
// scrolling news ticker.
type WebPageConfig struct {
	// Banner toggles the 468x60 advertisement.
	Banner bool
	// BannerFrames is the ad's loop length.
	BannerFrames int
	// BannerFPS is the ad's frame rate.
	BannerFPS float64
	// Marquee toggles the scrolling ticker.
	Marquee bool
	// MarqueePositions is the ticker's cycle length in scroll positions.
	MarqueePositions int
	// MarqueeHz is the ticker's scroll rate.
	MarqueeHz float64
	// MarqueeDuty is the fraction of each cycle the ticker scrolls
	// (tickers pause between headlines — the source of Figure 4's
	// periodicity).
	MarqueeDuty float64
	// FreshStripsPerCycle is how many ticker strips are new content each
	// cycle (headline rotation), defeating the cache even when the loop
	// fits.
	FreshStripsPerCycle int
	// PageChrome adds the browser's ambient redraws (status bar, clock,
	// throbber): a small constant load present however many animations run.
	PageChrome bool
	// Span is the browsing duration.
	Span simclock.Duration
}

// DefaultWebPageConfig reproduces the Figure 4 combined page. The combined
// working set (36 banner frames x 28,080 B + 100 ticker strips x 14,400 B
// = 2.4 MB) overflows the 1.5 MB client cache so decisively that both
// elements keep missing — between two uses of any banner frame, more than
// a full cache of distinct bitmaps passes through — while either element
// alone fits comfortably. That is the paper's non-linearity.
func DefaultWebPageConfig() WebPageConfig {
	return WebPageConfig{
		Banner:              true,
		BannerFrames:        36,
		BannerFPS:           5,
		Marquee:             true,
		MarqueePositions:    100,
		MarqueeHz:           10,
		MarqueeDuty:         0.85,
		FreshStripsPerCycle: 10,
		PageChrome:          true,
		Span:                160 * simclock.Second,
	}
}

// WebPageTrace generates the page's display traffic.
func WebPageTrace(cfg WebPageConfig) Trace {
	t := Trace{Name: "webpage"}
	tape := new(display.OpTape)
	if cfg.Banner {
		period := simclock.Duration(1e6 / cfg.BannerFPS)
		for at := simclock.Time(0); at < simclock.Time(cfg.Span); at = at.Add(period) {
			i := int(int64(at)/int64(period)) % cfg.BannerFrames
			from := tape.Len()
			tape.Blit(160, 40, display.BannerFrame(i))
			t.Display = append(t.Display, DisplayBatch{At: at, Tape: tape, From: from, To: tape.Len()})
		}
	}
	if cfg.PageChrome {
		// Browser chrome: status text and a throbber strip, once a second.
		for at := simclock.Time(500 * simclock.Millisecond); at < simclock.Time(cfg.Span); at = at.Add(simclock.Second) {
			i := int(int64(at) / int64(simclock.Second))
			from := tape.Len()
			tape.Fill(display.Rect{X: 0, Y: 580, W: 800, H: 20}, 7)
			tape.Text(8, 582, fmt.Sprintf("Loading... %d items remaining", i%9), 0)
			tape.Blit(766, 2, display.SyntheticPhoto(0x7b0b, i, 32, 32))
			t.Display = append(t.Display, DisplayBatch{At: at, Tape: tape, From: from, To: tape.Len()})
		}
	}
	if cfg.Marquee {
		period := simclock.Duration(1e6 / cfg.MarqueeHz)
		cycle := simclock.Duration(float64(cfg.MarqueePositions) * float64(period) / cfg.MarqueeDuty)
		tick := 0
		for at := simclock.Time(0); at < simclock.Time(cfg.Span); {
			cycleStart := at
			for p := 0; p < cfg.MarqueePositions && at < simclock.Time(cfg.Span); p++ {
				// Headline rotation: a few strips per cycle carry fresh
				// content keyed by the cycle number.
				strip := display.MarqueeFrame(p, cfg.MarqueePositions)
				if p < cfg.FreshStripsPerCycle {
					strip = display.SyntheticFrame(0xfeed0+uint64(tick/cfg.MarqueePositions), p, display.MarqueeW, display.MarqueeH)
				}
				from := tape.Len()
				tape.Blit(100, 520, strip)
				t.Display = append(t.Display, DisplayBatch{At: at, Tape: tape, From: from, To: tape.Len()})
				at = at.Add(period)
				tick++
			}
			// Pause until the cycle period elapses (the ticker's rest).
			next := cycleStart.Add(cycle)
			if next > at {
				at = next
			}
		}
	}
	sortTrace(&t)
	return t
}

// TypingConfig is the Figure 3 input source: character repeat at a fixed
// rate (the paper holds a key down with the client's repeat rate at 20 Hz).
type TypingConfig struct {
	// Rate is keystrokes per second (paper: 20).
	Rate float64
	// Span is how long the key is held.
	Span simclock.Duration
	// Code is the repeated key's code.
	Code uint16
}

// KeystrokeTimes lists the arrival time of each repeat keystroke.
func KeystrokeTimes(cfg TypingConfig) []simclock.Time {
	if cfg.Rate <= 0 {
		panic("workload: typing needs a positive rate")
	}
	period := simclock.Duration(1e6 / cfg.Rate)
	var out []simclock.Time
	for at := simclock.Time(period); at <= simclock.Time(cfg.Span); at = at.Add(period) {
		out = append(out, at)
	}
	return out
}

// sortTrace orders batches by timestamp after interleaved generation.
func sortTrace(t *Trace) {
	t.Merge(Trace{})
}
