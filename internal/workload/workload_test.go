package workload

import (
	"testing"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
)

func TestTraceTimeOrdering(t *testing.T) {
	for _, tr := range []Trace{
		OfficeTrace(DefaultOfficeConfig()),
		WebPageTrace(DefaultWebPageConfig()),
		AnimationTrace(AnimationConfig{Frames: 10, FPS: 20, W: 32, H: 32, Span: 3 * simclock.Second}),
	} {
		for i := 1; i < len(tr.Display); i++ {
			if tr.Display[i].At < tr.Display[i-1].At {
				t.Fatalf("%s: display batches out of order at %d", tr.Name, i)
			}
		}
		for i := 1; i < len(tr.Input); i++ {
			if tr.Input[i].At < tr.Input[i-1].At {
				t.Fatalf("%s: input batches out of order at %d", tr.Name, i)
			}
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := OfficeTrace(DefaultOfficeConfig())
	b := OfficeTrace(DefaultOfficeConfig())
	if a.Ops() != b.Ops() || a.Events() != b.Events() || a.Duration() != b.Duration() {
		t.Fatal("office trace not deterministic")
	}
}

func TestTraceAppendAndMerge(t *testing.T) {
	a := AnimationTrace(AnimationConfig{Frames: 2, FPS: 10, W: 8, H: 8, Span: simclock.Second})
	aDur := a.Duration()
	b := AnimationTrace(AnimationConfig{Frames: 2, FPS: 10, W: 8, H: 8, Span: simclock.Second})
	bOps := b.Ops()
	a.Append(b)
	if a.Duration() < aDur {
		t.Fatal("append shrank the trace")
	}
	if a.Ops() != 2*bOps {
		t.Fatalf("append ops = %d, want %d", a.Ops(), 2*bOps)
	}
	// Merge keeps ordering.
	c := AnimationTrace(AnimationConfig{Frames: 2, FPS: 7, W: 8, H: 8, Span: simclock.Second})
	a.Merge(c)
	for i := 1; i < len(a.Display); i++ {
		if a.Display[i].At < a.Display[i-1].At {
			t.Fatal("merge broke ordering")
		}
	}
}

func TestOfficeTraceComposition(t *testing.T) {
	tr := OfficeTrace(DefaultOfficeConfig())
	if tr.Events() < 5000 {
		t.Fatalf("office trace has only %d input events; motion+typing missing", tr.Events())
	}
	if tr.Ops() < 2000 {
		t.Fatalf("office trace has only %d display ops", tr.Ops())
	}
	// It must contain all op types.
	kinds := map[string]bool{}
	for _, b := range tr.Display {
		for _, op := range b.Ops() {
			switch op.(type) {
			case display.FillRect:
				kinds["fill"] = true
			case display.CopyArea:
				kinds["copy"] = true
			case display.PutBitmap:
				kinds["bitmap"] = true
			case display.DrawText:
				kinds["text"] = true
			}
		}
	}
	if len(kinds) != 4 {
		t.Fatalf("op kinds present: %v", kinds)
	}
}

func TestKeystrokeTimes(t *testing.T) {
	times := KeystrokeTimes(TypingConfig{Rate: 20, Span: simclock.Second})
	if len(times) != 20 {
		t.Fatalf("20Hz for 1s = %d keystrokes, want 20", len(times))
	}
	if times[0] != simclock.Time(50*simclock.Millisecond) {
		t.Fatalf("first keystroke at %v, want 50ms", times[0])
	}
}

func TestAnimationLoopReusesFrames(t *testing.T) {
	tr := AnimationTrace(AnimationConfig{Frames: 4, FPS: 20, W: 16, H: 16, Span: simclock.Second})
	if len(tr.Display) != 20 {
		t.Fatalf("20Hz for 1s = %d frames, want 20", len(tr.Display))
	}
	// Frame 0 and frame 4 are the same loop position: identical bitmaps.
	img0 := tr.Display[0].Ops()[0].(display.PutBitmap).Img
	img4 := tr.Display[4].Ops()[0].(display.PutBitmap).Img
	if !img0.Equal(img4) {
		t.Fatal("loop frames not identical")
	}
	img1 := tr.Display[1].Ops()[0].(display.PutBitmap).Img
	if img0.Equal(img1) {
		t.Fatal("consecutive frames identical; animation is static")
	}
}

func TestWebPageComponentsSeparable(t *testing.T) {
	cfg := DefaultWebPageConfig()
	cfg.Span = 20 * simclock.Second
	cfg.PageChrome = false // chrome is common to every variant
	both := WebPageTrace(cfg)
	bannerOnly := cfg
	bannerOnly.Marquee = false
	marqueeOnly := cfg
	marqueeOnly.Banner = false
	bt := WebPageTrace(bannerOnly)
	mt := WebPageTrace(marqueeOnly)
	nb, nm := bt.Ops(), mt.Ops()
	if both.Ops() != nb+nm {
		t.Fatalf("combined ops %d != banner %d + marquee %d", both.Ops(), nb, nm)
	}
}

func TestReplayOverAllProtocols(t *testing.T) {
	cfg := DefaultOfficeConfig()
	cfg.TypingChars = 120
	cfg.PaintStrokes = 6
	cfg.PanelActions = 3
	tr := OfficeTrace(cfg)
	pairs := map[string]struct {
		srv  proto.Server
		cli  proto.Client
		opts ReplayOpts
	}{
		"x": {xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), ReplayOpts{}},
		"rdp": {rdp.NewServer(rdp.DefaultConfig()), rdp.NewClient(rdp.DefaultConfig()), ReplayOpts{
			InputCoalesce: 100 * simclock.Millisecond, DisplayCoalesce: 120 * simclock.Millisecond}},
		"lbx": {lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), ReplayOpts{}},
	}
	fbs := map[string]*display.Bitmap{}
	for name, p := range pairs {
		rec := trace.NewRecorder(simclock.Second)
		if err := Replay(tr, p.srv, p.cli, rec, p.opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rec.Total().Messages == 0 {
			t.Fatalf("%s: recorder saw no traffic", name)
		}
		fbs[name] = p.cli.Framebuffer().Bitmap
	}
	// All protocols must render the identical final screen.
	if !fbs["x"].Equal(fbs["rdp"]) || !fbs["x"].Equal(fbs["lbx"]) {
		t.Fatal("protocols disagree on final framebuffer")
	}
}

func TestReplayInputCoalescing(t *testing.T) {
	cfg := DefaultOfficeConfig()
	cfg.TypingChars = 200
	cfg.PaintStrokes = 4
	cfg.PanelActions = 2
	tr := OfficeTrace(cfg)
	count := func(co simclock.Duration) int64 {
		srv := rdp.NewServer(rdp.DefaultConfig())
		cli := rdp.NewClient(rdp.DefaultConfig())
		rec := trace.NewRecorder(simclock.Second)
		if err := Replay(tr, srv, cli, rec, ReplayOpts{InputCoalesce: co}); err != nil {
			t.Fatal(err)
		}
		return rec.Input().Messages
	}
	fine := count(0)
	coarse := count(200 * simclock.Millisecond)
	if coarse >= fine {
		t.Fatalf("coalescing did not reduce input messages: %d vs %d", coarse, fine)
	}
}

func TestCoalesceInputPreservesEvents(t *testing.T) {
	tr := OfficeTrace(DefaultOfficeConfig())
	total := 0
	for _, b := range coalesceInput(tr.Input, 100*simclock.Millisecond) {
		total += len(b.Events)
	}
	if total != tr.Events() {
		t.Fatalf("coalescing lost events: %d vs %d", total, tr.Events())
	}
	if got := coalesceInput(nil, simclock.Second); got != nil {
		t.Fatal("empty input should stay empty")
	}
}

func TestAnimationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-FPS animation did not panic")
		}
	}()
	AnimationTrace(AnimationConfig{Frames: 1, FPS: 0, W: 1, H: 1, Span: 1})
}

func TestFigure7FrameSizing(t *testing.T) {
	frameBytes := Figure7FrameW * Figure7FrameH
	if 65*frameBytes > 1536*1024 {
		t.Fatal("65 frames must fit the 1.5MB cache")
	}
	if 70*frameBytes <= 1536*1024 {
		t.Fatal("70 frames must overflow the 1.5MB cache")
	}
}
