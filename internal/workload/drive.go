package workload

import (
	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

// TypingTrace generates the Figure 3 probe as a replayable behavior trace:
// one key-repeat input batch per keystroke at the configured rate. Unlike
// KeystrokeTimes (which returns bare timestamps for direct CPU submission),
// the trace form carries real input events that a protocol client can
// encode, so it can drive the full input-channel pipeline of a shared
// server.
func TypingTrace(cfg TypingConfig) Trace {
	code := cfg.Code
	if code == 0 {
		code = 30 // 'a'
	}
	times := KeystrokeTimes(cfg)
	t := Trace{Name: "typing"}
	t.Input = make([]InputBatch, 0, len(times))
	// Every keystroke of the repeat probe is the same event, so all batches
	// share one events slice; consumers (and coalesceInput) only read it.
	events := []display.InputEvent{display.KeyEvent{Down: true, Code: code}}
	for _, at := range times {
		t.Input = append(t.Input, InputBatch{At: at, Events: events})
	}
	return t
}

// DriveTrace schedules a behavior trace's batches as events on a shared
// discrete-event engine, applying the same per-protocol coalescing as
// Replay. Where Replay walks one session's batches in lock step, DriveTrace
// lets N users' traces interleave on one server clock: each batch fires at
// its trace timestamp and the engine's deterministic tie-breaking orders
// same-instant batches by scheduling order, so a multi-user replay is
// bit-for-bit reproducible for a given set of traces.
//
// Batches whose timestamps have already passed (a trace shifted behind the
// clock) fire immediately. Either callback may be nil to skip that channel.
//
// For the common case of a time-sorted trace, all batches are scheduled
// through one cursor-carrying driver sharing a single callback: events
// still get created here, in batch order, at the same instants — so engine
// sequence numbers, and with them every equal-timestamp tie against
// unrelated events, are identical to per-batch closures — but the trace
// costs two allocations instead of one closure per batch. The engine fires
// same-tick events in creation order, so the k-th firing is always the
// k-th batch and the cursor stays aligned. An unsorted trace falls back to
// per-batch closures.
func DriveTrace(eng *simclock.Engine, tr Trace, opts ReplayOpts,
	onInput func(now simclock.Time, events []display.InputEvent),
	onDisplay func(now simclock.Time, t *display.OpTape, from, to int)) {
	if onInput != nil {
		batches := coalesceInput(tr.Input, opts.InputCoalesce)
		if sortedInput(batches) {
			d := &inputDriver{batches: batches, onInput: onInput}
			fn := d.fire // bind the method value once, not per batch
			for _, b := range batches {
				eng.At(clampAt(eng, b.At), fn)
			}
		} else {
			for _, b := range batches {
				events := b.Events
				eng.At(clampAt(eng, b.At), func(now simclock.Time) { onInput(now, events) })
			}
		}
	}
	if onDisplay != nil {
		batches := coalesceDisplay(tr.Display, opts.DisplayCoalesce)
		if sortedDisplay(batches) {
			d := &displayDriver{batches: batches, onDisplay: onDisplay}
			fn := d.fire
			for _, b := range batches {
				eng.At(clampAt(eng, b.At), fn)
			}
		} else {
			for _, b := range batches {
				b := b
				eng.At(clampAt(eng, b.At), func(now simclock.Time) { onDisplay(now, b.Tape, b.From, b.To) })
			}
		}
	}
}

// inputDriver walks a sorted input trace one firing at a time; fire is the
// single callback value shared by every scheduled batch.
type inputDriver struct {
	batches []InputBatch
	next    int
	onInput func(now simclock.Time, events []display.InputEvent)
}

func (d *inputDriver) fire(now simclock.Time) {
	b := d.batches[d.next]
	d.next++
	d.onInput(now, b.Events)
}

// displayDriver is inputDriver for the display channel.
type displayDriver struct {
	batches   []DisplayBatch
	next      int
	onDisplay func(now simclock.Time, t *display.OpTape, from, to int)
}

func (d *displayDriver) fire(now simclock.Time) {
	b := d.batches[d.next]
	d.next++
	d.onDisplay(now, b.Tape, b.From, b.To)
}

func sortedInput(batches []InputBatch) bool {
	for i := 1; i < len(batches); i++ {
		if batches[i].At < batches[i-1].At {
			return false
		}
	}
	return true
}

func sortedDisplay(batches []DisplayBatch) bool {
	for i := 1; i < len(batches); i++ {
		if batches[i].At < batches[i-1].At {
			return false
		}
	}
	return true
}

// clampAt keeps trace timestamps schedulable on an already-running clock.
func clampAt(eng *simclock.Engine, at simclock.Time) simclock.Time {
	if now := eng.Now(); at < now {
		return now
	}
	return at
}
