package workload

import (
	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

// TypingTrace generates the Figure 3 probe as a replayable behavior trace:
// one key-repeat input batch per keystroke at the configured rate. Unlike
// KeystrokeTimes (which returns bare timestamps for direct CPU submission),
// the trace form carries real input events that a protocol client can
// encode, so it can drive the full input-channel pipeline of a shared
// server.
func TypingTrace(cfg TypingConfig) Trace {
	code := cfg.Code
	if code == 0 {
		code = 30 // 'a'
	}
	t := Trace{Name: "typing"}
	for _, at := range KeystrokeTimes(cfg) {
		t.Input = append(t.Input, InputBatch{
			At:     at,
			Events: []display.InputEvent{display.KeyEvent{Down: true, Code: code}},
		})
	}
	return t
}

// DriveTrace schedules a behavior trace's batches as events on a shared
// discrete-event engine, applying the same per-protocol coalescing as
// Replay. Where Replay walks one session's batches in lock step, DriveTrace
// lets N users' traces interleave on one server clock: each batch fires at
// its trace timestamp and the engine's deterministic tie-breaking orders
// same-instant batches by scheduling order, so a multi-user replay is
// bit-for-bit reproducible for a given set of traces.
//
// Batches whose timestamps have already passed (a trace shifted behind the
// clock) fire immediately. Either callback may be nil to skip that channel.
func DriveTrace(eng *simclock.Engine, tr Trace, opts ReplayOpts,
	onInput func(now simclock.Time, events []display.InputEvent),
	onDisplay func(now simclock.Time, ops []display.Op)) {
	if onInput != nil {
		for _, b := range coalesceInput(tr.Input, opts.InputCoalesce) {
			events := b.Events
			eng.At(clampAt(eng, b.At), func(now simclock.Time) { onInput(now, events) })
		}
	}
	if onDisplay != nil {
		for _, b := range coalesceDisplay(tr.Display, opts.DisplayCoalesce) {
			ops := b.Ops
			eng.At(clampAt(eng, b.At), func(now simclock.Time) { onDisplay(now, ops) })
		}
	}
}

// clampAt keeps trace timestamps schedulable on an already-running clock.
func clampAt(eng *simclock.Engine, at simclock.Time) simclock.Time {
	if now := eng.Now(); at < now {
		return now
	}
	return at
}
