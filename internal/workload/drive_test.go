package workload

import (
	"fmt"
	"reflect"
	"testing"

	"thinbench/internal/display"
	"thinbench/internal/simclock"
)

func TestTypingTraceCarriesRealEvents(t *testing.T) {
	tr := TypingTrace(TypingConfig{Rate: 20, Span: simclock.Second, Code: 44})
	if len(tr.Input) != 20 {
		t.Fatalf("20 Hz for 1 s produced %d batches, want 20", len(tr.Input))
	}
	for _, b := range tr.Input {
		if len(b.Events) != 1 {
			t.Fatalf("batch at %v has %d events, want 1", b.At, len(b.Events))
		}
		k, ok := b.Events[0].(display.KeyEvent)
		if !ok || k.Code != 44 || !k.Down {
			t.Fatalf("batch at %v: unexpected event %+v", b.At, b.Events[0])
		}
	}
}

// interleaving replays nUsers typing traces on one shared clock and
// returns the fired event log: (time, user, batch) in dispatch order.
func interleaving(nUsers int, seed uint64) []string {
	eng := simclock.NewEngine()
	var log []string
	for u := 0; u < nUsers; u++ {
		u := u
		rng := simclock.NewRand(simclock.DeriveSeed(seed, uint64(u)))
		tr := TypingTrace(TypingConfig{Rate: 20, Span: 2 * simclock.Second})
		tr.Shift(rng.UniformDuration(0, 50*simclock.Millisecond))
		batch := 0
		DriveTrace(eng, tr, ReplayOpts{},
			func(now simclock.Time, events []display.InputEvent) {
				log = append(log, fmt.Sprintf("%d@%d:u%d#%d", len(events), now, u, batch))
				batch++
			}, nil)
	}
	eng.Drain(1 << 20)
	return log
}

// TestSharedClockInterleavingDeterministic is the contention model's
// foundation: N users' replays on one clock must interleave identically
// for identical seeds — the property that makes a shared-server run
// reproducible at any farm worker count.
func TestSharedClockInterleavingDeterministic(t *testing.T) {
	ref := interleaving(8, 99)
	if len(ref) != 8*40 {
		t.Fatalf("8 users x 40 keystrokes produced %d events", len(ref))
	}
	for run := 0; run < 3; run++ {
		if got := interleaving(8, 99); !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d interleaved differently", run)
		}
	}
	if other := interleaving(8, 100); reflect.DeepEqual(other, ref) {
		t.Fatal("different seeds produced identical interleavings")
	}
}

func TestDriveTraceMatchesReplayCoalescing(t *testing.T) {
	// DriveTrace must apply the same windows as Replay: a 500 ms coalesce
	// over 20 Hz typing yields one batch per 500 ms window.
	eng := simclock.NewEngine()
	tr := TypingTrace(TypingConfig{Rate: 20, Span: 2 * simclock.Second})
	batches := 0
	events := 0
	DriveTrace(eng, tr, ReplayOpts{InputCoalesce: 500 * simclock.Millisecond},
		func(_ simclock.Time, evs []display.InputEvent) {
			batches++
			events += len(evs)
		}, nil)
	eng.Drain(1 << 20)
	if events != 40 {
		t.Fatalf("coalescing lost events: %d of 40", events)
	}
	if batches != len(coalesceInput(tr.Input, 500*simclock.Millisecond)) {
		t.Fatalf("DriveTrace fired %d batches, Replay's coalescer makes %d",
			batches, len(coalesceInput(tr.Input, 500*simclock.Millisecond)))
	}
}

func TestDriveTraceClampsPastTimestamps(t *testing.T) {
	eng := simclock.NewEngine()
	eng.RunUntil(simclock.Time(simclock.Second))
	tr := TypingTrace(TypingConfig{Rate: 10, Span: 500 * simclock.Millisecond})
	fired := 0
	DriveTrace(eng, tr, ReplayOpts{},
		func(now simclock.Time, _ []display.InputEvent) {
			if now < simclock.Time(simclock.Second) {
				t.Fatalf("batch fired at %v, before the clock", now)
			}
			fired++
		}, nil)
	eng.Drain(1 << 20)
	if fired != len(tr.Input) {
		t.Fatalf("%d of %d past-dated batches fired", fired, len(tr.Input))
	}
}
