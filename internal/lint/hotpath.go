package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath flags allocation sources inside functions annotated
// //thinlint:hotpath. The speed harness ratchets allocs/event at 1% in CI,
// but the ratchet fires on the aggregate — it tells you *that* the echo
// path regressed, not *where*. This analyzer names the line: any construct
// that can allocate or box on a hot function is a diagnostic, and the
// remaining deliberate ones (the display.Op boxing ROADMAP names as the
// residual allocs/event driver) carry allow directives so new ones stand
// out.
//
// Rules, all intra-procedural within the annotated function:
//
//   - alloc: make, new, taking the address of a composite literal, and
//     allocating conversions ([]byte(s), string(b), []rune(s)).
//   - box: converting a concrete non-pointer-shaped value to an interface
//     type — in assignments, returns, call arguments, append elements,
//     composite-literal elements. Pointer, map, chan, and func values are
//     exempt: they fit an interface word directly and never heap-box.
//   - closure: function literals that capture variables of the enclosing
//     function. Non-capturing literals are free; capturing ones force the
//     captured variables (and often the closure) to the heap.
//   - fmt: any call into the fmt package. fmt formats through reflection
//     and boxes every operand.
//
// Escape hatch besides //thinlint:allow: expressions feeding directly into
// panic(...) are exempt — crash paths run once and may format freely.
var Hotpath = &Analyzer{
	Name:  "hotpath",
	Doc:   "flag allocations, interface boxing, capturing closures, and fmt calls in //thinlint:hotpath functions",
	Rules: []string{"alloc", "box", "closure", "fmt"},
	Run:   runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hotpathFunc(fn) {
				continue
			}
			h := &hotpathWalker{pass: pass, fn: fn}
			h.walk(fn.Body)
		}
	}
}

type hotpathWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (h *hotpathWalker) walk(body *ast.BlockStmt) {
	info := h.pass.TypesInfo
	// Nodes under a panic(...) call are exempt: collect their ranges first.
	var panicRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				panicRanges = append(panicRanges, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inPanic(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					h.pass.Reportf(n.Pos(), "hotpath.alloc",
						"&composite literal allocates in hot function %s", h.fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			h.checkClosure(n)
			return false // don't descend: the literal runs on its own terms
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					h.checkBox(rhs, info.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if n.Type != nil {
					h.checkBox(v, info.TypeOf(n.Type))
				}
			}
		case *ast.ReturnStmt:
			h.checkReturnBox(n)
		case *ast.CompositeLit:
			h.checkCompositeBox(n)
		}
		return true
	})
}

func (h *hotpathWalker) checkCall(call *ast.CallExpr) {
	info := h.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				h.pass.Reportf(call.Pos(), "hotpath.alloc",
					"%s allocates in hot function %s", b.Name(), h.fn.Name.Name)
			case "append":
				// append itself is the hot path's bread and butter
				// (amortized into pre-sized backing); only its boxed
				// elements are checked below.
			}
			h.checkCallArgBoxes(call)
			return
		}
		// Conversion to an allocating type? T(x) parses as a CallExpr
		// whose Fun resolves to a type.
		if tn, ok := info.Uses[fun].(*types.TypeName); ok {
			h.checkConversionAlloc(call, tn.Type())
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			h.pass.Reportf(call.Pos(), "hotpath.fmt",
				"fmt.%s in hot function %s: fmt boxes every operand and formats through reflection", fn.Name(), h.fn.Name.Name)
		}
		if tn, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			h.checkConversionAlloc(call, tn.Type())
			return
		}
	case *ast.ArrayType:
		// []byte(s) / []rune(s) style conversion.
		if t := info.TypeOf(fun); t != nil {
			h.checkConversionAlloc(call, t)
			return
		}
	}
	h.checkCallArgBoxes(call)
}

// checkConversionAlloc flags conversions that copy into fresh backing:
// string↔[]byte, string↔[]rune.
func (h *hotpathWalker) checkConversionAlloc(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := h.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if convAllocates(from, to) {
		h.pass.Reportf(call.Pos(), "hotpath.alloc",
			"conversion to %s copies its backing in hot function %s", types.TypeString(to, types.RelativeTo(h.pass.Pkg)), h.fn.Name.Name)
	}
}

func convAllocates(from, to types.Type) bool {
	f, t := from.Underlying(), to.Underlying()
	isStr := func(u types.Type) bool {
		b, ok := u.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(u types.Type) bool {
		s, ok := u.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(f) && isByteOrRuneSlice(t)) || (isByteOrRuneSlice(f) && isStr(t))
}

// checkCallArgBoxes flags concrete values passed where the callee takes an
// interface (including append([]iface, concrete)).
func (h *hotpathWalker) checkCallArgBoxes(call *ast.CallExpr) {
	info := h.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			st, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice)
			if !ok || call.Ellipsis != token.NoPos {
				return
			}
			for _, arg := range call.Args[1:] {
				h.checkBox(arg, st.Elem())
			}
			return
		}
	}
	sig, ok := typeOfCallFun(info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				break
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt != nil {
			h.checkBox(arg, pt)
		}
	}
}

func typeOfCallFun(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func (h *hotpathWalker) checkReturnBox(ret *ast.ReturnStmt) {
	def := h.pass.TypesInfo.Defs[h.fn.Name]
	if def == nil {
		return
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() != len(ret.Results) {
		return
	}
	for i, e := range ret.Results {
		h.checkBox(e, res.At(i).Type())
	}
}

// checkCompositeBox flags concrete elements placed into interface-typed
// slots of a composite literal ([]display.Op{DrawText{...}} and friends).
func (h *hotpathWalker) checkCompositeBox(lit *ast.CompositeLit) {
	t := h.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		for _, el := range lit.Elts {
			h.checkBox(stripKV(el), u.Elem())
		}
	case *types.Array:
		for _, el := range lit.Elts {
			h.checkBox(stripKV(el), u.Elem())
		}
	case *types.Map:
		for _, el := range lit.Elts {
			h.checkBox(stripKV(el), u.Elem())
		}
	}
}

func stripKV(e ast.Expr) ast.Expr {
	if kv, ok := e.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return e
}

// checkBox reports expr if assigning it to target boxes a concrete value
// into an interface.
func (h *hotpathWalker) checkBox(expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	et := h.pass.TypesInfo.TypeOf(expr)
	if et == nil {
		return
	}
	if _, isIface := et.Underlying().(*types.Interface); isIface {
		return // interface→interface: no new box
	}
	if _, isTuple := et.(*types.Tuple); isTuple {
		return // multi-value assignment; element types aren't recoverable here
	}
	if isUntypedNil(et) || pointerShaped(et) {
		return
	}
	h.pass.Reportf(expr.Pos(), "hotpath.box",
		"%s value boxed into interface %s in hot function %s",
		types.TypeString(et, types.RelativeTo(h.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(h.pass.Pkg)),
		h.fn.Name.Name)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t are stored directly in an
// interface word without a heap box.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// checkClosure flags function literals that capture variables declared in
// the enclosing function.
func (h *hotpathWalker) checkClosure(lit *ast.FuncLit) {
	info := h.pass.TypesInfo
	fnScope := h.fn.Pos()
	fnEnd := h.fn.End()
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal itself. Package-level vars and params of the literal
		// don't count.
		if obj.Pos() < fnScope || obj.Pos() > fnEnd {
			return true
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		seen[obj] = true
		captured = append(captured, obj.Name())
		return true
	})
	if len(captured) > 0 {
		h.pass.Reportf(lit.Pos(), "hotpath.closure",
			"closure captures %v in hot function %s: captured variables escape to the heap", captured, h.fn.Name.Name)
	}
}
