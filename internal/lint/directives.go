package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar. Two verbs, both written as line comments with no space
// after "//" (the Go convention for machine directives, like //go:noinline):
//
//	//thinlint:allow <analyzer>[.<rule>] <reason...>
//	    Suppresses matching diagnostics on the directive's own line and on
//	    the line immediately below it. The check may be a bare analyzer
//	    name ("simdet", silencing all its rules) or qualified
//	    ("simdet.wallclock"). The reason is mandatory free text — a
//	    suppression without a recorded justification is itself a
//	    diagnostic.
//
//	//thinlint:hotpath
//	    Written in a function declaration's doc comment; opts every
//	    statement of that function into the hotpath analyzer's
//	    allocation/boxing/closure/fmt checks. Takes no arguments.
//
// The directive analyzer below validates the grammar, so a typo in a verb
// or check name fails the lint job instead of silently disabling a check.

const directivePrefix = "//thinlint:"

// A directive is one parsed //thinlint: comment.
type directive struct {
	pos    token.Pos
	verb   string // "allow", "hotpath", or something to diagnose
	check  string // for allow: the analyzer or analyzer.rule named
	reason string // for allow: the justification text
	args   string // everything after the verb, trimmed
}

type allowDirective struct {
	check string
	pos   token.Pos
}

// fileDirectives is the parsed directive set of one file.
type fileDirectives struct {
	name   string
	all    []directive
	allows map[int][]allowDirective // line of the directive comment
}

// parseDirectives scans every comment of every file for //thinlint:
// directives. Parsing is intentionally lax — malformed directives are kept
// with their raw text so the directive analyzer can diagnose them.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[*ast.File]*fileDirectives {
	out := make(map[*ast.File]*fileDirectives, len(files))
	for _, f := range files {
		fd := &fileDirectives{
			name:   fset.Position(f.Package).Filename,
			allows: make(map[int][]allowDirective),
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				verb, args, _ := strings.Cut(rest, " ")
				d := directive{pos: c.Slash, verb: verb, args: strings.TrimSpace(args)}
				if verb == "allow" {
					d.check, d.reason, _ = strings.Cut(d.args, " ")
					d.reason = strings.TrimSpace(d.reason)
					if d.check != "" {
						line := fset.Position(c.Slash).Line
						fd.allows[line] = append(fd.allows[line], allowDirective{check: d.check, pos: c.Slash})
					}
				}
				fd.all = append(fd.all, d)
			}
		}
		out[f] = fd
	}
	return out
}

// hotpathFunc reports whether decl's doc comment carries a
// //thinlint:hotpath directive.
func hotpathFunc(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == directivePrefix+"hotpath" ||
			strings.HasPrefix(c.Text, directivePrefix+"hotpath ") {
			return true
		}
	}
	return false
}

// knownChecks returns the set of names an allow directive may cite: every
// analyzer name plus every qualified analyzer.rule.
func knownChecks() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
		for _, r := range a.Rules {
			known[a.Name+"."+r] = true
		}
	}
	return known
}

// DirectiveAnalyzer validates //thinlint: directive usage. A directive the
// tool cannot act on is worse than none — an //thinlint:allow with a
// misspelled check name would otherwise read as a suppression while
// suppressing nothing — so grammar errors are diagnostics in their own
// right.
var DirectiveAnalyzer = &Analyzer{
	Name:  "directive",
	Doc:   "validate //thinlint: directive grammar (verbs, check names, required reasons, hotpath placement)",
	Rules: []string{"verb", "check", "reason", "placement"},
}

// Run is wired here rather than in the literal: runDirective reaches back
// through knownChecks → Analyzers → DirectiveAnalyzer, which the
// initializer dependency graph would reject as a cycle.
func init() { DirectiveAnalyzer.Run = runDirective }

func runDirective(pass *Pass) {
	known := knownChecks()
	for _, f := range pass.Files {
		fd := pass.directives[f]
		if fd == nil {
			continue
		}
		// Positions of hotpath directives that sit where they belong: in a
		// function declaration's doc comment.
		placed := make(map[token.Pos]bool)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.HasPrefix(c.Text, directivePrefix+"hotpath") {
					placed[c.Slash] = true
				}
			}
		}
		for _, d := range fd.all {
			switch d.verb {
			case "allow":
				if d.check == "" {
					pass.Reportf(d.pos, "directive.check", "//thinlint:allow needs a check name (analyzer or analyzer.rule)")
					continue
				}
				if !known[d.check] {
					pass.Reportf(d.pos, "directive.check", "//thinlint:allow names unknown check %q", d.check)
				}
				if d.reason == "" {
					pass.Reportf(d.pos, "directive.reason", "//thinlint:allow %s needs a reason: every suppression must record its justification", d.check)
				}
			case "hotpath":
				if d.args != "" {
					pass.Reportf(d.pos, "directive.verb", "//thinlint:hotpath takes no arguments (got %q)", d.args)
				}
				if !placed[d.pos] {
					pass.Reportf(d.pos, "directive.placement", "//thinlint:hotpath must appear in a function declaration's doc comment")
				}
			default:
				pass.Reportf(d.pos, "directive.verb", "unknown thinlint directive %q (want allow or hotpath)", d.verb)
			}
		}
	}
}
