package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// This file implements the tool side of the `go vet -vettool` protocol, the
// same contract golang.org/x/tools/go/analysis/unitchecker speaks (which
// this environment does not vendor, so it is implemented here against the
// protocol as defined by cmd/go):
//
//  1. `tool -flags` must print a JSON array of the tool's flag definitions
//     to stdout (ours is empty) and exit 0. cmd/go always probes this.
//  2. `tool -V=full` must print a line `<name> version <buildid>` whose
//     last field is not "devel"; cmd/go folds the whole line into the
//     build cache key, so the id must change when the tool's behavior
//     does. We hash the tool's own binary.
//  3. For each package, cmd/go runs `tool <objdir>/vet.cfg` with the
//     package directory as cwd. The cfg file is a JSON unitConfig.
//     Diagnostics go to stderr as "file:line:col: message" and the tool
//     exits nonzero; a clean package exits 0. The tool must write
//     cfg.VetxOutput (our analyzers export no facts, so it's an empty
//     placeholder) — cmd/go caches it and feeds it to dependents via
//     PackageVetx.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes one unit-checker invocation against the given vet.cfg
// path and returns the process exit code. Output goes to stderr (where go
// vet surfaces it).
func RunUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thinlint: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "thinlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Fact-only runs for dependency packages: our analyzers neither export
	// nor consume facts, so the vetx output is an empty placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "thinlint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "thinlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Imports resolve through the compiler's export data: cmd/go hands us
	// ImportMap (source import path → canonical package path) and
	// PackageFile (package path → export data file). The gc importer calls
	// lookup with whatever path an import clause or export-data reference
	// names; both layers map through here.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect via the returned error; keep going
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "thinlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := RunAnalyzers(fset, files, pkg, info, Analyzers())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Check)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
