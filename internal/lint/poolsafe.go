package lint

import (
	"go/ast"
	"go/types"
)

// Poolsafe guards the two ownership contracts the zero-alloc rounds
// introduced, both documented in prose and enforced by nothing:
//
//   - retain: a *simclock.Event handle is valid only while the event is
//     pending — the engine recycles fired and cancelled events through a
//     free list, so a handle stored in a struct field, global, slice, or
//     map outlives its event and will alias a future, unrelated event.
//     Passing a handle down a call or keeping it in a local is fine (it
//     dies with the frame); writing it anywhere that survives the frame is
//     the bug. Legitimate long-lived handles (a scheduler remembering its
//     own slice-end timer, which it cancels or clears on fire) carry allow
//     directives. Package simclock itself — the pool implementation — and
//     _test.go files are exempt.
//
//   - arena: proto.Scratch buffers (Buf, Msgs) are caller-owned reusable
//     arenas: the codec may fill them and hand slices of them back *to the
//     caller that passed the Scratch in*. A function that returns a slice
//     rooted at a Scratch it did NOT receive as a parameter (a field, a
//     global) hands out memory that the next encode will overwrite behind
//     the recipient's back.
var Poolsafe = &Analyzer{
	Name:  "poolsafe",
	Doc:   "forbid retaining *simclock.Event past fire/recycle and leaking proto.Scratch arenas to callers",
	Rules: []string{"retain", "arena"},
	Run:   runPoolsafe,
}

const (
	simclockPath = ModulePath + "/internal/simclock"
	protoPath    = ModulePath + "/internal/proto"
)

func runPoolsafe(pass *Pass) {
	path := pass.PkgPath()
	if !simPackage(path) && path != ModulePath+"/cmd/thinserve" {
		return
	}
	pool := path == simclockPath // the pool may touch its own internals
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		if !pool {
			checkEventRetention(pass, f)
		}
		checkArenaLeaks(pass, f)
	}
}

// checkEventRetention flags assignments and composite-literal elements
// that store a *simclock.Event expression into anything that outlives the
// current frame: a field (x.f = ev), a dereference (*p = ev), a slice or
// map element (s[i] = ev), a package-level variable, or an append.
func checkEventRetention(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	isEvent := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		ptr, ok := t.Underlying().(*types.Pointer)
		return ok && namedType(ptr.Elem(), simclockPath, "Event")
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isEvent(rhs) || isNilIdent(info, rhs) {
					continue
				}
				lhs := n.Lhs[i]
				if escapingLHS(info, lhs) {
					pass.Reportf(n.Pos(), "poolsafe.retain",
						"*simclock.Event stored in %s outlives its fire/recycle boundary: handles are valid only while the event is pending", lhsKind(lhs))
				}
			}
			// append(s, ev) assigned anywhere retains through the slice.
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
					for _, arg := range call.Args[1:] {
						if isEvent(arg) && !isNilIdent(info, arg) {
							pass.Reportf(arg.Pos(), "poolsafe.retain",
								"*simclock.Event appended to a slice outlives its fire/recycle boundary")
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := stripKV(el)
				if isEvent(v) && !isNilIdent(info, v) {
					pass.Reportf(v.Pos(), "poolsafe.retain",
						"*simclock.Event stored in a composite literal outlives its fire/recycle boundary")
				}
			}
		}
		return true
	})
}

// escapingLHS reports whether assigning to lhs stores beyond the current
// frame: selectors (fields), index expressions, dereferences, and
// package-level variables. Plain local identifiers don't escape.
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok {
			// Package-level variable: survives every frame.
			return v.Parent() == v.Pkg().Scope()
		}
		return false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return escapingLHS(info, x.X)
	}
	return false
}

func lhsKind(lhs ast.Expr) string {
	switch lhs.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a pointer target"
	default:
		return "a package-level variable"
	}
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkArenaLeaks flags return statements whose expression is rooted at
// the Buf or Msgs arena of a proto.Scratch that the returning function did
// not receive as a parameter. Receiving the Scratch (or a pointer to it)
// as a parameter means the caller owns the arena and slices of it are the
// documented contract; reaching it through a field or global leaks memory
// the next encode will clobber.
func checkArenaLeaks(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		params := paramObjects(info, fn)
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // literals have their own frames and params
			}
			ret, ok := m.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, e := range ret.Results {
				root, field, ok := scratchArenaRoot(info, e)
				if !ok {
					continue
				}
				if id, isIdent := root.(*ast.Ident); isIdent {
					if params[info.ObjectOf(id)] {
						continue // caller passed the Scratch in; it owns the arena
					}
				}
				pass.Reportf(e.Pos(), "poolsafe.arena",
					"returning a slice of %s's Scratch.%s arena the caller doesn't own: the next encode reuses that backing", exprString(root), field)
			}
			return true
		})
		return false
	})
}

// paramObjects collects the parameter objects of fn. The receiver is NOT
// included: a method returning slices of its own receiver-held Scratch is
// exactly the leak this rule exists to catch.
func paramObjects(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn.Type.Params != nil {
		for _, fld := range fn.Type.Params.List {
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// scratchArenaRoot reports whether e is (possibly a slice expression of)
// X.Buf or X.Msgs where X has type proto.Scratch or *proto.Scratch,
// returning the root expression X and the arena field name.
func scratchArenaRoot(info *types.Info, e ast.Expr) (root ast.Expr, field string, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if x.Sel.Name != "Buf" && x.Sel.Name != "Msgs" {
				return nil, "", false
			}
			t := info.TypeOf(x.X)
			if t == nil || !namedType(t, protoPath, "Scratch") {
				return nil, "", false
			}
			return x.X, x.Sel.Name, true
		default:
			return nil, "", false
		}
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "the function"
	}
}
