// Package lint is thinlint: a suite of static analyzers that machine-check
// the simulator's determinism, hot-path, and pooling invariants — the
// contracts no compiler enforces but every BENCH baseline depends on.
//
// The repo's reproducibility story rests on rules that today live only in
// comments and golden-diff ratchets: simulation code must never read wall
// clocks or the global math/rand state, map iteration order must never leak
// into results, every random stream must derive from simclock.DeriveSeed,
// *simclock.Event handles die when their callback returns, and
// proto.Scratch arenas belong to their callers. Each analyzer turns one of
// those contracts into a CI-time diagnostic with a file:line position, so a
// regression is caught when it is written instead of when a baseline
// drifts.
//
// The suite (see Analyzers):
//
//   - simdet: forbids nondeterminism sources in simulation packages — wall
//     clocks, global math/rand, goroutine spawns outside internal/farm, and
//     map-iteration order escaping into slices without a sort.
//   - hotpath: flags allocation sources (heap allocations, interface
//     boxing, capturing closures, fmt calls) inside functions annotated
//     //thinlint:hotpath.
//   - poolsafe: reports *simclock.Event handles retained past their
//     fire/recycle boundary and proto.Scratch arenas leaked to callers.
//   - seedflow: requires rand streams to be seeded via simclock.DeriveSeed
//     (literal seeds allowed only in _test.go).
//   - directive: validates the //thinlint: directive grammar itself, so an
//     //thinlint:allow naming an unknown check is a diagnostic rather than
//     a silent no-op.
//
// Findings are suppressed in place with an explicit, reasoned directive:
//
//	//thinlint:allow <analyzer>[.<rule>] <reason...>
//
// which applies to its own line and the line below it. The framework is a
// deliberately small, stdlib-only analogue of golang.org/x/tools/go/analysis
// (which the build environment does not vendor): Analyzer, Pass, and
// Diagnostic keep the same shape, and cmd/thinlint speaks the go vet
// -vettool unit-checker protocol, so the suite runs as
//
//	go build -o thinlint ./cmd/thinlint
//	go vet -vettool=$PWD/thinlint ./...
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModulePath is the import-path prefix of the code the suite guards.
// Analyzer activation is keyed on it so the suite stays quiet if the tool
// is ever pointed at foreign code.
const ModulePath = "thinbench"

// An Analyzer is one named, documented check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //thinlint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by help output.
	Doc string
	// Rules names the analyzer's sub-checks; //thinlint:allow accepts
	// either the bare analyzer name or analyzer.rule.
	Rules []string
	// Run reports the analyzer's findings through pass.Report.
	Run func(pass *Pass)
}

// Analyzers is the thinlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DirectiveAnalyzer, Simdet, Hotpath, Poolsafe, Seedflow}
}

// A Diagnostic is one finding at a position. Check is the qualified rule
// ("simdet.wallclock"), which is also what an allow directive must name.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The framework drops diagnostics
	// suppressed by an //thinlint:allow directive on the diagnostic's line
	// or the line above before they reach the driver.
	Report func(Diagnostic)

	directives map[*ast.File]*fileDirectives
}

// Reportf reports a formatted diagnostic for the qualified check.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Check: check, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several rules
// relax there: tests may time themselves, seed literally, and hold event
// handles to probe the queue.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPath is the package's import path with any test-variant suffix
// (e.g. "pkg [pkg.test]") stripped, so activation checks see the real path.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// RunAnalyzers type-checks nothing itself: given a loaded package, it runs
// every analyzer, filters allow-suppressed findings, and returns the
// survivors sorted by position then check name.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	dirs := parseDirectives(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			directives: dirs,
		}
		pass.Report = func(d Diagnostic) {
			if d.Check == "" {
				d.Check = a.Name
			}
			if suppressed(fset, dirs, d) {
				return
			}
			out = append(out, d)
		}
		a.Run(pass)
	}
	sortDiagnostics(fset, out)
	return out
}

// suppressed reports whether an allow directive covers the diagnostic: the
// directive must name the diagnostic's analyzer or its qualified rule and
// sit on the diagnostic's line or the line immediately above, in the same
// file.
func suppressed(fset *token.FileSet, dirs map[*ast.File]*fileDirectives, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, fd := range dirs {
		if fd.name != pos.Filename {
			continue
		}
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, al := range fd.allows[line] {
				if al.check == d.Check || al.check == analyzerOf(d.Check) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// analyzerOf strips the rule from a qualified check name.
func analyzerOf(check string) string {
	if i := strings.IndexByte(check, '.'); i >= 0 {
		return check[:i]
	}
	return check
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && diagnosticLess(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func diagnosticLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Check < b.Check
}

// simPackage reports whether path is one of the deterministic-simulation
// packages simdet guards: everything under thinbench/internal/ except the
// lint suite itself. (internal/farm and internal/speed stay in the set —
// farm gets a targeted goroutine exemption and speed carries explicit
// allow directives at its two legitimate wall-clock sites.)
func simPackage(path string) bool {
	if !strings.HasPrefix(path, ModulePath+"/internal/") {
		return false
	}
	return path != ModulePath+"/internal/lint"
}

// namedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// pkgFunc reports whether the call expression invokes the package-level
// function pkgPath.name (not a method), resolving through the import.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	// Package-level functions have no receiver.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
