package lint

import (
	"go/ast"
	"go/types"
)

// Simdet forbids nondeterminism sources in simulation packages
// (thinbench/internal/* except the lint suite itself). The BENCH baselines
// are diffed bit-for-bit in CI across -parallel 1/8 and -eventq
// heap/calendar; any of the constructs below can make two runs of the same
// seed disagree, which surfaces as an inexplicable golden diff long after
// the offending line merged.
//
// Rules:
//
//   - wallclock: calls that read the wall clock (time.Now, time.Since,
//     time.Until) or schedule against it (time.After, time.Tick,
//     time.NewTimer, time.NewTicker, time.AfterFunc). Simulation time is
//     simclock.Time; the only legitimate wall-clock reader is the
//     self-measurement harness in internal/speed, which carries explicit
//     allow directives.
//   - globalrand: uses of math/rand's (or math/rand/v2's) package-level
//     state — rand.Intn, rand.Float64, rand.Seed, … — which is shared,
//     lock-guarded, and seeded per-process. Streams must be *simclock.Rand
//     values derived via simclock.DeriveSeed (seedflow checks the
//     derivation).
//   - goroutine: go statements outside thinbench/internal/farm. Goroutine
//     interleaving is scheduler-determined; all parallelism must flow
//     through the farm, whose merge order is deterministic by construction.
//   - maporder: ranging over a map while appending to a slice declared
//     outside the loop, with no sort of that slice later in the same
//     function. Iteration order is randomized per run; once it escapes
//     into a slice it becomes event order, metric order, or output order.
//
// _test.go files are exempt wholesale: tests may time themselves, probe
// goroutines, and build unordered scratch freely.
var Simdet = &Analyzer{
	Name:  "simdet",
	Doc:   "forbid nondeterminism sources (wall clocks, global rand, stray goroutines, escaping map order) in simulation packages",
	Rules: []string{"wallclock", "globalrand", "goroutine", "maporder"},
	Run:   runSimdet,
}

// wallclockFuncs are the time package functions that read or schedule
// against the wall clock. Pure conversions and constructors (time.Duration,
// time.Unix, time.Date) stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runSimdet(pass *Pass) {
	if !simPackage(pass.PkgPath()) {
		return
	}
	farm := pass.PkgPath() == ModulePath+"/internal/farm"
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallclock(pass, n)
			case *ast.SelectorExpr:
				checkGlobalRand(pass, n)
			case *ast.GoStmt:
				if !farm {
					pass.Reportf(n.Go, "simdet.goroutine",
						"goroutine spawned outside internal/farm: scheduler interleaving is nondeterministic; route parallelism through the farm")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrder(pass, n.Body)
				}
			}
			return true
		})
	}
}

func checkWallclock(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !wallclockFuncs[sel.Sel.Name] {
		return
	}
	if pkgFunc(pass.TypesInfo, call, "time", sel.Sel.Name) {
		pass.Reportf(call.Pos(), "simdet.wallclock",
			"time.%s reads the wall clock: simulation code must use simclock.Time so runs are bit-reproducible", sel.Sel.Name)
	}
}

// checkGlobalRand flags selectors that resolve to package-level objects of
// math/rand or math/rand/v2 — both the convenience functions (rand.Intn)
// and the shared globals they wrap.
func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pkgName.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	// Constructors and types are fine (rand.New, rand.NewSource,
	// rand.Source, …): they build private streams, which seedflow vets.
	// Only the package-level shared state is nondeterministic.
	switch obj.(type) {
	case *types.Func:
		name := sel.Sel.Name
		if name == "New" || name == "NewSource" || name == "NewZipf" || name == "NewPCG" || name == "NewChaCha8" {
			return
		}
		pass.Reportf(sel.Pos(), "simdet.globalrand",
			"%s.%s uses the process-global rand stream: derive a *simclock.Rand via simclock.DeriveSeed instead", id.Name, name)
	case *types.Var:
		pass.Reportf(sel.Pos(), "simdet.globalrand",
			"%s.%s is shared package-level rand state: derive a *simclock.Rand via simclock.DeriveSeed instead", id.Name, sel.Sel.Name)
	}
}

// checkMapOrder walks one function body looking for range-over-map loops
// whose body appends to a slice declared outside the loop, where that
// slice is never sorted later in the same body. That pattern copies
// iteration order — randomized per run — into data that outlives the loop.
func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	// sorted collects objects passed to a sort call anywhere in the body.
	// The check is flow-insensitive on purpose: a sort anywhere in the
	// function is taken as ordering the slice before it escapes, which is
	// the pattern the codebase actually uses (collect keys, sort, range).
	sorted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := rootIdent(arg); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Find appends inside the loop body targeting a variable declared
		// outside the loop.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asn, ok := m.(*ast.AssignStmt)
			if !ok || len(asn.Rhs) != 1 {
				return true
			}
			call, ok := asn.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
				return true
			}
			id, ok := rootIdent(asn.Lhs[0])
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || sorted[obj] {
				return true
			}
			// Declared inside the loop body → dies with the iteration,
			// order can't escape.
			if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
				return true
			}
			pass.Reportf(asn.Pos(), "simdet.maporder",
				"append inside map range copies iteration order into %s, which outlives the loop unsorted: sort the keys first or sort %s after", id.Name, id.Name)
			return true
		})
		return true
	})
}

// isSortCall matches calls into the sort and slices packages.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent digs through selectors and index expressions to the base
// identifier: u.ops[i] → u, keys → keys.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
