// Package simdet is a thinlint fixture: each construct below is one
// nondeterminism source the simdet analyzer must flag (or, with a
// directive, suppress). This tree is under testdata/ and never built.
package simdet

import (
	"math/rand"
	"sort"
	"time"
)

func wallclock() time.Time {
	return time.Now() // want `simdet\.wallclock`
}

func wallclockSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `simdet\.wallclock`
}

func wallclockAllowed() time.Time {
	return time.Now() //thinlint:allow simdet.wallclock fixture suppression case
}

func durationsAreFine(d time.Duration) time.Duration {
	return d * time.Millisecond // conversions and constants never read the clock
}

func globalRand() int {
	return rand.Intn(6) // want `simdet\.globalrand`
}

func privateStreamIsFine(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors build private streams
}

func spawn(done chan struct{}) {
	go func() { // want `simdet\.goroutine`
		close(done)
	}()
}

func spawnAllowed(done chan struct{}) {
	//thinlint:allow simdet.goroutine fixture suppression case
	go func() {
		close(done)
	}()
}

func mapOrderEscapes(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `simdet\.maporder`
	}
	return out
}

func mapOrderSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out) // the sort launders the iteration order away
	return out
}

func mapOrderLoopLocal(m map[int]int) int {
	total := 0
	for _, v := range m {
		scratch := []int{}
		scratch = append(scratch, v) // loop-local slice dies with the iteration
		total += scratch[0]
	}
	return total
}
