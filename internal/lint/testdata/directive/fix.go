// Package directive is a thinlint fixture for the directive grammar
// checks. Expectations live in TestDirectiveFixture (the diagnostics land
// on the directive comments themselves, where a want comment cannot also
// sit): an allow naming an unknown check, an allow without a reason, an
// unknown verb, and a hotpath directive outside a function doc comment —
// in that order.
package directive

func unknownCheck() int {
	x := 1 //thinlint:allow nosuch.check the check name here is misspelled on purpose
	return x
}

func missingReason() int {
	y := 2 //thinlint:allow simdet.wallclock
	return y
}

//thinlint:frobnicate
func unknownVerb() {}

func misplacedHotpath() int {
	//thinlint:hotpath
	z := 3
	return z
}

// wellFormed shows the valid forms drawing no diagnostics.
//
//thinlint:hotpath
func wellFormed() int {
	w := 4 //thinlint:allow hotpath.alloc a valid check name with a reason draws nothing
	return w
}
