// Literal seeds are the convention in _test.go files: fixed seeds make
// test failures reproducible, and no published baseline depends on them.
// Nothing in this file may draw a seedflow diagnostic.
package seedflow

import "thinbench/internal/simclock"

func literalSeedInTest() *simclock.Rand {
	return simclock.NewRand(99)
}
