// Package seedflow is a thinlint fixture: rand streams must be seeded
// through simclock.DeriveSeed in non-test code.
package seedflow

import "thinbench/internal/simclock"

func literalSeed() *simclock.Rand {
	return simclock.NewRand(42) // want `seedflow\.literal`
}

func adhocSeed(root uint64, i int) *simclock.Rand {
	return simclock.NewRand(root + uint64(i)*7919) // want `seedflow\.adhoc`
}

func adhocAllowed(root uint64, i int) *simclock.Rand {
	return simclock.NewRand(root + uint64(i)*7919) //thinlint:allow seedflow.adhoc fixture suppression case
}

func derivedSeed(root uint64, i int) *simclock.Rand {
	return simclock.NewRand(simclock.DeriveSeed(root, uint64(i)))
}

func threadedSeed(seed uint64) *simclock.Rand {
	return simclock.NewRand(seed) // a plain variable was derived at its def site
}
