// Package hotpath is a thinlint fixture. The sendEcho function mirrors
// the real server echo path closely enough that the analyzer's verdict on
// it carries over: the display.Op boxing it flags is the same construct
// ROADMAP names as the remaining allocs/event driver.
package hotpath

import (
	"fmt"

	"thinbench/internal/display"
)

type user struct {
	ops      []display.Op
	echoText string
}

// sendEcho mirrors thinbench/internal/server.(*Server).sendEcho: one
// DrawText op appended into the session's []display.Op reply buffer.
//
//thinlint:hotpath
func sendEcho(u *user, col int) []display.Op {
	u.ops = append(u.ops[:0], display.DrawText{ // want `hotpath\.box`
		X: 56 + (col%70)*display.GlyphW, Y: 80 + (col/70%24)*16,
		Text: u.echoText, Color: 0,
	})
	return u.ops
}

//thinlint:hotpath
func hot(n int) []int {
	buf := make([]int, n)        // want `hotpath\.alloc`
	fmt.Println(n)               // want `hotpath\.fmt` `hotpath\.box`
	f := func() int { return n } // want `hotpath\.closure`
	buf[0] = f()
	return buf
}

//thinlint:hotpath
func hotAllowed(n int) []int {
	buf := make([]int, n) //thinlint:allow hotpath.alloc fixture suppression case
	return buf
}

//thinlint:hotpath
func crashPathIsExempt(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n)) // panic operands may format freely
	}
}

//thinlint:hotpath
func pointerShapedIsFine(p *user) []any {
	return []any{p} // pointers store directly in the interface word
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(n int) []int {
	buf := make([]int, n)
	fmt.Println(n)
	return buf
}
