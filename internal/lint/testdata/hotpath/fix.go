// Package hotpath is a thinlint fixture. The sendEcho functions mirror
// the real server echo path closely enough that the analyzer's verdict on
// them carries over: sendEcho is the pre-tape shape whose display.Op
// boxing the analyzer must keep failing (so the construct cannot quietly
// return to the echo path without a new reasoned allow), and
// sendEchoTape is the current pointer-free shape, which must stay silent.
package hotpath

import (
	"fmt"

	"thinbench/internal/display"
)

type user struct {
	ops      []display.Op
	tape     display.OpTape
	echoText string
}

// sendEcho mirrors the retired interface-slice echo path: one DrawText op
// appended into the session's []display.Op reply buffer. The boxing
// diagnostic here is the regression tripwire — reintroducing this shape
// on the real echo path fails vet the same way.
//
//thinlint:hotpath
func sendEcho(u *user, col int) []display.Op {
	u.ops = append(u.ops[:0], display.DrawText{ // want `hotpath\.box`
		X: 56 + (col%70)*display.GlyphW, Y: 80 + (col/70%24)*16,
		Text: u.echoText, Color: 0,
	})
	return u.ops
}

// sendEchoTape mirrors thinbench/internal/server.(*Server).sendEcho as it
// stands: the echo rides the session's reused pointer-free op tape, so
// there is no interface conversion for the analyzer to flag.
//
//thinlint:hotpath
func sendEchoTape(u *user, col int) *display.OpTape {
	u.tape.Reset()
	u.tape.Text(56+(col%70)*display.GlyphW, 80+(col/70%24)*16, u.echoText, 0)
	return &u.tape
}

//thinlint:hotpath
func hot(n int) []int {
	buf := make([]int, n)        // want `hotpath\.alloc`
	fmt.Println(n)               // want `hotpath\.fmt` `hotpath\.box`
	f := func() int { return n } // want `hotpath\.closure`
	buf[0] = f()
	return buf
}

//thinlint:hotpath
func hotAllowed(n int) []int {
	buf := make([]int, n) //thinlint:allow hotpath.alloc fixture suppression case
	return buf
}

//thinlint:hotpath
func crashPathIsExempt(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n)) // panic operands may format freely
	}
}

//thinlint:hotpath
func pointerShapedIsFine(p *user) []any {
	return []any{p} // pointers store directly in the interface word
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(n int) []int {
	buf := make([]int, n)
	fmt.Println(n)
	return buf
}
