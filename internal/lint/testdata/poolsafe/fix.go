// Package poolsafe is a thinlint fixture covering both ownership rules:
// *simclock.Event handles retained past their frame, and proto.Scratch
// arenas leaked to callers that don't own them.
package poolsafe

import (
	"thinbench/internal/proto"
	"thinbench/internal/simclock"
)

type holder struct {
	ev  *simclock.Event
	sc  proto.Scratch
	evs []*simclock.Event
}

func retainInField(h *holder, eng *simclock.Engine) {
	h.ev = eng.After(1, nil) // want `poolsafe\.retain`
}

func retainAllowed(h *holder, eng *simclock.Engine) {
	//thinlint:allow poolsafe.retain fixture suppression case
	h.ev = eng.After(1, nil)
}

func retainInSlice(h *holder, ev *simclock.Event) {
	h.evs = append(h.evs, ev) // want `poolsafe\.retain`
}

func retainInLiteral(eng *simclock.Engine) holder {
	return holder{ev: eng.After(1, nil)} // want `poolsafe\.retain`
}

func clearingIsFine(h *holder) {
	h.ev = nil // storing nil retains nothing
}

func localHandleIsFine(eng *simclock.Engine) bool {
	ev := eng.After(1, nil) // a local dies with the frame
	return eng.Cancel(ev)
}

func leakArena(h *holder) []byte {
	return h.sc.Buf // want `poolsafe\.arena`
}

func leakArenaMsgs(h *holder) []proto.Message {
	return h.sc.Msgs[:0] // want `poolsafe\.arena`
}

func leakAllowed(h *holder) []byte {
	return h.sc.Buf //thinlint:allow poolsafe.arena fixture suppression case
}

func callerOwnedArena(sc *proto.Scratch) []byte {
	return sc.Buf[:0] // the caller passed the Scratch in; slices of it are the contract
}
