package lint

import (
	"go/ast"
	"strings"
)

// Seedflow checks how random streams are seeded. Every figure in the BENCH
// baselines is a function of its seeds; the repo's convention is that one
// root seed flows through simclock.DeriveSeed(root, stream) to every
// subordinate stream, so adding a stream (or reordering construction)
// never perturbs its siblings. Two anti-patterns break that:
//
//   - literal: a constant seed in non-test code (simclock.NewRand(42)).
//     The stream is then correlated with every other literal-42 stream and
//     can't be varied from the command line. Literal seeds are the norm in
//     _test.go and stay legal there.
//
//   - adhoc: deriving a sub-seed arithmetically (seed + i*7919) instead of
//     through DeriveSeed. Affine derivation produces correlated streams —
//     two sub-streams whose seeds differ by a small constant are adjacent
//     in most PRNG seed spaces — where DeriveSeed's splitmix64 finalizer
//     decorrelates them. Plain variables, selectors, and conversions pass:
//     the seed then arrived from elsewhere, and its derivation is checked
//     where it happened.
//
// Checked constructors: simclock.NewRand, math/rand.New + NewSource, and
// math/rand/v2.New* sources. Applies module-wide (cmd/ too), not just
// internal/ — a binary seeding ad hoc corrupts the same figures.
var Seedflow = &Analyzer{
	Name:  "seedflow",
	Doc:   "require rand streams to be seeded via simclock.DeriveSeed (literal seeds only in _test.go)",
	Rules: []string{"literal", "adhoc"},
	Run:   runSeedflow,
}

func runSeedflow(pass *Pass) {
	path := pass.PkgPath()
	if !strings.HasPrefix(path, ModulePath+"/") && path != ModulePath {
		return
	}
	if path == ModulePath+"/internal/lint" {
		return
	}
	for _, f := range pass.Files {
		inTest := pass.InTestFile(f.Package)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			seedArg, ctor := seedConstructorArg(pass, call)
			if seedArg == nil {
				return true
			}
			switch classifySeed(pass, seedArg) {
			case seedLiteral:
				if !inTest {
					pass.Reportf(call.Pos(), "seedflow.literal",
						"%s seeded with a literal: thread a root seed through simclock.DeriveSeed (literals are for _test.go)", ctor)
				}
			case seedAdhoc:
				pass.Reportf(call.Pos(), "seedflow.adhoc",
					"%s seeded by ad-hoc arithmetic: use simclock.DeriveSeed(root, stream) so sub-streams decorrelate", ctor)
			}
			return true
		})
	}
}

// seedConstructorArg returns the seed argument if call constructs a rand
// stream, along with a printable constructor name.
func seedConstructorArg(pass *Pass, call *ast.CallExpr) (ast.Expr, string) {
	if len(call.Args) == 0 {
		return nil, ""
	}
	info := pass.TypesInfo
	switch {
	case pkgFunc(info, call, simclockPath, "NewRand"):
		return call.Args[0], "simclock.NewRand"
	case pkgFunc(info, call, "math/rand", "NewSource"):
		return call.Args[0], "rand.NewSource"
	case pkgFunc(info, call, "math/rand", "New"):
		// rand.New(rand.NewSource(seed)): dig into the source expression
		// so the diagnostic lands once, on the inner NewSource call —
		// unless the source came from elsewhere, in which case trust it.
		if inner, ok := call.Args[0].(*ast.CallExpr); ok {
			if pkgFunc(info, inner, "math/rand", "NewSource") {
				return nil, "" // inner call is checked on its own visit
			}
		}
		return nil, ""
	case pkgFunc(info, call, "math/rand/v2", "NewPCG"):
		return call.Args[0], "rand.NewPCG"
	case pkgFunc(info, call, "math/rand/v2", "NewChaCha8"):
		return call.Args[0], "rand.NewChaCha8"
	}
	return nil, ""
}

type seedClass int

const (
	seedOK seedClass = iota
	seedLiteral
	seedAdhoc
)

// classifySeed looks at the expression supplying a seed.
func classifySeed(pass *Pass, e ast.Expr) seedClass {
	e = unwrapConversions(pass, e)
	switch x := e.(type) {
	case *ast.BasicLit:
		return seedLiteral
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		// A plain variable: derivation happened (and was checked) at its
		// definition site. Constants named at package level still count
		// as literals.
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			return seedLiteral
		}
		return seedOK
	case *ast.CallExpr:
		if pkgFunc(pass.TypesInfo, x, simclockPath, "DeriveSeed") {
			return seedOK
		}
		// Some other call producing the seed: treat as derived elsewhere.
		return seedOK
	case *ast.BinaryExpr, *ast.UnaryExpr:
		if containsDeriveSeed(pass, e) {
			return seedOK
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			return seedLiteral // constant arithmetic is still a literal
		}
		return seedAdhoc
	}
	return seedOK
}

// unwrapConversions strips type conversions (uint64(x), simclock.Time(x))
// so classification sees the underlying expression.
func unwrapConversions(pass *Pass, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			if len(x.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
		}
		return e
	}
}

func containsDeriveSeed(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pkgFunc(pass.TypesInfo, call, simclockPath, "DeriveSeed") {
			found = true
			return false
		}
		return !found
	})
	return found
}
