package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness is an analysistest analogue: each directory under
// testdata/ is one package of fixture files, type-checked against the real
// module (so fixtures import thinbench/internal/simclock, display, proto),
// run through one analyzer, and checked against `// want` expectations:
//
//	return time.Now() // want `simdet\.wallclock`
//
// Every backquoted regexp on a line must match a diagnostic reported on
// that line (against "check message"), and every diagnostic must be
// matched by an expectation. testdata/ is invisible to go build, so the
// deliberate violations never dirty the tree the real lint job checks.

// exportFiles maps package import paths to compiled export data, obtained
// once per test binary from `go list -export`. The fixture loader feeds it
// to the same gc importer the vettool uses.
var exportFiles struct {
	once  sync.Once
	files map[string]string
	err   error
}

func exportLookup(t *testing.T) func(string) (io.ReadCloser, error) {
	t.Helper()
	exportFiles.once.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export",
			"./...", "time", "math/rand", "fmt", "sort", "slices")
		cmd.Dir = moduleRoot()
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			exportFiles.err = fmt.Errorf("go list -export: %v", err)
			return
		}
		exportFiles.files = make(map[string]string)
		dec := json.NewDecoder(&out)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				exportFiles.err = err
				return
			}
			if p.Export != "" {
				exportFiles.files[p.ImportPath] = p.Export
			}
		}
	})
	if exportFiles.err != nil {
		t.Fatal(exportFiles.err)
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles.files[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func moduleRoot() string {
	// The test binary runs in internal/lint; the module root is two up.
	return filepath.Join("..", "..")
}

// runFixture type-checks testdata/<dir> as package pkgPath and returns the
// analyzer's surviving (post-suppression) diagnostics.
func runFixture(t *testing.T, dir, pkgPath string, a *Analyzer) (*token.FileSet, []Diagnostic, []*ast.File) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in testdata/%s: %v", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	tcfg := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(t))}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck testdata/%s: %v", dir, err)
	}
	return fset, RunAnalyzers(fset, files, pkg, info, []*Analyzer{a}), files
}

var wantRE = regexp.MustCompile("// want((?: `[^`]+`)+)")
var wantArgRE = regexp.MustCompile("`([^`]+)`")

// checkWants matches diagnostics against // want expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	type want struct {
		file    string
		line    int
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	var wants []*want
	for _, f := range files {
		fname := fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Slash).Line
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fname, line, arg[1], err)
					}
					wants = append(wants, &want{file: fname, line: line, re: re, raw: arg[1]})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		text := d.Check + " " + d.Message
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", pos, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.raw)
		}
	}
}

func TestSimdetFixture(t *testing.T) {
	fset, diags, files := runFixture(t, "simdet", ModulePath+"/internal/lintfix/simdet", Simdet)
	checkWants(t, fset, files, diags)
}

func TestHotpathFixture(t *testing.T) {
	fset, diags, files := runFixture(t, "hotpath", ModulePath+"/internal/lintfix/hotpath", Hotpath)
	checkWants(t, fset, files, diags)

	// The load-bearing case: the fixture mirror of the server echo path
	// must surface the display.Op boxing ROADMAP names as the remaining
	// allocs/event driver.
	found := false
	for _, d := range diags {
		if d.Check == "hotpath.box" && strings.Contains(d.Message, "display.Op") {
			found = true
		}
	}
	if !found {
		t.Errorf("hotpath did not report the display.Op boxing on the echo-path mirror; got %d diagnostics", len(diags))
	}
}

func TestPoolsafeFixture(t *testing.T) {
	fset, diags, files := runFixture(t, "poolsafe", ModulePath+"/internal/lintfix/poolsafe", Poolsafe)
	checkWants(t, fset, files, diags)
}

func TestSeedflowFixture(t *testing.T) {
	fset, diags, files := runFixture(t, "seedflow", ModulePath+"/internal/lintfix/seedflow", Seedflow)
	checkWants(t, fset, files, diags)
}

// TestDirectiveFixture asserts the grammar checks directly — in particular
// that //thinlint:allow with an unknown check name is itself a diagnostic,
// not a silent no-op. (The directive diagnostics land on the directive
// comment's own line, where a // want comment cannot also sit, so this
// test enumerates expectations instead of using the fixture syntax.)
func TestDirectiveFixture(t *testing.T) {
	fset, diags, _ := runFixture(t, "directive", ModulePath+"/internal/lintfix/directive", DirectiveAnalyzer)
	type exp struct {
		check   string
		message string
	}
	want := []exp{
		{"directive.check", `unknown check "nosuch.check"`},
		{"directive.reason", "needs a reason"},
		{"directive.verb", `unknown thinlint directive "frobnicate"`},
		{"directive.placement", "must appear in a function declaration's doc comment"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s: %s [%s]", fset.Position(d.Pos), d.Message, d.Check)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if diags[i].Check != w.check || !strings.Contains(diags[i].Message, w.message) {
			t.Errorf("diagnostic %d = [%s] %q, want [%s] containing %q",
				i, diags[i].Check, diags[i].Message, w.check, w.message)
		}
	}
}

// TestSuiteRegistry pins the analyzer/rule names the directive grammar
// accepts; renaming a rule silently orphans every allow directive citing
// it, so a rename must show up here.
func TestSuiteRegistry(t *testing.T) {
	got := make(map[string][]string)
	for _, a := range Analyzers() {
		got[a.Name] = a.Rules
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
	want := map[string][]string{
		"directive": {"verb", "check", "reason", "placement"},
		"simdet":    {"wallclock", "globalrand", "goroutine", "maporder"},
		"hotpath":   {"alloc", "box", "closure", "fmt"},
		"poolsafe":  {"retain", "arena"},
		"seedflow":  {"literal", "adhoc"},
	}
	for name, rules := range want {
		if fmt.Sprint(got[name]) != fmt.Sprint(rules) {
			t.Errorf("analyzer %s rules = %v, want %v", name, got[name], rules)
		}
	}
	if len(got) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(got), len(want))
	}
}
