package sched

import (
	"fmt"

	"thinbench/internal/metrics"
	"thinbench/internal/simclock"
)

// ItemRecord describes one completed work item, the raw material for the
// lost-time latency methodology.
type ItemRecord struct {
	Thread   *Thread
	Tag      string
	Arrive   simclock.Time
	Done     simclock.Time
	CPU      simclock.Duration // CPU the item consumed
	Absorbed int               // additional items coalesced into this one
}

// Latency is completion time minus submission time: the user-visible delay.
func (r ItemRecord) Latency() simclock.Duration { return r.Done.Sub(r.Arrive) }

// CPU simulates a single processor driven by a Scheduler policy, matching
// the paper's uniprocessor testbed. All experiment workloads run through it.
type CPU struct {
	eng   *simclock.Engine
	sched Scheduler

	running    *Thread
	sliceEnd   *simclock.Event
	sliceFrom  simclock.Time
	sliceSpan  simclock.Duration
	nextThread int

	busy      *metrics.Series // accumulated busy microseconds per bucket
	busyTotal simclock.Duration
	started   simclock.Time

	// OnItemDone, if set, observes every completed work item.
	OnItemDone func(rec ItemRecord)

	dispatchPending bool

	// sliceDoneFn and dispatchFn are the slice-end and dispatch callbacks
	// bound once at construction, so the dispatch loop schedules events
	// without allocating a fresh closure per slice.
	sliceDoneFn func(now simclock.Time)
	dispatchFn  func(now simclock.Time)

	// itemFree recycles WorkItems handed out by Acquire once their
	// completion callback has returned.
	itemFree []*WorkItem
}

// NewCPU builds a CPU on the engine with the given policy. busyBucket sets
// the resolution of the utilization trace (e.g. 1 s for Figure 1).
func NewCPU(eng *simclock.Engine, sched Scheduler, busyBucket simclock.Duration) *CPU {
	c := &CPU{
		eng:     eng,
		sched:   sched,
		busy:    metrics.NewSeries(busyBucket),
		started: eng.Now(),
	}
	c.sliceDoneFn = c.sliceDone
	c.dispatchFn = func(now simclock.Time) {
		c.dispatchPending = false
		c.dispatch(now)
	}
	return c
}

// Acquire returns a zeroed WorkItem from the CPU's free list. Items
// obtained here are recycled automatically after their OnDone callback
// returns, so callers must not retain the pointer past completion. Items
// built with plain &WorkItem{} literals are never pooled.
//
//thinlint:hotpath
func (c *CPU) Acquire() *WorkItem {
	n := len(c.itemFree)
	if n == 0 {
		return &WorkItem{pooled: true} //thinlint:allow hotpath.alloc pool growth: runs once per high-water-mark item, amortized to zero in steady state
	}
	it := c.itemFree[n-1]
	c.itemFree[n-1] = nil
	c.itemFree = c.itemFree[:n-1]
	*it = WorkItem{pooled: true}
	return it
}

// Engine exposes the underlying event engine.
func (c *CPU) Engine() *simclock.Engine { return c.eng }

// Scheduler exposes the policy in use.
func (c *CPU) Scheduler() Scheduler { return c.sched }

// BusySeries reports the per-bucket busy time (microseconds) trace.
func (c *CPU) BusySeries() *metrics.Series { return c.busy }

// BusyTotal reports total CPU busy time.
func (c *CPU) BusyTotal() simclock.Duration { return c.busyTotal }

// Utilization reports overall busy fraction since construction.
func (c *CPU) Utilization() float64 {
	elapsed := c.eng.Now().Sub(c.started)
	if elapsed <= 0 {
		return 0
	}
	return float64(c.busyTotal) / float64(elapsed)
}

// Running reports the thread currently on CPU, nil when idle.
func (c *CPU) Running() *Thread { return c.running }

// NewThread creates a thread registered with this CPU. Threads begin
// Blocked; submitting work wakes them.
func (c *CPU) NewThread(name string, basePri int) *Thread {
	// The queue starts with room for a typical interactive backlog so the
	// append ladder (1, 2, 4, ...) doesn't charge every fresh thread a
	// handful of growth allocations before it reaches steady state.
	t := &Thread{ID: c.nextThread, Name: name, Base: basePri, cur: basePri, state: Blocked,
		queue: make([]*WorkItem, 0, 8)}
	c.nextThread++
	return t
}

// ReuseThread returns a retired thread to service as if freshly created by
// NewThread at the given base priority: every piece of scheduling state —
// boost, quantum, absorbed-item count, accumulated CPU, flags — resets to
// the pristine Blocked state, while the identity fields (which no
// scheduling decision reads) and the queue's backing array survive. The
// thread must be retired (not registered with any scheduler queue) when
// reused. Session pools use it to recycle pipeline threads across logins
// without reallocating them.
func (c *CPU) ReuseThread(t *Thread, basePri int) {
	*t = Thread{ID: t.ID, Name: t.Name, Base: basePri, cur: basePri, state: Blocked, queue: t.queue[:0]}
}

// Submit queues a work item on t at the current time, waking the thread if
// it was blocked.
//
//thinlint:hotpath
func (c *CPU) Submit(t *Thread, item *WorkItem) {
	if item.CPU < 0 {
		panic(fmt.Sprintf("sched: negative CPU demand for %q", item.Tag))
	}
	now := c.eng.Now()
	item.arrive = now
	t.queue = append(t.queue, item)
	if t.state != Blocked {
		return // already ready or running; item waits its turn
	}
	c.wake(t, now)
}

// SubmitAt schedules a submission at a future time, the common pattern for
// workload sources that know their event times in advance.
func (c *CPU) SubmitAt(at simclock.Time, t *Thread, item *WorkItem) {
	c.eng.At(at, func(simclock.Time) { c.Submit(t, item) })
}

func (c *CPU) wake(t *Thread, now simclock.Time) {
	t.state = Ready
	t.readySince = now
	c.sched.Enqueue(t, now, ReasonWake)
	if c.running != nil && c.sched.ShouldPreempt(c.running, t) {
		c.preempt(now)
	}
	c.scheduleDispatch()
}

// scheduleDispatch coalesces dispatch attempts into a single event at the
// current instant, so that a burst of submissions triggers one decision.
func (c *CPU) scheduleDispatch() {
	if c.dispatchPending {
		return
	}
	c.dispatchPending = true
	c.eng.After(0, c.dispatchFn)
}

// dispatch puts the next ready thread on the CPU if it is free.
//
//thinlint:hotpath
func (c *CPU) dispatch(now simclock.Time) {
	if c.running != nil {
		return
	}
	t := c.sched.Dequeue(now)
	if t == nil {
		return
	}
	t.state = Running
	c.running = t
	if t.item == nil {
		if !t.startNextItem() {
			// Spurious ready thread with no work: block it again.
			t.state = Blocked
			c.running = nil
			c.scheduleDispatch()
			return
		}
		t.quantumRem = c.sched.Quantum(t)
	}
	if t.quantumRem <= 0 {
		t.quantumRem = c.sched.Quantum(t)
	}
	slice := t.quantumRem
	if t.remaining < slice {
		slice = t.remaining
	}
	c.sliceFrom = now
	c.sliceSpan = slice
	//thinlint:allow poolsafe.retain sliceEnd is cleared in sliceDone before the engine recycles the event, and Cancel checks pending first
	c.sliceEnd = c.eng.After(slice, c.sliceDoneFn)
}

// accountRun charges d of CPU to the running thread and utilization trace.
func (c *CPU) accountRun(t *Thread, from simclock.Time, d simclock.Duration) {
	if d <= 0 {
		return
	}
	t.totalCPU += d
	c.busyTotal += d
	c.busy.AddSpan(from, d, float64(d))
}

// sliceDone fires when the running thread's slice ends: either its current
// item completed or its quantum expired.
//
//thinlint:hotpath
func (c *CPU) sliceDone(now simclock.Time) {
	t := c.running
	if t == nil {
		return
	}
	ran := now.Sub(c.sliceFrom)
	c.accountRun(t, c.sliceFrom, ran)
	t.remaining -= ran
	t.quantumRem -= ran
	c.sliceEnd = nil

	if t.remaining <= 0 {
		c.completeItem(t, now)
		if t.item == nil && !t.startNextItem() {
			// No more work: block.
			t.state = Blocked
			t.quantumRem = 0
			c.sched.OnBlock(t, now)
			c.running = nil
			c.scheduleDispatch()
			return
		}
		// More work queued. If the quantum also ran out, round-robin;
		// otherwise keep the CPU for the next item.
		if t.quantumRem <= 0 {
			c.requeueExpired(t, now)
			return
		}
		c.continueRunning(t, now)
		return
	}

	// Quantum expired mid-item.
	c.requeueExpired(t, now)
}

func (c *CPU) continueRunning(t *Thread, now simclock.Time) {
	slice := t.quantumRem
	if t.remaining < slice {
		slice = t.remaining
	}
	c.sliceFrom = now
	c.sliceSpan = slice
	//thinlint:allow poolsafe.retain same contract as dispatch: cleared in sliceDone before recycle
	c.sliceEnd = c.eng.After(slice, c.sliceDoneFn)
}

func (c *CPU) requeueExpired(t *Thread, now simclock.Time) {
	c.sched.OnQuantumExpire(t, now)
	t.state = Ready
	t.readySince = now
	t.quantumRem = 0
	c.sched.Enqueue(t, now, ReasonQuantumExpire)
	c.running = nil
	c.scheduleDispatch()
}

func (c *CPU) completeItem(t *Thread, now simclock.Time) {
	it := t.item
	t.item = nil
	if it == nil {
		return
	}
	rec := ItemRecord{
		Thread:   t,
		Tag:      it.Tag,
		Arrive:   it.arrive,
		Done:     now,
		CPU:      it.CPU + simclock.Duration(t.absorbed)*it.ExtraCPU,
		Absorbed: t.absorbed,
	}
	if c.OnItemDone != nil {
		c.OnItemDone(rec)
	}
	if it.OnDone != nil {
		it.OnDone(it, now, 1+t.absorbed)
	}
	t.absorbed = 0
	if it.pooled {
		// Coalesced-away items skip completion and simply fall to the GC;
		// only items that reach this point re-enter the pool.
		*it = WorkItem{}
		c.itemFree = append(c.itemFree, it)
	}
}

// preempt displaces the running thread in favor of a higher-priority wake.
func (c *CPU) preempt(now simclock.Time) {
	t := c.running
	if t == nil {
		return
	}
	if c.sliceEnd != nil {
		c.eng.Cancel(c.sliceEnd)
		c.sliceEnd = nil
	}
	ran := now.Sub(c.sliceFrom)
	c.accountRun(t, c.sliceFrom, ran)
	t.remaining -= ran
	t.quantumRem -= ran
	if t.remaining <= 0 {
		// The preemption landed exactly at item completion.
		c.completeItem(t, now)
	}
	t.state = Ready
	t.readySince = now
	c.sched.Enqueue(t, now, ReasonPreempted)
	c.running = nil
	c.scheduleDispatch()
}

// Retire removes a thread from the system: pending work is dropped and the
// thread will not run again. Retiring the running thread stops it at the
// current instant.
func (c *CPU) Retire(t *Thread) {
	now := c.eng.Now()
	switch t.state {
	case Running:
		if c.sliceEnd != nil {
			c.eng.Cancel(c.sliceEnd)
			c.sliceEnd = nil
		}
		ran := now.Sub(c.sliceFrom)
		c.accountRun(t, c.sliceFrom, ran)
		c.running = nil
		c.scheduleDispatch()
	case Ready:
		c.sched.Remove(t)
	}
	t.state = Blocked
	// Keep the queue's backing array (truncated) so a thread recycled via
	// ReuseThread submits into warmed storage; the dropped items are
	// unreachable either way.
	t.queue = t.queue[:0]
	t.qhead = 0
	t.item = nil
	t.remaining = 0
}
