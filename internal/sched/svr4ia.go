package sched

import (
	"thinbench/internal/simclock"
)

// SVR4IASched models the interactive-class scheduler of Evans et al.
// ("Optimizing Unix Resource Scheduling for User Interaction", USENIX 1993),
// which the paper holds up as the existence proof that keystroke latency can
// stay flat as load grows: threads marked Interactive form a strictly
// higher class that always dispatches ahead of timeshare threads and
// preempts them on wake. Within each class, round-robin applies.
//
// The reproduction uses it as the "fixed" baseline in the Figure 3 ablation:
// under this policy, average stall length stays constant and small even at
// scheduler queue length 20+, exactly the behavior Evans et al. demonstrated
// on their modified SVR4 kernel.
type SVR4IASched struct {
	quantum     simclock.Duration
	interactive []*Thread
	timeshare   []*Thread
}

// NewSVR4IASched builds the policy with the given quantum for both classes.
func NewSVR4IASched(quantum simclock.Duration) *SVR4IASched {
	if quantum <= 0 {
		quantum = 10 * simclock.Millisecond
	}
	return &SVR4IASched{quantum: quantum}
}

// Name implements Scheduler.
func (s *SVR4IASched) Name() string { return "svr4ia" }

// Enqueue implements Scheduler.
func (s *SVR4IASched) Enqueue(t *Thread, now simclock.Time, reason Reason) {
	q := &s.timeshare
	if t.Interactive {
		q = &s.interactive
	}
	if reason == ReasonPreempted {
		*q = append([]*Thread{t}, *q...)
		return
	}
	*q = append(*q, t)
}

// Dequeue implements Scheduler: the interactive class always wins.
func (s *SVR4IASched) Dequeue(now simclock.Time) *Thread {
	if len(s.interactive) > 0 {
		t := s.interactive[0]
		s.interactive = popFront(s.interactive)
		return t
	}
	if len(s.timeshare) > 0 {
		t := s.timeshare[0]
		s.timeshare = popFront(s.timeshare)
		return t
	}
	return nil
}

func popFront(q []*Thread) []*Thread {
	copy(q, q[1:])
	q[len(q)-1] = nil
	return q[:len(q)-1]
}

// Remove implements Scheduler.
func (s *SVR4IASched) Remove(t *Thread) {
	q := &s.timeshare
	if t.Interactive {
		q = &s.interactive
	}
	for i, x := range *q {
		if x == t {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}

// Quantum implements Scheduler.
func (s *SVR4IASched) Quantum(t *Thread) simclock.Duration { return s.quantum }

// ShouldPreempt implements Scheduler: an interactive wake immediately
// displaces a timeshare thread — the core of the Evans et al. design.
func (s *SVR4IASched) ShouldPreempt(running, woken *Thread) bool {
	return woken.Interactive && !running.Interactive
}

// OnQuantumExpire implements Scheduler.
func (s *SVR4IASched) OnQuantumExpire(t *Thread, now simclock.Time) {}

// OnBlock implements Scheduler.
func (s *SVR4IASched) OnBlock(t *Thread, now simclock.Time) {}

// ReadyCount implements Scheduler.
func (s *SVR4IASched) ReadyCount() int { return len(s.interactive) + len(s.timeshare) }
