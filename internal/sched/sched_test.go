package sched

import (
	"testing"

	"thinbench/internal/simclock"
)

func newRRCPU() (*simclock.Engine, *CPU) {
	eng := simclock.NewEngine()
	cpu := NewCPU(eng, NewRRSched(10*simclock.Millisecond), simclock.Second)
	return eng, cpu
}

func TestSingleItemRunsToCompletion(t *testing.T) {
	eng, cpu := newRRCPU()
	th := cpu.NewThread("worker", 0)
	var doneAt simclock.Time
	var n int
	cpu.Submit(th, &WorkItem{Tag: "job", CPU: 3 * simclock.Millisecond, OnDone: func(_ *WorkItem, now simclock.Time, k int) {
		doneAt, n = now, k
	}})
	eng.Drain(1000)
	if doneAt != simclock.Time(3*simclock.Millisecond) {
		t.Fatalf("completed at %v, want 3ms", doneAt)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if th.State() != Blocked {
		t.Fatalf("thread state = %v, want blocked", th.State())
	}
	if th.TotalCPU() != 3*simclock.Millisecond {
		t.Fatalf("TotalCPU = %v, want 3ms", th.TotalCPU())
	}
}

func TestItemSpanningMultipleQuanta(t *testing.T) {
	eng, cpu := newRRCPU()
	th := cpu.NewThread("worker", 0)
	var doneAt simclock.Time
	cpu.Submit(th, &WorkItem{Tag: "long", CPU: 35 * simclock.Millisecond, OnDone: func(_ *WorkItem, now simclock.Time, _ int) {
		doneAt = now
	}})
	eng.Drain(1000)
	// Alone on the CPU: 35ms of work takes 35ms despite quantum expiries.
	if doneAt != simclock.Time(35*simclock.Millisecond) {
		t.Fatalf("completed at %v, want 35ms", doneAt)
	}
}

func TestRoundRobinAlternation(t *testing.T) {
	eng, cpu := newRRCPU()
	a := cpu.NewThread("a", 0)
	b := cpu.NewThread("b", 0)
	var aDone, bDone simclock.Time
	cpu.Submit(a, &WorkItem{Tag: "a", CPU: 20 * simclock.Millisecond, OnDone: func(_ *WorkItem, now simclock.Time, _ int) { aDone = now }})
	cpu.Submit(b, &WorkItem{Tag: "b", CPU: 20 * simclock.Millisecond, OnDone: func(_ *WorkItem, now simclock.Time, _ int) { bDone = now }})
	eng.Drain(1000)
	// a: [0,10) [20,30); b: [10,20) [30,40).
	if aDone != simclock.Time(30*simclock.Millisecond) {
		t.Fatalf("a done at %v, want 30ms", aDone)
	}
	if bDone != simclock.Time(40*simclock.Millisecond) {
		t.Fatalf("b done at %v, want 40ms", bDone)
	}
}

func TestRRNoWakePreemption(t *testing.T) {
	eng, cpu := newRRCPU()
	hog := cpu.NewThread("hog", 0)
	ed := cpu.NewThread("editor", 0)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 100 * simclock.Millisecond})
	var echoAt simclock.Time
	// Keystroke arrives 2ms in; under round-robin with no wake preemption the
	// editor must wait for the hog's 10ms quantum boundary.
	cpu.SubmitAt(simclock.Time(2*simclock.Millisecond), ed, &WorkItem{
		Tag: "key", CPU: simclock.Millisecond,
		OnDone: func(_ *WorkItem, now simclock.Time, _ int) { echoAt = now },
	})
	eng.Drain(10000)
	if echoAt != simclock.Time(11*simclock.Millisecond) {
		t.Fatalf("echo at %v, want 11ms (wait for quantum boundary)", echoAt)
	}
}

func TestNTWakePreemption(t *testing.T) {
	eng := simclock.NewEngine()
	cpu := NewCPU(eng, NewNTSched(DefaultNTConfig()), simclock.Second)
	hog := cpu.NewThread("hog", 8)
	ed := cpu.NewThread("editor", 9)
	ed.GUIBoost = true
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 100 * simclock.Millisecond})
	var echoAt simclock.Time
	cpu.SubmitAt(simclock.Time(2*simclock.Millisecond), ed, &WorkItem{
		Tag: "key", CPU: simclock.Millisecond,
		OnDone: func(_ *WorkItem, now simclock.Time, _ int) { echoAt = now },
	})
	eng.Drain(10000)
	// NT preempts the lower-priority hog immediately: echo at 2+1 = 3ms.
	if echoAt != simclock.Time(3*simclock.Millisecond) {
		t.Fatalf("echo at %v, want 3ms (immediate preemption)", echoAt)
	}
}

func TestNTGUIBoostAppliesAndDecays(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := DefaultNTConfig()
	s := NewNTSched(cfg)
	cpu := NewCPU(eng, s, simclock.Second)
	gui := cpu.NewThread("gui", 9)
	gui.GUIBoost = true
	// A long GUI operation (window maximize): 500ms of CPU. The boost to 15
	// lasts two quanta (60ms unstretched) and then decays to base 9.
	cpu.Submit(gui, &WorkItem{Tag: "maximize", CPU: 500 * simclock.Millisecond})
	// Let it get dispatched.
	eng.RunFor(simclock.Millisecond)
	if gui.Priority() != 15 {
		t.Fatalf("priority after wake = %d, want 15", gui.Priority())
	}
	// After 2 quanta expire the boost is gone.
	eng.RunFor(70 * simclock.Millisecond)
	if gui.Priority() != 9 {
		t.Fatalf("priority after two quanta = %d, want 9", gui.Priority())
	}
	if gui.Boosted() {
		t.Fatal("thread still marked boosted after decay")
	}
}

func TestNTQuantumStretch(t *testing.T) {
	cfg := DefaultNTConfig()
	cfg.Stretch = 3
	s := NewNTSched(cfg)
	fg := &Thread{Name: "fg", Foreground: true}
	bg := &Thread{Name: "bg"}
	if q := s.Quantum(fg); q != 90*simclock.Millisecond {
		t.Fatalf("foreground quantum = %v, want 90ms", q)
	}
	if q := s.Quantum(bg); q != 30*simclock.Millisecond {
		t.Fatalf("background quantum = %v, want 30ms", q)
	}
	// Stretch is clamped to 1..3.
	cfg.Stretch = 9
	if got := NewNTSched(cfg).Config().Stretch; got != 3 {
		t.Fatalf("stretch clamp = %d, want 3", got)
	}
	cfg.Stretch = 0
	if got := NewNTSched(cfg).Config().Stretch; got != 1 {
		t.Fatalf("stretch clamp = %d, want 1", got)
	}
}

func TestCoalescingAbsorbsSameTag(t *testing.T) {
	eng, cpu := newRRCPU()
	hog := cpu.NewThread("hog", 0)
	enc := cpu.NewThread("encoder", 0)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 40 * simclock.Millisecond})
	// Five updates arrive while the hog runs; the encoder coalesces them
	// into a single completion.
	var counts []int
	for i := 0; i < 5; i++ {
		cpu.SubmitAt(simclock.Time(i+1)*simclock.Time(simclock.Millisecond), enc, &WorkItem{
			Tag: "update", CPU: 2 * simclock.Millisecond, ExtraCPU: 100 * simclock.Microsecond, Coalesce: true,
			OnDone: func(_ *WorkItem, now simclock.Time, n int) { counts = append(counts, n) },
		})
	}
	eng.Drain(10000)
	if len(counts) != 1 {
		t.Fatalf("completions = %v, want one coalesced completion", counts)
	}
	if counts[0] != 5 {
		t.Fatalf("coalesced count = %d, want 5", counts[0])
	}
}

func TestCoalescingLeavesOtherTags(t *testing.T) {
	eng, cpu := newRRCPU()
	hog := cpu.NewThread("hog", 0)
	enc := cpu.NewThread("worker", 0)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 30 * simclock.Millisecond})
	var done []string
	mk := func(tag string, coalesce bool) *WorkItem {
		return &WorkItem{Tag: tag, CPU: simclock.Millisecond, Coalesce: coalesce,
			OnDone: func(_ *WorkItem, _ simclock.Time, _ int) { done = append(done, tag) }}
	}
	cpu.SubmitAt(1000, enc, mk("update", true))
	cpu.SubmitAt(1001, enc, mk("other", false))
	cpu.SubmitAt(1002, enc, mk("update", true))
	eng.Drain(10000)
	// The two "update" items coalesce; "other" survives separately.
	if len(done) != 2 {
		t.Fatalf("completions = %v, want [update other]", done)
	}
	if done[0] != "update" || done[1] != "other" {
		t.Fatalf("completions = %v, want [update other]", done)
	}
}

func TestBalanceSetBoostsStarvedThreads(t *testing.T) {
	eng := simclock.NewEngine()
	cfg := DefaultNTConfig()
	s := NewNTSched(cfg)
	cpu := NewCPU(eng, s, simclock.Second)
	stopScan := s.InstallBalanceSet(eng)
	defer stopScan()
	// A priority 10 hog monopolizes the CPU; a priority 4 victim starves.
	hog := cpu.NewThread("hog", 10)
	victim := cpu.NewThread("victim", 4)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 20 * simclock.Second})
	var victimDone simclock.Time
	cpu.Submit(victim, &WorkItem{Tag: "job", CPU: simclock.Millisecond,
		OnDone: func(_ *WorkItem, now simclock.Time, _ int) { victimDone = now }})
	eng.RunFor(10 * simclock.Second)
	if victimDone == 0 {
		t.Fatal("starved thread never ran despite balance-set scans")
	}
	// It must have waited at least StarvationWait before the boost.
	if victimDone < simclock.Time(cfg.StarvationWait) {
		t.Fatalf("victim ran at %v, before the starvation threshold %v", victimDone, cfg.StarvationWait)
	}
	// And not unreasonably long after the first eligible scan.
	if victimDone > simclock.Time(6*simclock.Second) {
		t.Fatalf("victim ran at %v, too long after starvation threshold", victimDone)
	}
}

func TestSVR4InteractivePreemptsTimeshare(t *testing.T) {
	eng := simclock.NewEngine()
	cpu := NewCPU(eng, NewSVR4IASched(10*simclock.Millisecond), simclock.Second)
	hog := cpu.NewThread("hog", 0)
	ed := cpu.NewThread("editor", 0)
	ed.Interactive = true
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 100 * simclock.Millisecond})
	var echoAt simclock.Time
	cpu.SubmitAt(simclock.Time(2*simclock.Millisecond), ed, &WorkItem{
		Tag: "key", CPU: simclock.Millisecond,
		OnDone: func(_ *WorkItem, now simclock.Time, _ int) { echoAt = now },
	})
	eng.Drain(10000)
	if echoAt != simclock.Time(3*simclock.Millisecond) {
		t.Fatalf("echo at %v, want 3ms (interactive preemption)", echoAt)
	}
}

func TestSVR4ConstantLatencyUnderLoad(t *testing.T) {
	// The Evans et al. result: interactive latency stays flat as timeshare
	// load grows. Compare stall at load 2 vs load 20.
	stall := func(nSinks int) simclock.Duration {
		eng := simclock.NewEngine()
		cpu := NewCPU(eng, NewSVR4IASched(10*simclock.Millisecond), simclock.Second)
		for i := 0; i < nSinks; i++ {
			s := cpu.NewThread("sink", 0)
			cpu.Submit(s, &WorkItem{Tag: "spin", CPU: simclock.Duration(1000) * simclock.Second})
		}
		ed := cpu.NewThread("editor", 0)
		ed.Interactive = true
		var worst simclock.Duration
		cpu.OnItemDone = func(rec ItemRecord) {
			if rec.Tag == "key" {
				if l := rec.Latency(); l > worst {
					worst = l
				}
			}
		}
		for i := 0; i < 20; i++ {
			at := simclock.Time(i) * simclock.Time(50*simclock.Millisecond)
			cpu.SubmitAt(at, ed, &WorkItem{Tag: "key", CPU: simclock.Millisecond})
		}
		eng.RunFor(2 * simclock.Second)
		return worst
	}
	light, heavy := stall(2), stall(20)
	if heavy > light+2*simclock.Millisecond {
		t.Fatalf("interactive latency grew with load: light=%v heavy=%v", light, heavy)
	}
	if heavy > 15*simclock.Millisecond {
		t.Fatalf("interactive latency %v exceeds a quantum + service time", heavy)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng, cpu := newRRCPU()
	th := cpu.NewThread("worker", 0)
	cpu.Submit(th, &WorkItem{Tag: "job", CPU: 250 * simclock.Millisecond})
	eng.RunFor(simclock.Second)
	if got := cpu.BusyTotal(); got != 250*simclock.Millisecond {
		t.Fatalf("BusyTotal = %v, want 250ms", got)
	}
	u := cpu.Utilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("Utilization = %v, want ~0.25", u)
	}
}

func TestItemRecordFields(t *testing.T) {
	eng, cpu := newRRCPU()
	hog := cpu.NewThread("hog", 0)
	w := cpu.NewThread("w", 0)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: 20 * simclock.Millisecond})
	var rec ItemRecord
	cpu.OnItemDone = func(r ItemRecord) {
		if r.Tag == "job" {
			rec = r
		}
	}
	cpu.SubmitAt(simclock.Time(5*simclock.Millisecond), w, &WorkItem{Tag: "job", CPU: 2 * simclock.Millisecond})
	eng.Drain(10000)
	if rec.Thread != w {
		t.Fatal("record thread mismatch")
	}
	if rec.Arrive != simclock.Time(5*simclock.Millisecond) {
		t.Fatalf("Arrive = %v, want 5ms", rec.Arrive)
	}
	if rec.CPU != 2*simclock.Millisecond {
		t.Fatalf("CPU = %v, want 2ms", rec.CPU)
	}
	if rec.Latency() < 2*simclock.Millisecond {
		t.Fatalf("Latency = %v, below service time", rec.Latency())
	}
}

func TestRetireStopsThread(t *testing.T) {
	eng, cpu := newRRCPU()
	hog := cpu.NewThread("hog", 0)
	other := cpu.NewThread("other", 0)
	cpu.Submit(hog, &WorkItem{Tag: "spin", CPU: simclock.Duration(100) * simclock.Second})
	var otherDone simclock.Time
	cpu.SubmitAt(simclock.Time(simclock.Millisecond), other, &WorkItem{Tag: "job", CPU: simclock.Millisecond,
		OnDone: func(_ *WorkItem, now simclock.Time, _ int) { otherDone = now }})
	eng.At(simclock.Time(5*simclock.Millisecond), func(simclock.Time) { cpu.Retire(hog) })
	eng.RunFor(simclock.Second)
	if hog.State() != Blocked {
		t.Fatalf("retired thread state = %v, want blocked", hog.State())
	}
	if otherDone == 0 {
		t.Fatal("other thread never ran after retire")
	}
	// Retired hog consumed only the time before retirement.
	if hog.TotalCPU() > 5*simclock.Millisecond {
		t.Fatalf("retired hog consumed %v, want <= 5ms", hog.TotalCPU())
	}
}

func TestWorkConservation(t *testing.T) {
	// Total CPU consumed equals total CPU demanded, for a batch of jobs on
	// several threads under each scheduler.
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewRRSched(10 * simclock.Millisecond) },
		func() Scheduler { return NewNTSched(DefaultNTConfig()) },
		func() Scheduler { return NewSVR4IASched(10 * simclock.Millisecond) },
	} {
		eng := simclock.NewEngine()
		cpu := NewCPU(eng, mk(), simclock.Second)
		rng := simclock.NewRand(11)
		var demand simclock.Duration
		var completions int
		want := 0
		for i := 0; i < 8; i++ {
			th := cpu.NewThread("t", 4+rng.Intn(8))
			for j := 0; j < 5; j++ {
				cpu := cpu
				d := simclock.Duration(1+rng.Intn(20)) * simclock.Millisecond
				demand += d
				want++
				cpu.SubmitAt(simclock.Time(rng.Intn(100))*simclock.Time(simclock.Millisecond), th,
					&WorkItem{Tag: "job", CPU: d, OnDone: func(_ *WorkItem, _ simclock.Time, _ int) { completions++ }})
			}
		}
		eng.Drain(1_000_000)
		if completions != want {
			t.Fatalf("%s: %d completions, want %d", cpu.Scheduler().Name(), completions, want)
		}
		if cpu.BusyTotal() != demand {
			t.Fatalf("%s: busy %v != demand %v", cpu.Scheduler().Name(), cpu.BusyTotal(), demand)
		}
	}
}

func TestIdleProfileRatios(t *testing.T) {
	linux := LinuxIdleProfile().TotalPerSecond()
	nt := NTIdleProfile().TotalPerSecond()
	tse := TSEIdleProfile().TotalPerSecond()
	if !(linux < nt && nt < tse) {
		t.Fatalf("idle load ordering wrong: linux=%v nt=%v tse=%v", linux, nt, tse)
	}
	if r := tse / nt; r < 2.4 || r > 3.6 {
		t.Fatalf("TSE/NT idle ratio = %.2f, want ~3", r)
	}
	if r := tse / linux; r < 5.5 || r > 8.5 {
		t.Fatalf("TSE/Linux idle ratio = %.2f, want ~7", r)
	}
}

func TestIdleProfileInstallGeneratesLoad(t *testing.T) {
	for _, p := range []IdleProfile{LinuxIdleProfile(), NTIdleProfile(), TSEIdleProfile()} {
		eng := simclock.NewEngine()
		cpu := NewCPU(eng, NewNTSched(DefaultNTConfig()), simclock.Second)
		cancel := p.Install(cpu)
		eng.RunFor(60 * simclock.Second)
		cancel()
		got := cpu.Utilization()
		want := p.TotalPerSecond()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: measured idle utilization %.4f, profile predicts %.4f", p.OS, got, want)
		}
	}
}

func TestStateString(t *testing.T) {
	if Blocked.String() != "blocked" || Ready.String() != "ready" || Running.String() != "running" {
		t.Fatal("State.String values wrong")
	}
	if State(42).String() == "" {
		t.Fatal("unknown state should stringify")
	}
}

func TestNegativeCPUPanics(t *testing.T) {
	_, cpu := newRRCPU()
	th := cpu.NewThread("w", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative CPU demand did not panic")
		}
	}()
	cpu.Submit(th, &WorkItem{Tag: "bad", CPU: -1})
}

func TestSchedulerRemove(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewRRSched(10 * simclock.Millisecond) },
		func() Scheduler { return NewNTSched(DefaultNTConfig()) },
		func() Scheduler { return NewSVR4IASched(10 * simclock.Millisecond) },
	} {
		s := mk()
		a := &Thread{Name: "a", Base: 8, cur: 8}
		b := &Thread{Name: "b", Base: 8, cur: 8}
		s.Enqueue(a, 0, ReasonWake)
		s.Enqueue(b, 0, ReasonWake)
		if s.ReadyCount() != 2 {
			t.Fatalf("%s: ReadyCount = %d, want 2", s.Name(), s.ReadyCount())
		}
		s.Remove(a)
		if got := s.Dequeue(0); got != b {
			t.Fatalf("%s: Dequeue after Remove = %v, want b", s.Name(), got)
		}
	}
}
