package sched

import (
	"thinbench/internal/simclock"
)

// Activity is one periodic system task in an idle-state profile: a daemon or
// kernel housekeeping chore that consumes CPU even with no user logged in.
// These are the sources of the paper's "compulsory load".
type Activity struct {
	Name     string
	Period   simclock.Duration
	Duration simclock.Duration // CPU consumed per firing
	Priority int
	// Phase offsets the first firing so activities do not all align at t=0.
	Phase simclock.Duration
}

// IdleProfile is the set of periodic activities an operating system runs
// while idle. The three profiles below are calibrated so the aggregate
// idle-state load over a 600 s window reproduces the paper's Figure 2
// finding: TSE ≈ 3× NT Workstation ≈ 7× Linux, with NT's events all at or
// under 100 ms and TSE adding distinct 250 ms and 400 ms events from the
// Terminal Service and Session Manager (both priority 13 per §4.2.1).
type IdleProfile struct {
	OS         string
	Activities []Activity
}

// TotalPerSecond reports the profile's aggregate CPU demand per second of
// wall time, as a fraction.
func (p IdleProfile) TotalPerSecond() float64 {
	var frac float64
	for _, a := range p.Activities {
		frac += float64(a.Duration) / float64(a.Period)
	}
	return frac
}

// LinuxIdleProfile models an idle Linux 2.0.36 system in multi-user mode:
// the 10 ms clock tick plus kflushd/kswapd/update housekeeping. Aggregate
// ≈ 6.4 s of CPU per 600 s (≈ 1.1%), the paper's "much less CPU time
// handling tasks when idle".
func LinuxIdleProfile() IdleProfile {
	return IdleProfile{
		OS: "Linux",
		Activities: []Activity{
			{Name: "clock-tick", Period: 10 * simclock.Millisecond, Duration: 30 * simclock.Microsecond, Priority: 31},
			{Name: "kflushd", Period: 5 * simclock.Second, Duration: 5 * simclock.Millisecond, Priority: 20, Phase: simclock.Second},
			{Name: "update", Period: 30 * simclock.Second, Duration: 20 * simclock.Millisecond, Priority: 20, Phase: 3 * simclock.Second},
			{Name: "net-timers", Period: 200 * simclock.Millisecond, Duration: 600 * simclock.Microsecond, Priority: 30, Phase: 50 * simclock.Millisecond},
			{Name: "daemon-wakeups", Period: simclock.Second, Duration: 4 * simclock.Millisecond, Priority: 20, Phase: 700 * simclock.Millisecond},
		},
	}
}

// NTIdleProfile models an idle NT 4.0 Workstation: the same 10 ms clock
// interrupt cadence Endo et al. observed (despite documentation claiming
// 15 ms), the cache manager's lazy writer, registry lazy flush, and
// miscellaneous executive worker activity. Aggregate ≈ 15 s per 600 s
// (≈ 2.5%), with every event at or below 100 ms.
func NTIdleProfile() IdleProfile {
	return IdleProfile{
		OS: "NT Workstation",
		Activities: []Activity{
			{Name: "clock-tick", Period: 10 * simclock.Millisecond, Duration: 80 * simclock.Microsecond, Priority: 31},
			{Name: "lazy-writer", Period: simclock.Second, Duration: 8 * simclock.Millisecond, Priority: 16, Phase: 400 * simclock.Millisecond},
			{Name: "registry-flush", Period: 5 * simclock.Second, Duration: 20 * simclock.Millisecond, Priority: 16, Phase: 2 * simclock.Second},
			{Name: "worker-misc", Period: 100 * simclock.Millisecond, Duration: 300 * simclock.Microsecond, Priority: 12, Phase: 30 * simclock.Millisecond},
			{Name: "ccm-scan", Period: 10 * simclock.Second, Duration: 20 * simclock.Millisecond, Priority: 16, Phase: 7 * simclock.Second},
		},
	}
}

// TSEIdleProfile models an idle NT TSE system: the NT Workstation profile
// plus the Terminal Service connection listener and Session Manager
// housekeeping (priority 13 events of 250 ms and 400 ms, §4.2.1) and
// per-session virtualization overhead in the VM/Object/Process managers.
// Aggregate ≈ 45 s per 600 s (≈ 7.4%), three times NT Workstation.
func TSEIdleProfile() IdleProfile {
	nt := NTIdleProfile()
	acts := make([]Activity, len(nt.Activities), len(nt.Activities)+3)
	copy(acts, nt.Activities)
	acts = append(acts,
		Activity{Name: "terminal-service", Period: 10 * simclock.Second, Duration: 250 * simclock.Millisecond, Priority: 13, Phase: 4 * simclock.Second},
		Activity{Name: "session-manager", Period: 20 * simclock.Second, Duration: 400 * simclock.Millisecond, Priority: 13, Phase: 11 * simclock.Second},
		Activity{Name: "session-virtualization", Period: 100 * simclock.Millisecond, Duration: 500 * simclock.Microsecond, Priority: 12, Phase: 60 * simclock.Millisecond},
	)
	return IdleProfile{OS: "NT TSE", Activities: acts}
}

// Install creates one daemon thread per activity on the CPU and schedules
// its periodic work. It returns a cancel function that stops all activities.
func (p IdleProfile) Install(c *CPU) (cancel func()) {
	eng := c.Engine()
	cancels := make([]func(), 0, len(p.Activities))
	for _, a := range p.Activities {
		a := a
		t := c.NewThread(a.Name, a.Priority)
		stop := eng.Every(eng.Now().Add(a.Phase), a.Period, func(now simclock.Time) {
			c.Submit(t, &WorkItem{Tag: a.Name, CPU: a.Duration})
		})
		cancels = append(cancels, stop)
	}
	return func() {
		for _, stop := range cancels {
			stop()
		}
	}
}
