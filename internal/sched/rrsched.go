package sched

import (
	"thinbench/internal/simclock"
)

// RRSched is the plain round-robin policy the paper uses to model the Linux
// scheduler: a single FIFO run queue, a fixed 10 ms quantum, no wake
// preemption, and no interactive or foreground boosting of any kind.
//
// The real Linux 2.0 scheduler computes a "goodness" value from remaining
// counter ticks, which gives recently-slept processes a modest edge. The
// paper's analysis (§4.2.1) deliberately reduces this to quantum-bounded
// round-robin — "Linux provides no help for interactive processes" — and its
// measurements (Figure 3's linear latency growth) confirm that model, so the
// reproduction implements the paper's model and treats measured behavior as
// ground truth.
type RRSched struct {
	quantum simclock.Duration
	queue   []*Thread
}

// NewRRSched builds a round-robin policy with the given quantum
// (10 ms for the paper's Linux configuration).
func NewRRSched(quantum simclock.Duration) *RRSched {
	if quantum <= 0 {
		quantum = 10 * simclock.Millisecond
	}
	return &RRSched{quantum: quantum}
}

// Name implements Scheduler.
func (s *RRSched) Name() string { return "rr" }

// Enqueue implements Scheduler: wakes and expiries join the tail; a
// preempted thread (rare under this policy, but possible when an experiment
// mixes policies) rejoins the head.
func (s *RRSched) Enqueue(t *Thread, now simclock.Time, reason Reason) {
	if reason == ReasonPreempted {
		s.queue = append([]*Thread{t}, s.queue...)
		return
	}
	s.queue = append(s.queue, t)
}

// Dequeue implements Scheduler.
func (s *RRSched) Dequeue(now simclock.Time) *Thread {
	if len(s.queue) == 0 {
		return nil
	}
	t := s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue[len(s.queue)-1] = nil
	s.queue = s.queue[:len(s.queue)-1]
	return t
}

// Remove implements Scheduler.
func (s *RRSched) Remove(t *Thread) {
	for i, q := range s.queue {
		if q == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// Quantum implements Scheduler.
func (s *RRSched) Quantum(t *Thread) simclock.Duration { return s.quantum }

// ShouldPreempt implements Scheduler: scheduling decisions happen only at
// quantum boundaries, the source of the paper's "latency catch-22".
func (s *RRSched) ShouldPreempt(running, woken *Thread) bool { return false }

// OnQuantumExpire implements Scheduler.
func (s *RRSched) OnQuantumExpire(t *Thread, now simclock.Time) {}

// OnBlock implements Scheduler.
func (s *RRSched) OnBlock(t *Thread, now simclock.Time) {}

// ReadyCount implements Scheduler.
func (s *RRSched) ReadyCount() int { return len(s.queue) }
