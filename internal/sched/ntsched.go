package sched

import (
	"thinbench/internal/simclock"
)

// NTConfig parameterizes the NT/TSE scheduler. Defaults follow the paper's
// description of NT 4.0 Workstation and Terminal Server Edition: a 30 ms
// quantum on Pentium-class hardware, administrator-selectable quantum
// stretching of 1-3x for foreground threads, GUI wake boosts to priority 15
// lasting two quanta, and the balance-set manager's anti-starvation scan.
type NTConfig struct {
	Quantum        simclock.Duration // base time slice (paper: 30 ms)
	Stretch        int               // foreground quantum multiplier, 1..3
	BoostPriority  int               // GUI wake boost target (paper: 15)
	BoostQuanta    int               // boost lifetime in quanta (paper: 2)
	StarvationWait simclock.Duration // ready-age triggering starvation boost
	ScanPeriod     simclock.Duration // balance-set scan interval
	ScanLimit      int               // max boosts per scan pass
}

// DefaultNTConfig is the TSE/Workstation configuration from the paper.
func DefaultNTConfig() NTConfig {
	return NTConfig{
		Quantum:        30 * simclock.Millisecond,
		Stretch:        1,
		BoostPriority:  15,
		BoostQuanta:    2,
		StarvationWait: 4 * simclock.Second,
		ScanPeriod:     simclock.Second,
		ScanLimit:      10,
	}
}

// NTSched implements the NT/TSE scheduling policy: 32 strict priority
// levels with round-robin within a level, immediate preemption by
// higher-priority wakes, GUI wake boosting, quantum stretching, and
// balance-set starvation boosts.
type NTSched struct {
	cfg    NTConfig
	queues [32][]*Thread
	ready  int
}

// NewNTSched builds the policy. Install the balance-set scan with
// InstallBalanceSet once a CPU engine exists.
func NewNTSched(cfg NTConfig) *NTSched {
	if cfg.Stretch < 1 {
		cfg.Stretch = 1
	}
	if cfg.Stretch > 3 {
		cfg.Stretch = 3
	}
	return &NTSched{cfg: cfg}
}

// Name implements Scheduler.
func (s *NTSched) Name() string { return "nt" }

// Config reports the active configuration.
func (s *NTSched) Config() NTConfig { return s.cfg }

// Enqueue implements Scheduler. GUI threads woken by input receive the
// documented boost to priority 15 for two quanta; preempted threads rejoin
// the head of their level so they resume first.
func (s *NTSched) Enqueue(t *Thread, now simclock.Time, reason Reason) {
	if reason == ReasonWake && t.GUIBoost {
		t.boost(s.cfg.BoostPriority, s.cfg.BoostQuanta)
	}
	p := s.clampPri(t.cur)
	if reason == ReasonPreempted {
		s.queues[p] = append([]*Thread{t}, s.queues[p]...)
	} else {
		s.queues[p] = append(s.queues[p], t)
	}
	s.ready++
}

func (s *NTSched) clampPri(p int) int {
	if p < 0 {
		return 0
	}
	if p > 31 {
		return 31
	}
	return p
}

// Dequeue implements Scheduler: highest non-empty priority level wins.
func (s *NTSched) Dequeue(now simclock.Time) *Thread {
	for p := 31; p >= 0; p-- {
		if q := s.queues[p]; len(q) > 0 {
			t := q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			s.queues[p] = q[:len(q)-1]
			s.ready--
			return t
		}
	}
	return nil
}

// Remove implements Scheduler.
func (s *NTSched) Remove(t *Thread) {
	p := s.clampPri(t.cur)
	for i, q := range s.queues[p] {
		if q == t {
			s.queues[p] = append(s.queues[p][:i], s.queues[p][i+1:]...)
			s.ready--
			return
		}
	}
}

// Quantum implements Scheduler: foreground threads get the stretched slice.
func (s *NTSched) Quantum(t *Thread) simclock.Duration {
	if t.Foreground {
		return s.cfg.Quantum * simclock.Duration(s.cfg.Stretch)
	}
	return s.cfg.Quantum
}

// ShouldPreempt implements Scheduler: NT preempts immediately when a
// strictly higher-priority thread becomes ready.
func (s *NTSched) ShouldPreempt(running, woken *Thread) bool {
	return woken.cur > running.cur
}

// OnQuantumExpire implements Scheduler: each consumed quantum burns one
// quantum of any active boost, returning the thread to base priority when
// the boost is exhausted — the mechanism behind the paper's 180 ms "grace
// period" analysis.
func (s *NTSched) OnQuantumExpire(t *Thread, now simclock.Time) {
	t.consumeBoostQuantum()
}

// OnBlock implements Scheduler. Blocking ends the current quantum, so it
// also burns a quantum of boost.
func (s *NTSched) OnBlock(t *Thread, now simclock.Time) {
	t.consumeBoostQuantum()
}

// ReadyCount implements Scheduler.
func (s *NTSched) ReadyCount() int { return s.ready }

// BalanceSetScan performs one pass of the balance-set manager's
// anti-starvation policy: ready threads that have waited at least
// StarvationWait are boosted to BoostPriority for a single quantum, at most
// ScanLimit per pass. It returns how many threads were boosted.
func (s *NTSched) BalanceSetScan(now simclock.Time) int {
	boosted := 0
	for p := 0; p < s.cfg.BoostPriority && boosted < s.cfg.ScanLimit; p++ {
		q := s.queues[p]
		for i := 0; i < len(q) && boosted < s.cfg.ScanLimit; {
			t := q[i]
			if now.Sub(t.readySince) >= s.cfg.StarvationWait {
				// Move the thread to the boosted level.
				q = append(q[:i], q[i+1:]...)
				s.queues[p] = q
				t.boost(s.cfg.BoostPriority, 1)
				s.queues[s.clampPri(t.cur)] = append(s.queues[s.clampPri(t.cur)], t)
				boosted++
				continue
			}
			i++
		}
	}
	return boosted
}

// InstallBalanceSet arranges the periodic balance-set scan on the engine.
// It returns a cancel function.
func (s *NTSched) InstallBalanceSet(eng *simclock.Engine) func() {
	return eng.Every(eng.Now().Add(s.cfg.ScanPeriod), s.cfg.ScanPeriod, func(now simclock.Time) {
		s.BalanceSetScan(now)
	})
}
