// Package sched simulates single-CPU thread scheduling with the three
// policies the paper analyzes: the Windows NT/TSE scheduler (32 priority
// levels, 30 ms quantum, quantum stretching, GUI wake boosts, balance-set
// anti-starvation boosts), the Linux scheduler as the paper models it
// (single round-robin queue with a 10 ms quantum and no interactive
// protection), and the SVR4 interactive-class scheduler of Evans et al.,
// which the paper cites as the fix for interactive starvation.
//
// Threads consume WorkItems submitted by workload generators; the CPU engine
// dispatches threads under a pluggable Scheduler policy and reports
// per-item completion latency, which the latency package turns into the
// paper's user-perceived latency metrics.
package sched

import (
	"fmt"

	"thinbench/internal/simclock"
)

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	Blocked State = iota // no runnable work
	Ready                // runnable, waiting for CPU
	Running              // currently on CPU
)

func (s State) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Ready:
		return "ready"
	case Running:
		return "running"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// WorkItem is a unit of CPU demand submitted to a thread: an input event to
// handle, a screen update to encode, a slice of background computation.
type WorkItem struct {
	// Tag labels the item for latency accounting ("keystroke", "encode").
	Tag string
	// CPU is the processing time the item needs.
	CPU simclock.Duration
	// ExtraCPU is added per absorbed item when Coalesce is set.
	ExtraCPU simclock.Duration
	// Coalesce lets a dispatched item absorb all queued items with the same
	// tag, modeling batched screen updates: the X server or TSE display
	// encoder processes every pending damage region in one pass and emits a
	// single update message.
	Coalesce bool
	// OnDone, if set, runs when the item completes. It receives the item
	// itself so a callback shared across items — a method value bound once
	// at construction — can read the A/B payload instead of capturing
	// per-item state in a fresh closure. n is 1 plus the number of absorbed
	// items. For pooled items the receiver must not retain it past the
	// call: the item is recycled as soon as OnDone returns.
	OnDone func(it *WorkItem, now simclock.Time, n int)
	// A and B are caller-owned integer payload slots for shared OnDone
	// callbacks (e.g. a session index and an interaction index). The
	// scheduler never reads them.
	A, B int

	arrive simclock.Time
	pooled bool // allocated via CPU.Acquire; recycled after completion
}

// Arrive reports when the item was submitted.
func (w *WorkItem) Arrive() simclock.Time { return w.arrive }

// Thread is a schedulable entity.
type Thread struct {
	ID   int
	Name string

	// Base is the scheduler-specific base priority. For the NT scheduler,
	// larger is better (1..31). The round-robin scheduler ignores it.
	Base int
	// GUIBoost marks threads that receive the NT GUI wake boost (to
	// priority 15 for BoostQuanta quanta) when woken by input.
	GUIBoost bool
	// Interactive marks threads protected by the SVR4 interactive class.
	Interactive bool
	// Foreground marks threads subject to NT quantum stretching.
	Foreground bool

	state     State
	cur       int // current (possibly boosted) priority
	boostLeft int // quanta remaining at boosted priority
	// queue and qhead form a FIFO ring: Submit appends at the tail and
	// startNextItem pops by advancing qhead, rewinding both to the array
	// start whenever the queue drains so steady-state submission reuses
	// one backing array instead of re-allocating on every append past a
	// slid-forward window.
	queue      []*WorkItem
	qhead      int
	item       *WorkItem         // item being serviced
	remaining  simclock.Duration // CPU left for current item
	quantumRem simclock.Duration // quantum left from last dispatch
	absorbed   int               // items coalesced into current item
	readySince simclock.Time
	totalCPU   simclock.Duration
}

// State reports the thread's current state.
func (t *Thread) State() State { return t.state }

// Priority reports the thread's current effective priority.
func (t *Thread) Priority() int { return t.cur }

// Boosted reports whether the thread currently runs at a boosted priority.
func (t *Thread) Boosted() bool { return t.boostLeft > 0 }

// QueueLen reports the number of pending (unstarted) work items.
func (t *Thread) QueueLen() int { return len(t.queue) - t.qhead }

// TotalCPU reports the cumulative CPU time the thread has consumed.
func (t *Thread) TotalCPU() simclock.Duration { return t.totalCPU }

// ReadySince reports when the thread last became ready (meaningful only
// while Ready).
func (t *Thread) ReadySince() simclock.Time { return t.readySince }

// boost raises the thread's priority for n quanta.
func (t *Thread) boost(pri, n int) {
	if pri > t.cur {
		t.cur = pri
	}
	if n > t.boostLeft {
		t.boostLeft = n
	}
}

// consumeBoostQuantum burns one quantum of boost; at zero the priority
// returns to base.
func (t *Thread) consumeBoostQuantum() {
	if t.boostLeft > 0 {
		t.boostLeft--
		if t.boostLeft == 0 {
			t.cur = t.Base
		}
	}
}

// startNextItem pops the next queued item, absorbing same-tag items when the
// item requests coalescing. It reports false when the queue is empty.
func (t *Thread) startNextItem() bool {
	if t.qhead == len(t.queue) {
		return false
	}
	it := t.queue[t.qhead]
	t.queue[t.qhead] = nil
	t.qhead++
	t.absorbed = 0
	cpu := it.CPU
	if it.Coalesce {
		kept := t.queue[:t.qhead]
		for _, q := range t.queue[t.qhead:] {
			if q.Tag == it.Tag {
				t.absorbed++
				cpu += it.ExtraCPU
			} else {
				kept = append(kept, q)
			}
		}
		// Zero the tail so absorbed items do not pin memory.
		for i := len(kept); i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = kept
	}
	if t.qhead == len(t.queue) {
		// Drained: rewind to the array start so the next Submit appends
		// into the existing capacity.
		t.queue = t.queue[:0]
		t.qhead = 0
	} else if t.qhead >= 64 && t.qhead*2 >= len(t.queue) {
		// A queue that never empties would otherwise slide its window
		// forward indefinitely; compact the live tail down.
		n := copy(t.queue, t.queue[t.qhead:])
		for i := n; i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = t.queue[:n]
		t.qhead = 0
	}
	t.item = it
	t.remaining = cpu
	return true
}

// Reason explains why a thread is being made ready.
type Reason int

// Enqueue reasons.
const (
	ReasonWake          Reason = iota // woken by new work
	ReasonQuantumExpire               // used up its time slice
	ReasonPreempted                   // displaced by a higher-priority wake
)

// Scheduler is a CPU scheduling policy. The CPU engine owns thread state
// transitions; the policy owns queue ordering, quanta, boosts, and
// preemption decisions.
type Scheduler interface {
	// Name identifies the policy ("nt", "rr", "svr4ia").
	Name() string
	// Enqueue makes t ready. The engine has already set t.state.
	Enqueue(t *Thread, now simclock.Time, reason Reason)
	// Dequeue removes and returns the next thread to run, or nil when no
	// thread is ready.
	Dequeue(now simclock.Time) *Thread
	// Remove withdraws a ready thread (used when an experiment retires a
	// thread mid-run).
	Remove(t *Thread)
	// Quantum reports the time slice to grant t on dispatch.
	Quantum(t *Thread) simclock.Duration
	// ShouldPreempt reports whether woken should immediately displace
	// running.
	ShouldPreempt(running, woken *Thread) bool
	// OnQuantumExpire applies end-of-slice policy (boost decay).
	OnQuantumExpire(t *Thread, now simclock.Time)
	// OnBlock applies block-time policy.
	OnBlock(t *Thread, now simclock.Time)
	// ReadyCount reports how many threads are queued (the paper's
	// "scheduler queue length" x-axis).
	ReadyCount() int
}
