package farm_test

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thinbench/internal/farm"
	"thinbench/internal/metrics"
	"thinbench/internal/simclock"
)

// shard is one session's private metrics set — the farm's lock-free
// aggregation unit.
type shard struct {
	stalls *metrics.Summary
	hist   *metrics.Histogram
	load   *metrics.Series
	dist   *metrics.Dist
}

func newShard() *shard {
	return &shard{
		stalls: &metrics.Summary{},
		hist:   metrics.NewHistogram(5, 40),
		load:   metrics.NewSeries(simclock.Second),
		dist:   &metrics.Dist{},
	}
}

func (s *shard) merge(o *shard) {
	s.stalls.Merge(o.stalls)
	s.hist.Merge(o.hist)
	s.load.Merge(o.load)
	s.dist.Merge(o.dist)
}

// simulate is a miniature session: a private discrete-event clock driving
// randomized observations into the session's shard.
func simulate(s *farm.Session) (*shard, error) {
	sh := newShard()
	for i := 0; i < 64; i++ {
		at := simclock.Time(s.Rand.UniformDuration(0, 10*simclock.Second))
		s.Clock.At(at, func(now simclock.Time) {
			v := s.Rand.Normal(60, 15)
			if v < 0 {
				v = 0
			}
			sh.stalls.Add(v)
			sh.hist.Add(v)
			sh.dist.Add(v)
			sh.load.Add(now, 1)
		})
	}
	s.Clock.Drain(1000)
	return sh, nil
}

// aggregateAll runs sessions under the given worker count and folds every
// shard into one, in session order.
func aggregateAll(t *testing.T, sessions, workers int, seed uint64) *shard {
	t.Helper()
	total := newShard()
	err := farm.Aggregate(farm.Config{Sessions: sessions, Workers: workers, Seed: seed},
		simulate,
		func(_ int, sh *shard) { total.merge(sh) })
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestDeterministicAcrossWorkerCounts is the farm's core guarantee: the
// same root seed produces bit-for-bit identical aggregated metrics whether
// sessions run on 1 worker or 8. Run under -race this also proves the
// aggregation path shares no unsynchronized state.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const sessions = 64
	ref := aggregateAll(t, sessions, 1, 1999)
	for _, workers := range []int{2, 8} {
		got := aggregateAll(t, sessions, workers, 1999)
		if got.stalls.N() != ref.stalls.N() ||
			got.stalls.Mean() != ref.stalls.Mean() ||
			got.stalls.Variance() != ref.stalls.Variance() ||
			got.stalls.Min() != ref.stalls.Min() ||
			got.stalls.Max() != ref.stalls.Max() {
			t.Fatalf("workers=%d: summary diverged from sequential reference", workers)
		}
		for i := 0; i < ref.hist.Buckets(); i++ {
			if got.hist.Count(i) != ref.hist.Count(i) {
				t.Fatalf("workers=%d: histogram bucket %d = %d, want %d",
					workers, i, got.hist.Count(i), ref.hist.Count(i))
			}
		}
		for i := 0; i < ref.load.Len(); i++ {
			if got.load.At(i) != ref.load.At(i) {
				t.Fatalf("workers=%d: series bucket %d = %v, want %v",
					workers, i, got.load.At(i), ref.load.At(i))
			}
		}
		for _, p := range []float64{1, 25, 50, 75, 99} {
			if got.dist.Percentile(p) != ref.dist.Percentile(p) {
				t.Fatalf("workers=%d: p%v diverged", workers, p)
			}
		}
	}
	// Different seeds must not collide.
	other := aggregateAll(t, sessions, 8, 2000)
	if other.stalls.Mean() == ref.stalls.Mean() && other.stalls.Variance() == ref.stalls.Variance() {
		t.Fatal("different root seeds produced identical aggregates")
	}
}

// TestManyTrulyConcurrentSessions proves the farm sustains 200+ sessions
// running simultaneously: every session blocks on a shared barrier that
// only releases once all of them are alive at once, so completion is
// impossible unless the pool really ran them concurrently.
func TestManyTrulyConcurrentSessions(t *testing.T) {
	const sessions = 224
	var barrier sync.WaitGroup
	barrier.Add(sessions)
	var peak atomic.Int64
	results, err := farm.Run(farm.Config{Sessions: sessions, Workers: sessions, Seed: 7},
		func(s *farm.Session) (uint64, error) {
			peak.Add(1)
			barrier.Done()
			barrier.Wait() // all sessions in flight at this point
			s.Clock.After(simclock.Millisecond, func(simclock.Time) {})
			s.Clock.Drain(10)
			return s.Seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != sessions {
		t.Fatalf("%d sessions started, want %d", got, sessions)
	}
	seen := map[uint64]bool{}
	for i, seed := range results {
		if seed != simclock.DeriveSeed(7, uint64(i)) {
			t.Fatalf("session %d ran with seed %d, want derived seed", i, seed)
		}
		if seen[seed] {
			t.Fatalf("duplicate session seed %d", seed)
		}
		seen[seed] = true
	}
}

// TestRunResultsInSessionOrder: slot i always holds session i's result no
// matter which worker ran it or when it finished.
func TestRunResultsInSessionOrder(t *testing.T) {
	results, err := farm.Run(farm.Config{Sessions: 100, Workers: 8, Seed: 3},
		func(s *farm.Session) (int, error) {
			// Jitter completion order.
			for i := 0; i < int(s.Seed%1000); i++ {
				runtime.Gosched()
			}
			return s.Index * s.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, r, i*i)
		}
	}
}

// TestAggregateMergesInIndexOrder: merge must observe indices 0,1,2,...
// regardless of completion order, and from a single goroutine.
func TestAggregateMergesInIndexOrder(t *testing.T) {
	var order []int
	err := farm.Aggregate(farm.Config{Sessions: 60, Workers: 6, Seed: 11},
		func(s *farm.Session) (int, error) {
			for i := 0; i < int(s.Seed%2000); i++ {
				runtime.Gosched()
			}
			return s.Index, nil
		},
		func(index int, result int) {
			if index != result {
				t.Errorf("merge index %d carries result %d", index, result)
			}
			order = append(order, index) // safe: merge is single-threaded
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 60 {
		t.Fatalf("merged %d sessions, want 60", len(order))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("merge order[%d] = %d, want %d", i, idx, i)
		}
	}
}

// TestLowestIndexedErrorWins: with several failing sessions the farm
// reports the lowest index, so errors are reproducible under any
// scheduling; healthy sessions still run and aggregate.
func TestLowestIndexedErrorWins(t *testing.T) {
	fail := map[int]bool{3: true, 40: true, 77: true}
	merged := 0
	err := farm.Aggregate(farm.Config{Sessions: 80, Workers: 8, Seed: 5},
		func(s *farm.Session) (int, error) {
			if fail[s.Index] {
				return 0, fmt.Errorf("session %d exploded", s.Index)
			}
			return s.Index, nil
		},
		func(int, int) { merged++ })
	var ferr *farm.Error
	if !errors.As(err, &ferr) {
		t.Fatalf("error %v is not a *farm.Error", err)
	}
	if ferr.Index != 3 {
		t.Fatalf("reported session %d, want lowest failing index 3", ferr.Index)
	}
	if merged != 80-len(fail) {
		t.Fatalf("merged %d healthy sessions, want %d", merged, 80-len(fail))
	}

	_, err = farm.Run(farm.Config{Sessions: 80, Workers: 8, Seed: 5},
		func(s *farm.Session) (int, error) {
			if fail[s.Index] {
				return 0, fmt.Errorf("session %d exploded", s.Index)
			}
			return s.Index, nil
		})
	if !errors.As(err, &ferr) || ferr.Index != 3 {
		t.Fatalf("Run error = %v, want farm.Error at index 3", err)
	}
}

func TestEmptyAndDegenerateConfigs(t *testing.T) {
	// Zero sessions: an explicit empty sweep — empty non-nil results, no
	// error, body never invoked.
	results, err := farm.Run(farm.Config{Sessions: 0}, func(*farm.Session) (int, error) {
		t.Error("body called for empty farm")
		return 1, nil
	})
	if err != nil || results == nil || len(results) != 0 {
		t.Fatalf("empty farm: results=%v err=%v, want empty slice and nil error", results, err)
	}
	if err := farm.Aggregate(farm.Config{Sessions: 0}, func(*farm.Session) (int, error) { return 1, nil },
		func(int, int) { t.Error("merge called for empty farm") }); err != nil {
		t.Fatal(err)
	}
	// Negative sessions: always a caller bug (inverted range), rejected
	// loudly instead of silently running nothing.
	if _, err := farm.Run(farm.Config{Sessions: -4}, func(*farm.Session) (int, error) { return 1, nil }); err == nil {
		t.Fatal("Run accepted negative session count")
	}
	if err := farm.Aggregate(farm.Config{Sessions: -4}, func(*farm.Session) (int, error) { return 1, nil },
		func(int, int) { t.Error("merge called for negative farm") }); err == nil {
		t.Fatal("Aggregate accepted negative session count")
	}
	// Workers beyond Sessions and unset Workers both work.
	for _, w := range []int{0, 1000} {
		r, err := farm.Run(farm.Config{Sessions: 3, Workers: w},
			func(s *farm.Session) (int, error) { return s.Index, nil })
		if err != nil || len(r) != 3 {
			t.Fatalf("workers=%d: results=%v err=%v", w, r, err)
		}
	}
}

// burn is a CPU-bound session body for the speedup measurement.
func burn(s *farm.Session) (float64, error) {
	sum := 0.0
	for i := 0; i < 4_000_000; i++ {
		sum += math.Sqrt(float64(i ^ int(s.Seed&0xff)))
	}
	return sum, nil
}

// TestParallelSpeedup checks the point of the farm: on a multi-core
// machine, CPU-bound sessions across the pool finish at least 2x faster
// than on one worker. Skipped on boxes without enough cores to show it.
func TestParallelSpeedup(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	if cores < 4 {
		t.Skipf("need >= 4 cores to demonstrate speedup, have %d", cores)
	}
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	const sessions = 16
	run := func(workers int) time.Duration {
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < 2; trial++ {
			start := time.Now()
			if _, err := farm.Run(farm.Config{Sessions: sessions, Workers: workers, Seed: 1}, burn); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	seq := run(1)
	par := run(cores)
	if par <= 0 {
		t.Fatal("parallel run took no time")
	}
	if ratio := float64(seq) / float64(par); ratio < 2 {
		t.Fatalf("parallel speedup %.2fx (seq=%v par=%v), want >= 2x", ratio, seq, par)
	}
}
