// Package farm is the concurrent simulation execution engine of the
// reproduction: it runs N independent simulation bodies — each with its
// own discrete-event clock, random stream, and whatever scheduler, VM,
// netsim, or protocol state the body builds — across a bounded worker
// pool, and aggregates per-body results deterministically.
//
// The unit of parallelism is a whole simulation, not a user session.
// Since the shared-server refactor, concurrent user sessions deliberately
// share one clock, one CPU, one memory pool, and one link inside a single
// server.Server so that they contend — splitting them across workers
// would destroy the contention the paper measures. What fans out across
// the farm instead is the scenario grid: one complete server instance per
// candidate user count and protocol × scheduler combination
// (server.Sweep), one experiment per worker (core.RunAllParallel), one
// capacity probe per candidate population (sizing.CapacityParallel), and
// one TCP session pipeline per connection (thinserve).
//
// Determinism is the design constraint. Each body derives its seed from
// the root seed and its index (simclock.DeriveSeed), never from which
// worker picks it up; and aggregation happens in index order on a single
// goroutine, so a run with 8 workers is bit-for-bit identical to a run
// with 1. Bodies share no mutable state — shard metrics live in the body
// and merge during ordered aggregation — so no global locks exist
// anywhere on the hot path.
package farm

import (
	"fmt"
	"runtime"
	"sync"

	"thinbench/internal/simclock"
)

// Config sizes a farm run.
type Config struct {
	// Sessions is the number of independent sessions to run.
	Sessions int
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. The worker
	// count never affects results, only wall-clock time.
	Workers int
	// Seed is the root seed; session i runs with
	// simclock.DeriveSeed(Seed, i).
	Seed uint64
}

// EffectiveWorkers resolves the pool size a run will actually use:
// Workers, defaulted to GOMAXPROCS, clamped to [1, Sessions]. The clamp
// floor means Sessions <= 0 still reports one worker; Run and Aggregate
// never start that worker — zero sessions is an explicit empty run and
// negative sessions is an error.
func (c Config) EffectiveWorkers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Sessions {
		w = c.Sessions
	}
	if w < 1 {
		w = 1
	}
	return w
}

// workerPool recycles worker goroutines across Run and Aggregate calls.
// Spawning goroutines per call costs runtime allocations (goroutine
// structs and stacks) that the runtime caches unpredictably, which showed
// up as run-to-run jitter in the speed layer's process-global allocation
// counts; parked pool workers make a warmed-up farm allocation-free to
// mobilize. Submission never blocks waiting for an idle worker — if none
// is parked a fresh one spawns — so nested farm use (a body that itself
// fans out) cannot deadlock on pool capacity.
var workerPool struct {
	mu   sync.Mutex
	idle []chan func()
}

// poolGo runs task on a parked pool worker, spawning one if none is idle.
func poolGo(task func()) {
	workerPool.mu.Lock()
	var ch chan func()
	if n := len(workerPool.idle); n > 0 {
		ch = workerPool.idle[n-1]
		workerPool.idle[n-1] = nil
		workerPool.idle = workerPool.idle[:n-1]
	}
	workerPool.mu.Unlock()
	if ch == nil {
		ch = make(chan func())
		go workerLoop(ch)
	}
	ch <- task
}

// workerLoop executes submitted tasks forever, parking between them.
func workerLoop(ch chan func()) {
	for task := range ch {
		task()
		workerPool.mu.Lock()
		workerPool.idle = append(workerPool.idle, ch)
		workerPool.mu.Unlock()
	}
}

// Session is the per-session context the farm hands to a session body: a
// stable index, a deterministically derived seed, a private random stream,
// and a private discrete-event clock. Bodies may build any further
// per-session state (schedulers, VMs, network simulators, protocol codecs)
// on top; nothing here is shared between sessions.
type Session struct {
	// Index is the session's position in [0, Sessions).
	Index int
	// Seed is DeriveSeed(root, Index); use it to seed any additional
	// per-session randomness.
	Seed uint64
	// Rand is a private generator already seeded with Seed.
	Rand *simclock.Rand
	// Clock is a private discrete-event engine at time zero.
	Clock *simclock.Engine
}

// Error reports the failure of one session. When several sessions fail,
// the farm returns the lowest-indexed failure so that the reported error
// does not depend on goroutine scheduling.
type Error struct {
	Index int
	Err   error
}

func (e *Error) Error() string {
	return fmt.Sprintf("farm: session %d: %v", e.Index, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Run executes body once per session across the worker pool and returns
// the per-session results in session-index order. Every session runs even
// if an earlier one fails; on failure the results of failed sessions are
// zero values and the returned error is the lowest-indexed session error.
//
// Zero sessions is a legal empty sweep and returns an empty, non-nil
// slice; a negative session count is always a caller bug (an inverted
// range, an uninitialized config) and fails loudly rather than silently
// running nothing.
func Run[T any](cfg Config, body func(s *Session) (T, error)) ([]T, error) {
	if cfg.Sessions < 0 {
		return nil, fmt.Errorf("farm: negative session count %d", cfg.Sessions)
	}
	if cfg.Sessions == 0 {
		return []T{}, nil
	}
	results := make([]T, cfg.Sessions)
	errs := make([]error, cfg.Sessions)

	// Sequential runs (the golden-diffed configuration) execute inline on
	// the caller's goroutine: no channels, no goroutine parking, and hence
	// no scheduling-dependent runtime allocations to jitter the speed
	// layer's counts. Results are identical either way.
	if cfg.EffectiveWorkers() == 1 {
		for i := 0; i < cfg.Sessions; i++ {
			results[i], errs[i] = runSession(cfg, i, body)
		}
		return results, firstError(errs)
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	work := func() {
		defer wg.Done()
		for i := range indices {
			// Each slot is written by exactly one goroutine, so the
			// slices need no locking.
			results[i], errs[i] = runSession(cfg, i, body)
		}
	}
	for w := 0; w < cfg.EffectiveWorkers(); w++ {
		wg.Add(1)
		poolGo(work)
	}
	for i := 0; i < cfg.Sessions; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()

	return results, firstError(errs)
}

// Aggregate executes body once per session across the worker pool and
// streams results into merge strictly in session-index order, calling
// merge on a single goroutine (the caller's). Because shards merge in
// index order regardless of completion order, aggregated metrics are
// bit-for-bit reproducible under any worker count; because merge is
// single-threaded, shard types (metrics.Summary, Histogram, Series, Dist)
// need no locks. Out-of-order completions are buffered until their turn.
//
// On session failure the farm still runs and merges every other session,
// skipping merge only for failed ones, and returns the lowest-indexed
// session error.
func Aggregate[T any](cfg Config, body func(s *Session) (T, error), merge func(index int, result T)) error {
	if cfg.Sessions < 0 {
		return fmt.Errorf("farm: negative session count %d", cfg.Sessions)
	}
	if cfg.Sessions == 0 {
		return nil
	}
	// Sequential runs execute and merge inline, in index order by
	// construction — same motivation as Run's serial path.
	if cfg.EffectiveWorkers() == 1 {
		errs := make([]error, cfg.Sessions)
		for i := 0; i < cfg.Sessions; i++ {
			r, err := runSession(cfg, i, body)
			if err != nil {
				errs[i] = err
				continue
			}
			merge(i, r)
		}
		return firstError(errs)
	}

	type done struct {
		index  int
		result T
		err    error
	}
	completions := make(chan done)

	indices := make(chan int)
	var wg sync.WaitGroup
	work := func() {
		defer wg.Done()
		for i := range indices {
			r, err := runSession(cfg, i, body)
			completions <- done{index: i, result: r, err: err}
		}
	}
	for w := 0; w < cfg.EffectiveWorkers(); w++ {
		wg.Add(1)
		poolGo(work)
	}
	poolGo(func() {
		for i := 0; i < cfg.Sessions; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
		close(completions)
	})

	// Single-threaded ordered fold: buffer completions that arrive ahead
	// of the merge cursor.
	errs := make([]error, cfg.Sessions)
	pending := make(map[int]done)
	next := 0
	for d := range completions {
		pending[d.index] = d
		for {
			d, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if d.err != nil {
				errs[d.index] = d.err
			} else {
				merge(d.index, d.result)
			}
			next++
		}
	}
	return firstError(errs)
}

// runSession builds the per-session context and invokes the body. Panics
// are deliberately not recovered: a panicking simulation is a bug and
// should crash loudly.
func runSession[T any](cfg Config, i int, body func(s *Session) (T, error)) (T, error) {
	seed := simclock.DeriveSeed(cfg.Seed, uint64(i))
	s := &Session{
		Index: i,
		Seed:  seed,
		Rand:  simclock.NewRand(seed),
		Clock: simclock.NewEngine(),
	}
	return body(s)
}

// firstError returns the lowest-indexed session error, wrapped.
func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return &Error{Index: i, Err: err}
		}
	}
	return nil
}
