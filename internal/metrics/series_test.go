package metrics

import (
	"testing"

	"thinbench/internal/simclock"
)

func TestSeriesMerge(t *testing.T) {
	whole := NewSeries(simclock.Second)
	a := NewSeries(simclock.Second)
	b := NewSeries(simclock.Second)
	// b covers a longer span than a, so Merge must extend.
	for i := 0; i < 10; i++ {
		at := simclock.Time(i) * simclock.Time(simclock.Second)
		whole.Add(at, float64(i))
		if i < 4 {
			a.Add(at, float64(i))
		} else {
			b.Add(at, float64(i))
		}
	}
	a.Merge(b)
	if a.Len() != whole.Len() {
		t.Fatalf("merged length %d, want %d", a.Len(), whole.Len())
	}
	for i := 0; i < whole.Len(); i++ {
		if a.At(i) != whole.At(i) {
			t.Fatalf("bucket %d: merged %v, want %v", i, a.At(i), whole.At(i))
		}
	}
}

func TestSeriesMergeRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched series did not panic")
		}
	}()
	NewSeries(simclock.Second).Merge(NewSeries(simclock.Millisecond))
}
