// Package metrics provides the measurement primitives used across the
// reproduction: streaming summary statistics, fixed-bucket histograms,
// time-bucketed series (for the paper's load-over-time figures), and plain
// text table rendering for CLI and experiment output.
package metrics

import (
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max statistics using
// Welford's online algorithm.
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
}

// Add folds a sample into the summary.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N reports the number of samples.
func (s *Summary) N() int64 { return s.n }

// Mean reports the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Min reports the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// Variance reports the population variance.
func (s *Summary) Variance() float64 {
	if s.n < 1 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev reports the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Sum reports mean*n, the total of all samples.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds another summary into s.
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// MergeSummaries folds a set of per-shard summaries into one, in slice
// order. Shards accumulate independently (no locks); the single-threaded
// fold afterward is what makes farm aggregation deterministic.
func MergeSummaries(shards []*Summary) *Summary {
	out := &Summary{}
	for _, s := range shards {
		if s != nil {
			out.Merge(s)
		}
	}
	return out
}

// Dist collects raw samples for exact percentile queries. Intended for
// experiment-sized sample sets (thousands), not unbounded streams.
//
// Concurrency contract: mutation (Add, Grow, Merge) is single-threaded,
// like every collector in the reproduction. Queries are split from
// mutation through a read-only sorted view: once Sort has run (explicitly,
// or lazily by the first single-threaded query), Percentile/Min/Max are
// pure reads, so a settled distribution — a merged fleet Dist handed to
// reporting code — can be queried from many goroutines at once. Querying
// an unsorted Dist concurrently is a data race exactly like mutating it.
type Dist struct {
	// samples is the append-only raw sample log, in insertion order.
	samples []float64
	// view is the sorted snapshot queries read. It is current when its
	// length matches samples (mutation only ever appends, so a length
	// match means no sample arrived since the snapshot was taken).
	view []float64
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
}

// Grow reserves capacity for n further samples, so a collector that knows
// its sample budget up front (one echo per planned interaction) avoids the
// append doubling-reallocations on the hot path.
func (d *Dist) Grow(n int) {
	if free := cap(d.samples) - len(d.samples); free >= n {
		return
	}
	s := make([]float64, len(d.samples), len(d.samples)+n)
	copy(s, d.samples)
	d.samples = s
}

// N reports the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Sort establishes the read-only sorted view queries read. Samples are
// sorted in place (no copy, so a Sort adds no allocations to a measured
// run) and the view aliases them; a later Add leaves the view intact —
// it either appends beyond the view's length or relocates the backing
// array, never rewrites the sorted prefix — and the next Sort refreshes
// it. Sorting an already-current Dist is a no-op pure read, which is what
// makes queries after Sort safe to run concurrently.
func (d *Dist) Sort() {
	if len(d.view) == len(d.samples) {
		return
	}
	sort.Float64s(d.samples)
	d.view = d.samples
}

// Percentile returns the p-th percentile (0..100) using nearest-rank.
// It returns 0 when empty. The first query after a mutation sorts (see
// Sort); on a sorted Dist it is a pure read.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.Sort()
	if p <= 0 {
		return d.view[0]
	}
	if p >= 100 {
		return d.view[len(d.view)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(d.view)))) - 1
	if rank < 0 {
		rank = 0
	}
	return d.view[rank]
}

// Mean reports the arithmetic mean of collected samples.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Min returns the smallest sample (0 when empty).
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample (0 when empty).
func (d *Dist) Max() float64 { return d.Percentile(100) }

// ToHistogram buckets every collected sample into a fresh histogram of n
// buckets each width wide. Histograms with identical bucketing merge
// across farm shards where raw Dists would grow unboundedly, so this is
// the bridge from a per-machine distribution to a fleet-level one.
func (d *Dist) ToHistogram(width float64, n int) *Histogram {
	h := NewHistogram(width, n)
	for _, v := range d.samples {
		h.Add(v)
	}
	return h
}

// Merge appends another distribution's samples into d.
func (d *Dist) Merge(o *Dist) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	d.samples = append(d.samples, o.samples...)
}

// Histogram counts samples into fixed-width buckets over [0, width*len).
// Samples beyond the last bucket are clamped into it.
type Histogram struct {
	width   float64
	counts  []int64
	sums    []float64
	totalN  int64
	totalV  float64
	clamped int64
}

// NewHistogram creates a histogram of n buckets each width wide.
func NewHistogram(width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("metrics: histogram needs positive width and bucket count")
	}
	return &Histogram{width: width, counts: make([]int64, n), sums: make([]float64, n)}
}

// Add records a sample value.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	i := int(v / h.width)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
		h.clamped++
	}
	h.counts[i]++
	h.sums[i] += v
	h.totalN++
	h.totalV += v
}

// Count reports the number of samples in bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets reports the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketLow reports the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return float64(i) * h.width }

// N reports the total number of samples.
func (h *Histogram) N() int64 { return h.totalN }

// Total reports the sum of all sample values.
func (h *Histogram) Total() float64 { return h.totalV }

// Clamped reports how many samples exceeded the histogram range.
func (h *Histogram) Clamped() int64 { return h.clamped }

// Merge folds another histogram into h. Both histograms must have the same
// bucket width and count; Merge panics otherwise, since silently mixing
// incompatible bucketings would corrupt every downstream figure. Shards
// accumulate independently during a farm run and merge single-threaded
// afterward, so no locking is ever needed.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if o.width != h.width || len(o.counts) != len(h.counts) {
		panic("metrics: merging histograms with different bucketing")
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
		h.sums[i] += o.sums[i]
	}
	h.totalN += o.totalN
	h.totalV += o.totalV
	h.clamped += o.clamped
}

// Percentile returns the p-th percentile (0..100) at bucket granularity:
// the upper edge of the bucket holding the nearest-rank sample, a
// conservative "no worse than" bound for samples within the histogram's
// range (clamped samples sit in the last bucket, so when Clamped is
// nonzero high percentiles floor at the range edge). An empty histogram
// (N == 0) is
// defined to return 0 — never an undefined or stale value — so callers
// summarizing latency must check N (or a censored-interaction count)
// before trusting a 0: a measurement window too short for any sample to
// land reads as 0 ms here, which is "no data", not "fast".
func (h *Histogram) Percentile(p float64) float64 {
	if h.totalN == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.totalN)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.totalN {
		rank = h.totalN
	}
	var run int64
	for i, c := range h.counts {
		run += c
		if run >= rank {
			return float64(i+1) * h.width
		}
	}
	return float64(len(h.counts)) * h.width
}

// CumulativeWeighted returns, for each bucket upper edge, the exact sum of
// sample values in all buckets at or below it. This is the "cumulative
// latency vs event length" transform used in the paper's Figure 2: x is an
// event-duration threshold, y is total time consumed by events no longer
// than x.
func (h *Histogram) CumulativeWeighted() []float64 {
	out := make([]float64, len(h.sums))
	var run float64
	for i, s := range h.sums {
		run += s
		out[i] = run
	}
	return out
}
