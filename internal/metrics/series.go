package metrics

import (
	"fmt"
	"strings"

	"thinbench/internal/simclock"
)

// Series accumulates a quantity into fixed-duration time buckets, the
// building block for every load-over-time figure in the paper (CPU
// utilization traces, Mbps traces).
type Series struct {
	bucket simclock.Duration
	vals   []float64
}

// NewSeries creates a series with the given bucket duration.
func NewSeries(bucket simclock.Duration) *Series {
	if bucket <= 0 {
		panic("metrics: series needs a positive bucket duration")
	}
	return &Series{bucket: bucket}
}

// Bucket reports the bucket width.
func (s *Series) Bucket() simclock.Duration { return s.bucket }

// Add accumulates amount into the bucket containing t.
func (s *Series) Add(t simclock.Time, amount float64) {
	i := int(int64(t) / int64(s.bucket))
	for len(s.vals) <= i {
		s.vals = append(s.vals, 0)
	}
	s.vals[i] += amount
}

// AddSpan spreads amount uniformly over [t, t+d), splitting it across the
// buckets the span covers. Used to attribute CPU busy intervals and packet
// transmissions to utilization buckets accurately.
func (s *Series) AddSpan(t simclock.Time, d simclock.Duration, amount float64) {
	if d <= 0 {
		s.Add(t, amount)
		return
	}
	end := t.Add(d)
	for t < end {
		bucketEnd := simclock.Time((int64(t)/int64(s.bucket) + 1) * int64(s.bucket))
		if bucketEnd > end {
			bucketEnd = end
		}
		frac := float64(bucketEnd.Sub(t)) / float64(d)
		s.Add(t, amount*frac)
		t = bucketEnd
	}
}

// Merge folds another series into s bucket-by-bucket, extending s as
// needed. Both series must share a bucket duration; Merge panics otherwise.
// Per-shard series accumulate without locks and merge single-threaded.
func (s *Series) Merge(o *Series) {
	if o == nil {
		return
	}
	if o.bucket != s.bucket {
		panic("metrics: merging series with different bucket durations")
	}
	for len(s.vals) < len(o.vals) {
		s.vals = append(s.vals, 0)
	}
	for i, v := range o.vals {
		s.vals[i] += v
	}
}

// Len reports the number of buckets with data (including zero-gaps between).
func (s *Series) Len() int { return len(s.vals) }

// At reports the accumulated value of bucket i (0 beyond the end).
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.vals) {
		return 0
	}
	return s.vals[i]
}

// Values returns a copy of all bucket values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Utilization converts each bucket's accumulated busy-duration (in
// simclock.Duration units added as float64 microseconds) into a 0..1
// utilization fraction.
func (s *Series) Utilization() []float64 {
	out := make([]float64, len(s.vals))
	for i, v := range s.vals {
		out[i] = v / float64(s.bucket)
	}
	return out
}

// Mbps converts each bucket's accumulated byte count into megabits/second.
func (s *Series) Mbps() []float64 {
	secs := s.bucket.Seconds()
	out := make([]float64, len(s.vals))
	for i, v := range s.vals {
		out[i] = v * 8 / 1e6 / secs
	}
	return out
}

// MeanOver computes the mean bucket value across buckets [from, to).
func (s *Series) MeanOver(from, to int) float64 {
	if to > len(s.vals) {
		to = len(s.vals)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return 0
	}
	var sum float64
	for _, v := range s.vals[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// Table renders rows of labeled values as fixed-width text, in the style of
// the paper's tables. Columns are right-aligned except the first.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatBytes renders a byte count with thousands separators, as the paper
// prints them (e.g. "888,239").
func FormatBytes(n int64) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}
