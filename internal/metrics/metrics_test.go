package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"thinbench/internal/simclock"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Stddev() != 2 {
		t.Fatalf("Stddev = %v, want 2", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		// Bound the inputs to a physically plausible range; Welford merge is
		// not immune to catastrophic cancellation at 1e308 scales.
		ok := func(v float64) bool {
			return !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12
		}
		var all, left, right Summary
		for _, v := range a {
			if !ok(v) {
				return true
			}
			all.Add(v)
			left.Add(v)
		}
		for _, v := range b {
			if !ok(v) {
				return true
			}
			all.Add(v)
			right.Add(v)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		closeEnough := func(x, y float64) bool {
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			return math.Abs(x-y) <= 1e-9*scale
		}
		return closeEnough(left.Mean(), all.Mean()) &&
			closeEnough(left.Variance(), all.Variance()) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistPercentiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if v := d.Percentile(50); v != 50 {
		t.Fatalf("p50 = %v, want 50", v)
	}
	if v := d.Percentile(0); v != 1 {
		t.Fatalf("p0 = %v, want 1", v)
	}
	if v := d.Percentile(100); v != 100 {
		t.Fatalf("p100 = %v, want 100", v)
	}
	if v := d.Percentile(99); v != 99 {
		t.Fatalf("p99 = %v, want 99", v)
	}
	if d.Min() != 1 || d.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.Mean() != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", d.Mean())
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Percentile(50) != 0 || d.Mean() != 0 || d.N() != 0 {
		t.Fatal("empty dist should return zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // buckets [0,10) [10,20) ... [40,50)
	h.Add(5)
	h.Add(15)
	h.Add(15)
	h.Add(999) // clamped into last bucket
	if h.Count(0) != 1 || h.Count(1) != 2 || h.Count(4) != 1 {
		t.Fatalf("bucket counts wrong: %v %v %v", h.Count(0), h.Count(1), h.Count(4))
	}
	if h.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", h.Clamped())
	}
	if h.N() != 4 {
		t.Fatalf("N = %d, want 4", h.N())
	}
	if h.Total() != 5+15+15+999 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.BucketLow(3) != 30 {
		t.Fatalf("BucketLow(3) = %v, want 30", h.BucketLow(3))
	}
	if h.Buckets() != 5 {
		t.Fatalf("Buckets = %d, want 5", h.Buckets())
	}
	// Negative samples clamp to bucket 0.
	h.Add(-3)
	if h.Count(0) != 2 {
		t.Fatal("negative sample should land in bucket 0")
	}
}

func TestHistogramCumulativeWeighted(t *testing.T) {
	h := NewHistogram(10, 3)
	h.Add(5)  // bucket 0, midpoint 5
	h.Add(15) // bucket 1, midpoint 15
	h.Add(15) // bucket 1
	cum := h.CumulativeWeighted()
	want := []float64{5, 35, 35}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum = %v, want %v", cum, want)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0,0) did not panic")
		}
	}()
	NewHistogram(0, 0)
}

func TestSeriesAddAndUtilization(t *testing.T) {
	s := NewSeries(simclock.Millisecond) // 1000us buckets
	s.Add(simclock.Time(500), 250)
	s.Add(simclock.Time(1500), 1000)
	u := s.Utilization()
	if u[0] != 0.25 || u[1] != 1.0 {
		t.Fatalf("utilization = %v, want [0.25 1]", u)
	}
	if s.At(0) != 250 || s.At(5) != 0 || s.At(-1) != 0 {
		t.Fatal("At() bounds behavior wrong")
	}
}

func TestSeriesAddSpanSplitsAcrossBuckets(t *testing.T) {
	s := NewSeries(simclock.Millisecond)
	// Span from 0.5ms to 2.5ms: covers half of bucket0, all of bucket1, half of bucket2.
	s.AddSpan(simclock.Time(500), 2*simclock.Millisecond, 2000)
	if math.Abs(s.At(0)-500) > 1e-9 || math.Abs(s.At(1)-1000) > 1e-9 || math.Abs(s.At(2)-500) > 1e-9 {
		t.Fatalf("span split = %v", s.Values()[:3])
	}
	// Total conserved.
	var sum float64
	for _, v := range s.Values() {
		sum += v
	}
	if math.Abs(sum-2000) > 1e-9 {
		t.Fatalf("span total = %v, want 2000", sum)
	}
}

func TestSeriesAddSpanProperty(t *testing.T) {
	f := func(start uint16, durMs uint8, amount uint16) bool {
		s := NewSeries(simclock.Millisecond)
		d := simclock.Duration(durMs) * simclock.Millisecond
		s.AddSpan(simclock.Time(start), d, float64(amount))
		var sum float64
		for _, v := range s.Values() {
			sum += v
		}
		return math.Abs(sum-float64(amount)) < 1e-6*math.Max(1, float64(amount))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesMbps(t *testing.T) {
	s := NewSeries(simclock.Second)
	s.Add(0, 125000) // 125 KB in 1s = 1 Mbps
	if got := s.Mbps()[0]; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Mbps = %v, want 1.0", got)
	}
}

func TestSeriesMeanOver(t *testing.T) {
	s := NewSeries(simclock.Second)
	for i := 0; i < 10; i++ {
		s.Add(simclock.Time(i)*simclock.Time(simclock.Second), float64(i))
	}
	if got := s.MeanOver(0, 10); got != 4.5 {
		t.Fatalf("MeanOver = %v, want 4.5", got)
	}
	if got := s.MeanOver(5, 100); got != 7 {
		t.Fatalf("MeanOver clamped = %v, want 7", got)
	}
	if got := s.MeanOver(8, 3); got != 0 {
		t.Fatalf("MeanOver inverted = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Process", "Typical")
	tab.AddRow("in.rshd", "204 KB")
	tab.AddRow("xterm", "372 KB")
	out := tab.String()
	if !strings.Contains(out, "in.rshd") || !strings.Contains(out, "204 KB") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Short rows pad out; long rows truncate to header width.
	tab2 := NewTable("A", "B")
	tab2.AddRow("only")
	tab2.AddRow("x", "y", "dropped")
	out2 := tab2.String()
	if strings.Contains(out2, "dropped") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0",
		999:     "999",
		1000:    "1,000",
		888239:  "888,239",
		6250888: "6,250,888",
		-5:      "-5",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	whole := NewHistogram(10, 5)
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	samples := []float64{1, 12, 33, 47, 99, 12, 0, 88}
	for i, v := range samples {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Total() != whole.Total() || a.Clamped() != whole.Clamped() {
		t.Fatalf("merged totals N=%d V=%v C=%d, want N=%d V=%v C=%d",
			a.N(), a.Total(), a.Clamped(), whole.N(), whole.Total(), whole.Clamped())
	}
	for i := 0; i < whole.Buckets(); i++ {
		if a.Count(i) != whole.Count(i) {
			t.Fatalf("bucket %d: merged %d, want %d", i, a.Count(i), whole.Count(i))
		}
	}
	cw, ww := a.CumulativeWeighted(), whole.CumulativeWeighted()
	for i := range ww {
		if cw[i] != ww[i] {
			t.Fatalf("cumulative bucket %d: merged %v, want %v", i, cw[i], ww[i])
		}
	}
}

// TestHistogramMergeRejectsMismatch: the fleet layer leans on Merge to
// combine per-shard latency counts, so silently mixing bucketings would
// corrupt every fleet percentile. Any shape mismatch must panic — a
// different width, a different bucket count, and the trap case where
// width and count differ but cover the identical range (same origin and
// extent, incompatible bucket edges).
func TestHistogramMergeRejectsMismatch(t *testing.T) {
	mustPanic := func(name string, dst, src *Histogram) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: merging mismatched histograms did not panic", name)
			}
		}()
		dst.Merge(src)
	}
	mustPanic("width mismatch", NewHistogram(10, 5), NewHistogram(5, 5))
	mustPanic("count mismatch", NewHistogram(10, 5), NewHistogram(10, 6))
	// Same [0, 50) range either way; the edges still disagree.
	mustPanic("same range, different granularity", NewHistogram(10, 5), NewHistogram(5, 10))

	// The mismatch panic must fire before any state is touched: a failed
	// merge attempt leaves the destination's counts intact.
	dst := NewHistogram(10, 5)
	dst.Add(12)
	func() {
		defer func() { recover() }()
		dst.Merge(NewHistogram(10, 50))
	}()
	if dst.N() != 1 || dst.Count(1) != 1 {
		t.Fatalf("failed merge corrupted destination: N=%d", dst.N())
	}
	// A merge in the legal direction still works afterward, clamped
	// samples included.
	src := NewHistogram(10, 5)
	src.Add(999) // clamps into the last bucket
	dst.Merge(src)
	if dst.N() != 2 || dst.Clamped() != 1 || dst.Count(4) != 1 {
		t.Fatalf("post-panic merge wrong: N=%d clamped=%d", dst.N(), dst.Clamped())
	}
}

func TestDistMerge(t *testing.T) {
	var whole, a, b Dist
	for i, v := range []float64{5, 1, 9, 3, 7, 2, 8} {
		whole.Add(v)
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	// Force a into sorted state first to check Merge resets it.
	_ = a.Percentile(50)
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v: merged %v, want %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 10) // buckets [0,10) ... [90,100)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5)
	}
	// Nearest-rank sample 50 (49.5) sits in bucket [40,50): upper edge 50.
	if v := h.Percentile(50); v != 50 {
		t.Fatalf("p50 = %v, want 50", v)
	}
	if v := h.Percentile(0); v != 10 {
		t.Fatalf("p0 = %v, want 10 (first occupied bucket's upper edge)", v)
	}
	if v := h.Percentile(100); v != 100 {
		t.Fatalf("p100 = %v, want 100", v)
	}
	if v := h.Percentile(95); v != 100 {
		t.Fatalf("p95 = %v, want 100", v)
	}
	// Clamped samples count at the last bucket's edge, never beyond it.
	h.Add(1e9)
	if v := h.Percentile(100); v != 100 {
		t.Fatalf("p100 with clamped sample = %v, want 100", v)
	}
}

// TestHistogramPercentileEmpty pins the empty-histogram contract: N == 0
// yields exactly 0 for every percentile, so an all-censored or zero-sample
// window can never leak an undefined value into a latency summary.
func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram(1, 8)
	for _, p := range []float64{0, 50, 95, 100} {
		if v := h.Percentile(p); v != 0 {
			t.Fatalf("empty histogram p%v = %v, want 0", p, v)
		}
	}
	// Merging empties stays empty and defined.
	h.Merge(NewHistogram(1, 8))
	if v := h.Percentile(95); v != 0 || h.N() != 0 {
		t.Fatalf("merged empty p95 = %v N = %d, want 0/0", v, h.N())
	}
}

func TestDistToHistogram(t *testing.T) {
	var d Dist
	for _, v := range []float64{1, 12, 33, 47, 99, 12, 0, 888} {
		d.Add(v)
	}
	h := d.ToHistogram(10, 5)
	if h.N() != int64(d.N()) {
		t.Fatalf("histogram N = %d, want %d", h.N(), d.N())
	}
	if h.Count(0) != 2 || h.Count(1) != 2 || h.Count(4) != 3 {
		t.Fatalf("bucket counts wrong: %d %d %d", h.Count(0), h.Count(1), h.Count(4))
	}
	if h.Clamped() != 2 {
		t.Fatalf("Clamped = %d, want 2 (99 and 888)", h.Clamped())
	}
	// Per-shard Dists bucketed then merged must equal the whole bucketed.
	var a, b Dist
	a.Add(1)
	a.Add(33)
	b.Add(47)
	ha, hw := a.ToHistogram(10, 5), (&Dist{}).ToHistogram(10, 5)
	hw.Merge(ha)
	hw.Merge(b.ToHistogram(10, 5))
	if hw.N() != 3 || hw.Count(3) != 1 || hw.Count(4) != 1 {
		t.Fatalf("shard-merged histogram wrong: N=%d", hw.N())
	}
}

func TestMergeSummaries(t *testing.T) {
	var whole Summary
	shards := []*Summary{{}, {}, {}}
	for i := 0; i < 300; i++ {
		v := float64(i%17) * 1.5
		whole.Add(v)
		shards[i%3].Add(v)
	}
	m := MergeSummaries(shards)
	if m.N() != whole.N() || m.Min() != whole.Min() || m.Max() != whole.Max() {
		t.Fatalf("merged N/min/max diverge: %d/%v/%v vs %d/%v/%v",
			m.N(), m.Min(), m.Max(), whole.N(), whole.Min(), whole.Max())
	}
	if d := m.Mean() - whole.Mean(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("merged mean %v, want %v", m.Mean(), whole.Mean())
	}
	if d := m.Variance() - whole.Variance(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("merged variance %v, want %v", m.Variance(), whole.Variance())
	}
}

// TestDistConcurrentQueriesAfterSort is the regression test for the old
// lazy in-place sort on the query path: a merged fleet Dist queried from
// several goroutines at once raced on sort.Float64s. After Sort, every
// query must be a pure read — the race detector (go test -race) is the
// assertion that matters here; the value checks just keep the test honest
// without it.
func TestDistConcurrentQueriesAfterSort(t *testing.T) {
	var d Dist
	shards := make([]*Dist, 4)
	for i := range shards {
		shards[i] = &Dist{}
		for k := 0; k < 500; k++ {
			shards[i].Add(float64((k*31 + i*7) % 997))
		}
		d.Merge(shards[i])
	}
	d.Sort()
	want50, want95, wantMax := d.Percentile(50), d.Percentile(95), d.Max()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if v := d.Percentile(50); v != want50 {
					t.Errorf("concurrent p50 = %v, want %v", v, want50)
					return
				}
				if v := d.Percentile(95); v != want95 {
					t.Errorf("concurrent p95 = %v, want %v", v, want95)
					return
				}
				if v := d.Max(); v != wantMax {
					t.Errorf("concurrent max = %v, want %v", v, wantMax)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDistSortSurvivesMutation pins the view semantics: a mutation after
// Sort leaves earlier query results intact, and the next query folds the
// new samples in.
func TestDistSortSurvivesMutation(t *testing.T) {
	var d Dist
	for _, v := range []float64{5, 1, 9} {
		d.Add(v)
	}
	d.Sort()
	if got := d.Max(); got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
	d.Add(20)
	if got := d.Max(); got != 20 {
		t.Fatalf("max after append = %v, want 20", got)
	}
	var o Dist
	o.Add(0.5)
	d.Merge(&o)
	if got := d.Min(); got != 0.5 {
		t.Fatalf("min after merge = %v, want 0.5", got)
	}
}
