package server

import (
	"reflect"
	"testing"

	"thinbench/internal/simclock"
)

// quick returns a short-span configuration for fast tests.
func quick() Config {
	cfg := DefaultConfig()
	cfg.Span = 3 * simclock.Second
	cfg.Seed = 42
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministic(t *testing.T) {
	for _, proto := range []string{"rdp", "x", "model"} {
		cfg := quick()
		cfg.Users = 6
		cfg.Protocol = proto
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: identical configs diverged:\n%+v\n%+v", proto, a, b)
		}
	}
}

// TestChurnZeroRateIsStatic pins the refactor's compatibility contract: a
// zero-rate churn process must degenerate to the static population
// bit-for-bit, so every pre-churn baseline stays valid.
func TestChurnZeroRateIsStatic(t *testing.T) {
	cfg := quick()
	cfg.Users = 6
	static := mustRun(t, cfg)
	cfg.Churn = Churn{RatePerSec: 0}
	if got := mustRun(t, cfg); !reflect.DeepEqual(got, static) {
		t.Fatalf("zero-rate churn diverged from static run:\n%+v\n%+v", got, static)
	}
}

func TestChurnRunDeterministic(t *testing.T) {
	cfg := quick()
	cfg.Users = 6
	cfg.Churn = Churn{RatePerSec: 0.5}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical churn configs diverged:\n%+v\n%+v", a, b)
	}
	if a.Arrivals == 0 || a.Departures == 0 {
		t.Fatalf("0.5/s churn over 3s produced no turnover: %+v", a)
	}
}

// TestArrivalsPaySessionSetup: a churned population must put more bytes on
// the contended link than the same static population — every replacement
// login pays the protocol's session-setup handshake (tab4's cost, 45 KB
// for RDP) before its first echo counts.
func TestArrivalsPaySessionSetup(t *testing.T) {
	cfg := quick()
	cfg.Users = 6
	static := mustRun(t, cfg)
	cfg.Churn = Churn{RatePerSec: 0.5}
	churned := mustRun(t, cfg)
	if churned.LinkUtilization <= static.LinkUtilization {
		t.Fatalf("churned link load %.4f not above static %.4f despite %d setup handshakes",
			churned.LinkUtilization, static.LinkUtilization, churned.Arrivals)
	}
	if churned.PeakUsers != cfg.Users {
		t.Fatalf("replacement churn peaked at %d concurrent users, want the offered %d",
			churned.PeakUsers, cfg.Users)
	}
}

// TestDepartureRelaxesMemoryPressure: on an overcommitted machine, a
// departure wave must free memory mid-run — fewer demand faults and a
// smaller resident set than the same population staying to the end.
func TestDepartureRelaxesMemoryPressure(t *testing.T) {
	base := quick()
	base.Users = 16 // past the ~13-session memory division
	base.BackgroundCPUFrac = 0
	base.InteractionsPerSec = 10
	stay := mustRun(t, base)

	half := base
	half.Sessions = make([]Lifecycle, 16)
	for i := 8; i < 16; i++ {
		half.Sessions[i].Logout = simclock.Time(base.Span / 2)
	}
	leave := mustRun(t, half)

	if !stay.Paging {
		t.Fatalf("16 sessions did not overcommit the 64 MB machine: %+v", stay)
	}
	if leave.Departures != 8 {
		t.Fatalf("%d departures, want 8", leave.Departures)
	}
	if leave.FaultsAfterLogin >= stay.FaultsAfterLogin {
		t.Fatalf("departures did not relax eviction pressure: %d faults with churn, %d static",
			leave.FaultsAfterLogin, stay.FaultsAfterLogin)
	}
	if leave.ResidentKB >= stay.ResidentKB {
		t.Fatalf("departed sessions still resident: %d KB vs %d KB static",
			leave.ResidentKB, stay.ResidentKB)
	}
}

// TestExplicitLifecyclePlan drives one arrival and one departure through
// the full admission path: setup bytes, login page-ins, typing, logout.
func TestExplicitLifecyclePlan(t *testing.T) {
	cfg := quick()
	cfg.Sessions = []Lifecycle{
		{},                                       // present throughout
		{Logout: simclock.Time(simclock.Second)}, // departs at 1s
		{Login: simclock.Time(simclock.Second)},  // arrives at 1s
		{Login: simclock.Time(cfg.Span), Logout: 0}, // dropped: arrives at span
	}
	res := mustRun(t, cfg)
	if res.Users != 2 || res.Arrivals != 1 || res.Departures != 1 {
		t.Fatalf("lifecycle accounting: users=%d arrivals=%d departures=%d, want 2/1/1",
			res.Users, res.Arrivals, res.Departures)
	}
	if res.PeakUsers != 2 {
		t.Fatalf("peak %d, want 2 (the arrival's handshake lands after the departure)", res.PeakUsers)
	}
	if len(res.P95TimelineMs) != TimelineSlices(cfg.Span) {
		t.Fatalf("timeline has %d slices, want %d", len(res.P95TimelineMs), TimelineSlices(cfg.Span))
	}
	if res.P95TimelineMs[0] <= 0 {
		t.Fatal("first slice of an active run has no samples")
	}
	if res.EchoSamples != res.Interactions {
		t.Fatalf("samples %d != interactions %d: lifecycle censoring leak",
			res.EchoSamples, res.Interactions)
	}
}

// TestLogoutMidHandshakeAborts: a session whose logout fires before its
// setup handshake completes must never attach — the connection died.
func TestLogoutMidHandshakeAborts(t *testing.T) {
	cfg := quick()
	cfg.Sessions = []Lifecycle{
		{},
		{Login: simclock.Time(simclock.Second), Logout: simclock.Time(simclock.Second + simclock.Millisecond)},
	}
	res := mustRun(t, cfg) // RDP setup is 45 KB: far more than 1 ms of link time
	if res.Arrivals != 0 || res.Departures != 0 {
		t.Fatalf("aborted handshake still counted: arrivals=%d departures=%d",
			res.Arrivals, res.Departures)
	}
	if res.PeakUsers != 1 {
		t.Fatalf("aborted session attached anyway: peak %d", res.PeakUsers)
	}
}

// TestSharedClockReplayWorkerInvariant is the multi-user replay
// determinism proof: many users share one clock inside each server, whole
// servers fan out across the farm, and the same seed must produce
// bit-for-bit identical event interleavings — hence identical results — at
// any worker count.
func TestSharedClockReplayWorkerInvariant(t *testing.T) {
	base := quick()
	base.Span = 2 * simclock.Second
	run := func(workers int) []Scenario {
		grid, err := Grid(base, []string{"rdp", "x"}, []string{"rr", "nt"}, []int{1, 4, 8}, workers, 7)
		if err != nil {
			t.Fatal(err)
		}
		return grid
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from sequential grid", workers)
		}
	}
}

func TestLatencyDegradesWithUsers(t *testing.T) {
	counts := []int{1, 2, 4, 8, 12, 16, 20}
	var prevMean, prevP95 float64
	for i, n := range counts {
		cfg := DefaultConfig()
		cfg.Users = n
		cfg.Seed = 1999
		res := mustRun(t, cfg)
		// Epsilon absorbs sub-10µs jitter between adjacent small counts.
		const eps = 0.01
		if i > 0 && res.EchoMeanMs+eps < prevMean {
			t.Fatalf("mean latency improved with more users: %d users %.3fms after %.3fms",
				n, res.EchoMeanMs, prevMean)
		}
		if i > 0 && res.EchoP95Ms+eps < prevP95 {
			t.Fatalf("p95 latency improved with more users: %d users %.3fms after %.3fms",
				n, res.EchoP95Ms, prevP95)
		}
		prevMean, prevP95 = res.EchoMeanMs, res.EchoP95Ms
	}
	if prevMean < 100 {
		t.Fatalf("20 users on a 64MB box should be far past perception, mean=%.1fms", prevMean)
	}
}

func TestPagingFeedsBackIntoLatency(t *testing.T) {
	over := quick()
	over.Users = 16 // (65536-18432)/3552 ≈ 13 sessions fit
	// Keep CPU demand well under saturation so the memory axis is isolated.
	over.BackgroundCPUFrac = 0
	over.InteractionsPerSec = 10
	crowded := mustRun(t, over)
	ample := over
	ample.PhysicalKB = 512 * 1024
	roomy := mustRun(t, ample)

	if !crowded.Paging || crowded.FaultsAfterLogin == 0 {
		t.Fatalf("overcommitted population did not page: %+v", crowded)
	}
	if roomy.Paging {
		t.Fatalf("ample memory paged anyway: %+v", roomy)
	}
	if crowded.EchoP95Ms < 10*roomy.EchoP95Ms {
		t.Fatalf("paging feedback too weak: crowded p95 %.1fms vs roomy %.1fms",
			crowded.EchoP95Ms, roomy.EchoP95Ms)
	}
	if crowded.PageInMs <= 0 {
		t.Fatal("paging population reported zero page-in time")
	}
}

func TestSVR4ClassProtectsInteractiveWork(t *testing.T) {
	cfg := quick()
	cfg.Users = 6
	cfg.BackgroundCPUFrac = 0.12 // heavy non-interactive competition
	rr := mustRun(t, cfg)
	cfg.Scheduler = "svr4ia"
	ia := mustRun(t, cfg)
	if ia.EchoP95Ms >= rr.EchoP95Ms {
		t.Fatalf("interactive class did not help: svr4ia p95 %.2fms vs rr %.2fms",
			ia.EchoP95Ms, rr.EchoP95Ms)
	}
}

func TestSharedLinkCarriesAllSessions(t *testing.T) {
	cfg := quick()
	cfg.Users = 1
	one := mustRun(t, cfg)
	cfg.Users = 10
	ten := mustRun(t, cfg)
	if ten.LinkUtilization < 5*one.LinkUtilization {
		t.Fatalf("link load did not scale with users: %f -> %f",
			one.LinkUtilization, ten.LinkUtilization)
	}
	if ten.LinkUtilization > 1.0 {
		t.Fatalf("implausible link utilization %f", ten.LinkUtilization)
	}
}

func TestCensoringCoversEveryInteraction(t *testing.T) {
	cfg := quick()
	cfg.Users = 24 // far past every limit: most echoes never complete
	res := mustRun(t, cfg)
	if res.EchoSamples != res.Interactions {
		t.Fatalf("samples %d != interactions %d: censoring leak",
			res.EchoSamples, res.Interactions)
	}
	if res.Censored == 0 {
		t.Fatal("a 24-user overload should censor some interactions")
	}
}

func TestModelProtocolMatchesPipelineShape(t *testing.T) {
	cfg := quick()
	cfg.Users = 4
	cfg.Protocol = ""
	res := mustRun(t, cfg)
	if res.Protocol != "model" {
		t.Fatalf("protocol name = %q, want model", res.Protocol)
	}
	if res.EchoSamples == 0 || res.EchoMeanMs <= 0 {
		t.Fatalf("model pipeline produced no latency: %+v", res)
	}
}

// TestEmptyGridIsExplicitNoOp pins the empty-sweep contract: an empty
// configuration list, or a grid with any empty axis, returns an empty
// non-nil slice and no error instead of falling into a zero-session farm
// run.
func TestEmptyGridIsExplicitNoOp(t *testing.T) {
	res, err := Sweep(nil, 4, 7)
	if err != nil || res == nil || len(res) != 0 {
		t.Fatalf("empty sweep: results=%v err=%v, want empty slice and nil error", res, err)
	}
	base := quick()
	for _, axes := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		protos := []string{"rdp"}[:axes[0]]
		scheds := []string{"rr"}[:axes[1]]
		users := []int{1}[:axes[2]]
		grid, err := Grid(base, protos, scheds, users, 4, 7)
		if err != nil || grid == nil || len(grid) != 0 {
			t.Fatalf("grid axes %v: scenarios=%v err=%v, want empty slice and nil error",
				axes, grid, err)
		}
	}
}

// TestEchoHistogramMatchesScalars: the mergeable histogram form must agree
// with Result's scalar summary — same sample count, and bucket-granular
// percentiles bounding the exact ones from above by at most one bucket.
func TestEchoHistogramMatchesScalars(t *testing.T) {
	cfg := quick()
	cfg.Users = 6
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := srv.EchoHistogram(1, 4096)
	if h.N() != res.EchoSamples {
		t.Fatalf("histogram N = %d, want %d echo samples", h.N(), res.EchoSamples)
	}
	for _, p := range []float64{50, 95} {
		exact := res.EchoP50Ms
		if p == 95 {
			exact = res.EchoP95Ms
		}
		got := h.Percentile(p)
		if got < exact || got > exact+1 {
			t.Fatalf("histogram p%v = %v, want within one 1ms bucket above exact %v", p, got, exact)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := quick()
	cfg.Protocol = "telnet"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = quick()
	cfg.Scheduler = "cfs"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	cfg = quick()
	cfg.Users = 0
	if res := mustRun(t, cfg); res.Users != 1 {
		t.Fatalf("zero users clamped to %d, want 1", res.Users)
	}
}
