package server

import (
	"testing"

	"thinbench/internal/display"
	"thinbench/internal/schedule"
	"thinbench/internal/simclock"
)

// BenchmarkEchoPath measures the steady-state echo pipeline and nothing
// else: a contended rdp server is built and warmed outside the timer, and
// each iteration injects one keystroke per user and drains the engine
// through the full path — input encode, link transfer, scheduler
// dispatch, echo encode, client apply. The allocation report is the
// pipeline's regression canary and must read 0 allocs/op (CI asserts it):
// pooled echo ops, scratch encoders, payload-carrying events, and shared
// delivery callbacks leave nothing to allocate per interaction, so any
// nonzero count means a closure or scratch buffer crept back onto the hot
// path.
func BenchmarkEchoPath(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Users = 4
	cfg.Protocol = "rdp"
	cfg.Scheduler = "rr"
	cfg.Seed = 7
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	period := simclock.Duration(1e6 / cfg.InteractionsPerSec)
	for _, u := range srv.users {
		u.keyEv[0] = display.KeyEvent{Down: true, Code: uint16(30 + u.idx%26)}
	}
	step := func() {
		for _, u := range srv.users {
			srv.keystroke(u, srv.eng.Now(), u.keyEv[:])
		}
		srv.eng.RunFor(period)
	}
	// Warm every pool to its high-water mark — echo ops, work items,
	// engine events, calendar buckets, encoder scratch, the sample logs'
	// first growth doublings — so the measured loop sees steady state.
	for i := 0; i < 200; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkLoginStorm measures session churn end to end: the office-day
// profile compiled over a small population, so every run pays the full
// arrival pipeline — handshake bytes on the contended link, login
// page-ins, process creation, codec setup, departure teardown — with the
// session pool recycling wiring across episodes. Unlike the echo path
// this is not expected to reach zero (each fresh server allocates its
// substrate), but the report ratchets the per-login cost the same way
// BENCH_speed ratchets allocs/event.
func BenchmarkLoginStorm(b *testing.B) {
	prof, ok := schedule.Builtin("officeday")
	if !ok {
		b.Fatal("builtin officeday profile missing")
	}
	cfg := DefaultConfig()
	cfg.Users = 24
	cfg.Protocol = "rdp"
	cfg.Scheduler = "rr"
	cfg.Schedule = &prof
	cfg.Span = 10 * simclock.Second
	cfg.Seed = 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
