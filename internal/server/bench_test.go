package server

import (
	"testing"

	"thinbench/internal/simclock"
)

// BenchmarkEchoPath measures the zero-alloc echo pipeline end to end: a
// small contended rdp server simulated for a couple of seconds, covering
// keystroke encode, link transfer, scheduler dispatch, echo encode, and
// client apply. The allocation report is the pipeline's regression canary:
// pooled echo ops, scratch encoders, and shared delivery callbacks keep
// the steady-state per-event allocation count near zero, so a jump here
// means a closure or scratch buffer crept back onto the hot path.
func BenchmarkEchoPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Users = 4
		cfg.Protocol = "rdp"
		cfg.Scheduler = "rr"
		cfg.Span = 2 * simclock.Second
		cfg.Seed = 7
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
