// Package server composes the reproduction's simulation layers into one
// shared machine — the configuration the paper actually studies. N
// concurrent user sessions run inside a single discrete-event engine and
// contend on:
//
//   - one CPU under a pluggable scheduling policy (the paper's NT/TSE
//     scheduler, the round-robin Linux model, or the SVR4 interactive
//     class of Evans et al.);
//   - one physical memory pool: every session's §5.1.1 process set is
//     resident in a shared vm.Manager, and when the population overcommits
//     physical memory the global clock evicts working sets, so the next
//     interaction pays page-in latency (the §5.2 pathology, now emerging
//     from load rather than staged);
//   - one shared network link carrying every session's protocol traffic,
//     so display bytes queue behind other users' display bytes exactly as
//     on the paper's 10 Mbps segment.
//
// The population is dynamic: each session has a Lifecycle. Sessions
// present from time zero are the static population every earlier
// experiment measured; a session that arrives mid-run pays its protocol's
// session-setup bytes on the contended link (tab4's handshake costs) and
// its login page-ins on the shared memory before its first echo counts,
// and a session that departs frees its memory and retires its threads, so
// the survivors' eviction pressure relaxes. Config.Churn generates a
// deterministic seed-derived memoryless arrival/departure process;
// Config.Schedule compiles a time-varying arrival profile (login storms,
// lunch dips, shift changes — see internal/schedule) over the same seats;
// Config.Sessions accepts an explicit plan (the fleet layer routes
// failover re-logins through it).
//
// Each user runs the paper's echo probe: key-repeat input events flow
// client → link → server, wake the session's application thread, which
// hands the drawn echo to a display-encoder thread, whose output is
// encoded by a real protocol codec and transmitted back over the shared
// link. User-perceived latency is the full path: input transmission, CPU
// queueing (inflated by page-in cost under memory pressure), encode
// queueing, and display transmission.
//
// Everything derives from Config.Seed via simclock.DeriveSeed, so a run is
// bit-for-bit reproducible; Sweep fans server instances out across the
// farm without breaking that guarantee.
package server

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/metrics"
	"thinbench/internal/netsim"
	"thinbench/internal/proto"
	"thinbench/internal/proto/protos"
	"thinbench/internal/sched"
	"thinbench/internal/schedule"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/vm"
)

// Config describes one shared server and its user population.
type Config struct {
	// Users is the number of sessions present from time zero.
	Users int
	// Protocol selects the remote display protocol ("rdp", "x", "lbx",
	// "vnc", "slim"). The empty string or "model" selects the size-model
	// codec: fixed InputBytes/EchoBytes messages with no per-user codec
	// state, the frugal choice for large capacity searches.
	Protocol string
	// Scheduler selects the CPU policy: "rr", "nt", or "svr4ia".
	Scheduler string

	// Churn generates a synthetic arrival/departure process over the
	// Users initial sessions: exponential stays, immediate replacement.
	// The zero value keeps the population static.
	Churn Churn
	// Schedule, when non-nil, drives the population's lifecycles from a
	// time-varying arrival profile — a 9 AM login storm, a lunch dip, a
	// shift change — compiled over Users seats across the Span. It
	// generalizes Churn (schedule.Flat is the same process) and is
	// mutually exclusive with it: New rejects a config setting both.
	Schedule *schedule.Profile
	// Sessions, when non-nil, is an explicit per-session lifecycle plan
	// and overrides Users, Churn, and Schedule entirely (the fleet layer
	// builds these to route cross-shard arrivals and failover re-logins).
	// Entries that would log in at or after Span are dropped.
	Sessions []Lifecycle

	// PhysicalKB and SystemKB size the machine: physical memory and the
	// pinned system baseline unavailable to sessions (§5.1.1).
	PhysicalKB int
	SystemKB   int
	// Link is the shared segment all sessions' traffic crosses.
	Link netsim.LinkConfig

	// Manifest is the per-session login process set; AppKB adds one
	// application process on top of the bare login.
	Manifest session.Manifest
	AppKB    int
	// WorkingSetKB is how much of the application each interaction
	// touches (a rotating window, so evicted pages fault back in).
	WorkingSetKB int

	// InteractionsPerSec is each user's input rate (the paper's repeat
	// probe runs at 20 Hz).
	InteractionsPerSec float64
	// EchoCPU and EncodeCPU are the per-interaction costs on the
	// application and display-encoder threads.
	EchoCPU   simclock.Duration
	EncodeCPU simclock.Duration
	// BackgroundCPUFrac is per-user non-interactive CPU demand
	// (compilations, macros) as a fraction of one CPU.
	BackgroundCPUFrac float64
	// BackgroundBitsPerSec is per-user steady display-channel traffic
	// beyond the echo (animations, tickers), offered to the shared link.
	BackgroundBitsPerSec float64

	// InputBytes and EchoBytes size the model codec's messages when
	// Protocol is "model"; SetupBytes is the model codec's session-setup
	// handshake, paid on the contended link by every mid-run arrival
	// (real protocols pay their own SetupBytes, tab4's numbers).
	InputBytes int
	EchoBytes  int
	SetupBytes int
	// LoginCPU is the compute an arrival burns creating its §5.1.1
	// process set (spawn, shell init, profile load), charged on the
	// application thread after its page-ins complete — a login storm
	// therefore steals CPU from everyone already logged in. Sessions
	// present from time zero never pay it.
	LoginCPU simclock.Duration

	// TierPlan, when non-empty, schedules machine-wide degradation-tier
	// changes (see DegradeTiers): the load shedder's decisions, compiled
	// by the fleet control walk. Entries must be in time order with tiers
	// on the ladder. Empty means full quality throughout — the exact
	// behavior of a build without degradation.
	TierPlan []TierChange

	// Span is the measurement window; Seed roots all randomness.
	Span simclock.Duration
	Seed uint64
}

// DefaultConfig is a testbed-class shared server: 64 MB of memory behind
// an 18 MB system baseline, a 10 Mbps shared segment, round-robin
// scheduling, and Linux-login sessions running a 2.8 MB application with
// the 20 Hz repeat probe.
func DefaultConfig() Config {
	return Config{
		Users:              1,
		Protocol:           "rdp",
		Scheduler:          "rr",
		PhysicalKB:         64 * 1024,
		SystemKB:           18 * 1024,
		Link:               netsim.DefaultLinkConfig(),
		Manifest:           session.LinuxManifest(),
		AppKB:              2800,
		WorkingSetKB:       64,
		InteractionsPerSec: 20,
		EchoCPU:            simclock.Millisecond,
		EncodeCPU:          1500 * simclock.Microsecond,
		BackgroundCPUFrac:  0.02,
		// An animated banner's worth of ambient display traffic per user,
		// so the shared link sees real load as the population grows.
		BackgroundBitsPerSec: 250_000,
		InputBytes:           64,
		EchoBytes:            200,
		// An X-handshake's worth of model-codec session setup (tab4 puts
		// real protocols between 642 bytes and 45 KB).
		SetupBytes: 16 * 1024,
		LoginCPU:   DefaultLoginCPU,
		Span:       10 * simclock.Second,
		Seed:       1,
	}
}

// DefaultLoginCPU is the default per-arrival login compute: a quarter
// second of process creation and shell startup, late-90s-server scale.
const DefaultLoginCPU = 250 * simclock.Millisecond

// SessionManifest is the complete per-session process set: the login
// manifest plus the AppKB application process. It is the single
// definition of "one session's memory" used by New, by committed-memory
// accounting, and by experiments quoting the §5.1.1 division.
func (c Config) SessionManifest() session.Manifest {
	man := c.Manifest
	if c.AppKB > 0 {
		man.Processes = append(man.Processes[:len(man.Processes):len(man.Processes)],
			session.ProcessSpec{Name: "app", PrivateKB: c.AppKB})
	}
	return man
}

// SessionKB is one session's compulsory memory load.
func (c Config) SessionKB() int { return c.SessionManifest().TotalKB() }

// NewPolicy builds the named scheduling policy. The boolean reports
// whether threads should be marked interactive (only the SVR4 class
// distinguishes them).
func NewPolicy(name string) (sched.Scheduler, bool, error) {
	switch name {
	case "nt":
		return sched.NewNTSched(sched.DefaultNTConfig()), false, nil
	case "svr4ia":
		return sched.NewSVR4IASched(10 * simclock.Millisecond), true, nil
	case "rr", "":
		return sched.NewRRSched(10 * simclock.Millisecond), false, nil
	default:
		return nil, false, fmt.Errorf("server: unknown scheduler %q", name)
	}
}

// DrainSpan is the tail Run allows after the measurement window so
// in-flight echoes can land; a censored interaction's age can reach
// Span + DrainSpan, which is what span-sized histogram bucketing covers.
const DrainSpan = 2 * simclock.Second

// TimelineSlice is the width of one Result.P95TimelineMs bucket: echo
// samples are grouped by completion time into one-second slices, so
// transients — an arrival storm, a departure wave, a failover re-login
// burst — show up at the second they happen instead of dissolving into
// the whole-run percentile.
const TimelineSlice = simclock.Second

// TimelineSlices reports the timeline length for a measurement window:
// one slice per TimelineSlice across the span and the drain tail.
func TimelineSlices(span simclock.Duration) int {
	n := int((span + DrainSpan + TimelineSlice - 1) / TimelineSlice)
	if n < 1 {
		n = 1
	}
	return n
}

// setupRetry is the retransmit backoff when a session-setup packet is
// dropped by the full link queue.
const setupRetry = 20 * simclock.Millisecond

// Result is the measured impact of the population on one shared server.
// Every field is a scalar or a slice of scalars, so results compare with
// reflect.DeepEqual in determinism tests and serialize directly for the
// bench trajectory.
type Result struct {
	// Users counts the sessions present from time zero; Arrivals and
	// Departures count mid-run logins and logouts, and PeakUsers is the
	// largest concurrent population the machine actually held.
	Users      int    `json:"users"`
	Arrivals   int    `json:"arrivals"`
	Departures int    `json:"departures"`
	PeakUsers  int    `json:"peak_users"`
	Protocol   string `json:"protocol"`
	Scheduler  string `json:"scheduler"`

	// Echo latency: input event to echoed display update delivered at the
	// client, over every user's every interaction. Interactions still
	// unanswered when the run ends (overload backlogs, packets lost to
	// full queues) are right-censored: they contribute a sample equal to
	// their age at run end — or at their session's logout, for a user who
	// left with echoes in flight — a lower bound on what the user
	// experienced, so saturation cannot masquerade as low latency.
	EchoSamples int64   `json:"echo_samples"`
	EchoMeanMs  float64 `json:"echo_mean_ms"`
	EchoP50Ms   float64 `json:"echo_p50_ms"`
	EchoP95Ms   float64 `json:"echo_p95_ms"`
	EchoMaxMs   float64 `json:"echo_max_ms"`
	// P95TimelineMs is the p95 echo latency of samples landing in each
	// TimelineSlice-wide slice of the run (0 for a slice with no
	// samples), the view that makes churn and failover transients
	// visible. Its length is TimelineSlices(Span).
	P95TimelineMs []float64 `json:"p95_timeline_ms"`
	// Interactions counts submitted probe events; Censored counts the
	// ones that never completed and entered as right-censored samples.
	Interactions int64 `json:"interactions"`
	Censored     int64 `json:"censored"`
	// LoginMaxMs is the slowest admission (planned login instant to first
	// keystroke possible): completed logins contribute their duration,
	// and an admission still incomplete at run end (or at its session's
	// logout) contributes its age — the login-screen wait. 0 when no
	// session arrived mid-run.
	LoginMaxMs float64 `json:"login_max_ms"`

	CPUUtilization  float64 `json:"cpu_utilization"`
	LinkUtilization float64 `json:"link_utilization"`
	LinkDrops       int64   `json:"link_drops"`
	LostInputs      int64   `json:"lost_inputs"`

	CommittedKB      int     `json:"committed_kb"`
	ResidentKB       int     `json:"resident_kb"`
	FaultsAfterLogin int64   `json:"faults_after_login"`
	PageInMs         float64 `json:"page_in_ms"`
	Paging           bool    `json:"paging"`

	// SimEvents counts discrete-event dispatches the run consumed — the
	// simulator's own work metric, and the denominator of the speed
	// layer's events-per-second and allocations-per-event numbers.
	SimEvents uint64 `json:"sim_events"`

	// SheddedFrames counts probe keystrokes the load shedder dropped
	// before they entered the pipeline (see DegradeTiers). Zero — and
	// omitted from JSON — unless the run carried a TierPlan.
	SheddedFrames int64 `json:"shedded_frames,omitempty"`
}

// Server is one composed shared machine ready to run.
type Server struct {
	cfg         Config
	plan        []Lifecycle
	man         session.Manifest
	interactive bool

	eng    *simclock.Engine
	cpu    *sched.CPU
	mem    *vm.Manager
	link   *netsim.Link
	users  []*userState
	system *vm.Process

	// Struct-of-arrays hot session state, indexed by seat (userState.idx).
	// active is true while the seat is logged in; every pipeline stage
	// checks it so a departed user's in-flight callbacks fall dead instead
	// of submitting work to retired threads. submitted records every
	// interaction's submit time and completed marks the ones whose echo
	// landed — per interaction rather than by count, because a link drop
	// leaves a hole in the otherwise-FIFO pipeline and censoring must age
	// the interaction that actually hung, not the youngest one.
	active    []bool
	wsOff     []int   // rotating working-set offset, KB
	col       []int   // echo caret position
	lost      []int64 // interactions that vanished to full link queues
	submitted [][]simclock.Time
	completed [][]bool

	// echoOps pools in-flight interaction transfers; opFree indexes the
	// recycled ones. The *Fn fields are callbacks bound once at
	// construction so the per-keystroke path never allocates a closure.
	echoOps       []*echoOp
	opFree        []int
	opDeliveredFn netsim.DeliverFunc
	echoDoneFn    func(*sched.WorkItem, simclock.Time, int)
	encodeDoneFn  func(*sched.WorkItem, simclock.Time, int)
	modelInputFn  netsim.DeliverFunc
	modelEchoFn   netsim.DeliverFunc
	// Lifecycle callbacks, bound once like the echo-path ones: arrivals,
	// departures, handshake retries, login page-ins, typing keystrokes,
	// and the two background tickers all fire through engine/link payload
	// events (AtArgs/SendArgs) carrying the seat index, so session churn
	// schedules no per-event closures.
	admitFn       func(simclock.Time, int, int)
	departFn      func(simclock.Time, int, int)
	sendSetupFn   func(simclock.Time, int, int)
	finishLoginFn netsim.DeliverFunc
	pagedInFn     func(simclock.Time, int, int)
	loginDoneFn   func(*sched.WorkItem, simclock.Time, int)
	keystrokeFn   func(simclock.Time, int, int)
	bgTickFn      func(simclock.Time, int, int)
	trafficTickFn func(simclock.Time, int, int)
	setTierFn     func(simclock.Time, int, int)

	// tier is the machine's current degradation tier (see DegradeTiers);
	// keyCount is the per-seat shed counter, allocated only when the run
	// carries a TierPlan, and shedFrames counts the keystrokes dropped.
	tier       int
	keyCount   []int
	shedFrames int64

	// cur and peak track the concurrent logged-in population.
	cur, peak            int
	arrivals, departures int
	loginMaxMs           float64

	// sessionPool parks departed sessions' reusable records (LIFO) so a
	// later arrival is admitted without reallocating its session wiring or
	// codec pair. Reuse is seat-agnostic: every session's wiring is built
	// from the same manifest, thread identity is invisible to the
	// scheduler, and parked codecs are reset to pristine, so a recycled
	// record is behavior-identical to a fresh one. See parkSession.
	sessionPool []sessionRes

	loginFaults int64
	echo        *metrics.Dist
	slices      []*metrics.Dist
	err         error
}

// sessionRes is one departed session's recyclable wiring: the detached
// session record (manifest processes and pipeline threads), the session's
// background thread if it had one, and — when the protocol endpoints
// implement proto.SessionReusable — the codec pair, reset to pristine at
// park time so reuse cannot change wire bytes.
type sessionRes struct {
	user *session.User
	bg   *sched.Thread
	psrv proto.Server
	pcli proto.Client
}

// userState is one session's private wiring on the shared substrates. The
// fields the steady-state echo loop touches on every interaction live in
// the Server's struct-of-arrays slices (active, wsOff, col, lost,
// submitted, completed), indexed by idx, so the hot path walks dense
// arrays instead of chasing per-user pointers; userState keeps the cold
// lifecycle and codec state.
type userState struct {
	*session.User
	idx int
	lc  Lifecycle
	rng simclock.Rand
	// pooledUser is a predecessor's detached session record handed over by
	// admit for attach to revive via ReattachUser.
	pooledUser *session.User
	psrv       proto.Server // nil in model mode
	pcli       proto.Client
	// psrvTape, pcliSc, and psrvVal cache the tape-encoding, scratch, and
	// validate-only interfaces of psrv/pcli (nil when the protocol lacks
	// one), so the per-keystroke path does a field load instead of a type
	// assertion.
	psrvTape proto.TapeServer
	pcliSc   proto.ScratchClient
	psrvVal  proto.InputValidator
	ws       *vm.Process
	bg       *sched.Thread
	// aborted marks a session whose logout fired before its login finished
	// (a connection dying mid-handshake): the login never completes.
	// loginDone marks that the arrival's whole admission — handshake,
	// page-ins, process creation — finished and typing began; an arrival
	// that never gets there spent its time staring at the login screen,
	// which Run counts as one censored interaction aged from the planned
	// login instant.
	aborted   bool
	loginDone bool
	goneAt    simclock.Time

	echo   metrics.Dist
	pageIn simclock.Duration
	// keyEv is the session's one-event typing-probe batch, boxed once at
	// start so the per-keystroke path hands the encoder a ready slice.
	keyEv [1]display.InputEvent

	// tape is the reused pointer-free op stream for echo updates and
	// echoText the session's precomputed caret glyph; together they keep
	// sendEcho from boxing or allocating anything per interaction. ops is
	// the materialized fallback buffer for interface-only protocols
	// (xwire, lbx) without a tape encoder. Protocol encoders consume the
	// tape and slice synchronously, never retaining them, so reuse is
	// safe.
	tape     display.OpTape
	ops      []display.Op
	echoText string
}

// echoFallbackOps rebuilds the one-op echo slice for protocols without a
// tape encoder. It lives outside the annotated hot path: the display.Op
// boxing here is the interface cost those protocols' Update API demands,
// paid only on the xwire/lbx fallback.
func (u *userState) echoFallbackOps(x, y int) []display.Op {
	u.ops = append(u.ops[:0], display.DrawText{X: x, Y: y, Text: u.echoText, Color: 0})
	return u.ops
}

// echoOp is one in-flight interaction transfer: the encoded messages of a
// keystroke (input) or its echo update (display), plus the scratch arena
// they were encoded into. Ops are pooled on the Server and addressed by
// index, so link-delivery callbacks are one shared method value carrying
// (op id, message index) instead of a fresh closure per message; the op —
// and with it the scratch the payloads alias — is recycled once every
// callback-bearing delivery has landed.
type echoOp struct {
	sc    proto.Scratch
	msgs  []proto.Message
	user  int  // seat index into Server.users
	idx   int  // interaction index into Server.submitted[user]
	sends int  // callback-bearing deliveries still in flight
	done  bool // all sends issued; recycle when sends drains to zero
	input bool // input-channel op (decode+serve) vs display op (apply+record)
}

// New composes a shared server from the configuration. It fails on an
// unknown protocol or scheduler rather than at run time. Sessions planned
// to be present from time zero are logged in here; later arrivals are
// admitted by Run as the clock reaches them.
func New(cfg Config) (*Server, error) {
	if cfg.Sessions == nil && cfg.Users < 1 {
		cfg.Users = 1
	}
	if cfg.Schedule != nil {
		if cfg.Churn.RatePerSec > 0 {
			return nil, fmt.Errorf("server: Schedule and Churn are mutually exclusive (schedule.Flat is the churn process)")
		}
		if err := cfg.Schedule.Validate(); err != nil {
			return nil, err
		}
	} else if cfg.Churn.RatePerSec > 0 {
		// The churn plan compiles through schedule.Flat; validate the
		// implied profile here so a nonsense rate (sub-millisecond mean
		// stays) errors cleanly instead of panicking in plan().
		if err := schedule.Flat(cfg.Churn.RatePerSec).Validate(); err != nil {
			return nil, err
		}
	}
	policy, interactive, err := NewPolicy(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	eng := simclock.NewEngine()
	s := &Server{
		cfg:         cfg,
		plan:        cfg.plan(),
		man:         cfg.SessionManifest(),
		interactive: interactive,
		eng:         eng,
		cpu:         sched.NewCPU(eng, policy, simclock.Second),
		mem:         vm.New(vmConfig(cfg)),
		link:        netsim.NewLink(eng, cfg.Link, simclock.Second),
		echo:        &metrics.Dist{},
	}
	s.slices = make([]*metrics.Dist, TimelineSlices(cfg.Span))
	for i := range s.slices {
		s.slices[i] = &metrics.Dist{}
	}
	// The pinned system baseline: memory no session can reclaim.
	if cfg.SystemKB > 0 {
		s.system = s.mem.NewProcess("system", cfg.SystemKB)
		s.system.Pinned = true
		s.mem.TouchAll(s.system)
	}
	initial := 0
	// One backing array holds every session's record: plans compiled from
	// a day-long schedule run to thousands of entries per machine, and a
	// struct plus a latency collector per entry was a measurable slice of
	// the simulator's total allocations.
	states := make([]userState, len(s.plan))
	s.users = make([]*userState, len(s.plan))
	for i, lc := range s.plan {
		// Seat numbers are 1-based so the zero value means "unset"; the
		// stream they name is the 0-based seat, which makes a generated
		// churn plan's initial sessions (seats 1..N, streams 0..N-1)
		// share their random streams with the static plan's sessions
		// (plan indices 0..N-1) — common random numbers between a static
		// run and the same population under churn.
		stream := uint64(i)
		if lc.Seat > 0 {
			stream = uint64(lc.Seat - 1)
		}
		u := &states[i]
		u.idx = i
		u.lc = lc
		u.rng = simclock.SeededRand(simclock.DeriveSeed(cfg.Seed, stream))
		s.users[i] = u
	}
	n := len(s.users)
	s.active = make([]bool, n)
	s.wsOff = make([]int, n)
	s.col = make([]int, n)
	s.lost = make([]int64, n)
	s.submitted = make([][]simclock.Time, n)
	s.completed = make([][]bool, n)
	s.opDeliveredFn = s.opDelivered
	s.echoDoneFn = s.echoDone
	s.encodeDoneFn = s.encodeDone
	s.modelInputFn = s.modelInput
	s.modelEchoFn = s.modelEcho
	s.admitFn = s.admitAt
	s.departFn = s.departAt
	s.sendSetupFn = s.sendSetupAt
	s.finishLoginFn = s.finishLoginAt
	s.pagedInFn = s.pagedIn
	s.loginDoneFn = s.loginDone
	s.keystrokeFn = s.keystrokeAt
	s.bgTickFn = s.bgTick
	s.trafficTickFn = s.trafficTick
	s.setTierFn = s.setTierAt
	if len(cfg.TierPlan) > 0 {
		if err := validateTierPlan(cfg.TierPlan); err != nil {
			return nil, err
		}
		s.keyCount = make([]int, n)
	}
	for _, u := range s.users {
		if u.lc.Login != 0 {
			continue
		}
		if err := s.attach(u); err != nil {
			return nil, err
		}
		initial++
	}
	if initial == 0 && realProtocol(cfg.Protocol) {
		// No session validated the protocol yet; fail now, not mid-run.
		if _, _, _, err := protos.New(cfg.Protocol); err != nil {
			return nil, err
		}
	}
	s.loginFaults = s.mem.Stats().Faults
	return s, nil
}

func realProtocol(p string) bool { return p != "" && p != "model" }

func vmConfig(cfg Config) vm.Config {
	c := vm.DefaultConfig()
	c.PhysicalKB = cfg.PhysicalKB
	return c
}

// attach logs a session into the shared substrates: manifest processes
// resident (the login page-ins), pipeline threads registered, codec state
// allocated. The caller pays any latency cost; attach only moves state.
func (s *Server) attach(u *userState) error {
	if u.pooledUser != nil {
		u.User = session.ReattachUser(s.cpu, s.mem, u.pooledUser, u.idx, s.interactive)
		u.pooledUser = nil
	} else {
		u.User = session.AttachUser(s.cpu, s.mem, s.man, u.idx, s.interactive)
	}
	u.ws = u.WorkingSet()
	if realProtocol(s.cfg.Protocol) && u.psrv == nil {
		psrv, pcli, _, err := protos.New(s.cfg.Protocol)
		if err != nil {
			return err
		}
		u.psrv, u.pcli = psrv, pcli
	}
	if u.psrv != nil {
		u.psrvTape, _ = u.psrv.(proto.TapeServer)
		u.pcliSc, _ = u.pcli.(proto.ScratchClient)
		u.psrvVal, _ = u.psrv.(proto.InputValidator)
	}
	s.active[u.idx] = true
	s.cur++
	if s.cur > s.peak {
		s.peak = s.cur
	}
	return nil
}

// Run drives every session through its lifecycle and reports the
// population's measured impact. The same configuration always produces an
// identical Result.
func (s *Server) Run() (Result, error) {
	cfg := s.cfg
	for _, u := range s.users {
		if u.lc.Login == 0 {
			// Present from the start: no setup, exactly the static model.
			s.start(u, 0)
		} else {
			s.eng.AtArgs(u.lc.Login, s.admitFn, u.idx, 0)
		}
		if u.lc.Logout > 0 {
			s.eng.AtArgs(u.lc.Logout, s.departFn, u.idx, 0)
		}
	}
	// The shedder's tier changes, scheduled after every lifecycle event so
	// a tier change at an arrival's instant sequences after the arrival.
	for _, tc := range cfg.TierPlan {
		s.eng.AtArgs(tc.At, s.setTierFn, tc.Tier, 0)
	}

	// Capture utilization at exactly the span boundary, then let
	// in-flight echoes land during a short drain tail.
	var busyAtSpan simclock.Duration
	var bytesAtSpan int64
	s.eng.At(simclock.Time(cfg.Span), func(simclock.Time) {
		busyAtSpan = s.cpu.BusyTotal()
		bytesAtSpan = s.link.SentBytes()
	})
	s.eng.RunUntil(simclock.Time(cfg.Span))
	s.eng.RunFor(DrainSpan)
	if s.err != nil {
		return Result{}, s.err
	}

	res := Result{
		Users:      initialUsers(s.plan),
		Arrivals:   s.arrivals,
		Departures: s.departures,
		PeakUsers:  s.peak,
		Protocol:   protocolName(cfg.Protocol),
		Scheduler:  cfg.Scheduler,

		CPUUtilization:  float64(busyAtSpan) / float64(cfg.Span),
		LinkUtilization: float64(bytesAtSpan*8) / (cfg.Link.RateMbps * 1e6 * cfg.Span.Seconds()),
		LinkDrops:       s.link.Drops(),

		CommittedKB:      cfg.SystemKB + s.peak*cfg.SessionKB(),
		ResidentKB:       (s.mem.TotalPages() - s.mem.FreePages()) * s.mem.Config().PageKB,
		FaultsAfterLogin: s.mem.Stats().Faults - s.loginFaults,
	}
	end := s.eng.Now()
	for _, u := range s.users {
		// Right-censor interactions still in flight: each contributes its
		// age at run end — or at logout, for a session that left with
		// echoes pending (a killed machine's users at the kill instant).
		uend := end
		if u.goneAt > 0 {
			uend = u.goneAt
		}
		for i, at := range s.submitted[u.idx] {
			if !s.completed[u.idx][i] {
				ms := uend.Sub(at).Milliseconds()
				u.echo.Add(ms)
				s.sliceAt(uend).Add(ms)
				res.Censored++
			}
		}
		// An arrival whose admission never completed — handshake drowned
		// on the link, login starved on a saturated CPU — is a user who
		// waited at the login screen the whole time. That is the worst
		// latency there is, so it enters as one censored interaction aged
		// from the planned login; otherwise a machine too overloaded to
		// even admit its arrivals would read as lightly loaded.
		if u.lc.Login > 0 && !u.loginDone {
			ms := uend.Sub(u.lc.Login).Milliseconds()
			u.echo.Add(ms)
			s.sliceAt(uend).Add(ms)
			res.Interactions++
			res.Censored++
			if ms > s.loginMaxMs {
				s.loginMaxMs = ms
			}
		}
		res.Interactions += int64(len(s.submitted[u.idx]))
		res.LostInputs += s.lost[u.idx]
		res.PageInMs += u.pageIn.Milliseconds()
		s.echo.Merge(&u.echo)
	}
	res.LoginMaxMs = s.loginMaxMs
	res.SheddedFrames = s.shedFrames
	res.Paging = res.FaultsAfterLogin > 0
	res.EchoSamples = int64(s.echo.N())
	res.EchoMeanMs = s.echo.Mean()
	res.EchoP50Ms = s.echo.Percentile(50)
	res.EchoP95Ms = s.echo.Percentile(95)
	res.EchoMaxMs = s.echo.Max()
	res.P95TimelineMs = make([]float64, len(s.slices))
	for i, d := range s.slices {
		res.P95TimelineMs[i] = d.Percentile(95)
	}
	res.SimEvents = s.eng.Fired()
	return res, nil
}

// start begins a logged-in session's interactive life at now: the typing
// probe until its logout (or the span), plus its background CPU and
// display-traffic load.
func (s *Server) start(u *userState, now simclock.Time) {
	if !s.active[u.idx] {
		return // logged out while the login work was still queued
	}
	u.loginDone = true
	if u.lc.Login > 0 {
		if ms := now.Sub(u.lc.Login).Milliseconds(); ms > s.loginMaxMs {
			s.loginMaxMs = ms
		}
	}
	cfg := s.cfg
	period := simclock.Duration(1e6 / cfg.InteractionsPerSec)
	// Stagger users by a seed-derived phase so the population doesn't
	// interact in lockstep bursts.
	phase := u.rng.UniformDuration(0, period)
	end := simclock.Time(cfg.Span)
	if u.lc.Logout > 0 && u.lc.Logout < end {
		end = u.lc.Logout
	}
	if typingSpan := end.Sub(now); typingSpan > 0 {
		// The typing probe's sample count is known up front; size the
		// interaction log and the latency collector once instead of
		// letting append reallocate them throughout the run.
		expected := int(cfg.InteractionsPerSec*typingSpan.Seconds()) + 2
		if sub := s.submitted[u.idx]; cap(sub)-len(sub) < expected {
			grown := make([]simclock.Time, len(sub), len(sub)+expected)
			copy(grown, sub)
			s.submitted[u.idx] = grown
			comp := s.completed[u.idx]
			done := make([]bool, len(comp), len(comp)+expected)
			copy(done, comp)
			s.completed[u.idx] = done
		}
		u.echo.Grow(expected)
		// The probe is per-keystroke (no input coalescing, so every
		// interaction yields one latency sample) and every keystroke is
		// the same key-repeat event, so the whole typing trace reduces to
		// one boxed event and a payload-carrying engine event per
		// keystroke — the same times, in the same creation order, that
		// TypingTrace+DriveTrace scheduled, without materializing either.
		u.keyEv[0] = display.KeyEvent{Down: true, Code: uint16(30 + u.idx%26)}
		shift := simclock.Duration(now) + phase
		for at := simclock.Time(period); at <= simclock.Time(typingSpan); at = at.Add(period) {
			s.eng.AtArgs(at.Add(shift), s.keystrokeFn, u.idx, 0)
		}
	}

	if cfg.BackgroundCPUFrac > 0 {
		if u.bg != nil {
			s.cpu.ReuseThread(u.bg, 4)
		} else {
			u.bg = s.cpu.NewThread(fmt.Sprintf("u%d-bg", u.idx), 4)
		}
		bgPhase := u.rng.UniformDuration(0, 100*simclock.Millisecond)
		s.eng.AtArgs(now.Add(bgPhase), s.bgTickFn, u.idx, 0)
	}
	if cfg.BackgroundBitsPerSec > 0 {
		trPhase := u.rng.UniformDuration(0, 50*simclock.Millisecond)
		s.eng.AtArgs(now.Add(trPhase), s.trafficTickFn, u.idx, 0)
	}
}

// bgTick is one 100 ms slice of a session's background CPU load. The
// ticker self-reschedules until the seat logs out: a departed seat's last
// pending tick fires as a no-op and does not re-arm, exactly the event
// sequence the cancelled Every ticker produced.
func (s *Server) bgTick(now simclock.Time, a, _ int) {
	if !s.active[a] {
		return
	}
	it := s.cpu.Acquire()
	it.Tag = "background"
	it.CPU = simclock.Duration(s.cfg.BackgroundCPUFrac * 100_000)
	s.cpu.Submit(s.users[a].bg, it)
	s.eng.AtArgs(now.Add(100*simclock.Millisecond), s.bgTickFn, a, 0)
}

// trafficTick offers one 50 ms tick of steady display traffic
// (animations, tickers), packetized at the MTU; like bgTick it self-arms
// until the seat logs out.
func (s *Server) trafficTick(now simclock.Time, a, _ int) {
	if !s.active[a] {
		return
	}
	bits := s.cfg.BackgroundBitsPerSec
	if s.tier > 0 {
		bits *= DegradeTiers[s.tier].TrafficFrac
	}
	for rem := int(bits / 8 / 20); rem > 0; rem -= netsim.EthernetMTU {
		pkt := rem
		if pkt > netsim.EthernetMTU {
			pkt = netsim.EthernetMTU
		}
		s.link.Send(pkt+netsim.TCPIPHeaderBytes, nil)
	}
	s.eng.AtArgs(now.Add(50*simclock.Millisecond), s.trafficTickFn, a, 0)
}

// keystrokeAt is the typing probe's payload-carrying keystroke event.
// Keystrokes are pre-scheduled at start, so the shedder drops them here —
// at fire time, against the tier in force now — rather than rescheduling
// anything, keeping event creation order identical at every tier.
func (s *Server) keystrokeAt(now simclock.Time, a, _ int) {
	if s.shedKeystroke(a) {
		return
	}
	u := s.users[a]
	s.keystroke(u, now, u.keyEv[:])
}

// admitAt, departAt, and sendSetupAt adapt the lifecycle transitions to
// payload-carrying engine events; finishLoginAt and pagedIn are the
// link-delivery and page-in-complete forms, and loginDone chains the
// login's CPU work into start. Each is bound once at construction.
func (s *Server) admitAt(now simclock.Time, a, _ int)   { s.admit(s.users[a], now) }
func (s *Server) departAt(now simclock.Time, a, _ int)  { s.depart(s.users[a], now) }
func (s *Server) sendSetupAt(_ simclock.Time, a, b int) { s.sendSetup(s.users[a], b) }
func (s *Server) finishLoginAt(now simclock.Time, a, _ int) {
	s.finishLogin(s.users[a], now)
}
func (s *Server) loginDone(it *sched.WorkItem, at simclock.Time, _ int) {
	s.start(s.users[it.A], at)
}

// admit begins a mid-run arrival: the session's protocol handshake
// crosses the contended link, then its login pages the manifest in, and
// only then does the typing probe start — an arrival on a loaded machine
// queues behind everyone else's traffic for its own setup.
func (s *Server) admit(u *userState, now simclock.Time) {
	if u.aborted {
		return
	}
	setup := s.cfg.SetupBytes
	if n := len(s.sessionPool); n > 0 {
		// A predecessor's wiring: the session record and background thread
		// always; the codec pair only when the protocol parked one (reset
		// to pristine at park time, so wire bytes are identical to a fresh
		// pair's).
		r := s.sessionPool[n-1]
		s.sessionPool[n-1] = sessionRes{}
		s.sessionPool = s.sessionPool[:n-1]
		u.pooledUser, u.bg = r.user, r.bg
		u.psrv, u.pcli = r.psrv, r.pcli
	}
	if realProtocol(s.cfg.Protocol) {
		if u.psrv == nil {
			psrv, pcli, _, err := protos.New(s.cfg.Protocol)
			if err != nil {
				if s.err == nil {
					s.err = err
				}
				return
			}
			u.psrv, u.pcli = psrv, pcli
		}
		setup = u.psrv.SetupBytes()
	}
	s.sendSetup(u, setup)
}

// sendSetup streams the session-setup handshake over the shared link,
// packetized at the MTU. A packet rejected by the full queue is
// retransmitted (with the remainder) after a backoff, as the transport
// would; the last byte's delivery completes the login.
func (s *Server) sendSetup(u *userState, rem int) {
	if u.aborted {
		return
	}
	if rem <= 0 {
		s.finishLogin(u, s.eng.Now())
		return
	}
	for rem > 0 {
		pkt := rem
		if pkt > netsim.EthernetMTU {
			pkt = netsim.EthernetMTU
		}
		var ok bool
		if rem == pkt {
			// Last packet: its delivery completes the login, via the shared
			// payload callback rather than a per-handshake closure.
			ok = s.link.SendArgs(pkt+netsim.TCPIPHeaderBytes, s.finishLoginFn, u.idx, 0)
		} else {
			ok = s.link.Send(pkt+netsim.TCPIPHeaderBytes, nil)
		}
		if !ok {
			// The drop shows in LinkDrops; the retransmit below means the
			// handshake is delayed, not lost, so LostInputs stays a count
			// of interactions that actually vanished.
			s.eng.AtArgs(s.eng.Now().Add(setupRetry), s.sendSetupFn, u.idx, rem)
			return
		}
		rem -= pkt
	}
}

// finishLogin makes the arrival resident and pays its login page-ins
// before the first interaction. The full-manifest page-in is disk time,
// not compute: the arriving session blocks on the swap device while the
// CPU stays schedulable for everyone else — but on an overcommitted
// machine the login's TouchAll has already evicted survivors' working
// sets, so their next keystrokes pay real fault latency (the §5.2
// pathology, triggered by an arrival instead of a streaming job).
func (s *Server) finishLogin(u *userState, now simclock.Time) {
	if u.aborted {
		return
	}
	before := s.mem.Stats().Faults
	if err := s.attach(u); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	faults := s.mem.Stats().Faults - before
	s.loginFaults += faults
	s.arrivals++
	u.pageIn += s.mem.FaultCost(int(faults))
	s.eng.AtArgs(s.eng.Now().Add(s.mem.FaultCost(int(faults))), s.pagedInFn, u.idx, 0)
}

// pagedIn fires when an arrival's login page-ins complete and queues its
// process-creation compute. Process creation is compute, not I/O: the new
// session's spawn work queues on the shared CPU with everyone else's
// echoes.
func (s *Server) pagedIn(_ simclock.Time, a, _ int) {
	u := s.users[a]
	if !s.active[u.idx] {
		return // logged out while paging in
	}
	it := s.cpu.Acquire()
	it.Tag = "login"
	it.CPU = s.cfg.LoginCPU
	it.A = u.idx
	it.OnDone = s.loginDoneFn
	s.cpu.Submit(u.App, it)
}

// depart logs a session out: recurring work stops, both pipeline threads
// and the background thread retire, and the manifest's memory returns to
// the free pool, relaxing the survivors' eviction pressure at this
// instant. Interactions still in flight are censored at this time when
// the run ends.
func (s *Server) depart(u *userState, now simclock.Time) {
	if u.goneAt > 0 {
		return
	}
	u.goneAt = now
	if !s.active[u.idx] {
		// Still mid-handshake: the connection dies and the login never
		// completes.
		u.aborted = true
		return
	}
	s.active[u.idx] = false
	s.departures++
	s.cur--
	if u.bg != nil {
		s.cpu.Retire(u.bg)
	}
	session.DetachUser(s.cpu, s.mem, u.User)
	s.parkSession(u)
}

// parkSession saves a departed session's reusable wiring for a later
// arrival: the detached session record and background thread always; the
// codec pair only when both endpoints implement proto.SessionReusable, in
// which case they are reset to pristine here so a reused pair's wire bytes
// cannot differ from a fresh one's.
func (s *Server) parkSession(u *userState) {
	r := sessionRes{user: u.User, bg: u.bg}
	if ps, ok := u.psrv.(proto.SessionReusable); ok {
		if pc, ok := u.pcli.(proto.SessionReusable); ok {
			ps.ResetSession()
			pc.ResetSession()
			r.psrv, r.pcli = u.psrv, u.pcli
		}
	}
	s.sessionPool = append(s.sessionPool, r)
}

// EchoHistogram buckets every echo-latency sample Run collected
// (milliseconds, right-censored samples included) into a histogram of n
// buckets each widthMs wide. Result keeps only scalar percentiles so it
// stays cheaply comparable; the histogram is the mergeable form a fleet
// layer needs to compute percentiles across many servers, since
// percentiles of separate machines cannot be combined after the fact.
func (s *Server) EchoHistogram(widthMs float64, n int) *metrics.Histogram {
	return s.echo.ToHistogram(widthMs, n)
}

// SliceHistograms is the mergeable form of Result.P95TimelineMs: one
// histogram per TimelineSlice of the run, each bucketed like
// EchoHistogram, so a fleet layer can merge per-machine timelines into a
// fleet-level one before taking per-slice percentiles.
func (s *Server) SliceHistograms(widthMs float64, n int) []*metrics.Histogram {
	out := make([]*metrics.Histogram, len(s.slices))
	for i, d := range s.slices {
		out[i] = d.ToHistogram(widthMs, n)
	}
	return out
}

// sliceAt is the timeline slice holding samples that land at t.
func (s *Server) sliceAt(t simclock.Time) *metrics.Dist {
	i := int(simclock.Duration(t) / TimelineSlice)
	if i >= len(s.slices) {
		i = len(s.slices) - 1
	}
	if i < 0 {
		i = 0
	}
	return s.slices[i]
}

func protocolName(p string) string {
	if p == "" {
		return "model"
	}
	return p
}

// record lands one completed echo: the user's latency sample and its
// timeline slice. A sample for a user who already departed falls dead —
// there is no client left to deliver to.
func (s *Server) record(u *userState, idx int, now simclock.Time) {
	if !s.active[u.idx] {
		return
	}
	ms := now.Sub(s.submitted[u.idx][idx]).Milliseconds()
	u.echo.Add(ms)
	s.sliceAt(now).Add(ms)
	s.completed[u.idx][idx] = true
}

// acquireOp checks an echoOp out of the pool, keeping its scratch arena.
//
//thinlint:hotpath
func (s *Server) acquireOp(user, idx int, input bool) (*echoOp, int) {
	var id int
	if n := len(s.opFree); n > 0 {
		id = s.opFree[n-1]
		s.opFree = s.opFree[:n-1]
	} else {
		s.echoOps = append(s.echoOps, &echoOp{}) //thinlint:allow hotpath.alloc pool growth: once per high-water-mark op, amortized to zero in steady state
		id = len(s.echoOps) - 1
	}
	op := s.echoOps[id]
	op.user, op.idx, op.input = user, idx, input
	op.sends, op.done = 0, false
	return op, id
}

// finishOp marks an op's send loop complete. Link deliveries never fire
// synchronously inside Send (transmission takes nonzero time), so by the
// time any callback runs the op is fully formed; an op whose
// callback-bearing sends were all dropped recycles immediately.
//
//thinlint:hotpath
func (s *Server) finishOp(id int) {
	op := s.echoOps[id]
	op.done = true
	if op.sends == 0 {
		s.releaseOp(id)
	}
}

// releaseOp recycles an op, retaining its scratch so the next interaction
// encodes into already-owned memory.
//
//thinlint:hotpath
func (s *Server) releaseOp(id int) {
	op := s.echoOps[id]
	op.msgs = nil
	s.opFree = append(s.opFree, id)
}

// opDelivered is the shared link-delivery callback for every echoOp
// message: a is the op id, b the message index. It replaces the per-send
// closures the echo path used to allocate.
//
//thinlint:hotpath
func (s *Server) opDelivered(now simclock.Time, a, b int) {
	op := s.echoOps[a]
	op.sends--
	u := s.users[op.user]
	m := op.msgs[b]
	if op.input {
		// Input ops carry a callback only on the final message: check the
		// round-trip (the decoded events themselves are discarded — the
		// interaction is already identified by the op), then run the
		// server side of the interaction.
		var err error
		if u.psrvVal != nil {
			_, err = u.psrvVal.ValidateInput(m)
		} else {
			_, err = u.psrv.DecodeInput(m)
		}
		if err != nil && s.err == nil {
			s.err = fmt.Errorf("server: user %d input decode: %w", u.idx, err) //thinlint:allow hotpath first-error capture: runs at most once per simulation
		}
		idx := op.idx
		if op.done && op.sends == 0 {
			s.releaseOp(a)
		}
		s.serveInput(u, idx)
		return
	}
	if s.active[op.user] {
		if err := u.pcli.Apply(m); err != nil && s.err == nil {
			s.err = fmt.Errorf("server: user %d display apply: %w", u.idx, err) //thinlint:allow hotpath first-error capture: runs at most once per simulation
		}
		if b == len(op.msgs)-1 {
			s.record(u, op.idx, now)
		}
	}
	if op.done && op.sends == 0 {
		s.releaseOp(a)
	}
}

// modelInput and modelEcho are the model codec's delivery callbacks: no
// payloads to decode or apply, so the (seat, interaction) payload alone
// carries the interaction through.
func (s *Server) modelInput(_ simclock.Time, user, idx int)  { s.serveInput(s.users[user], idx) }
func (s *Server) modelEcho(now simclock.Time, user, idx int) { s.record(s.users[user], idx, now) }

// keystroke runs one interaction through the full contended pipeline.
//
//thinlint:hotpath
func (s *Server) keystroke(u *userState, at simclock.Time, events []display.InputEvent) {
	if !s.active[u.idx] {
		return
	}
	idx := len(s.submitted[u.idx])
	s.submitted[u.idx] = append(s.submitted[u.idx], at)
	s.completed[u.idx] = append(s.completed[u.idx], false)
	if u.pcli == nil {
		if !s.link.SendArgs(s.cfg.InputBytes+netsim.TCPIPHeaderBytes, s.modelInputFn, u.idx, idx) {
			s.lost[u.idx]++
		}
		return
	}
	op, id := s.acquireOp(u.idx, idx, true)
	if u.pcliSc != nil {
		op.msgs = u.pcliSc.EncodeInputScratch(events, &op.sc)
	} else {
		op.msgs = u.pcli.EncodeInput(events)
	}
	for i, m := range op.msgs {
		ok := false
		if i == len(op.msgs)-1 {
			op.sends++
			ok = s.link.SendArgs(m.Size()+netsim.TCPIPHeaderBytes, s.opDeliveredFn, id, i)
			if !ok {
				op.sends--
			}
		} else {
			ok = s.link.Send(m.Size()+netsim.TCPIPHeaderBytes, nil)
		}
		if !ok {
			// The drop shows in LinkDrops; the interaction is gone.
			s.lost[u.idx]++
			break
		}
	}
	s.finishOp(id)
}

// serveInput is the server side of an interaction: touch the session's
// working set (paying page-in cost under memory pressure), run the
// application echo, then the display encode, then transmit the update.
//
//thinlint:hotpath
func (s *Server) serveInput(u *userState, idx int) {
	if !s.active[u.idx] {
		return
	}
	cost := s.cfg.EchoCPU
	if u.ws != nil && s.cfg.WorkingSetKB > 0 {
		wsKB := s.mem.Config().PageKB * u.ws.Pages()
		faults := s.mem.TouchSpan(u.ws, s.wsOff[u.idx], s.cfg.WorkingSetKB)
		s.wsOff[u.idx] = (s.wsOff[u.idx] + s.cfg.WorkingSetKB) % wsKB
		if faults > 0 {
			d := s.mem.FaultCost(faults)
			u.pageIn += d
			cost += d
		}
	}
	it := s.cpu.Acquire()
	it.Tag = "echo"
	it.CPU = cost
	it.A, it.B = u.idx, idx
	it.OnDone = s.echoDoneFn
	s.cpu.Submit(u.App, it)
}

// echoDone chains the completed application echo into the display encode;
// the (seat, interaction) payload rides the work items so one shared
// method value replaces the nested per-interaction closures.
//
//thinlint:hotpath
func (s *Server) echoDone(it *sched.WorkItem, _ simclock.Time, _ int) {
	enc := s.cpu.Acquire()
	enc.Tag = "encode"
	enc.CPU = s.cfg.EncodeCPU
	if s.tier > 0 {
		enc.CPU = simclock.Duration(float64(enc.CPU) * DegradeTiers[s.tier].EncodeFrac)
	}
	enc.A, enc.B = it.A, it.B
	enc.OnDone = s.encodeDoneFn
	s.cpu.Submit(s.users[it.A].Encoder, enc)
}

// encodeDone transmits the encoded echo when the display encode completes.
//
//thinlint:hotpath
func (s *Server) encodeDone(it *sched.WorkItem, _ simclock.Time, _ int) {
	s.sendEcho(s.users[it.A], it.B)
}

// sendEcho encodes the drawn echo and transmits it; the latency sample is
// taken when the last display message reaches the client.
//
//thinlint:hotpath
func (s *Server) sendEcho(u *userState, idx int) {
	if !s.active[u.idx] {
		return
	}
	if u.psrv == nil {
		if !s.link.SendArgs(s.cfg.EchoBytes+netsim.TCPIPHeaderBytes, s.modelEchoFn, u.idx, idx) {
			s.lost[u.idx]++
		}
		return
	}
	if u.echoText == "" {
		u.echoText = string(rune('a' + u.idx%26))
	}
	col := s.col[u.idx]
	x, y := 56+(col%70)*display.GlyphW, 80+(col/70%24)*16
	s.col[u.idx] = col + 1
	op, id := s.acquireOp(u.idx, idx, false)
	if u.psrvTape != nil {
		u.tape.Reset()
		u.tape.Text(x, y, u.echoText, 0)
		op.msgs = u.psrvTape.UpdateTape(&u.tape, 0, u.tape.Len(), &op.sc)
	} else {
		op.msgs = u.psrv.Update(u.echoFallbackOps(x, y))
	}
	for i, m := range op.msgs {
		op.sends++
		if !s.link.SendArgs(m.Size()+netsim.TCPIPHeaderBytes, s.opDeliveredFn, id, i) {
			op.sends--
			s.lost[u.idx]++
			break
		}
	}
	s.finishOp(id)
}
