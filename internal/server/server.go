// Package server composes the reproduction's simulation layers into one
// shared machine — the configuration the paper actually studies. N
// concurrent user sessions run inside a single discrete-event engine and
// contend on:
//
//   - one CPU under a pluggable scheduling policy (the paper's NT/TSE
//     scheduler, the round-robin Linux model, or the SVR4 interactive
//     class of Evans et al.);
//   - one physical memory pool: every session's §5.1.1 process set is
//     resident in a shared vm.Manager, and when the population overcommits
//     physical memory the global clock evicts working sets, so the next
//     interaction pays page-in latency (the §5.2 pathology, now emerging
//     from load rather than staged);
//   - one shared network link carrying every session's protocol traffic,
//     so display bytes queue behind other users' display bytes exactly as
//     on the paper's 10 Mbps segment.
//
// Each user runs the paper's echo probe: key-repeat input events flow
// client → link → server, wake the session's application thread, which
// hands the drawn echo to a display-encoder thread, whose output is
// encoded by a real protocol codec and transmitted back over the shared
// link. User-perceived latency is the full path: input transmission, CPU
// queueing (inflated by page-in cost under memory pressure), encode
// queueing, and display transmission.
//
// Everything derives from Config.Seed via simclock.DeriveSeed, so a run is
// bit-for-bit reproducible; Sweep fans server instances out across the
// farm without breaking that guarantee.
package server

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/metrics"
	"thinbench/internal/netsim"
	"thinbench/internal/proto"
	"thinbench/internal/proto/protos"
	"thinbench/internal/sched"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/vm"
	"thinbench/internal/workload"
)

// Config describes one shared server and its user population.
type Config struct {
	// Users is the number of concurrent sessions.
	Users int
	// Protocol selects the remote display protocol ("rdp", "x", "lbx",
	// "vnc", "slim"). The empty string or "model" selects the size-model
	// codec: fixed InputBytes/EchoBytes messages with no per-user codec
	// state, the frugal choice for large capacity searches.
	Protocol string
	// Scheduler selects the CPU policy: "rr", "nt", or "svr4ia".
	Scheduler string

	// PhysicalKB and SystemKB size the machine: physical memory and the
	// pinned system baseline unavailable to sessions (§5.1.1).
	PhysicalKB int
	SystemKB   int
	// Link is the shared segment all sessions' traffic crosses.
	Link netsim.LinkConfig

	// Manifest is the per-session login process set; AppKB adds one
	// application process on top of the bare login.
	Manifest session.Manifest
	AppKB    int
	// WorkingSetKB is how much of the application each interaction
	// touches (a rotating window, so evicted pages fault back in).
	WorkingSetKB int

	// InteractionsPerSec is each user's input rate (the paper's repeat
	// probe runs at 20 Hz).
	InteractionsPerSec float64
	// EchoCPU and EncodeCPU are the per-interaction costs on the
	// application and display-encoder threads.
	EchoCPU   simclock.Duration
	EncodeCPU simclock.Duration
	// BackgroundCPUFrac is per-user non-interactive CPU demand
	// (compilations, macros) as a fraction of one CPU.
	BackgroundCPUFrac float64
	// BackgroundBitsPerSec is per-user steady display-channel traffic
	// beyond the echo (animations, tickers), offered to the shared link.
	BackgroundBitsPerSec float64

	// InputBytes and EchoBytes size the model codec's messages when
	// Protocol is "model".
	InputBytes int
	EchoBytes  int

	// Span is the measurement window; Seed roots all randomness.
	Span simclock.Duration
	Seed uint64
}

// DefaultConfig is a testbed-class shared server: 64 MB of memory behind
// an 18 MB system baseline, a 10 Mbps shared segment, round-robin
// scheduling, and Linux-login sessions running a 2.8 MB application with
// the 20 Hz repeat probe.
func DefaultConfig() Config {
	return Config{
		Users:              1,
		Protocol:           "rdp",
		Scheduler:          "rr",
		PhysicalKB:         64 * 1024,
		SystemKB:           18 * 1024,
		Link:               netsim.DefaultLinkConfig(),
		Manifest:           session.LinuxManifest(),
		AppKB:              2800,
		WorkingSetKB:       64,
		InteractionsPerSec: 20,
		EchoCPU:            simclock.Millisecond,
		EncodeCPU:          1500 * simclock.Microsecond,
		BackgroundCPUFrac:  0.02,
		// An animated banner's worth of ambient display traffic per user,
		// so the shared link sees real load as the population grows.
		BackgroundBitsPerSec: 250_000,
		InputBytes:           64,
		EchoBytes:            200,
		Span:                 10 * simclock.Second,
		Seed:                 1,
	}
}

// SessionManifest is the complete per-session process set: the login
// manifest plus the AppKB application process. It is the single
// definition of "one session's memory" used by New, by committed-memory
// accounting, and by experiments quoting the §5.1.1 division.
func (c Config) SessionManifest() session.Manifest {
	man := c.Manifest
	if c.AppKB > 0 {
		man.Processes = append(man.Processes[:len(man.Processes):len(man.Processes)],
			session.ProcessSpec{Name: "app", PrivateKB: c.AppKB})
	}
	return man
}

// SessionKB is one session's compulsory memory load.
func (c Config) SessionKB() int { return c.SessionManifest().TotalKB() }

// NewPolicy builds the named scheduling policy. The boolean reports
// whether threads should be marked interactive (only the SVR4 class
// distinguishes them).
func NewPolicy(name string) (sched.Scheduler, bool, error) {
	switch name {
	case "nt":
		return sched.NewNTSched(sched.DefaultNTConfig()), false, nil
	case "svr4ia":
		return sched.NewSVR4IASched(10 * simclock.Millisecond), true, nil
	case "rr", "":
		return sched.NewRRSched(10 * simclock.Millisecond), false, nil
	default:
		return nil, false, fmt.Errorf("server: unknown scheduler %q", name)
	}
}

// Result is the measured impact of the population on one shared server.
// All fields are scalars so results compare with == in determinism tests
// and serialize directly for the bench trajectory.
type Result struct {
	Users     int    `json:"users"`
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"`

	// Echo latency: input event to echoed display update delivered at the
	// client, over every user's every interaction. Interactions still
	// unanswered when the run ends (overload backlogs, packets lost to
	// full queues) are right-censored: they contribute a sample equal to
	// their age at run end, a lower bound on what the user experienced,
	// so saturation cannot masquerade as low latency.
	EchoSamples int64   `json:"echo_samples"`
	EchoMeanMs  float64 `json:"echo_mean_ms"`
	EchoP50Ms   float64 `json:"echo_p50_ms"`
	EchoP95Ms   float64 `json:"echo_p95_ms"`
	EchoMaxMs   float64 `json:"echo_max_ms"`
	// Interactions counts submitted probe events; Censored counts the
	// ones that never completed and entered as right-censored samples.
	Interactions int64 `json:"interactions"`
	Censored     int64 `json:"censored"`

	CPUUtilization  float64 `json:"cpu_utilization"`
	LinkUtilization float64 `json:"link_utilization"`
	LinkDrops       int64   `json:"link_drops"`
	LostInputs      int64   `json:"lost_inputs"`

	CommittedKB      int     `json:"committed_kb"`
	ResidentKB       int     `json:"resident_kb"`
	FaultsAfterLogin int64   `json:"faults_after_login"`
	PageInMs         float64 `json:"page_in_ms"`
	Paging           bool    `json:"paging"`
}

// Server is one composed shared machine ready to run.
type Server struct {
	cfg    Config
	eng    *simclock.Engine
	cpu    *sched.CPU
	mem    *vm.Manager
	link   *netsim.Link
	users  []*userState
	system *vm.Process

	loginFaults int64
	echo        *metrics.Dist
	err         error
}

// userState is one session's private wiring on the shared substrates.
type userState struct {
	*session.User
	rng   *simclock.Rand
	psrv  proto.Server // nil in model mode
	pcli  proto.Client
	ws    *vm.Process
	wsOff int // rotating working-set offset, KB
	col   int // echo caret position
	lost  int64
	echo  *metrics.Dist
	// submitted records every interaction's submit time and completed
	// marks the ones whose echo landed. Completion is tracked per
	// interaction rather than by count: a link drop leaves a hole in the
	// otherwise-FIFO pipeline, and censoring must age the interaction
	// that actually hung, not the youngest one.
	submitted []simclock.Time
	completed []bool
	pageIn    simclock.Duration
}

// New composes a shared server from the configuration. It fails on an
// unknown protocol or scheduler rather than at run time.
func New(cfg Config) (*Server, error) {
	if cfg.Users < 1 {
		cfg.Users = 1
	}
	policy, interactive, err := NewPolicy(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	eng := simclock.NewEngine()
	s := &Server{
		cfg:  cfg,
		eng:  eng,
		cpu:  sched.NewCPU(eng, policy, simclock.Second),
		mem:  vm.New(vmConfig(cfg)),
		link: netsim.NewLink(eng, cfg.Link, simclock.Second),
		echo: &metrics.Dist{},
	}
	// The pinned system baseline: memory no session can reclaim.
	if cfg.SystemKB > 0 {
		s.system = s.mem.NewProcess("system", cfg.SystemKB)
		s.system.Pinned = true
		s.mem.TouchAll(s.system)
	}
	man := cfg.SessionManifest()
	for i := 0; i < cfg.Users; i++ {
		u := &userState{
			User: session.AttachUser(s.cpu, s.mem, man, i, interactive),
			rng:  simclock.NewRand(simclock.DeriveSeed(cfg.Seed, uint64(i))),
			echo: &metrics.Dist{},
		}
		u.ws = u.WorkingSet()
		if cfg.Protocol != "" && cfg.Protocol != "model" {
			psrv, pcli, _, err := protos.New(cfg.Protocol)
			if err != nil {
				return nil, err
			}
			u.psrv, u.pcli = psrv, pcli
		}
		s.users = append(s.users, u)
	}
	s.loginFaults = s.mem.Stats().Faults
	return s, nil
}

func vmConfig(cfg Config) vm.Config {
	c := vm.DefaultConfig()
	c.PhysicalKB = cfg.PhysicalKB
	return c
}

// Run drives every session for the configured span and reports the
// population's measured impact. The same configuration always produces an
// identical Result.
func (s *Server) Run() (Result, error) {
	cfg := s.cfg
	period := simclock.Duration(1e6 / cfg.InteractionsPerSec)
	for _, u := range s.users {
		u := u
		// Stagger users by a seed-derived phase so the population doesn't
		// interact in lockstep bursts.
		tr := workload.TypingTrace(workload.TypingConfig{
			Rate: cfg.InteractionsPerSec,
			Span: cfg.Span,
			Code: uint16(30 + u.Index%26),
		})
		tr.Shift(u.rng.UniformDuration(0, period))
		// The probe is per-keystroke: no input coalescing, so every
		// interaction yields one latency sample.
		workload.DriveTrace(s.eng, tr, workload.ReplayOpts{},
			func(now simclock.Time, events []display.InputEvent) { s.keystroke(u, now, events) },
			nil)

		if cfg.BackgroundCPUFrac > 0 {
			bg := s.cpu.NewThread(fmt.Sprintf("u%d-bg", u.Index), 4)
			slice := simclock.Duration(cfg.BackgroundCPUFrac * 100_000)
			phase := u.rng.UniformDuration(0, 100*simclock.Millisecond)
			s.eng.Every(simclock.Time(phase), 100*simclock.Millisecond, func(simclock.Time) {
				s.cpu.Submit(bg, &sched.WorkItem{Tag: "background", CPU: slice})
			})
		}
		if cfg.BackgroundBitsPerSec > 0 {
			// Steady display traffic (animations, tickers) offered in
			// 50 ms ticks, packetized at the MTU.
			bytesPerTick := int(cfg.BackgroundBitsPerSec / 8 / 20)
			phase := u.rng.UniformDuration(0, 50*simclock.Millisecond)
			s.eng.Every(simclock.Time(phase), 50*simclock.Millisecond, func(simclock.Time) {
				for rem := bytesPerTick; rem > 0; rem -= netsim.EthernetMTU {
					pkt := rem
					if pkt > netsim.EthernetMTU {
						pkt = netsim.EthernetMTU
					}
					s.link.Send(pkt+netsim.TCPIPHeaderBytes, nil)
				}
			})
		}
	}

	// Capture utilization at exactly the span boundary, then let
	// in-flight echoes land during a short drain tail.
	var busyAtSpan simclock.Duration
	var bytesAtSpan int64
	s.eng.At(simclock.Time(cfg.Span), func(simclock.Time) {
		busyAtSpan = s.cpu.BusyTotal()
		bytesAtSpan = s.link.SentBytes()
	})
	s.eng.RunUntil(simclock.Time(cfg.Span))
	s.eng.RunFor(2 * simclock.Second)
	if s.err != nil {
		return Result{}, s.err
	}

	res := Result{
		Users:     cfg.Users,
		Protocol:  protocolName(cfg.Protocol),
		Scheduler: cfg.Scheduler,

		CPUUtilization:  float64(busyAtSpan) / float64(cfg.Span),
		LinkUtilization: float64(bytesAtSpan*8) / (cfg.Link.RateMbps * 1e6 * cfg.Span.Seconds()),
		LinkDrops:       s.link.Drops(),

		CommittedKB:      cfg.SystemKB + cfg.Users*cfg.SessionKB(),
		ResidentKB:       (s.mem.TotalPages() - s.mem.FreePages()) * s.mem.Config().PageKB,
		FaultsAfterLogin: s.mem.Stats().Faults - s.loginFaults,
	}
	end := s.eng.Now()
	for _, u := range s.users {
		// Right-censor interactions still in flight: each contributes its
		// age at run end.
		for i, at := range u.submitted {
			if !u.completed[i] {
				u.echo.Add(end.Sub(at).Milliseconds())
				res.Censored++
			}
		}
		res.Interactions += int64(len(u.submitted))
		res.LostInputs += u.lost
		res.PageInMs += u.pageIn.Milliseconds()
		s.echo.Merge(u.echo)
	}
	res.Paging = res.FaultsAfterLogin > 0
	res.EchoSamples = int64(s.echo.N())
	res.EchoMeanMs = s.echo.Mean()
	res.EchoP50Ms = s.echo.Percentile(50)
	res.EchoP95Ms = s.echo.Percentile(95)
	res.EchoMaxMs = s.echo.Max()
	return res, nil
}

// EchoHistogram buckets every echo-latency sample Run collected
// (milliseconds, right-censored samples included) into a histogram of n
// buckets each widthMs wide. Result keeps only scalar percentiles so it
// stays ==-comparable; the histogram is the mergeable form a fleet layer
// needs to compute percentiles across many servers, since percentiles of
// separate machines cannot be combined after the fact.
func (s *Server) EchoHistogram(widthMs float64, n int) *metrics.Histogram {
	return s.echo.ToHistogram(widthMs, n)
}

func protocolName(p string) string {
	if p == "" {
		return "model"
	}
	return p
}

// keystroke runs one interaction through the full contended pipeline.
func (s *Server) keystroke(u *userState, at simclock.Time, events []display.InputEvent) {
	idx := len(u.submitted)
	u.submitted = append(u.submitted, at)
	u.completed = append(u.completed, false)
	deliver := func(simclock.Time) { s.serveInput(u, idx) }
	if u.pcli == nil {
		if !s.link.Send(s.cfg.InputBytes+netsim.TCPIPHeaderBytes, deliver) {
			u.lost++
		}
		return
	}
	msgs := u.pcli.EncodeInput(events)
	for i, m := range msgs {
		m := m
		var onDelivered func(simclock.Time)
		if i == len(msgs)-1 {
			onDelivered = func(now simclock.Time) {
				if _, err := u.psrv.DecodeInput(m); err != nil && s.err == nil {
					s.err = fmt.Errorf("server: user %d input decode: %w", u.Index, err)
				}
				deliver(now)
			}
		}
		if !s.link.Send(m.Size()+netsim.TCPIPHeaderBytes, onDelivered) {
			u.lost++
			return
		}
	}
}

// serveInput is the server side of an interaction: touch the session's
// working set (paying page-in cost under memory pressure), run the
// application echo, then the display encode, then transmit the update.
func (s *Server) serveInput(u *userState, idx int) {
	cost := s.cfg.EchoCPU
	if u.ws != nil && s.cfg.WorkingSetKB > 0 {
		wsKB := s.mem.Config().PageKB * u.ws.Pages()
		faults := s.mem.TouchSpan(u.ws, u.wsOff, s.cfg.WorkingSetKB)
		u.wsOff = (u.wsOff + s.cfg.WorkingSetKB) % wsKB
		if faults > 0 {
			d := s.mem.FaultCost(faults)
			u.pageIn += d
			cost += d
		}
	}
	s.cpu.Submit(u.App, &sched.WorkItem{
		Tag: "echo", CPU: cost,
		OnDone: func(simclock.Time, int) {
			s.cpu.Submit(u.Encoder, &sched.WorkItem{
				Tag: "encode", CPU: s.cfg.EncodeCPU,
				OnDone: func(simclock.Time, int) { s.sendEcho(u, idx) },
			})
		},
	})
}

// sendEcho encodes the drawn echo and transmits it; the latency sample is
// taken when the last display message reaches the client.
func (s *Server) sendEcho(u *userState, idx int) {
	record := func(now simclock.Time) {
		u.echo.Add(now.Sub(u.submitted[idx]).Milliseconds())
		u.completed[idx] = true
	}
	if u.psrv == nil {
		if !s.link.Send(s.cfg.EchoBytes+netsim.TCPIPHeaderBytes, record) {
			u.lost++
		}
		return
	}
	ops := []display.Op{display.DrawText{
		X: 56 + (u.col%70)*display.GlyphW, Y: 80 + (u.col/70%24)*16,
		Text: string(rune('a' + u.Index%26)), Color: 0,
	}}
	u.col++
	msgs := u.psrv.Update(ops)
	for i, m := range msgs {
		m := m
		last := i == len(msgs)-1
		ok := s.link.Send(m.Size()+netsim.TCPIPHeaderBytes, func(now simclock.Time) {
			if err := u.pcli.Apply(m); err != nil && s.err == nil {
				s.err = fmt.Errorf("server: user %d display apply: %w", u.Index, err)
			}
			if last {
				record(now)
			}
		})
		if !ok {
			u.lost++
			return
		}
	}
}
