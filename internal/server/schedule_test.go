package server

import (
	"reflect"
	"strings"
	"testing"

	"thinbench/internal/schedule"
	"thinbench/internal/simclock"
)

// TestFlatScheduleEqualsChurn is the behavior-preservation property test:
// a Flat profile compiled at rate r must produce runs whose Results are
// identical — every field, every timeline slice — to the legacy
// Config.Churn process at the same rate, across rates, seeds, and
// protocols. The churn path now compiles through the schedule layer, and
// this pins the two entry points together forever.
func TestFlatScheduleEqualsChurn(t *testing.T) {
	for _, rate := range []float64{0.2, 0.5, 1.0} {
		for _, seed := range []uint64{1, 42} {
			for _, proto := range []string{"model", "rdp"} {
				cfg := quick()
				cfg.Users = 6
				cfg.Seed = seed
				cfg.Protocol = proto
				churn := cfg
				churn.Churn = Churn{RatePerSec: rate}
				sched := cfg
				flat := schedule.Flat(rate)
				sched.Schedule = &flat

				a := mustRun(t, churn)
				b := mustRun(t, sched)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("rate %v seed %d proto %s: Flat schedule diverged from Churn\nchurn    %+v\nschedule %+v",
						rate, seed, proto, a, b)
				}
			}
		}
	}
}

func TestScheduleChurnMutuallyExclusive(t *testing.T) {
	cfg := quick()
	flat := schedule.Flat(0.5)
	cfg.Schedule = &flat
	cfg.Churn = Churn{RatePerSec: 0.5}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Schedule+Churn accepted: %v", err)
	}
	cfg.Churn = Churn{}
	bad := schedule.OfficeDay()
	bad.Timeline[0].Rate = -1
	cfg.Schedule = &bad
	if _, err := New(cfg); err == nil {
		t.Fatal("malformed profile accepted by server.New")
	}
	// The churn path compiles through schedule.Flat, so a rate implying
	// sub-millisecond mean stays must error cleanly at New, not panic in
	// plan generation.
	cfg = quick()
	cfg.Churn = Churn{RatePerSec: 5000}
	if _, err := New(cfg); err == nil {
		t.Fatal("5000/s churn (200µs mean stay) accepted")
	}
}

func TestOfficeDayScheduleRuns(t *testing.T) {
	cfg := quick()
	cfg.Span = 6 * simclock.Second
	cfg.Users = 10
	day := schedule.OfficeDay()
	cfg.Schedule = &day
	res := mustRun(t, cfg)
	if res.Arrivals == 0 {
		t.Fatalf("office day produced no mid-run logins: %+v", res)
	}
	if res.EchoSamples != res.Interactions {
		t.Fatalf("samples %d != interactions %d: schedule censoring leak", res.EchoSamples, res.Interactions)
	}
	again := mustRun(t, cfg)
	if !reflect.DeepEqual(res, again) {
		t.Fatal("identical schedule configs diverged")
	}
}

// TestLifecycleEdgeCases drives the admission/departure machinery through
// its corners with explicit plans, asserting the metrics each corner must
// produce — not just the absence of a panic.
func TestLifecycleEdgeCases(t *testing.T) {
	base := quick() // rdp protocol: a 45 KB setup handshake, far over 1 ms of link time
	sec := simclock.Time(simclock.Second)
	span := simclock.Time(base.Span)
	cases := []struct {
		name     string
		sessions []Lifecycle
		check    func(t *testing.T, res Result)
	}{
		{
			// The logout beats the 45 KB handshake: the connection dies at
			// the login screen. Nothing attaches, but the wait is still an
			// (immediately censored) interaction aged login->logout — an
			// overloaded machine must not hide its failed admissions.
			name: "departure before login completes",
			sessions: []Lifecycle{
				{},
				{Login: sec, Logout: sec + simclock.Time(simclock.Millisecond)},
			},
			check: func(t *testing.T, res Result) {
				if res.Arrivals != 0 || res.Departures != 0 {
					t.Fatalf("aborted handshake counted: arrivals=%d departures=%d", res.Arrivals, res.Departures)
				}
				if res.PeakUsers != 1 {
					t.Fatalf("aborted session attached: peak %d", res.PeakUsers)
				}
				if res.Censored < 1 {
					t.Fatal("the login-screen wait was not censored")
				}
				if res.LoginMaxMs != 1 {
					t.Fatalf("login wait %v ms, want the 1 ms login->logout age", res.LoginMaxMs)
				}
			},
		},
		{
			// A zero-length stay is an empty interval: normalized away
			// before the clock moves, leaving the static user alone.
			name: "zero-length stay",
			sessions: []Lifecycle{
				{},
				{Login: sec, Logout: sec},
			},
			check: func(t *testing.T, res Result) {
				if res.Arrivals != 0 || res.Departures != 0 || res.Censored != 0 {
					t.Fatalf("empty interval left traces: %+v", res)
				}
				if res.PeakUsers != 1 || res.LoginMaxMs != 0 {
					t.Fatalf("empty interval affected the population: peak=%d login=%v",
						res.PeakUsers, res.LoginMaxMs)
				}
			},
		},
		{
			// An arrival in the final second: its handshake and page-ins
			// land inside the drain tail, so the login completes and is
			// measured, but it types for (at most) a sliver of the span.
			name: "arrival in the final second",
			sessions: []Lifecycle{
				{},
				{Login: span - simclock.Time(500*simclock.Millisecond)},
			},
			check: func(t *testing.T, res Result) {
				if res.Arrivals != 1 {
					t.Fatalf("late arrival never admitted: %+v", res)
				}
				if res.LoginMaxMs <= 0 {
					t.Fatal("late arrival's admission latency unmeasured")
				}
				if res.PeakUsers != 2 {
					t.Fatalf("peak %d, want 2", res.PeakUsers)
				}
				if res.EchoSamples != res.Interactions {
					t.Fatalf("samples %d != interactions %d", res.EchoSamples, res.Interactions)
				}
			},
		},
		{
			// Two arrivals on the same seat in one tick: a zero-gap
			// handover. Both admissions run in full (two setups, two login
			// waits), the seat's random stream is shared, and the
			// departure frees the first session's memory the instant the
			// second's handshake starts.
			name: "two arrivals on the same seat in one tick",
			sessions: []Lifecycle{
				{},
				{Login: sec, Logout: 2 * sec, Seat: 5},
				{Login: 2 * sec, Seat: 5},
			},
			check: func(t *testing.T, res Result) {
				if res.Arrivals != 2 || res.Departures != 1 {
					t.Fatalf("handover accounting: arrivals=%d departures=%d, want 2/1",
						res.Arrivals, res.Departures)
				}
				if res.PeakUsers != 2 {
					t.Fatalf("peak %d, want 2 (the seat holds one session at a time)", res.PeakUsers)
				}
				if res.LoginMaxMs <= 0 {
					t.Fatal("handover logins unmeasured")
				}
				if res.EchoSamples != res.Interactions {
					t.Fatalf("samples %d != interactions %d: handover censoring leak",
						res.EchoSamples, res.Interactions)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Sessions = tc.sessions
			res := mustRun(t, cfg)
			tc.check(t, res)
			if again := mustRun(t, cfg); !reflect.DeepEqual(res, again) {
				t.Fatal("identical configs diverged")
			}
		})
	}
}
