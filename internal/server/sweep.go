package server

import (
	"thinbench/internal/farm"
	"thinbench/internal/simclock"
)

// Sweep runs one server instance per configuration across the farm's
// worker pool and returns results in configuration order. The farm's unit
// of parallelism here is a whole server — a complete machine simulation —
// not an individual session: sessions inside each server must share one
// clock to contend, so fan-out happens across the scenario grid (candidate
// user counts, protocol × scheduler combinations) instead.
//
// Any configuration with Seed zero gets a seed derived from root and its
// grid index (simclock.DeriveSeed via the farm), never from worker
// identity, so a sweep is bit-for-bit identical at any worker count.
func Sweep(cfgs []Config, workers int, root uint64) ([]Result, error) {
	if len(cfgs) == 0 {
		// An empty grid is a legal no-op sweep, not a degenerate farm run.
		return []Result{}, nil
	}
	return farm.Run(farm.Config{Sessions: len(cfgs), Workers: workers, Seed: root},
		func(s *farm.Session) (Result, error) {
			c := cfgs[s.Index]
			if c.Seed == 0 {
				c.Seed = s.Seed
			}
			srv, err := New(c)
			if err != nil {
				return Result{}, err
			}
			return srv.Run()
		})
}

// Scenario names one protocol × scheduler combination of a contention
// grid.
type Scenario struct {
	Protocol  string `json:"protocol"`
	Scheduler string `json:"scheduler"`
	// Points is the latency-versus-users series, one Result per
	// candidate user count in ascending order.
	Points []Result `json:"points"`
}

// Grid runs the full contention scenario grid: for every protocol ×
// scheduler combination, a latency-versus-users series over the candidate
// counts. All points across all scenarios fan out through one farm pool.
//
// Every point shares one root-derived seed — common random numbers. A
// server derives user i's phase from (seed, i), so the n+1-user point
// keeps the first n users' behavior bit-identical and strictly adds one
// more: series degrade monotonically instead of wobbling with per-point
// sampling noise, and protocol/scheduler columns compare the same
// population.
func Grid(base Config, protocols, schedulers []string, users []int, workers int, root uint64) ([]Scenario, error) {
	if len(protocols) == 0 || len(schedulers) == 0 || len(users) == 0 {
		// Any empty axis empties the whole grid; return an explicit empty
		// result rather than scenarios with zero rows.
		return []Scenario{}, nil
	}
	seed := simclock.DeriveSeed(root, 0x9d1d)
	var cfgs []Config
	for _, p := range protocols {
		for _, s := range schedulers {
			for _, n := range users {
				c := base
				c.Protocol, c.Scheduler, c.Users = p, s, n
				c.Seed = seed
				cfgs = append(cfgs, c)
			}
		}
	}
	results, err := Sweep(cfgs, workers, root)
	if err != nil {
		return nil, err
	}
	var out []Scenario
	i := 0
	for _, p := range protocols {
		for _, s := range schedulers {
			sc := Scenario{Protocol: p, Scheduler: s}
			for range users {
				sc.Points = append(sc.Points, results[i])
				i++
			}
			out = append(out, sc)
		}
	}
	return out, nil
}
