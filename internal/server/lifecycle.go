package server

import (
	"thinbench/internal/simclock"
)

// Lifecycle is one session's presence on the server clock. The zero value
// is the static session every run before the churn refactor assumed:
// logged in at time zero, logged in at the end.
type Lifecycle struct {
	// Login is when the session arrives. Zero means present from the
	// start: the session is logged in before the clock moves and pays no
	// setup cost, exactly as the static model's whole population did.
	// A later login is a real arrival — it pays the protocol's
	// session-setup bytes on the contended link and the login page-ins on
	// the shared memory before its first interaction counts.
	Login simclock.Time
	// Logout is when the session departs, freeing its memory and retiring
	// its threads; interactions still in flight are right-censored at this
	// instant. Zero means the session stays for the whole run.
	Logout simclock.Time
	// Seat, when positive, names the session's random-stream identity:
	// its typing phase and background offsets derive from (Seed, Seat-1)
	// instead of the plan position. Plan generators assign stable
	// 1-based seat numbers so that a replacement keeps its slot's stream
	// no matter how many other sessions the plan holds, and so that seat
	// k's stream equals static session k-1's — common random numbers
	// both across candidate populations (what capacity bisection relies
	// on) and between a static run and the same population under churn.
	// Zero falls back to the plan position, which keeps a static plan
	// bit-identical to the pre-lifecycle model.
	Seat int
}

// Churn is the synthetic arrival/departure process of a dynamic
// population: every session's logged-in time is exponentially distributed,
// and each departure is immediately replaced by a fresh login (the next
// shift's user taking over the seat), so the offered population stays at
// Config.Users while the machine continuously pays session setup and login
// costs. All draws derive from Config.Seed, so a churned run is exactly as
// reproducible as a static one.
type Churn struct {
	// RatePerSec is each session's logout hazard per second: mean
	// logged-in time is 1/RatePerSec. Zero disables churn — the plan
	// degenerates to the static population, bit-for-bit.
	RatePerSec float64
}

// lifecycleSalt separates the churn process's random stream from every
// other consumer of Config.Seed.
const lifecycleSalt = 0x6c696665 // "life"

// plan expands the configuration's population into explicit lifecycles:
// either the caller-provided Sessions plan (normalized), or Users initial
// sessions plus the replacements the Churn process generates. The first
// Users entries of a generated plan are always the initial population in
// index order, so a zero-rate churn plan is identical to the static one.
func (c Config) plan() []Lifecycle {
	span := simclock.Time(c.Span)
	if c.Sessions != nil {
		out := make([]Lifecycle, 0, len(c.Sessions))
		for _, lc := range c.Sessions {
			if lc.Login < 0 {
				lc.Login = 0
			}
			if lc.Login >= span {
				continue // would log in after measurement ends
			}
			if lc.Logout != 0 && lc.Logout <= lc.Login {
				continue // empty interval
			}
			out = append(out, lc)
		}
		return out
	}
	users := c.Users
	if users < 1 {
		users = 1
	}
	out := make([]Lifecycle, users)
	if c.Churn.RatePerSec <= 0 {
		return out
	}
	mean := simclock.Duration(1e6 / c.Churn.RatePerSec)
	// Each seat draws its shift lengths from a seat-derived stream and
	// stamps every generated lifecycle with its seat number, so the plan
	// for N users is a prefix of the plan for N+1 and every session's
	// random stream survives the re-indexing replacements cause (common
	// random numbers across candidate populations, the property capacity
	// bisection relies on). Initial sessions occupy indices [0, users);
	// replacements append after them in (seat, generation) order.
	var replacements []Lifecycle
	for seat := 0; seat < users; seat++ {
		rng := simclock.NewRand(simclock.DeriveSeed(
			simclock.DeriveSeed(c.Seed, lifecycleSalt), uint64(seat)))
		at := simclock.Time(0)
		for gen := 0; ; gen++ {
			end := at.Add(rng.ExpDuration(mean))
			lc := Lifecycle{Login: at, Seat: seat + 1}
			if end < span {
				lc.Logout = end
			}
			if gen == 0 {
				out[seat] = lc
			} else {
				replacements = append(replacements, lc)
			}
			if lc.Logout == 0 {
				break
			}
			at = end
		}
	}
	return append(out, replacements...)
}

// initialUsers counts the sessions present from time zero.
func initialUsers(plan []Lifecycle) int {
	n := 0
	for _, lc := range plan {
		if lc.Login == 0 {
			n++
		}
	}
	return n
}
