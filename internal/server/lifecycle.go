package server

import (
	"thinbench/internal/schedule"
	"thinbench/internal/simclock"
)

// Lifecycle is one session's presence on the server clock. The zero value
// is the static session every run before the churn refactor assumed:
// logged in at time zero, logged in at the end.
type Lifecycle struct {
	// Login is when the session arrives. Zero means present from the
	// start: the session is logged in before the clock moves and pays no
	// setup cost, exactly as the static model's whole population did.
	// A later login is a real arrival — it pays the protocol's
	// session-setup bytes on the contended link and the login page-ins on
	// the shared memory before its first interaction counts.
	Login simclock.Time
	// Logout is when the session departs, freeing its memory and retiring
	// its threads; interactions still in flight are right-censored at this
	// instant. Zero means the session stays for the whole run.
	Logout simclock.Time
	// Seat, when positive, names the session's random-stream identity:
	// its typing phase and background offsets derive from (Seed, Seat-1)
	// instead of the plan position. Plan generators assign stable
	// 1-based seat numbers so that a replacement keeps its slot's stream
	// no matter how many other sessions the plan holds, and so that seat
	// k's stream equals static session k-1's — common random numbers
	// both across candidate populations (what capacity bisection relies
	// on) and between a static run and the same population under churn.
	// Zero falls back to the plan position, which keeps a static plan
	// bit-identical to the pre-lifecycle model.
	Seat int
}

// Churn is the synthetic arrival/departure process of a dynamic
// population: every session's logged-in time is exponentially distributed,
// and each departure is immediately replaced by a fresh login (the next
// shift's user taking over the seat), so the offered population stays at
// Config.Users while the machine continuously pays session setup and login
// costs. All draws derive from Config.Seed, so a churned run is exactly as
// reproducible as a static one.
//
// Churn is the memoryless special case of a schedule: the plan it
// generates is schedule.Flat's, draw for draw, which is what keeps every
// pre-schedule churn baseline bit-identical.
type Churn struct {
	// RatePerSec is each session's logout hazard per second: mean
	// logged-in time is 1/RatePerSec. Zero disables churn — the plan
	// degenerates to the static population, bit-for-bit.
	RatePerSec float64
}

// plan expands the configuration's population into explicit lifecycles:
// the caller-provided Sessions plan (normalized), the compiled Schedule
// profile, or Users initial sessions plus the replacements the Churn
// process generates. The first Users entries of a generated churn plan are
// always the initial population in index order, so a zero-rate churn plan
// is identical to the static one.
func (c Config) plan() []Lifecycle {
	span := simclock.Time(c.Span)
	if c.Sessions != nil {
		out := make([]Lifecycle, 0, len(c.Sessions))
		for _, lc := range c.Sessions {
			if lc.Login < 0 {
				lc.Login = 0
			}
			if lc.Login >= span {
				continue // would log in after measurement ends
			}
			if lc.Logout != 0 && lc.Logout <= lc.Login {
				continue // empty interval
			}
			out = append(out, lc)
		}
		return out
	}
	users := c.Users
	if users < 1 {
		users = 1
	}
	prof := c.Schedule
	if prof == nil {
		if c.Churn.RatePerSec <= 0 {
			return make([]Lifecycle, users)
		}
		p := schedule.Flat(c.Churn.RatePerSec)
		prof = &p
	}
	// The schedule compiler owns seat streams: each seat draws from a
	// (Seed, schedule.Salt, seat)-derived stream and stamps its seat
	// number on every episode, so the plan for N users is a prefix of the
	// plan for N+1 and a replacement keeps its slot's stream (common
	// random numbers across candidate populations, the property capacity
	// bisection relies on). New validated the profile, so compilation
	// cannot fail here.
	ss, err := schedule.Compile(*prof, users, c.Span, c.Seed)
	if err != nil {
		panic("server: plan on unvalidated schedule: " + err.Error())
	}
	out := make([]Lifecycle, 0, len(ss))
	for _, s := range ss {
		out = append(out, Lifecycle{Login: s.Login, Logout: s.Logout, Seat: s.Seat})
	}
	return out
}

// initialUsers counts the sessions present from time zero.
func initialUsers(plan []Lifecycle) int {
	n := 0
	for _, lc := range plan {
		if lc.Login == 0 {
			n++
		}
	}
	return n
}
