package server

import (
	"fmt"

	"thinbench/internal/simclock"
)

// Degradation tiers are the load shedder's quality ladder (§"degrade
// gracefully": when a machine cannot serve every frame at full quality,
// serving fewer frames at lower quality beats serving nobody). A tier
// trades the probe's perceived smoothness for machine headroom along the
// three per-interaction costs: echo frames (KeepEvery keeps every k-th
// keystroke's round trip and sheds the rest client-side), ambient display
// traffic (TrafficFrac scales the background ticker's bytes), and encode
// compute (EncodeFrac scales the display encoder's per-frame CPU, the
// cheaper-codec knob).
type DegradeTier struct {
	Name string
	// KeepEvery keeps one keystroke in every KeepEvery; the rest are shed
	// before entering the pipeline (the client coalesces key repeats, so a
	// shed keystroke costs nothing anywhere).
	KeepEvery int
	// TrafficFrac scales BackgroundBitsPerSec; EncodeFrac scales EncodeCPU.
	TrafficFrac float64
	EncodeFrac  float64
}

// DegradeTiers is the ladder, mildest first. Tier 0 is full quality — by
// definition a no-op, so a fleet that never degrades runs the exact event
// sequence an un-degradable one does.
var DegradeTiers = []DegradeTier{
	{Name: "full", KeepEvery: 1, TrafficFrac: 1, EncodeFrac: 1},
	{Name: "reduced", KeepEvery: 2, TrafficFrac: 0.5, EncodeFrac: 0.75},
	{Name: "minimal", KeepEvery: 4, TrafficFrac: 0.25, EncodeFrac: 0.5},
}

// TierChange schedules the machine onto a degradation tier at an instant:
// every session on it, current and future, runs at that tier until the
// next change. The shard layer's control walk emits these in time order.
type TierChange struct {
	At   simclock.Time `json:"at"`
	Tier int           `json:"tier"`
}

// validateTierPlan rejects a plan the run couldn't execute faithfully:
// tiers outside the ladder or changes out of time order (the plan is a
// schedule, not a set).
func validateTierPlan(plan []TierChange) error {
	var last simclock.Time
	for i, tc := range plan {
		if tc.Tier < 0 || tc.Tier >= len(DegradeTiers) {
			return fmt.Errorf("server: tier plan entry %d: tier %d outside ladder [0,%d]",
				i, tc.Tier, len(DegradeTiers)-1)
		}
		if tc.At < last {
			return fmt.Errorf("server: tier plan entry %d: time %v before predecessor's %v",
				i, tc.At, last)
		}
		last = tc.At
	}
	return nil
}

// setTierAt is the scheduled tier-change event (a carries the new tier).
func (s *Server) setTierAt(_ simclock.Time, a, _ int) { s.tier = a }

// shedKeystroke decides whether the probe keystroke arriving at seat a is
// shed under the current tier. The per-seat counter advances only while
// degraded, so tier 0 — the only tier uncontrolled runs ever see — takes
// the zero-cost branch and the event sequence matches a build without
// shedding entirely.
func (s *Server) shedKeystroke(a int) bool {
	if s.tier == 0 {
		return false
	}
	n := s.keyCount[a]
	s.keyCount[a] = n + 1
	if n%DegradeTiers[s.tier].KeepEvery == 0 {
		return false
	}
	s.shedFrames++
	return true
}
