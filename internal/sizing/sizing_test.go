package sizing

import (
	"testing"

	"thinbench/internal/simclock"
)

const testSpan = 10 * simclock.Second

func TestStallGrowsWithUsers(t *testing.T) {
	srv := DefaultServer()
	p := Developer()
	few := Evaluate(srv, p, 2, testSpan, 1)
	many := Evaluate(srv, p, 40, testSpan, 1)
	if many.MeanStallMs <= few.MeanStallMs {
		t.Fatalf("stall did not grow: %v -> %v", few.MeanStallMs, many.MeanStallMs)
	}
	if few.Perceptible() {
		t.Fatalf("2 developers already perceptible: %.1f ms", few.MeanStallMs)
	}
}

func TestWebBrowsersAreNetworkBound(t *testing.T) {
	// The paper's Figure 4 conclusion: ~5 animated-page users saturate
	// 10 Mbps Ethernet, long before CPU or memory matter.
	n, est, limit := Capacity(DefaultServer(), WebBrowser(), 100, testSpan, 1)
	if limit != LimitNetwork {
		t.Fatalf("web browsers limited by %s, want network", limit)
	}
	if n < 3 || n > 7 {
		t.Fatalf("capacity = %d users, paper says ~5 saturate the link", n)
	}
	if est.LinkUtilization > 0.8 {
		t.Fatalf("returned estimate already violates the link bound: %v", est.LinkUtilization)
	}
}

func TestLightAdminsAreMemoryBound(t *testing.T) {
	// Cheap interactions, tiny traffic: the 64 MB of RAM runs out first.
	n, _, limit := Capacity(DefaultServer(), LightAdmin(), 100, testSpan, 1)
	if limit != LimitMemory {
		t.Fatalf("light admins limited by %s, want memory", limit)
	}
	// (65536-18432)/4444 = 10 sessions.
	if n != 10 {
		t.Fatalf("capacity = %d, want 10 memory-bound sessions", n)
	}
}

func TestDevelopersAreCPUBound(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024 // plenty of memory
	n, est, limit := Capacity(srv, Developer(), 120, testSpan, 1)
	if limit != LimitCPU {
		t.Fatalf("developers limited by %s, want cpu", limit)
	}
	if n < 5 || n > 100 {
		t.Fatalf("implausible developer capacity %d", n)
	}
	if est.Perceptible() {
		t.Fatal("returned estimate already perceptible")
	}
}

func TestSVR4SchedulerRaisesCPUCapacity(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024
	rr, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	srv.Scheduler = "svr4ia"
	ia, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	if ia <= rr {
		t.Fatalf("interactive scheduler capacity %d not above round-robin %d", ia, rr)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	a := Evaluate(DefaultServer(), Developer(), 10, testSpan, 42)
	b := Evaluate(DefaultServer(), Developer(), 10, testSpan, 42)
	if a != b {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestZeroAndNegativeUsersClamp(t *testing.T) {
	e := Evaluate(DefaultServer(), LightAdmin(), 0, testSpan, 1)
	if e.Users != 1 {
		t.Fatalf("users clamped to %d, want 1", e.Users)
	}
	n, _, _ := Capacity(DefaultServer(), LightAdmin(), 0, testSpan, 1)
	if n < 0 {
		t.Fatal("negative capacity")
	}
}
