package sizing

import (
	"testing"

	"thinbench/internal/schedule"
	"thinbench/internal/simclock"
)

const testSpan = 10 * simclock.Second

func TestLatencyGrowsWithUsers(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024 // isolate the CPU axis
	p := Developer()
	few := Evaluate(srv, p, 2, testSpan, 1)
	many := Evaluate(srv, p, 40, testSpan, 1)
	if many.P95EchoMs <= few.P95EchoMs {
		t.Fatalf("p95 did not grow under contention: %v -> %v", few.P95EchoMs, many.P95EchoMs)
	}
	if few.P95EchoMs > srv.budget().Milliseconds() {
		t.Fatalf("2 developers already over budget: %.1f ms", few.P95EchoMs)
	}
}

func TestWebBrowsersAreNetworkBound(t *testing.T) {
	// The paper's Figure 4 conclusion: ~5 animated-page users saturate
	// 10 Mbps Ethernet, long before CPU or memory matter.
	n, est, limit := Capacity(DefaultServer(), WebBrowser(), 100, testSpan, 1)
	if limit != LimitNetwork {
		t.Fatalf("web browsers limited by %s, want network", limit)
	}
	if n < 3 || n > 7 {
		t.Fatalf("capacity = %d users, paper says ~5 saturate the link", n)
	}
	if est.LinkUtilization > 0.8 {
		t.Fatalf("returned estimate already violates the link bound: %v", est.LinkUtilization)
	}
}

func TestLightAdminsAreMemoryBound(t *testing.T) {
	// Cheap interactions, tiny traffic: the 64 MB of RAM runs out first.
	n, _, limit := Capacity(DefaultServer(), LightAdmin(), 100, testSpan, 1)
	if limit != LimitMemory {
		t.Fatalf("light admins limited by %s, want memory", limit)
	}
	// (65536-18432)/4444 = 10 sessions.
	if n != 10 {
		t.Fatalf("capacity = %d, want 10 memory-bound sessions", n)
	}
}

// TestLatencyCapacityNeverExceedsMemoryCapacity pins the contention
// model's key property: because the first overcommitted user drags every
// session into paging and page-in latency lands on the echo path, the
// latency-threshold capacity cannot exceed the §5.1.1 memory division.
func TestLatencyCapacityNeverExceedsMemoryCapacity(t *testing.T) {
	srv := DefaultServer()
	for _, p := range []Profile{LightAdmin(), Developer(), WebBrowser()} {
		n, _, _ := Capacity(srv, p, 100, testSpan, 1)
		if memN := MemoryCapacity(srv, p); n > memN {
			t.Fatalf("%s: latency capacity %d exceeds memory-only capacity %d",
				p.Name, n, memN)
		}
	}
}

func TestDevelopersAreCPUBound(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024 // plenty of memory
	n, est, limit := Capacity(srv, Developer(), 120, testSpan, 1)
	if limit != LimitCPU {
		t.Fatalf("developers limited by %s, want cpu", limit)
	}
	if n < 5 || n > 100 {
		t.Fatalf("implausible developer capacity %d", n)
	}
	if est.P95EchoMs > srv.budget().Milliseconds() {
		t.Fatal("returned estimate already over the latency budget")
	}
}

func TestSVR4SchedulerRaisesCPUCapacity(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024
	rr, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	srv.Scheduler = "svr4ia"
	ia, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	if ia <= rr {
		t.Fatalf("interactive scheduler capacity %d not above round-robin %d", ia, rr)
	}
}

func TestTighterBudgetLowersCapacity(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024
	loose, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	srv.LatencyBudget = 30 * simclock.Millisecond
	tight, _, _ := Capacity(srv, Developer(), 120, testSpan, 1)
	if tight > loose {
		t.Fatalf("30 ms budget capacity %d above 150 ms budget capacity %d", tight, loose)
	}
	if tight == 0 {
		t.Fatal("even a tight budget should admit someone")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	a := Evaluate(DefaultServer(), Developer(), 10, testSpan, 42)
	b := Evaluate(DefaultServer(), Developer(), 10, testSpan, 42)
	if a != b {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestZeroAndNegativeUsersClamp(t *testing.T) {
	e := Evaluate(DefaultServer(), LightAdmin(), 0, testSpan, 1)
	if e.Users != 1 {
		t.Fatalf("users clamped to %d, want 1", e.Users)
	}
	n, _, _ := Capacity(DefaultServer(), LightAdmin(), 0, testSpan, 1)
	if n < 0 {
		t.Fatal("negative capacity")
	}
}

// TestAllCensoredIsLatencyViolation pins the censoring fix: a span too
// short for any echo to complete yields censored-only samples whose ages
// can sit far under the budget, and such an estimate must never read as
// acceptable capacity.
func TestAllCensoredIsLatencyViolation(t *testing.T) {
	srv := DefaultServer()
	est := Estimate{Interactions: 40, Censored: 40, P95EchoMs: 3}
	if v := violation(srv, est); v != LimitCPU {
		t.Fatalf("all-censored estimate violated %s, want cpu (latency)", v)
	}
	// No interactions at all — a zero-length window — is equally "no echo
	// ever completed" and must not pass either.
	if v := violation(srv, Estimate{}); v != LimitCPU {
		t.Fatalf("zero-interaction estimate violated %s, want cpu (latency)", v)
	}
	// A healthy estimate with some (but not all) censoring still judges on
	// its percentiles.
	ok := Estimate{Interactions: 40, Censored: 2, P95EchoMs: 30}
	if v := violation(srv, ok); v != LimitNone {
		t.Fatalf("partially censored healthy estimate violated %s", v)
	}
}

// TestEvaluateConfigMatchesEvaluate: the explicit-config entry point used
// by fleet placement must agree bit-for-bit with the profile path.
func TestEvaluateConfigMatchesEvaluate(t *testing.T) {
	srv, p := DefaultServer(), Developer()
	want := Evaluate(srv, p, 6, 3*simclock.Second, 42)
	got, err := EvaluateConfig(probeConfig(srv, p, 6, 3*simclock.Second, 42))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateConfig diverged from Evaluate:\n%+v\n%+v", got, want)
	}
	if got.Interactions == 0 || got.Censored >= got.Interactions {
		t.Fatalf("healthy probe reads as all-censored: %+v", got)
	}
	bad := probeConfig(srv, p, 6, 3*simclock.Second, 42)
	bad.Scheduler = "cfs"
	if _, err := EvaluateConfig(bad); err == nil {
		t.Fatal("EvaluateConfig accepted an unknown scheduler")
	}
}

// TestChurnCapacityZeroRateIsStatic: at rate 0 the churn-aware search must
// reproduce the static answer exactly — same capacity, same estimate, same
// binding resource — because a zero-rate plan is the static population
// bit-for-bit.
func TestChurnCapacityZeroRateIsStatic(t *testing.T) {
	span := 3 * simclock.Second
	srv := DefaultServer()
	for _, p := range []Profile{LightAdmin(), Developer()} {
		wantN, wantEst, wantLimit := CapacityParallel(srv, p, 30, span, 1, 1)
		n, est, limit := ChurnCapacity(srv, p, 0, 30, span, 1, 1)
		if n != wantN || est != wantEst || limit != wantLimit {
			t.Fatalf("%s: zero-rate churn capacity (%d,%+v,%s) diverged from static (%d,%+v,%s)",
				p.Name, n, est, limit, wantN, wantEst, wantLimit)
		}
	}
}

// TestChurnCapacityNeverExceedsStatic: turnover only adds load — setup
// bytes on the link, login page-ins on the memory, cold arrivals on the
// CPU — so capacity under churn can never exceed steady-state capacity,
// and under a heavy rate it should strictly shrink.
func TestChurnCapacityNeverExceedsStatic(t *testing.T) {
	span := 5 * simclock.Second
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024 // keep memory slack so churn load, not the division, binds
	p := Developer()
	static, _, _ := CapacityParallel(srv, p, 60, span, 1, 0)
	for _, rate := range []float64{0.1, 0.5} {
		churned, est, _ := ChurnCapacity(srv, p, rate, 60, span, 1, 0)
		if churned > static {
			t.Fatalf("rate %.1f/s: churn capacity %d above static %d", rate, churned, static)
		}
		if churned > 0 && est.Users != churned {
			t.Fatalf("rate %.1f/s: estimate for %d users at capacity %d", rate, est.Users, churned)
		}
	}
	heavy, _, _ := ChurnCapacity(srv, p, 1.0, 60, span, 1, 0)
	if heavy >= static {
		t.Fatalf("1/s churn (mean stay 1s) capacity %d not below static %d", heavy, static)
	}
}

// TestChurnCapacityWorkerInvariant: the churn probes fan out across the
// farm like every other search; the answer must not depend on pool size.
func TestChurnCapacityWorkerInvariant(t *testing.T) {
	span := 3 * simclock.Second
	srv := DefaultServer()
	refN, refEst, refLimit := ChurnCapacity(srv, Developer(), 0.3, 30, span, 42, 1)
	for _, workers := range []int{2, 8} {
		n, est, limit := ChurnCapacity(srv, Developer(), 0.3, 30, span, 42, workers)
		if n != refN || est != refEst || limit != refLimit {
			t.Fatalf("workers=%d diverged: (%d,%+v,%s) vs (%d,%+v,%s)",
				workers, n, est, limit, refN, refEst, refLimit)
		}
	}
}

// linearCapacity is the brute-force reference: walk user counts upward
// until the first violation.
func linearCapacity(srv Server, p Profile, maxUsers int, span simclock.Duration, seed uint64) (int, Limit) {
	prev := Evaluate(srv, p, 1, span, seed)
	if v := violation(srv, prev); v != LimitNone {
		return 0, v
	}
	for n := 2; n <= maxUsers; n++ {
		est := Evaluate(srv, p, n, span, seed)
		if v := violation(srv, est); v != LimitNone {
			return n - 1, v
		}
	}
	over := Evaluate(srv, p, maxUsers+1, span, seed)
	return maxUsers, violation(srv, over)
}

// TestParallelCapacityMatchesLinearScan pins the k-ary concurrent search
// to the brute-force frontier on a quick workload.
func TestParallelCapacityMatchesLinearScan(t *testing.T) {
	span := 3 * simclock.Second
	srv := DefaultServer()
	for _, p := range []Profile{LightAdmin(), WebBrowser()} {
		wantN, wantLimit := linearCapacity(srv, p, 30, span, 1)
		for _, workers := range []int{1, 4, 16} {
			n, est, limit := CapacityParallel(srv, p, 30, span, 1, workers)
			if n != wantN || limit != wantLimit {
				t.Fatalf("%s workers=%d: capacity=%d limit=%s, linear scan says %d/%s",
					p.Name, workers, n, limit, wantN, wantLimit)
			}
			if n > 0 && est.Users != n {
				t.Fatalf("%s workers=%d: estimate for %d users returned at capacity %d",
					p.Name, workers, est.Users, n)
			}
		}
	}
}

// TestCapacityWorkerCountInvariant: the concurrent fan-out must return
// bit-identical estimates under any pool size.
func TestCapacityWorkerCountInvariant(t *testing.T) {
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024
	p := Developer()
	refN, refEst, refLimit := CapacityParallel(srv, p, 60, 5*simclock.Second, 42, 1)
	for _, workers := range []int{2, 8} {
		n, est, limit := CapacityParallel(srv, p, 60, 5*simclock.Second, 42, workers)
		if n != refN || est != refEst || limit != refLimit {
			t.Fatalf("workers=%d diverged: (%d,%+v,%s) vs (%d,%+v,%s)",
				workers, n, est, limit, refN, refEst, refLimit)
		}
	}
}

// TestScheduleCapacityFlatNeverExceedsChurn: the Flat profile is the
// churn process plus a stricter budget (the worst slice instead of the
// whole-run p95), so its capacity can never exceed ChurnCapacity's at the
// same rate.
func TestScheduleCapacityFlatNeverExceedsChurn(t *testing.T) {
	span := 4 * simclock.Second
	srv := DefaultServer()
	p := Developer()
	const rate = 0.3
	churned, _, _ := ChurnCapacity(srv, p, rate, 40, span, 1, 0)
	n, est, limit, err := ScheduleCapacity(srv, p, schedule.Flat(rate), 40, span, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > churned {
		t.Fatalf("worst-slice capacity %d above whole-run churn capacity %d", n, churned)
	}
	if n > 0 && est.WorstSliceP95Ms > DefaultLatencyBudget.Milliseconds() {
		t.Fatalf("capacity %d has worst slice %.0f ms past the budget (limit %s)",
			n, est.WorstSliceP95Ms, limit)
	}
}

// TestScheduleCapacitySurvivesTheStorm: a machine sized for OfficeDay
// must hold its budget through the 9 AM ramp; the search answers and the
// estimate's worst slice reflects the storm, not the quiet mean.
func TestScheduleCapacityOfficeDay(t *testing.T) {
	span := 5 * simclock.Second
	srv := DefaultServer()
	srv.PhysicalKB = 512 * 1024 // let the storm's CPU/link load bind, not the division
	n, est, limit, err := ScheduleCapacity(srv, Developer(), schedule.OfficeDay(), 60, span, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("no seats fit under OfficeDay: limit %s, est %+v", limit, est)
	}
	if est.WorstSliceP95Ms <= 0 {
		t.Fatal("capacity estimate carries no worst-slice latency")
	}
	if est.WorstSliceP95Ms < est.P95EchoMs {
		t.Fatalf("worst slice %.1f ms below whole-run p95 %.1f ms", est.WorstSliceP95Ms, est.P95EchoMs)
	}
}

func TestScheduleCapacityWorkerInvariant(t *testing.T) {
	span := 3 * simclock.Second
	srv := DefaultServer()
	day := schedule.OfficeDay()
	refN, refEst, refLimit, err := ScheduleCapacity(srv, Developer(), day, 30, span, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		n, est, limit, err := ScheduleCapacity(srv, Developer(), day, 30, span, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if n != refN || est != refEst || limit != refLimit {
			t.Fatalf("workers=%d diverged: (%d,%+v,%s) vs (%d,%+v,%s)",
				workers, n, est, limit, refN, refEst, refLimit)
		}
	}
}

func TestScheduleCapacityRejectsMalformedProfile(t *testing.T) {
	bad := schedule.OfficeDay()
	bad.Timeline[0].Rate = -1
	if _, _, _, err := ScheduleCapacity(DefaultServer(), Developer(), bad, 10, simclock.Second, 1, 0); err == nil {
		t.Fatal("malformed profile accepted")
	}
}
