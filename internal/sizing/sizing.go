// Package sizing answers the question the paper's introduction says
// operators actually ask: "the maximum number of concurrent users their
// servers can support given some hardware configuration, and what impact
// on users yields this maximum value."
//
// It composes the reproduction's substrates — the scheduler simulator for
// CPU-bound stalls, the §5.1.1 memory accounting for paging onset, and
// link arithmetic for network saturation — into a single capacity
// estimate, reporting which resource binds first. This is the paper's
// behavior → load → latency framework packaged as a planning tool.
package sizing

import (
	"fmt"

	"thinbench/internal/farm"
	"thinbench/internal/latency"
	"thinbench/internal/sched"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

// Profile describes one class of user, the paper's "user behavior" axis.
type Profile struct {
	Name string
	// CPUPerInteraction is the server CPU consumed handling one
	// interaction (echo + render + encode).
	CPUPerInteraction simclock.Duration
	// InteractionsPerSec is the user's interaction rate while active.
	InteractionsPerSec float64
	// BackgroundCPUFrac is non-interactive CPU the user's session burns
	// (compilations, macros) as a fraction of one CPU.
	BackgroundCPUFrac float64
	// SessionKB is the per-session compulsory memory (§5.1.1).
	SessionKB int
	// DisplayBitsPerSec is steady display-channel traffic per user, which
	// depends on protocol and content (Figure 4's numbers are the extreme).
	DisplayBitsPerSec float64
}

// LightAdmin is a forms-and-typing user on an efficient protocol.
func LightAdmin() Profile {
	return Profile{
		Name:               "light-admin",
		CPUPerInteraction:  2 * simclock.Millisecond,
		InteractionsPerSec: 2,
		BackgroundCPUFrac:  0.002,
		SessionKB:          3244 + 1200, // TSE login + one application
		DisplayBitsPerSec:  16_000,
	}
}

// WebBrowser is the paper's animated-page user: the bitmap cache has
// overflowed and the page streams at Figure 4's combined rate.
func WebBrowser() Profile {
	return Profile{
		Name:               "web-browser",
		CPUPerInteraction:  3 * simclock.Millisecond,
		InteractionsPerSec: 1,
		BackgroundCPUFrac:  0.01,
		SessionKB:          3244 + 4096,
		DisplayBitsPerSec:  1_600_000, // Figure 4 combined
	}
}

// Developer mixes typing with background compilation.
func Developer() Profile {
	return Profile{
		Name:               "developer",
		CPUPerInteraction:  2 * simclock.Millisecond,
		InteractionsPerSec: 4,
		BackgroundCPUFrac:  0.08,
		SessionKB:          752 + 2800,
		DisplayBitsPerSec:  40_000,
	}
}

// Server describes the hardware and policy configuration.
type Server struct {
	PhysicalKB int
	SystemKB   int
	LinkMbps   float64
	// Scheduler selects the CPU policy: "nt", "rr", or "svr4ia".
	Scheduler string
}

// DefaultServer is the paper's testbed class: 64 MB, 10 Mbps shared
// Ethernet, round-robin scheduling.
func DefaultServer() Server {
	return Server{
		PhysicalKB: 64 * 1024,
		SystemKB:   18 * 1024,
		LinkMbps:   10,
		Scheduler:  "rr",
	}
}

// Estimate is the impact of a given population on one server.
type Estimate struct {
	Users int
	// MeanStallMs is the measured typist stall at this population.
	MeanStallMs float64
	// MaxStallMs is the worst observed stall.
	MaxStallMs float64
	// MemoryKB is resident session memory; Paging reports overflow.
	MemoryKB int
	Paging   bool
	// LinkUtilization is offered display traffic over link rate.
	LinkUtilization float64
}

// Perceptible reports whether the population pushes the typist past the
// 100 ms threshold.
func (e Estimate) Perceptible() bool {
	return e.MeanStallMs >= latency.PerceptionThreshold.Milliseconds()
}

func newScheduler(name string) (sched.Scheduler, bool) {
	switch name {
	case "nt":
		return sched.NewNTSched(sched.DefaultNTConfig()), false
	case "svr4ia":
		return sched.NewSVR4IASched(10 * simclock.Millisecond), true
	default:
		return sched.NewRRSched(10 * simclock.Millisecond), false
	}
}

// Evaluate simulates users of the profile on the server for the span and
// measures one of them (a 20 Hz repeat typist, the Figure 3 probe).
func Evaluate(srv Server, p Profile, users int, span simclock.Duration, seed uint64) Estimate {
	if users < 1 {
		users = 1
	}
	eng := simclock.NewEngine()
	policy, interactive := newScheduler(srv.Scheduler)
	cpu := sched.NewCPU(eng, policy, simclock.Second)
	rng := simclock.NewRand(seed)

	// The measured user's pipeline.
	editor := cpu.NewThread("probe-editor", 9)
	editor.GUIBoost = true
	editor.Interactive = interactive
	render := cpu.NewThread("probe-render", 8)
	render.Interactive = interactive

	// The other users: interaction bursts plus background load.
	for i := 1; i < users; i++ {
		t := cpu.NewThread(fmt.Sprintf("user%d", i), 8)
		if p.InteractionsPerSec > 0 {
			period := simclock.Duration(1e6 / p.InteractionsPerSec)
			phase := rng.UniformDuration(0, period)
			eng.Every(simclock.Time(phase), period, func(simclock.Time) {
				cpu.Submit(t, &sched.WorkItem{Tag: "interact", CPU: p.CPUPerInteraction})
			})
		}
		if p.BackgroundCPUFrac > 0 {
			bg := cpu.NewThread(fmt.Sprintf("bg%d", i), 8)
			// Background demand arrives as 100 ms-period slices.
			slice := simclock.Duration(p.BackgroundCPUFrac * 100_000)
			phase := rng.UniformDuration(0, 100*simclock.Millisecond)
			eng.Every(simclock.Time(phase), 100*simclock.Millisecond, func(simclock.Time) {
				cpu.Submit(bg, &sched.WorkItem{Tag: "background", CPU: slice})
			})
		}
	}

	tracker := latency.NewStallTracker(50 * simclock.Millisecond)
	tracker.Observe(0)
	for _, at := range workload.KeystrokeTimes(workload.TypingConfig{Rate: 20, Span: span}) {
		cpu.SubmitAt(at, editor, &sched.WorkItem{
			Tag: "echo", CPU: simclock.Millisecond, Coalesce: true,
			OnDone: func(simclock.Time, int) {
				cpu.Submit(render, &sched.WorkItem{
					Tag: "render", CPU: 1500 * simclock.Microsecond, Coalesce: true,
					OnDone: func(done simclock.Time, _ int) { tracker.Observe(done) },
				})
			},
		})
	}
	eng.RunFor(span + simclock.Second)

	mem := users * p.SessionKB
	free := srv.PhysicalKB - srv.SystemKB
	return Estimate{
		Users:           users,
		MeanStallMs:     tracker.MeanStallMs(),
		MaxStallMs:      tracker.MaxStallMs(),
		MemoryKB:        mem,
		Paging:          mem > free,
		LinkUtilization: float64(users) * p.DisplayBitsPerSec / (srv.LinkMbps * 1e6),
	}
}

// Limit names the resource that capped a capacity search.
type Limit string

// Binding resources.
const (
	LimitCPU     Limit = "cpu"
	LimitMemory  Limit = "memory"
	LimitNetwork Limit = "network"
	LimitNone    Limit = "none"
)

// Capacity finds the largest user count that keeps the probe's mean stall
// under the perception threshold, stays out of paging, and keeps the link
// under 80% utilization. It returns the count, the estimate at that count,
// and which resource binds at count+1. Probes fan out across a session
// farm sized to GOMAXPROCS; use CapacityParallel to pick the worker count.
func Capacity(srv Server, p Profile, maxUsers int, span simclock.Duration, seed uint64) (int, Estimate, Limit) {
	return CapacityParallel(srv, p, maxUsers, span, seed, 0)
}

// CapacityParallel is Capacity with an explicit probe worker count (<= 0
// means GOMAXPROCS). Instead of sequential binary probing, each round
// evaluates up to `workers` candidate user-counts concurrently — a k-ary
// search over the bracket. Every probe is deterministic in (users, seed)
// alone, and the three constraints are monotone in the user count, so the
// answer is identical under any worker count; fan-out only buys wall-clock
// time, cutting rounds from log2(maxUsers) to log(k+1)(maxUsers).
func CapacityParallel(srv Server, p Profile, maxUsers int, span simclock.Duration, seed uint64, workers int) (int, Estimate, Limit) {
	if maxUsers < 1 {
		maxUsers = 1
	}
	cache := map[int]Estimate{}
	probe := func(counts []int) {
		fresh := counts[:0]
		for _, c := range counts {
			if _, ok := cache[c]; !ok {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			return
		}
		// Evaluate never fails, so the farm error is always nil.
		ests, _ := farm.Run(farm.Config{Sessions: len(fresh), Workers: workers, Seed: seed},
			func(s *farm.Session) (Estimate, error) {
				return Evaluate(srv, p, fresh[s.Index], span, seed), nil
			})
		for i, c := range fresh {
			cache[c] = ests[i]
		}
	}

	k := farm.Config{Sessions: maxUsers, Workers: workers}.EffectiveWorkers()
	probe([]int{1})
	if v := violation(srv, cache[1]); v != LimitNone {
		return 0, cache[1], v
	}
	// k-ary bracket narrowing: [lo known-good, hi possibly-good].
	lo, hi := 1, maxUsers
	for lo < hi {
		counts := make([]int, 0, k)
		width := hi - lo
		for j := 1; j <= k; j++ {
			// Probe the k interior cut points dividing (lo, hi] into k+1
			// segments; k=1 reduces exactly to classic binary search.
			c := lo + (width*j+k)/(k+1)
			if len(counts) == 0 || counts[len(counts)-1] != c {
				counts = append(counts, c)
			}
		}
		probe(counts)
		newLo, newHi := lo, hi
		for _, c := range counts {
			if violation(srv, cache[c]) == LimitNone {
				if c > newLo {
					newLo = c
				}
			} else if c-1 < newHi {
				newHi = c - 1
			}
		}
		lo, hi = newLo, newHi
	}
	probe([]int{lo + 1})
	return lo, cache[lo], violation(srv, cache[lo+1])
}

// violation reports the first constraint the estimate breaks.
func violation(srv Server, e Estimate) Limit {
	if e.Paging {
		return LimitMemory
	}
	if e.LinkUtilization > 0.8 {
		return LimitNetwork
	}
	if e.Perceptible() {
		return LimitCPU
	}
	return LimitNone
}
