// Package sizing answers the question the paper's introduction says
// operators actually ask: "the maximum number of concurrent users their
// servers can support given some hardware configuration, and what impact
// on users yields this maximum value."
//
// Every probe instantiates one shared server (internal/server): all
// candidate users contend on one clock, one CPU, one physical memory pool,
// and one link, so the capacity answer reflects cross-resource feedback —
// paging inflates echo latency, display traffic delays input packets —
// rather than three independent arithmetic checks. Capacity itself is
// latency-threshold capacity: the largest population whose p95 echo
// latency stays within the server's configurable budget (150 ms by
// default) while staying out of paging and under link saturation. The
// memory-only division the paper's §5.1.1 tables support remains available
// as MemoryCapacity, and the latency-threshold answer can only be lower.
package sizing

import (
	"thinbench/internal/farm"
	"thinbench/internal/netsim"
	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
)

// Profile describes one class of user, the paper's "user behavior" axis.
type Profile struct {
	Name string
	// CPUPerInteraction is the application CPU consumed handling one
	// interaction (echo + render); display encoding costs EncodeCPU more.
	CPUPerInteraction simclock.Duration
	// InteractionsPerSec is the user's interaction rate while active.
	InteractionsPerSec float64
	// BackgroundCPUFrac is non-interactive CPU the user's session burns
	// (compilations, macros) as a fraction of one CPU.
	BackgroundCPUFrac float64
	// SessionKB is the per-session compulsory memory (§5.1.1).
	SessionKB int
	// DisplayBitsPerSec is steady display-channel traffic per user, which
	// depends on protocol and content (Figure 4's numbers are the extreme).
	DisplayBitsPerSec float64
}

// EncodeCPU is the display-encoder cost per interaction, charged on top
// of the profile's application CPU.
const EncodeCPU = 1500 * simclock.Microsecond

// LightAdmin is a forms-and-typing user on an efficient protocol.
func LightAdmin() Profile {
	return Profile{
		Name:               "light-admin",
		CPUPerInteraction:  2 * simclock.Millisecond,
		InteractionsPerSec: 2,
		BackgroundCPUFrac:  0.002,
		SessionKB:          3244 + 1200, // TSE login + one application
		DisplayBitsPerSec:  16_000,
	}
}

// WebBrowser is the paper's animated-page user: the bitmap cache has
// overflowed and the page streams at Figure 4's combined rate.
func WebBrowser() Profile {
	return Profile{
		Name:               "web-browser",
		CPUPerInteraction:  3 * simclock.Millisecond,
		InteractionsPerSec: 1,
		BackgroundCPUFrac:  0.01,
		SessionKB:          3244 + 4096,
		DisplayBitsPerSec:  1_600_000, // Figure 4 combined
	}
}

// Developer mixes typing with background compilation.
func Developer() Profile {
	return Profile{
		Name:               "developer",
		CPUPerInteraction:  2 * simclock.Millisecond,
		InteractionsPerSec: 4,
		BackgroundCPUFrac:  0.08,
		SessionKB:          752 + 2800,
		DisplayBitsPerSec:  40_000,
	}
}

// Server describes the hardware and policy configuration.
type Server struct {
	PhysicalKB int
	SystemKB   int
	LinkMbps   float64
	// Scheduler selects the CPU policy: "nt", "rr", or "svr4ia".
	Scheduler string
	// LatencyBudget is the p95 echo-latency ceiling that defines
	// capacity; zero means the 150 ms default.
	LatencyBudget simclock.Duration
}

// DefaultLatencyBudget is the capacity threshold when a Server leaves
// LatencyBudget zero: half again the paper's 100 ms perception limit, the
// operator's "users are complaining" line.
const DefaultLatencyBudget = 150 * simclock.Millisecond

// LoginBudget caps the login-screen wait a capacity answer may impose on
// arrivals: a healthy login (handshake bytes, full-manifest page-in,
// process creation) runs on the order of 1.5 s, so a 3 s ceiling flags a
// machine whose admissions are starving — the overload mode specific to
// churn, where stuck logins can hide in an echo percentile's tail.
const LoginBudget = 3 * simclock.Second

// DefaultServer is the paper's testbed class: 64 MB, 10 Mbps shared
// Ethernet, round-robin scheduling, 150 ms p95 budget.
func DefaultServer() Server {
	return Server{
		PhysicalKB: 64 * 1024,
		SystemKB:   18 * 1024,
		LinkMbps:   10,
		Scheduler:  "rr",
	}
}

func (s Server) budget() simclock.Duration {
	if s.LatencyBudget > 0 {
		return s.LatencyBudget
	}
	return DefaultLatencyBudget
}

// probeConfig composes the shared-server instance for one capacity probe.
// The size-model codec keeps per-user state tiny, so wide candidate
// fan-outs stay cheap; protocol-faithful byte streams live in the
// contention experiments.
func probeConfig(srv Server, p Profile, users int, span simclock.Duration, seed uint64) server.Config {
	link := netsim.DefaultLinkConfig()
	link.RateMbps = srv.LinkMbps
	return server.Config{
		Users:     users,
		Protocol:  "model",
		Scheduler: srv.Scheduler,

		PhysicalKB: srv.PhysicalKB,
		SystemKB:   srv.SystemKB,
		Link:       link,

		Manifest: session.Manifest{
			OS:        "profile",
			Variant:   p.Name,
			Processes: []session.ProcessSpec{{Name: "session", PrivateKB: p.SessionKB}},
		},
		WorkingSetKB: 64,

		InteractionsPerSec:   p.InteractionsPerSec,
		EchoCPU:              p.CPUPerInteraction,
		EncodeCPU:            EncodeCPU,
		BackgroundCPUFrac:    p.BackgroundCPUFrac,
		BackgroundBitsPerSec: p.DisplayBitsPerSec,

		InputBytes: 64,
		EchoBytes:  200,
		// The model codec's session-setup handshake, paid on the link by
		// every churn replacement login (tab4-scale, X-handshake class),
		// and the process-creation compute each replacement charges the
		// shared CPU.
		SetupBytes: 16 * 1024,
		LoginCPU:   server.DefaultLoginCPU,

		Span: span,
		Seed: seed,
	}
}

// ProbeConfig exposes the capacity probes' server composition: the exact
// machine-and-workload model Capacity, ChurnCapacity, and ScheduleCapacity
// judge populations on. A fleet experiment comparing an online controller
// against one of those offline oracles builds its Base from this, so the
// two answers describe the same machine rather than coincidentally
// similar ones.
func ProbeConfig(srv Server, p Profile, users int, span simclock.Duration, seed uint64) server.Config {
	return probeConfig(srv, p, users, span, seed)
}

// Estimate is the impact of a given population on one shared server.
type Estimate struct {
	Users int
	// Echo latency percentiles over every user's every interaction
	// (right-censored at run end, so overload reads as high latency).
	MeanEchoMs float64
	P95EchoMs  float64
	MaxEchoMs  float64
	// CPUUtilization and LinkUtilization are measured over the span.
	CPUUtilization  float64
	LinkUtilization float64
	// MemoryKB is committed session memory plus the system baseline;
	// Paging reports that the population overcommitted physical memory
	// and paid page-in latency.
	MemoryKB int
	Paging   bool
	// Interactions counts submitted probe events; Censored counts the
	// ones that never completed within the span. When every interaction
	// is censored the latency percentiles are lower bounds from ages at
	// run end, so violation treats that case as a blown budget no matter
	// how small the numbers read.
	Interactions int64
	Censored     int64
	// LoginMaxMs is the slowest mid-run admission (0 on a static run);
	// violation checks it against LoginBudget so a churned machine whose
	// arrivals starve at the login screen cannot read as acceptable.
	LoginMaxMs float64
	// WorstSliceP95Ms is the highest per-slice p95 of the run's latency
	// timeline — the worst minute of the day, the number ScheduleCapacity
	// budgets against. A bursty schedule can keep its whole-run p95 inside
	// budget while its storm minute is far outside; this field is what
	// keeps that machine from being declared adequately sized.
	WorstSliceP95Ms float64
}

// Evaluate simulates the population on one shared server for the span and
// measures every user's echo latency under full contention.
func Evaluate(srv Server, p Profile, users int, span simclock.Duration, seed uint64) Estimate {
	if users < 1 {
		users = 1
	}
	est, err := EvaluateConfig(probeConfig(srv, p, users, span, seed))
	if err != nil {
		// Profiles and servers are validated values; a bad scheduler name
		// is a programming error.
		panic(err)
	}
	return est
}

// EvaluateConfig measures an explicit server.Config the same way Evaluate
// measures a profile-derived one. Fleet placement policies probe candidate
// shards through this entry point, so a heterogeneous machine (overridden
// memory, scaled CPU costs) is judged by the same latency estimate that
// sizes a homogeneous one.
func EvaluateConfig(cfg server.Config) (Estimate, error) {
	inst, err := server.New(cfg)
	if err != nil {
		return Estimate{}, err
	}
	res, err := inst.Run()
	if err != nil {
		return Estimate{}, err
	}
	worst := 0.0
	for _, p := range res.P95TimelineMs {
		if p > worst {
			worst = p
		}
	}
	return Estimate{
		Users:           res.Users,
		MeanEchoMs:      res.EchoMeanMs,
		P95EchoMs:       res.EchoP95Ms,
		MaxEchoMs:       res.EchoMaxMs,
		CPUUtilization:  res.CPUUtilization,
		LinkUtilization: res.LinkUtilization,
		MemoryKB:        res.CommittedKB,
		Paging:          res.Paging,
		Interactions:    res.Interactions,
		Censored:        res.Censored,
		LoginMaxMs:      res.LoginMaxMs,
		WorstSliceP95Ms: worst,
	}, nil
}

// Limit names the resource that capped a capacity search.
type Limit string

// Binding resources.
const (
	LimitCPU     Limit = "cpu"
	LimitMemory  Limit = "memory"
	LimitNetwork Limit = "network"
	LimitNone    Limit = "none"
)

// MemoryCapacity is the §5.1.1 memory-only division: sessions that fit in
// physical memory after the system baseline, ignoring latency entirely.
// The latency-threshold Capacity can never exceed it when memory binds,
// because the first overcommitted user pushes every session into paging.
func MemoryCapacity(srv Server, p Profile) int {
	return session.Capacity(srv.PhysicalKB, srv.SystemKB, session.Manifest{
		Processes: []session.ProcessSpec{{Name: "session", PrivateKB: p.SessionKB}},
	})
}

// Capacity finds the latency-threshold capacity: the largest user count
// whose p95 echo latency stays within the server's budget, out of paging,
// and under 80% link utilization. It returns the count, the estimate at
// that count, and which resource binds at count+1. Probes fan out across
// a farm sized to GOMAXPROCS; use CapacityParallel to pick the worker
// count.
func Capacity(srv Server, p Profile, maxUsers int, span simclock.Duration, seed uint64) (int, Estimate, Limit) {
	return CapacityParallel(srv, p, maxUsers, span, seed, 0)
}

// CapacityParallel is Capacity with an explicit probe worker count (<= 0
// means GOMAXPROCS). Instead of sequential binary probing, each round
// evaluates up to `workers` candidate user-counts concurrently — a k-ary
// search over the bracket, each probe a complete shared-server instance.
// Every probe is deterministic in (users, seed) alone, and the three
// constraints are monotone in the user count, so the answer is identical
// under any worker count; fan-out only buys wall-clock time, cutting
// rounds from log2(maxUsers) to log(k+1)(maxUsers).
func CapacityParallel(srv Server, p Profile, maxUsers int, span simclock.Duration, seed uint64, workers int) (int, Estimate, Limit) {
	return capacitySearch(srv, maxUsers, workers, seed,
		func(users int) Estimate { return Evaluate(srv, p, users, span, seed) })
}

// ChurnCapacity is the capacity question asked of a machine that never
// reaches steady state: the largest population whose p95 echo latency
// stays within the budget while sessions churn — each logs out with the
// given per-second hazard and is immediately replaced by a fresh login
// that pays session-setup bytes on the contended link and login page-ins
// on the shared memory. At rate 0 it is exactly CapacityParallel; at any
// positive rate the churn load can only subtract capacity, never add it.
func ChurnCapacity(srv Server, p Profile, ratePerSec float64, maxUsers int, span simclock.Duration, seed uint64, workers int) (int, Estimate, Limit) {
	return capacitySearch(srv, maxUsers, workers, seed, func(users int) Estimate {
		if users < 1 {
			users = 1
		}
		cfg := probeConfig(srv, p, users, span, seed)
		cfg.Churn = server.Churn{RatePerSec: ratePerSec}
		est, err := EvaluateConfig(cfg)
		if err != nil {
			// Profiles and servers are validated values; a bad scheduler
			// name is a programming error.
			panic(err)
		}
		return est
	})
}

// ScheduleCapacity sizes a machine for the shape of its day rather than
// its steady state: the largest seat count for which, with arrivals
// driven by the schedule profile (the 9 AM storm, the lunch dip, the
// shift wave), the WORST timeline slice's p95 stays within the budget and
// no admission waits at the login screen past LoginBudget. Budgeting the
// worst minute instead of the whole-run percentile is the point — a storm
// is brief by definition, so averaging it away is exactly how a fleet
// ends up under-provisioned at nine o'clock. A Flat profile's answer can
// only be at or below ChurnCapacity's at the same rate, since the worst
// slice bounds the whole-run p95 from above.
func ScheduleCapacity(srv Server, p Profile, prof schedule.Profile, maxUsers int, span simclock.Duration, seed uint64, workers int) (int, Estimate, Limit, error) {
	if err := prof.Validate(); err != nil {
		return 0, Estimate{}, LimitNone, err
	}
	users, est, lim := capacitySearchFn(srv, maxUsers, workers, seed, func(users int) Estimate {
		if users < 1 {
			users = 1
		}
		cfg := probeConfig(srv, p, users, span, seed)
		cfg.Schedule = &prof
		est, err := EvaluateConfig(cfg)
		if err != nil {
			// The profile was validated above; anything else is a
			// programming error, as in every other capacity probe.
			panic(err)
		}
		return est
	}, scheduleViolation)
	return users, est, lim, nil
}

// capacitySearch is the k-ary bracket narrowing shared by every capacity
// entry point, under the default steady-state violation rule.
func capacitySearch(srv Server, maxUsers, workers int, seed uint64, eval func(users int) Estimate) (int, Estimate, Limit) {
	return capacitySearchFn(srv, maxUsers, workers, seed, eval, violation)
}

// capacitySearchFn is capacitySearch with an explicit violation rule:
// eval must be deterministic in the user count alone, and the rule's
// constraints monotone in it.
func capacitySearchFn(srv Server, maxUsers, workers int, seed uint64, eval func(users int) Estimate, violation func(Server, Estimate) Limit) (int, Estimate, Limit) {
	if maxUsers < 1 {
		maxUsers = 1
	}
	cache := map[int]Estimate{}
	probe := func(counts []int) {
		fresh := counts[:0]
		for _, c := range counts {
			if _, ok := cache[c]; !ok {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			return
		}
		// eval never fails, so the farm error is always nil.
		ests, _ := farm.Run(farm.Config{Sessions: len(fresh), Workers: workers, Seed: seed},
			func(s *farm.Session) (Estimate, error) {
				return eval(fresh[s.Index]), nil
			})
		for i, c := range fresh {
			cache[c] = ests[i]
		}
	}

	k := farm.Config{Sessions: maxUsers, Workers: workers}.EffectiveWorkers()
	probe([]int{1})
	if v := violation(srv, cache[1]); v != LimitNone {
		return 0, cache[1], v
	}
	// k-ary bracket narrowing: [lo known-good, hi possibly-good].
	lo, hi := 1, maxUsers
	for lo < hi {
		counts := make([]int, 0, k)
		width := hi - lo
		for j := 1; j <= k; j++ {
			// Probe the k interior cut points dividing (lo, hi] into k+1
			// segments; k=1 reduces exactly to classic binary search.
			c := lo + (width*j+k)/(k+1)
			if len(counts) == 0 || counts[len(counts)-1] != c {
				counts = append(counts, c)
			}
		}
		probe(counts)
		newLo, newHi := lo, hi
		for _, c := range counts {
			if violation(srv, cache[c]) == LimitNone {
				if c > newLo {
					newLo = c
				}
			} else if c-1 < newHi {
				newHi = c - 1
			}
		}
		lo, hi = newLo, newHi
	}
	probe([]int{lo + 1})
	return lo, cache[lo], violation(srv, cache[lo+1])
}

// violation reports the first constraint the estimate breaks. Paging and
// link saturation are checked before the latency budget so that a blown
// budget names the scarce resource, not just the symptom. A probe where no
// interaction ever completed (all censored, or a span too short to submit
// any) is a latency violation regardless of the measured percentiles:
// censored samples are ages at run end, which a short span can keep under
// the budget even though every user is still waiting.
func violation(srv Server, e Estimate) Limit {
	if e.Paging {
		return LimitMemory
	}
	if e.LinkUtilization > 0.8 {
		return LimitNetwork
	}
	if e.Censored >= e.Interactions || e.P95EchoMs > srv.budget().Milliseconds() ||
		e.LoginMaxMs > LoginBudget.Milliseconds() {
		return LimitCPU
	}
	return LimitNone
}

// scheduleViolation is violation with the latency constraint tightened to
// the worst timeline slice: a machine sized for a schedule must survive
// its storm minute, not just its whole-run percentile. One carve-out from
// the shared rule: a probe that never submitted an interaction at all is
// "no data", not overload — a lone seat can draw a login-dominated
// evening stint from the profile, and reading its empty episode as a
// blown budget would floor every schedule capacity at zero. Paging, link
// saturation, and login starvation still disqualify such a probe.
func scheduleViolation(srv Server, e Estimate) Limit {
	if e.Interactions == 0 {
		switch {
		case e.Paging:
			return LimitMemory
		case e.LinkUtilization > 0.8:
			return LimitNetwork
		case e.LoginMaxMs > LoginBudget.Milliseconds():
			return LimitCPU
		}
		return LimitNone
	}
	if v := violation(srv, e); v != LimitNone {
		return v
	}
	if e.WorstSliceP95Ms > srv.budget().Milliseconds() {
		return LimitCPU
	}
	return LimitNone
}
