package control_test

import (
	"reflect"
	"testing"

	"thinbench/internal/control"
	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

// stormFleet is a deliberately under-provisioned fleet facing an office
// day: two weak machines, model codec for speed, a morning storm that
// overcommits them.
func stormFleet(users int) (shard.Config, *schedule.Profile) {
	base := server.DefaultConfig()
	base.Protocol = "model"
	base.Span = 6 * simclock.Second
	day := schedule.OfficeDay()
	return shard.Config{
		Base:     base,
		Machines: []shard.Machine{{MemoryMB: 48, CPUSpeed: 0.6}, {MemoryMB: 48, CPUSpeed: 0.6}},
		Users:    users,
		Schedule: &day,
		Seed:     7,
	}, &day
}

func sum(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func TestRunRequiresAController(t *testing.T) {
	fleet, _ := stormFleet(8)
	if _, err := control.Run(fleet, control.Config{}); err == nil {
		t.Fatal("control.Run with no controllers should error")
	}
}

// TestAdmissionProtectsTheAdmitted is the control plane's core claim: an
// admission gate holding arrivals at the login screen keeps the latency
// of the users it lets in at or below the uncontrolled fleet's, at the
// cost of queueing delay and turned-away logins — overload moved from
// everyone's keystrokes to the login queue.
func TestAdmissionProtectsTheAdmitted(t *testing.T) {
	const users = 28
	fleet, _ := stormFleet(users)
	open, err := shard.Run(fleet)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := control.Run(fleet, control.Config{
		Admission: &control.Admission{
			Budget:  120 * simclock.Millisecond,
			Retry:   500 * simclock.Millisecond,
			MaxWait: 2 * simclock.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gated.DeferredLogins == 0 && gated.RejectedLogins == 0 {
		t.Fatal("an overcommitted storm should queue or reject some logins")
	}
	if gated.PeakUsers <= 0 || gated.PeakUsers > users {
		t.Fatalf("gated peak %d outside (0, %d]", gated.PeakUsers, users)
	}
	// Rejections only remove logins; the gate can never create them.
	openLogins := sum(open.Placement) + open.Arrivals
	gatedLogins := sum(gated.Placement) + gated.Arrivals
	if gatedLogins > openLogins {
		t.Fatalf("gated fleet logged in %d sessions vs open %d", gatedLogins, openLogins)
	}
	if gated.EchoP95Ms > open.EchoP95Ms {
		t.Fatalf("gated p95 %.0f ms > open p95 %.0f ms: admission made the admitted worse",
			gated.EchoP95Ms, open.EchoP95Ms)
	}
	if gated.DeferredLogins > 0 && gated.QueueWaitMaxMs <= 0 {
		t.Fatal("deferred logins with no recorded queue wait")
	}
}

// TestShedderDegradesUnderLoad drives the same storm through the load
// shedder alone and checks it actually moved: tier changes scheduled,
// frames shed on the machines.
func TestShedderDegradesUnderLoad(t *testing.T) {
	fleet, _ := stormFleet(16)
	res, err := control.Run(fleet, control.Config{
		Shedder: &control.Shedder{HighMs: 30, LowMs: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TierChanges == 0 {
		t.Fatal("an overloaded fleet should cross the shed threshold at least once")
	}
	if res.SheddedFrames == 0 {
		t.Fatal("degraded tiers should shed probe frames")
	}
	// Nothing here may leak into uncontrolled runs: shedding is the only
	// admitted-population knob, so arrivals match the open fleet's.
	open, err := shard.Run(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != open.Arrivals || res.Departures != open.Departures {
		t.Fatalf("shedder changed the population: %d/%d arrivals/departures vs %d/%d",
			res.Arrivals, res.Departures, open.Arrivals, open.Departures)
	}
}

// TestAutoscalerPowersOnSpares ramps a growing population over one live
// machine with two standby spares and checks the autoscaler brings
// capacity up behind the ramp.
func TestAutoscalerPowersOnSpares(t *testing.T) {
	base := server.DefaultConfig()
	base.Protocol = "model"
	base.Span = 6 * simclock.Second
	fleet := shard.Config{
		Base:         base,
		Machines:     []shard.Machine{{}, {Standby: true}, {Standby: true}},
		Users:        4,
		GrowthPerSec: 3,
		Seed:         11,
	}
	res, err := control.Run(fleet, control.Config{
		Autoscaler: &control.Autoscaler{UpFrac: 0.5, DownFrac: 0.1, ProvisionDelay: 200 * simclock.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Activations == 0 {
		t.Fatal("a ramp past the up threshold should power on a spare")
	}
	spareArrivals := 0
	for _, sh := range res.Shards[1:] {
		spareArrivals += sh.Arrivals
	}
	if spareArrivals == 0 {
		t.Fatal("powered-on spares never hosted an arrival")
	}
}

// TestControlledRunWorkerInvariant is the determinism contract extended
// to the control plane: the same controlled configuration produces a
// deeply identical result at any worker count.
func TestControlledRunWorkerInvariant(t *testing.T) {
	fleet, _ := stormFleet(12)
	c := control.Config{
		Admission: &control.Admission{Budget: 120 * simclock.Millisecond, Retry: 500 * simclock.Millisecond, MaxWait: 2 * simclock.Second},
		Shedder:   &control.Shedder{HighMs: 60, LowMs: 20},
	}
	fleet.Workers = 1
	one, err := control.Run(fleet, c)
	if err != nil {
		t.Fatal(err)
	}
	fleet.Workers = 8
	eight, err := control.Run(fleet, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("controlled fleet result differs between 1 and 8 workers")
	}
}

// TestUncontrolledResultOmitsControlFields pins the baseline-compat
// contract: an uncontrolled run's result must carry zero in every
// control field, so the five pre-existing BENCH baselines serialize
// byte-identically.
func TestUncontrolledResultOmitsControlFields(t *testing.T) {
	fleet, _ := stormFleet(8)
	res, err := shard.Run(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakUsers != 0 || res.DeferredLogins != 0 || res.RejectedLogins != 0 ||
		res.QueueWaitMeanMs != 0 || res.QueueWaitMaxMs != 0 || res.TierChanges != 0 ||
		res.SheddedFrames != 0 || res.Activations != 0 || res.Drains != 0 {
		t.Fatalf("uncontrolled run carries control stats: %+v", res)
	}
}
