// Package control is the fleet's online control plane: feedback
// controllers that react to load as it arrives, where the sizing layer's
// capacity oracles decide offline with the whole day's workload in hand.
// Three controllers cooperate over internal/shard's control hooks:
//
//   - Admission queues or rejects logins when the fleet's marginal-p95
//     estimate says the next session would blow the latency budget — the
//     "busy, please hold" gate that trades login-screen queueing for
//     protecting everyone already logged in.
//   - Shedder degrades per-machine session quality (frame rate, ambient
//     traffic, encode effort — see server.DegradeTiers) when a machine's
//     p95 estimate crosses its high-water mark, and restores quality with
//     hysteresis once it falls below the low-water mark.
//   - Autoscaler powers standby machines on as occupancy climbs toward
//     the active fleet's memory capacity, and drains machines as it
//     falls — capacity follows the storm instead of being provisioned
//     for it.
//
// Every decision is a deterministic function of the FleetView (occupancy
// counts and cached probe estimates), made inside the single-threaded
// population walk, so a controlled run is bit-identical at any worker
// count. Controllers fail open: on the first probe error the gate admits
// everything and the actuators stop acting, and Run surfaces the error.
package control

import (
	"fmt"

	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// Admission gates logins on the marginal-p95 estimate: what would the
// best placeable machine's p95 become if it took one more session?
type Admission struct {
	// Budget is the marginal-p95 ceiling; at or under it the arrival is
	// admitted. 0 means sizing.DefaultLatencyBudget.
	Budget simclock.Duration
	// Retry is the deferral quantum: a gated arrival re-presents this
	// much later and is decided afresh. 0 means 2 s.
	Retry simclock.Duration
	// MaxWait caps an arrival's total login-screen queueing; an arrival
	// that has already waited this long is rejected instead of deferred
	// again. 0 means 30 s.
	MaxWait simclock.Duration
}

func (a Admission) budget() float64 {
	if a.Budget > 0 {
		return a.Budget.Milliseconds()
	}
	return sizing.DefaultLatencyBudget.Milliseconds()
}

func (a Admission) retry() simclock.Duration {
	if a.Retry > 0 {
		return a.Retry
	}
	return 2 * simclock.Second
}

func (a Admission) maxWait() simclock.Duration {
	if a.MaxWait > 0 {
		return a.MaxWait
	}
	return 30 * simclock.Second
}

// Shedder degrades a machine's quality tier when its p95 estimate
// crosses HighMs and restores one tier once it falls below LowMs. The
// gap between the two marks is the hysteresis band that keeps the tier
// from flapping on every arrival.
type Shedder struct {
	// HighMs and LowMs are the degrade and restore thresholds on a
	// machine's current-population p95 estimate, in milliseconds.
	// Defaults: the sizing latency budget, and half of it.
	HighMs float64
	LowMs  float64
	// MaxTier caps how far down the server.DegradeTiers ladder the
	// shedder will go; 0 means the whole ladder.
	MaxTier int
}

func (sh Shedder) high() float64 {
	if sh.HighMs > 0 {
		return sh.HighMs
	}
	return sizing.DefaultLatencyBudget.Milliseconds()
}

func (sh Shedder) low() float64 {
	if sh.LowMs > 0 {
		return sh.LowMs
	}
	return sh.high() / 2
}

func (sh Shedder) maxTier() int {
	if sh.MaxTier > 0 {
		return sh.MaxTier
	}
	return len(server.DegradeTiers) - 1
}

// Autoscaler sizes the powered-on fleet to occupancy: when the admitted
// population climbs past UpFrac of the active machines' summed memory
// capacity it powers on the next standby spare (available after
// ProvisionDelay), and when it falls below DownFrac it drains the
// highest-numbered machine — closed to arrivals, sessions riding out.
type Autoscaler struct {
	// UpFrac and DownFrac are occupancy thresholds as fractions of the
	// active fleet's §5.1.1 memory capacity. Defaults 0.85 and 0.5.
	UpFrac   float64
	DownFrac float64
	// ProvisionDelay is how long a powered-on machine takes to boot and
	// join. 0 means 30 s — racks don't boot instantly.
	ProvisionDelay simclock.Duration
}

func (as Autoscaler) upFrac() float64 {
	if as.UpFrac > 0 {
		return as.UpFrac
	}
	return 0.85
}

func (as Autoscaler) downFrac() float64 {
	if as.DownFrac > 0 {
		return as.DownFrac
	}
	return 0.5
}

func (as Autoscaler) delay() simclock.Duration {
	if as.ProvisionDelay > 0 {
		return as.ProvisionDelay
	}
	return 30 * simclock.Second
}

// Config selects which controllers run; a nil field leaves that control
// axis uncontrolled.
type Config struct {
	Admission  *Admission
	Shedder    *Shedder
	Autoscaler *Autoscaler
}

// runner is one run's controller state: the fail-open error latch and
// the autoscaler's record of which machines it has started.
type runner struct {
	cfg Config
	err error
	// started marks machines powered on or provisioning — the
	// autoscaler's own bookkeeping, since a provisioning machine is not
	// yet placeable but must count as capacity on the way.
	started []bool
}

// fail latches the first controller error; every controller checks the
// latch and stands down once it is set (fail open: an estimator that
// breaks must not keep gating users out).
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *runner) admit(now, planned simclock.Time, v *shard.FleetView) shard.AdmitDecision {
	a := r.cfg.Admission
	if a == nil || r.err != nil {
		return shard.AdmitDecision{}
	}
	best, ok, err := v.BestMarginalP95(now)
	if err != nil {
		r.fail(err)
		return shard.AdmitDecision{}
	}
	if ok && best <= a.budget() {
		return shard.AdmitDecision{}
	}
	// Over budget (or nowhere to place at all): queue, unless the user
	// has already waited out their patience.
	if now.Sub(planned) >= a.maxWait() {
		return shard.AdmitDecision{Reject: true}
	}
	return shard.AdmitDecision{Defer: a.retry()}
}

func (r *runner) placed(now simclock.Time, v *shard.FleetView, j int) {
	if r.err != nil {
		return
	}
	r.shed(now, v, j)
	r.scale(now, v)
}

func (r *runner) released(now simclock.Time, v *shard.FleetView, j int) {
	if r.err != nil {
		return
	}
	r.shed(now, v, j)
	r.scale(now, v)
}

// shed moves machine j one rung down the quality ladder when its p95
// estimate is over the high-water mark, one rung up when under the low
// one. One rung per occupancy change bounds the reaction rate; the
// High/Low gap keeps it from oscillating between them.
func (r *runner) shed(now simclock.Time, v *shard.FleetView, j int) {
	sh := r.cfg.Shedder
	if sh == nil {
		return
	}
	p, err := v.ShardP95(j)
	if err != nil {
		r.fail(err)
		return
	}
	t := v.Tier(j)
	switch {
	case p > sh.high() && t < sh.maxTier():
		v.SetTier(now, j, t+1)
	case p < sh.low() && t > 0:
		v.SetTier(now, j, t-1)
	}
}

// scale compares the admitted population against the active fleet's
// memory capacity. Growing pressure first reopens draining machines
// (instant), then powers on the next standby spare (after the
// provisioning delay); slack pressure drains the highest-numbered open
// machine, always leaving at least one.
func (r *runner) scale(now simclock.Time, v *shard.FleetView) {
	as := r.cfg.Autoscaler
	if as == nil {
		return
	}
	m := v.Machines()
	if r.started == nil {
		r.started = make([]bool, m)
		for j := 0; j < m; j++ {
			r.started[j] = v.Placeable(j, now) || v.Draining(j)
		}
	}
	capacity, open := 0, 0
	for j := 0; j < m; j++ {
		if !r.started[j] || !v.Alive(j) || v.Draining(j) {
			continue
		}
		capacity += v.MemoryCapacity(j)
		open++
	}
	users := v.TotalOccupancy()
	if capacity == 0 || float64(users) > as.upFrac()*float64(capacity) {
		// Reopen a draining machine first — it is already warm.
		for j := 0; j < m; j++ {
			if r.started[j] && v.Alive(j) && v.Draining(j) {
				v.Undrain(j)
				return
			}
		}
		for j := 0; j < m; j++ {
			if !r.started[j] && v.Alive(j) {
				if v.PowerOn(j, now.Add(as.delay())) {
					r.started[j] = true
				}
				return
			}
		}
		return
	}
	if open > 1 && float64(users) < as.downFrac()*float64(capacity) {
		for j := m - 1; j >= 0; j-- {
			if r.started[j] && v.Alive(j) && !v.Draining(j) {
				// Keep the drain only if the remaining capacity still
				// clears the high-water mark; otherwise the fleet would
				// flap between draining and reopening the same machine.
				rest := capacity - v.MemoryCapacity(j)
				if rest > 0 && float64(users) <= as.upFrac()*float64(rest) {
					v.Drain(j)
				}
				return
			}
		}
	}
}

// Hooks builds the shard-layer control hooks for the configured
// controllers, plus the error latch Run checks afterward. Most callers
// want Run; Hooks is for composing a controlled shard.Config by hand.
func (c Config) Hooks() (*shard.ControlHooks, *error) {
	r := &runner{cfg: c}
	h := &shard.ControlHooks{}
	if c.Admission != nil {
		h.Admit = r.admit
	}
	if c.Shedder != nil || c.Autoscaler != nil {
		h.Placed = r.placed
		h.Released = r.released
	}
	return h, &r.err
}

// Run executes a fleet run under the configured controllers and surfaces
// the first controller error alongside the result. The hooks run inside
// the deterministic plan walk, so the result is bit-identical at any
// cfg.Workers.
func Run(fleet shard.Config, c Config) (shard.FleetResult, error) {
	if c.Admission == nil && c.Shedder == nil && c.Autoscaler == nil {
		return shard.FleetResult{}, fmt.Errorf("control: no controller configured")
	}
	hooks, errp := c.Hooks()
	fleet.Control = hooks
	res, err := shard.Run(fleet)
	if err != nil {
		return res, err
	}
	return res, *errp
}
