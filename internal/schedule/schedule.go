// Package schedule generates time-varying session arrival plans — the
// shape of a real terminal-server day instead of the memoryless churn the
// lifecycle layer started with. A Profile is a piecewise-constant arrival
// rate timeline plus a stay-duration distribution; Compile expands it
// deterministically into explicit login/logout episodes that the server
// layer runs as a session plan and the shard layer routes through its live
// placement policy.
//
// The paper's whole argument (§5) is that interactive load is bursty and
// correlated: a 9 AM login storm is not a Poisson trickle, and failover
// under a storm is the stress case SLIM's stateless-client design argues
// about. Profiles express exactly that — OfficeDay's morning storm, lunch
// dip and close-of-day exodus, ShiftChange's synchronized handovers — while
// Flat reproduces the legacy exponential churn draw-for-draw, so the
// refactor is behavior-preserving by construction.
//
// Determinism contract: every seat owns a private random stream derived
// from (seed, Salt, seat), so the plan for N seats is a prefix of the plan
// for N+1 (the property capacity bisection relies on), a replacement keeps
// its seat's stream, and a compiled plan is bit-for-bit reproducible.
package schedule

import (
	"fmt"
	"math"

	"thinbench/internal/simclock"
)

// Salt separates schedule compilation's random streams from every other
// consumer of a configuration seed. It equals the legacy churn salt
// ("life") so a Flat profile's draws land on exactly the streams the
// exponential churn process used.
const Salt = 0x6c696665

// maxSessionsPerSeat bounds one seat's episode count, a guard against
// degenerate profiles (near-zero stays under Replace) compiling into
// unbounded plans. Real profiles sit orders of magnitude below it.
const maxSessionsPerSeat = 100_000

// Session is one login/logout episode of one seat, in span-relative
// virtual time. It is the schedule layer's view of server.Lifecycle: the
// server package converts (it cannot be imported here without a cycle).
type Session struct {
	// Login is the arrival instant; zero means present from the start.
	Login simclock.Time
	// Logout is the departure instant; zero means the session stays to the
	// end of the span.
	Logout simclock.Time
	// Seat is the 1-based random-stream identity shared by every episode
	// of the same seat.
	Seat int
}

// Segment is one piece of the arrival-rate timeline.
type Segment struct {
	// From is where the segment starts, as a fraction of the span in
	// [0, 1). The segment extends to the next segment's From (or to the
	// end of the span). Arrival rate is zero before the first segment.
	From float64
	// Rate is the segment's relative arrival intensity. Only ratios
	// matter: Compile normalizes the timeline into an arrival-time
	// distribution, so doubling every Rate changes nothing.
	Rate float64
}

// Stay distribution kinds.
const (
	StayExp       = "exp"
	StayLognorm   = "lognorm"
	StayQuantiles = "quantiles"
)

// Stay is the logged-in duration distribution of a profile's sessions.
// Durations are absolute virtual time; the built-in profiles are tuned for
// the repo's canonical ~10-second measurement spans.
type Stay struct {
	// Kind selects the distribution: StayExp, StayLognorm, or
	// StayQuantiles.
	Kind string
	// Mean is the exponential mean (StayExp). Drawn with the same
	// generator call the legacy churn process used, which is what makes
	// Flat reproduce it bit-for-bit.
	Mean simclock.Duration
	// Median and Sigma shape the lognormal (StayLognorm): Median is the
	// 50th-percentile stay and Sigma the log-space standard deviation.
	Median simclock.Duration
	Sigma  float64
	// Quantiles are evenly spaced stay quantiles (StayQuantiles): a draw
	// picks a uniform position and interpolates linearly, so any measured
	// stay distribution can be replayed from its quantile sketch.
	Quantiles []simclock.Duration
}

// Profile is a time-varying arrival/occupancy model: who is logged in
// when, expressed as machine-free fractions of a measurement span so the
// same profile compiles onto any span and any seat count.
type Profile struct {
	// Name identifies the profile in the codec and in bench output. It
	// must be non-empty and use only [A-Za-z0-9._-].
	Name string
	// StartFrac is the fraction of seats occupied when the span opens
	// (sessions present from time zero, paying no login cost — the
	// overnight population). Seats 0..round(StartFrac*seats)-1 start
	// occupied, so a StartFrac-1 profile's initial population matches the
	// static model seat for seat.
	StartFrac float64
	// Replace makes every departure an immediate handover: the next
	// shift's user takes the seat at the same instant, the legacy churn
	// semantics. Without it a departed seat re-arrives through the
	// remaining timeline mass (back from lunch) or never.
	Replace bool
	// Timeline is the piecewise-constant relative arrival intensity, in
	// strictly increasing From order. Empty means no timed arrivals: every
	// session comes from StartFrac (and Replace handovers).
	Timeline []Segment
	// Stay is the logged-in duration distribution.
	Stay Stay
}

// Validate checks the profile's shape: a malformed timeline (negative
// rate, unsorted breakpoints, zero total weight) or a degenerate stay
// distribution is rejected here, once, rather than surfacing as a silent
// mis-compile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("schedule: profile has no name")
	}
	for _, c := range p.Name {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-') {
			return fmt.Errorf("schedule: profile name %q has characters outside [A-Za-z0-9._-]", p.Name)
		}
	}
	if !(p.StartFrac >= 0 && p.StartFrac <= 1) {
		return fmt.Errorf("schedule: start fraction %v outside [0, 1]", p.StartFrac)
	}
	total := 0.0
	for i, s := range p.Timeline {
		if !(s.From >= 0 && s.From < 1) {
			return fmt.Errorf("schedule: segment %d starts at %v, outside [0, 1)", i, s.From)
		}
		if i > 0 && !(s.From > p.Timeline[i-1].From) {
			return fmt.Errorf("schedule: segment %d at %v does not follow segment %d at %v",
				i, s.From, i-1, p.Timeline[i-1].From)
		}
		if !(s.Rate >= 0) || math.IsInf(s.Rate, 0) {
			return fmt.Errorf("schedule: segment %d has rate %v, want finite and >= 0", i, s.Rate)
		}
		end := 1.0
		if i+1 < len(p.Timeline) {
			end = p.Timeline[i+1].From
		}
		total += s.Rate * (end - s.From)
	}
	if len(p.Timeline) > 0 && !(total > 0) {
		return fmt.Errorf("schedule: timeline has zero total weight")
	}
	if len(p.Timeline) == 0 && !(p.StartFrac > 0) {
		return fmt.Errorf("schedule: no timeline and no starting occupancy — the profile admits no sessions")
	}
	return p.Stay.validate()
}

// minStayScale is the smallest stay scale (exponential mean, lognormal
// median, top quantile) a profile may declare. Stays below the clock's
// millisecond neighborhood mostly truncate to zero-length sessions, and
// under Replace those loop at a single instant — a parseable profile
// must not be able to compile into a plan of hundreds of thousands of
// same-tick episodes.
const minStayScale = simclock.Millisecond

func (s Stay) validate() error {
	switch s.Kind {
	case StayExp:
		if s.Mean < minStayScale {
			return fmt.Errorf("schedule: exponential stay mean %v below the %v minimum", s.Mean, minStayScale)
		}
	case StayLognorm:
		if s.Median < minStayScale {
			return fmt.Errorf("schedule: lognormal stay median %v below the %v minimum", s.Median, minStayScale)
		}
		if !(s.Sigma >= 0) || math.IsInf(s.Sigma, 0) {
			return fmt.Errorf("schedule: lognormal sigma %v, want finite and >= 0", s.Sigma)
		}
	case StayQuantiles:
		if len(s.Quantiles) == 0 {
			return fmt.Errorf("schedule: empty stay quantile list")
		}
		for i, q := range s.Quantiles {
			if q < 0 {
				return fmt.Errorf("schedule: stay quantile %d is negative (%v)", i, q)
			}
			if i > 0 && q < s.Quantiles[i-1] {
				return fmt.Errorf("schedule: stay quantiles not non-decreasing at %d (%v after %v)",
					i, q, s.Quantiles[i-1])
			}
		}
		if s.Quantiles[len(s.Quantiles)-1] < minStayScale {
			return fmt.Errorf("schedule: top stay quantile %v below the %v minimum (near-empty stays)",
				s.Quantiles[len(s.Quantiles)-1], minStayScale)
		}
	default:
		return fmt.Errorf("schedule: unknown stay kind %q", s.Kind)
	}
	return nil
}

// startOccupied is how many of the profile's seats hold a session when the
// span opens.
func (p Profile) startOccupied(seats int) int {
	return int(p.StartFrac*float64(seats) + 0.5)
}

// timelineCDF is the compiled arrival-time distribution: per-segment mass
// and the cumulative mass before each segment, in un-normalized weight
// units to keep the float arithmetic simple and exact-enough.
type timelineCDF struct {
	from  []float64 // segment starts, plus a trailing 1.0 sentinel
	rate  []float64
	cum   []float64 // mass strictly before segment i
	total float64
}

func newTimelineCDF(tl []Segment) timelineCDF {
	c := timelineCDF{
		from: make([]float64, len(tl)+1),
		rate: make([]float64, len(tl)),
		cum:  make([]float64, len(tl)),
	}
	for i, s := range tl {
		c.from[i] = s.From
		c.rate[i] = s.Rate
	}
	c.from[len(tl)] = 1
	for i := range tl {
		c.cum[i] = c.total
		c.total += c.rate[i] * (c.from[i+1] - c.from[i])
	}
	return c
}

// at is the arrival mass accumulated strictly before fraction x.
func (c timelineCDF) at(x float64) float64 {
	mass := 0.0
	for i := range c.rate {
		if x <= c.from[i] {
			break
		}
		end := c.from[i+1]
		if x < end {
			end = x
		}
		mass += c.rate[i] * (end - c.from[i])
	}
	return mass
}

// quantile maps an arrival mass target in [0, total) back to the span
// fraction where it accrues.
func (c timelineCDF) quantile(target float64) float64 {
	for i := range c.rate {
		w := c.rate[i] * (c.from[i+1] - c.from[i])
		if w <= 0 {
			continue
		}
		if target < c.cum[i]+w || i == len(c.rate)-1 {
			f := c.from[i] + (target-c.cum[i])/c.rate[i]
			if f < c.from[i] {
				f = c.from[i]
			}
			if f > c.from[i+1] {
				f = c.from[i+1]
			}
			return f
		}
	}
	return 1
}

// Compile expands the profile into an explicit session plan for the given
// seat count and span. The plan lists each seat's first episode in seat
// order, then every later episode in (seat, generation) order — exactly
// the layout the legacy churn generator produced, so a Flat profile's plan
// is indistinguishable from the process it replaced. Compile validates the
// profile and is deterministic in (profile, seats, span, seed).
//
// Seat streams make the plan for N seats a per-seat prefix of the plan
// for N+1. With a fractional StartFrac the one boundary seat that flips
// from vacant to occupied as N grows is the only exception — profiles
// with StartFrac 0 or 1 have the property exactly.
func Compile(p Profile, seats int, span simclock.Duration, seed uint64) ([]Session, error) {
	c, err := NewCompiled(p)
	if err != nil {
		return nil, err
	}
	if seats < 1 {
		return nil, nil
	}
	out := make([]Session, 0, seats)
	var later []Session
	for seat := 0; seat < seats; seat++ {
		ss := c.SeatSessions(seat, seats, span, seed)
		if len(ss) == 0 {
			continue
		}
		out = append(out, ss[0])
		later = append(later, ss[1:]...)
	}
	return append(out, later...), nil
}

// Compiled is a validated profile whose arrival-time distribution has been
// built once, for callers that expand many seats from one profile — the
// per-seat draw sequence is identical to Compile's, only the repeated
// timeline compilation is saved.
type Compiled struct {
	p   Profile
	cdf timelineCDF
}

// NewCompiled validates the profile and compiles its timeline.
func NewCompiled(p Profile) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Compiled{p: p, cdf: newTimelineCDF(p.Timeline)}, nil
}

// SeatSessions is SeatSessions on the pre-compiled profile.
func (c *Compiled) SeatSessions(seat, seats int, span simclock.Duration, seed uint64) []Session {
	if seat < 0 || seat >= seats {
		return nil
	}
	return seatSessions(c.p, c.cdf, seat, seats, span, seed)
}

// SeatSessions is one seat's slice of Compile's plan: every episode the
// seat runs through, in time order. The fleet layer uses it to route each
// episode's arrival through the live placement policy while keeping the
// per-seat stream (and with it the prefix property) intact.
func SeatSessions(p Profile, seat, seats int, span simclock.Duration, seed uint64) ([]Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if seat < 0 || seat >= seats {
		return nil, nil
	}
	return seatSessions(p, newTimelineCDF(p.Timeline), seat, seats, span, seed), nil
}

// seatSessions generates one validated seat's episodes. The draw sequence
// is the compatibility surface: an occupied seat draws no arrival, each
// episode draws exactly one stay, and a Replace handover draws nothing —
// which makes a Flat seat's stream identical to the legacy churn seat's.
func seatSessions(p Profile, cdf timelineCDF, seat, seats int, span simclock.Duration, seed uint64) []Session {
	rng := simclock.NewRand(simclock.DeriveSeed(simclock.DeriveSeed(seed, Salt), uint64(seat)))
	spanF := float64(span)

	var out []Session
	var at simclock.Time
	if seat >= p.startOccupied(seats) {
		// A vacant seat's first login lands where its uniform draw falls
		// on the arrival-time distribution — a storm segment catches most
		// of them, which is the whole point.
		if cdf.total <= 0 {
			return nil
		}
		at = simclock.Time(cdf.quantile(rng.Float64()*cdf.total) * spanF)
		if at >= simclock.Time(span) {
			return nil
		}
	}
	for len(out) < maxSessionsPerSeat {
		stay := p.Stay.draw(rng)
		end := at.Add(stay)
		s := Session{Login: at, Seat: seat + 1}
		if end < simclock.Time(span) {
			s.Logout = end
		}
		out = append(out, s)
		if s.Logout == 0 {
			return out // stays to the end of the span
		}
		if p.Replace {
			at = end
			continue
		}
		// Re-arrive through the timeline mass remaining after the logout:
		// zero remaining mass (nothing after close of day) retires the
		// seat for good.
		base := cdf.at(float64(end) / spanF)
		rem := cdf.total - base
		if !(rem > 0) {
			return out
		}
		target := base + rng.Float64()*rem
		if target >= cdf.total {
			target = cdf.total
		}
		next := simclock.Time(cdf.quantile(target) * spanF)
		if next < end {
			next = end // rounding may land a hair before the logout
		}
		if next >= simclock.Time(span) {
			return out
		}
		at = next
	}
	return out
}

// draw samples one stay. Pathological magnitudes clamp to "longer than any
// span" rather than overflowing virtual time.
func (s Stay) draw(rng *simclock.Rand) simclock.Duration {
	const longest = simclock.Duration(1) << 60
	switch s.Kind {
	case StayExp:
		return rng.ExpDuration(s.Mean)
	case StayLognorm:
		v := math.Exp(rng.Normal(math.Log(float64(s.Median)), s.Sigma))
		if !(v >= 0) {
			return 0
		}
		if v >= float64(longest) {
			return longest
		}
		return simclock.Duration(v)
	case StayQuantiles:
		q := s.Quantiles
		if len(q) == 1 {
			return q[0]
		}
		pos := rng.Float64() * float64(len(q)-1)
		i := int(pos)
		if i >= len(q)-1 {
			return q[len(q)-1]
		}
		f := pos - float64(i)
		return q[i] + simclock.Duration(f*float64(q[i+1]-q[i]))
	}
	panic("schedule: draw on unvalidated stay kind " + s.Kind)
}
