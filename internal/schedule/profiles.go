package schedule

import "thinbench/internal/simclock"

// DefaultFlatRate is the turnover rate the named "flat" profile compiles
// at when nothing more specific is asked for: the canonical mid-grid churn
// rate of the repo's BENCH_churn trajectory.
const DefaultFlatRate = 0.15

// Flat is the legacy synthetic churn as a profile: every seat occupied
// from time zero, exponential stays with mean 1/ratePerSec, and each
// departure an immediate handover to the next user. Compiled at rate r it
// reproduces the Config.Churn plan draw-for-draw — the property test and
// the BENCH_churn baseline both pin it.
func Flat(ratePerSec float64) Profile {
	var mean simclock.Duration
	if ratePerSec > 0 {
		mean = simclock.Duration(1e6 / ratePerSec)
	}
	return Profile{
		Name:      "flat",
		StartFrac: 1,
		Replace:   true,
		Stay:      Stay{Kind: StayExp, Mean: mean},
	}
}

// OfficeDay is a white-collar day compressed onto the span: the span maps
// 7:30 to 18:00, so the 9 AM login storm lands around 0.13-0.19 of the
// way in, the lunch dip at 0.43-0.52, and after the 17:00 close (0.905)
// nobody logs in again. Stays are lognormal around a 3.2-second median —
// tuned, like every built-in, for the repo's canonical ~10-second spans —
// so the morning crowd naturally thins around lunch and drains by close.
//
//	rate
//	 8 |        ##
//	   |        ##
//	   |        ##
//	 2 |        ##
//	 1 |        ####____      ____
//	   |____####        \____/    \________
//	 0 +----+---+-------+----+----+-------+--
//	   7:30 9am         noon 1pm          5pm
func OfficeDay() Profile {
	return Profile{
		Name: "officeday",
		// A sliver of the floor — night owls, ops — is already logged in
		// when the span opens, so the pre-storm baseline has real echoes
		// to measure a failover excursion against.
		StartFrac: 0.15,
		Timeline: []Segment{
			{From: 0, Rate: 0.5},     // early birds, 7:30-8:50
			{From: 0.127, Rate: 8},   // the 9 AM storm, 8:50-9:30
			{From: 0.19, Rate: 1.1},  // late-morning trickle
			{From: 0.43, Rate: 0.25}, // lunch dip, noon-1
			{From: 0.524, Rate: 1.6}, // back from lunch
			{From: 0.62, Rate: 0.45}, // afternoon
			{From: 0.905, Rate: 0},   // 5 PM: the day is over
		},
		Stay: Stay{Kind: StayLognorm, Median: 3200 * simclock.Millisecond, Sigma: 0.45},
	}
}

// ShiftChange is a round-the-clock floor run in three shifts: most of the
// off-going shift is aboard when the span opens, and the two relief
// shifts arrive in tight synchronized waves at the 1/3 and 2/3 marks,
// staying about one shift each — the handover surges a 24x7 operation
// pays three times a day.
func ShiftChange() Profile {
	return Profile{
		Name:      "shiftchange",
		StartFrac: 0.85,
		Timeline: []Segment{
			{From: 0, Rate: 0.15}, // stragglers between handovers
			{From: 0.30, Rate: 6}, // second-shift wave
			{From: 0.36, Rate: 0.15},
			{From: 0.63, Rate: 6}, // third-shift wave
			{From: 0.69, Rate: 0.15},
			{From: 0.9, Rate: 0}, // nobody starts a shift at the end
		},
		Stay: Stay{Kind: StayLognorm, Median: 3300 * simclock.Millisecond, Sigma: 0.2},
	}
}

// Builtins lists the built-in profile names in canonical order.
func Builtins() []string { return []string{"flat", "officeday", "shiftchange"} }

// Builtin resolves a built-in profile by name; the boolean reports whether
// the name is known. "flat" compiles at DefaultFlatRate — use Flat
// directly for another rate.
func Builtin(name string) (Profile, bool) {
	switch name {
	case "flat":
		return Flat(DefaultFlatRate), true
	case "officeday":
		return OfficeDay(), true
	case "shiftchange":
		return ShiftChange(), true
	}
	return Profile{}, false
}
