package schedule

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"thinbench/internal/simclock"
)

// Format renders the profile in the schedule text format, one directive
// per line:
//
//	profile officeday
//	start 0
//	replace off
//	segment 0.127 8
//	segment 0.19 1.1
//	stay lognorm median=3200000us sigma=0.45
//
// Durations are integer microseconds; floats use the shortest exact
// decimal form, so Parse(Format(p)) reproduces p field-for-field — the
// round-trip property the fuzz test drives.
func Format(p Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s\n", p.Name)
	fmt.Fprintf(&b, "start %s\n", fmtFloat(p.StartFrac))
	if p.Replace {
		b.WriteString("replace on\n")
	} else {
		b.WriteString("replace off\n")
	}
	for _, s := range p.Timeline {
		fmt.Fprintf(&b, "segment %s %s\n", fmtFloat(s.From), fmtFloat(s.Rate))
	}
	switch p.Stay.Kind {
	case StayExp:
		fmt.Fprintf(&b, "stay exp mean=%s\n", fmtDur(p.Stay.Mean))
	case StayLognorm:
		fmt.Fprintf(&b, "stay lognorm median=%s sigma=%s\n", fmtDur(p.Stay.Median), fmtFloat(p.Stay.Sigma))
	case StayQuantiles:
		b.WriteString("stay quantiles")
		for _, q := range p.Stay.Quantiles {
			b.WriteByte(' ')
			b.WriteString(fmtDur(q))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func fmtDur(d simclock.Duration) string { return strconv.FormatInt(int64(d), 10) + "us" }

// Parse reads the schedule text format: directives one per line, blank
// lines and #-comments ignored. The parsed profile is validated, so a
// malformed timeline (negative rates, unsorted breakpoints, zero total
// weight) is an error here, not a mis-compile later.
func Parse(text string) (Profile, error) {
	var p Profile
	var haveProfile, haveStart, haveReplace, haveStay bool
	for ln, raw := range strings.Split(text, "\n") {
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i] // trailing comment
		}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		bad := func(format string, args ...any) (Profile, error) {
			return Profile{}, fmt.Errorf("schedule: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "profile":
			if haveProfile {
				return bad("duplicate profile directive")
			}
			if len(fields) != 2 {
				return bad("want 'profile <name>'")
			}
			haveProfile, p.Name = true, fields[1]
		case "start":
			if haveStart {
				return bad("duplicate start directive")
			}
			if len(fields) != 2 {
				return bad("want 'start <fraction>'")
			}
			f, err := parseFloat(fields[1])
			if err != nil {
				return bad("bad start fraction %q", fields[1])
			}
			haveStart, p.StartFrac = true, f
		case "replace":
			if haveReplace {
				return bad("duplicate replace directive")
			}
			if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
				return bad("want 'replace on' or 'replace off'")
			}
			haveReplace, p.Replace = true, fields[1] == "on"
		case "segment":
			if len(fields) != 3 {
				return bad("want 'segment <from> <rate>'")
			}
			from, err1 := parseFloat(fields[1])
			rate, err2 := parseFloat(fields[2])
			if err1 != nil || err2 != nil {
				return bad("bad segment numbers %q %q", fields[1], fields[2])
			}
			p.Timeline = append(p.Timeline, Segment{From: from, Rate: rate})
		case "stay":
			if haveStay {
				return bad("duplicate stay directive")
			}
			if len(fields) < 2 {
				return bad("want 'stay exp|lognorm|quantiles ...'")
			}
			haveStay = true
			switch fields[1] {
			case StayExp:
				p.Stay.Kind = StayExp
				if err := parseKV(fields[2:], map[string]func(string) error{
					"mean": func(v string) (err error) { p.Stay.Mean, err = parseDur(v); return },
				}); err != nil {
					return bad("%v", err)
				}
			case StayLognorm:
				p.Stay.Kind = StayLognorm
				if err := parseKV(fields[2:], map[string]func(string) error{
					"median": func(v string) (err error) { p.Stay.Median, err = parseDur(v); return },
					"sigma":  func(v string) (err error) { p.Stay.Sigma, err = parseFloat(v); return },
				}); err != nil {
					return bad("%v", err)
				}
			case StayQuantiles:
				p.Stay.Kind = StayQuantiles
				for _, f := range fields[2:] {
					q, err := parseDur(f)
					if err != nil {
						return bad("bad stay quantile %q", f)
					}
					p.Stay.Quantiles = append(p.Stay.Quantiles, q)
				}
			default:
				return bad("unknown stay kind %q", fields[1])
			}
		default:
			return bad("unknown directive %q", fields[0])
		}
	}
	if !haveProfile {
		return Profile{}, fmt.Errorf("schedule: missing profile directive")
	}
	if !haveStay {
		return Profile{}, fmt.Errorf("schedule: missing stay directive")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseKV consumes strictly "key=value" fields, each key exactly once.
func parseKV(fields []string, keys map[string]func(string) error) error {
	seen := map[string]bool{}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		set := keys[k]
		if !ok || set == nil {
			return fmt.Errorf("bad argument %q", f)
		}
		if seen[k] {
			return fmt.Errorf("duplicate argument %q", k)
		}
		seen[k] = true
		if err := set(v); err != nil {
			return fmt.Errorf("bad %s %q", k, v)
		}
	}
	for k := range keys {
		if !seen[k] {
			return fmt.Errorf("missing argument %q", k)
		}
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}

// parseDur reads a duration with a us/ms/s suffix. The value must land
// inside the int64 microsecond range: the explicit bound keeps the
// float-to-integer conversion well-defined instead of leaning on the
// platform's out-of-range behavior.
func parseDur(s string) (simclock.Duration, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "us"):
		s = strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e3
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1e6
	default:
		return 0, fmt.Errorf("duration %q needs a us, ms, or s suffix", s)
	}
	f, err := parseFloat(s)
	if err != nil {
		return 0, err
	}
	v := f * mult
	const bound = float64(int64(1) << 62)
	if !(v >= -bound && v <= bound) {
		return 0, fmt.Errorf("duration %q outside the representable range", s)
	}
	return simclock.Duration(v), nil
}
