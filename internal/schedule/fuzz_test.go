package schedule

import (
	"reflect"
	"testing"

	"thinbench/internal/simclock"
)

func seedCorpus(f *testing.F) {
	for _, name := range Builtins() {
		p, _ := Builtin(name)
		f.Add(Format(p))
	}
	f.Add(Format(Profile{
		Name:      "measured",
		StartFrac: 0.3,
		Timeline:  []Segment{{From: 0, Rate: 2}, {From: 0.4, Rate: 0.1}, {From: 0.6, Rate: 5}},
		Stay: Stay{Kind: StayQuantiles, Quantiles: []simclock.Duration{
			0, 150 * simclock.Millisecond, 900 * simclock.Millisecond, 4 * simclock.Second}},
	}))
	f.Add("profile p\nsegment 0 1\nstay exp mean=2s\n")
	f.Add("profile p\nstart 1\nreplace on\nstay exp mean=333333us\n")
}

// FuzzParseFormat drives the codec round trip: any text Parse accepts must
// Format back into text that reparses to the identical profile.
func FuzzParseFormat(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		p1, err := Parse(text)
		if err != nil {
			return // malformed input is allowed to be rejected, not to panic
		}
		if err := p1.Validate(); err != nil {
			t.Fatalf("Parse returned an invalid profile: %v\ninput:\n%s", err, text)
		}
		formatted := Format(p1)
		p2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted profile does not reparse: %v\nformatted:\n%s", err, formatted)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round trip diverged\nfirst  %+v\nsecond %+v\nformatted:\n%s", p1, p2, formatted)
		}
	})
}

// FuzzCompile compiles any parseable profile at a small seat count and
// asserts the plan invariants the server and fleet layers rely on:
// in-span logins, ordered per-seat episodes, valid seat stamps, and
// determinism.
func FuzzCompile(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		const seats = 5
		span := 4 * simclock.Second
		plan, err := Compile(p, seats, span, 99)
		if err != nil {
			t.Fatalf("validated profile failed to compile: %v", err)
		}
		again, _ := Compile(p, seats, span, 99)
		if !reflect.DeepEqual(plan, again) {
			t.Fatal("identical compiles diverged")
		}
		last := map[int]simclock.Time{}
		ended := map[int]bool{}
		for i, s := range plan {
			if s.Login < 0 || s.Login >= simclock.Time(span) {
				t.Fatalf("plan[%d]: login %v outside [0, %v)", i, s.Login, span)
			}
			if s.Logout != 0 && s.Logout < s.Login {
				t.Fatalf("plan[%d]: logout %v before login %v", i, s.Logout, s.Login)
			}
			if s.Seat < 1 || s.Seat > seats {
				t.Fatalf("plan[%d]: seat %d outside [1, %d]", i, s.Seat, seats)
			}
			if ended[s.Seat] {
				t.Fatalf("plan[%d]: seat %d has an episode after one that stays to the end", i, s.Seat)
			}
			if end, ok := last[s.Seat]; ok && s.Login < end {
				t.Fatalf("plan[%d]: seat %d episode at %v overlaps previous ending %v", i, s.Seat, s.Login, end)
			}
			if s.Logout == 0 {
				ended[s.Seat] = true
			}
			last[s.Seat] = s.Logout
		}
	})
}
