package schedule

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"thinbench/internal/simclock"
)

const testSpan = 10 * simclock.Second

// legacyChurnPlan is the pre-schedule exponential churn generator,
// verbatim: per-seat streams salted with "life", one exponential stay per
// episode, immediate replacement, initial sessions first and replacements
// in (seat, generation) order. Flat must reproduce it draw for draw.
func legacyChurnPlan(users int, ratePerSec float64, span simclock.Duration, seed uint64) []Session {
	out := make([]Session, users)
	mean := simclock.Duration(1e6 / ratePerSec)
	var replacements []Session
	for seat := 0; seat < users; seat++ {
		rng := simclock.NewRand(simclock.DeriveSeed(simclock.DeriveSeed(seed, 0x6c696665), uint64(seat)))
		at := simclock.Time(0)
		for gen := 0; ; gen++ {
			end := at.Add(rng.ExpDuration(mean))
			lc := Session{Login: at, Seat: seat + 1}
			if end < simclock.Time(span) {
				lc.Logout = end
			}
			if gen == 0 {
				out[seat] = lc
			} else {
				replacements = append(replacements, lc)
			}
			if lc.Logout == 0 {
				break
			}
			at = end
		}
	}
	return append(out, replacements...)
}

// TestFlatCompilesLegacyChurnPlan is the plan-level half of the
// behavior-preservation proof: the Flat profile's compiled plan equals the
// legacy churn generator's output exactly — same times, same seats, same
// ordering — across rates and seeds.
func TestFlatCompilesLegacyChurnPlan(t *testing.T) {
	for _, rate := range []float64{0.1, 0.3, 0.8} {
		for _, seed := range []uint64{1, 42, 1999} {
			want := legacyChurnPlan(9, rate, testSpan, seed)
			got, err := Compile(Flat(rate), 9, testSpan, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rate %v seed %d: Flat plan diverged from legacy churn\ngot  %v\nwant %v",
					rate, seed, got, want)
			}
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	for _, name := range Builtins() {
		p, _ := Builtin(name)
		a, err1 := Compile(p, 16, testSpan, 7)
		b, err2 := Compile(p, 16, testSpan, 7)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: identical compiles diverged", name)
		}
	}
}

// TestPrefixProperty: for profiles with a 0 or 1 starting occupancy, a
// seat's episodes are identical under any population — the plan for N
// seats is a per-seat prefix of the plan for N+1, the common-random-
// numbers property capacity bisection relies on.
func TestPrefixProperty(t *testing.T) {
	day := OfficeDay()
	day.StartFrac = 0 // a fractional start moves the boundary seat with N
	for _, p := range []Profile{Flat(0.4), day} {
		bySeat := func(ss []Session, seat int) []Session {
			var out []Session
			for _, s := range ss {
				if s.Seat == seat+1 {
					out = append(out, s)
				}
			}
			return out
		}
		small, _ := Compile(p, 10, testSpan, 1999)
		large, _ := Compile(p, 11, testSpan, 1999)
		for seat := 0; seat < 10; seat++ {
			if a, b := bySeat(small, seat), bySeat(large, seat); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seat %d: episodes changed with population: %v vs %v", p.Name, seat, a, b)
			}
		}
	}
}

func TestSeatSessionsMatchesCompile(t *testing.T) {
	p := ShiftChange()
	full, err := Compile(p, 12, testSpan, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seat := 0; seat < 12; seat++ {
		var want []Session
		for _, s := range full {
			if s.Seat == seat+1 {
				want = append(want, s)
			}
		}
		got, err := SeatSessions(p, seat, 12, testSpan, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seat %d: SeatSessions %v != Compile's slice %v", seat, got, want)
		}
	}
}

// TestOfficeDayShapesArrivals pins the storm-and-dip shape: first logins
// bunch inside the 9 AM window, the per-second arrival rate dips over
// lunch, and nobody logs in after the 17:00 close.
func TestOfficeDayShapesArrivals(t *testing.T) {
	const seats = 400
	plan, err := Compile(OfficeDay(), seats, testSpan, 1999)
	if err != nil {
		t.Fatal(err)
	}
	storm, lunch, afterClose := 0, 0, 0
	frac := func(at simclock.Time) float64 { return float64(at) / float64(testSpan) }
	firsts := map[int]bool{}
	for _, s := range plan {
		f := frac(s.Login)
		if !firsts[s.Seat] {
			firsts[s.Seat] = true
			if f >= 0.127 && f < 0.19 {
				storm++
			}
		}
		if f >= 0.43 && f < 0.524 {
			lunch++
		}
		if f >= 0.905 {
			afterClose++
		}
	}
	// The storm segment holds ~44% of the timeline's mass; even after the
	// StartFrac slice of seats that never draw an arrival, well over a
	// quarter of all seats should first log in inside the window.
	if storm < seats/4 {
		t.Fatalf("only %d/%d first logins landed in the 9 AM storm window", storm, seats)
	}
	// The lunch window is 0.094 of the span wide; under a flat timeline it
	// would hold ~9.4%% of arrivals. The dip should keep it well under that.
	if lunch > len(plan)/20 {
		t.Fatalf("lunch dip missing: %d of %d arrivals landed in the lunch window", lunch, len(plan))
	}
	if afterClose != 0 {
		t.Fatalf("%d arrivals after the 17:00 close", afterClose)
	}
	if len(plan) <= seats {
		t.Fatalf("no seat ever returned from a logout: %d episodes over %d seats", len(plan), seats)
	}
}

// TestShiftChangeStartsOccupied: the off-going shift is aboard at time
// zero and the relief waves land at the shift marks.
func TestShiftChangeStartsOccupied(t *testing.T) {
	const seats = 100
	plan, err := Compile(ShiftChange(), seats, testSpan, 3)
	if err != nil {
		t.Fatal(err)
	}
	atOpen := 0
	for _, s := range plan {
		if s.Login == 0 {
			atOpen++
		}
	}
	if atOpen != 85 {
		t.Fatalf("%d seats occupied at open, want 85 (StartFrac 0.85 of %d)", atOpen, seats)
	}
}

func TestSessionInvariants(t *testing.T) {
	for _, name := range Builtins() {
		p, _ := Builtin(name)
		plan, err := Compile(p, 40, testSpan, 11)
		if err != nil {
			t.Fatal(err)
		}
		last := map[int]simclock.Time{}
		for i, s := range plan {
			if s.Login < 0 || s.Login >= simclock.Time(testSpan) {
				t.Fatalf("%s[%d]: login %v outside the span", name, i, s.Login)
			}
			if s.Logout != 0 && s.Logout < s.Login {
				t.Fatalf("%s[%d]: logout %v before login %v", name, i, s.Logout, s.Login)
			}
			if s.Seat < 1 || s.Seat > 40 {
				t.Fatalf("%s[%d]: seat %d outside [1, 40]", name, i, s.Seat)
			}
			if end, ok := last[s.Seat]; ok {
				if end == 0 || s.Login < end {
					t.Fatalf("%s[%d]: seat %d episode at %v overlaps previous ending %v",
						name, i, s.Seat, s.Login, end)
				}
			}
			last[s.Seat] = s.Logout
		}
	}
}

func TestCompileDegenerateInputs(t *testing.T) {
	if ss, err := Compile(OfficeDay(), 0, testSpan, 1); err != nil || ss != nil {
		t.Fatalf("zero seats: %v, %v", ss, err)
	}
	// A zero span compiles the occupied seats as static sessions and
	// drops every timed arrival — nothing can land inside an empty window.
	ss, err := Compile(Flat(0.5), 4, 0, 1)
	if err != nil || len(ss) != 4 {
		t.Fatalf("flat at zero span: %v, %v", ss, err)
	}
	for _, s := range ss {
		if s.Login != 0 || s.Logout != 0 {
			t.Fatalf("zero-span session not static: %+v", s)
		}
	}
	noStart := OfficeDay()
	noStart.StartFrac = 0
	if ss, err := Compile(noStart, 4, 0, 1); err != nil || len(ss) != 0 {
		t.Fatalf("arrival-only profile at zero span: %v, %v", ss, err)
	}
}

func TestValidateRejectsMalformedProfiles(t *testing.T) {
	ok := OfficeDay()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Profile){
		"empty name":           func(p *Profile) { p.Name = "" },
		"name with space":      func(p *Profile) { p.Name = "office day" },
		"negative start":       func(p *Profile) { p.StartFrac = -0.1 },
		"start above one":      func(p *Profile) { p.StartFrac = 1.5 },
		"negative rate":        func(p *Profile) { p.Timeline[1].Rate = -2 },
		"infinite rate":        func(p *Profile) { p.Timeline[1].Rate = inf() },
		"unsorted breakpoints": func(p *Profile) { p.Timeline[2].From = 0.01 },
		"duplicate breakpoint": func(p *Profile) { p.Timeline[1].From = p.Timeline[0].From },
		"from at one":          func(p *Profile) { p.Timeline[len(p.Timeline)-1].From = 1 },
		"zero-weight timeline": func(p *Profile) {
			for i := range p.Timeline {
				p.Timeline[i].Rate = 0
			}
		},
		"no sessions at all":  func(p *Profile) { p.Timeline, p.StartFrac = nil, 0 },
		"unknown stay kind":   func(p *Profile) { p.Stay.Kind = "weibull" },
		"zero exp mean":       func(p *Profile) { p.Stay = Stay{Kind: StayExp} },
		"zero lognorm median": func(p *Profile) { p.Stay = Stay{Kind: StayLognorm, Sigma: 1} },
		"negative sigma": func(p *Profile) {
			p.Stay = Stay{Kind: StayLognorm, Median: simclock.Second, Sigma: -1}
		},
		"empty quantiles": func(p *Profile) { p.Stay = Stay{Kind: StayQuantiles} },
		"sub-ms exp mean": func(p *Profile) {
			p.Stay = Stay{Kind: StayExp, Mean: 500 * simclock.Microsecond}
		},
		"sub-ms lognorm median": func(p *Profile) {
			p.Stay = Stay{Kind: StayLognorm, Median: simclock.Microsecond, Sigma: 1}
		},
		"sub-ms top quantile": func(p *Profile) {
			p.Stay = Stay{Kind: StayQuantiles, Quantiles: []simclock.Duration{0, 900 * simclock.Microsecond}}
		},
		"decreasing quantiles": func(p *Profile) {
			p.Stay = Stay{Kind: StayQuantiles, Quantiles: []simclock.Duration{5, 3}}
		},
		"all-zero quantiles": func(p *Profile) {
			p.Stay = Stay{Kind: StayQuantiles, Quantiles: []simclock.Duration{0, 0}}
		},
	}
	for name, breakIt := range cases {
		p := OfficeDay()
		breakIt(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated anyway", name)
		}
		if _, err := Compile(p, 4, testSpan, 1); err == nil {
			t.Errorf("%s: compiled anyway", name)
		}
	}
}

func inf() float64 { return math.Inf(1) }

func TestFormatParseRoundTripsBuiltins(t *testing.T) {
	quant := Profile{
		Name:      "measured",
		StartFrac: 0.25,
		Timeline:  []Segment{{From: 0, Rate: 1}, {From: 0.5, Rate: 3.75}},
		Stay: Stay{Kind: StayQuantiles, Quantiles: []simclock.Duration{
			0, 200 * simclock.Millisecond, simclock.Second, 7 * simclock.Second}},
	}
	profiles := []Profile{quant}
	for _, name := range Builtins() {
		p, _ := Builtin(name)
		profiles = append(profiles, p)
	}
	for _, p := range profiles {
		text := Format(p)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", p.Name, err, text)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("%s: round trip diverged\nformatted:\n%s\ngot %+v\nwant %+v", p.Name, text, got, p)
		}
	}
}

func TestParseAcceptsCommentsAndUnits(t *testing.T) {
	p, err := Parse(`
		# a hand-written profile
		profile night-batch
		start 0.5
		replace off
		segment 0 1
		segment 0.75 0   # quiet tail

		stay lognorm median=1.5s sigma=0.25
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stay.Median != 1500*simclock.Millisecond {
		t.Fatalf("median %v, want 1.5s", p.Stay.Median)
	}
	if len(p.Timeline) != 2 || p.Timeline[1].From != 0.75 {
		t.Fatalf("timeline %+v", p.Timeline)
	}
}

func TestParseRejectsMalformedText(t *testing.T) {
	stay := "stay exp mean=2s\n"
	cases := map[string]string{
		"missing profile":     stay,
		"missing stay":        "profile p\n",
		"negative rate":       "profile p\nsegment 0 -1\n" + stay,
		"unsorted segments":   "profile p\nsegment 0.5 1\nsegment 0.2 1\n" + stay,
		"zero-weight":         "profile p\nsegment 0 0\nsegment 0.5 0\n" + stay,
		"from at one":         "profile p\nsegment 1 2\n" + stay,
		"nan start":           "profile p\nstart nan\nsegment 0 1\n" + stay,
		"inf rate":            "profile p\nsegment 0 inf\n" + stay,
		"duplicate stay":      "profile p\nsegment 0 1\n" + stay + stay,
		"duplicate profile":   "profile p\nprofile q\nsegment 0 1\n" + stay,
		"unknown directive":   "profile p\nsegment 0 1\nburst 9am\n" + stay,
		"bare duration":       "profile p\nsegment 0 1\nstay exp mean=2\n",
		"unknown stay":        "profile p\nsegment 0 1\nstay weibull k=2\n",
		"missing stay arg":    "profile p\nsegment 0 1\nstay lognorm median=1s\n",
		"unknown stay arg":    "profile p\nsegment 0 1\nstay exp mean=2s mode=1s\n",
		"duplicate stay arg":  "profile p\nsegment 0 1\nstay exp mean=2s mean=3s\n",
		"zero mean":           "profile p\nsegment 0 1\nstay exp mean=0s\n",
		"huge duration":       "profile p\nsegment 0 1\nstay exp mean=1e300s\n",
		"zero-mass quantiles": "profile p\nsegment 0 1\nstay quantiles 0us 0us\n",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: parsed anyway:\n%s", name, text)
		}
	}
}

func TestFormatIsLineOriented(t *testing.T) {
	text := Format(OfficeDay())
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("Format output does not end in a newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.TrimSpace(line) == "" {
			t.Fatalf("Format emitted a blank line:\n%s", text)
		}
	}
}
