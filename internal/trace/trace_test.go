package trace

import (
	"strings"
	"testing"

	"thinbench/internal/proto"
	"thinbench/internal/simclock"
)

func msg(ch proto.Channel, kind string, n int) proto.Message {
	return proto.Message{Channel: ch, Kind: kind, Payload: make([]byte, n)}
}

func TestChannelAccounting(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Input, "Events", 32))
	r.Record(0, msg(proto.Input, "Events", 64))
	r.Record(0, msg(proto.Display, "PutImage", 1000))
	r.Flush()
	if in := r.Input(); in.Bytes != 96 || in.Messages != 2 {
		t.Fatalf("input = %+v", in)
	}
	if d := r.Display(); d.Bytes != 1000 || d.Messages != 1 {
		t.Fatalf("display = %+v", d)
	}
	if tot := r.Total(); tot.Bytes != 1096 || tot.Messages != 3 {
		t.Fatalf("total = %+v", tot)
	}
	if got := r.Input().AvgMessageSize(); got != 48 {
		t.Fatalf("avg input size = %v, want 48", got)
	}
	if (ChannelStats{}).AvgMessageSize() != 0 {
		t.Fatal("empty channel avg should be 0")
	}
}

func TestKindStats(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Display, "PutImage", 500))
	r.Record(0, msg(proto.Display, "PutImage", 700))
	r.Record(0, msg(proto.Display, "CopyArea", 28))
	ks := r.KindStats()
	if ks["PutImage"].Bytes != 1200 || ks["PutImage"].Messages != 2 {
		t.Fatalf("PutImage stats = %+v", ks["PutImage"])
	}
	if ks["CopyArea"].Messages != 1 {
		t.Fatalf("CopyArea stats = %+v", ks["CopyArea"])
	}
}

func TestPacketizationCoalescesSmallMessages(t *testing.T) {
	r := NewRecorder(simclock.Second)
	// Five 100-byte messages within the Nagle window share one packet.
	for i := 0; i < 5; i++ {
		r.Record(simclock.Time(i*100), msg(proto.Display, "small", 100))
	}
	r.Flush()
	if r.Packets() != 1 {
		t.Fatalf("packets = %d, want 1 (coalesced)", r.Packets())
	}
}

func TestPacketizationSplitsLargeMessages(t *testing.T) {
	r := NewRecorder(simclock.Second)
	// 4000 bytes over a 1500-byte MTU: 3 packets (1500+1500+1000).
	r.Record(0, msg(proto.Display, "big", 4000))
	r.Flush()
	if r.Packets() != 3 {
		t.Fatalf("packets = %d, want 3", r.Packets())
	}
}

func TestPacketizationWindowExpiry(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Display, "a", 100))
	// Next message far outside the 5ms window: separate packet.
	r.Record(simclock.Time(50*simclock.Millisecond), msg(proto.Display, "b", 100))
	r.Flush()
	if r.Packets() != 2 {
		t.Fatalf("packets = %d, want 2 (window expired)", r.Packets())
	}
}

func TestChannelsPacketizeIndependently(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Display, "d", 100))
	r.Record(0, msg(proto.Input, "i", 100))
	r.Flush()
	if r.Packets() != 2 {
		t.Fatalf("packets = %d, want 2 (one per channel)", r.Packets())
	}
}

func TestVIPSavings(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Display, "d", 1000))
	r.Flush()
	saved, frac := r.VIPSavings()
	if saved != 20 {
		t.Fatalf("saved = %d, want 20 (one packet, one IP header)", saved)
	}
	if frac != 0.02 {
		t.Fatalf("frac = %v, want 0.02", frac)
	}
	if r.WireBytes() != 1040 {
		t.Fatalf("wire bytes = %d, want 1040", r.WireBytes())
	}
}

func TestVIPSavingsEmptyCapture(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Flush()
	if _, frac := r.VIPSavings(); frac != 0 {
		t.Fatal("empty capture should report zero fraction")
	}
}

func TestSeriesMbps(t *testing.T) {
	r := NewRecorder(simclock.Second)
	// 125,000 bytes in second 0 = 1 Mbps.
	r.Record(simclock.Time(simclock.Millisecond), msg(proto.Display, "d", 125000))
	mbps := r.Series().Mbps()
	if len(mbps) == 0 || mbps[0] < 0.99 || mbps[0] > 1.01 {
		t.Fatalf("series Mbps = %v, want [~1]", mbps)
	}
}

func TestSummaryRendering(t *testing.T) {
	r := NewRecorder(simclock.Second)
	r.Record(0, msg(proto.Input, "Events", 32))
	r.Record(0, msg(proto.Display, "PutImage", 888))
	r.Flush()
	out := r.Summary("office workload over x")
	for _, want := range []string{"office workload over x", "input:", "display:", "total:", "VIP savings"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
