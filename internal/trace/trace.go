// Package trace is the reproduction's prototap: the protocol tracing tool
// the paper built on the pcap packet-sniffing library to produce its
// byte/message accounting tables and load-over-time figures.
//
// A Recorder observes timestamped protocol messages and maintains the
// paper's metrics per channel: byte counts, message counts, average message
// size, a time-bucketed load series, and a packetization model that maps
// messages onto MTU-bounded TCP/IP packets for the VIP header-elision
// analysis of §6.1.2.
package trace

import (
	"fmt"
	"strings"

	"thinbench/internal/metrics"
	"thinbench/internal/netsim"
	"thinbench/internal/proto"
	"thinbench/internal/simclock"
)

// ChannelStats accumulates per-channel accounting.
type ChannelStats struct {
	Bytes    int64
	Messages int64
}

// AvgMessageSize reports mean payload bytes per message.
func (c ChannelStats) AvgMessageSize() float64 {
	if c.Messages == 0 {
		return 0
	}
	return float64(c.Bytes) / float64(c.Messages)
}

// Recorder captures a protocol session's traffic.
type Recorder struct {
	input   ChannelStats
	display ChannelStats
	series  *metrics.Series
	kinds   map[string]*ChannelStats

	// Packetization state: messages on the same channel within the Nagle
	// window coalesce into a pending packet up to the MTU.
	mtu         int
	nagleWindow simclock.Duration
	pending     [2]pendingPacket
	packets     int64
}

type pendingPacket struct {
	bytes    int
	deadline simclock.Time
	active   bool
}

// NewRecorder builds a recorder. bucket sets the load-series resolution
// (1 s for the paper's Mbps traces).
func NewRecorder(bucket simclock.Duration) *Recorder {
	return &Recorder{
		series:      metrics.NewSeries(bucket),
		kinds:       make(map[string]*ChannelStats),
		mtu:         netsim.EthernetMTU,
		nagleWindow: 5 * simclock.Millisecond,
	}
}

// Record accounts one message observed at time now.
func (r *Recorder) Record(now simclock.Time, m proto.Message) {
	n := int64(m.Size())
	switch m.Channel {
	case proto.Input:
		r.input.Bytes += n
		r.input.Messages++
	default:
		r.display.Bytes += n
		r.display.Messages++
	}
	ks, ok := r.kinds[m.Kind]
	if !ok {
		ks = &ChannelStats{}
		r.kinds[m.Kind] = ks
	}
	ks.Bytes += n
	ks.Messages++
	r.series.Add(now, float64(n))
	r.packetize(now, int(m.Channel), m.Size())
}

// packetize models TCP segmentation with Nagle-style coalescing: messages
// on one channel arriving within the window share a packet until the MTU
// fills; each emitted packet carries one TCP/IP header.
func (r *Recorder) packetize(now simclock.Time, ch int, size int) {
	p := &r.pending[ch]
	if p.active && now > p.deadline {
		r.flushPacket(ch)
	}
	for size > 0 {
		if !p.active {
			p.active = true
			p.deadline = now.Add(r.nagleWindow)
		}
		room := r.mtu - p.bytes
		if size < room {
			p.bytes += size
			return
		}
		p.bytes = r.mtu
		size -= room
		r.flushPacket(ch)
	}
}

func (r *Recorder) flushPacket(ch int) {
	p := &r.pending[ch]
	if p.active {
		r.packets++
		*p = pendingPacket{}
	}
}

// Flush finalizes any pending packets (end of capture).
func (r *Recorder) Flush() {
	r.flushPacket(0)
	r.flushPacket(1)
}

// Input reports input-channel stats.
func (r *Recorder) Input() ChannelStats { return r.input }

// Display reports display-channel stats.
func (r *Recorder) Display() ChannelStats { return r.display }

// Total reports combined stats.
func (r *Recorder) Total() ChannelStats {
	return ChannelStats{
		Bytes:    r.input.Bytes + r.display.Bytes,
		Messages: r.input.Messages + r.display.Messages,
	}
}

// Packets reports the modeled TCP/IP packet count (call Flush first).
func (r *Recorder) Packets() int64 { return r.packets }

// Series reports the byte-load series; use Series.Mbps for megabits/second.
func (r *Recorder) Series() *metrics.Series { return r.series }

// KindStats reports per-message-kind accounting, sorted by bytes.
func (r *Recorder) KindStats() map[string]ChannelStats {
	out := make(map[string]ChannelStats, len(r.kinds))
	for k, v := range r.kinds {
		out[k] = *v
	}
	return out
}

// WireBytes reports total bytes on the wire including per-packet TCP/IP
// headers, the figure tcpdump would report.
func (r *Recorder) WireBytes() int64 {
	return r.Total().Bytes + r.packets*int64(netsim.TCPIPHeaderBytes)
}

// VIPSavings reports the §6.1.2 virtual-IP analysis: bytes saved by
// omitting the 20-byte IP header from every packet, and the savings as a
// fraction of payload bytes.
func (r *Recorder) VIPSavings() (bytes int64, frac float64) {
	saved := r.packets * int64(netsim.IPHeaderBytes)
	total := r.Total().Bytes
	if total == 0 {
		return saved, 0
	}
	return saved, float64(saved) / float64(total)
}

// Summary renders a prototap-style capture summary.
func (r *Recorder) Summary(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "capture: %s\n", title)
	fmt.Fprintf(&b, "  input:   %10s bytes  %8d messages  avg %7.2f\n",
		metrics.FormatBytes(r.input.Bytes), r.input.Messages, r.input.AvgMessageSize())
	fmt.Fprintf(&b, "  display: %10s bytes  %8d messages  avg %7.2f\n",
		metrics.FormatBytes(r.display.Bytes), r.display.Messages, r.display.AvgMessageSize())
	tot := r.Total()
	fmt.Fprintf(&b, "  total:   %10s bytes  %8d messages  avg %7.2f\n",
		metrics.FormatBytes(tot.Bytes), tot.Messages, tot.AvgMessageSize())
	fmt.Fprintf(&b, "  packets: %d, wire bytes w/ TCP/IP: %s\n", r.packets, metrics.FormatBytes(r.WireBytes()))
	saved, frac := r.VIPSavings()
	fmt.Fprintf(&b, "  VIP savings: %s bytes (%.2f%%)\n", metrics.FormatBytes(saved), frac*100)
	return b.String()
}
