// Package session models thin-client session lifecycle: the per-session
// process sets of §5.1.1 with their private memory footprints, system-idle
// memory baselines, session-setup costs, and server capacity accounting
// ("how many users fit in this much memory", the sizing question the
// paper's introduction poses).
package session

import (
	"thinbench/internal/vm"
)

// ProcessSpec is one process in a login manifest with its private,
// per-user memory consumption (shared code pages excluded, as the paper's
// accounting does).
type ProcessSpec struct {
	Name      string
	PrivateKB int
}

// Manifest is the process set of a minimal login.
type Manifest struct {
	OS        string
	Variant   string // "typical" or "light"
	Processes []ProcessSpec
}

// TotalKB reports the per-session compulsory memory load.
func (m Manifest) TotalKB() int {
	total := 0
	for _, p := range m.Processes {
		total += p.PrivateKB
	}
	return total
}

// LinuxManifest is the paper's Linux/X minimal login: 752 KB.
func LinuxManifest() Manifest {
	return Manifest{
		OS:      "Linux/X",
		Variant: "typical",
		Processes: []ProcessSpec{
			{Name: "in.rshd", PrivateKB: 204},
			{Name: "xterm", PrivateKB: 372},
			{Name: "bash", PrivateKB: 176},
		},
	}
}

// TSEManifest is the paper's TSE minimal login with the Explorer shell:
// 3,244 KB.
func TSEManifest() Manifest {
	return Manifest{
		OS:      "NT TSE",
		Variant: "typical",
		Processes: []ProcessSpec{
			{Name: "explorer.exe (shell)", PrivateKB: 1368},
			{Name: "csrss.exe", PrivateKB: 452},
			{Name: "loadwc.exe", PrivateKB: 424},
			{Name: "nddeagnt.exe", PrivateKB: 300},
			{Name: "winlogin.exe", PrivateKB: 700},
		},
	}
}

// TSELightManifest is the paper's lighter TSE login with the DOS prompt
// replacing Explorer: 2,100 KB.
func TSELightManifest() Manifest {
	return Manifest{
		OS:      "NT TSE",
		Variant: "light",
		Processes: []ProcessSpec{
			{Name: "command.com (shell)", PrivateKB: 224},
			{Name: "csrss.exe", PrivateKB: 452},
			{Name: "loadwc.exe", PrivateKB: 424},
			{Name: "nddeagnt.exe", PrivateKB: 300},
			{Name: "winlogin.exe", PrivateKB: 700},
		},
	}
}

// System-idle memory baselines from §5.1.1: memory unavailable to user
// applications with no sessions logged in.
const (
	LinuxSystemIdleKB = 17 * 1024
	TSESystemIdleKB   = 19 * 1024
)

// Login instantiates the manifest's processes in a memory manager and
// makes them resident, returning the created processes. The measured
// resident growth equals the manifest total (rounded up to whole pages),
// which is how the tab2 experiment cross-checks the table against the VM
// substrate.
func Login(m *vm.Manager, man Manifest) []*vm.Process {
	procs := make([]*vm.Process, 0, len(man.Processes))
	for _, spec := range man.Processes {
		p := m.NewProcess(spec.Name, spec.PrivateKB)
		p.Interactive = true
		m.TouchAll(p)
		procs = append(procs, p)
	}
	return procs
}

// Logout releases a login's processes from the memory manager: every
// resident page returns to the free pool, so the eviction pressure on the
// sessions that remain relaxes immediately. It is the inverse of Login.
// The Process structs stay registered with the manager (their resident
// counts are zero), exactly as a dead PID lingers in accounting until
// reaped; callers should drop their references.
func Logout(m *vm.Manager, procs []*vm.Process) {
	for _, p := range procs {
		m.EvictAll(p)
	}
}

// Capacity reports how many sessions of the given manifest fit into
// physical memory after the system baseline, before paging begins — the
// memory-bound answer to the paper's server-sizing question.
func Capacity(physicalKB, systemIdleKB int, man Manifest) int {
	free := physicalKB - systemIdleKB
	per := man.TotalKB()
	if per <= 0 || free <= 0 {
		return 0
	}
	return free / per
}
