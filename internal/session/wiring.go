package session

import (
	"fmt"

	"thinbench/internal/sched"
	"thinbench/internal/vm"
)

// User is one logged-in session wired onto a shared server: the manifest's
// processes resident in the shared memory manager, plus the session's
// schedulable threads on the shared CPU — an application thread that
// handles the user's input, and a display-encoder thread that turns the
// application's drawing into protocol traffic (the X server / TSE display
// driver role).
type User struct {
	Index int
	// Procs are the manifest processes created in the shared memory
	// manager, in manifest order.
	Procs []*vm.Process
	// App handles input and application work. It carries the GUI wake
	// boost on the NT policy.
	App *sched.Thread
	// Encoder encodes display updates for the wire.
	Encoder *sched.Thread
}

// AttachUser logs a session into a shared server: its manifest processes
// become resident in m (the compulsory §5.1.1 memory load) and its two
// pipeline threads register with the shared CPU. interactive marks the
// pipeline threads for the SVR4 interactive-class policy; background work
// a user may run later should go on separate, non-interactive threads so
// the class distinction means something.
func AttachUser(cpu *sched.CPU, m *vm.Manager, man Manifest, index int, interactive bool) *User {
	u := &User{
		Index:   index,
		Procs:   Login(m, man),
		App:     cpu.NewThread(fmt.Sprintf("u%d-app", index), 9),
		Encoder: cpu.NewThread(fmt.Sprintf("u%d-enc", index), 8),
	}
	u.App.GUIBoost = true
	u.App.Interactive = interactive
	u.Encoder.Interactive = interactive
	return u
}

// ReattachUser logs a session back in reusing a detached User record from
// the same seat: each manifest process becomes resident again (the same
// compulsory page-in sequence Login performs, since Logout left the
// processes registered with zero resident pages) and both pipeline threads
// return to service via ReuseThread. Fault order, memory pressure, and
// scheduling behavior are identical to AttachUser with the same manifest;
// only the allocations are saved. The record must have been through
// DetachUser first.
func ReattachUser(cpu *sched.CPU, m *vm.Manager, u *User, index int, interactive bool) *User {
	u.Index = index
	for _, p := range u.Procs {
		m.TouchAll(p)
	}
	cpu.ReuseThread(u.App, 9)
	cpu.ReuseThread(u.Encoder, 8)
	u.App.GUIBoost = true
	u.App.Interactive = interactive
	u.Encoder.Interactive = interactive
	return u
}

// DetachUser logs a session out of a shared server: both pipeline threads
// retire (pending work dropped, never scheduled again) and every manifest
// process releases its memory, so the survivors' eviction pressure relaxes
// at the instant of departure. It is the inverse of AttachUser. Work a
// caller put on separate background threads must be retired separately.
func DetachUser(cpu *sched.CPU, m *vm.Manager, u *User) {
	cpu.Retire(u.App)
	cpu.Retire(u.Encoder)
	Logout(m, u.Procs)
}

// WorkingSet returns the user's largest process — the application address
// space whose pages an interaction touches — or nil for an empty manifest.
func (u *User) WorkingSet() *vm.Process {
	var biggest *vm.Process
	for _, p := range u.Procs {
		if biggest == nil || p.Pages() > biggest.Pages() {
			biggest = p
		}
	}
	return biggest
}
