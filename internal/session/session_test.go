package session

import (
	"testing"

	"thinbench/internal/sched"
	"thinbench/internal/simclock"
	"thinbench/internal/vm"
)

func TestManifestTotalsMatchPaper(t *testing.T) {
	if got := LinuxManifest().TotalKB(); got != 752 {
		t.Errorf("Linux login = %d KB, paper reports 752", got)
	}
	if got := TSEManifest().TotalKB(); got != 3244 {
		t.Errorf("TSE login = %d KB, paper reports 3,244", got)
	}
	if got := TSELightManifest().TotalKB(); got != 2100 {
		t.Errorf("TSE light login = %d KB, paper reports 2,100", got)
	}
}

func TestSystemIdleBaselines(t *testing.T) {
	if LinuxSystemIdleKB != 17*1024 || TSESystemIdleKB != 19*1024 {
		t.Fatal("system idle baselines diverge from the paper's 17MB/19MB")
	}
}

func TestLoginMakesManifestResident(t *testing.T) {
	cfg := vm.DefaultConfig()
	m := vm.New(cfg)
	before := m.FreeKB()
	procs := Login(m, TSEManifest())
	if len(procs) != 5 {
		t.Fatalf("login created %d processes, want 5", len(procs))
	}
	used := before - m.FreeKB()
	want := TSEManifest().TotalKB()
	// Page-granular rounding may add up to one page per process.
	if used < want || used > want+len(procs)*cfg.PageKB {
		t.Fatalf("login consumed %d KB, want ~%d", used, want)
	}
	for _, p := range procs {
		if !p.Interactive {
			t.Fatal("session processes must be interactive")
		}
	}
}

func TestCapacity(t *testing.T) {
	// 64 MB server, TSE: (65536-19456)/3244 = 14 sessions.
	if got := Capacity(64*1024, TSESystemIdleKB, TSEManifest()); got != 14 {
		t.Fatalf("TSE capacity = %d, want 14", got)
	}
	// Linux: (65536-17408)/752 = 64 sessions.
	if got := Capacity(64*1024, LinuxSystemIdleKB, LinuxManifest()); got != 64 {
		t.Fatalf("Linux capacity = %d, want 64", got)
	}
	if Capacity(1024, 2048, LinuxManifest()) != 0 {
		t.Fatal("negative free memory should give zero capacity")
	}
}

func TestLightVsTypicalOrdering(t *testing.T) {
	if !(LinuxManifest().TotalKB() < TSELightManifest().TotalKB() &&
		TSELightManifest().TotalKB() < TSEManifest().TotalKB()) {
		t.Fatal("per-session memory ordering violated")
	}
}

// TestLogoutIsLoginInverse: logging out returns exactly the pages a login
// made resident, so the memory division the capacity arithmetic relies on
// holds across arbitrary login/logout sequences, not just a one-shot boot.
func TestLogoutIsLoginInverse(t *testing.T) {
	m := vm.New(vm.DefaultConfig())
	baseline := m.FreeKB()
	procs := Login(m, TSEManifest())
	if m.FreeKB() >= baseline {
		t.Fatal("login did not consume memory")
	}
	Logout(m, procs)
	if got := m.FreeKB(); got != baseline {
		t.Fatalf("logout left %d KB free, want the pre-login %d", got, baseline)
	}
	for _, p := range procs {
		if p.Resident() != 0 {
			t.Fatalf("process %s still has %d resident pages after logout", p.Name, p.Resident())
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("manager accounting broken after logout: %v", err)
	}
	// A second churn cycle lands on the same division.
	again := Login(m, TSEManifest())
	used := baseline - m.FreeKB()
	want := TSEManifest().TotalKB()
	if used < want || used > want+len(again)*m.Config().PageKB {
		t.Fatalf("re-login consumed %d KB, want ~%d", used, want)
	}
}

// TestDetachUserReleasesEverything: the wiring-level inverse retires both
// pipeline threads and frees the session's memory in one call.
func TestDetachUserReleasesEverything(t *testing.T) {
	eng := simclock.NewEngine()
	cpu := sched.NewCPU(eng, sched.NewRRSched(10*simclock.Millisecond), simclock.Second)
	m := vm.New(vm.DefaultConfig())
	baseline := m.FreeKB()
	u := AttachUser(cpu, m, LinuxManifest(), 0, true)
	survivor := AttachUser(cpu, m, LinuxManifest(), 1, true)

	// Queue work on the departing user so Retire has something to drop.
	cpu.Submit(u.App, &sched.WorkItem{Tag: "echo", CPU: simclock.Millisecond,
		OnDone: func(*sched.WorkItem, simclock.Time, int) { t.Fatal("retired thread completed work") }})
	DetachUser(cpu, m, u)
	eng.RunFor(simclock.Second)

	for _, p := range u.Procs {
		if p.Resident() != 0 {
			t.Fatalf("departed process %s still resident", p.Name)
		}
	}
	// The survivor is untouched and the departed pages are free again.
	if got := baseline - m.FreeKB(); got < LinuxManifest().TotalKB() ||
		got > LinuxManifest().TotalKB()+len(survivor.Procs)*m.Config().PageKB {
		t.Fatalf("after detach %d KB in use, want one login's worth", got)
	}
	if survivor.Procs[0].Resident() == 0 {
		t.Fatal("detach evicted the surviving session")
	}
}

func TestAttachUserWiresSharedSubstrates(t *testing.T) {
	eng := simclock.NewEngine()
	cpu := sched.NewCPU(eng, sched.NewRRSched(10*simclock.Millisecond), simclock.Second)
	m := vm.New(vm.DefaultConfig())
	a := AttachUser(cpu, m, LinuxManifest(), 0, true)
	b := AttachUser(cpu, m, LinuxManifest(), 1, false)
	if len(a.Procs) != 3 {
		t.Fatalf("user 0 created %d processes, want 3", len(a.Procs))
	}
	if a.App.ID == b.App.ID || a.Encoder.ID == b.Encoder.ID {
		t.Fatal("users share thread IDs on the shared CPU")
	}
	if !a.App.GUIBoost {
		t.Fatal("application thread lost the GUI wake boost")
	}
	if !a.App.Interactive || b.App.Interactive {
		t.Fatal("interactive marking did not follow the policy flag")
	}
	ws := a.WorkingSet()
	if ws == nil || ws.Name != "xterm" {
		t.Fatalf("working set should be the largest process, got %+v", ws)
	}
	// Both logins are resident in the one shared memory manager.
	want := 2 * LinuxManifest().TotalKB()
	used := m.TotalPages()*m.Config().PageKB - m.FreeKB()
	if used < want {
		t.Fatalf("shared manager holds %d KB resident, want at least %d", used, want)
	}
}
