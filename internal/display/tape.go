package display

import (
	"fmt"
	"unicode/utf8"
)

// OpKind tags one entry of an OpTape.
type OpKind uint8

// Tape entry kinds, mirroring the four Op variants.
const (
	KindFill OpKind = iota // FillRect
	KindCopy               // CopyArea
	KindText               // DrawText
	KindBlit               // PutBitmap
)

// tapeLanes is the fixed per-entry argument stride. CopyArea is the widest
// entry (src x/y/w/h + dst x/y); the others leave trailing lanes unused.
const tapeLanes = 6

// OpTape is a pointer-free struct-of-arrays representation of a display
// operation stream: entry kinds and geometry live in flat arrays, text bytes
// are carved from one shared byte arena, and bitmaps are referenced by index
// into a side table. Appending to a warm tape allocates nothing, so the
// steady-state echo pipeline can rebuild its per-interaction op stream
// without boxing values into the Op interface.
//
// Entry argument lanes (all int32):
//
//	KindFill: x, y, w, h, color
//	KindCopy: srcX, srcY, w, h, dstX, dstY
//	KindText: x, y, textOff, textLen, color
//	KindBlit: x, y, imgIdx
//
// Text offsets and bitmap indices are absolute into the tape's arena and
// side table, so any [from, to) window of a tape remains self-describing —
// workload batches reference shared tapes by span.
type OpTape struct {
	kinds []OpKind
	args  []int32
	text  []byte
	imgs  []*Bitmap
}

// Len reports the number of entries on the tape.
func (t *OpTape) Len() int { return len(t.kinds) }

// Reset empties the tape, retaining all backing capacity.
func (t *OpTape) Reset() {
	t.kinds = t.kinds[:0]
	t.args = t.args[:0]
	t.text = t.text[:0]
	for i := range t.imgs {
		t.imgs[i] = nil
	}
	t.imgs = t.imgs[:0]
}

//thinlint:hotpath
func (t *OpTape) push(k OpKind, a0, a1, a2, a3, a4, a5 int32) {
	t.kinds = append(t.kinds, k) //thinlint:allow hotpath.alloc tape growth: amortized to zero once the backing arrays reach their high-water mark
	t.args = append(t.args, a0, a1, a2, a3, a4, a5)
}

// Fill appends a solid-rectangle entry.
func (t *OpTape) Fill(r Rect, color byte) {
	t.push(KindFill, int32(r.X), int32(r.Y), int32(r.W), int32(r.H), int32(color), 0)
}

// Copy appends an on-screen copy entry.
func (t *OpTape) Copy(src Rect, dstX, dstY int) {
	t.push(KindCopy, int32(src.X), int32(src.Y), int32(src.W), int32(src.H), int32(dstX), int32(dstY))
}

// Text appends a text entry, copying the string bytes into the tape arena.
func (t *OpTape) Text(x, y int, s string, color byte) {
	off := len(t.text)
	t.text = append(t.text, s...)
	t.push(KindText, int32(x), int32(y), int32(off), int32(len(s)), int32(color), 0)
}

// TextBytes appends a text entry from raw UTF-8 bytes.
func (t *OpTape) TextBytes(x, y int, s []byte, color byte) {
	off := len(t.text)
	t.text = append(t.text, s...)
	t.push(KindText, int32(x), int32(y), int32(off), int32(len(s)), int32(color), 0)
}

// Blit appends a bitmap entry. The tape retains the *Bitmap pointer in its
// side table; the pixels are not copied.
func (t *OpTape) Blit(x, y int, img *Bitmap) {
	idx := len(t.imgs)
	t.imgs = append(t.imgs, img)
	t.push(KindBlit, int32(x), int32(y), int32(idx), 0, 0, 0)
}

// Kind reports the kind of entry i.
func (t *OpTape) Kind(i int) OpKind { return t.kinds[i] }

// FillAt decodes entry i as a fill.
func (t *OpTape) FillAt(i int) (r Rect, color byte) {
	a := t.args[i*tapeLanes:]
	return Rect{int(a[0]), int(a[1]), int(a[2]), int(a[3])}, byte(a[4])
}

// CopyAt decodes entry i as a copy.
func (t *OpTape) CopyAt(i int) (src Rect, dstX, dstY int) {
	a := t.args[i*tapeLanes:]
	return Rect{int(a[0]), int(a[1]), int(a[2]), int(a[3])}, int(a[4]), int(a[5])
}

// TextAt decodes entry i as text. The returned bytes alias the tape arena
// and stay valid until the next Reset.
func (t *OpTape) TextAt(i int) (x, y int, text []byte, color byte) {
	a := t.args[i*tapeLanes:]
	return int(a[0]), int(a[1]), t.text[a[2] : a[2]+a[3]], byte(a[4])
}

// BlitAt decodes entry i as a bitmap draw.
func (t *OpTape) BlitAt(i int) (x, y int, img *Bitmap) {
	a := t.args[i*tapeLanes:]
	return int(a[0]), int(a[1]), t.imgs[a[2]]
}

// BoundsAt reports the damaged region of entry i, matching the Bounds of
// the equivalent Op (text width uses the UTF-8 byte length, as
// DrawText.Bounds does).
func (t *OpTape) BoundsAt(i int) Rect {
	a := t.args[i*tapeLanes:]
	switch t.kinds[i] {
	case KindFill:
		return Rect{int(a[0]), int(a[1]), int(a[2]), int(a[3])}
	case KindCopy:
		return Rect{int(a[4]), int(a[5]), int(a[2]), int(a[3])}
	case KindText:
		return Rect{int(a[0]), int(a[1]), int(a[3]) * GlyphW, GlyphH}
	case KindBlit:
		img := t.imgs[a[2]]
		return Rect{int(a[0]), int(a[1]), img.W, img.H}
	default:
		panic(fmt.Sprintf("display: unknown tape kind %d", t.kinds[i]))
	}
}

// AppendOp appends one boxed Op to the tape.
func (t *OpTape) AppendOp(op Op) {
	switch o := op.(type) {
	case FillRect:
		t.Fill(o.Rect, o.Color)
	case CopyArea:
		t.Copy(o.Src, o.DstX, o.DstY)
	case DrawText:
		t.Text(o.X, o.Y, o.Text, o.Color)
	case PutBitmap:
		t.Blit(o.X, o.Y, o.Img)
	default:
		panic(fmt.Sprintf("display: unsupported op %T", op))
	}
}

// AppendOps appends a boxed op slice to the tape.
func (t *OpTape) AppendOps(ops []Op) {
	for _, op := range ops {
		t.AppendOp(op)
	}
}

// AppendTape appends entries [from, to) of src to t, re-basing text offsets
// and bitmap indices into t's own arena and side table.
func (t *OpTape) AppendTape(src *OpTape, from, to int) {
	for i := from; i < to; i++ {
		switch src.kinds[i] {
		case KindFill:
			r, c := src.FillAt(i)
			t.Fill(r, c)
		case KindCopy:
			r, dx, dy := src.CopyAt(i)
			t.Copy(r, dx, dy)
		case KindText:
			x, y, s, c := src.TextAt(i)
			t.TextBytes(x, y, s, c)
		case KindBlit:
			x, y, img := src.BlitAt(i)
			t.Blit(x, y, img)
		}
	}
}

// AppendTo materializes entries [from, to) as boxed Ops appended to dst,
// the lossless inverse of AppendOp for tests and cold interface-based
// consumers. Text entries allocate fresh strings.
func (t *OpTape) AppendTo(dst []Op, from, to int) []Op {
	for i := from; i < to; i++ {
		switch t.kinds[i] {
		case KindFill:
			r, c := t.FillAt(i)
			dst = append(dst, FillRect{Rect: r, Color: c})
		case KindCopy:
			r, dx, dy := t.CopyAt(i)
			dst = append(dst, CopyArea{Src: r, DstX: dx, DstY: dy})
		case KindText:
			x, y, s, c := t.TextAt(i)
			dst = append(dst, DrawText{X: x, Y: y, Text: string(s), Color: c})
		case KindBlit:
			x, y, img := t.BlitAt(i)
			dst = append(dst, PutBitmap{X: x, Y: y, Img: img})
		}
	}
	return dst
}

// Ops materializes the whole tape as a fresh boxed op slice.
func (t *OpTape) Ops() []Op {
	if t.Len() == 0 {
		return nil
	}
	return t.AppendTo(make([]Op, 0, t.Len()), 0, t.Len())
}

// GlyphRowBits reports row y of GlyphMask(r) packed LSB-first into one byte
// (the cell is GlyphW = 8 pixels wide): bit x is set exactly when mask pixel
// (x, y) is on. It is the allocation-free form of GlyphMask for encoders and
// rasterizers that walk rows.
func GlyphRowBits(r rune, y int) byte {
	seed := uint64(r)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	return byte(seed >> (uint(y%8) * 7))
}

// CountRunes reports the rune count of UTF-8 text, capped at max when max
// is positive. Decoding matches a range loop over string(text): invalid
// bytes yield one U+FFFD per byte.
func CountRunes(text []byte, max int) int {
	n := 0
	for off := 0; off < len(text); {
		_, size := utf8.DecodeRune(text[off:])
		off += size
		n++
		if n == max {
			break
		}
	}
	return n
}
