package display

import (
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(4, 3)
	if b.Bytes() != 12 {
		t.Fatalf("Bytes = %d, want 12", b.Bytes())
	}
	b.Set(1, 2, 9)
	if b.At(1, 2) != 9 {
		t.Fatal("Set/At round trip failed")
	}
	// Out-of-range accesses are safe.
	b.Set(99, 99, 1)
	if b.At(-1, 0) != 0 || b.At(99, 99) != 0 {
		t.Fatal("out-of-range At should return 0")
	}
}

func TestBitmapHashDistinguishesContent(t *testing.T) {
	a := NewBitmap(8, 8)
	b := NewBitmap(8, 8)
	if a.Hash() != b.Hash() {
		t.Fatal("identical bitmaps hash differently")
	}
	b.Set(3, 3, 1)
	if a.Hash() == b.Hash() {
		t.Fatal("different bitmaps hash identically")
	}
	// Same pixels, different shape must differ.
	c := NewBitmap(4, 16)
	if a.Hash() == c.Hash() {
		t.Fatal("shape not part of hash")
	}
}

func TestBitmapEqualAndClone(t *testing.T) {
	a := SyntheticFrame(1, 0, 16, 16)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(0, 0, b.At(0, 0)+1)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(NewBitmap(16, 15)) {
		t.Fatal("different dims equal")
	}
}

func TestNewBitmapPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitmap(0,5) did not panic")
		}
	}()
	NewBitmap(0, 5)
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Fatalf("union = %+v", u)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatal("union with empty should return other")
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatal("union with empty should return other")
	}
	if !(Rect{1, 1, 0, 5}).Empty() {
		t.Fatal("zero-width rect should be empty")
	}
}

func TestFillRect(t *testing.T) {
	fb := NewFramebuffer(10, 10)
	fb.Apply(FillRect{Rect: Rect{2, 2, 3, 3}, Color: 7})
	if fb.At(2, 2) != 7 || fb.At(4, 4) != 7 {
		t.Fatal("fill missed interior")
	}
	if fb.At(5, 5) != 0 || fb.At(1, 1) != 0 {
		t.Fatal("fill leaked outside")
	}
	if fb.Damage() != (Rect{2, 2, 3, 3}) {
		t.Fatalf("damage = %+v", fb.Damage())
	}
}

func TestCopyAreaOverlapping(t *testing.T) {
	fb := NewFramebuffer(10, 1)
	for x := 0; x < 10; x++ {
		fb.Set(x, 0, byte(x))
	}
	// Shift left by 2 with overlapping ranges (marquee scroll).
	fb.Apply(CopyArea{Src: Rect{2, 0, 8, 1}, DstX: 0, DstY: 0})
	for x := 0; x < 8; x++ {
		if fb.At(x, 0) != byte(x+2) {
			t.Fatalf("pixel %d = %d, want %d", x, fb.At(x, 0), x+2)
		}
	}
}

func TestPutBitmap(t *testing.T) {
	fb := NewFramebuffer(20, 20)
	img := SyntheticFrame(5, 0, 8, 8)
	fb.Apply(PutBitmap{X: 4, Y: 4, Img: img})
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if fb.At(4+x, 4+y) != img.At(x, y) {
				t.Fatalf("blit mismatch at %d,%d", x, y)
			}
		}
	}
}

func TestDrawTextDeterministic(t *testing.T) {
	fb1 := NewFramebuffer(100, 20)
	fb2 := NewFramebuffer(100, 20)
	fb1.Apply(DrawText{X: 0, Y: 0, Text: "hello", Color: 3})
	fb2.Apply(DrawText{X: 0, Y: 0, Text: "hello", Color: 3})
	if !fb1.Equal(fb2.Bitmap) {
		t.Fatal("identical text rendered differently")
	}
	fb3 := NewFramebuffer(100, 20)
	fb3.Apply(DrawText{X: 0, Y: 0, Text: "world", Color: 3})
	if fb1.Equal(fb3.Bitmap) {
		t.Fatal("different text rendered identically")
	}
}

func TestGlyphBitmapStable(t *testing.T) {
	a := GlyphMask('A')
	b := GlyphMask('A')
	if !a.Equal(b) {
		t.Fatal("glyph not deterministic")
	}
	c := GlyphMask('B')
	if a.Equal(c) {
		t.Fatal("distinct runes produced identical glyphs")
	}
	if a.W != GlyphW || a.H != GlyphH {
		t.Fatal("glyph cell size wrong")
	}
}

func TestFramebufferOpsCountAndDamageReset(t *testing.T) {
	fb := NewFramebuffer(10, 10)
	fb.Apply(FillRect{Rect: Rect{0, 0, 2, 2}, Color: 1})
	fb.Apply(FillRect{Rect: Rect{8, 8, 2, 2}, Color: 1})
	if fb.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", fb.Ops())
	}
	if fb.Damage() != (Rect{0, 0, 10, 10}) {
		t.Fatalf("damage union = %+v", fb.Damage())
	}
	fb.ResetDamage()
	if !fb.Damage().Empty() {
		t.Fatal("damage not reset")
	}
}

func TestSyntheticFrameProperties(t *testing.T) {
	// Same (seed, i) => identical; different i => different.
	a := SyntheticFrame(42, 3, 64, 48)
	b := SyntheticFrame(42, 3, 64, 48)
	c := SyntheticFrame(42, 4, 64, 48)
	if !a.Equal(b) {
		t.Fatal("synthetic frame not deterministic")
	}
	if a.Equal(c) {
		t.Fatal("distinct frames identical")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("distinct frames hash-collide")
	}
}

func TestBannerAndMarqueeDimensions(t *testing.T) {
	bf := BannerFrame(0)
	if bf.W != 468 || bf.H != 60 {
		t.Fatalf("banner = %dx%d, want 468x60 (the paper's ad size)", bf.W, bf.H)
	}
	mf := MarqueeFrame(5, 10)
	if mf.W != MarqueeW || mf.H != MarqueeH {
		t.Fatal("marquee dimensions wrong")
	}
	// Looping: position i and i+period are identical.
	if !MarqueeFrame(3, 10).Equal(MarqueeFrame(13, 10)) {
		t.Fatal("marquee does not loop with its period")
	}
}

// Property: PutBitmap followed by readback returns the same pixels for any
// in-range placement.
func TestBlitRoundTripProperty(t *testing.T) {
	f := func(seed uint64, px, py uint8) bool {
		fb := NewFramebuffer(64, 64)
		img := SyntheticFrame(seed, 0, 16, 16)
		x, y := int(px)%48, int(py)%48
		fb.Apply(PutBitmap{X: x, Y: y, Img: img})
		for yy := 0; yy < 16; yy++ {
			for xx := 0; xx < 16; xx++ {
				if fb.At(x+xx, y+yy) != img.At(xx, yy) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInputEventNames(t *testing.T) {
	// The interface methods exist to seal the type set; exercise them.
	events := []InputEvent{KeyEvent{Down: true, Code: 30}, MouseMove{X: 1, Y: 2}, MouseButton{Down: true, Button: 1}}
	names := map[string]bool{}
	for _, e := range events {
		names[e.inputName()] = true
	}
	if len(names) != 3 {
		t.Fatalf("input event names = %v", names)
	}
}
