package display

// Synthetic content generators for the paper's animation workloads. All
// output is deterministic in its parameters so protocol comparisons see
// byte-identical streams, and all content is "image-like": regions of flat
// color with structured variation, so stream compressors (LBX) get
// realistic ratios rather than incompressible noise.

// SyntheticFrame generates frame i of an animation: w x h pixels with
// blocky structure derived from (seed, i). Distinct (seed, i) pairs give
// distinct pixels — a looping animation player replays identical frames.
func SyntheticFrame(seed uint64, i, w, h int) *Bitmap {
	return SyntheticBlocky(seed, i, w, h, 12)
}

// SyntheticBlocky generates flat-colored block content with a configurable
// block size. Larger blocks model plain UI surfaces (highly compressible);
// small blocks model busy content such as anti-aliased text strips, which
// run-length coding only partially compresses.
func SyntheticBlocky(seed uint64, i, w, h, block int) *Bitmap {
	if block < 1 {
		block = 1
	}
	b := NewBitmap(w, h)
	state := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for by := 0; by < h; by += block {
		for bx := 0; bx < w; bx += block {
			color := byte(next())
			for y := by; y < by+block && y < h; y++ {
				base := y * w
				for x := bx; x < bx+block && x < w; x++ {
					b.Pix[base+x] = color
				}
			}
		}
	}
	// A moving accent so consecutive frames differ visibly.
	pos := (i * 7) % w
	for y := 0; y < h; y++ {
		b.Set(pos, y, byte(i))
	}
	return b
}

// SyntheticPhoto generates photographic-entropy content: every pixel is
// independently pseudo-random, so neither run-length coding nor DEFLATE
// gains much. Animated GIF advertisements and photo-editing canvases are
// modeled with this generator; flat UI chrome uses SyntheticFrame.
func SyntheticPhoto(seed uint64, i, w, h int) *Bitmap {
	b := NewBitmap(w, h)
	state := seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9
	for p := range b.Pix {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		b.Pix[p] = byte(z ^ (z >> 31))
	}
	return b
}

// Banner dimensions from the paper's synthetic web page: a 468x60 pixel
// animated GIF advertisement.
const (
	BannerW = 468
	BannerH = 60
)

// BannerFrame generates frame i of the ad banner. Ad GIFs are
// photographic, so frames are compression-resistant.
func BannerFrame(i int) *Bitmap {
	return SyntheticPhoto(0xadba11, i, BannerW, BannerH)
}

// Marquee dimensions: an HTML scrolling news ticker strip.
const (
	MarqueeW = 600
	MarqueeH = 24
)

// MarqueeFrame generates scroll position i of the ticker. The ticker loops
// with period MarqueePositions, so the same strips repeat each cycle —
// the property that lets a bitmap cache absorb it when it fits. Strip
// content is fine-grained (anti-aliased text over a gradient), so
// run-length coding compresses it only modestly.
func MarqueeFrame(i, positions int) *Bitmap {
	if positions <= 0 {
		positions = 1
	}
	return SyntheticBlocky(0x7ec4e5, i%positions, MarqueeW, MarqueeH, 3)
}

// TypicalScreenW/H are the testbed's remote desktop dimensions.
const (
	TypicalScreenW = 800
	TypicalScreenH = 600
)
