// Package display models the graphical substrate shared by every remote
// display protocol in the reproduction: bitmaps, drawing operations, a
// software framebuffer that actually renders them, and deterministic
// synthetic content generators (animation frames, banner ads, ticker
// strips) for the paper's workloads.
//
// Both the server and the client render into framebuffers, so integration
// tests can assert that a protocol round-trip reproduces the server's
// pixels exactly.
package display

import (
	"fmt"
	"hash/fnv"
	"unicode/utf8"
)

// Bitmap is an 8-bit-per-pixel image (the paper's testbed era color depth).
type Bitmap struct {
	W, H int
	Pix  []byte // len W*H, row-major
}

// NewBitmap allocates a zeroed bitmap.
func NewBitmap(w, h int) *Bitmap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("display: invalid bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, Pix: make([]byte, w*h)}
}

// Bytes reports the raw pixel payload size.
func (b *Bitmap) Bytes() int { return len(b.Pix) }

// Hash returns a content digest used as the bitmap-cache key.
func (b *Bitmap) Hash() uint64 {
	h := fnv.New64a()
	var dims [8]byte
	dims[0], dims[1] = byte(b.W), byte(b.W>>8)
	dims[2], dims[3] = byte(b.H), byte(b.H>>8)
	h.Write(dims[:4])
	h.Write(b.Pix)
	return h.Sum64()
}

// At reads pixel (x, y); out-of-range reads return 0.
func (b *Bitmap) At(x, y int) byte {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return 0
	}
	return b.Pix[y*b.W+x]
}

// Set writes pixel (x, y); out-of-range writes are ignored.
func (b *Bitmap) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	b.Pix[y*b.W+x] = v
}

// Equal reports whether two bitmaps have identical dimensions and pixels.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i := range b.Pix {
		if b.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	n := NewBitmap(b.W, b.H)
	copy(n.Pix, b.Pix)
	return n
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H int
}

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Union returns the bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x0, y0 := min(r.X, o.X), min(r.Y, o.Y)
	x1 := max(r.X+r.W, o.X+o.W)
	y1 := max(r.Y+r.H, o.Y+o.H)
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Op is a display-channel drawing operation, the shared vocabulary that
// each protocol (RDP-like, X-like, LBX) encodes in its own wire format.
type Op interface {
	// Bounds reports the damaged region.
	Bounds() Rect
	opName() string
}

// FillRect paints a solid rectangle.
type FillRect struct {
	Rect  Rect
	Color byte
}

// Bounds implements Op.
func (o FillRect) Bounds() Rect   { return o.Rect }
func (o FillRect) opName() string { return "FillRect" }

// CopyArea copies a rectangle within the framebuffer (scrolling).
type CopyArea struct {
	Src  Rect
	DstX int
	DstY int
}

// Bounds implements Op.
func (o CopyArea) Bounds() Rect   { return Rect{o.DstX, o.DstY, o.Src.W, o.Src.H} }
func (o CopyArea) opName() string { return "CopyArea" }

// PutBitmap blits pixel data (the expensive operation every protocol must
// either ship raw, compress, or cache).
type PutBitmap struct {
	X, Y int
	Img  *Bitmap
}

// Bounds implements Op.
func (o PutBitmap) Bounds() Rect   { return Rect{o.X, o.Y, o.Img.W, o.Img.H} }
func (o PutBitmap) opName() string { return "PutBitmap" }

// DrawText renders a string with the built-in cell font.
type DrawText struct {
	X, Y  int
	Text  string
	Color byte
}

// Bounds implements Op.
func (o DrawText) Bounds() Rect {
	return Rect{o.X, o.Y, len(o.Text) * GlyphW, GlyphH}
}
func (o DrawText) opName() string { return "DrawText" }

// Glyph cell dimensions for the synthetic fixed-width font.
const (
	GlyphW = 8
	GlyphH = 13
)

// GlyphMask deterministically synthesizes the 1-bit coverage mask for a
// rune: a fixed-width cell whose on-pixels (value 1) derive from the code
// point, standing in for a real font rasterizer. Identical runes always
// produce identical masks, which is what glyph caches exploit; text color
// is applied at draw time, independent of the mask.
func GlyphMask(r rune) *Bitmap {
	b := NewBitmap(GlyphW, GlyphH)
	seed := uint64(r)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for y := 0; y < GlyphH; y++ {
		rowBits := seed >> (uint(y%8) * 7)
		for x := 0; x < GlyphW; x++ {
			if rowBits>>(uint(x))&1 == 1 {
				b.Set(x, y, 1)
			}
		}
	}
	return b
}

// Framebuffer is a renderable screen.
type Framebuffer struct {
	*Bitmap
	damage Rect
	ops    int64
	// copyBuf is the reusable staging buffer for overlapping copies, so a
	// steady-state scroll renders without allocating.
	copyBuf []byte
}

// NewFramebuffer allocates a screen of the given size.
func NewFramebuffer(w, h int) *Framebuffer {
	return &Framebuffer{Bitmap: NewBitmap(w, h)}
}

// Reset returns the framebuffer to its freshly allocated state — every
// pixel zero, no damage, op counter cleared — retaining the pixel and
// copy-staging allocations, so a session pool can recycle a client's
// screen without reallocating it.
func (fb *Framebuffer) Reset() {
	clear(fb.Pix)
	fb.damage = Rect{}
	fb.ops = 0
}

// Ops reports how many operations have been applied.
func (fb *Framebuffer) Ops() int64 { return fb.ops }

// Damage reports the accumulated damaged region since the last ResetDamage.
func (fb *Framebuffer) Damage() Rect { return fb.damage }

// ResetDamage clears damage tracking.
func (fb *Framebuffer) ResetDamage() { fb.damage = Rect{} }

// Apply renders a boxed operation into the framebuffer. The concrete
// ApplyFill/ApplyCopy/ApplyBlit/ApplyText forms render the same pixels
// without the interface dispatch; hot paths use those (or ApplyTape)
// directly.
func (fb *Framebuffer) Apply(op Op) {
	switch o := op.(type) {
	case FillRect:
		fb.ApplyFill(o.Rect, o.Color)
	case CopyArea:
		fb.ApplyCopy(o.Src, o.DstX, o.DstY)
	case PutBitmap:
		fb.ApplyBlit(o.X, o.Y, o.Img)
	case DrawText:
		fb.ApplyTextString(o.X, o.Y, o.Text, o.Color)
	default:
		panic(fmt.Sprintf("display: unknown op %T", op))
	}
}

// ApplyFill renders a solid rectangle.
func (fb *Framebuffer) ApplyFill(r Rect, color byte) {
	fb.ops++
	fb.damage = fb.damage.Union(r)
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			fb.Set(x, y, color)
		}
	}
}

// ApplyCopy renders an on-screen copy (scrolling), staging through a
// reusable buffer so overlapping regions behave.
func (fb *Framebuffer) ApplyCopy(src Rect, dstX, dstY int) {
	fb.ops++
	fb.damage = fb.damage.Union(Rect{dstX, dstY, src.W, src.H})
	n := src.W * src.H
	if cap(fb.copyBuf) < n {
		fb.copyBuf = make([]byte, n)
	}
	tmp := fb.copyBuf[:n]
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			tmp[y*src.W+x] = fb.At(src.X+x, src.Y+y)
		}
	}
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			fb.Set(dstX+x, dstY+y, tmp[y*src.W+x])
		}
	}
}

// ApplyBlit renders bitmap pixels at (x, y).
func (fb *Framebuffer) ApplyBlit(x, y int, img *Bitmap) {
	fb.ops++
	fb.damage = fb.damage.Union(Rect{x, y, img.W, img.H})
	for yy := 0; yy < img.H; yy++ {
		for xx := 0; xx < img.W; xx++ {
			fb.Set(x+xx, y+yy, img.At(xx, yy))
		}
	}
}

// ApplyText renders UTF-8 text bytes with the cell font, rasterizing glyph
// rows via GlyphRowBits so no mask bitmap is allocated.
func (fb *Framebuffer) ApplyText(x, y int, text []byte, color byte) {
	fb.ops++
	fb.damage = fb.damage.Union(Rect{x, y, len(text) * GlyphW, GlyphH})
	fb.drawText(x, y, text, "", color)
}

// ApplyTextString is ApplyText for a string, with identical damage
// accounting and pixels.
func (fb *Framebuffer) ApplyTextString(x, y int, s string, color byte) {
	fb.ops++
	fb.damage = fb.damage.Union(Rect{x, y, len(s) * GlyphW, GlyphH})
	fb.drawText(x, y, nil, s, color)
}

// drawText rasterizes whichever of text/s is set (range over a string and
// a utf8.DecodeRune walk over its bytes yield identical rune sequences).
func (fb *Framebuffer) drawText(x, y int, text []byte, s string, color byte) {
	cx := x
	blit := func(r rune) {
		for yy := 0; yy < GlyphH; yy++ {
			row := GlyphRowBits(r, yy)
			for xx := 0; xx < GlyphW; xx++ {
				if row>>uint(xx)&1 == 1 {
					fb.Set(cx+xx, y+yy, color)
				}
			}
		}
		cx += GlyphW
	}
	if text != nil {
		for off := 0; off < len(text); {
			r, size := utf8.DecodeRune(text[off:])
			off += size
			blit(r)
		}
		return
	}
	for _, r := range s {
		blit(r)
	}
}

// ApplyTape renders tape entries [from, to) through the concrete apply
// forms — the devirtualized equivalent of applying each boxed op.
func (fb *Framebuffer) ApplyTape(t *OpTape, from, to int) {
	for i := from; i < to; i++ {
		switch t.Kind(i) {
		case KindFill:
			r, c := t.FillAt(i)
			fb.ApplyFill(r, c)
		case KindCopy:
			src, dx, dy := t.CopyAt(i)
			fb.ApplyCopy(src, dx, dy)
		case KindText:
			x, y, s, c := t.TextAt(i)
			fb.ApplyText(x, y, s, c)
		case KindBlit:
			x, y, img := t.BlitAt(i)
			fb.ApplyBlit(x, y, img)
		}
	}
}

// InputEvent is an input-channel event.
type InputEvent interface {
	inputName() string
}

// KeyEvent is a key press or release.
type KeyEvent struct {
	Down bool
	Code uint16
}

func (KeyEvent) inputName() string { return "Key" }

// MouseMove reports pointer motion.
type MouseMove struct {
	X, Y int
}

func (MouseMove) inputName() string { return "MouseMove" }

// MouseButton is a button press or release.
type MouseButton struct {
	Down   bool
	Button uint8
}

func (MouseButton) inputName() string { return "MouseButton" }
