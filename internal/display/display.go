// Package display models the graphical substrate shared by every remote
// display protocol in the reproduction: bitmaps, drawing operations, a
// software framebuffer that actually renders them, and deterministic
// synthetic content generators (animation frames, banner ads, ticker
// strips) for the paper's workloads.
//
// Both the server and the client render into framebuffers, so integration
// tests can assert that a protocol round-trip reproduces the server's
// pixels exactly.
package display

import (
	"fmt"
	"hash/fnv"
)

// Bitmap is an 8-bit-per-pixel image (the paper's testbed era color depth).
type Bitmap struct {
	W, H int
	Pix  []byte // len W*H, row-major
}

// NewBitmap allocates a zeroed bitmap.
func NewBitmap(w, h int) *Bitmap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("display: invalid bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, Pix: make([]byte, w*h)}
}

// Bytes reports the raw pixel payload size.
func (b *Bitmap) Bytes() int { return len(b.Pix) }

// Hash returns a content digest used as the bitmap-cache key.
func (b *Bitmap) Hash() uint64 {
	h := fnv.New64a()
	var dims [8]byte
	dims[0], dims[1] = byte(b.W), byte(b.W>>8)
	dims[2], dims[3] = byte(b.H), byte(b.H>>8)
	h.Write(dims[:4])
	h.Write(b.Pix)
	return h.Sum64()
}

// At reads pixel (x, y); out-of-range reads return 0.
func (b *Bitmap) At(x, y int) byte {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return 0
	}
	return b.Pix[y*b.W+x]
}

// Set writes pixel (x, y); out-of-range writes are ignored.
func (b *Bitmap) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	b.Pix[y*b.W+x] = v
}

// Equal reports whether two bitmaps have identical dimensions and pixels.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.W != o.W || b.H != o.H {
		return false
	}
	for i := range b.Pix {
		if b.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the bitmap.
func (b *Bitmap) Clone() *Bitmap {
	n := NewBitmap(b.W, b.H)
	copy(n.Pix, b.Pix)
	return n
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H int
}

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Union returns the bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	x0, y0 := min(r.X, o.X), min(r.Y, o.Y)
	x1 := max(r.X+r.W, o.X+o.W)
	y1 := max(r.Y+r.H, o.Y+o.H)
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Op is a display-channel drawing operation, the shared vocabulary that
// each protocol (RDP-like, X-like, LBX) encodes in its own wire format.
type Op interface {
	// Bounds reports the damaged region.
	Bounds() Rect
	opName() string
}

// FillRect paints a solid rectangle.
type FillRect struct {
	Rect  Rect
	Color byte
}

// Bounds implements Op.
func (o FillRect) Bounds() Rect   { return o.Rect }
func (o FillRect) opName() string { return "FillRect" }

// CopyArea copies a rectangle within the framebuffer (scrolling).
type CopyArea struct {
	Src  Rect
	DstX int
	DstY int
}

// Bounds implements Op.
func (o CopyArea) Bounds() Rect   { return Rect{o.DstX, o.DstY, o.Src.W, o.Src.H} }
func (o CopyArea) opName() string { return "CopyArea" }

// PutBitmap blits pixel data (the expensive operation every protocol must
// either ship raw, compress, or cache).
type PutBitmap struct {
	X, Y int
	Img  *Bitmap
}

// Bounds implements Op.
func (o PutBitmap) Bounds() Rect   { return Rect{o.X, o.Y, o.Img.W, o.Img.H} }
func (o PutBitmap) opName() string { return "PutBitmap" }

// DrawText renders a string with the built-in cell font.
type DrawText struct {
	X, Y  int
	Text  string
	Color byte
}

// Bounds implements Op.
func (o DrawText) Bounds() Rect {
	return Rect{o.X, o.Y, len(o.Text) * GlyphW, GlyphH}
}
func (o DrawText) opName() string { return "DrawText" }

// Glyph cell dimensions for the synthetic fixed-width font.
const (
	GlyphW = 8
	GlyphH = 13
)

// GlyphMask deterministically synthesizes the 1-bit coverage mask for a
// rune: a fixed-width cell whose on-pixels (value 1) derive from the code
// point, standing in for a real font rasterizer. Identical runes always
// produce identical masks, which is what glyph caches exploit; text color
// is applied at draw time, independent of the mask.
func GlyphMask(r rune) *Bitmap {
	b := NewBitmap(GlyphW, GlyphH)
	seed := uint64(r)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for y := 0; y < GlyphH; y++ {
		rowBits := seed >> (uint(y%8) * 7)
		for x := 0; x < GlyphW; x++ {
			if rowBits>>(uint(x))&1 == 1 {
				b.Set(x, y, 1)
			}
		}
	}
	return b
}

// Framebuffer is a renderable screen.
type Framebuffer struct {
	*Bitmap
	damage Rect
	ops    int64
}

// NewFramebuffer allocates a screen of the given size.
func NewFramebuffer(w, h int) *Framebuffer {
	return &Framebuffer{Bitmap: NewBitmap(w, h)}
}

// Ops reports how many operations have been applied.
func (fb *Framebuffer) Ops() int64 { return fb.ops }

// Damage reports the accumulated damaged region since the last ResetDamage.
func (fb *Framebuffer) Damage() Rect { return fb.damage }

// ResetDamage clears damage tracking.
func (fb *Framebuffer) ResetDamage() { fb.damage = Rect{} }

// Apply renders an operation into the framebuffer.
func (fb *Framebuffer) Apply(op Op) {
	fb.ops++
	fb.damage = fb.damage.Union(op.Bounds())
	switch o := op.(type) {
	case FillRect:
		for y := o.Rect.Y; y < o.Rect.Y+o.Rect.H; y++ {
			for x := o.Rect.X; x < o.Rect.X+o.Rect.W; x++ {
				fb.Set(x, y, o.Color)
			}
		}
	case CopyArea:
		// Copy through a staging buffer so overlapping regions behave.
		tmp := make([]byte, o.Src.W*o.Src.H)
		for y := 0; y < o.Src.H; y++ {
			for x := 0; x < o.Src.W; x++ {
				tmp[y*o.Src.W+x] = fb.At(o.Src.X+x, o.Src.Y+y)
			}
		}
		for y := 0; y < o.Src.H; y++ {
			for x := 0; x < o.Src.W; x++ {
				fb.Set(o.DstX+x, o.DstY+y, tmp[y*o.Src.W+x])
			}
		}
	case PutBitmap:
		for y := 0; y < o.Img.H; y++ {
			for x := 0; x < o.Img.W; x++ {
				fb.Set(o.X+x, o.Y+y, o.Img.At(x, y))
			}
		}
	case DrawText:
		cx := o.X
		for _, r := range o.Text {
			g := GlyphMask(r)
			for y := 0; y < g.H; y++ {
				for x := 0; x < g.W; x++ {
					if g.At(x, y) != 0 {
						fb.Set(cx+x, o.Y+y, o.Color)
					}
				}
			}
			cx += GlyphW
		}
	default:
		panic(fmt.Sprintf("display: unknown op %T", op))
	}
}

// InputEvent is an input-channel event.
type InputEvent interface {
	inputName() string
}

// KeyEvent is a key press or release.
type KeyEvent struct {
	Down bool
	Code uint16
}

func (KeyEvent) inputName() string { return "Key" }

// MouseMove reports pointer motion.
type MouseMove struct {
	X, Y int
}

func (MouseMove) inputName() string { return "MouseMove" }

// MouseButton is a button press or release.
type MouseButton struct {
	Down   bool
	Button uint8
}

func (MouseButton) inputName() string { return "MouseButton" }
