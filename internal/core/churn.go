package core

import (
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func init() {
	register(Experiment{
		ID:    "churn1",
		Title: "Session churn: fleet p95 latency versus login/logout turnover rate",
		Paper: "Beyond the paper's steady state: it prices session setup (tab4's handshake bytes) and login memory (§5.1.1) but measures populations that log in once. Here every departure is replaced by a fresh login that pays both costs on the live fleet, swept over turnover rates per placement policy.",
		Run:   runChurn1,
	})
	register(Experiment{
		ID:    "fail1",
		Title: "Shard failover: fleet p95 excursion and recovery after a machine dies",
		Paper: "Beyond the paper: kill the weak machine of the heterogeneous fleet mid-span; its users' interactions censor at the kill and they re-login elsewhere through the live placement policy, paying full session setup. Measured as the per-second fleet p95 timeline around the kill, per policy.",
		Run:   runFail1,
	})
}

// churnFleet is the canonical heterogeneous three-machine fleet both
// dynamic experiments run on.
func churnFleet(cfg Config) shard.Config {
	base := server.DefaultConfig()
	base.Span = 6 * simclock.Second
	probeSpan := 2 * simclock.Second
	if cfg.Quick {
		base.Span = 3 * simclock.Second
		probeSpan = simclock.Second
	}
	return shard.Config{
		Base:      base,
		Machines:  shard.DefaultFleet(3),
		ProbeSpan: probeSpan,
		Seed:      cfg.Seed,
	}
}

// churn1 sweeps the per-session turnover rate at a fixed population: one
// series per placement policy, fleet p95 versus churn rate. Rate zero is
// the static fleet every earlier experiment measured; each step up makes
// replacement logins — session-setup bytes on the contended links, login
// page-ins, process-creation CPU — a larger share of the offered load.
func runChurn1(cfg Config) (*Result, error) {
	res := &Result{ID: "churn1", Title: "Fleet p95 echo latency vs session churn rate, by placement policy"}
	fleet := churnFleet(cfg)
	const users = 18
	rates := []float64{0, 0.1, 0.25, 0.5}
	if cfg.Quick {
		rates = []float64{0, 0.25}
	}

	x := make([]float64, len(rates))
	for i, r := range rates {
		x[i] = r
	}
	for _, policy := range shard.Policies() {
		s := Series{
			Label:  policy,
			XLabel: "per-session logout rate (1/s)",
			YLabel: "fleet p95 echo latency (ms)",
			X:      x,
		}
		var last shard.FleetResult
		for _, rate := range rates {
			fc := fleet
			fc.Users = users
			fc.Policy = policy
			fc.ChurnRatePerSec = rate
			fr, err := shard.Run(fc)
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, fr.EchoP95Ms)
			last = fr
		}
		res.Series = append(res.Series, s)
		res.Notef("%s at %.2f/s turnover: %d arrivals, %d departures, slowest login %.0f ms",
			policy, rates[len(rates)-1], last.Arrivals, last.Departures, last.LoginMaxMs)
	}
	res.Notef("%d users held constant; every departure is replaced through the live policy, so placement reflects the fleet's churn history, not the initial plan", users)
	res.Notef("arrivals pay tab4 session-setup bytes on the shard's contended link, full-manifest page-ins, and login process creation before their first echo counts")
	return res, nil
}

// fail1 kills the heterogeneous fleet's weak machine mid-span and traces
// the fleet p95 timeline through the failure: the excursion as the
// displaced users' interactions censor and their re-login storm hits the
// survivors, then the recovery as the storm drains. One series per
// policy; the recovery numbers land in the notes.
func runFail1(cfg Config) (*Result, error) {
	res := &Result{ID: "fail1", Title: "Fleet p95 timeline through a machine kill, by placement policy"}
	fleet := churnFleet(cfg)
	fleet.Base.Span = 8 * simclock.Second
	killAt := 4 * simclock.Second
	users := 22
	if cfg.Quick {
		fleet.Base.Span = 4 * simclock.Second
		killAt = 2 * simclock.Second
	}

	for _, policy := range shard.Policies() {
		fc := fleet
		fc.Users = users
		fc.Policy = policy
		fc.KillShard = 2 // the weak 48 MB, 0.6x machine
		fc.KillAt = killAt
		fr, err := shard.Run(fc)
		if err != nil {
			return nil, err
		}
		s := Series{
			Label:  policy,
			XLabel: "time (s, slice end)",
			YLabel: "fleet p95 echo latency (ms)",
		}
		for i, p95 := range fr.P95TimelineMs {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, p95)
		}
		res.Series = append(res.Series, s)
		recovery := "never within the run"
		if fr.RecoveryMs >= 0 {
			recovery = simclock.Millis(fr.RecoveryMs).String()
		}
		res.Notef("%s: placed %v, kill displaced %d users; p95 pre-kill %.0f ms, peak %.0f ms, recovered in %s",
			policy, fr.Placement, fr.Shards[2].Departures, fr.PreKillP95Ms, fr.PeakKillP95Ms, recovery)
	}
	res.Notef("machine 2 (48 MB, 0.6x) killed at %v of %v; its users re-login through the live policy at the kill instant — a reconnect storm of full session setups against the survivors",
		killAt, fleet.Base.Span)
	return res, nil
}
