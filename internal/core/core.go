// Package core implements the paper's contribution: a structured approach
// for evaluating thin-client server operating systems on user-perceived
// latency. The framework follows the paper's two-step decomposition —
// user behavior generates resource load, and operating system design
// translates load into latency — applied per resource (processor, memory,
// network).
//
// The package also hosts the experiment registry: one runnable experiment
// per table and figure in the paper's evaluation, each wired to the
// simulated substrates (sched, vm, netsim, proto, bitmapcache) and
// producing the same rows or series the paper reports.
package core

import (
	"fmt"
	"sort"
	"strings"

	"thinbench/internal/farm"
	"thinbench/internal/metrics"
)

// System identifies an evaluated operating system configuration.
type System string

// The paper's three systems.
const (
	SystemLinuxX        System = "Linux/X"
	SystemNTWorkstation System = "NT Workstation"
	SystemTSE           System = "NT TSE"
)

// Series is one labeled data series of a figure.
type Series struct {
	Label string
	// XLabel and YLabel name the axes (shared across a figure's series).
	XLabel, YLabel string
	X, Y           []float64
}

// Result is an experiment's output: tables and/or series plus notes
// recording what the paper reports for comparison.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Series []Series
	Notes  []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result for terminal output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "series %q (%s vs %s):\n", s.Label, s.YLabel, s.XLabel)
		for i := range s.X {
			fmt.Fprintf(&b, "  %12.3f  %12.4f\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config controls experiment execution.
type Config struct {
	// Seed drives all randomness; identical seeds reproduce identical
	// results.
	Seed uint64
	// Quick shortens measurement windows (for smoke tests and benchmarks
	// that iterate). Experiments preserve shape under Quick, with more
	// noise.
	Quick bool
}

// DefaultConfig runs experiments at the paper's measurement durations.
func DefaultConfig() Config { return Config{Seed: 1999} }

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key: fig1..fig9, tab1..tab6, abl1..abl4.
	ID string
	// Title describes the artifact.
	Title string
	// Paper summarizes what the paper reports, for side-by-side reading.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// Experiments lists all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment sequentially, returning results in ID
// order. It is RunAllParallel with a single worker.
func RunAll(cfg Config) ([]*Result, error) {
	return RunAllParallel(cfg, 1)
}

// RunAllParallel executes every experiment across a farm of the given
// worker count (<= 0 means GOMAXPROCS), returning results in ID order.
// Experiments share no mutable state and each derives all randomness from
// cfg.Seed, so the results are identical to a sequential run — only the
// wall-clock time changes.
func RunAllParallel(cfg Config, workers int) ([]*Result, error) {
	exps := Experiments()
	results, err := farm.Run(farm.Config{Sessions: len(exps), Workers: workers, Seed: cfg.Seed},
		func(s *farm.Session) (*Result, error) {
			r, err := exps[s.Index].Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", exps[s.Index].ID, err)
			}
			return r, nil
		})
	if err != nil {
		// Preserve RunAll's historical contract: the prefix of completed
		// results up to the first failure, plus the error.
		var prefix []*Result
		for _, r := range results {
			if r == nil {
				break
			}
			prefix = append(prefix, r)
		}
		return prefix, err
	}
	return results, nil
}
