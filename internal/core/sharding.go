package core

import (
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func init() {
	register(Experiment{
		ID:    "shard1",
		Title: "Fleet sharding: placement policy versus fleet-level p95 latency",
		Paper: "Beyond the paper: it sizes one multi-user machine; a fleet of them serving one population turns sizing into placement. Round-robin, memory-aware (the §5.1.1 division per machine), and latency-aware (probe the paper's own metric) placement over a heterogeneous fleet.",
		Run:   runShard1,
	})
}

// shard1 sweeps total population across the canonical heterogeneous
// three-machine fleet under every placement policy: one series per
// policy, fleet-level p95 versus total users. Each data point is a whole
// fleet — M complete shared servers fanned out across the farm.
func runShard1(cfg Config) (*Result, error) {
	res := &Result{ID: "shard1", Title: "Fleet-level p95 echo latency vs total users, by placement policy"}
	base := server.DefaultConfig()
	base.Span = 6 * simclock.Second
	probeSpan := 2 * simclock.Second
	users := []int{6, 12, 18, 24, 30}
	if cfg.Quick {
		base.Span = 2 * simclock.Second
		probeSpan = simclock.Second
		users = []int{4, 10, 16, 22}
	}
	machines := shard.DefaultFleet(3)

	x := make([]float64, len(users))
	for i, n := range users {
		x[i] = float64(n)
	}
	for _, policy := range shard.Policies() {
		s := Series{
			Label:  policy,
			XLabel: "total fleet users",
			YLabel: "fleet p95 echo latency (ms)",
			X:      x,
		}
		var last shard.FleetResult
		for _, n := range users {
			fr, err := shard.Run(shard.Config{
				Base:      base,
				Machines:  machines,
				Users:     n,
				Policy:    policy,
				ProbeSpan: probeSpan,
				Seed:      cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, fr.EchoP95Ms)
			last = fr
		}
		res.Series = append(res.Series, s)
		res.Notef("%s places %d users as %v (per-shard p95 max %.0f ms)",
			policy, last.Users, last.Placement, last.MaxShardP95Ms)
	}
	res.Notef("fleet: %d machines cycling big (128 MB, 1.5x CPU) / base (%d MB) / weak (48 MB, 0.6x CPU); each point runs every shard as a complete shared server",
		len(machines), base.PhysicalKB/1024)
	res.Notef("fleet p95 comes from merged per-shard latency histograms (%gms buckets): percentiles of separate machines cannot be combined after the fact", shard.HistBucketMs)
	return res, nil
}
