package core

import (
	"thinbench/internal/control"
	"thinbench/internal/schedule"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

func init() {
	register(Experiment{
		ID:    "ctrl1",
		Title: "Online admission control versus the offline sizing oracle",
		Paper: "Beyond the paper's offline sizing question (§5): the paper asks how many users a machine supports before the day starts; this asks what a live controller achieves deciding login by login with no knowledge of the day. The oracle sizes for the 9 AM storm's worst minute, so serving everyone means overprovisioning for a transient; the admission gate instead holds the excess at the login screen, trading racked machines for queueing delay.",
		Run:   runCtrl1,
	})
}

// ctrl1Margin is the stated controller-versus-oracle margin: the gated
// fleet's peak admitted population must land within this factor of the
// oracle's fleet seats, in either direction. The two answer different
// questions — worst-slice capacity for a known day versus greedy
// admission against steady-state probes — so they agree to a factor,
// not a seat.
const ctrl1Margin = 1.5

// ctrl1Run is one profile's oracle answer and controlled-versus-open
// fleet pair, kept structured so tests assert on numbers rather than
// parsing notes.
type ctrl1Run struct {
	oracleSeats int
	oracleLimit sizing.Limit
	fleetSeats  int
	demand      int
	open        shard.FleetResult
	gated       shard.FleetResult
}

// ctrl1Profile sizes one machine for the profile offline, then offers
// 1.5x the oracle's fleet-wide answer to a two-machine fleet of the
// identical machine model, open and admission-gated.
func ctrl1Profile(cfg Config, prof schedule.Profile) (ctrl1Run, error) {
	srv := sizing.DefaultServer()
	// A 48 MB box: the §5.1.1 memory division is the operative limit, the
	// cliff both the offline oracle and the gate's marginal probes see.
	srv.PhysicalKB = 48 * 1024
	user := sizing.Developer()
	span := 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if cfg.Quick {
		span = 6 * simclock.Second
		probeSpan = simclock.Second
	}
	const machines = 2
	maxSeats := 2 * sizing.MemoryCapacity(srv, user)
	seats, _, limit, err := sizing.ScheduleCapacity(srv, user, prof, maxSeats, span, cfg.Seed, 0)
	if err != nil {
		return ctrl1Run{}, err
	}
	r := ctrl1Run{
		oracleSeats: seats,
		oracleLimit: limit,
		fleetSeats:  machines * seats,
	}
	r.demand = r.fleetSeats + (r.fleetSeats+1)/2
	fleet := shard.Config{
		Base:      sizing.ProbeConfig(srv, user, 1, span, cfg.Seed),
		Machines:  make([]shard.Machine, machines),
		Users:     r.demand,
		Schedule:  &prof,
		ProbeSpan: probeSpan,
		Seed:      cfg.Seed,
	}
	if r.open, err = shard.Run(fleet); err != nil {
		return ctrl1Run{}, err
	}
	r.gated, err = control.Run(fleet, control.Config{
		Admission: &control.Admission{Retry: 500 * simclock.Millisecond},
	})
	if err != nil {
		return ctrl1Run{}, err
	}
	return r, nil
}

// runCtrl1 compares the admission controller against the offline
// schedule oracle on the office day and the shift handover: the same
// overcommitted demand runs open and gated, and the notes price the
// alternative — how many machines the oracle would rack to serve it all
// within budget versus the queueing delay the gate charges instead.
func runCtrl1(cfg Config) (*Result, error) {
	res := &Result{ID: "ctrl1", Title: "Admission-gated fleet p95 versus open overload, priced against oracle provisioning"}
	for _, prof := range []schedule.Profile{schedule.OfficeDay(), schedule.ShiftChange()} {
		r, err := ctrl1Profile(cfg, prof)
		if err != nil {
			return nil, err
		}
		for _, run := range []struct {
			label string
			fr    shard.FleetResult
		}{{prof.Name + "/open", r.open}, {prof.Name + "/gated", r.gated}} {
			s := Series{
				Label:  run.label,
				XLabel: "time (s, slice end)",
				YLabel: "fleet p95 echo latency (ms)",
			}
			for i, p95 := range run.fr.P95TimelineMs {
				s.X = append(s.X, float64(i+1))
				s.Y = append(s.Y, p95)
			}
			res.Series = append(res.Series, s)
		}
		res.Notef("%s: oracle sizes each machine at %d seats (%s-limited at %d); %d seats fleet-wide, %d offered",
			prof.Name, r.oracleSeats, r.oracleLimit, r.oracleSeats+1, r.fleetSeats, r.demand)
		res.Notef("%s: open p95 %.0f ms; gated p95 %.0f ms at peak %d admitted (%.2fx the oracle's fleet seats), %d logins deferred, %d rejected, queue wait mean %.0f / max %.0f ms",
			prof.Name, r.open.EchoP95Ms, r.gated.EchoP95Ms, r.gated.PeakUsers,
			float64(r.gated.PeakUsers)/float64(r.fleetSeats),
			r.gated.DeferredLogins, r.gated.RejectedLogins,
			r.gated.QueueWaitMeanMs, r.gated.QueueWaitMaxMs)
		if r.oracleSeats > 0 {
			machinesNeeded := (r.demand + r.oracleSeats - 1) / r.oracleSeats
			res.Notef("%s: serving all %d within budget takes %d oracle-sized machines — the gate holds the budget on 2 by charging the storm's excess to the login queue",
				prof.Name, r.demand, machinesNeeded)
		}
	}
	res.Notef("stated margin: the gated peak lands within %.1fx of the oracle's fleet seats on every profile — the controller re-derives the oracle's answer online, without seeing the day in advance", ctrl1Margin)
	return res, nil
}
