package core

import (
	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

func init() {
	register(Experiment{
		ID:    "day1",
		Title: "An office day: fleet arrivals and p95 timeline under the OfficeDay schedule",
		Paper: "Beyond the paper's steady state and PR 4's memoryless churn: §5 argues interactive load is bursty and correlated, so the lifecycle is driven by an empirical-shaped day — 9 AM login storm, lunch dip, close-of-day exodus — replayed across the fleet, every arrival routed through the live placement policy.",
		Run:   runDay1,
	})
	register(Experiment{
		ID:    "storm1",
		Title: "Login storm failover: a machine kill during the 9 AM ramp versus under flat load",
		Paper: "Beyond the paper, echoing SLIM's stateless-client claim (PAPERS.md) that re-login storms are the thin-client stress case: the weak machine dies in the middle of the morning ramp, so its displaced users re-login into the surge. Compared against the same kill under flat (memoryless) churn at equal population.",
		Run:   runStorm1,
	})
}

// scheduleFleet is the canonical heterogeneous three-machine fleet the
// schedule experiments run on, spanned long enough for a whole compressed
// office day.
func scheduleFleet(cfg Config) shard.Config {
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	if cfg.Quick {
		base.Span = 6 * simclock.Second
	}
	return shard.Config{
		Base:     base,
		Machines: shard.DefaultFleet(3),
		Seed:     cfg.Seed,
	}
}

// runDay1 replays the OfficeDay profile across the fleet, one series per
// placement policy, plus the compiled arrival counts per second so the
// latency timeline can be read against the storm that causes it.
func runDay1(cfg Config) (*Result, error) {
	res := &Result{ID: "day1", Title: "Fleet p95 timeline through an office day, by placement policy"}
	fleet := scheduleFleet(cfg)
	day := schedule.OfficeDay()
	const users = 18

	// The offered load: arrivals per timeline slice, from the same
	// compiled plan the fleet executes (the fleet stream differs per
	// policy only in placement, never in arrival times).
	planCfg := fleet
	planCfg.Users = users
	planCfg.Schedule = &day
	plan, err := planCfg.SchedulePlan()
	if err != nil {
		return nil, err
	}
	nSlices := server.TimelineSlices(fleet.Base.Span)
	arrivals := Series{Label: "arrivals", XLabel: "time (s, slice end)", YLabel: "logins in slice"}
	counts := make([]float64, nSlices)
	for _, s := range plan {
		if s.Login > 0 {
			counts[int(simclock.Duration(s.Login)/server.TimelineSlice)]++
		}
	}
	for i, c := range counts {
		arrivals.X = append(arrivals.X, float64(i+1))
		arrivals.Y = append(arrivals.Y, c)
	}
	res.Series = append(res.Series, arrivals)

	for _, policy := range []string{shard.PolicyRoundRobin, shard.PolicyLatAware} {
		fc := fleet
		fc.Users = users
		fc.Policy = policy
		fc.Schedule = &day
		fr, err := shard.Run(fc)
		if err != nil {
			return nil, err
		}
		s := Series{
			Label:  policy,
			XLabel: "time (s, slice end)",
			YLabel: "fleet p95 echo latency (ms)",
		}
		for i, p95 := range fr.P95TimelineMs {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, p95)
		}
		res.Series = append(res.Series, s)
		res.Notef("%s: %d at open %v, %d arrivals, %d departures, slowest login %.0f ms",
			policy, sum(fr.Placement), fr.Placement, fr.Arrivals, fr.Departures, fr.LoginMaxMs)
	}
	res.Notef("%d seats under OfficeDay: the span maps 7:30-18:00, the 9 AM storm lands at 0.13-0.19 of it, arrivals stop after the 17:00 close", users)
	res.Notef("every arrival pays its protocol handshake on the shard's contended link, full-manifest page-ins, and login process creation before the first echo counts")
	return res, nil
}

func sum(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// runStorm1 kills the weak machine in the middle of the 9 AM ramp and
// compares the fleet's excursion and recovery against the same kill under
// flat load: the displaced users re-login into a surge in one case and a
// trickle in the other.
func runStorm1(cfg Config) (*Result, error) {
	res := &Result{ID: "storm1", Title: "Fleet p95 timeline through a machine kill, storm versus flat arrivals"}
	fleet := scheduleFleet(cfg)
	killAt := 2 * simclock.Second
	const users = 15
	day := schedule.OfficeDay()
	flat := schedule.Flat(schedule.DefaultFlatRate)

	type run struct {
		label string
		prof  *schedule.Profile
		kill  bool
	}
	runs := []run{
		{"officeday", &day, false},
		{"officeday+kill", &day, true},
		{"flat+kill", &flat, true},
	}
	var recovery = map[string]float64{}
	for _, r := range runs {
		fc := fleet
		fc.Users = users
		fc.Policy = shard.PolicyRoundRobin
		fc.Schedule = r.prof
		if r.kill {
			fc.KillShard = 2 // the weak 48 MB, 0.6x machine
			fc.KillAt = killAt
		}
		fr, err := shard.Run(fc)
		if err != nil {
			return nil, err
		}
		s := Series{
			Label:  r.label,
			XLabel: "time (s, slice end)",
			YLabel: "fleet p95 echo latency (ms)",
		}
		for i, p95 := range fr.P95TimelineMs {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, p95)
		}
		res.Series = append(res.Series, s)
		if r.kill {
			recovery[r.label] = fr.RecoveryMs
			rec := "never within the run"
			if fr.RecoveryMs >= 0 {
				rec = simclock.Millis(fr.RecoveryMs).String()
			}
			res.Notef("%s: kill displaced %d users at %v; p95 pre-kill %.0f ms, peak %.0f ms, recovered in %s",
				r.label, fr.Shards[2].Departures, killAt, fr.PreKillP95Ms, fr.PeakKillP95Ms, rec)
		} else {
			res.Notef("%s: no kill; %d arrivals, slowest login %.0f ms — the baseline ramp", r.label, fr.Arrivals, fr.LoginMaxMs)
		}
	}
	storm, flatRec := recovery["officeday+kill"], recovery["flat+kill"]
	switch {
	case storm < 0 && flatRec >= 0:
		res.Notef("the storm-time kill never recovered within the run; the flat-load kill recovered in %.0f ms", flatRec)
	case storm >= 0 && flatRec >= 0:
		res.Notef("recovery: %.0f ms after a storm-time kill vs %.0f ms under flat load", storm, flatRec)
	case storm >= 0:
		res.Notef("the flat-load kill never recovered within the run; the storm-time kill recovered in %.0f ms", storm)
	default:
		res.Notef("neither kill recovered within the run")
	}
	res.Notef("%d users, roundrobin placement; machine 2 (48 MB, 0.6x) killed at %v of %v, mid-ramp, so its users re-login into the surge",
		users, killAt, fleet.Base.Span)
	return res, nil
}
