package core

import (
	"fmt"

	"thinbench/internal/server"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
)

func init() {
	register(Experiment{
		ID:    "cont1",
		Title: "Shared-server contention: echo latency versus concurrent users",
		Paper: "The paper's core decomposition — user behavior generates load, the OS translates load into latency — run end to end: all users contend on one CPU, one memory pool, and one link; latency degrades with population and collapses past the §5.1.1 memory capacity.",
		Run:   runCont1,
	})
}

// cont1 runs the contention grid: every data point is one complete shared
// server (not a loop of independent sessions), and whole server instances
// fan out across the farm.
func runCont1(cfg Config) (*Result, error) {
	res := &Result{ID: "cont1", Title: "Echo latency vs concurrent users on one shared server"}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	users := []int{1, 4, 8, 12, 16}
	if cfg.Quick {
		base.Span = 3 * simclock.Second
		users = []int{1, 4, 8, 14}
	}
	grid, err := server.Grid(base, []string{"rdp", "x", "lbx"}, []string{"rr", "nt"}, users, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(users))
	for i, n := range users {
		x[i] = float64(n)
	}
	for _, sc := range grid {
		s := Series{
			Label:  fmt.Sprintf("%s/%s", sc.Protocol, sc.Scheduler),
			XLabel: "concurrent users",
			YLabel: "p95 echo latency (ms)",
			X:      x,
		}
		for _, pt := range sc.Points {
			s.Y = append(s.Y, pt.EchoP95Ms)
		}
		res.Series = append(res.Series, s)
	}
	memCap := session.Capacity(base.PhysicalKB, base.SystemKB, base.SessionManifest())
	res.Notef("memory fits %d sessions; past it the global clock evicts working sets and every keystroke pays page-in latency (§5.2 as an emergent effect)", memCap)
	res.Notef("one server instance per data point: all users share one engine, one %s-scheduled CPU, one vm.Manager, one %.0f Mbps link", base.Scheduler, base.Link.RateMbps)
	return res, nil
}
