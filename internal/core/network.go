package core

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/metrics"
	"thinbench/internal/netsim"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "tab4",
		Title: "Session setup cost (bytes exchanged)",
		Paper: "45,328 bytes TSE vs 16,312 bytes Linux/X; idle connections exchange nothing.",
		Run:   runTab4,
	})
	register(Experiment{
		ID:    "tab5",
		Title: "Protocol comparison on the office workload (bytes/messages per channel)",
		Paper: "RDP 888,239 B / 1,841 msgs; X 6,250,888 / 26,923; LBX 3,197,185 / 36,615. Avg sizes 482 / 232 / 87.",
		Run:   runTab5,
	})
	register(Experiment{
		ID:    "tab6",
		Title: "VIP header-elision savings on the office workload",
		Paper: "Omitting the 20-byte IP header saves 4.65% (RDP), 9.15% (X), 22.90% (LBX).",
		Run:   runTab6,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Web page network load: marquee+banner vs each alone (RDP)",
		Paper: "Combined 1.60 Mbps sustained (plateaus 1.89); marquee alone 0.07; banner alone 0.01 — wildly non-linear.",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "10-frame 20 Hz animated GIF over X, LBX, RDP",
		Paper: "X transfers the full bitmap every frame; RDP's cache absorbs the loop after one pass.",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Ping RTT vs offered load on a 10 Mbps segment",
		Paper: "RTT flat and small until saturation; ~55 ms at 9.6 Mbps.",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "RTT variance (jitter) vs offered load",
		Paper: "Variance near zero until saturation, then explodes.",
		Run:   runFig9,
	})
}

func runTab4(cfg Config) (*Result, error) {
	res := &Result{ID: "tab4", Title: "Session setup cost"}
	table := metrics.NewTable("Protocol", "Setup bytes")
	table.AddRow("RDP (TSE)", metrics.FormatBytes(int64(rdp.NewServer(rdp.DefaultConfig()).SetupBytes())))
	table.AddRow("X (Linux)", metrics.FormatBytes(int64(xwire.NewServer().SetupBytes())))
	table.AddRow("LBX", metrics.FormatBytes(int64(lbx.NewServer(lbx.DefaultConfig()).SetupBytes())))
	res.Tables = append(res.Tables, table)
	res.Notef("idle-state network load is zero on all three protocols: no traffic without user activity")
	return res, nil
}

// protocolRun holds one protocol's capture of the office workload.
type protocolRun struct {
	name string
	rec  *trace.Recorder
}

// captureOffice replays the office workload over all three protocols.
func captureOffice(cfg Config) ([]protocolRun, error) {
	ocfg := workload.DefaultOfficeConfig()
	ocfg.Seed = cfg.Seed
	if cfg.Quick {
		ocfg.TypingChars /= 8
		ocfg.PaintStrokes /= 8
		ocfg.PanelActions /= 8
	}
	tr := workload.OfficeTrace(ocfg)
	// The TSE client samples the pointer instead of forwarding every motion
	// report and flushes input lazily (the paper's own table implies one
	// input PDU per ~0.5 s of activity: 736 messages carrying ~17 events
	// each); the display driver aggregates damage before shipping order
	// PDUs. X writes requests and events at their natural granularity;
	// LBX proxies X with modest stream batching.
	rdpCfg := rdp.DefaultConfig()
	rdpCfg.MotionSample = 8
	runs := []struct {
		name string
		srv  proto.Server
		cli  proto.Client
		opts workload.ReplayOpts
	}{
		{"RDP", rdp.NewServer(rdpCfg), rdp.NewClient(rdpCfg), workload.ReplayOpts{
			InputCoalesce:   500 * simclock.Millisecond,
			DisplayCoalesce: simclock.Second,
		}},
		{"X", xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), workload.ReplayOpts{}},
		{"LBX", lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), workload.ReplayOpts{
			InputCoalesce: 75 * simclock.Millisecond,
		}},
	}
	out := make([]protocolRun, 0, len(runs))
	for _, r := range runs {
		rec := trace.NewRecorder(simclock.Second)
		if err := workload.Replay(tr, r.srv, r.cli, rec, r.opts); err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		out = append(out, protocolRun{name: r.name, rec: rec})
	}
	return out, nil
}

func runTab5(cfg Config) (*Result, error) {
	res := &Result{ID: "tab5", Title: "Protocol comparison: office workload"}
	runs, err := captureOffice(cfg)
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable("", "RDP", "X", "LBX")
	row := func(label string, f func(r *trace.Recorder) string) {
		cells := []string{label}
		for _, r := range runs {
			cells = append(cells, f(r.rec))
		}
		table.AddRow(cells...)
	}
	row("input bytes", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Input().Bytes) })
	row("display bytes", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Display().Bytes) })
	row("total bytes", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Total().Bytes) })
	row("input messages", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Input().Messages) })
	row("display messages", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Display().Messages) })
	row("total messages", func(r *trace.Recorder) string { return metrics.FormatBytes(r.Total().Messages) })
	row("avg message size", func(r *trace.Recorder) string { return fmt.Sprintf("%.2f", r.Total().AvgMessageSize()) })
	res.Tables = append(res.Tables, table)

	rdpB := runs[0].rec.Total().Bytes
	xB := runs[1].rec.Total().Bytes
	lbxB := runs[2].rec.Total().Bytes
	res.Notef("byte ratios: X/RDP = %.2f (paper 7.0), LBX/RDP = %.2f (paper 3.6), LBX/X = %.2f (paper 0.51)",
		float64(xB)/float64(rdpB), float64(lbxB)/float64(rdpB), float64(lbxB)/float64(xB))
	res.Notef("messages are protocol messages here; the paper counted TCP segments, so absolute counts differ while orderings hold")
	return res, nil
}

func runTab6(cfg Config) (*Result, error) {
	res := &Result{ID: "tab6", Title: "VIP header-elision savings"}
	runs, err := captureOffice(cfg)
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable("", "RDP", "X", "LBX")
	normal := []string{"normal bytes"}
	vip := []string{"bytes w/ VIP"}
	savings := []string{"savings"}
	for _, r := range runs {
		total := r.rec.Total().Bytes
		saved, frac := r.rec.VIPSavings()
		normal = append(normal, metrics.FormatBytes(total))
		vip = append(vip, metrics.FormatBytes(total-saved))
		savings = append(savings, fmt.Sprintf("%.2f%%", frac*100))
	}
	table.AddRow(normal...)
	table.AddRow(vip...)
	table.AddRow(savings...)
	res.Tables = append(res.Tables, table)
	res.Notef("paper savings: RDP 4.65%%, X 9.15%%, LBX 22.90%% — smallest average message benefits most")
	return res, nil
}

// replayRDPWeb captures a web-page trace over RDP and reports the load.
func replayRDPWeb(wcfg workload.WebPageConfig, label string, res *Result) error {
	tr := workload.WebPageTrace(wcfg)
	srv := rdp.NewServer(rdp.DefaultConfig())
	cli := rdp.NewClient(rdp.DefaultConfig())
	rec := trace.NewRecorder(simclock.Second)
	if err := workload.Replay(tr, srv, cli, rec, workload.ReplayOpts{InputCoalesce: 100 * simclock.Millisecond}); err != nil {
		return err
	}
	mbps := rec.Series().Mbps()
	x := make([]float64, len(mbps))
	for i := range mbps {
		x[i] = float64(i)
	}
	res.Series = append(res.Series, Series{
		Label: label, XLabel: "time (sec)", YLabel: "network load (Mbps)",
		X: x, Y: mbps,
	})
	// Steady-state average, skipping the first loop's cold misses.
	skip := len(mbps) / 4
	res.Notef("%s: steady-state average %.3f Mbps", label, rec.Series().MeanOver(skip, len(mbps))*8/1e6)
	return nil
}

func runFig4(cfg Config) (*Result, error) {
	res := &Result{ID: "fig4", Title: "Synthetic web page load over RDP"}
	base := workload.DefaultWebPageConfig()
	if cfg.Quick {
		base.Span = 40 * simclock.Second
	}
	combined := base
	marqueeOnly := base
	marqueeOnly.Banner = false
	bannerOnly := base
	bannerOnly.Marquee = false
	for _, v := range []struct {
		label string
		cfg   workload.WebPageConfig
	}{
		{"marquee and banner", combined},
		{"marquee only", marqueeOnly},
		{"banner only", bannerOnly},
	} {
		if err := replayRDPWeb(v.cfg, v.label, res); err != nil {
			return nil, err
		}
	}
	res.Notef("paper: combined 1.60 Mbps sustained / 1.89 plateaus; marquee 0.07; banner 0.01")
	res.Notef("five users on such a page saturate 10 Mbps Ethernet; the non-linearity is the bitmap cache overflowing")
	return res, nil
}

func runFig5(cfg Config) (*Result, error) {
	res := &Result{ID: "fig5", Title: "10-frame 20 Hz animation over X, LBX, RDP"}
	span := 90 * simclock.Second
	if cfg.Quick {
		span = 15 * simclock.Second
	}
	// A 50 ms delay GIF with 10 frames, sized like a large ad graphic.
	// GIF art is partially compressible (dithered flat regions), which is
	// what separates LBX from X in the paper's figure.
	anim := workload.AnimationConfig{
		Seed: cfg.Seed, Frames: 10, FPS: 20, W: 150, H: 115, X: 200, Y: 150,
		Span: span, Block: 2,
	}
	tr := workload.AnimationTrace(anim)
	runs := []struct {
		name string
		srv  proto.Server
		cli  proto.Client
	}{
		{"X", xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH)},
		{"LBX", lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig())},
		{"RDP", rdp.NewServer(rdp.DefaultConfig()), rdp.NewClient(rdp.DefaultConfig())},
	}
	for _, r := range runs {
		rec := trace.NewRecorder(simclock.Second)
		if err := workload.Replay(tr, r.srv, r.cli, rec, workload.ReplayOpts{}); err != nil {
			return nil, err
		}
		mbps := rec.Series().Mbps()
		x := make([]float64, len(mbps))
		for i := range mbps {
			x[i] = float64(i)
		}
		res.Series = append(res.Series, Series{
			Label: r.name, XLabel: "time (sec)", YLabel: "network load (Mbps)",
			X: x, Y: mbps,
		})
		skip := len(mbps) / 4
		res.Notef("%s: steady-state %.3f Mbps", r.name, rec.Series().MeanOver(skip, len(mbps))*8/1e6)
	}
	res.Notef("paper: X retransfers every frame (~2.5-3 Mbps); LBX compresses but cannot cache; RDP swaps from cache")
	return res, nil
}

func fig89Loads() []float64 {
	return []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9.6}
}

func runFig8(cfg Config) (*Result, error) {
	res := &Result{ID: "fig8", Title: "RTT vs offered load"}
	span := 60 * simclock.Second
	if cfg.Quick {
		span = 10 * simclock.Second
	}
	points := netsim.SweepLoadLatency(fig89Loads(), 200*simclock.Millisecond, span, cfg.Seed)
	var x, y []float64
	for _, p := range points {
		x = append(x, p.OfferedMbps)
		y = append(y, p.MeanRTTms)
	}
	res.Series = append(res.Series, Series{
		Label: "64 byte packets", XLabel: "offered load (Mbps)", YLabel: "round-trip time (msec)",
		X: x, Y: y,
	})
	res.Notef("RTT at 9.6 Mbps: %.1f ms (paper ~55 ms)", y[len(y)-1])
	return res, nil
}

func runFig9(cfg Config) (*Result, error) {
	res := &Result{ID: "fig9", Title: "RTT variance vs offered load"}
	span := 60 * simclock.Second
	if cfg.Quick {
		span = 10 * simclock.Second
	}
	points := netsim.SweepLoadLatency(fig89Loads(), 200*simclock.Millisecond, span, cfg.Seed+1)
	var x, y []float64
	for _, p := range points {
		x = append(x, p.OfferedMbps)
		y = append(y, p.VarianceMs)
	}
	res.Series = append(res.Series, Series{
		Label: "64 byte packets", XLabel: "offered load (Mbps)", YLabel: "RTT variance (msec^2)",
		X: x, Y: y,
	})
	res.Notef("jitter stays near zero until saturation, then explodes: variance %.2f at %.1f Mbps", y[len(y)-1], x[len(x)-1])
	return res, nil
}
