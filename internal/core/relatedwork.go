package core

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/metrics"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/slim"
	"thinbench/internal/proto/vnc"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "abl5",
		Title: "Related-work protocols (SLIM, VNC) on the office workload and an animation",
		Paper: "§7: SLIM is 'roughly equivalent in performance to X, placing it still behind RDP and LBX'; VNC is 'yet another network protocol similar to SLIM'.",
		Run:   runAbl5,
	})
}

// fiveProtocols builds endpoint pairs for every implemented protocol with
// its natural flush behavior.
func fiveProtocols() []struct {
	name string
	srv  proto.Server
	cli  proto.Client
	opts workload.ReplayOpts
} {
	rdpCfg := rdp.DefaultConfig()
	rdpCfg.MotionSample = 8
	return []struct {
		name string
		srv  proto.Server
		cli  proto.Client
		opts workload.ReplayOpts
	}{
		{"RDP", rdp.NewServer(rdpCfg), rdp.NewClient(rdpCfg), workload.ReplayOpts{
			InputCoalesce: 500 * simclock.Millisecond, DisplayCoalesce: simclock.Second}},
		{"X", xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), workload.ReplayOpts{}},
		{"LBX", lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), workload.ReplayOpts{
			InputCoalesce: 75 * simclock.Millisecond}},
		{"SLIM", slim.NewServer(slim.DefaultConfig()), slim.NewClient(slim.DefaultConfig()), workload.ReplayOpts{}},
		{"VNC", vnc.NewServer(vnc.DefaultConfig()), vnc.NewClient(vnc.DefaultConfig()), workload.ReplayOpts{
			// VNC clients request updates at a frame cadence; damage
			// aggregates between requests.
			DisplayCoalesce: 100 * simclock.Millisecond}},
	}
}

func runAbl5(cfg Config) (*Result, error) {
	res := &Result{ID: "abl5", Title: "Related-work protocol comparison"}

	// Part 1: the office workload across all five protocols.
	ocfg := workload.DefaultOfficeConfig()
	ocfg.Seed = cfg.Seed
	ocfg.TypingChars /= 2
	ocfg.PaintStrokes /= 2
	ocfg.PanelActions /= 2
	ocfg.ReviewScrolls /= 2
	if cfg.Quick {
		ocfg.TypingChars /= 4
		ocfg.PaintStrokes /= 4
		ocfg.PanelActions /= 4
		ocfg.ReviewScrolls /= 4
	}
	tr := workload.OfficeTrace(ocfg)
	table := metrics.NewTable("Protocol", "total bytes", "messages", "avg size")
	totals := map[string]int64{}
	for _, p := range fiveProtocols() {
		rec := trace.NewRecorder(simclock.Second)
		if err := workload.Replay(tr, p.srv, p.cli, rec, p.opts); err != nil {
			return nil, fmt.Errorf("%s: %w", p.name, err)
		}
		tot := rec.Total()
		totals[p.name] = tot.Bytes
		table.AddRow(p.name, metrics.FormatBytes(tot.Bytes),
			metrics.FormatBytes(tot.Messages), fmt.Sprintf("%.1f", tot.AvgMessageSize()))
	}
	res.Tables = append(res.Tables, table)
	res.Notef("office bytes relative to RDP: X %.1fx, LBX %.1fx, SLIM %.1fx, VNC %.1fx",
		ratio(totals["X"], totals["RDP"]), ratio(totals["LBX"], totals["RDP"]),
		ratio(totals["SLIM"], totals["RDP"]), ratio(totals["VNC"], totals["RDP"]))

	// Part 2: the animation stress (the fig5 workload) — the axis where
	// caching separates protocol families.
	span := 30 * simclock.Second
	if cfg.Quick {
		span = 10 * simclock.Second
	}
	anim := workload.AnimationTrace(workload.AnimationConfig{
		Seed: cfg.Seed, Frames: 10, FPS: 20, W: 150, H: 115, X: 200, Y: 150,
		Span: span, Block: 2,
	})
	animTable := metrics.NewTable("Protocol", "steady Mbps")
	for _, p := range fiveProtocols() {
		rec := trace.NewRecorder(simclock.Second)
		if err := workload.Replay(anim, p.srv, p.cli, rec, p.opts); err != nil {
			return nil, fmt.Errorf("%s animation: %w", p.name, err)
		}
		mbps := rec.Series().Mbps()
		steady := rec.Series().MeanOver(len(mbps)/3, len(mbps)) * 8 / 1e6
		animTable.AddRow(p.name, fmt.Sprintf("%.3f", steady))
	}
	res.Tables = append(res.Tables, animTable)
	res.Notef("the cacheless protocols (X, LBX, SLIM, VNC) all pay full or compressed transfers per frame; only RDP's bitmap cache absorbs the loop")
	res.Notef("SLIM lands in X's neighborhood, as §7 reports ('roughly equivalent in performance to X')")
	res.Notef("VNC is heaviest on the office workload: its framebuffer-diff model ships text echoes as raw pixel rectangles, the known cost of RFB's raw/RRE encodings on interactive text")
	return res, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
