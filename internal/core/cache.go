package core

import (
	"fmt"

	"thinbench/internal/bitmapcache"
	"thinbench/internal/display"
	"thinbench/internal/metrics"
	"thinbench/internal/proto"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/simclock"
	"thinbench/internal/trace"
	"thinbench/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "CPU utilization and cumulative cache hit ratio, cache-overflowing animation",
		Paper: "66-frame animation overflows 1.5 MB: hit ratio starts ~70% (UI bitmaps) and decays toward zero; CPU never falls (~10%).",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Network load vs animation frame count (the cache cliff)",
		Paper: "25-65 frames: 0.01 Mbps. 70+ frames: 0.96 Mbps. LRU is exactly wrong for loops.",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "abl1",
		Title: "Ablation: loop-aware eviction vs LRU on the fig7 sweep",
		Paper: "The paper suggests 'a more intelligent scheme... might detect loop patterns and adjust eviction'.",
		Run:   runAbl1,
	})
}

// animationOverRDP plays a looping animation over an RDP pair and reports
// the recorder plus the server (for cache statistics).
func animationOverRDP(anim workload.AnimationConfig, policy bitmapcache.Policy, withUI bool) (*trace.Recorder, *rdp.Server, error) {
	cfg := rdp.DefaultConfig()
	cfg.CachePolicy = policy
	srv := rdp.NewServer(cfg)
	cli := rdp.NewClient(cfg)
	tr := workload.AnimationTrace(anim)
	if withUI {
		// Session chrome drawn before and during the animation: repeated
		// toolbar/desktop bitmaps that hit the cache, giving Figure 6 its
		// ~70% starting ratio (the perfmon counter sees all bitmap cache
		// activity, not just the animation's).
		ui := uiChromeTrace(anim.Span)
		tr.Merge(ui)
	}
	rec := trace.NewRecorder(simclock.Second)
	if err := workload.Replay(tr, srv, cli, rec, workload.ReplayOpts{}); err != nil {
		return nil, nil, err
	}
	return rec, srv, nil
}

// uiChromeTrace draws repeated interface bitmaps (taskbar, buttons) a few
// times per second for the span.
func uiChromeTrace(span simclock.Duration) workload.Trace {
	t := workload.Trace{Name: "ui-chrome"}
	tape := new(display.OpTape)
	period := 500 * simclock.Millisecond
	for at := simclock.Time(0); at < simclock.Time(span); at = at.Add(period) {
		i := int(int64(at)/int64(period)) % 8
		from := tape.Len()
		tape.Blit(10+i*30, 570, display.SyntheticFrame(0xc42+uint64(i), 0, 24, 24))
		t.Display = append(t.Display, workload.DisplayBatch{At: at, Tape: tape, From: from, To: tape.Len()})
	}
	return t
}

func runFig6(cfg Config) (*Result, error) {
	res := &Result{ID: "fig6", Title: "Cache overflow: hit ratio decay and CPU load"}
	span := 60 * simclock.Second
	if cfg.Quick {
		span = 20 * simclock.Second
	}
	// 66 frames of 168x142 = 23,856 B: 1.57 MB loop, just past 1.5 MB.
	// The animation starts after a warm-up of ordinary session activity, so
	// the perfmon-style cumulative counter begins UI-dominated (~70%), as
	// in the paper's Figure 6.
	const warmup = 30 * simclock.Second
	anim := workload.AnimationConfig{
		Seed: cfg.Seed, Frames: 66, FPS: 5, W: 168, H: 142, X: 100, Y: 100,
		Span: span, Photo: true,
	}

	// Sample the cumulative hit ratio each second by replaying
	// incrementally: run the same trace through one session and snapshot
	// stats at bucket boundaries.
	rdpCfg := rdp.DefaultConfig()
	srv := rdp.NewServer(rdpCfg)
	cli := rdp.NewClient(rdpCfg)
	tr := workload.AnimationTrace(anim)
	tr.Shift(warmup)
	tr.Merge(uiChromeTrace(warmup + span))

	var tX, ratioY, cpuY []float64
	// Per-frame server CPU cost model for the utilization series: a miss
	// RLE-encodes and ships ~24 KB (era hardware: ~18 ms); a hit costs
	// ~1 ms of order generation.
	const missCPUms, hitCPUms = 18.0, 1.0
	lastHits, lastMisses := int64(0), int64(0)
	nextSample := simclock.Time(warmup)
	var sc proto.Scratch
	for _, batch := range tr.Display {
		for batch.At >= nextSample {
			s := srv.CacheStats()
			if nextSample >= simclock.Time(warmup) {
				tX = append(tX, nextSample.Seconds()-warmup.Seconds())
				ratioY = append(ratioY, s.HitRatio()*100)
				dh, dm := s.Hits-lastHits, s.Misses-lastMisses
				cpuMs := float64(dh)*hitCPUms + float64(dm)*missCPUms
				cpuY = append(cpuY, cpuMs/10) // ms busy per 1s bucket -> percent
			}
			lastHits, lastMisses = srv.CacheStats().Hits, srv.CacheStats().Misses
			nextSample = nextSample.Add(simclock.Second)
		}
		for _, m := range srv.UpdateTape(batch.Tape, batch.From, batch.To, &sc) {
			if err := cli.Apply(m); err != nil {
				return nil, err
			}
		}
	}
	res.Series = append(res.Series, Series{
		Label: "cache hit ratio", XLabel: "time (sec)", YLabel: "percentage",
		X: tX, Y: ratioY,
	})
	res.Series = append(res.Series, Series{
		Label: "CPU utilization", XLabel: "time (sec)", YLabel: "percentage",
		X: tX, Y: cpuY,
	})
	if len(ratioY) > 0 {
		res.Notef("cumulative hit ratio: starts %.0f%%, ends %.0f%% (paper: ~70%% decaying toward zero)",
			ratioY[0], ratioY[len(ratioY)-1])
	}
	stats := srv.CacheStats()
	res.Notef("every animation frame misses: %d re-misses of %d misses", stats.ReMisses, stats.Misses)
	return res, nil
}

// fig7Point measures steady-state Mbps for one frame count.
func fig7Point(seed uint64, frames int, policy bitmapcache.Policy, span simclock.Duration) (float64, error) {
	anim := workload.AnimationConfig{
		Seed: seed, Frames: frames, FPS: 5,
		W: workload.Figure7FrameW, H: workload.Figure7FrameH,
		X: 100, Y: 100, Span: span, Photo: true,
	}
	rec, _, err := animationOverRDP(anim, policy, false)
	if err != nil {
		return 0, err
	}
	mbps := rec.Series().Mbps()
	// Steady state: skip the first full loop (cold misses).
	skip := len(mbps) / 3
	var sum float64
	n := 0
	for _, v := range mbps[skip:] {
		sum += v
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

func fig7Counts() []int {
	counts := make([]int, 0, 16)
	for f := 25; f <= 100; f += 5 {
		counts = append(counts, f)
	}
	return counts
}

func runFig7(cfg Config) (*Result, error) {
	res := &Result{ID: "fig7", Title: "Network load vs frame count"}
	span := 60 * simclock.Second
	if cfg.Quick {
		span = 30 * simclock.Second
	}
	var x, y []float64
	for _, f := range fig7Counts() {
		v, err := fig7Point(cfg.Seed, f, bitmapcache.LRU, span)
		if err != nil {
			return nil, err
		}
		x = append(x, float64(f))
		y = append(y, v)
	}
	res.Series = append(res.Series, Series{
		Label: "looping animation (LRU cache)", XLabel: "number of frames", YLabel: "network load (Mbps)",
		X: x, Y: y,
	})
	res.Notef("cliff between 65 and 70 frames: %d frames x %s bytes crosses the 1.5 MB cache",
		66, metrics.FormatBytes(int64(workload.Figure7FrameW*workload.Figure7FrameH)))
	res.Notef("paper: 0.01 Mbps through 65 frames, 0.96 Mbps above")
	return res, nil
}

func runAbl1(cfg Config) (*Result, error) {
	res := &Result{ID: "abl1", Title: "Loop-aware eviction vs LRU"}
	span := 40 * simclock.Second
	if cfg.Quick {
		span = 20 * simclock.Second
	}
	table := metrics.NewTable("Frames", "LRU (Mbps)", "LoopAware (Mbps)")
	for _, f := range []int{60, 70, 80, 100} {
		lru, err := fig7Point(cfg.Seed, f, bitmapcache.LRU, span)
		if err != nil {
			return nil, err
		}
		la, err := fig7Point(cfg.Seed, f, bitmapcache.LoopAware, span)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%d", f), fmt.Sprintf("%.3f", lru), fmt.Sprintf("%.3f", la))
	}
	res.Tables = append(res.Tables, table)
	res.Notef("above the cliff, freezing the resident prefix converts most misses back into hits")
	return res, nil
}
