package core

import (
	"fmt"

	"thinbench/internal/metrics"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/vm"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "System-idle memory load (Linux 17 MB vs TSE 19 MB)",
		Paper: "Memory unavailable to applications with no sessions: ~17 MB Linux, ~19 MB TSE.",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "tab2",
		Title: "Per-session compulsory memory (752 KB Linux vs 3,244/2,100 KB TSE)",
		Paper: "Minimal-login process tables of §5.1.1.",
		Run:   runTab2,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Keystroke latency after memory pressure (§5.2 table)",
		Paper: "<100% demand: 50 ms flat. >=100%: Linux 330/1170/3000 ms, TSE 2430/4026/11850 ms (min/avg/max of 10 runs).",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "abl3",
		Title: "Ablation: interactive memory reservation and hog throttling on §5.2",
		Paper: "Evans et al.'s throttling eliminated the pathology in their prototype kernel.",
		Run:   runAbl3,
	})
}

func runTab1(cfg Config) (*Result, error) {
	res := &Result{ID: "tab1", Title: "System-idle memory load"}
	table := metrics.NewTable("System", "Idle memory")
	table.AddRow("Linux/X", fmt.Sprintf("%d KB", session.LinuxSystemIdleKB))
	table.AddRow("NT TSE", fmt.Sprintf("%d KB", session.TSESystemIdleKB))
	res.Tables = append(res.Tables, table)

	// Cross-check: instantiate the baselines in the VM substrate and
	// confirm the frame accounting agrees.
	m := vm.New(vm.DefaultConfig())
	sys := m.NewProcess("system", session.TSESystemIdleKB)
	sys.Pinned = true
	m.TouchAll(sys)
	res.Notef("VM substrate reports %d KB resident for the TSE baseline", m.ResidentKB(sys))
	return res, nil
}

func runTab2(cfg Config) (*Result, error) {
	res := &Result{ID: "tab2", Title: "Per-session compulsory memory"}
	for _, man := range []session.Manifest{
		session.LinuxManifest(),
		session.TSEManifest(),
		session.TSELightManifest(),
	} {
		table := metrics.NewTable(fmt.Sprintf("%s (%s)", man.OS, man.Variant), "Private KB")
		for _, p := range man.Processes {
			table.AddRow(p.Name, metrics.FormatBytes(int64(p.PrivateKB))+" KB")
		}
		table.AddRow("Total", metrics.FormatBytes(int64(man.TotalKB()))+" KB")
		res.Tables = append(res.Tables, table)

		// Cross-check against the VM substrate.
		m := vm.New(vm.DefaultConfig())
		before := m.FreeKB()
		session.Login(m, man)
		res.Notef("%s %s: VM reports %d KB consumed (manifest %d KB, page-rounded)",
			man.OS, man.Variant, before-m.FreeKB(), man.TotalKB())
	}
	res.Notef("memory-bound capacity of a 64 MB server: Linux %d sessions, TSE %d sessions",
		session.Capacity(64*1024, session.LinuxSystemIdleKB, session.LinuxManifest()),
		session.Capacity(64*1024, session.TSESystemIdleKB, session.TSEManifest()))
	return res, nil
}

// pagingScenarios returns the calibrated §5.2 configurations. The latency
// gap between the systems is modeled by two calibrated differences,
// documented in DESIGN.md: the session working set that must page back in
// (TSE's login processes plus shell are larger) and the page-in clustering
// factor (Linux swap readahead clusters 8 pages per seek in our model,
// NT's pagefile reads 2).
func pagingScenarios() map[System]vm.PagingScenario {
	linuxCfg := vm.Config{
		PhysicalKB:   64 * 1024,
		PageKB:       4,
		SwapSeek:     8 * simclock.Millisecond,
		SwapPage:     500 * simclock.Microsecond,
		ClusterPages: 8,
	}
	tseCfg := linuxCfg
	tseCfg.ClusterPages = 2
	return map[System]vm.PagingScenario{
		SystemLinuxX: {
			Config:             linuxCfg,
			SystemKB:           session.LinuxSystemIdleKB,
			EditorKB:           9800, // vim + xterm + rshd + X client state + libraries
			HogFactor:          1.2,
			HogSeconds:         30,
			BaseResponse:       50 * simclock.Millisecond,
			SeekJitterFrac:     0.3,
			RandomizeKeystroke: true,
			RefaultProb:        0.3,
			TouchFloor:         0.10,
		},
		SystemTSE: {
			Config:             tseCfg,
			SystemKB:           session.TSESystemIdleKB,
			EditorKB:           5800, // notepad + csrss session repaint set
			HogFactor:          1.2,
			HogSeconds:         30,
			BaseResponse:       50 * simclock.Millisecond,
			SeekJitterFrac:     0.3,
			RandomizeKeystroke: true,
			RefaultProb:        0.3,
			TouchFloor:         0.45,
		},
	}
}

func summarizeRuns(results []vm.PagingResult) (minMs, avgMs, maxMs float64) {
	var sum float64
	for i, r := range results {
		ms := r.Latency.Milliseconds()
		sum += ms
		if i == 0 || ms < minMs {
			minMs = ms
		}
		if ms > maxMs {
			maxMs = ms
		}
	}
	return minMs, sum / float64(len(results)), maxMs
}

func runTab3(cfg Config) (*Result, error) {
	res := &Result{ID: "tab3", Title: "Paging-induced keystroke latency"}
	table := metrics.NewTable("OS", "demand", "min", "avg", "max")
	for _, sys := range []System{SystemLinuxX, SystemTSE} {
		sc := pagingScenarios()[sys]

		// < 100% page demand: the hog fits; responses stay at 50 ms.
		low := sc
		low.HogFactor = 0.35
		low.RandomizeKeystroke = false
		lowRuns := low.RunN(10, cfg.Seed)
		lmin, lavg, lmax := summarizeRuns(lowRuns)
		table.AddRow(string(sys), "<100%",
			fmt.Sprintf("%.0fms", lmin), fmt.Sprintf("%.0fms", lavg), fmt.Sprintf("%.0fms", lmax))

		// >= 100%: the editor pages back from disk.
		runs := sc.RunN(10, cfg.Seed)
		mn, av, mx := summarizeRuns(runs)
		table.AddRow(string(sys), ">=100%",
			fmt.Sprintf("%.0fms", mn), fmt.Sprintf("%.0fms", av), fmt.Sprintf("%.0fms", mx))
		res.Notef("%s >=100%%: avg %.0fms = %.0fx the 100ms perception threshold", sys, av, av/100)
	}
	res.Tables = append(res.Tables, table)
	res.Notef("paper: Linux 330/1,170/3,000 ms; TSE 2,430/4,026/11,850 ms")
	return res, nil
}

func runAbl3(cfg Config) (*Result, error) {
	res := &Result{ID: "abl3", Title: "Memory reservation / throttling ablation"}
	table := metrics.NewTable("OS", "policy", "avg latency")
	for _, sys := range []System{SystemLinuxX, SystemTSE} {
		base := pagingScenarios()[sys]
		reserve := base
		reserve.Config.ReserveInteractive = true
		throttle := base
		throttle.Config.HogFrameLimit = 0.4
		for _, v := range []struct {
			name string
			sc   vm.PagingScenario
		}{
			{"default", base},
			{"reserve-interactive", reserve},
			{"throttle-hog", throttle},
		} {
			_, avg, _ := summarizeRuns(v.sc.RunN(10, cfg.Seed))
			table.AddRow(string(sys), v.name, fmt.Sprintf("%.0fms", avg))
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notef("both Evans-style policies hold the keystroke at the 50ms baseline")
	return res, nil
}
