package core

import (
	"fmt"

	"thinbench/internal/farm"
	"thinbench/internal/metrics"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

func init() {
	register(Experiment{
		ID:    "cap1",
		Title: "Server capacity by behavior profile (the paper's sizing question)",
		Paper: "§1/§3: operators 'need to know the maximum number of concurrent users their servers can support... and what impact on users yields this maximum value'; §6.1.3: ~5 animated-page users saturate 10 Mbps Ethernet.",
		Run:   runCap1,
	})
}

func runCap1(cfg Config) (*Result, error) {
	res := &Result{ID: "cap1", Title: "Latency-threshold capacity by behavior profile"}
	span := 20 * simclock.Second
	if cfg.Quick {
		span = 8 * simclock.Second
	}
	srv := sizing.DefaultServer()
	table := metrics.NewTable("Profile", "capacity", "memory-only", "binding resource", "p95 echo at cap", "link util")
	profiles := []sizing.Profile{sizing.LightAdmin(), sizing.Developer(), sizing.WebBrowser()}
	// Each profile's capacity search is itself a concurrent fan-out of
	// shared-server instances over candidate user counts; the farm here
	// runs the three searches at once and streams rows back in profile
	// order, so the table is identical to a sequential run.
	err := farm.Aggregate(farm.Config{Sessions: len(profiles), Seed: cfg.Seed},
		func(s *farm.Session) ([]string, error) {
			p := profiles[s.Index]
			n, est, limit := sizing.Capacity(srv, p, 120, span, cfg.Seed)
			return []string{p.Name, fmt.Sprintf("%d users", n),
				fmt.Sprintf("%d users", sizing.MemoryCapacity(srv, p)), string(limit),
				fmt.Sprintf("%.1fms", est.P95EchoMs), fmt.Sprintf("%.0f%%", est.LinkUtilization*100)}, nil
		},
		func(_ int, row []string) { table.AddRow(row...) })
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, table)

	// The scheduler lever: the same developers on the Evans et al. policy.
	big := srv
	big.PhysicalKB = 512 * 1024
	rrN, _, _ := sizing.Capacity(big, sizing.Developer(), 120, span, cfg.Seed)
	big.Scheduler = "svr4ia"
	iaN, _, _ := sizing.Capacity(big, sizing.Developer(), 120, span, cfg.Seed)
	res.Notef("capacity = max users with p95 echo latency within the %v budget; never above the memory-only division", sizing.DefaultLatencyBudget)
	res.Notef("with ample memory, developer capacity is CPU-bound at %d users under round-robin and %d under the SVR4 interactive class", rrN, iaN)
	res.Notef("web browsers hit the network wall at ~5 users, the paper's §6.1.3 arithmetic")
	return res, nil
}
