package core

import (
	"fmt"

	"thinbench/internal/latency"
	"thinbench/internal/metrics"
	"thinbench/internal/sched"
	"thinbench/internal/simclock"
	"thinbench/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Idle-state processor activity over 10 s (NT Workstation, TSE, Linux)",
		Paper: "TSE shows markedly more idle activity than NT; Linux the least. Clock spikes every 10 ms.",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Cumulative idle-state latency vs event length over 600 s",
		Paper: "NT events all <=100 ms; TSE adds 250/400 ms events; totals TSE ~= 3x NT ~= 7x Linux.",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Average interactive stall vs scheduler queue length (20 Hz repeat)",
		Paper: "TSE blows up near load 10, unusable by 15; Linux degrades linearly and more slowly.",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "abl2",
		Title: "Ablation: SVR4 interactive-class scheduler on the fig3 sweep",
		Paper: "Evans et al.: keystroke latency stays constant and small as load approaches 20.",
		Run:   runAbl2,
	})
	register(Experiment{
		ID:    "abl4",
		Title: "Ablation: TSE quantum stretch factor x1/x2/x3 on the fig3 sweep",
		Paper: "The paper's 'latency catch-22': longer quanta deepen queue waits behind CPU-bound peers.",
		Run:   runAbl4,
	})
}

// idleSystems pairs each system with its idle profile and scheduler.
func idleSystems() []struct {
	sys     System
	profile sched.IdleProfile
	mk      func() sched.Scheduler
} {
	return []struct {
		sys     System
		profile sched.IdleProfile
		mk      func() sched.Scheduler
	}{
		{SystemNTWorkstation, sched.NTIdleProfile(), func() sched.Scheduler { return sched.NewNTSched(sched.DefaultNTConfig()) }},
		{SystemTSE, sched.TSEIdleProfile(), func() sched.Scheduler { return sched.NewNTSched(sched.DefaultNTConfig()) }},
		{SystemLinuxX, sched.LinuxIdleProfile(), func() sched.Scheduler { return sched.NewRRSched(10 * simclock.Millisecond) }},
	}
}

func runFig1(cfg Config) (*Result, error) {
	res := &Result{ID: "fig1", Title: "Idle-state CPU activity"}
	span := 10 * simclock.Second
	for _, s := range idleSystems() {
		eng := simclock.NewEngine()
		cpu := sched.NewCPU(eng, s.mk(), simclock.Second)
		cancel := s.profile.Install(cpu)
		eng.RunFor(span)
		cancel()
		util := cpu.BusySeries().Utilization()
		x := make([]float64, 0, len(util))
		y := make([]float64, 0, len(util))
		for i, u := range util {
			x = append(x, float64(i))
			y = append(y, u)
		}
		res.Series = append(res.Series, Series{
			Label: string(s.sys), XLabel: "time (sec)", YLabel: "CPU utilization",
			X: x, Y: y,
		})
		res.Notef("%s: mean idle utilization %.4f", s.sys, cpu.Utilization())
	}
	return res, nil
}

func runFig2(cfg Config) (*Result, error) {
	res := &Result{ID: "fig2", Title: "Cumulative idle-state latency"}
	span := 600 * simclock.Second
	if cfg.Quick {
		span = 60 * simclock.Second
	}
	totals := map[System]float64{}
	for _, s := range idleSystems() {
		eng := simclock.NewEngine()
		cpu := sched.NewCPU(eng, s.mk(), simclock.Second)
		log := latency.NewEventLog(10*simclock.Millisecond, 60)
		cpu.OnItemDone = func(rec sched.ItemRecord) { log.Add(rec.CPU) }
		cancel := s.profile.Install(cpu)
		eng.RunFor(span)
		cancel()
		curve := log.CumulativeCurve()
		x := make([]float64, len(curve))
		y := make([]float64, len(curve))
		for i, p := range curve {
			x[i], y[i] = p.LatencyMs, p.CumulativeSec
		}
		res.Series = append(res.Series, Series{
			Label: string(s.sys), XLabel: "latency (msec)", YLabel: "cumulative latency (sec)",
			X: x, Y: y,
		})
		totals[s.sys] = log.Total().Seconds()
	}
	res.Notef("aggregate idle load: TSE %.1fs, NT %.1fs, Linux %.1fs over %v",
		totals[SystemTSE], totals[SystemNTWorkstation], totals[SystemLinuxX], span)
	res.Notef("ratios: TSE/NT = %.2f (paper ~3), TSE/Linux = %.2f (paper ~7)",
		totals[SystemTSE]/totals[SystemNTWorkstation], totals[SystemTSE]/totals[SystemLinuxX])
	return res, nil
}

// pipelineKind selects the keystroke-handling pipeline model.
type pipelineKind int

const (
	pipeTSE pipelineKind = iota
	pipeLinux
	pipeSVR4
)

// stallConfig parameterizes one fig3-style measurement run.
type stallConfig struct {
	kind    pipelineKind
	sinks   int
	span    simclock.Duration
	stretch int // TSE quantum stretch
}

// measureStalls runs the paper's Figure 3 methodology: N sink processes, a
// 20 Hz repeating key, and a tracker on display-message completion times.
//
// Pipelines:
//
//	TSE:   keystroke -> editor GUI thread (base 9, wake-boosted to 15) ->
//	       kernel display/RDP encode worker (priority 8, coalescing) ->
//	       message. Sinks run at priority 8 as session-foreground threads
//	       (stretched quanta). The editor echoes instantly thanks to the
//	       boost; the encode worker round-robins behind the sinks, which is
//	       the modeled mechanism for the paper's TSE collapse.
//	Linux: keystroke -> vim (coalescing) -> X server (coalescing) ->
//	       message, all plain round-robin peers of the sinks, 10 ms quanta.
//	SVR4:  the Linux pipeline with vim and X in the interactive class.
func measureStalls(cfg stallConfig) latency.Report {
	eng := simclock.NewEngine()
	var cpu *sched.CPU
	var editor, stage2 *sched.Thread

	switch cfg.kind {
	case pipeTSE:
		ntCfg := sched.DefaultNTConfig()
		if cfg.stretch > 0 {
			ntCfg.Stretch = cfg.stretch
		} else {
			ntCfg.Stretch = 3
		}
		nt := sched.NewNTSched(ntCfg)
		cpu = sched.NewCPU(eng, nt, simclock.Second)
		nt.InstallBalanceSet(eng)
		editor = cpu.NewThread("notepad", 9)
		editor.GUIBoost = true
		editor.Foreground = true
		stage2 = cpu.NewThread("rdp-encode", 8)
	case pipeLinux:
		cpu = sched.NewCPU(eng, sched.NewRRSched(10*simclock.Millisecond), simclock.Second)
		editor = cpu.NewThread("vim", 0)
		stage2 = cpu.NewThread("xserver", 0)
	case pipeSVR4:
		cpu = sched.NewCPU(eng, sched.NewSVR4IASched(10*simclock.Millisecond), simclock.Second)
		editor = cpu.NewThread("vim", 0)
		editor.Interactive = true
		stage2 = cpu.NewThread("xserver", 0)
		stage2.Interactive = true
	}

	// Sinks: greedy CPU consumers, one scheduler-queue unit each.
	for i := 0; i < cfg.sinks; i++ {
		s := cpu.NewThread(fmt.Sprintf("sink%d", i), 8)
		if cfg.kind == pipeTSE {
			s.Foreground = true // session foreground threads get stretched quanta
		}
		cpu.Submit(s, &sched.WorkItem{Tag: "sink", CPU: simclock.Duration(1e15)})
	}

	tracker := latency.NewStallTracker(50 * simclock.Millisecond)
	tracker.Observe(0) // prime: the stream starts nominally

	// Keystrokes at 20 Hz; each echo submits encode work; each encode
	// completion is one display message.
	times := workload.KeystrokeTimes(workload.TypingConfig{Rate: 20, Span: cfg.span, Code: 30})
	for _, at := range times {
		cpu.SubmitAt(at, editor, &sched.WorkItem{
			Tag: "echo", CPU: 1200 * simclock.Microsecond, ExtraCPU: 150 * simclock.Microsecond, Coalesce: true,
			OnDone: func(_ *sched.WorkItem, now simclock.Time, n int) {
				cpu.Submit(stage2, &sched.WorkItem{
					Tag: "encode", CPU: 1500 * simclock.Microsecond, ExtraCPU: 200 * simclock.Microsecond, Coalesce: true,
					OnDone: func(_ *sched.WorkItem, done simclock.Time, _ int) { tracker.Observe(done) },
				})
			},
		})
	}
	eng.RunFor(cfg.span + 2*simclock.Second)
	return latency.ReportFrom(fmt.Sprintf("%d sinks", cfg.sinks), tracker)
}

func fig3Span(cfg Config) simclock.Duration {
	if cfg.Quick {
		return 10 * simclock.Second
	}
	return 60 * simclock.Second
}

func runFig3(cfg Config) (*Result, error) {
	res := &Result{ID: "fig3", Title: "Average stall length vs scheduler queue length"}
	span := fig3Span(cfg)

	// TSE: measured through 15 load units, where the paper stopped because
	// the system was barely usable.
	tseLoads := []int{0, 1, 2, 5, 8, 10, 12, 15}
	var tx, ty []float64
	for _, n := range tseLoads {
		rep := measureStalls(stallConfig{kind: pipeTSE, sinks: n, span: span})
		tx = append(tx, float64(n))
		ty = append(ty, rep.MeanStallMs)
	}
	res.Series = append(res.Series, Series{
		Label: "TSE", XLabel: "scheduler queue length", YLabel: "average stall length (msec)",
		X: tx, Y: ty,
	})

	linuxLoads := []int{0, 1, 2, 5, 10, 15, 20, 30, 40, 50}
	var lx, ly []float64
	for _, n := range linuxLoads {
		rep := measureStalls(stallConfig{kind: pipeLinux, sinks: n, span: span})
		lx = append(lx, float64(n))
		ly = append(ly, rep.MeanStallMs)
	}
	res.Series = append(res.Series, Series{
		Label: "Linux/X", XLabel: "scheduler queue length", YLabel: "average stall length (msec)",
		X: lx, Y: ly,
	})

	res.Notef("TSE data stops at 15 load units, as in the paper (the console became barely usable)")
	res.Notef("TSE at load 10: %.0f ms vs Linux at load 10: %.0f ms", ty[5], ly[4])
	return res, nil
}

func runAbl2(cfg Config) (*Result, error) {
	res := &Result{ID: "abl2", Title: "SVR4 interactive scheduler vs TSE and Linux"}
	span := fig3Span(cfg)
	loads := []int{0, 5, 10, 20}
	table := metrics.NewTable("Load", "TSE (ms)", "Linux (ms)", "SVR4-IA (ms)")
	for _, n := range loads {
		tse := measureStalls(stallConfig{kind: pipeTSE, sinks: n, span: span})
		lin := measureStalls(stallConfig{kind: pipeLinux, sinks: n, span: span})
		svr := measureStalls(stallConfig{kind: pipeSVR4, sinks: n, span: span})
		table.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", tse.MeanStallMs),
			fmt.Sprintf("%.1f", lin.MeanStallMs),
			fmt.Sprintf("%.1f", svr.MeanStallMs))
	}
	res.Tables = append(res.Tables, table)
	res.Notef("the interactive class keeps stalls flat regardless of load, reproducing Evans et al.")
	return res, nil
}

func runAbl4(cfg Config) (*Result, error) {
	res := &Result{ID: "abl4", Title: "TSE quantum stretch ablation"}
	span := fig3Span(cfg)
	loads := []int{5, 10, 15}
	table := metrics.NewTable("Load", "stretch x1 (ms)", "stretch x2 (ms)", "stretch x3 (ms)")
	for _, n := range loads {
		row := []string{fmt.Sprintf("%d", n)}
		for _, st := range []int{1, 2, 3} {
			rep := measureStalls(stallConfig{kind: pipeTSE, sinks: n, span: span, stretch: st})
			row = append(row, fmt.Sprintf("%.1f", rep.MeanStallMs))
		}
		table.AddRow(row...)
	}
	res.Tables = append(res.Tables, table)
	res.Notef("stretching helps the foreground thread but multiplies queue waits behind CPU-bound peers — the paper's catch-22")
	return res, nil
}
