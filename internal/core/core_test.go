package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"thinbench/internal/schedule"
	"thinbench/internal/simclock"
)

var quickCfg = Config{Seed: 1999, Quick: true}

func mustRun(t *testing.T, id string, cfg Config) *Result {
	t.Helper()
	exp, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	r, err := exp.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Fatalf("result ID %q, want %q", r.ID, id)
	}
	return r
}

func seriesByLabel(t *testing.T, r *Result, label string) Series {
	t.Helper()
	for _, s := range r.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q", r.ID, label)
	return Series{}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl1", "abl2", "abl3", "abl4", "abl5",
		"cap1", "churn1", "cont1", "ctrl1", "day1", "fail1",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"shard1", "storm1",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6",
	}
	got := make([]string, 0, len(want))
	for _, e := range Experiments() {
		got = append(got, e.ID)
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s missing metadata", e.ID)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Error("Experiments() not sorted")
	}
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown ID succeeded")
	}
}

func TestFig1IdleOrdering(t *testing.T) {
	r := mustRun(t, "fig1", quickCfg)
	mean := func(label string) float64 {
		s := seriesByLabel(t, r, label)
		var sum float64
		for _, v := range s.Y {
			sum += v
		}
		return sum / float64(len(s.Y))
	}
	linux, nt, tse := mean("Linux/X"), mean("NT Workstation"), mean("NT TSE")
	if !(linux < nt && nt < tse) {
		t.Fatalf("idle activity ordering: linux=%.4f nt=%.4f tse=%.4f", linux, nt, tse)
	}
}

func TestFig2CumulativeRatios(t *testing.T) {
	r := mustRun(t, "fig2", quickCfg)
	total := func(label string) float64 {
		s := seriesByLabel(t, r, label)
		return s.Y[len(s.Y)-1]
	}
	nt, tse, linux := total("NT Workstation"), total("NT TSE"), total("Linux/X")
	if ratio := tse / nt; ratio < 2.4 || ratio > 3.6 {
		t.Errorf("TSE/NT = %.2f, paper reports ~3", ratio)
	}
	if ratio := tse / linux; ratio < 5 || ratio > 9 {
		t.Errorf("TSE/Linux = %.2f, paper reports ~7", ratio)
	}
	// TSE must show contribution above 200 ms (the 250/400 ms events).
	tseSeries := seriesByLabel(t, r, "NT TSE")
	var at200, at450 float64
	for i, x := range tseSeries.X {
		if x == 200 {
			at200 = tseSeries.Y[i]
		}
		if x == 450 {
			at450 = tseSeries.Y[i]
		}
	}
	if at450 <= at200 {
		t.Error("TSE curve flat past 200ms; Terminal Service events missing")
	}
	// NT must not (all events <= 100 ms).
	ntSeries := seriesByLabel(t, r, "NT Workstation")
	var n100, nEnd float64
	for i, x := range ntSeries.X {
		if x == 110 {
			n100 = ntSeries.Y[i]
		}
	}
	nEnd = ntSeries.Y[len(ntSeries.Y)-1]
	if nEnd > n100*1.001 {
		t.Error("NT Workstation has idle events beyond 100ms")
	}
}

func TestFig3Shapes(t *testing.T) {
	r := mustRun(t, "fig3", quickCfg)
	tse := seriesByLabel(t, r, "TSE")
	linux := seriesByLabel(t, r, "Linux/X")
	at := func(s Series, x float64) float64 {
		for i := range s.X {
			if s.X[i] == x {
				return s.Y[i]
			}
		}
		t.Fatalf("series %s has no x=%v", s.Label, x)
		return 0
	}
	// No load: nominal 50ms cadence, no stalls.
	if at(tse, 0) > 5 || at(linux, 0) > 5 {
		t.Errorf("stalls at zero load: tse=%.1f linux=%.1f", at(tse, 0), at(linux, 0))
	}
	// TSE collapses near 10; Linux degrades gently.
	if at(tse, 10) < 400 {
		t.Errorf("TSE at load 10 = %.0f ms, want collapse (paper ~800)", at(tse, 10))
	}
	if at(tse, 10) < 5*at(linux, 10) {
		t.Errorf("TSE (%.0f) not dramatically worse than Linux (%.0f) at load 10", at(tse, 10), at(linux, 10))
	}
	// Linux roughly linear: value at 50 within 3x of 5x value at 10.
	l10, l50 := at(linux, 10), at(linux, 50)
	if l50 < 2*l10 {
		t.Errorf("Linux not growing with load: %.0f at 10, %.0f at 50", l10, l50)
	}
	if l50 > 900 {
		t.Errorf("Linux at 50 = %.0f ms, out of the paper's chart range", l50)
	}
}

func TestAbl2InteractiveSchedulerFlat(t *testing.T) {
	r := mustRun(t, "abl2", quickCfg)
	if len(r.Tables) == 0 {
		t.Fatal("abl2 produced no table")
	}
	out := r.Tables[0].String()
	if !strings.Contains(out, "SVR4-IA") {
		t.Fatalf("table missing SVR4 column:\n%s", out)
	}
}

func TestTab3PagingShape(t *testing.T) {
	// Run the scenarios directly for numeric assertions.
	for sys, sc := range pagingScenarios() {
		runs := sc.RunN(10, 1999)
		mn, av, mx := summarizeRuns(runs)
		if mn < 100 {
			t.Errorf("%s: min %.0fms below perception threshold; paging too cheap", sys, mn)
		}
		if mx <= mn {
			t.Errorf("%s: no spread (min=%.0f max=%.0f)", sys, mn, mx)
		}
		switch sys {
		case SystemLinuxX:
			if av < 700 || av > 1700 {
				t.Errorf("Linux avg = %.0fms, paper reports 1,170", av)
			}
		case SystemTSE:
			if av < 2800 || av > 5500 {
				t.Errorf("TSE avg = %.0fms, paper reports 4,026", av)
			}
		}
		// Low demand: flat 50ms.
		low := sc
		low.HogFactor = 0.35
		low.RandomizeKeystroke = false
		for _, res := range low.RunN(3, 7) {
			if res.Latency.Milliseconds() != 50 {
				t.Errorf("%s low demand latency = %v, want 50ms", sys, res.Latency)
			}
		}
	}
}

func TestTab3TSEWorseThanLinux(t *testing.T) {
	scs := pagingScenarios()
	_, linuxAvg, _ := summarizeRuns(scs[SystemLinuxX].RunN(10, 1999))
	_, tseAvg, _ := summarizeRuns(scs[SystemTSE].RunN(10, 1999))
	if ratio := tseAvg / linuxAvg; ratio < 2 || ratio > 6 {
		t.Errorf("TSE/Linux paging ratio = %.2f, paper reports ~3.4", ratio)
	}
}

func TestTab5Orderings(t *testing.T) {
	runs, err := captureOffice(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, r := range runs {
		byName[r.name] = r.rec.Total().Bytes
	}
	if !(byName["RDP"] < byName["LBX"] && byName["LBX"] < byName["X"]) {
		t.Fatalf("byte ordering violated: %v", byName)
	}
	// RDP must win by a wide margin even on the reduced quick workload.
	if ratio := float64(byName["X"]) / float64(byName["RDP"]); ratio < 3 {
		t.Errorf("X/RDP = %.1f, want a decisive RDP win (paper 7.0)", ratio)
	}
}

func TestTab4SetupBytes(t *testing.T) {
	r := mustRun(t, "tab4", quickCfg)
	out := r.Tables[0].String()
	if !strings.Contains(out, "45,328") || !strings.Contains(out, "16,312") {
		t.Fatalf("setup table missing paper values:\n%s", out)
	}
}

func TestFig7Cliff(t *testing.T) {
	// Long enough for several loops of a 60-frame animation at 5 fps.
	span := 45 * simclock.Second
	below, err := fig7Point(1, 60, 0, span)
	if err != nil {
		t.Fatal(err)
	}
	above, err := fig7Point(1, 70, 0, span)
	if err != nil {
		t.Fatal(err)
	}
	if below > 0.05 {
		t.Errorf("below cliff: %.3f Mbps, want ~0.01 (cache absorbs loop)", below)
	}
	if above < 0.5 {
		t.Errorf("above cliff: %.3f Mbps, want ~0.9 (every frame misses)", above)
	}
}

func TestFig6RatioDecays(t *testing.T) {
	r := mustRun(t, "fig6", quickCfg)
	ratio := seriesByLabel(t, r, "cache hit ratio")
	if len(ratio.Y) < 5 {
		t.Fatal("fig6 ratio series too short")
	}
	start, end := ratio.Y[0], ratio.Y[len(ratio.Y)-1]
	if start < 40 {
		t.Errorf("starting hit ratio %.0f%%, want UI-dominated start (paper ~70%%)", start)
	}
	if end > start/1.5 {
		t.Errorf("hit ratio did not decay: %.0f%% -> %.0f%%", start, end)
	}
}

func TestFig8Fig9Shapes(t *testing.T) {
	r8 := mustRun(t, "fig8", quickCfg)
	s := r8.Series[0]
	if s.Y[0] > 1 {
		t.Errorf("idle RTT = %.2f ms, want sub-millisecond", s.Y[0])
	}
	last := s.Y[len(s.Y)-1]
	if last < 15 || last > 150 {
		t.Errorf("near-saturation RTT = %.1f ms, want tens of ms (paper ~55)", last)
	}
	r9 := mustRun(t, "fig9", quickCfg)
	v := r9.Series[0]
	if v.Y[len(v.Y)-1] < 20*v.Y[1] {
		t.Errorf("jitter did not explode near saturation: %v", v.Y)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run in -short mode")
	}
	results, err := RunAll(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("RunAll returned %d results for %d experiments", len(results), len(Experiments()))
	}
	for _, r := range results {
		if len(r.Tables) == 0 && len(r.Series) == 0 {
			t.Errorf("%s produced neither tables nor series", r.ID)
		}
		if out := r.Render(); !strings.Contains(out, r.ID) {
			t.Errorf("%s render missing ID header", r.ID)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, "fig8", quickCfg).Render()
	b := mustRun(t, "fig8", quickCfg).Render()
	if a != b {
		t.Fatal("identical seeds produced different fig8 results")
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.Notef("hello %d", 7)
	out := r.Render()
	if !strings.Contains(out, "hello 7") || !strings.Contains(out, "== x: t ==") {
		t.Fatalf("render output wrong:\n%s", out)
	}
}

// TestRunAllParallelMatchesSequential: the farm-backed parallel registry
// run must render every result identically to the sequential run — worker
// count buys wall-clock only.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry comparison in -short mode")
	}
	seq, err := RunAll(quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(quickCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel returned %d results, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].Render() != seq[i].Render() {
			t.Errorf("%s renders differently under parallel execution", seq[i].ID)
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAll(quickCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAllParallel(quickCfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestShard1PoliciesMonotoneAndOrdered: every placement policy's fleet
// p95 series must degrade (never improve) as the total population grows —
// common random numbers per shard plus the prefix property of greedy
// placement guarantee it — and at the heaviest population the
// latency-aware policy must not lose to blind round-robin.
func TestShard1PoliciesMonotoneAndOrdered(t *testing.T) {
	r := mustRun(t, "shard1", quickCfg)
	if len(r.Series) != 3 {
		t.Fatalf("shard1 produced %d series, want one per placement policy", len(r.Series))
	}
	byPolicy := map[string]Series{}
	for _, s := range r.Series {
		byPolicy[s.Label] = s
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+0.01 < s.Y[i-1] {
				t.Fatalf("%s: fleet p95 improved with more users: %v", s.Label, s.Y)
			}
		}
	}
	rr, lat := byPolicy["roundrobin"], byPolicy["lataware"]
	if len(rr.Y) == 0 || len(lat.Y) == 0 {
		t.Fatalf("missing policy series: %v", byPolicy)
	}
	if last := len(rr.Y) - 1; lat.Y[last] > rr.Y[last] {
		t.Fatalf("lataware fleet p95 %.2fms above roundrobin %.2fms at the heaviest population",
			lat.Y[last], rr.Y[last])
	}
}

// TestChurn1TurnoverCostsLatency: every policy's fleet p95 at a nonzero
// churn rate must be no better than its static (rate 0) p95 — arrivals
// pay session setup, login page-ins, and process creation on the shared
// substrates.
func TestChurn1TurnoverCostsLatency(t *testing.T) {
	r := mustRun(t, "churn1", quickCfg)
	if len(r.Series) != 3 {
		t.Fatalf("churn1 produced %d series, want one per placement policy", len(r.Series))
	}
	for _, s := range r.Series {
		if s.X[0] != 0 {
			t.Fatalf("%s: first point is rate %v, want the static baseline", s.Label, s.X[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+0.01 < s.Y[0] {
				t.Fatalf("%s: churned fleet p95 %v below static %v", s.Label, s.Y[i], s.Y[0])
			}
		}
	}
}

// TestFail1TimelineShowsExcursion: the failover experiment must produce a
// full timeline per policy and report the kill's excursion in its notes.
func TestFail1TimelineShowsExcursion(t *testing.T) {
	r := mustRun(t, "fail1", quickCfg)
	if len(r.Series) != 3 {
		t.Fatalf("fail1 produced %d series, want one per placement policy", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s: malformed timeline: %d x, %d y", s.Label, len(s.X), len(s.Y))
		}
	}
	if len(r.Notes) < 4 {
		t.Fatalf("fail1 notes missing per-policy recovery summaries: %v", r.Notes)
	}
}

// TestDay1TimelineFollowsTheDay: the office-day experiment reports the
// offered arrivals alongside per-policy latency timelines, and the day
// actually churns — arrivals land, sessions leave, logins cost.
func TestDay1TimelineFollowsTheDay(t *testing.T) {
	r := mustRun(t, "day1", quickCfg)
	if len(r.Series) != 3 {
		t.Fatalf("day1 produced %d series, want arrivals + one per policy", len(r.Series))
	}
	arrivals := seriesByLabel(t, r, "arrivals")
	total := 0.0
	for _, y := range arrivals.Y {
		total += y
	}
	if total < 10 {
		t.Fatalf("office day offered only %.0f mid-run logins", total)
	}
	for _, label := range []string{"roundrobin", "lataware"} {
		s := seriesByLabel(t, r, label)
		if len(s.X) != len(arrivals.X) || len(s.X) != len(s.Y) {
			t.Fatalf("%s: timeline length %d/%d does not match the arrival series %d",
				label, len(s.X), len(s.Y), len(arrivals.X))
		}
	}
}

// TestStorm1KillDuringRampIsWorse pins the acceptance ordering: the fleet
// p95 timeline peaks during the 9 AM ramp, and a kill in the middle of
// the storm recovers no faster — at the canonical seed, strictly slower —
// than the same kill under flat load.
func TestStorm1KillDuringRampIsWorse(t *testing.T) {
	r := mustRun(t, "storm1", quickCfg)
	base := seriesByLabel(t, r, "officeday")
	peak := 0
	for i, v := range base.Y {
		if v > base.Y[peak] {
			peak = i
		}
	}
	// The storm window ends at 0.19 of the span and its logins land
	// within a couple of slices; the peak must sit there, not in the
	// afternoon.
	rampEnd := int(0.19*float64(len(base.Y))) + 3
	if peak < 1 || peak > rampEnd {
		t.Fatalf("no-kill p95 timeline peaked in slice %d of %v, want the ramp slices [1, %d]",
			peak, base.Y, rampEnd)
	}

	stormRec, flatRec := stormRecoveries(t, r)
	if flatRec < 0 {
		t.Fatalf("flat-load kill never recovered: notes %v", r.Notes)
	}
	if stormRec >= 0 && stormRec < flatRec {
		t.Fatalf("storm-time kill recovered in %.0f ms, faster than flat load's %.0f ms", stormRec, flatRec)
	}
}

// stormRecoveries reads the two kills' recovery times out of storm1's
// comparison note (the timelines alone cannot reconstruct RecoveryMs —
// the tolerance is against the merged pre-kill histogram, not the p95s).
// A negative recovery is "never within the run".
func stormRecoveries(t *testing.T, r *Result) (storm, flat float64) {
	t.Helper()
	for _, note := range r.Notes {
		var a, b float64
		if n, _ := fmt.Sscanf(note, "the storm-time kill never recovered within the run; the flat-load kill recovered in %f ms", &b); n == 1 {
			return -1, b
		}
		if n, _ := fmt.Sscanf(note, "recovery: %f ms after a storm-time kill vs %f ms under flat load", &a, &b); n == 2 {
			return a, b
		}
		if n, _ := fmt.Sscanf(note, "the flat-load kill never recovered within the run; the storm-time kill recovered in %f ms", &a); n == 1 {
			return a, -1
		}
		if note == "neither kill recovered within the run" {
			return -1, -1
		}
	}
	t.Fatalf("storm1 notes carry no recovery comparison: %v", r.Notes)
	return 0, 0
}

// TestCtrl1GateTracksOracle pins ctrl1's acceptance claims on both
// arrival profiles: the gate actually gates (some logins deferred or
// rejected), it never makes the admitted population worse than the open
// fleet, and the gated peak lands within the stated margin of the
// offline oracle's fleet seats in either direction.
func TestCtrl1GateTracksOracle(t *testing.T) {
	for _, prof := range []schedule.Profile{schedule.OfficeDay(), schedule.ShiftChange()} {
		r, err := ctrl1Profile(quickCfg, prof)
		if err != nil {
			t.Fatal(err)
		}
		if r.oracleSeats < 1 {
			t.Fatalf("%s: oracle fits no seats at all", prof.Name)
		}
		if r.gated.DeferredLogins+r.gated.RejectedLogins == 0 {
			t.Fatalf("%s: 1.5x the oracle's seats arrived and the gate held nobody", prof.Name)
		}
		if r.gated.EchoP95Ms > r.open.EchoP95Ms {
			t.Fatalf("%s: gated p95 %.0f ms above open %.0f ms — admission made the admitted worse",
				prof.Name, r.gated.EchoP95Ms, r.open.EchoP95Ms)
		}
		ratio := float64(r.gated.PeakUsers) / float64(r.fleetSeats)
		if ratio < 1/ctrl1Margin || ratio > ctrl1Margin {
			t.Fatalf("%s: gated peak %d is %.2fx the oracle's %d fleet seats, outside the stated %.1fx margin",
				prof.Name, r.gated.PeakUsers, ratio, r.fleetSeats, ctrl1Margin)
		}
	}
}

// TestCont1LatencyDegradesMonotonically: every protocol x scheduler series
// of the shared-server grid must degrade (never improve) as users grow.
func TestCont1LatencyDegradesMonotonically(t *testing.T) {
	r := mustRun(t, "cont1", quickCfg)
	if len(r.Series) != 6 {
		t.Fatalf("cont1 produced %d series, want 3 protocols x 2 schedulers", len(r.Series))
	}
	for _, s := range r.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i]+0.01 < s.Y[i-1] {
				t.Fatalf("%s: p95 improved with more users: %v", s.Label, s.Y)
			}
		}
		if last := s.Y[len(s.Y)-1]; last < s.Y[0]*2 {
			t.Fatalf("%s: no meaningful degradation across the sweep: %v", s.Label, s.Y)
		}
	}
}
