// Package shard scales the shared-server contention model out to a
// fleet. One server.Server is one machine — its users contend on one
// clock, one CPU, one memory pool, one link — and the paper sizes exactly
// that machine. The north star is millions of users, which no single
// machine serves: a fleet of M servers does, and the operative question
// becomes placement — which machine gets the next user — especially once
// machines differ in memory and CPU speed.
//
// A Config names a base machine, a fleet of per-shard hardware overrides,
// a total population, and a placement policy:
//
//   - roundrobin deals users out in machine order, the policy of a fleet
//     that knows nothing about its machines;
//   - memaware greedily bin-packs against each machine's §5.1.1 memory
//     division (session.Capacity over the session manifest), the policy of
//     a fleet that reads /proc/meminfo;
//   - lataware probes: each user lands on the shard whose marginal p95
//     echo latency — measured by a short sizing.EvaluateConfig run of that
//     shard at its would-be population — is lowest, the policy of a fleet
//     that measures what the paper says to measure.
//
// Placement is live, not one-shot: every arrival — the initial population
// at time zero, a churn replacement mid-run, a displaced user re-logging
// in after its machine dies — routes through the same picker, which sees
// the fleet's current occupancy and which machines are still alive. A
// fleet that has churned for a while is therefore placed by its history,
// not by the initial plan (Config.ChurnRatePerSec, GrowthPerSec, and
// KillAt/KillShard drive the dynamics; see churn.go).
//
// Shards are independent machines, so whole shards fan out across
// farm.Run; each shard's seed derives from the fleet seed and its index,
// never from worker identity, so a fleet result is bit-for-bit identical
// at any worker count. Per-shard echo-latency histograms (identical
// bucketing fleet-wide) merge into fleet-level percentiles — percentiles
// of separate machines cannot be combined after the fact — and
// FleetCapacity bisects populations for the largest N whose fleet p95
// stays within the latency budget, the sizing question asked of the whole
// fleet instead of one box.
package shard

import (
	"fmt"
	"math"

	"thinbench/internal/farm"
	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// Placement policies.
const (
	PolicyRoundRobin = "roundrobin"
	PolicyMemAware   = "memaware"
	PolicyLatAware   = "lataware"
)

// Policies lists every placement policy in canonical order.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyMemAware, PolicyLatAware}
}

// Machine describes one shard's hardware as overrides of the fleet's base
// configuration. The zero value is exactly the base machine.
type Machine struct {
	// MemoryMB overrides the base machine's physical memory; 0 keeps it.
	MemoryMB int `json:"memory_mb"`
	// CPUSpeed scales the processor relative to the base machine:
	// per-interaction CPU costs and background demand divide by it, so
	// 2.0 is a machine twice as fast and 0.5 one half as fast. 0 means
	// 1.0.
	CPUSpeed float64 `json:"cpu_speed"`
	// Standby marks a machine that starts powered off: it takes no
	// arrivals until a controller powers it on mid-run (see
	// FleetView.PowerOn). A standby machine nobody activates is a spare
	// in the rack — present in every result, hosting no sessions.
	Standby bool `json:"standby,omitempty"`
}

func (m Machine) speed() float64 {
	if m.CPUSpeed <= 0 {
		return 1
	}
	return m.CPUSpeed
}

// DefaultFleet builds an m-machine heterogeneous fleet cycling through
// three hardware classes: a big box (128 MB, 1.5x CPU), the base machine
// unchanged, and a weak leftover (48 MB, 0.6x CPU). Placement policies
// only differentiate when machines differ; this is the canonical
// differing fleet used by the shard1 experiment, the CLI, and the
// walkthrough example.
func DefaultFleet(m int) []Machine {
	if m < 1 {
		m = 1
	}
	classes := []Machine{
		{MemoryMB: 128, CPUSpeed: 1.5},
		{},
		{MemoryMB: 48, CPUSpeed: 0.6},
	}
	out := make([]Machine, m)
	for j := range out {
		out[j] = classes[j%len(classes)]
	}
	return out
}

// Config describes a fleet, its population, and the population's
// dynamics.
type Config struct {
	// Base is the per-machine baseline. Base.Users is ignored (placement
	// decides each shard's population), Base.Seed is ignored (per-shard
	// seeds derive from Seed and the shard index), and Base.Sessions,
	// Base.Churn, and Base.Schedule are ignored (the fleet layer owns
	// session lifecycles and routes them through the placement policy —
	// set Config.Schedule for a fleet-wide arrival profile).
	Base server.Config
	// Machines is the fleet, one hardware override per shard.
	Machines []Machine
	// Users is the population placed across the fleet at time zero.
	Users int
	// Policy selects the placement policy; empty means roundrobin.
	Policy string

	// ChurnRatePerSec is each session's logout hazard per second (mean
	// logged-in time 1/rate). A departure frees its shard's seat at that
	// instant and is immediately replaced by a fresh login routed through
	// the live policy — the replacement pays session-setup bytes and
	// login page-ins wherever it lands. Zero keeps the population static.
	ChurnRatePerSec float64
	// Schedule, when non-nil, drives the fleet's Users seats from a
	// time-varying arrival profile instead of memoryless churn: every
	// episode's arrival — the 9 AM storm, the post-lunch return, a shift
	// wave — routes through the live placement policy at its instant, so
	// a KillAt during the ramp measures failover under a surge rather
	// than a trickle. Mutually exclusive with ChurnRatePerSec and
	// GrowthPerSec (a profile's timeline already expresses ramps).
	Schedule *schedule.Profile
	// GrowthPerSec adds a fleet-level Poisson arrival stream of new
	// sessions on top of the initial population (a ramp), also routed
	// live. Zero means no growth.
	GrowthPerSec float64
	// KillAt, when positive, fails machine KillShard at that instant:
	// every session on it logs out there (in-flight echoes censored at
	// the kill) and immediately re-logs-in elsewhere through the live
	// policy, paying full session setup on the surviving machines. The
	// dead machine takes no further arrivals. KillAt must leave at least
	// one timeline slice before it (the pre-kill baseline) and land
	// before the span ends.
	KillAt    simclock.Duration
	KillShard int

	// Control, when non-nil, installs live controller hooks in the
	// population walk: every mid-run arrival consults Control.Admit
	// before it is placed (admission queueing and rejection), and every
	// occupancy change notifies Control.Placed/Released so a shedder or
	// autoscaler can steer the fleet through its FleetView. The hooks run
	// inside the deterministic single-threaded plan walk, so a controlled
	// run stays bit-identical at any worker count. internal/control
	// builds these; a nil Control is exactly the uncontrolled fleet.
	Control *ControlHooks

	// ProbeSpan is the lataware placement probe window; 0 means 2 s.
	// Probes only rank shards, so they run far shorter than Base.Span.
	// Control hooks estimating marginal p95 share the same window.
	ProbeSpan simclock.Duration
	// Workers bounds the farm pool shards (and placement probes) run on;
	// like everywhere else in the reproduction it never affects results.
	Workers int
	// Seed roots all fleet randomness.
	Seed uint64
}

// dynamic reports whether the population changes mid-run — whether the
// fleet needs a lifecycle plan rather than a one-shot placement.
func (c Config) dynamic() bool {
	return c.ChurnRatePerSec > 0 || c.GrowthPerSec > 0 || c.KillAt > 0 || c.Schedule != nil
}

func (c Config) validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("shard: fleet has no machines")
	}
	if c.Users < 1 {
		return fmt.Errorf("shard: fleet population %d, need at least one user", c.Users)
	}
	live := 0
	for j, m := range c.Machines {
		if m.MemoryMB < 0 || m.CPUSpeed < 0 {
			return fmt.Errorf("shard: machine %d has negative hardware override %+v", j, m)
		}
		if !m.Standby {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("shard: every machine is standby; nothing can take the first arrival")
	}
	if c.Control != nil && !c.dynamic() {
		return fmt.Errorf("shard: control hooks steer the population walk; a static fleet has no walk to steer")
	}
	if c.ChurnRatePerSec < 0 || c.GrowthPerSec < 0 {
		return fmt.Errorf("shard: negative churn or growth rate")
	}
	if c.Schedule != nil {
		if c.ChurnRatePerSec > 0 || c.GrowthPerSec > 0 {
			return fmt.Errorf("shard: Schedule is mutually exclusive with ChurnRatePerSec and GrowthPerSec")
		}
		if err := c.Schedule.Validate(); err != nil {
			return err
		}
	}
	if c.KillAt < 0 {
		return fmt.Errorf("shard: negative kill time")
	}
	if c.KillAt > 0 {
		if c.KillShard < 0 || c.KillShard >= len(c.Machines) {
			return fmt.Errorf("shard: kill shard %d outside fleet of %d", c.KillShard, len(c.Machines))
		}
		if len(c.Machines) < 2 {
			return fmt.Errorf("shard: cannot fail over a one-machine fleet")
		}
		if c.KillAt >= c.Base.Span {
			return fmt.Errorf("shard: kill at %v is not before the span %v", c.KillAt, c.Base.Span)
		}
		if c.KillAt < server.TimelineSlice {
			return fmt.Errorf("shard: kill at %v leaves no pre-kill baseline slice", c.KillAt)
		}
	}
	return nil
}

// shardConfig composes shard j's complete server configuration: the base
// machine with j's hardware overrides applied, the given population, and
// the index-derived seed that makes every fleet run worker-count
// invariant (and placement probes consistent with the final run).
func (c Config) shardConfig(j, users int) server.Config {
	sc := c.Base
	m := c.Machines[j]
	if m.MemoryMB > 0 {
		sc.PhysicalKB = m.MemoryMB * 1024
	}
	if speed := m.speed(); speed != 1 {
		sc.EchoCPU = scaleCPU(sc.EchoCPU, speed)
		sc.EncodeCPU = scaleCPU(sc.EncodeCPU, speed)
		sc.BackgroundCPUFrac /= speed
	}
	sc.Users = users
	sc.Sessions = nil
	sc.Churn = server.Churn{}
	sc.Schedule = nil
	sc.Seed = simclock.DeriveSeed(c.Seed, uint64(j))
	return sc
}

// scaleCPU divides a per-interaction cost by the machine's speed, keeping
// a nonzero cost nonzero (a faster machine still does the work).
func scaleCPU(d simclock.Duration, speed float64) simclock.Duration {
	if d <= 0 {
		return d
	}
	s := simclock.Duration(float64(d) / speed)
	if s < 1 {
		s = 1
	}
	return s
}

// memoryCapacity is shard j's §5.1.1 memory division: sessions that fit
// in its physical memory behind the system baseline.
func (c Config) memoryCapacity(j int) int {
	sc := c.shardConfig(j, 0)
	return session.Capacity(sc.PhysicalKB, sc.SystemKB, sc.SessionManifest())
}

// farFuture marks a standby machine's availability: never, unless a
// controller powers it on.
const farFuture = simclock.Time(math.MaxInt64)

// probeKey addresses the marginal-p95 cache: one estimate per
// (shard, population) pair.
type probeKey struct{ shard, users int }

// prober is the marginal-p95 estimator behind lataware placement and the
// control plane's admission/shedding decisions: short
// sizing.EvaluateConfig runs of the real shard configuration (same
// protocol, same hardware overrides, same index-derived seed as the final
// run, only the span shortened), cached per (shard, population). Probes
// are deterministic pure functions of the configuration, so a cache
// filled in any order holds the same values — which is what lets the
// lataware prefetch fan out across the farm while control hooks fill the
// same cache single-threaded.
type prober struct {
	cfg   *Config
	span  simclock.Duration
	cache map[probeKey]float64
}

func newProber(cfg *Config) *prober {
	span := cfg.ProbeSpan
	if span <= 0 {
		span = 2 * simclock.Second
	}
	return &prober{cfg: cfg, span: span, cache: map[probeKey]float64{}}
}

func (pr *prober) raw(j, users int) (float64, error) {
	sc := pr.cfg.shardConfig(j, users)
	sc.Span = pr.span
	est, err := sizing.EvaluateConfig(sc)
	if err != nil {
		return 0, err
	}
	if est.Censored >= est.Interactions {
		// Nothing completed: worse than any measured latency.
		return math.Inf(1), nil
	}
	return est.P95EchoMs, nil
}

// p95 estimates shard j's p95 echo latency at the given population,
// filling the cache on a miss.
func (pr *prober) p95(j, users int) (float64, error) {
	if v, ok := pr.cache[probeKey{j, users}]; ok {
		return v, nil
	}
	v, err := pr.raw(j, users)
	if err != nil {
		return 0, err
	}
	pr.cache[probeKey{j, users}] = v
	return v, nil
}

// prefetchFirsts fills the population-1 estimate for every shard, fanned
// out across the farm — the first lataware placement round needs all M of
// them anyway, and a full placement costs about M+N probes (placing a
// user invalidates exactly one shard's marginal).
func (pr *prober) prefetchFirsts(workers int) error {
	m := len(pr.cfg.Machines)
	firsts, err := farm.Run(farm.Config{Sessions: m, Workers: workers, Seed: pr.cfg.Seed},
		func(s *farm.Session) (float64, error) { return pr.raw(s.Index, 1) })
	if err != nil {
		return err
	}
	for j, v := range firsts {
		pr.cache[probeKey{j, 1}] = v
	}
	return nil
}

// picker routes arrivals onto the fleet one at a time under the live
// placement policy. Unlike the one-shot placement loop it replaced, a
// picker carries the fleet's running state — current occupancy per shard,
// which machines are alive, which are powered on, and which a controller
// is draining — so the same instance places the initial population, churn
// replacements, growth arrivals, and failover re-logins, each against the
// fleet as it is at that moment.
type picker struct {
	cfg  *Config
	occ  []int
	dead []bool
	// availAt is when each machine becomes placeable: 0 for machines on
	// from the start, farFuture for standby spares until a controller
	// powers them on.
	availAt []simclock.Time
	// draining marks machines a controller has closed to new arrivals;
	// existing sessions stay until they depart.
	draining []bool
	rr       int   // roundrobin cursor
	caps     []int // memaware §5.1.1 divisions
	// pr is the marginal-p95 estimator, built eagerly for lataware
	// placement (with a farm prefetch) and lazily for control hooks.
	pr *prober
}

func newPicker(cfg *Config) (*picker, error) {
	m := len(cfg.Machines)
	p := &picker{
		cfg:      cfg,
		occ:      make([]int, m),
		dead:     make([]bool, m),
		availAt:  make([]simclock.Time, m),
		draining: make([]bool, m),
	}
	for j, mc := range cfg.Machines {
		if mc.Standby {
			p.availAt[j] = farFuture
		}
	}
	switch cfg.Policy {
	case PolicyRoundRobin, "":
	case PolicyMemAware:
		p.caps = make([]int, m)
		for j := range p.caps {
			p.caps[j] = cfg.memoryCapacity(j)
		}
	case PolicyLatAware:
		p.pr = newProber(cfg)
		if err := p.pr.prefetchFirsts(cfg.Workers); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("shard: unknown placement policy %q", cfg.Policy)
	}
	return p, nil
}

// prober returns the picker's marginal estimator, building it on first
// use for policies that do not probe on their own.
func (p *picker) prober() *prober {
	if p.pr == nil {
		p.pr = newProber(p.cfg)
	}
	return p.pr
}

// placeable reports whether shard j can take an arrival at now: alive,
// powered on, and not draining.
func (p *picker) placeable(j int, now simclock.Time) bool {
	return !p.dead[j] && !p.draining[j] && p.availAt[j] <= now
}

// pick places one arrival on the fleet as it stands at now and returns
// its shard. Ties break to the lowest index, so placement is
// deterministic.
func (p *picker) pick(now simclock.Time) (int, error) {
	m := len(p.cfg.Machines)
	best := -1
	switch p.cfg.Policy {
	case PolicyRoundRobin, "":
		for t := 0; t < m; t++ {
			j := (p.rr + t) % m
			if p.placeable(j, now) {
				best = j
				p.rr = (j + 1) % m
				break
			}
		}
	case PolicyMemAware:
		// Greedy bin-pack against each machine's memory division: the
		// next user lands on the machine with the most free session
		// slots; an overcommitted fleet keeps filling the least
		// overcommitted machine.
		for j := 0; j < m; j++ {
			if !p.placeable(j, now) {
				continue
			}
			if best < 0 || p.caps[j]-p.occ[j] > p.caps[best]-p.occ[best] {
				best = j
			}
		}
	case PolicyLatAware:
		bestP95 := 0.0
		for j := 0; j < m; j++ {
			if !p.placeable(j, now) {
				continue
			}
			v, err := p.pr.p95(j, p.occ[j]+1)
			if err != nil {
				return -1, err
			}
			if best < 0 || v < bestP95 {
				best, bestP95 = j, v
			}
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("shard: no machine alive to place a session on")
	}
	p.occ[best]++
	return best, nil
}

// release returns a departed session's seat on shard j. It is guarded:
// a departure that races a failover — its event scheduled before
// KillShard logged everyone out and relocated the seat — can reach a
// shard whose seat was already released, and an unguarded decrement
// would drive occ[j] negative: phantom free capacity that skews every
// later memaware placement toward a machine (possibly a dead one) that
// does not have the room. Out-of-range and already-empty shards are
// therefore no-ops.
func (p *picker) release(j int) {
	if j < 0 || j >= len(p.occ) || p.occ[j] <= 0 {
		return
	}
	p.occ[j]--
}

// kill marks machine j dead: it takes no further arrivals.
func (p *picker) kill(j int) { p.dead[j] = true }

// Place distributes the time-zero population across the fleet under the
// configured policy and returns the per-shard populations. Placement is
// greedy one user at a time through the live picker, which gives every
// policy the prefix property: the placement for N users is a prefix of
// the placement for N+1, so fleet series over growing populations share
// common random numbers per shard and degrade monotonically.
func Place(cfg Config) ([]int, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := newPicker(&cfg)
	if err != nil {
		return nil, err
	}
	for u := 0; u < cfg.Users; u++ {
		if _, err := p.pick(0); err != nil {
			return nil, err
		}
	}
	return p.occ, nil
}
