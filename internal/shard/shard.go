// Package shard scales the shared-server contention model out to a
// fleet. One server.Server is one machine — its users contend on one
// clock, one CPU, one memory pool, one link — and the paper sizes exactly
// that machine. The north star is millions of users, which no single
// machine serves: a fleet of M servers does, and the operative question
// becomes placement — which machine gets the next user — especially once
// machines differ in memory and CPU speed.
//
// A Config names a base machine, a fleet of per-shard hardware overrides,
// a total population, and a placement policy:
//
//   - roundrobin deals users out in machine order, the policy of a fleet
//     that knows nothing about its machines;
//   - memaware greedily bin-packs against each machine's §5.1.1 memory
//     division (session.Capacity over the session manifest), the policy of
//     a fleet that reads /proc/meminfo;
//   - lataware probes: each user lands on the shard whose marginal p95
//     echo latency — measured by a short sizing.EvaluateConfig run of that
//     shard at its would-be population — is lowest, the policy of a fleet
//     that measures what the paper says to measure.
//
// Placement is live, not one-shot: every arrival — the initial population
// at time zero, a churn replacement mid-run, a displaced user re-logging
// in after its machine dies — routes through the same picker, which sees
// the fleet's current occupancy and which machines are still alive. A
// fleet that has churned for a while is therefore placed by its history,
// not by the initial plan (Config.ChurnRatePerSec, GrowthPerSec, and
// KillAt/KillShard drive the dynamics; see churn.go).
//
// Shards are independent machines, so whole shards fan out across
// farm.Run; each shard's seed derives from the fleet seed and its index,
// never from worker identity, so a fleet result is bit-for-bit identical
// at any worker count. Per-shard echo-latency histograms (identical
// bucketing fleet-wide) merge into fleet-level percentiles — percentiles
// of separate machines cannot be combined after the fact — and
// FleetCapacity bisects populations for the largest N whose fleet p95
// stays within the latency budget, the sizing question asked of the whole
// fleet instead of one box.
package shard

import (
	"fmt"
	"math"

	"thinbench/internal/farm"
	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/session"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// Placement policies.
const (
	PolicyRoundRobin = "roundrobin"
	PolicyMemAware   = "memaware"
	PolicyLatAware   = "lataware"
)

// Policies lists every placement policy in canonical order.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyMemAware, PolicyLatAware}
}

// Machine describes one shard's hardware as overrides of the fleet's base
// configuration. The zero value is exactly the base machine.
type Machine struct {
	// MemoryMB overrides the base machine's physical memory; 0 keeps it.
	MemoryMB int `json:"memory_mb"`
	// CPUSpeed scales the processor relative to the base machine:
	// per-interaction CPU costs and background demand divide by it, so
	// 2.0 is a machine twice as fast and 0.5 one half as fast. 0 means
	// 1.0.
	CPUSpeed float64 `json:"cpu_speed"`
}

func (m Machine) speed() float64 {
	if m.CPUSpeed <= 0 {
		return 1
	}
	return m.CPUSpeed
}

// DefaultFleet builds an m-machine heterogeneous fleet cycling through
// three hardware classes: a big box (128 MB, 1.5x CPU), the base machine
// unchanged, and a weak leftover (48 MB, 0.6x CPU). Placement policies
// only differentiate when machines differ; this is the canonical
// differing fleet used by the shard1 experiment, the CLI, and the
// walkthrough example.
func DefaultFleet(m int) []Machine {
	if m < 1 {
		m = 1
	}
	classes := []Machine{
		{MemoryMB: 128, CPUSpeed: 1.5},
		{},
		{MemoryMB: 48, CPUSpeed: 0.6},
	}
	out := make([]Machine, m)
	for j := range out {
		out[j] = classes[j%len(classes)]
	}
	return out
}

// Config describes a fleet, its population, and the population's
// dynamics.
type Config struct {
	// Base is the per-machine baseline. Base.Users is ignored (placement
	// decides each shard's population), Base.Seed is ignored (per-shard
	// seeds derive from Seed and the shard index), and Base.Sessions,
	// Base.Churn, and Base.Schedule are ignored (the fleet layer owns
	// session lifecycles and routes them through the placement policy —
	// set Config.Schedule for a fleet-wide arrival profile).
	Base server.Config
	// Machines is the fleet, one hardware override per shard.
	Machines []Machine
	// Users is the population placed across the fleet at time zero.
	Users int
	// Policy selects the placement policy; empty means roundrobin.
	Policy string

	// ChurnRatePerSec is each session's logout hazard per second (mean
	// logged-in time 1/rate). A departure frees its shard's seat at that
	// instant and is immediately replaced by a fresh login routed through
	// the live policy — the replacement pays session-setup bytes and
	// login page-ins wherever it lands. Zero keeps the population static.
	ChurnRatePerSec float64
	// Schedule, when non-nil, drives the fleet's Users seats from a
	// time-varying arrival profile instead of memoryless churn: every
	// episode's arrival — the 9 AM storm, the post-lunch return, a shift
	// wave — routes through the live placement policy at its instant, so
	// a KillAt during the ramp measures failover under a surge rather
	// than a trickle. Mutually exclusive with ChurnRatePerSec and
	// GrowthPerSec (a profile's timeline already expresses ramps).
	Schedule *schedule.Profile
	// GrowthPerSec adds a fleet-level Poisson arrival stream of new
	// sessions on top of the initial population (a ramp), also routed
	// live. Zero means no growth.
	GrowthPerSec float64
	// KillAt, when positive, fails machine KillShard at that instant:
	// every session on it logs out there (in-flight echoes censored at
	// the kill) and immediately re-logs-in elsewhere through the live
	// policy, paying full session setup on the surviving machines. The
	// dead machine takes no further arrivals. KillAt must leave at least
	// one timeline slice before it (the pre-kill baseline) and land
	// before the span ends.
	KillAt    simclock.Duration
	KillShard int

	// ProbeSpan is the lataware placement probe window; 0 means 2 s.
	// Probes only rank shards, so they run far shorter than Base.Span.
	ProbeSpan simclock.Duration
	// Workers bounds the farm pool shards (and placement probes) run on;
	// like everywhere else in the reproduction it never affects results.
	Workers int
	// Seed roots all fleet randomness.
	Seed uint64
}

// dynamic reports whether the population changes mid-run — whether the
// fleet needs a lifecycle plan rather than a one-shot placement.
func (c Config) dynamic() bool {
	return c.ChurnRatePerSec > 0 || c.GrowthPerSec > 0 || c.KillAt > 0 || c.Schedule != nil
}

func (c Config) validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("shard: fleet has no machines")
	}
	if c.Users < 1 {
		return fmt.Errorf("shard: fleet population %d, need at least one user", c.Users)
	}
	for j, m := range c.Machines {
		if m.MemoryMB < 0 || m.CPUSpeed < 0 {
			return fmt.Errorf("shard: machine %d has negative hardware override %+v", j, m)
		}
	}
	if c.ChurnRatePerSec < 0 || c.GrowthPerSec < 0 {
		return fmt.Errorf("shard: negative churn or growth rate")
	}
	if c.Schedule != nil {
		if c.ChurnRatePerSec > 0 || c.GrowthPerSec > 0 {
			return fmt.Errorf("shard: Schedule is mutually exclusive with ChurnRatePerSec and GrowthPerSec")
		}
		if err := c.Schedule.Validate(); err != nil {
			return err
		}
	}
	if c.KillAt < 0 {
		return fmt.Errorf("shard: negative kill time")
	}
	if c.KillAt > 0 {
		if c.KillShard < 0 || c.KillShard >= len(c.Machines) {
			return fmt.Errorf("shard: kill shard %d outside fleet of %d", c.KillShard, len(c.Machines))
		}
		if len(c.Machines) < 2 {
			return fmt.Errorf("shard: cannot fail over a one-machine fleet")
		}
		if c.KillAt >= c.Base.Span {
			return fmt.Errorf("shard: kill at %v is not before the span %v", c.KillAt, c.Base.Span)
		}
		if c.KillAt < server.TimelineSlice {
			return fmt.Errorf("shard: kill at %v leaves no pre-kill baseline slice", c.KillAt)
		}
	}
	return nil
}

// shardConfig composes shard j's complete server configuration: the base
// machine with j's hardware overrides applied, the given population, and
// the index-derived seed that makes every fleet run worker-count
// invariant (and placement probes consistent with the final run).
func (c Config) shardConfig(j, users int) server.Config {
	sc := c.Base
	m := c.Machines[j]
	if m.MemoryMB > 0 {
		sc.PhysicalKB = m.MemoryMB * 1024
	}
	if speed := m.speed(); speed != 1 {
		sc.EchoCPU = scaleCPU(sc.EchoCPU, speed)
		sc.EncodeCPU = scaleCPU(sc.EncodeCPU, speed)
		sc.BackgroundCPUFrac /= speed
	}
	sc.Users = users
	sc.Sessions = nil
	sc.Churn = server.Churn{}
	sc.Schedule = nil
	sc.Seed = simclock.DeriveSeed(c.Seed, uint64(j))
	return sc
}

// scaleCPU divides a per-interaction cost by the machine's speed, keeping
// a nonzero cost nonzero (a faster machine still does the work).
func scaleCPU(d simclock.Duration, speed float64) simclock.Duration {
	if d <= 0 {
		return d
	}
	s := simclock.Duration(float64(d) / speed)
	if s < 1 {
		s = 1
	}
	return s
}

// memoryCapacity is shard j's §5.1.1 memory division: sessions that fit
// in its physical memory behind the system baseline.
func (c Config) memoryCapacity(j int) int {
	sc := c.shardConfig(j, 0)
	return session.Capacity(sc.PhysicalKB, sc.SystemKB, sc.SessionManifest())
}

// picker routes arrivals onto the fleet one at a time under the live
// placement policy. Unlike the one-shot placement loop it replaced, a
// picker carries the fleet's running state — current occupancy per shard
// and which machines are alive — so the same instance places the initial
// population, churn replacements, growth arrivals, and failover
// re-logins, each against the fleet as it is at that moment.
type picker struct {
	cfg  *Config
	occ  []int
	dead []bool
	rr   int   // roundrobin cursor
	caps []int // memaware §5.1.1 divisions
	// probe is the lataware marginal-p95 estimator, cached per
	// (shard, population).
	probe func(j, users int) (float64, error)
}

func newPicker(cfg *Config) (*picker, error) {
	m := len(cfg.Machines)
	p := &picker{cfg: cfg, occ: make([]int, m), dead: make([]bool, m)}
	switch cfg.Policy {
	case PolicyRoundRobin, "":
	case PolicyMemAware:
		p.caps = make([]int, m)
		for j := range p.caps {
			p.caps[j] = cfg.memoryCapacity(j)
		}
	case PolicyLatAware:
		if err := p.initProbes(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("shard: unknown placement policy %q", cfg.Policy)
	}
	return p, nil
}

// initProbes builds the lataware marginal estimator: short
// sizing.EvaluateConfig runs of the real shard configuration (same
// protocol, same hardware overrides, same index-derived seed as the final
// run, only the span shortened), cached per (shard, population) — placing
// a user invalidates exactly one shard's marginal, so a full placement
// costs about M+N probes. The M first-round probes fan out across the
// farm; the cache is filled single-threaded from the ordered results.
func (p *picker) initProbes() error {
	cfg := p.cfg
	probeSpan := cfg.ProbeSpan
	if probeSpan <= 0 {
		probeSpan = 2 * simclock.Second
	}
	raw := func(j, users int) (float64, error) {
		sc := cfg.shardConfig(j, users)
		sc.Span = probeSpan
		est, err := sizing.EvaluateConfig(sc)
		if err != nil {
			return 0, err
		}
		if est.Censored >= est.Interactions {
			// Nothing completed: worse than any measured latency.
			return math.Inf(1), nil
		}
		return est.P95EchoMs, nil
	}

	type key struct{ shard, users int }
	cache := map[key]float64{}
	m := len(cfg.Machines)
	firsts, err := farm.Run(farm.Config{Sessions: m, Workers: cfg.Workers, Seed: cfg.Seed},
		func(s *farm.Session) (float64, error) { return raw(s.Index, 1) })
	if err != nil {
		return err
	}
	for j, v := range firsts {
		cache[key{j, 1}] = v
	}
	p.probe = func(j, users int) (float64, error) {
		if v, ok := cache[key{j, users}]; ok {
			return v, nil
		}
		v, err := raw(j, users)
		if err != nil {
			return 0, err
		}
		cache[key{j, users}] = v
		return v, nil
	}
	return nil
}

// pick places one arrival on the fleet as it currently stands and returns
// its shard. Ties break to the lowest index, so placement is
// deterministic.
func (p *picker) pick() (int, error) {
	m := len(p.cfg.Machines)
	best := -1
	switch p.cfg.Policy {
	case PolicyRoundRobin, "":
		for t := 0; t < m; t++ {
			j := (p.rr + t) % m
			if !p.dead[j] {
				best = j
				p.rr = (j + 1) % m
				break
			}
		}
	case PolicyMemAware:
		// Greedy bin-pack against each machine's memory division: the
		// next user lands on the machine with the most free session
		// slots; an overcommitted fleet keeps filling the least
		// overcommitted machine.
		for j := 0; j < m; j++ {
			if p.dead[j] {
				continue
			}
			if best < 0 || p.caps[j]-p.occ[j] > p.caps[best]-p.occ[best] {
				best = j
			}
		}
	case PolicyLatAware:
		bestP95 := 0.0
		for j := 0; j < m; j++ {
			if p.dead[j] {
				continue
			}
			v, err := p.probe(j, p.occ[j]+1)
			if err != nil {
				return -1, err
			}
			if best < 0 || v < bestP95 {
				best, bestP95 = j, v
			}
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("shard: no machine alive to place a session on")
	}
	p.occ[best]++
	return best, nil
}

// release returns a departed session's seat on shard j.
func (p *picker) release(j int) { p.occ[j]-- }

// kill marks machine j dead: it takes no further arrivals.
func (p *picker) kill(j int) { p.dead[j] = true }

// Place distributes the time-zero population across the fleet under the
// configured policy and returns the per-shard populations. Placement is
// greedy one user at a time through the live picker, which gives every
// policy the prefix property: the placement for N users is a prefix of
// the placement for N+1, so fleet series over growing populations share
// common random numbers per shard and degrade monotonically.
func Place(cfg Config) ([]int, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := newPicker(&cfg)
	if err != nil {
		return nil, err
	}
	for u := 0; u < cfg.Users; u++ {
		if _, err := p.pick(); err != nil {
			return nil, err
		}
	}
	return p.occ, nil
}
