package shard

import (
	"thinbench/internal/farm"
	"thinbench/internal/metrics"
	"thinbench/internal/server"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// Fleet-standard echo-latency bucketing: 1 ms buckets, at least
// HistBuckets of them. Every shard of a run buckets identically so
// per-shard histograms merge into exact fleet-level counts.
const (
	HistBucketMs = 1.0
	HistBuckets  = 4096
)

// histBuckets sizes a run's bucketing to its measurement window. A
// censored interaction enters as its age at run end, which can reach the
// span plus the server's drain tail, so the range must cover that or
// fleet percentiles would silently floor at the histogram edge exactly
// when the fleet is most overloaded — the case they exist to expose.
func histBuckets(span simclock.Duration) int {
	n := int(span.Milliseconds()) + 3000
	if n < HistBuckets {
		n = HistBuckets
	}
	return n
}

// ShardResult is one machine's measured slice of a fleet run: its
// hardware, its assigned population, and the full server.Result. A shard
// assigned zero users reports a zero Result — no machine is simulated,
// unlike server.New which clamps an empty population up to one user.
type ShardResult struct {
	Shard      int     `json:"shard"`
	PhysicalKB int     `json:"physical_kb"`
	CPUSpeed   float64 `json:"cpu_speed"`
	server.Result
}

// FleetResult is the population's measured impact on the whole fleet.
// Fleet percentiles come from the merged per-shard histograms, at bucket
// granularity (HistBucketMs): the p95 of a fleet is not the max (or any
// other combination) of per-shard p95s, so the sample counts must merge
// before the percentile is taken. All fields are scalars, slices of
// scalars, or nested scalar structs, so results compare with
// reflect.DeepEqual in determinism tests and serialize directly.
type FleetResult struct {
	Policy string `json:"policy"`
	Users  int    `json:"users"`
	// Placement is users per shard, in shard-index order.
	Placement []int         `json:"placement"`
	Shards    []ShardResult `json:"shards"`

	// EchoP50Ms and EchoP95Ms are fleet-level percentiles over every
	// user's every interaction on every shard, censored samples included.
	EchoP50Ms float64 `json:"echo_p50_ms"`
	EchoP95Ms float64 `json:"echo_p95_ms"`
	// MaxShardP95Ms is the worst single machine's exact p95, the number a
	// per-shard alert would fire on.
	MaxShardP95Ms float64 `json:"max_shard_p95_ms"`

	Interactions int64 `json:"interactions"`
	Censored     int64 `json:"censored"`
	LostInputs   int64 `json:"lost_inputs"`
	// Clamped counts samples beyond the fleet histogram's range. It stays
	// zero for any span the bucketing was sized for; nonzero means the
	// fleet percentiles are floored at the histogram edge.
	Clamped int64 `json:"clamped"`
}

func policyName(p string) string {
	if p == "" {
		return PolicyRoundRobin
	}
	return p
}

// Run places the population, runs every shard concurrently across the
// farm — one whole machine per farm body — and merges the per-shard
// echo histograms into fleet-level percentiles. The same configuration
// always produces a deeply identical FleetResult at any worker count.
func Run(cfg Config) (FleetResult, error) {
	counts, err := Place(cfg)
	if err != nil {
		return FleetResult{}, err
	}
	buckets := histBuckets(cfg.Base.Span)
	type shardOut struct {
		res  server.Result
		hist *metrics.Histogram
	}
	outs, err := farm.Run(farm.Config{Sessions: len(cfg.Machines), Workers: cfg.Workers, Seed: cfg.Seed},
		func(s *farm.Session) (shardOut, error) {
			n := counts[s.Index]
			if n == 0 {
				return shardOut{hist: metrics.NewHistogram(HistBucketMs, buckets)}, nil
			}
			srv, err := server.New(cfg.shardConfig(s.Index, n))
			if err != nil {
				return shardOut{}, err
			}
			res, err := srv.Run()
			if err != nil {
				return shardOut{}, err
			}
			return shardOut{res: res, hist: srv.EchoHistogram(HistBucketMs, buckets)}, nil
		})
	if err != nil {
		return FleetResult{}, err
	}

	fleet := FleetResult{Policy: policyName(cfg.Policy), Users: cfg.Users, Placement: counts}
	merged := metrics.NewHistogram(HistBucketMs, buckets)
	for j, o := range outs {
		fleet.Shards = append(fleet.Shards, ShardResult{
			Shard:      j,
			PhysicalKB: cfg.shardConfig(j, 0).PhysicalKB,
			CPUSpeed:   cfg.Machines[j].speed(),
			Result:     o.res,
		})
		merged.Merge(o.hist)
		fleet.Interactions += o.res.Interactions
		fleet.Censored += o.res.Censored
		fleet.LostInputs += o.res.LostInputs
		if o.res.EchoP95Ms > fleet.MaxShardP95Ms {
			fleet.MaxShardP95Ms = o.res.EchoP95Ms
		}
	}
	fleet.EchoP50Ms = merged.Percentile(50)
	fleet.EchoP95Ms = merged.Percentile(95)
	fleet.Clamped = merged.Clamped()
	return fleet, nil
}

// FleetCapacity finds the largest total population whose fleet-level p95
// echo latency stays within the budget (0 means the sizing layer's 150 ms
// default), bisecting over populations exactly as sizing.Capacity bisects
// one machine's. A fleet where no interaction ever completes is over
// budget no matter what its censored ages read. Because greedy placement
// has the prefix property and every shard keeps its index-derived seed,
// candidate populations share common random numbers and the fleet p95 is
// monotone in N, which is what makes bisection valid. Returns the
// capacity and the fleet result at that population (at population 1 when
// even one user blows the budget).
func FleetCapacity(cfg Config, maxUsers int, budget simclock.Duration) (int, FleetResult, error) {
	if budget <= 0 {
		budget = sizing.DefaultLatencyBudget
	}
	if maxUsers < 1 {
		maxUsers = 1
	}
	cache := map[int]FleetResult{}
	eval := func(n int) (FleetResult, error) {
		if r, ok := cache[n]; ok {
			return r, nil
		}
		c := cfg
		c.Users = n
		r, err := Run(c)
		if err == nil {
			cache[n] = r
		}
		return r, err
	}
	within := func(r FleetResult) bool {
		return r.Censored < r.Interactions && r.EchoP95Ms <= budget.Milliseconds()
	}

	first, err := eval(1)
	if err != nil {
		return 0, FleetResult{}, err
	}
	if !within(first) {
		return 0, first, nil
	}
	lo, hi := 1, maxUsers
	for lo < hi {
		mid := (lo + hi + 1) / 2
		r, err := eval(mid)
		if err != nil {
			return 0, FleetResult{}, err
		}
		if within(r) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	at, err := eval(lo)
	if err != nil {
		return 0, FleetResult{}, err
	}
	return lo, at, nil
}
