package shard

import (
	"thinbench/internal/farm"
	"thinbench/internal/metrics"
	"thinbench/internal/server"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// Fleet-standard echo-latency bucketing: 1 ms buckets, at least
// HistBuckets of them. Every shard of a run buckets identically so
// per-shard histograms merge into exact fleet-level counts.
const (
	HistBucketMs = 1.0
	HistBuckets  = 4096
)

// Recovery tolerance after a failover: the fleet has recovered in the
// first timeline slice whose p95 is within RecoveryFactor of the pre-kill
// p95 plus RecoverySlackMs (the slack absorbs bucket granularity on small
// baselines).
const (
	RecoveryFactor  = 1.25
	RecoverySlackMs = 5.0
)

// histBuckets sizes a run's bucketing to its measurement window. A
// censored interaction enters as its age at run end, which can reach the
// span plus the server's drain tail, so the range must cover that or
// fleet percentiles would silently floor at the histogram edge exactly
// when the fleet is most overloaded — the case they exist to expose.
func histBuckets(span simclock.Duration) int {
	n := int((span + server.DrainSpan + simclock.Second).Milliseconds())
	if n < HistBuckets {
		n = HistBuckets
	}
	return n
}

// ShardResult is one machine's measured slice of a fleet run: its
// hardware, its assigned population, and the full server.Result. A shard
// that never hosts a session reports a zero Result — no machine is
// simulated, unlike server.New which clamps an empty population up to one
// user.
type ShardResult struct {
	Shard      int     `json:"shard"`
	PhysicalKB int     `json:"physical_kb"`
	CPUSpeed   float64 `json:"cpu_speed"`
	Killed     bool    `json:"killed,omitempty"`
	server.Result
}

// FleetResult is the population's measured impact on the whole fleet.
// Fleet percentiles come from the merged per-shard histograms, at bucket
// granularity (HistBucketMs): the p95 of a fleet is not the max (or any
// other combination) of per-shard p95s, so the sample counts must merge
// before the percentile is taken. All fields are scalars, slices of
// scalars, or nested scalar structs, so results compare with
// reflect.DeepEqual in determinism tests and serialize directly.
type FleetResult struct {
	Policy string `json:"policy"`
	Users  int    `json:"users"`
	// Placement is the time-zero population per shard, in shard-index
	// order; Arrivals and Departures sum the fleet's mid-run logins and
	// logouts (churn replacements, growth, failover re-logins).
	Placement  []int         `json:"placement"`
	Arrivals   int           `json:"arrivals"`
	Departures int           `json:"departures"`
	Shards     []ShardResult `json:"shards"`

	// EchoP50Ms and EchoP95Ms are fleet-level percentiles over every
	// user's every interaction on every shard, censored samples included.
	EchoP50Ms float64 `json:"echo_p50_ms"`
	EchoP95Ms float64 `json:"echo_p95_ms"`
	// MaxShardP95Ms is the worst single machine's exact p95, the number a
	// per-shard alert would fire on; LoginMaxMs is the fleet's slowest
	// admission (a max merges exactly across shards, unlike a
	// percentile).
	MaxShardP95Ms float64 `json:"max_shard_p95_ms"`
	LoginMaxMs    float64 `json:"login_max_ms"`
	// P95TimelineMs is the fleet-level per-slice p95 (one
	// server.TimelineSlice per entry, merged across shards before the
	// percentile is taken), the series that makes churn and failover
	// transients visible fleet-wide.
	P95TimelineMs []float64 `json:"p95_timeline_ms"`

	// Failover metrics, meaningful when KilledShard >= 0: the fleet p95
	// over the slices before the kill, the worst slice p95 at or after
	// it (the excursion), and how long after the kill the fleet's slice
	// p95 first returned to within tolerance of the pre-kill baseline
	// (-1 when it never did within the run).
	KilledShard   int     `json:"killed_shard"`
	PreKillP95Ms  float64 `json:"pre_kill_p95_ms"`
	PeakKillP95Ms float64 `json:"peak_kill_p95_ms"`
	RecoveryMs    float64 `json:"recovery_ms"`

	// Control-plane outcomes, populated only for controlled runs
	// (cfg.Control != nil) so uncontrolled baselines serialize
	// byte-identically to before the control plane existed.
	PeakUsers       int     `json:"peak_users,omitempty"`
	DeferredLogins  int     `json:"deferred_logins,omitempty"`
	RejectedLogins  int     `json:"rejected_logins,omitempty"`
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms,omitempty"`
	QueueWaitMaxMs  float64 `json:"queue_wait_max_ms,omitempty"`
	TierChanges     int     `json:"tier_changes,omitempty"`
	SheddedFrames   int64   `json:"shedded_frames,omitempty"`
	Activations     int     `json:"activations,omitempty"`
	Drains          int     `json:"drains,omitempty"`

	Interactions int64 `json:"interactions"`
	Censored     int64 `json:"censored"`
	LostInputs   int64 `json:"lost_inputs"`
	// SimEvents sums the discrete-event dispatches across every shard's
	// engine — the fleet's total simulator work, used by the speed layer.
	SimEvents uint64 `json:"sim_events"`
	// Clamped counts samples beyond the fleet histogram's range. It stays
	// zero for any span the bucketing was sized for; nonzero means the
	// fleet percentiles are floored at the histogram edge.
	Clamped int64 `json:"clamped"`
}

func policyName(p string) string {
	if p == "" {
		return PolicyRoundRobin
	}
	return p
}

// Run places the population — one-shot for a static fleet, as a full
// lifecycle plan when churn, growth, or a kill make it dynamic — runs
// every shard concurrently across the farm (one whole machine per farm
// body), and merges the per-shard echo histograms into fleet-level
// percentiles and the per-shard timelines into a fleet-level timeline.
// The same configuration always produces a deeply identical FleetResult
// at any worker count.
func Run(cfg Config) (FleetResult, error) {
	var fp fleetPlan
	var counts []int
	var plans [][]server.Lifecycle
	var err error
	if cfg.dynamic() {
		fp, err = buildPlans(cfg)
		plans, counts = fp.plans, fp.counts
	} else {
		counts, err = Place(cfg)
	}
	if err != nil {
		return FleetResult{}, err
	}
	buckets := histBuckets(cfg.Base.Span)
	nSlices := server.TimelineSlices(cfg.Base.Span)
	type shardOut struct {
		res    server.Result
		hist   *metrics.Histogram
		slices []*metrics.Histogram
	}
	emptyOut := func() shardOut {
		o := shardOut{hist: metrics.NewHistogram(HistBucketMs, buckets)}
		o.slices = make([]*metrics.Histogram, nSlices)
		for i := range o.slices {
			o.slices[i] = metrics.NewHistogram(HistBucketMs, buckets)
		}
		return o
	}
	outs, err := farm.Run(farm.Config{Sessions: len(cfg.Machines), Workers: cfg.Workers, Seed: cfg.Seed},
		func(s *farm.Session) (shardOut, error) {
			sc := cfg.shardConfig(s.Index, counts[s.Index])
			if plans != nil {
				if len(plans[s.Index]) == 0 {
					return emptyOut(), nil
				}
				sc.Sessions = plans[s.Index]
				if fp.tiers != nil {
					sc.TierPlan = fp.tiers[s.Index]
				}
			} else if counts[s.Index] == 0 {
				return emptyOut(), nil
			}
			srv, err := server.New(sc)
			if err != nil {
				return shardOut{}, err
			}
			res, err := srv.Run()
			if err != nil {
				return shardOut{}, err
			}
			return shardOut{
				res:    res,
				hist:   srv.EchoHistogram(HistBucketMs, buckets),
				slices: srv.SliceHistograms(HistBucketMs, buckets),
			}, nil
		})
	if err != nil {
		return FleetResult{}, err
	}

	fleet := FleetResult{
		Policy:      policyName(cfg.Policy),
		Users:       cfg.Users,
		Placement:   counts,
		KilledShard: -1,
		RecoveryMs:  -1,
	}
	merged := metrics.NewHistogram(HistBucketMs, buckets)
	sliceMerged := make([]*metrics.Histogram, nSlices)
	for i := range sliceMerged {
		sliceMerged[i] = metrics.NewHistogram(HistBucketMs, buckets)
	}
	for j, o := range outs {
		fleet.Shards = append(fleet.Shards, ShardResult{
			Shard:      j,
			PhysicalKB: cfg.shardConfig(j, 0).PhysicalKB,
			CPUSpeed:   cfg.Machines[j].speed(),
			Killed:     cfg.KillAt > 0 && j == cfg.KillShard,
			Result:     o.res,
		})
		merged.Merge(o.hist)
		for i, sh := range o.slices {
			sliceMerged[i].Merge(sh)
		}
		fleet.Arrivals += o.res.Arrivals
		fleet.Departures += o.res.Departures
		fleet.Interactions += o.res.Interactions
		fleet.Censored += o.res.Censored
		fleet.LostInputs += o.res.LostInputs
		fleet.SheddedFrames += o.res.SheddedFrames
		fleet.SimEvents += o.res.SimEvents
		if o.res.EchoP95Ms > fleet.MaxShardP95Ms {
			fleet.MaxShardP95Ms = o.res.EchoP95Ms
		}
		if o.res.LoginMaxMs > fleet.LoginMaxMs {
			fleet.LoginMaxMs = o.res.LoginMaxMs
		}
	}
	fleet.EchoP50Ms = merged.Percentile(50)
	fleet.EchoP95Ms = merged.Percentile(95)
	fleet.Clamped = merged.Clamped()
	fleet.P95TimelineMs = make([]float64, nSlices)
	for i, h := range sliceMerged {
		// The timeline re-buckets the same samples the whole-run histogram
		// holds, so its clamp counts are not added to fleet.Clamped.
		fleet.P95TimelineMs[i] = h.Percentile(95)
	}
	if cfg.KillAt > 0 {
		fleet.KilledShard = cfg.KillShard
		fleet.PreKillP95Ms, fleet.PeakKillP95Ms, fleet.RecoveryMs =
			failoverMetrics(cfg.KillAt, sliceMerged, fleet.P95TimelineMs)
	}
	if cfg.Control != nil {
		fleet.PeakUsers = fp.stats.PeakUsers
		fleet.DeferredLogins = fp.stats.DeferredLogins
		fleet.RejectedLogins = fp.stats.RejectedLogins
		fleet.QueueWaitMeanMs = fp.stats.QueueWaitMeanMs
		fleet.QueueWaitMaxMs = fp.stats.QueueWaitMaxMs
		fleet.TierChanges = fp.stats.TierChanges
		fleet.Activations = fp.stats.Activations
		fleet.Drains = fp.stats.Drains
	}
	return fleet, nil
}

// failoverMetrics reduces the fleet timeline around a kill: the baseline
// p95 over every pre-kill slice (merged, then one percentile), the worst
// slice p95 at or after the kill, and the delay from the kill until the
// first slice whose p95 is back within tolerance of the baseline. Slices
// with no samples are skipped on the way down — an empty slice is "no
// data", not "recovered". One caveat: a displaced user whose re-login
// never completes contributes its login-screen wait only at the slice it
// was censored in (run end), so RecoveryMs describes the latency of the
// users being served; read it together with LoginMaxMs and Censored,
// which expose re-logins the survivors starved out.
func failoverMetrics(killAt simclock.Duration, slices []*metrics.Histogram, p95s []float64) (pre, peak, recovery float64) {
	killSlice := int(killAt / server.TimelineSlice)
	if killSlice > len(slices) {
		killSlice = len(slices)
	}
	before := metrics.NewHistogram(HistBucketMs, slices[0].Buckets())
	for _, h := range slices[:killSlice] {
		before.Merge(h)
	}
	pre = before.Percentile(95)
	recovery = -1
	threshold := pre*RecoveryFactor + RecoverySlackMs
	for i := killSlice; i < len(slices); i++ {
		if p95s[i] > peak {
			peak = p95s[i]
		}
		if recovery < 0 && slices[i].N() > 0 && p95s[i] <= threshold {
			sliceEnd := simclock.Duration(i+1) * server.TimelineSlice
			recovery = (sliceEnd - killAt).Milliseconds()
		}
	}
	return pre, peak, recovery
}

// CapacityResult is a fleet capacity answer together with the probes that
// bound it, so a degenerate search is diagnosable instead of a bare
// number: At carries the full fleet result at the capacity (including its
// Interactions and Censored counts, the way the single-server search's
// Estimate does), and Over carries the first over-budget probe — when
// every interaction of that probe was censored, Over.Censored ==
// Over.Interactions says so explicitly.
type CapacityResult struct {
	// Users is the largest population whose fleet p95 stays within the
	// budget; 0 when even one user blows it.
	Users int
	// At is the fleet result at that population. At capacity 0 it is the
	// zero value — there is no within-budget population to report.
	At FleetResult
	// Over is the probe just past the capacity (population Users+1, or
	// population 1 at capacity 0); nil when the search ran into maxUsers
	// without ever violating the budget.
	Over *FleetResult
}

// FleetCapacity finds the largest total population whose fleet-level p95
// echo latency stays within the budget (0 means the sizing layer's 150 ms
// default), bisecting over populations exactly as sizing.Capacity bisects
// one machine's. The configuration's churn and growth dynamics apply to
// every probe, so the answer is churn-aware capacity: at a nonzero churn
// rate every candidate population also pays its replacement logins'
// setup and page-ins, which can only lower the answer. A fleet where no
// interaction ever completes is over budget no matter what its censored
// ages read. Because greedy placement has the prefix property and every
// shard keeps its index-derived seed, candidate populations share common
// random numbers and the fleet p95 is monotone in N, which is what makes
// bisection valid.
func FleetCapacity(cfg Config, maxUsers int, budget simclock.Duration) (CapacityResult, error) {
	if budget <= 0 {
		budget = sizing.DefaultLatencyBudget
	}
	if maxUsers < 1 {
		maxUsers = 1
	}
	cache := map[int]FleetResult{}
	eval := func(n int) (FleetResult, error) {
		if r, ok := cache[n]; ok {
			return r, nil
		}
		c := cfg
		c.Users = n
		r, err := Run(c)
		if err == nil {
			cache[n] = r
		}
		return r, err
	}
	within := func(r FleetResult) bool {
		return r.Censored < r.Interactions && r.EchoP95Ms <= budget.Milliseconds() &&
			r.LoginMaxMs <= sizing.LoginBudget.Milliseconds()
	}

	first, err := eval(1)
	if err != nil {
		return CapacityResult{}, err
	}
	if !within(first) {
		return CapacityResult{Users: 0, Over: &first}, nil
	}
	lo, hi := 1, maxUsers
	for lo < hi {
		mid := (lo + hi + 1) / 2
		r, err := eval(mid)
		if err != nil {
			return CapacityResult{}, err
		}
		if within(r) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	at, err := eval(lo)
	if err != nil {
		return CapacityResult{}, err
	}
	out := CapacityResult{Users: lo, At: at}
	if lo < maxUsers {
		over, err := eval(lo + 1)
		if err != nil {
			return CapacityResult{}, err
		}
		out.Over = &over
	}
	return out, nil
}
