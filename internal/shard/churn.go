package shard

import (
	"container/heap"

	"thinbench/internal/server"
	"thinbench/internal/simclock"
)

// Salts separating the fleet's churn and growth random streams from every
// other consumer of Config.Seed.
const (
	fleetChurnSalt  = 0x636875726e // "churn"
	fleetGrowthSalt = 0x67726f77   // "grow"
)

// Fleet event kinds, in tie-break priority order at an instant: a machine
// fails before anything else scheduled at the same microsecond reacts.
const (
	evKill = iota
	evDepart
	evArrive
)

// fleetEvent is one population change awaiting its turn on the fleet
// clock. Events order by (time, creation sequence), so the walk is fully
// deterministic.
type fleetEvent struct {
	at   simclock.Time
	seq  int
	kind int
	seat int // evDepart only
	gen  int // evDepart only: stale-generation guard
}

type eventHeap []*fleetEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*fleetEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// seat is one logical user slot across its whole history: the session
// occupying it now, which shard that session lives on, and the slot's
// private churn stream. A replacement (or a failover re-login) is a new
// session in the same seat, so its stay draws from the same stream —
// which is what gives churn plans the prefix property across candidate
// populations.
type seat struct {
	id    int
	shard int
	idx   int // index of the current lifecycle in plans[shard]
	gen   int // bumped per login; stale departure events are skipped
	alive bool
	rng   *simclock.Rand // nil when churn is off
}

// buildPlans walks the fleet's population dynamics in time order —
// initial placement, churn departures and their replacements, growth
// arrivals, the machine kill and its re-login storm — routing every
// arrival through the live picker, and emits one explicit lifecycle plan
// per shard for the server layer to execute. The walk is bookkeeping, not
// simulation: placement decisions depend only on occupancy counts (plus
// the lataware probe cache), so the plans are deterministic and each
// shard's simulation still fans out independently across the farm.
//
// It returns the per-shard plans and the time-zero placement.
func buildPlans(cfg Config) ([][]server.Lifecycle, []int, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	pk, err := newPicker(&cfg)
	if err != nil {
		return nil, nil, err
	}
	span := simclock.Time(cfg.Base.Span)
	plans := make([][]server.Lifecycle, len(cfg.Machines))
	var seats []*seat

	var events eventHeap
	seq := 0
	push := func(at simclock.Time, kind, seatID, gen int) {
		heap.Push(&events, &fleetEvent{at: at, seq: seq, kind: kind, seat: seatID, gen: gen})
		seq++
	}

	var meanStay simclock.Duration
	if cfg.ChurnRatePerSec > 0 {
		meanStay = simclock.Duration(1e6 / cfg.ChurnRatePerSec)
	}
	newSeat := func() *seat {
		st := &seat{id: len(seats), shard: -1}
		if meanStay > 0 {
			st.rng = simclock.NewRand(simclock.DeriveSeed(
				simclock.DeriveSeed(cfg.Seed, fleetChurnSalt), uint64(st.id)))
		}
		seats = append(seats, st)
		return st
	}
	login := func(st *seat, j int, at simclock.Time) {
		st.shard, st.idx, st.alive = j, len(plans[j]), true
		st.gen++
		// The fleet-global seat number rides along as the session's
		// random-stream identity, so a seat keeps its behavior wherever
		// churn and failover move it and the plan for N users stays a
		// prefix of the plan for N+1. (Unlike the single-server case,
		// fleet seat streams are global while a static fleet's streams
		// are per-shard indices, so a churned fleet is compared to its
		// static baseline by effect size, not common random numbers.)
		plans[j] = append(plans[j], server.Lifecycle{Login: at, Seat: st.id + 1})
		if meanStay > 0 {
			if end := at.Add(st.rng.ExpDuration(meanStay)); end < span {
				push(end, evDepart, st.id, st.gen)
			}
		}
	}
	logout := func(st *seat, at simclock.Time) {
		plans[st.shard][st.idx].Logout = at
		st.alive = false
		pk.release(st.shard)
	}

	// The kill is pushed first so that, at its exact instant, the machine
	// fails before any same-instant departure or arrival is handled.
	if cfg.KillAt > 0 {
		push(simclock.Time(cfg.KillAt), evKill, -1, 0)
	}
	// Time-zero population, placed by the live policy one user at a time.
	for u := 0; u < cfg.Users; u++ {
		j, err := pk.pick()
		if err != nil {
			return nil, nil, err
		}
		login(newSeat(), j, 0)
	}
	counts := append([]int(nil), pk.occ...)
	// Growth arrivals draw from their own stream, independent of the
	// population size, so a growing fleet series still shares common
	// random numbers across candidate populations.
	if cfg.GrowthPerSec > 0 {
		grng := simclock.NewRand(simclock.DeriveSeed(cfg.Seed, fleetGrowthSalt))
		gap := simclock.Duration(1e6 / cfg.GrowthPerSec)
		for at := simclock.Time(0).Add(grng.ExpDuration(gap)); at < span; at = at.Add(grng.ExpDuration(gap)) {
			push(at, evArrive, -1, 0)
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(*fleetEvent)
		switch e.kind {
		case evDepart:
			st := seats[e.seat]
			if e.gen != st.gen || !st.alive {
				continue // relocated by a failover since this was scheduled
			}
			logout(st, e.at)
			// The next shift's user takes the seat immediately, routed by
			// the policy against the fleet as it stands now.
			j, err := pk.pick()
			if err != nil {
				return nil, nil, err
			}
			login(st, j, e.at)
		case evArrive:
			j, err := pk.pick()
			if err != nil {
				return nil, nil, err
			}
			login(newSeat(), j, e.at)
		case evKill:
			pk.kill(cfg.KillShard)
			// Every session on the dead machine logs out at the kill —
			// in-flight echoes censor there — and re-logs-in elsewhere at
			// the same instant: a reconnect storm of full session setups
			// against the survivors, in seat order.
			for _, st := range seats {
				if !st.alive || st.shard != cfg.KillShard {
					continue
				}
				logout(st, e.at)
				j, err := pk.pick()
				if err != nil {
					return nil, nil, err
				}
				login(st, j, e.at)
			}
		}
	}
	return plans, counts, nil
}
