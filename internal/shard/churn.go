package shard

import (
	"container/heap"

	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/simclock"
)

// Salts separating the fleet's churn, growth, and schedule random streams
// from every other consumer of Config.Seed.
const (
	fleetChurnSalt    = 0x636875726e // "churn"
	fleetGrowthSalt   = 0x67726f77   // "grow"
	fleetScheduleSalt = 0x7363686564 // "sched"
)

// Fleet event kinds, in tie-break priority order at an instant: a machine
// fails before anything else scheduled at the same microsecond reacts.
const (
	evKill = iota
	evDepart
	evArrive
)

// fleetEvent is one population change awaiting its turn on the fleet
// clock. Events order by (time, creation sequence), so the walk is fully
// deterministic.
type fleetEvent struct {
	at   simclock.Time
	seq  int
	kind int
	seat int // evDepart, and evArrive under a schedule or when deferred
	// gen is the stale-generation guard on evDepart; on a schedule's
	// evArrive it is the seat's episode index instead.
	gen int
	// planned is an evArrive's originally scheduled instant: equal to at
	// for a fresh arrival, earlier when an admission controller has
	// queued it — the difference is the user's login-queue wait.
	planned simclock.Time
}

type eventHeap []*fleetEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*fleetEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// seat is one logical user slot across its whole history: the session
// occupying it now, which shard that session lives on, and the slot's
// private churn stream. A replacement (or a failover re-login) is a new
// session in the same seat, so its stay draws from the same stream —
// which is what gives churn plans the prefix property across candidate
// populations. Under a schedule the seat instead carries its precompiled
// episode list: arrival times are fixed by the profile, and only the
// placement of each arrival is decided live.
type seat struct {
	id    int
	shard int
	idx   int // index of the current lifecycle in plans[shard]
	gen   int // bumped per login; stale departure events are skipped
	alive bool
	rng   *simclock.Rand // nil when churn is off
	// end is the current session's scheduled logout (0 = stays to the
	// end); a failover re-login carries it to the new machine, since a
	// displaced user's shift does not get longer for having moved.
	end simclock.Time
	// episodes are the seat's schedule-compiled sessions; epi indexes the
	// episode an evArrive event refers to.
	episodes []schedule.Session
}

// SchedulePlan compiles the fleet's schedule into its seats' episodes —
// the arrival and departure times the fleet will execute, before any
// placement decision. Experiments use it to report the offered load (the
// storm itself) alongside the measured latency. It returns nil when the
// configuration has no schedule.
func (c Config) SchedulePlan() ([]schedule.Session, error) {
	if c.Schedule == nil {
		return nil, nil
	}
	return schedule.Compile(*c.Schedule, c.Users, c.Base.Span,
		simclock.DeriveSeed(c.Seed, fleetScheduleSalt))
}

// fleetPlan is buildPlans' output: the per-shard lifecycle plans, the
// time-zero placement, each shard's scheduled degradation-tier changes
// (nil on an uncontrolled run), and the controllers' statistics.
type fleetPlan struct {
	plans  [][]server.Lifecycle
	counts []int
	tiers  [][]server.TierChange
	stats  ControlStats
}

// buildPlans walks the fleet's population dynamics in time order —
// initial placement, churn departures and their replacements, growth and
// schedule arrivals, the machine kill and its re-login storm — routing
// every arrival through the live picker (and, when Control is set, the
// admission gate), and emits one explicit lifecycle plan per shard for
// the server layer to execute. The walk is bookkeeping, not simulation:
// placement and control decisions depend only on occupancy counts (plus
// the probe cache), so the plans are deterministic and each shard's
// simulation still fans out independently across the farm.
//
// Under a schedule, every seat's episodes are compiled up front (their
// times are the profile's business), but each episode's arrival is placed
// live at its instant — so a 9 AM storm floods the picker exactly as it
// floods the machines, and a kill during the ramp forces the displaced
// users to re-login into the middle of the surge.
func buildPlans(cfg Config) (fleetPlan, error) {
	if err := cfg.validate(); err != nil {
		return fleetPlan{}, err
	}
	pk, err := newPicker(&cfg)
	if err != nil {
		return fleetPlan{}, err
	}
	span := simclock.Time(cfg.Base.Span)
	plans := make([][]server.Lifecycle, len(cfg.Machines))
	var seats []*seat

	var events eventHeap
	seq := 0
	push := func(at simclock.Time, kind, seatID, gen int, planned simclock.Time) {
		heap.Push(&events, &fleetEvent{at: at, seq: seq, kind: kind, seat: seatID, gen: gen, planned: planned})
		seq++
	}

	// The control surface: hooks see and steer the walk through the view.
	// A nil Control leaves every decision exactly as the uncontrolled
	// fleet makes it.
	hooks := cfg.Control
	var view *FleetView
	if hooks != nil {
		view = newFleetView(&cfg, pk)
	}
	// admitNow consults the admission hook for one arrival: true means
	// place it at now. A deferred arrival re-enters the heap and decides
	// afresh when its retry fires; a deferral past the span — or past
	// cutoff, the arrival's own episode logout — is a rejection (the
	// user's shift would end before they got in).
	admitNow := func(now, planned simclock.Time, seatID, epi int, cutoff simclock.Time) bool {
		if hooks == nil || hooks.Admit == nil {
			return true
		}
		d := hooks.Admit(now, planned, view)
		if d.Reject {
			view.stats.RejectedLogins++
			return false
		}
		if d.Defer <= 0 {
			view.recordAdmit(now, planned)
			return true
		}
		at := now.Add(d.Defer)
		if at >= span || (cutoff > 0 && at >= cutoff) {
			view.stats.RejectedLogins++
			return false
		}
		if now == planned {
			// Count each queued arrival once, at its first deferral.
			view.stats.DeferredLogins++
		}
		push(at, evArrive, seatID, epi, planned)
		return false
	}

	var meanStay simclock.Duration
	if cfg.ChurnRatePerSec > 0 {
		meanStay = simclock.Duration(1e6 / cfg.ChurnRatePerSec)
	}
	newSeat := func() *seat {
		st := &seat{id: len(seats), shard: -1}
		if meanStay > 0 {
			st.rng = simclock.NewRand(simclock.DeriveSeed(
				simclock.DeriveSeed(cfg.Seed, fleetChurnSalt), uint64(st.id)))
		}
		seats = append(seats, st)
		return st
	}
	// churnEnd draws the seat's next exponential stay; zero means the
	// session lives to the end of the span.
	churnEnd := func(st *seat, at simclock.Time) simclock.Time {
		if meanStay <= 0 {
			return 0
		}
		if end := at.Add(st.rng.ExpDuration(meanStay)); end < span {
			return end
		}
		return 0
	}
	login := func(st *seat, j int, at, end simclock.Time) {
		st.shard, st.idx, st.alive, st.end = j, len(plans[j]), true, end
		st.gen++
		// The fleet-global seat number rides along as the session's
		// random-stream identity, so a seat keeps its behavior wherever
		// churn and failover move it and the plan for N users stays a
		// prefix of the plan for N+1. (Unlike the single-server case,
		// fleet seat streams are global while a static fleet's streams
		// are per-shard indices, so a churned fleet is compared to its
		// static baseline by effect size, not common random numbers.)
		plans[j] = append(plans[j], server.Lifecycle{Login: at, Seat: st.id + 1})
		if end > 0 {
			push(end, evDepart, st.id, st.gen, 0)
		}
		if view != nil {
			view.curUsers++
			if view.curUsers > view.stats.PeakUsers {
				view.stats.PeakUsers = view.curUsers
			}
			if hooks.Placed != nil {
				hooks.Placed(at, view, j)
			}
		}
	}
	logout := func(st *seat, at simclock.Time) {
		plans[st.shard][st.idx].Logout = at
		st.alive = false
		pk.release(st.shard)
		if view != nil {
			view.curUsers--
			if hooks.Released != nil {
				hooks.Released(at, view, st.shard)
			}
		}
	}

	// The kill is pushed first so that, at its exact instant, the machine
	// fails before any same-instant departure or arrival is handled.
	if cfg.KillAt > 0 {
		push(simclock.Time(cfg.KillAt), evKill, -1, 0, 0)
	}
	if cfg.Schedule != nil {
		// Compile every seat's episodes from the fleet's schedule stream,
		// log the time-zero occupants in first (seat order, exactly how a
		// static placement deals them), then queue each later episode as
		// an arrival to be placed live when its time comes.
		sseed := simclock.DeriveSeed(cfg.Seed, fleetScheduleSalt)
		compiled, err := schedule.NewCompiled(*cfg.Schedule)
		if err != nil {
			return fleetPlan{}, err
		}
		for u := 0; u < cfg.Users; u++ {
			st := newSeat()
			st.episodes = compiled.SeatSessions(u, cfg.Users, cfg.Base.Span, sseed)
		}
		for _, st := range seats {
			if len(st.episodes) == 0 || st.episodes[0].Login != 0 {
				continue
			}
			// The overnight population is admission-controlled too: a
			// deferred time-zero occupant queues at the morning login
			// screen like any 9 AM arrival.
			if !admitNow(0, 0, st.id, 0, st.episodes[0].Logout) {
				continue
			}
			j, err := pk.pick(0)
			if err != nil {
				return fleetPlan{}, err
			}
			login(st, j, 0, st.episodes[0].Logout)
		}
		for _, st := range seats {
			for k, ep := range st.episodes {
				if ep.Login > 0 {
					push(ep.Login, evArrive, st.id, k, ep.Login)
				}
			}
		}
	} else {
		// Time-zero population, placed by the live policy one user at a
		// time. It predates the walk (these sessions were never
		// "arrivals"), so admission control does not apply.
		for u := 0; u < cfg.Users; u++ {
			j, err := pk.pick(0)
			if err != nil {
				return fleetPlan{}, err
			}
			st := newSeat()
			login(st, j, 0, churnEnd(st, 0))
		}
	}
	counts := append([]int(nil), pk.occ...)
	// Growth arrivals draw from their own stream, independent of the
	// population size, so a growing fleet series still shares common
	// random numbers across candidate populations.
	if cfg.GrowthPerSec > 0 {
		grng := simclock.NewRand(simclock.DeriveSeed(cfg.Seed, fleetGrowthSalt))
		gap := simclock.Duration(1e6 / cfg.GrowthPerSec)
		for at := simclock.Time(0).Add(grng.ExpDuration(gap)); at < span; at = at.Add(grng.ExpDuration(gap)) {
			push(at, evArrive, -1, 0, at)
		}
	}

	for events.Len() > 0 {
		e := heap.Pop(&events).(*fleetEvent)
		switch e.kind {
		case evDepart:
			st := seats[e.seat]
			if e.gen != st.gen || !st.alive {
				continue // relocated by a failover since this was scheduled
			}
			logout(st, e.at)
			if cfg.Schedule != nil {
				continue // the seat re-arrives on the profile's clock, or not at all
			}
			// The next shift's user takes the seat immediately, routed by
			// the policy against the fleet as it stands now — unless the
			// admission controller queues or turns them away.
			if !admitNow(e.at, e.at, st.id, 0, 0) {
				continue
			}
			j, err := pk.pick(e.at)
			if err != nil {
				return fleetPlan{}, err
			}
			login(st, j, e.at, churnEnd(st, e.at))
		case evArrive:
			if cfg.Schedule != nil {
				st := seats[e.seat]
				ep := st.episodes[e.gen]
				// Admission decides before any handover bookkeeping: a
				// queued or rejected arrival leaves the seat's pending
				// departure (still at its own gen) to fire normally.
				if !admitNow(e.at, e.planned, st.id, e.gen, ep.Logout) {
					continue
				}
				if st.alive {
					// A zero-gap handover: the seat's previous episode ends
					// at this very instant, and its departure event (pushed
					// later, so sequenced after this arrival) has not fired
					// yet.
					logout(st, e.at)
				}
				j, err := pk.pick(e.at)
				if err != nil {
					return fleetPlan{}, err
				}
				login(st, j, e.at, ep.Logout)
				continue
			}
			if e.seat >= 0 {
				// A queued churn replacement's retry: decide afresh, then
				// take the seat back up with a fresh stay draw.
				st := seats[e.seat]
				if !admitNow(e.at, e.planned, st.id, 0, 0) {
					continue
				}
				j, err := pk.pick(e.at)
				if err != nil {
					return fleetPlan{}, err
				}
				login(st, j, e.at, churnEnd(st, e.at))
				continue
			}
			if !admitNow(e.at, e.planned, -1, 0, 0) {
				continue
			}
			j, err := pk.pick(e.at)
			if err != nil {
				return fleetPlan{}, err
			}
			st := newSeat()
			login(st, j, e.at, churnEnd(st, e.at))
		case evKill:
			pk.kill(cfg.KillShard)
			// Every session on the dead machine logs out at the kill —
			// in-flight echoes censor there — and re-logs-in elsewhere at
			// the same instant: a reconnect storm of full session setups
			// against the survivors, in seat order. Under a schedule the
			// displaced session keeps its episode's logout; under churn the
			// seat draws a fresh stay, as it always has. Re-logins bypass
			// admission control — a reconnect is not a new admission.
			for _, st := range seats {
				if !st.alive || st.shard != cfg.KillShard {
					continue
				}
				end := st.end
				logout(st, e.at)
				j, err := pk.pick(e.at)
				if err != nil {
					return fleetPlan{}, err
				}
				if cfg.Schedule != nil {
					login(st, j, e.at, end)
				} else {
					login(st, j, e.at, churnEnd(st, e.at))
				}
			}
		}
	}
	out := fleetPlan{plans: plans, counts: counts}
	if view != nil {
		out.tiers = view.tiers
		out.stats = view.finalize()
	}
	return out, nil
}
