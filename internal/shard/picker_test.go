package shard

import (
	"testing"

	"thinbench/internal/server"
	"thinbench/internal/simclock"
)

// pickerConfig is a small memaware fleet for white-box picker tests.
func pickerConfig(machines []Machine) *Config {
	cfg := &Config{
		Base:     server.DefaultConfig(),
		Machines: machines,
		Users:    1,
		Policy:   PolicyMemAware,
	}
	cfg.Base.Span = simclock.Second
	return cfg
}

// TestPickerReleaseAfterFailover is the occupancy-underflow regression:
// a departure whose event was scheduled before a failover relocated its
// seat reaches release with the dead shard's index after that shard's
// seats were already freed. The unguarded decrement drove occ negative —
// phantom free capacity that pulled every later memaware placement toward
// the dead machine's slot accounting.
func TestPickerReleaseAfterFailover(t *testing.T) {
	pk, err := newPicker(pickerConfig(DefaultFleet(3)))
	if err != nil {
		t.Fatal(err)
	}
	// A populated fleet: two sessions land somewhere, one on shard 1.
	for i := 0; i < 3; i++ {
		if _, err := pk.pick(0); err != nil {
			t.Fatal(err)
		}
	}
	occ1 := pk.occ[1]

	// The failover path: shard 1 dies, its sessions log out (releasing
	// their seats) and relocate. The seats are now free.
	pk.kill(1)
	for i := 0; i < occ1; i++ {
		pk.release(1)
	}
	if pk.occ[1] != 0 {
		t.Fatalf("occ[1] = %d after failover logout, want 0", pk.occ[1])
	}

	// The stale departure: a logout event scheduled pre-kill fires for a
	// seat the failover already released. It must be a no-op.
	pk.release(1)
	if pk.occ[1] != 0 {
		t.Fatalf("occ[1] = %d after stale release, want 0 (underflow regression)", pk.occ[1])
	}

	// With occ clamped at zero, later placements rank the dead shard by
	// its true (zero) population — and never pick it at all.
	for i := 0; i < 4; i++ {
		j, err := pk.pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if j == 1 {
			t.Fatalf("pick %d landed on dead shard 1", i)
		}
	}
}

// TestPickerReleaseBounds exercises the out-of-range guards directly.
func TestPickerReleaseBounds(t *testing.T) {
	pk, err := newPicker(pickerConfig(DefaultFleet(2)))
	if err != nil {
		t.Fatal(err)
	}
	pk.release(-1) // must not panic
	pk.release(2)  // must not panic
	pk.release(0)  // empty shard: must stay at zero
	if pk.occ[0] != 0 || pk.occ[1] != 0 {
		t.Fatalf("occ = %v after no-op releases, want zeros", pk.occ)
	}
}

// TestPickerStandbyAndDrain covers the control-plane placement states:
// a standby machine takes no arrivals until powered on, and a draining
// machine is closed to new placements while its sessions remain.
func TestPickerStandbyAndDrain(t *testing.T) {
	machines := DefaultFleet(3)
	machines[2].Standby = true
	pk, err := newPicker(pickerConfig(machines))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		j, err := pk.pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if j == 2 {
			t.Fatal("placed a session on a standby machine")
		}
	}
	// Powered on at t=5s: placeable only from that instant.
	on := simclock.Time(5 * simclock.Second)
	pk.availAt[2] = on
	if pk.placeable(2, on.Add(-1)) {
		t.Fatal("standby machine placeable before its power-on instant")
	}
	if !pk.placeable(2, on) {
		t.Fatal("standby machine not placeable at its power-on instant")
	}
	// Draining closes a machine without touching its occupancy.
	pk.draining[0] = true
	occ0 := pk.occ[0]
	for i := 0; i < 4; i++ {
		j, err := pk.pick(on)
		if err != nil {
			t.Fatal(err)
		}
		if j == 0 {
			t.Fatal("placed a session on a draining machine")
		}
	}
	if pk.occ[0] != occ0 {
		t.Fatalf("draining changed occ[0]: %d -> %d", occ0, pk.occ[0])
	}
}
