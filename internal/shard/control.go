package shard

import (
	"thinbench/internal/server"
	"thinbench/internal/simclock"
)

// This file is the shard layer's control surface: the hook points a live
// controller (internal/control) plugs into the deterministic population
// walk, and the fleet view it steers through. The hooks run inside
// buildPlans — bookkeeping, not simulation — so every control decision
// depends only on occupancy counts and cached probe estimates, and a
// controlled fleet stays bit-identical at any worker count exactly like
// an uncontrolled one.

// AdmitDecision is a controller's verdict on one arrival. The zero value
// admits it immediately.
type AdmitDecision struct {
	// Defer, when positive, queues the arrival: it re-presents to the
	// controller that much later (each retry decides afresh, so a queue
	// is a sequence of deferrals). An arrival deferred past the span —
	// or past its own episode's logout — is rejected instead: the user's
	// shift ended at the login screen.
	Defer simclock.Duration
	// Reject drops the arrival outright; the seat never logs in.
	Reject bool
}

// ControlHooks are the live controller hooks the population walk
// consults. Any field may be nil; a nil hook is the uncontrolled
// behavior. Hooks run single-threaded in event order and may steer the
// fleet through the FleetView they receive (set degradation tiers, power
// standby machines on, drain machines) — they must be deterministic
// functions of that view, never of wall clock or external state.
type ControlHooks struct {
	// Admit is consulted before every mid-run arrival is placed: schedule
	// episodes (the time-zero overnight population included), churn
	// replacements, and growth arrivals. planned is the arrival's
	// originally scheduled instant; now is the decision time, later than
	// planned when the arrival has been queued — so now-planned is the
	// queueing delay the user has already absorbed. Failover re-logins
	// bypass Admit: a reconnect of a user already admitted is not a new
	// admission.
	Admit func(now, planned simclock.Time, v *FleetView) AdmitDecision
	// Placed and Released fire after every occupancy change with the
	// shard that changed — the feedback signal a shedder or autoscaler
	// reacts to. Occupancy only changes at arrivals and departures, so
	// these two hooks see every point where an estimate can move.
	Placed   func(now simclock.Time, v *FleetView, j int)
	Released func(now simclock.Time, v *FleetView, j int)
}

// ControlStats is the walk's record of what the controllers did,
// surfaced on FleetResult for controlled runs.
type ControlStats struct {
	// PeakUsers is the largest concurrently admitted population across
	// the whole fleet — the walk sees every login and logout instant, so
	// this is exact, unlike a sum of per-shard peaks.
	PeakUsers int
	// DeferredLogins counts arrivals that were queued at least once;
	// RejectedLogins counts arrivals that never got in (explicit
	// rejections plus deferrals past their deadline).
	DeferredLogins int
	RejectedLogins int
	// Queue-wait statistics over admitted-late arrivals, in milliseconds.
	QueueWaitMeanMs float64
	QueueWaitMaxMs  float64
	// TierChanges counts shedder tier transitions; Activations and
	// Drains count autoscaler machine power-ons and closures.
	TierChanges int
	Activations int
	Drains      int
}

// FleetView is the live fleet state a controller sees and steers:
// per-shard occupancy and liveness, the shared marginal-p95 estimator,
// and the mutators that express control actions (degradation tiers,
// standby power-on, draining). It is valid only during the plan walk
// that created it.
type FleetView struct {
	cfg *Config
	pk  *picker
	// tiers accumulates each shard's scheduled degradation changes; cur
	// mirrors the latest tier per shard so hysteresis reads its own
	// state instead of replaying the plan.
	tiers [][]server.TierChange
	cur   []int
	// memo caches §5.1.1 memory divisions (-1 = not yet computed).
	memo []int

	stats    ControlStats
	curUsers int
	waitN    int
	waitSum  float64
}

func newFleetView(cfg *Config, pk *picker) *FleetView {
	m := len(cfg.Machines)
	memo := make([]int, m)
	for j := range memo {
		memo[j] = -1
	}
	return &FleetView{
		cfg:   cfg,
		pk:    pk,
		tiers: make([][]server.TierChange, m),
		cur:   make([]int, m),
		memo:  memo,
	}
}

// Machines reports the fleet size, standby spares included.
func (v *FleetView) Machines() int { return len(v.cfg.Machines) }

// Occupancy reports shard j's current session count.
func (v *FleetView) Occupancy(j int) int { return v.pk.occ[j] }

// TotalOccupancy reports the fleet's current concurrent population.
func (v *FleetView) TotalOccupancy() int { return v.curUsers }

// Alive reports whether shard j has not been killed.
func (v *FleetView) Alive(j int) bool { return !v.pk.dead[j] }

// Placeable reports whether shard j can take an arrival at now: alive,
// powered on, and not draining.
func (v *FleetView) Placeable(j int, now simclock.Time) bool { return v.pk.placeable(j, now) }

// Draining reports whether a controller has closed shard j to arrivals.
func (v *FleetView) Draining(j int) bool { return v.pk.draining[j] }

// MemoryCapacity is shard j's §5.1.1 memory division — how many sessions
// fit in physical memory behind the system baseline — the cheap static
// capacity an autoscaler provisions against.
func (v *FleetView) MemoryCapacity(j int) int {
	if v.memo[j] < 0 {
		v.memo[j] = v.cfg.memoryCapacity(j)
	}
	return v.memo[j]
}

// MarginalP95 estimates shard j's p95 echo latency if it took one more
// session — the lataware probe at population occ+1, cached per
// (shard, population).
func (v *FleetView) MarginalP95(j int) (float64, error) {
	return v.pk.prober().p95(j, v.pk.occ[j]+1)
}

// ShardP95 estimates shard j's p95 echo latency at its current
// population (0 when empty — an idle machine has no latency).
func (v *FleetView) ShardP95(j int) (float64, error) {
	if v.pk.occ[j] == 0 {
		return 0, nil
	}
	return v.pk.prober().p95(j, v.pk.occ[j])
}

// BestMarginalP95 is the lowest marginal-p95 estimate over every shard
// placeable at now — the latency cost of admitting the next arrival,
// were it placed greedily. ok is false when no machine can take it.
func (v *FleetView) BestMarginalP95(now simclock.Time) (best float64, ok bool, err error) {
	for j := 0; j < len(v.cfg.Machines); j++ {
		if !v.pk.placeable(j, now) {
			continue
		}
		p, err := v.MarginalP95(j)
		if err != nil {
			return 0, false, err
		}
		if !ok || p < best {
			best, ok = p, true
		}
	}
	return best, ok, nil
}

// Tier reports shard j's current degradation tier (0 = full quality).
func (v *FleetView) Tier(j int) int { return v.cur[j] }

// SetTier schedules shard j onto degradation tier t at now, machine-wide
// (every session on it, current and future — see server.DegradeTiers).
// Setting the tier it already runs at is a no-op.
func (v *FleetView) SetTier(now simclock.Time, j, t int) {
	if t < 0 {
		t = 0
	}
	if max := len(server.DegradeTiers) - 1; t > max {
		t = max
	}
	if v.cur[j] == t {
		return
	}
	v.cur[j] = t
	v.tiers[j] = append(v.tiers[j], server.TierChange{At: now, Tier: t})
	v.stats.TierChanges++
}

// PowerOn brings standby machine j online at the given instant (now plus
// the controller's provisioning delay). It reports whether the machine
// was in fact powered off; a machine already on (or already scheduled to
// come on) is left alone.
func (v *FleetView) PowerOn(j int, at simclock.Time) bool {
	if v.pk.availAt[j] != farFuture || v.pk.dead[j] {
		return false
	}
	v.pk.availAt[j] = at
	v.stats.Activations++
	return true
}

// Drain closes machine j to new arrivals; sessions already on it stay
// until they depart. It reports whether the machine was open.
func (v *FleetView) Drain(j int) bool {
	if v.pk.draining[j] {
		return false
	}
	v.pk.draining[j] = true
	v.stats.Drains++
	return true
}

// Undrain reopens a draining machine to arrivals.
func (v *FleetView) Undrain(j int) { v.pk.draining[j] = false }

// recordAdmit folds an admitted arrival's queueing delay into the wait
// statistics (no-op for arrivals admitted on schedule).
func (v *FleetView) recordAdmit(now, planned simclock.Time) {
	if now <= planned {
		return
	}
	ms := now.Sub(planned).Milliseconds()
	v.waitN++
	v.waitSum += ms
	if ms > v.stats.QueueWaitMaxMs {
		v.stats.QueueWaitMaxMs = ms
	}
}

// finalize closes out the walk's accumulated statistics.
func (v *FleetView) finalize() ControlStats {
	if v.waitN > 0 {
		v.stats.QueueWaitMeanMs = v.waitSum / float64(v.waitN)
	}
	return v.stats
}
