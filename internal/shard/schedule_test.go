package shard_test

import (
	"reflect"
	"strings"
	"testing"

	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

// stormCfg is the canonical storm fixture: the heterogeneous fleet under
// the OfficeDay profile, long enough for the 9 AM ramp to land and drain.
func stormCfg(users int) shard.Config {
	base := server.DefaultConfig()
	base.Span = 6 * simclock.Second
	day := schedule.OfficeDay()
	return shard.Config{
		Base:     base,
		Machines: shard.DefaultFleet(3),
		Users:    users,
		Policy:   shard.PolicyRoundRobin,
		Schedule: &day,
		Seed:     1999,
	}
}

func TestScheduleFleetRoutesEpisodes(t *testing.T) {
	fr := mustRun(t, stormCfg(15))
	// OfficeDay starts 15% occupied: round(0.15*15) = 2 seats at open.
	if got := sum(fr.Placement); got != 2 {
		t.Fatalf("time-zero placement %v holds %d sessions, want the 2 overnight seats", fr.Placement, got)
	}
	if fr.Arrivals < 13 {
		t.Fatalf("only %d arrivals: the other 13 seats never showed up", fr.Arrivals)
	}
	if fr.Departures == 0 {
		t.Fatal("an office day with lognormal stays produced no departures")
	}
	if fr.LoginMaxMs <= 0 {
		t.Fatal("storm arrivals reported no login latency")
	}
	total := 0
	for _, sr := range fr.Shards {
		total += sr.Arrivals
	}
	if total != fr.Arrivals {
		t.Fatalf("per-shard arrivals sum %d != fleet %d", total, fr.Arrivals)
	}
}

func TestScheduleFleetDeterministicAndWorkerInvariant(t *testing.T) {
	cfg := stormCfg(12)
	cfg.KillAt, cfg.KillShard = 2*simclock.Second, 2
	ref := mustRun(t, cfg)
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Workers = workers
		if got := mustRun(t, c); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from the reference schedule run", workers)
		}
	}
}

// TestStormPeaksDuringRamp is the acceptance shape: the fleet p95
// timeline under OfficeDay peaks while the 9 AM storm's logins are
// landing, not at some arbitrary later point.
func TestStormPeaksDuringRamp(t *testing.T) {
	fr := mustRun(t, stormCfg(15))
	peak := 0
	for i, v := range fr.P95TimelineMs {
		if v > fr.P95TimelineMs[peak] {
			peak = i
		}
	}
	// The storm window ends at 0.19 of the span; its logins (handshake,
	// page-ins, process creation on loaded CPUs) land within ~2 slices.
	rampEnd := int(0.19*float64(stormCfg(15).Base.Span)/float64(server.TimelineSlice)) + 2
	if peak < 1 || peak > rampEnd {
		t.Fatalf("fleet p95 peaked in slice %d (%v), want within the ramp slices [1, %d]",
			peak, fr.P95TimelineMs, rampEnd)
	}
}

// TestKillDuringStormRecoversSlowerThanFlat is the acceptance ordering: a
// machine kill in the middle of the 9 AM ramp — displaced users re-login
// into the surge — takes longer to return to the pre-kill baseline than
// the same kill under flat (memoryless churn) load at equal population.
func TestKillDuringStormRecoversSlowerThanFlat(t *testing.T) {
	storm := stormCfg(15)
	storm.KillAt, storm.KillShard = 2*simclock.Second, 2
	flat := storm
	fp := schedule.Flat(0.15)
	flat.Schedule = &fp

	sr := mustRun(t, storm)
	fr := mustRun(t, flat)
	if fr.RecoveryMs < 0 {
		t.Fatalf("flat-load kill never recovered (pre %v peak %v timeline %v)",
			fr.PreKillP95Ms, fr.PeakKillP95Ms, fr.P95TimelineMs)
	}
	stormRec := sr.RecoveryMs
	if stormRec < 0 {
		// Never recovered within the run: slower than any finite recovery.
		return
	}
	if stormRec < fr.RecoveryMs {
		t.Fatalf("kill during the storm recovered in %.0f ms, faster than flat load's %.0f ms",
			stormRec, fr.RecoveryMs)
	}
}

// TestScheduleFlatFleetMatchesChurnFleetShape: a Flat-profile fleet pays
// the same kind of load as the churn process it generalizes — arrivals
// and departures happen and every one routes through the picker. (The two
// draw from different fleet-level streams, so the comparison is
// structural, not bit-level; the bit-level proof lives in the server
// property test.)
func TestScheduleFlatFleetMatchesChurnFleetShape(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 9)
	fp := schedule.Flat(0.5)
	cfg.Schedule = &fp
	fr := mustRun(t, cfg)
	if sum(fr.Placement) != 9 {
		t.Fatalf("flat profile placed %v at open, want all 9 seats", fr.Placement)
	}
	if fr.Arrivals == 0 || fr.Departures == 0 {
		t.Fatalf("flat profile at 0.5/s produced no turnover: %d arrivals, %d departures",
			fr.Arrivals, fr.Departures)
	}
	if fr.Arrivals != fr.Departures {
		t.Fatalf("immediate handover must pair every departure with an arrival: %d vs %d",
			fr.Arrivals, fr.Departures)
	}
}

func TestScheduleValidation(t *testing.T) {
	day := schedule.OfficeDay()
	cfg := fleetCfg(shard.PolicyRoundRobin, 6)
	cfg.Schedule = &day
	cfg.ChurnRatePerSec = 0.2
	if _, err := shard.Run(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("schedule+churn accepted: %v", err)
	}
	cfg.ChurnRatePerSec = 0
	cfg.GrowthPerSec = 1
	if _, err := shard.Run(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("schedule+growth accepted: %v", err)
	}
	cfg.GrowthPerSec = 0
	bad := day
	bad.Timeline[0].Rate = -1
	bad2 := bad
	cfg.Schedule = &bad2
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("malformed profile accepted by the fleet")
	}
}

// TestScheduleCapacityBisection: FleetCapacity under a profile uses the
// same bisection as churn — the answer is positive on the healthy fleet
// and every probe pays the storm's login load.
func TestScheduleFleetCapacity(t *testing.T) {
	cfg := stormCfg(1)
	cr, err := shard.FleetCapacity(cfg, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Users < 1 || cr.Users > 30 {
		t.Fatalf("schedule fleet capacity %d outside (0, 30]", cr.Users)
	}
	if cr.Users < 30 && cr.Over == nil {
		t.Fatal("capacity search returned no over-budget probe")
	}
}
