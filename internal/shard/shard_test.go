package shard_test

import (
	"reflect"
	"testing"

	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

// fleetCfg is the test fleet: the canonical heterogeneous three-machine
// fleet (big / base / weak) on short spans.
func fleetCfg(policy string, users int) shard.Config {
	base := server.DefaultConfig()
	base.Span = 3 * simclock.Second
	return shard.Config{
		Base:      base,
		Machines:  shard.DefaultFleet(3),
		Users:     users,
		Policy:    policy,
		ProbeSpan: simclock.Second,
		Seed:      42,
	}
}

func mustRun(t *testing.T, cfg shard.Config) shard.FleetResult {
	t.Helper()
	res, err := shard.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sum(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

func TestPlaceRoundRobin(t *testing.T) {
	counts, err := shard.Place(fleetCfg(shard.PolicyRoundRobin, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, []int{3, 2, 2}) {
		t.Fatalf("roundrobin placed %v, want [3 2 2]", counts)
	}
	// The empty policy defaults to roundrobin.
	def, err := shard.Place(fleetCfg("", 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, counts) {
		t.Fatalf("default policy placed %v, want roundrobin's %v", def, counts)
	}
}

func TestPlaceMemAwareFollowsMemory(t *testing.T) {
	// DefaultFleet memory divisions: 128 MB ~ 31 sessions, 64 MB ~ 13,
	// 48 MB ~ 8. Greedy bin-packing must load machines in that order.
	cfg := fleetCfg(shard.PolicyMemAware, 26)
	counts, err := shard.Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != cfg.Users {
		t.Fatalf("placement %v loses users, want total %d", counts, cfg.Users)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Fatalf("memaware ignored memory sizes: %v for capacities ~[31 13 8]", counts)
	}
	// Under total memory capacity, no shard is pushed past its division.
	if counts[2] > 8 {
		t.Fatalf("memaware overcommitted the 48 MB machine: %v", counts)
	}
}

func TestPlaceLatAwarePrefersFastMachine(t *testing.T) {
	cfg := fleetCfg(shard.PolicyLatAware, 12)
	counts, err := shard.Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != cfg.Users {
		t.Fatalf("placement %v loses users, want total %d", counts, cfg.Users)
	}
	if counts[0] <= counts[2] {
		t.Fatalf("lataware loaded the 0.6x machine (%d users) at least as much as the 1.5x machine (%d)",
			counts[2], counts[0])
	}
}

func TestPlaceRejectsBadConfigs(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Users = 0
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("empty population accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Machines = nil
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("machineless fleet accepted")
	}
	cfg = fleetCfg("hash", 4)
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Machines[1].MemoryMB = -64
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("negative hardware override accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Base.Protocol = "telnet"
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("unknown base protocol accepted by Run")
	}
}

// TestFleetWorkerInvariant is the shard layer's determinism proof: whole
// machines fan out across the farm with index-derived seeds, so a fleet
// result must be deeply identical at any worker count, for every policy.
func TestFleetWorkerInvariant(t *testing.T) {
	for _, policy := range shard.Policies() {
		cfg := fleetCfg(policy, 10)
		cfg.Base.Span = 2 * simclock.Second
		cfg.Workers = 1
		ref := mustRun(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			if got := mustRun(t, cfg); !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: workers=%d diverged from sequential fleet:\n%+v\n%+v",
					policy, workers, got, ref)
			}
		}
	}
}

// TestFleetP95MonotoneInUsers: greedy placement has the prefix property
// and every shard keeps its index-derived seed, so growing populations
// share common random numbers and the fleet p95 series must degrade, never
// improve, under every policy.
func TestFleetP95MonotoneInUsers(t *testing.T) {
	for _, policy := range shard.Policies() {
		var prev float64
		for i, n := range []int{4, 10, 16, 22, 28} {
			res := mustRun(t, fleetCfg(policy, n))
			if res.Users != n || sum(res.Placement) != n {
				t.Fatalf("%s: fleet result placed %v for %d users", policy, res.Placement, n)
			}
			if i > 0 && res.EchoP95Ms+0.01 < prev {
				t.Fatalf("%s: fleet p95 improved with more users: %d users %.2fms after %.2fms",
					policy, n, res.EchoP95Ms, prev)
			}
			prev = res.EchoP95Ms
		}
	}
}

// TestLatAwareNoWorseThanRoundRobin is the point of measurement-driven
// placement: on a heterogeneous fleet, blind round-robin marches the weak
// machine into paging while lataware routes around it, so for the same
// total population the lataware fleet p95 cannot be worse.
func TestLatAwareNoWorseThanRoundRobin(t *testing.T) {
	for _, n := range []int{18, 30} {
		rr := mustRun(t, fleetCfg(shard.PolicyRoundRobin, n))
		lat := mustRun(t, fleetCfg(shard.PolicyLatAware, n))
		if lat.EchoP95Ms > rr.EchoP95Ms {
			t.Fatalf("%d users: lataware fleet p95 %.2fms worse than roundrobin %.2fms (placements %v vs %v)",
				n, lat.EchoP95Ms, rr.EchoP95Ms, lat.Placement, rr.Placement)
		}
	}
	// At 30 users round-robin puts 10 sessions on the 48 MB machine
	// (§5.1.1 division ~8), so the gap should be dramatic, not a tie.
	rr := mustRun(t, fleetCfg(shard.PolicyRoundRobin, 30))
	lat := mustRun(t, fleetCfg(shard.PolicyLatAware, 30))
	if lat.EchoP95Ms >= rr.EchoP95Ms/2 {
		t.Fatalf("lataware p95 %.2fms not decisively better than roundrobin %.2fms under overload",
			lat.EchoP95Ms, rr.EchoP95Ms)
	}
}

// TestOverloadedFleetP95NotFloored: the bucketing must be sized to the
// measurement window, so that a deeply overloaded fleet's censored
// samples (ages up to span plus drain) land in real buckets instead of
// clamping — otherwise fleet p95 would silently floor at the histogram
// edge exactly when overload is worst.
func TestOverloadedFleetP95NotFloored(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 30) // 10 sessions on the ~8-session 48 MB machine
	cfg.Base.Span = 10 * simclock.Second
	res := mustRun(t, cfg)
	worst := res.Shards[2]
	if !worst.Paging || worst.Censored == 0 {
		t.Fatalf("weak shard not overloaded as intended: %+v", worst)
	}
	if res.Clamped != 0 {
		t.Fatalf("fleet histogram clamped %d samples on a span-sized bucketing", res.Clamped)
	}
	if res.EchoP95Ms <= float64(shard.HistBuckets)*shard.HistBucketMs {
		t.Fatalf("overloaded fleet p95 %.0fms at or under the minimum histogram range — still floored", res.EchoP95Ms)
	}
}

// TestEmptyShardContributesNothing: a shard assigned zero users must not
// be simulated at all — no invented clamped-up user — and the fleet
// summary must equal the populated shards' alone.
func TestEmptyShardContributesNothing(t *testing.T) {
	res := mustRun(t, fleetCfg(shard.PolicyRoundRobin, 1))
	if !reflect.DeepEqual(res.Placement, []int{1, 0, 0}) {
		t.Fatalf("placement %v, want [1 0 0]", res.Placement)
	}
	for _, sr := range res.Shards[1:] {
		if sr.Users != 0 || sr.Interactions != 0 || sr.EchoSamples != 0 {
			t.Fatalf("empty shard %d simulated anyway: %+v", sr.Shard, sr)
		}
	}
	if res.Interactions != res.Shards[0].Interactions {
		t.Fatalf("fleet interactions %d != sole shard's %d", res.Interactions, res.Shards[0].Interactions)
	}
	if res.EchoP95Ms < res.Shards[0].EchoP95Ms || res.EchoP95Ms > res.Shards[0].EchoP95Ms+shard.HistBucketMs {
		t.Fatalf("fleet p95 %.2fms not within one bucket above sole shard's %.2fms",
			res.EchoP95Ms, res.Shards[0].EchoP95Ms)
	}
}

// TestFleetCapacity: the fleet-level sizing answer must sit within the
// budget at N and violate it at N+1 — and the over-budget probe must
// travel with the answer so the violation is diagnosable — and
// measurement-driven placement must never size a heterogeneous fleet
// below blind round-robin.
func TestFleetCapacity(t *testing.T) {
	mk := func(policy string) shard.Config {
		cfg := fleetCfg(policy, 1)
		cfg.Base.Protocol = "model" // frugal probes for a wide bisection
		cfg.Base.Span = 2 * simclock.Second
		return cfg
	}
	const maxUsers = 40
	caps := map[string]int{}
	for _, policy := range []string{shard.PolicyRoundRobin, shard.PolicyLatAware} {
		cap, err := shard.FleetCapacity(mk(policy), maxUsers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cap.Users < 1 {
			t.Fatalf("%s: fleet of three machines admits nobody", policy)
		}
		if cap.At.Users != cap.Users {
			t.Fatalf("%s: returned result is for %d users, capacity %d", policy, cap.At.Users, cap.Users)
		}
		if cap.At.EchoP95Ms > 150 || cap.At.Censored >= cap.At.Interactions {
			t.Fatalf("%s: result at capacity already violates the budget: %+v", policy, cap.At)
		}
		if cap.Users < maxUsers {
			if cap.Over == nil {
				t.Fatalf("%s: capacity %d below maxUsers but no over-budget probe surfaced", policy, cap.Users)
			}
			if cap.Over.Users != cap.Users+1 {
				t.Fatalf("%s: over-budget probe ran %d users, want %d", policy, cap.Over.Users, cap.Users+1)
			}
			if cap.Over.EchoP95Ms <= 150 && cap.Over.Censored < cap.Over.Interactions {
				t.Fatalf("%s: capacity %d but %d users still within budget (p95 %.2fms)",
					policy, cap.Users, cap.Users+1, cap.Over.EchoP95Ms)
			}
		}
		caps[policy] = cap.Users
	}
	if caps[shard.PolicyLatAware] < caps[shard.PolicyRoundRobin] {
		t.Fatalf("lataware capacity %d below roundrobin %d on a heterogeneous fleet",
			caps[shard.PolicyLatAware], caps[shard.PolicyRoundRobin])
	}
}

// TestFleetCapacityAllCensoredDiagnosable: a fleet whose every probe
// interaction is censored must report capacity 0 with the failing probe
// attached, its Censored count equal to its Interactions — the
// explicit "nothing ever completed" diagnosis, not a bare zero.
func TestFleetCapacityAllCensoredDiagnosable(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 1)
	cfg.Base.Protocol = "model"
	cfg.Base.Span = 2 * simclock.Second
	// A link so slow no echo ever returns within the window.
	cfg.Base.Link.RateMbps = 0.001
	cap, err := shard.FleetCapacity(cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Users != 0 {
		t.Fatalf("unreachable fleet reports capacity %d", cap.Users)
	}
	if cap.Over == nil {
		t.Fatal("capacity 0 without the failing probe attached")
	}
	if cap.Over.Interactions == 0 || cap.Over.Censored < cap.Over.Interactions {
		t.Fatalf("failing probe not diagnosably all-censored: %d censored of %d interactions",
			cap.Over.Censored, cap.Over.Interactions)
	}
}

// churnCfg is the dynamic-fleet test configuration: the canonical
// heterogeneous fleet under per-session turnover.
func churnCfg(policy string, users int, rate float64) shard.Config {
	cfg := fleetCfg(policy, users)
	cfg.Base.Span = 4 * simclock.Second
	cfg.ChurnRatePerSec = rate
	return cfg
}

// TestFleetChurnZeroRateIsStatic: a fleet with no churn, growth, or kill
// must take the static one-shot path and reproduce the pre-refactor
// results exactly.
func TestFleetChurnZeroRateIsStatic(t *testing.T) {
	static := mustRun(t, fleetCfg(shard.PolicyMemAware, 10))
	zero := fleetCfg(shard.PolicyMemAware, 10)
	zero.ChurnRatePerSec = 0
	if got := mustRun(t, zero); !reflect.DeepEqual(got, static) {
		t.Fatalf("zero-rate fleet churn diverged from static run:\n%+v\n%+v", got, static)
	}
}

// TestFleetChurnRoutesReplacements: churn must produce fleet-wide
// arrivals and departures, keep every lifecycle on some shard, and stay
// deterministic.
func TestFleetChurnRoutesReplacements(t *testing.T) {
	for _, policy := range shard.Policies() {
		cfg := churnCfg(policy, 12, 0.5)
		a := mustRun(t, cfg)
		if a.Arrivals == 0 || a.Departures == 0 {
			t.Fatalf("%s: 0.5/s churn over 4s produced no turnover: %+v", policy, a)
		}
		if sum(a.Placement) != cfg.Users {
			t.Fatalf("%s: time-zero placement %v loses users", policy, a.Placement)
		}
		if b := mustRun(t, cfg); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: identical churn configs diverged", policy)
		}
	}
}

// TestFleetGrowthRampsPopulation: a growth stream must raise the fleet's
// peak concurrent population above the initial placement.
func TestFleetGrowthRampsPopulation(t *testing.T) {
	cfg := fleetCfg(shard.PolicyMemAware, 6)
	cfg.Base.Span = 4 * simclock.Second
	cfg.GrowthPerSec = 2
	res := mustRun(t, cfg)
	peak := 0
	for _, sr := range res.Shards {
		peak += sr.PeakUsers
	}
	if res.Arrivals < 4 {
		t.Fatalf("2/s growth over 4s produced only %d arrivals", res.Arrivals)
	}
	if peak <= cfg.Users {
		t.Fatalf("fleet peak %d not above initial %d under growth", peak, cfg.Users)
	}
}

// failCfg is the failover scenario the acceptance criteria name: the
// heterogeneous DefaultFleet, the weak machine killed mid-span, its users
// re-logging in through the live policy.
func failCfg(policy string) shard.Config {
	cfg := fleetCfg(policy, 22)
	cfg.Base.Span = 8 * simclock.Second
	cfg.KillShard = 2
	cfg.KillAt = 4 * simclock.Second
	return cfg
}

// TestFailoverExcursionAndRecovery is the failover contract: killing a
// machine mid-span must show up as a positive fleet p95 excursion at the
// kill, the fleet must recover (post-recovery slice p95 back within
// tolerance of the pre-kill baseline) under lataware placement, and
// measurement-driven re-placement must recover no slower than blind
// round-robin on the heterogeneous fleet.
func TestFailoverExcursionAndRecovery(t *testing.T) {
	results := map[string]shard.FleetResult{}
	for _, policy := range []string{shard.PolicyRoundRobin, shard.PolicyLatAware} {
		res := mustRun(t, failCfg(policy))
		if res.KilledShard != 2 || !res.Shards[2].Killed {
			t.Fatalf("%s: killed shard not marked: %+v", policy, res.KilledShard)
		}
		if res.Shards[2].Departures != res.Placement[2] {
			t.Fatalf("%s: kill logged out %d of the weak machine's %d users",
				policy, res.Shards[2].Departures, res.Placement[2])
		}
		if res.Arrivals < res.Placement[2] {
			t.Fatalf("%s: only %d re-logins for %d displaced users", policy, res.Arrivals, res.Placement[2])
		}
		if res.PeakKillP95Ms <= res.PreKillP95Ms {
			t.Fatalf("%s: no p95 excursion at the kill: peak %.1fms vs pre %.1fms",
				policy, res.PeakKillP95Ms, res.PreKillP95Ms)
		}
		results[policy] = res
	}
	lat := results[shard.PolicyLatAware]
	if lat.RecoveryMs < 0 {
		t.Fatalf("lataware fleet never recovered: timeline %v (pre %.1fms)",
			lat.P95TimelineMs, lat.PreKillP95Ms)
	}
	rr := results[shard.PolicyRoundRobin]
	rrRecovery := rr.RecoveryMs
	if rrRecovery < 0 {
		// Round-robin never recovering within the run counts as slower
		// than any measured lataware recovery.
		rrRecovery = float64((rr.Shards[0].Users + 1) * 1e9)
	}
	if lat.RecoveryMs > rrRecovery {
		t.Fatalf("lataware recovery %.0fms slower than roundrobin %.0fms",
			lat.RecoveryMs, rrRecovery)
	}
}

// TestFleetChurnCapacity: capacity under churn can never exceed static
// capacity — every replacement login costs setup bytes and page-ins —
// and at rate zero the two searches are the same search.
func TestFleetChurnCapacity(t *testing.T) {
	mk := func(rate float64) shard.Config {
		cfg := fleetCfg(shard.PolicyMemAware, 1)
		cfg.Base.Protocol = "model"
		cfg.Base.Span = 3 * simclock.Second
		cfg.ChurnRatePerSec = rate
		return cfg
	}
	const maxUsers = 40
	static, err := shard.FleetCapacity(mk(0), maxUsers, 0)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := shard.FleetCapacity(mk(0), maxUsers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, static) {
		t.Fatal("zero-rate churn capacity diverged from static capacity")
	}
	for _, rate := range []float64{0.25, 1.0} {
		churned, err := shard.FleetCapacity(mk(rate), maxUsers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if churned.Users > static.Users {
			t.Fatalf("rate %.2f/s: churn-aware capacity %d above static %d",
				rate, churned.Users, static.Users)
		}
	}
}

// TestDynamicFleetWorkerInvariant: lifecycle plans are computed before any
// simulation runs, so a churned, growing, failing fleet must still be
// bit-identical at any worker count, for every policy.
func TestDynamicFleetWorkerInvariant(t *testing.T) {
	for _, policy := range shard.Policies() {
		cfg := failCfg(policy)
		cfg.Base.Span = 5 * simclock.Second
		cfg.KillAt = 2 * simclock.Second
		cfg.ChurnRatePerSec = 0.3
		cfg.GrowthPerSec = 1
		cfg.Workers = 1
		ref := mustRun(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			if got := mustRun(t, cfg); !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: workers=%d diverged from sequential dynamic fleet", policy, workers)
			}
		}
	}
}

// TestKillValidation pins the failover configuration contract.
func TestKillValidation(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 6)
	cfg.KillAt = cfg.Base.Span // not before the span ends
	cfg.KillShard = 0
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("kill at span end accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 6)
	cfg.KillAt = 2 * simclock.Second
	cfg.KillShard = 7
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("kill of a machine outside the fleet accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 2)
	cfg.Machines = cfg.Machines[:1]
	cfg.KillAt = 2 * simclock.Second
	cfg.KillShard = 0
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("failover on a one-machine fleet accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 6)
	cfg.ChurnRatePerSec = -1
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("negative churn rate accepted")
	}
}
