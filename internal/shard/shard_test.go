package shard_test

import (
	"reflect"
	"testing"

	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

// fleetCfg is the test fleet: the canonical heterogeneous three-machine
// fleet (big / base / weak) on short spans.
func fleetCfg(policy string, users int) shard.Config {
	base := server.DefaultConfig()
	base.Span = 3 * simclock.Second
	return shard.Config{
		Base:      base,
		Machines:  shard.DefaultFleet(3),
		Users:     users,
		Policy:    policy,
		ProbeSpan: simclock.Second,
		Seed:      42,
	}
}

func mustRun(t *testing.T, cfg shard.Config) shard.FleetResult {
	t.Helper()
	res, err := shard.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sum(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

func TestPlaceRoundRobin(t *testing.T) {
	counts, err := shard.Place(fleetCfg(shard.PolicyRoundRobin, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(counts, []int{3, 2, 2}) {
		t.Fatalf("roundrobin placed %v, want [3 2 2]", counts)
	}
	// The empty policy defaults to roundrobin.
	def, err := shard.Place(fleetCfg("", 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, counts) {
		t.Fatalf("default policy placed %v, want roundrobin's %v", def, counts)
	}
}

func TestPlaceMemAwareFollowsMemory(t *testing.T) {
	// DefaultFleet memory divisions: 128 MB ~ 31 sessions, 64 MB ~ 13,
	// 48 MB ~ 8. Greedy bin-packing must load machines in that order.
	cfg := fleetCfg(shard.PolicyMemAware, 26)
	counts, err := shard.Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != cfg.Users {
		t.Fatalf("placement %v loses users, want total %d", counts, cfg.Users)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Fatalf("memaware ignored memory sizes: %v for capacities ~[31 13 8]", counts)
	}
	// Under total memory capacity, no shard is pushed past its division.
	if counts[2] > 8 {
		t.Fatalf("memaware overcommitted the 48 MB machine: %v", counts)
	}
}

func TestPlaceLatAwarePrefersFastMachine(t *testing.T) {
	cfg := fleetCfg(shard.PolicyLatAware, 12)
	counts, err := shard.Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != cfg.Users {
		t.Fatalf("placement %v loses users, want total %d", counts, cfg.Users)
	}
	if counts[0] <= counts[2] {
		t.Fatalf("lataware loaded the 0.6x machine (%d users) at least as much as the 1.5x machine (%d)",
			counts[2], counts[0])
	}
}

func TestPlaceRejectsBadConfigs(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Users = 0
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("empty population accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Machines = nil
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("machineless fleet accepted")
	}
	cfg = fleetCfg("hash", 4)
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Machines[1].MemoryMB = -64
	if _, err := shard.Place(cfg); err == nil {
		t.Fatal("negative hardware override accepted")
	}
	cfg = fleetCfg(shard.PolicyRoundRobin, 4)
	cfg.Base.Protocol = "telnet"
	if _, err := shard.Run(cfg); err == nil {
		t.Fatal("unknown base protocol accepted by Run")
	}
}

// TestFleetWorkerInvariant is the shard layer's determinism proof: whole
// machines fan out across the farm with index-derived seeds, so a fleet
// result must be deeply identical at any worker count, for every policy.
func TestFleetWorkerInvariant(t *testing.T) {
	for _, policy := range shard.Policies() {
		cfg := fleetCfg(policy, 10)
		cfg.Base.Span = 2 * simclock.Second
		cfg.Workers = 1
		ref := mustRun(t, cfg)
		for _, workers := range []int{2, 8} {
			cfg.Workers = workers
			if got := mustRun(t, cfg); !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: workers=%d diverged from sequential fleet:\n%+v\n%+v",
					policy, workers, got, ref)
			}
		}
	}
}

// TestFleetP95MonotoneInUsers: greedy placement has the prefix property
// and every shard keeps its index-derived seed, so growing populations
// share common random numbers and the fleet p95 series must degrade, never
// improve, under every policy.
func TestFleetP95MonotoneInUsers(t *testing.T) {
	for _, policy := range shard.Policies() {
		var prev float64
		for i, n := range []int{4, 10, 16, 22, 28} {
			res := mustRun(t, fleetCfg(policy, n))
			if res.Users != n || sum(res.Placement) != n {
				t.Fatalf("%s: fleet result placed %v for %d users", policy, res.Placement, n)
			}
			if i > 0 && res.EchoP95Ms+0.01 < prev {
				t.Fatalf("%s: fleet p95 improved with more users: %d users %.2fms after %.2fms",
					policy, n, res.EchoP95Ms, prev)
			}
			prev = res.EchoP95Ms
		}
	}
}

// TestLatAwareNoWorseThanRoundRobin is the point of measurement-driven
// placement: on a heterogeneous fleet, blind round-robin marches the weak
// machine into paging while lataware routes around it, so for the same
// total population the lataware fleet p95 cannot be worse.
func TestLatAwareNoWorseThanRoundRobin(t *testing.T) {
	for _, n := range []int{18, 30} {
		rr := mustRun(t, fleetCfg(shard.PolicyRoundRobin, n))
		lat := mustRun(t, fleetCfg(shard.PolicyLatAware, n))
		if lat.EchoP95Ms > rr.EchoP95Ms {
			t.Fatalf("%d users: lataware fleet p95 %.2fms worse than roundrobin %.2fms (placements %v vs %v)",
				n, lat.EchoP95Ms, rr.EchoP95Ms, lat.Placement, rr.Placement)
		}
	}
	// At 30 users round-robin puts 10 sessions on the 48 MB machine
	// (§5.1.1 division ~8), so the gap should be dramatic, not a tie.
	rr := mustRun(t, fleetCfg(shard.PolicyRoundRobin, 30))
	lat := mustRun(t, fleetCfg(shard.PolicyLatAware, 30))
	if lat.EchoP95Ms >= rr.EchoP95Ms/2 {
		t.Fatalf("lataware p95 %.2fms not decisively better than roundrobin %.2fms under overload",
			lat.EchoP95Ms, rr.EchoP95Ms)
	}
}

// TestOverloadedFleetP95NotFloored: the bucketing must be sized to the
// measurement window, so that a deeply overloaded fleet's censored
// samples (ages up to span plus drain) land in real buckets instead of
// clamping — otherwise fleet p95 would silently floor at the histogram
// edge exactly when overload is worst.
func TestOverloadedFleetP95NotFloored(t *testing.T) {
	cfg := fleetCfg(shard.PolicyRoundRobin, 30) // 10 sessions on the ~8-session 48 MB machine
	cfg.Base.Span = 10 * simclock.Second
	res := mustRun(t, cfg)
	worst := res.Shards[2]
	if !worst.Paging || worst.Censored == 0 {
		t.Fatalf("weak shard not overloaded as intended: %+v", worst)
	}
	if res.Clamped != 0 {
		t.Fatalf("fleet histogram clamped %d samples on a span-sized bucketing", res.Clamped)
	}
	if res.EchoP95Ms <= float64(shard.HistBuckets)*shard.HistBucketMs {
		t.Fatalf("overloaded fleet p95 %.0fms at or under the minimum histogram range — still floored", res.EchoP95Ms)
	}
}

// TestEmptyShardContributesNothing: a shard assigned zero users must not
// be simulated at all — no invented clamped-up user — and the fleet
// summary must equal the populated shards' alone.
func TestEmptyShardContributesNothing(t *testing.T) {
	res := mustRun(t, fleetCfg(shard.PolicyRoundRobin, 1))
	if !reflect.DeepEqual(res.Placement, []int{1, 0, 0}) {
		t.Fatalf("placement %v, want [1 0 0]", res.Placement)
	}
	for _, sr := range res.Shards[1:] {
		if sr.Users != 0 || sr.Interactions != 0 || sr.EchoSamples != 0 {
			t.Fatalf("empty shard %d simulated anyway: %+v", sr.Shard, sr)
		}
	}
	if res.Interactions != res.Shards[0].Interactions {
		t.Fatalf("fleet interactions %d != sole shard's %d", res.Interactions, res.Shards[0].Interactions)
	}
	if res.EchoP95Ms < res.Shards[0].EchoP95Ms || res.EchoP95Ms > res.Shards[0].EchoP95Ms+shard.HistBucketMs {
		t.Fatalf("fleet p95 %.2fms not within one bucket above sole shard's %.2fms",
			res.EchoP95Ms, res.Shards[0].EchoP95Ms)
	}
}

// TestFleetCapacity: the fleet-level sizing answer must sit within the
// budget at N and violate it at N+1, and measurement-driven placement
// must never size a heterogeneous fleet below blind round-robin.
func TestFleetCapacity(t *testing.T) {
	mk := func(policy string) shard.Config {
		cfg := fleetCfg(policy, 1)
		cfg.Base.Protocol = "model" // frugal probes for a wide bisection
		cfg.Base.Span = 2 * simclock.Second
		return cfg
	}
	const maxUsers = 40
	caps := map[string]int{}
	for _, policy := range []string{shard.PolicyRoundRobin, shard.PolicyLatAware} {
		n, at, err := shard.FleetCapacity(mk(policy), maxUsers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatalf("%s: fleet of three machines admits nobody", policy)
		}
		if at.Users != n {
			t.Fatalf("%s: returned result is for %d users, capacity %d", policy, at.Users, n)
		}
		if at.EchoP95Ms > 150 || at.Censored >= at.Interactions {
			t.Fatalf("%s: result at capacity already violates the budget: %+v", policy, at)
		}
		if n < maxUsers {
			over := mk(policy)
			over.Users = n + 1
			res := mustRun(t, over)
			if res.EchoP95Ms <= 150 && res.Censored < res.Interactions {
				t.Fatalf("%s: capacity %d but %d users still within budget (p95 %.2fms)",
					policy, n, n+1, res.EchoP95Ms)
			}
		}
		caps[policy] = n
	}
	if caps[shard.PolicyLatAware] < caps[shard.PolicyRoundRobin] {
		t.Fatalf("lataware capacity %d below roundrobin %d on a heterogeneous fleet",
			caps[shard.PolicyLatAware], caps[shard.PolicyRoundRobin])
	}
}
