//go:build !race

package speed

// RaceEnabled reports whether the binary was built with the race detector,
// which changes allocation counts: golden diffs of Allocs/AllocsPerEvent
// must be skipped under race.
const RaceEnabled = false
