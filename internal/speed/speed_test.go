package speed_test

import (
	"testing"

	"thinbench/internal/simclock"
	"thinbench/internal/speed"
)

// No test here may call t.Parallel: the queue-kind tests flip the
// process-global simclock.DefaultQueue, and Measure's allocation counting
// reads process-global MemStats.

// TestWorkloadsSmoke runs every canonical quick workload once and checks
// it actually exercises the simulator: a workload that dispatches zero
// events is timing an empty loop, and the speed numbers it reports are
// fiction.
func TestWorkloadsSmoke(t *testing.T) {
	for _, w := range speed.Workloads(true) {
		events, err := w.Run(1999, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if events == 0 {
			t.Fatalf("%s: workload dispatched zero simulator events", w.Name)
		}
		again, err := w.Run(1999, 1)
		if err != nil {
			t.Fatalf("%s (rerun): %v", w.Name, err)
		}
		if again != events {
			t.Fatalf("%s: event count not deterministic: %d then %d", w.Name, events, again)
		}
	}
}

// TestQueueKindsAgree is the repo-local version of the CI eventq-diff job:
// the calendar queue is an optimization of the reference heap, so every
// workload must dispatch the identical event count under either. A
// divergence means the calendar queue reordered same-time events and the
// simulation is no longer queue-invariant.
func TestQueueKindsAgree(t *testing.T) {
	saved := simclock.DefaultQueue
	defer func() { simclock.DefaultQueue = saved }()

	counts := make(map[string][2]uint64)
	for i, kind := range []simclock.QueueKind{simclock.QueueHeap, simclock.QueueCalendar} {
		simclock.DefaultQueue = kind
		for _, w := range speed.Workloads(true) {
			events, err := w.Run(1999, 1)
			if err != nil {
				t.Fatalf("%s under %s: %v", w.Name, kind, err)
			}
			c := counts[w.Name]
			c[i] = events
			counts[w.Name] = c
		}
	}
	for name, c := range counts {
		if c[0] != c[1] {
			t.Errorf("%s: heap queue dispatched %d events, calendar %d — queue kind leaked into the simulation",
				name, c[0], c[1])
		}
	}
}
