// Package speed measures how fast the simulator itself runs: canonical
// workloads spanning the repo's layers (one contended server, a sharded
// fleet, a scheduled office day) timed for sim-events per second,
// wall-clock per simulated user-hour, and allocations per event.
//
// The event and allocation counts are deterministic — same seed, same
// binary, same numbers — so they golden-diff and ratchet in CI like any
// other BENCH baseline. Wall-clock derived numbers vary with the machine
// and are reported but never diffed.
package speed

import (
	"fmt"
	"runtime"
	"time"

	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
)

// Workload is one canonical speed scenario.
type Workload struct {
	// Name identifies the scenario in BENCH_speed.json.
	Name string
	// Users is the simulated population, the basis of the per-user-hour
	// normalization.
	Users int
	// Span is the simulated duration.
	Span simclock.Duration

	run func(seed uint64, workers int) (uint64, error)
}

// Run executes the workload once and reports how many simulator events it
// dispatched.
func (w Workload) Run(seed uint64, workers int) (uint64, error) { return w.run(seed, workers) }

// Workloads returns the canonical scenarios, sized to match the other
// BENCH baselines: cont1 is the contention sweep's largest single-server
// point, fleet the churn baseline's static population on the heterogeneous
// 3-machine fleet, officeday the schedule baseline's trace-driven day, and
// bigfleet the scale proof — 1,040 users riding the office-day profile
// across 40 heterogeneous machines, roughly the population of a small
// campus on one simulated fleet. quick shortens the simulated spans for
// smoke runs.
func Workloads(quick bool) []Workload {
	span := 10 * simclock.Second
	if quick {
		span = 3 * simclock.Second
	}
	cont1 := Workload{Name: "cont1", Users: 16, Span: span}
	cont1.run = func(seed uint64, workers int) (uint64, error) {
		cfg := server.DefaultConfig()
		cfg.Users = cont1.Users
		cfg.Protocol = "rdp"
		cfg.Scheduler = "rr"
		cfg.Span = cont1.Span
		cfg.Seed = seed
		srv, err := server.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := srv.Run()
		if err != nil {
			return 0, err
		}
		return res.SimEvents, nil
	}

	fleetCfg := func(users int, span simclock.Duration, seed uint64, workers int) shard.Config {
		base := server.DefaultConfig()
		base.Span = span
		return shard.Config{
			Base:      base,
			Machines:  shard.DefaultFleet(3),
			Users:     users,
			Policy:    shard.PolicyRoundRobin,
			ProbeSpan: 2 * simclock.Second,
			Workers:   workers,
			Seed:      seed,
		}
	}

	fleet := Workload{Name: "fleet", Users: 22, Span: span}
	fleet.run = func(seed uint64, workers int) (uint64, error) {
		fr, err := shard.Run(fleetCfg(fleet.Users, fleet.Span, seed, workers))
		if err != nil {
			return 0, err
		}
		return fr.SimEvents, nil
	}

	officeday := Workload{Name: "officeday", Users: 15, Span: span}
	officeday.run = func(seed uint64, workers int) (uint64, error) {
		prof, ok := schedule.Builtin("officeday")
		if !ok {
			return 0, fmt.Errorf("speed: builtin profile officeday missing")
		}
		cfg := fleetCfg(officeday.Users, officeday.Span, seed, workers)
		cfg.Schedule = &prof
		fr, err := shard.Run(cfg)
		if err != nil {
			return 0, err
		}
		return fr.SimEvents, nil
	}

	bigfleet := Workload{Name: "bigfleet", Users: 1040, Span: span}
	bigfleet.run = func(seed uint64, workers int) (uint64, error) {
		prof, ok := schedule.Builtin("officeday")
		if !ok {
			return 0, fmt.Errorf("speed: builtin profile officeday missing")
		}
		cfg := fleetCfg(bigfleet.Users, bigfleet.Span, seed, workers)
		cfg.Machines = shard.DefaultFleet(40)
		cfg.Schedule = &prof
		fr, err := shard.Run(cfg)
		if err != nil {
			return 0, err
		}
		return fr.SimEvents, nil
	}

	return []Workload{cont1, fleet, officeday, bigfleet}
}

// Report is one workload's measured speed. SimEvents, Allocs, and
// AllocsPerEvent are deterministic at workers=1 and golden-diffed; the
// wall-clock fields (WallMs, EventsPerSec, UsPerUserHour) vary with the
// machine and are excluded from every diff.
type Report struct {
	Name           string  `json:"name"`
	Users          int     `json:"users"`
	SpanSec        float64 `json:"span_sec"`
	SimEvents      uint64  `json:"sim_events"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	WallMs         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	UsPerUserHour  float64 `json:"us_per_user_hour"`
}

// Measure times one workload, testing.AllocsPerRun-style: a warm-up run
// flushes lazy initialization (protocol tables, farm machinery) out of the
// measured window, then a GC settles the heap and the counted run executes
// between two MemStats snapshots. Mallocs is process-global, so callers
// needing exact allocation counts must not run concurrent work (in tests:
// no t.Parallel, workers=1).
//
// The wall-clock fields report the fastest of three timed runs: a single
// run's time is dominated by one-off noise (page faults on fresh spans,
// whether a GC cycle lands inside the window), and the minimum is the
// standard estimator for the workload's actual cost. The allocation count
// still comes from the first, GC-fenced run only.
func Measure(w Workload, seed uint64, workers int) (Report, error) {
	if _, err := w.Run(seed, workers); err != nil {
		return Report{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	// The two wallclock regions below are the one legitimate exception to
	// simdet: this harness times the simulator from the outside, and no
	// simulation decision depends on these reads.
	t0 := time.Now() //thinlint:allow simdet.wallclock external self-measurement harness, not simulation state
	events, err := w.Run(seed, workers)
	wall := time.Since(t0) //thinlint:allow simdet.wallclock external self-measurement harness, not simulation state
	if err != nil {
		return Report{}, err
	}
	runtime.ReadMemStats(&after)
	for i := 0; i < 2; i++ {
		t0 = time.Now() //thinlint:allow simdet.wallclock best-of-3 retiming, same external-harness exemption
		if _, err := w.Run(seed, workers); err != nil {
			return Report{}, err
		}
		if d := time.Since(t0); d < wall { //thinlint:allow simdet.wallclock best-of-3 retiming, same external-harness exemption
			wall = d
		}
	}

	r := Report{
		Name:      w.Name,
		Users:     w.Users,
		SpanSec:   w.Span.Seconds(),
		SimEvents: events,
		Allocs:    after.Mallocs - before.Mallocs,
		WallMs:    float64(wall.Nanoseconds()) / 1e6,
	}
	if events > 0 {
		r.AllocsPerEvent = roundTo(float64(r.Allocs)/float64(events), 4)
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(events) / secs
	}
	if userHours := float64(w.Users) * w.Span.Seconds() / 3600; userHours > 0 {
		r.UsPerUserHour = float64(wall.Microseconds()) / userHours
	}
	return r, nil
}

// roundTo keeps the deterministic ratios readable in the checked-in JSON
// without losing ratchet resolution.
func roundTo(v float64, digits int) float64 {
	scale := 1.0
	for i := 0; i < digits; i++ {
		scale *= 10
	}
	return float64(int64(v*scale+0.5)) / scale
}
