package speed

import "testing"

// BenchmarkCont1 runs the canonical contended-server speed workload end to
// end, the profiling entry point for the simulator's hot path: one
// `go test -bench Cont1 -cpuprofile` shows exactly what a BENCH_speed run
// spends its time on.
func BenchmarkCont1(b *testing.B) {
	b.ReportAllocs()
	w := Workloads(false)[0]
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(1999, 1); err != nil {
			b.Fatal(err)
		}
	}
}
