package benchdoc

import (
	"fmt"

	"thinbench/internal/control"
	"thinbench/internal/schedule"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
	"thinbench/internal/sizing"
)

// ControlDoc is the control-plane result (BENCH_control.json): per
// arrival profile, the offline oracle's capacity answer next to four
// fleet runs of the same demand on the same machine model — open
// (uncontrolled), admission-gated, admission plus load shedding, and
// autoscaled from standby spares. The point of the document is the
// trade it prices: an oracle-provisioned fleet needs MachinesNeeded
// boxes for the storm's peak, while the controlled fleet holds the
// budget on fewer by moving the overload into login-screen queueing.
type ControlDoc struct {
	Command string  `json:"command"`
	Seed    uint64  `json:"seed"`
	SpanSec float64 `json:"span_sec"`
	// Machines is the live fleet size; the autoscale run adds the same
	// number again as standby spares.
	Machines int `json:"machines"`
	// UserProfile is the sizing profile every seat runs; the fleet's
	// base machine is sizing.ProbeConfig for it, so the oracle and the
	// controllers judge the identical machine.
	UserProfile string           `json:"user_profile"`
	BudgetMs    float64          `json:"budget_ms"`
	Profiles    []ControlProfile `json:"profiles"`
}

// ControlProfile is one arrival profile's oracle answer and fleet runs.
type ControlProfile struct {
	Profile    string `json:"profile"`
	Definition string `json:"definition"`
	// OracleSeats is sizing.ScheduleCapacity's per-machine answer for
	// this profile (worst-slice p95 within budget), FleetSeats that
	// times the live machines, and OracleLimit the resource binding at
	// OracleSeats+1.
	OracleSeats int    `json:"oracle_seats_per_machine"`
	OracleLimit string `json:"oracle_limit"`
	FleetSeats  int    `json:"oracle_fleet_seats"`
	// Demand is the seat count actually offered — 1.5x FleetSeats when
	// derived — and MachinesNeeded is the oracle's overprovisioning
	// answer for it: the machines required to serve every seat within
	// budget at the storm's peak.
	Demand         int `json:"demand"`
	MachinesNeeded int `json:"machines_needed"`

	Open       shard.FleetResult `json:"open"`
	Admission  shard.FleetResult `json:"admission"`
	Controlled shard.FleetResult `json:"controlled"`
	Autoscale  shard.FleetResult `json:"autoscale"`
}

// controlRetry is the admission deferral quantum on the compressed
// 10-second day — fine enough that queue waits resolve against the
// storm, coarse enough that a held login is visibly a held login.
const controlRetry = 500 * simclock.Millisecond

// Control runs the offline-oracle-versus-online-controller comparison
// on each arrival profile: ScheduleCapacity sizes one machine for the
// profile's worst slice, then the same demand runs open, admission-
// gated, gated-plus-shedding, and autoscaled (the live machines plus as
// many standby spares, powered on behind the ramp). demand 0 derives
// 1.5x the oracle's fleet seats per profile.
func Control(profiles string, machines, demand int, quick bool, seed uint64, workers int) (ControlDoc, error) {
	profileList := SplitList(profiles)
	if len(profileList) == 0 {
		return ControlDoc{}, fmt.Errorf("empty -profile list")
	}
	if machines < 1 {
		return ControlDoc{}, fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	if demand < 0 {
		return ControlDoc{}, fmt.Errorf("bad -users %d (0 derives demand from the oracle)", demand)
	}
	srv := sizing.DefaultServer()
	// A 48 MB box: the §5.1.1 memory division is the operative limit, the
	// cliff both the offline oracle and the gate's marginal probes see.
	srv.PhysicalKB = 48 * 1024
	user := sizing.Developer()
	span := 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		span = 6 * simclock.Second
		probeSpan = simclock.Second
	}
	doc := ControlDoc{
		Command: fmt.Sprintf("thinbench -run control -shards %d -profile %s -users %d -seed %d -quick=%v",
			machines, profiles, demand, seed, quick),
		Seed:        seed,
		SpanSec:     span.Seconds(),
		Machines:    machines,
		UserProfile: user.Name,
		BudgetMs:    sizing.DefaultLatencyBudget.Milliseconds(),
	}
	// The latency capacity can never exceed the memory-only division,
	// so twice it safely brackets every profile's oracle search.
	maxSeats := 2 * sizing.MemoryCapacity(srv, user)
	for _, spec := range profileList {
		prof, err := ResolveProfile(spec)
		if err != nil {
			return ControlDoc{}, err
		}
		seats, _, limit, err := sizing.ScheduleCapacity(srv, user, prof, maxSeats, span, seed, workers)
		if err != nil {
			return ControlDoc{}, err
		}
		cp := ControlProfile{
			Profile:     prof.Name,
			Definition:  schedule.Format(prof),
			OracleSeats: seats,
			OracleLimit: string(limit),
			FleetSeats:  machines * seats,
			Demand:      demand,
		}
		if cp.Demand == 0 {
			cp.Demand = cp.FleetSeats + (cp.FleetSeats+1)/2
		}
		if seats > 0 {
			cp.MachinesNeeded = (cp.Demand + seats - 1) / seats
		}
		fleet := shard.Config{
			Base:      sizing.ProbeConfig(srv, user, 1, span, seed),
			Machines:  make([]shard.Machine, machines),
			Users:     cp.Demand,
			Schedule:  &prof,
			ProbeSpan: probeSpan,
			Workers:   workers,
			Seed:      seed,
		}
		if cp.Open, err = shard.Run(fleet); err != nil {
			return ControlDoc{}, err
		}
		gate := &control.Admission{Retry: controlRetry}
		if cp.Admission, err = control.Run(fleet, control.Config{Admission: gate}); err != nil {
			return ControlDoc{}, err
		}
		if cp.Controlled, err = control.Run(fleet, control.Config{Admission: gate, Shedder: &control.Shedder{}}); err != nil {
			return ControlDoc{}, err
		}
		// The autoscaled fleet starts with the same live machines plus
		// as many standby spares; capacity follows the ramp instead of
		// being racked for it, with the gate covering the boot delay.
		auto := fleet
		auto.Machines = make([]shard.Machine, 2*machines)
		for j := machines; j < len(auto.Machines); j++ {
			auto.Machines[j].Standby = true
		}
		cp.Autoscale, err = control.Run(auto, control.Config{
			Admission:  gate,
			Autoscaler: &control.Autoscaler{UpFrac: 0.75, DownFrac: 0.25, ProvisionDelay: controlRetry},
		})
		if err != nil {
			return ControlDoc{}, err
		}
		doc.Profiles = append(doc.Profiles, cp)
	}
	return doc, nil
}
