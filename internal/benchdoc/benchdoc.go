// Package benchdoc builds the repo's machine-readable bench trajectory
// documents (BENCH_contention.json, BENCH_shard.json, BENCH_churn.json,
// BENCH_schedule.json, BENCH_speed.json). The cmd/thinbench CLI renders these documents to
// the terminal and serializes them; tests regenerate them in-process and
// golden-diff the numeric fields against the checked-in baselines, so a
// refactor that drifts a single number fails before CI does.
//
// Every builder takes the raw CLI flag strings it was invoked with and
// embeds the exact reproduction command in the document, which is what
// makes a checked-in baseline self-describing.
package benchdoc

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"thinbench/internal/schedule"
	"thinbench/internal/server"
	"thinbench/internal/shard"
	"thinbench/internal/simclock"
	"thinbench/internal/speed"
)

// ContentionDoc is the latency-vs-users grid on one shared server per
// data point.
type ContentionDoc struct {
	Command   string            `json:"command"`
	Seed      uint64            `json:"seed"`
	SpanSec   float64           `json:"span_sec"`
	Users     []int             `json:"users"`
	Scenarios []server.Scenario `json:"scenarios"`
}

// Contention sweeps user counts over one shared server per data point.
func Contention(users, protos, scheds string, quick bool, seed uint64, workers int) (ContentionDoc, error) {
	counts, err := ParseCounts(users)
	if err != nil {
		return ContentionDoc{}, err
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	if quick {
		base.Span = 3 * simclock.Second
	}
	protoList := SplitList(protos)
	schedList := SplitList(scheds)
	// An empty axis would legally produce an empty grid; at the CLI that
	// is always a mistyped flag, so fail instead of printing zero rows.
	if len(protoList) == 0 {
		return ContentionDoc{}, fmt.Errorf("empty -proto list")
	}
	if len(schedList) == 0 {
		return ContentionDoc{}, fmt.Errorf("empty -sched list")
	}
	grid, err := server.Grid(base, protoList, schedList, counts, workers, seed)
	if err != nil {
		return ContentionDoc{}, err
	}
	return ContentionDoc{
		Command: fmt.Sprintf("thinbench -run contention -users %s -proto %s -sched %s -seed %d -quick=%v",
			users, protos, scheds, seed, quick),
		Seed:      seed,
		SpanSec:   base.Span.Seconds(),
		Users:     counts,
		Scenarios: grid,
	}, nil
}

// ShardDoc is the fleet-level p95 versus total population, per placement
// policy.
type ShardDoc struct {
	Command  string          `json:"command"`
	Seed     uint64          `json:"seed"`
	SpanSec  float64         `json:"span_sec"`
	Machines []shard.Machine `json:"machines"`
	Users    []int           `json:"users"`
	Policies []PolicySeries  `json:"policies"`
}

// PolicySeries is one placement policy's fleet results across a sweep.
type PolicySeries struct {
	Policy string              `json:"policy"`
	Points []shard.FleetResult `json:"points"`
}

// Shard sweeps total population over a heterogeneous fleet per placement
// policy.
func Shard(users, policies string, machines int, quick bool, seed uint64, workers int) (ShardDoc, error) {
	counts, err := ParseCounts(users)
	if err != nil {
		return ShardDoc{}, err
	}
	policyList := SplitList(policies)
	if len(policyList) == 0 {
		return ShardDoc{}, fmt.Errorf("empty -policy list")
	}
	if machines < 1 {
		return ShardDoc{}, fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		base.Span = 3 * simclock.Second
		probeSpan = simclock.Second
	}
	fleet := shard.DefaultFleet(machines)
	doc := ShardDoc{
		Command: fmt.Sprintf("thinbench -run shard -shards %d -policy %s -users %s -seed %d -quick=%v",
			machines, policies, users, seed, quick),
		Seed:     seed,
		SpanSec:  base.Span.Seconds(),
		Machines: fleet,
		Users:    counts,
	}
	for _, policy := range policyList {
		ps := PolicySeries{Policy: policy}
		for _, n := range counts {
			fr, err := shard.Run(shard.Config{
				Base:      base,
				Machines:  fleet,
				Users:     n,
				Policy:    policy,
				ProbeSpan: probeSpan,
				Workers:   workers,
				Seed:      seed,
			})
			if err != nil {
				return ShardDoc{}, err
			}
			ps.Points = append(ps.Points, fr)
		}
		doc.Policies = append(doc.Policies, ps)
	}
	return doc, nil
}

// ChurnDoc is the dynamic-fleet result: the turnover grid plus the
// failover runs.
type ChurnDoc struct {
	Command    string          `json:"command"`
	Seed       uint64          `json:"seed"`
	SpanSec    float64         `json:"span_sec"`
	Machines   []shard.Machine `json:"machines"`
	Users      int             `json:"users"`
	ChurnRates []float64       `json:"churn_rates"`
	Policies   []PolicySeries  `json:"policies"`
	Failover   []PolicyFail    `json:"failover,omitempty"`
}

// PolicyFail is one policy's machine-kill failover run.
type PolicyFail struct {
	Policy string            `json:"policy"`
	Result shard.FleetResult `json:"result"`
}

// Churn holds one fleet population, sweeps the session turnover rate per
// policy, then (unless killShard is negative) kills a machine and
// measures the failover excursion per policy.
func Churn(users, policies, churnRates string, machines, killShard int, killAtSec float64,
	quick bool, seed uint64, workers int) (ChurnDoc, error) {
	counts, err := ParseCounts(users)
	if err != nil {
		return ChurnDoc{}, err
	}
	if len(counts) != 1 {
		return ChurnDoc{}, fmt.Errorf("churn mode holds one population; give a single -users count, not %v", counts)
	}
	n := counts[0]
	var rates []float64
	for _, f := range SplitList(churnRates) {
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r < 0 {
			return ChurnDoc{}, fmt.Errorf("bad -churn rate %q", f)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return ChurnDoc{}, fmt.Errorf("empty -churn list")
	}
	policyList := SplitList(policies)
	if len(policyList) == 0 {
		return ChurnDoc{}, fmt.Errorf("empty -policy list")
	}
	if machines < 1 {
		return ChurnDoc{}, fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		base.Span = 4 * simclock.Second
		probeSpan = simclock.Second
	}
	killAt := simclock.Duration(killAtSec * 1e6)
	if killShard >= 0 && killAt <= 0 {
		return ChurnDoc{}, fmt.Errorf("-killat %g: the failover kill needs a positive time (or -kill -1 to disable)", killAtSec)
	}
	if killShard >= 0 && killAt >= base.Span {
		return ChurnDoc{}, fmt.Errorf("-killat %g: the kill must land before the %v span", killAtSec, base.Span)
	}
	fleet := shard.DefaultFleet(machines)
	mk := func(policy string) shard.Config {
		return shard.Config{
			Base:      base,
			Machines:  fleet,
			Users:     n,
			Policy:    policy,
			ProbeSpan: probeSpan,
			Workers:   workers,
			Seed:      seed,
		}
	}
	doc := ChurnDoc{
		Command: fmt.Sprintf("thinbench -run churn -shards %d -policy %s -users %d -churn %s -kill %d -killat %g -seed %d -quick=%v",
			machines, policies, n, churnRates, killShard, killAtSec, seed, quick),
		Seed:       seed,
		SpanSec:    base.Span.Seconds(),
		Machines:   fleet,
		Users:      n,
		ChurnRates: rates,
	}
	for _, policy := range policyList {
		ps := PolicySeries{Policy: policy}
		for _, rate := range rates {
			cfg := mk(policy)
			cfg.ChurnRatePerSec = rate
			fr, err := shard.Run(cfg)
			if err != nil {
				return ChurnDoc{}, err
			}
			ps.Points = append(ps.Points, fr)
		}
		doc.Policies = append(doc.Policies, ps)
	}
	if killShard >= 0 {
		for _, policy := range policyList {
			cfg := mk(policy)
			cfg.KillShard = killShard
			cfg.KillAt = killAt
			fr, err := shard.Run(cfg)
			if err != nil {
				return ChurnDoc{}, err
			}
			doc.Failover = append(doc.Failover, PolicyFail{Policy: policy, Result: fr})
		}
	}
	return doc, nil
}

// ScheduleDoc is the trace-shaped arrival result: per-profile,
// per-policy fleet runs plus the mid-ramp machine-kill failover runs.
// Each profile's text definition rides along, so a checked-in baseline
// records exactly the day it measured.
type ScheduleDoc struct {
	Command  string          `json:"command"`
	Seed     uint64          `json:"seed"`
	SpanSec  float64         `json:"span_sec"`
	Machines []shard.Machine `json:"machines"`
	Users    int             `json:"users"`
	KillAt   float64         `json:"kill_at_sec,omitempty"`
	Profiles []ProfileRuns   `json:"profiles"`
	Failover []ProfileFail   `json:"failover,omitempty"`
}

// ProfileRuns is one arrival profile's no-kill fleet runs, per policy.
type ProfileRuns struct {
	Profile    string         `json:"profile"`
	Definition string         `json:"definition"`
	Policies   []PolicyResult `json:"policies"`
}

// PolicyResult is one (profile, policy) fleet run.
type PolicyResult struct {
	Policy string            `json:"policy"`
	Result shard.FleetResult `json:"result"`
}

// ProfileFail is one (profile, policy) machine-kill failover run.
type ProfileFail struct {
	Profile string            `json:"profile"`
	Policy  string            `json:"policy"`
	Result  shard.FleetResult `json:"result"`
}

// ResolveProfile turns a -profile entry into a schedule: a built-in name
// (flat, officeday, shiftchange) or @path to a file in the schedule text
// format.
func ResolveProfile(spec string) (schedule.Profile, error) {
	if path, ok := strings.CutPrefix(spec, "@"); ok {
		text, err := os.ReadFile(path)
		if err != nil {
			return schedule.Profile{}, err
		}
		return schedule.Parse(string(text))
	}
	p, ok := schedule.Builtin(spec)
	if !ok {
		return schedule.Profile{}, fmt.Errorf("unknown profile %q (built-ins: %s; or @file)",
			spec, strings.Join(schedule.Builtins(), ", "))
	}
	return p, nil
}

// Schedule holds one fleet population and drives it from each arrival
// profile per placement policy, then (unless killShard is negative)
// repeats each run with a machine kill at killAtSec — by default placed
// inside the morning ramp, the failover-under-surge measurement this
// whole layer exists for.
func Schedule(users, profiles, policies string, machines, killShard int, killAtSec float64,
	quick bool, seed uint64, workers int) (ScheduleDoc, error) {
	counts, err := ParseCounts(users)
	if err != nil {
		return ScheduleDoc{}, err
	}
	if len(counts) != 1 {
		return ScheduleDoc{}, fmt.Errorf("schedule mode holds one population; give a single -users count, not %v", counts)
	}
	n := counts[0]
	profileList := SplitList(profiles)
	if len(profileList) == 0 {
		return ScheduleDoc{}, fmt.Errorf("empty -profile list")
	}
	policyList := SplitList(policies)
	if len(policyList) == 0 {
		return ScheduleDoc{}, fmt.Errorf("empty -policy list")
	}
	if machines < 1 {
		return ScheduleDoc{}, fmt.Errorf("bad -shards count %d (want >= 1)", machines)
	}
	base := server.DefaultConfig()
	base.Span = 10 * simclock.Second
	probeSpan := 2 * simclock.Second
	if quick {
		base.Span = 6 * simclock.Second
		probeSpan = simclock.Second
	}
	killAt := simclock.Duration(killAtSec * 1e6)
	if killShard >= 0 && killAt <= 0 {
		return ScheduleDoc{}, fmt.Errorf("-killat %g: the failover kill needs a positive time (or -kill -1 to disable)", killAtSec)
	}
	if killShard >= 0 && killAt >= base.Span {
		return ScheduleDoc{}, fmt.Errorf("-killat %g: the kill must land before the %v span", killAtSec, base.Span)
	}
	fleet := shard.DefaultFleet(machines)
	doc := ScheduleDoc{
		Command: fmt.Sprintf("thinbench -run schedule -shards %d -policy %s -users %d -profile %s -kill %d -killat %g -seed %d -quick=%v",
			machines, policies, n, profiles, killShard, killAtSec, seed, quick),
		Seed:     seed,
		SpanSec:  base.Span.Seconds(),
		Machines: fleet,
		Users:    n,
	}
	if killShard >= 0 {
		doc.KillAt = killAt.Seconds()
	}
	for _, spec := range profileList {
		prof, err := ResolveProfile(spec)
		if err != nil {
			return ScheduleDoc{}, err
		}
		pr := ProfileRuns{Profile: prof.Name, Definition: schedule.Format(prof)}
		for _, policy := range policyList {
			prof := prof
			fr, err := shard.Run(shard.Config{
				Base:      base,
				Machines:  fleet,
				Users:     n,
				Policy:    policy,
				Schedule:  &prof,
				ProbeSpan: probeSpan,
				Workers:   workers,
				Seed:      seed,
			})
			if err != nil {
				return ScheduleDoc{}, err
			}
			pr.Policies = append(pr.Policies, PolicyResult{Policy: policy, Result: fr})
		}
		doc.Profiles = append(doc.Profiles, pr)
		if killShard >= 0 {
			for _, policy := range policyList {
				prof := prof
				fr, err := shard.Run(shard.Config{
					Base:      base,
					Machines:  fleet,
					Users:     n,
					Policy:    policy,
					Schedule:  &prof,
					KillShard: killShard,
					KillAt:    killAt,
					ProbeSpan: probeSpan,
					Workers:   workers,
					Seed:      seed,
				})
				if err != nil {
					return ScheduleDoc{}, err
				}
				doc.Failover = append(doc.Failover, ProfileFail{Profile: prof.Name, Policy: policy, Result: fr})
			}
		}
	}
	return doc, nil
}

// SpeedDoc is the simulator-speed trajectory (BENCH_speed.json): the
// canonical workloads' event counts and allocation rates, which are
// deterministic and golden-diffed, plus their wall-clock throughput
// numbers, which vary with the machine and must be excluded from any diff
// (see SpeedVolatileFields).
type SpeedDoc struct {
	Command   string         `json:"command"`
	Seed      uint64         `json:"seed"`
	Queue     string         `json:"queue"`
	Workers   int            `json:"workers"`
	Workloads []speed.Report `json:"workloads"`
}

// SpeedVolatileFields names the machine-dependent SpeedDoc fields every
// golden diff must ignore.
func SpeedVolatileFields() []string {
	return []string{"wall_ms", "events_per_sec", "us_per_user_hour"}
}

// Speed measures the canonical speed workloads. workload, when non-empty,
// restricts the run to the named workload — the single-loop form used for
// profiling one scenario without the others polluting the profile.
// Allocation counts are exact only at workers=1 with no concurrent
// activity in the process; the checked-in baseline is always regenerated
// that way, with no filter.
func Speed(quick bool, seed uint64, workers int, workload string) (SpeedDoc, error) {
	command := fmt.Sprintf("thinbench -run speed -parallel %d -seed %d -quick=%v",
		workers, seed, quick)
	if workload != "" {
		command += fmt.Sprintf(" -workload %s", workload)
	}
	doc := SpeedDoc{
		Command: command,
		Seed:    seed,
		Queue:   simclock.DefaultQueue.String(),
		Workers: workers,
	}
	for _, w := range speed.Workloads(quick) {
		if workload != "" && w.Name != workload {
			continue
		}
		r, err := speed.Measure(w, seed, workers)
		if err != nil {
			return SpeedDoc{}, err
		}
		doc.Workloads = append(doc.Workloads, r)
	}
	if len(doc.Workloads) == 0 {
		return SpeedDoc{}, fmt.Errorf("unknown -workload %q", workload)
	}
	return doc, nil
}

// ParseCounts accepts "A..B" ranges and comma lists of user counts.
func ParseCounts(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad -users range %q (want e.g. 1..16)", s)
		}
		// Wide ranges step so the sweep stays a handful of points per
		// scenario; narrow ranges probe every count.
		step := 1
		if n := b - a + 1; n > 8 {
			step = (n + 7) / 8
		}
		var out []int
		for c := a; c <= b; c += step {
			out = append(out, c)
		}
		if out[len(out)-1] != b {
			out = append(out, b)
		}
		return out, nil
	}
	var out []int
	for _, f := range SplitList(s) {
		c, err := strconv.Atoi(f)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -users entry %q", f)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -users list")
	}
	return out, nil
}

// SplitList splits a comma list, dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
