// Package bitmapcache implements the client-side bitmap cache that gives the
// RDP-like protocol its decisive advantage on animated content (§6.1.3).
//
// The default configuration matches the paper's description of the TSE
// client: 1.5 MB of memory with LRU eviction, used for icons, button
// images, glyphs, and animation frames. The package also implements the
// "more intelligent scheme" the paper sketches — a loop-aware policy that
// detects the cyclic access patterns which defeat LRU (Figure 7's cliff)
// and switches to MRU-style eviction within the loop, the same remedy file
// systems apply to sequential scans.
package bitmapcache

import (
	"container/list"
	"fmt"
)

// Key identifies cached content, normally a bitmap content hash.
type Key uint64

// DefaultCapacity is the TSE client's default bitmap cache size.
const DefaultCapacity = 1536 * 1024 // 1.5 MB

// Policy selects the eviction behavior.
type Policy int

// Eviction policies.
const (
	// LRU is the TSE client's policy: evict the least recently used entry.
	LRU Policy = iota
	// LoopAware detects cyclic re-miss patterns and freezes the cache while
	// a loop is active: new entries bypass the cache instead of evicting
	// the resident prefix of the loop, so most of the loop keeps hitting.
	LoopAware
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case LoopAware:
		return "loop-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

type entry struct {
	key  Key
	size int64
}

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	ReMisses   int64 // misses on keys that were previously cached (thrash signal)
	Insertions int64
	Evictions  int64
	LoopMode   bool // whether loop-aware eviction is currently engaged
}

// HitRatio is the cumulative hit ratio, the metric of the paper's Figure 6.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a byte-capacity bitmap cache.
type Cache struct {
	capacity int64
	used     int64
	policy   Policy

	// OnEvict, if set, observes every eviction. The RDP server uses it to
	// recycle cache slots in its client-cache directory.
	OnEvict func(Key)

	order   *list.List // front = most recent
	entries map[Key]*list.Element

	// seen tracks keys that have ever been inserted, to recognize re-misses
	// (the signature of a loop that exceeds capacity). Bounded: beyond
	// seenLimit entries, aging resets it — workloads here are far smaller.
	seen      map[Key]struct{}
	seenLimit int

	// Loop detection: a sliding window over recent lookups; when the
	// fraction that are re-misses (misses on previously-cached keys)
	// crosses the threshold, loop mode engages. Hits push the fraction
	// back down, so the detector disengages when the loop ends.
	recentLookups  []bool // true = re-miss
	recentPos      int
	loopMode       bool
	loopThreshold  float64
	detectorWindow int

	stats Stats
}

// New builds a cache with the given byte capacity and policy.
func New(capacity int64, policy Policy) *Cache {
	if capacity <= 0 {
		panic("bitmapcache: capacity must be positive")
	}
	return &Cache{
		capacity:       capacity,
		policy:         policy,
		order:          list.New(),
		entries:        make(map[Key]*list.Element),
		seen:           make(map[Key]struct{}),
		seenLimit:      1 << 20,
		loopThreshold:  0.5,
		detectorWindow: 32,
		recentLookups:  make([]bool, 32),
	}
}

// NewDefault builds the TSE client configuration: 1.5 MB LRU.
func NewDefault() *Cache { return New(DefaultCapacity, LRU) }

// Reset returns the cache to its freshly constructed state — no entries,
// zeroed counters, disengaged loop detector — while retaining the maps and
// the detector window for reuse, so a session pool can recycle a codec's
// cache without reallocating it. Evictions implied by the reset do not
// fire OnEvict; the owner is expected to reset its own directory alongside.
func (c *Cache) Reset() {
	c.used = 0
	c.order.Init()
	clear(c.entries)
	clear(c.seen)
	for i := range c.recentLookups {
		c.recentLookups[i] = false
	}
	c.recentPos = 0
	c.loopMode = false
	c.stats = Stats{}
}

// Capacity reports the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used reports bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.order.Len() }

// Policy reports the eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

// Stats reports cumulative counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.LoopMode = c.loopMode
	return s
}

// Contains reports whether key is cached, without touching recency or stats.
func (c *Cache) Contains(key Key) bool {
	_, ok := c.entries[key]
	return ok
}

// Lookup checks for key, promoting it on hit. On miss it records the miss
// (and re-miss, when the key had been cached before) and returns false.
// The caller is expected to transfer the content and Insert it.
func (c *Cache) Lookup(key Key) bool {
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		c.noteLookup(false)
		return true
	}
	c.stats.Misses++
	_, re := c.seen[key]
	if re {
		c.stats.ReMisses++
	}
	c.noteLookup(re)
	return false
}

// Insert caches content of the given size, evicting per policy until it
// fits. Content larger than the whole cache is not cached at all (matching
// how real bitmap caches reject oversized entries).
func (c *Cache) Insert(key Key, size int64) {
	if size <= 0 {
		panic("bitmapcache: insert of non-positive size")
	}
	if size > c.capacity {
		return
	}
	if el, ok := c.entries[key]; ok {
		// Refresh: same key re-inserted (content already cached).
		c.order.MoveToFront(el)
		return
	}
	if c.policy == LoopAware && c.loopMode && c.used+size > c.capacity {
		// Freeze: caching this entry would evict part of the detected
		// loop's resident prefix, trading a future hit for a future miss.
		// Bypass instead.
		return
	}
	for c.used+size > c.capacity {
		c.evictOne()
	}
	el := c.order.PushFront(entry{key: key, size: size})
	c.entries[key] = el
	c.used += size
	c.stats.Insertions++
	if len(c.seen) >= c.seenLimit {
		c.seen = make(map[Key]struct{})
	}
	c.seen[key] = struct{}{}
}

// evictOne removes the least recently used entry.
func (c *Cache) evictOne() {
	el := c.order.Back()
	if el == nil {
		panic("bitmapcache: eviction from empty cache")
	}
	e := el.Value.(entry)
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.used -= e.size
	c.stats.Evictions++
	if c.OnEvict != nil {
		c.OnEvict(e.key)
	}
}

// noteLookup updates the loop detector with one lookup observation.
func (c *Cache) noteLookup(reMiss bool) {
	if c.policy != LoopAware {
		return
	}
	c.recentLookups[c.recentPos] = reMiss
	c.recentPos = (c.recentPos + 1) % c.detectorWindow
	re := 0
	for _, r := range c.recentLookups {
		if r {
			re++
		}
	}
	frac := float64(re) / float64(c.detectorWindow)
	// Hysteresis: engage when re-misses dominate the window; disengage only
	// when a full window passes with no re-miss at all. While the loop
	// runs, its non-resident tail keeps re-missing every cycle, holding the
	// mode on; once the loop stops, re-misses cease and the mode drops.
	if !c.loopMode && frac >= c.loopThreshold {
		c.loopMode = true
	} else if c.loopMode && re == 0 {
		c.loopMode = false
	}
}

// Fetch is the common lookup-or-insert pattern: it returns true on hit;
// on miss it inserts the entry and returns false.
func (c *Cache) Fetch(key Key, size int64) bool {
	if c.Lookup(key) {
		return true
	}
	c.Insert(key, size)
	return false
}

// CheckInvariants validates accounting: used bytes equal the sum of entry
// sizes, the map and list agree, and capacity is respected.
func (c *Cache) CheckInvariants() error {
	var sum int64
	n := 0
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(entry)
		sum += e.size
		n++
		if got, ok := c.entries[e.key]; !ok || got != el {
			return fmt.Errorf("bitmapcache: map/list disagreement for key %d", e.key)
		}
	}
	if n != len(c.entries) {
		return fmt.Errorf("bitmapcache: list has %d entries, map %d", n, len(c.entries))
	}
	if sum != c.used {
		return fmt.Errorf("bitmapcache: used=%d but entries sum to %d", c.used, sum)
	}
	if c.used > c.capacity {
		return fmt.Errorf("bitmapcache: used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}
