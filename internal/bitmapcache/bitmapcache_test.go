package bitmapcache

import (
	"testing"
	"testing/quick"
)

func TestHitAndMiss(t *testing.T) {
	c := New(100, LRU)
	if c.Lookup(1) {
		t.Fatal("empty cache hit")
	}
	c.Insert(1, 40)
	if !c.Lookup(1) {
		t.Fatal("miss after insert")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(100, LRU)
	c.Insert(1, 40)
	c.Insert(2, 40)
	// Touch 1 so 2 becomes LRU.
	c.Lookup(1)
	c.Insert(3, 40) // must evict 2
	if !c.Contains(1) {
		t.Fatal("recently used entry evicted")
	}
	if c.Contains(2) {
		t.Fatal("LRU entry survived")
	}
	if !c.Contains(3) {
		t.Fatal("new entry missing")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(100, LRU)
	for k := Key(0); k < 50; k++ {
		c.Insert(k, 30)
		if c.Used() > c.Capacity() {
			t.Fatalf("used %d > capacity %d", c.Used(), c.Capacity())
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(100, LRU)
	c.Insert(1, 500)
	if c.Contains(1) || c.Used() != 0 {
		t.Fatal("oversized entry was cached")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c := New(100, LRU)
	c.Insert(1, 40)
	c.Insert(2, 40)
	c.Insert(1, 40) // refresh, no double count
	if c.Used() != 80 {
		t.Fatalf("used = %d, want 80", c.Used())
	}
	c.Insert(3, 40) // evicts 2, since 1 was refreshed
	if c.Contains(2) || !c.Contains(1) {
		t.Fatal("refresh did not update recency")
	}
}

func TestInsertPanicsOnBadSize(t *testing.T) {
	c := New(100, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(size=0) did not panic")
		}
	}()
	c.Insert(1, 0)
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, LRU)
}

// The paper's Figure 7 pathology: a looping animation one entry larger than
// the cache misses on every single frame under LRU.
func TestLoopingAnimationDefeatsLRU(t *testing.T) {
	c := New(1000, LRU)
	const frames = 11 // 11 * 100 > 1000: loop exceeds capacity by one frame
	hits := 0
	for loop := 0; loop < 10; loop++ {
		for f := Key(0); f < frames; f++ {
			if c.Fetch(f, 100) {
				hits++
			}
		}
	}
	if hits != 0 {
		t.Fatalf("LRU got %d hits on an over-capacity loop, want 0", hits)
	}
}

// And the fix: loop-aware eviction keeps a stable prefix resident, so most
// of the loop hits even when it exceeds capacity.
func TestLoopAwareSurvivesOverCapacityLoop(t *testing.T) {
	c := New(1000, LoopAware)
	const frames = 12
	var lateHits, lateTotal int
	for loop := 0; loop < 30; loop++ {
		for f := Key(0); f < frames; f++ {
			hit := c.Fetch(f, 100)
			if loop >= 20 { // measure steady state
				lateTotal++
				if hit {
					lateHits++
				}
			}
		}
	}
	ratio := float64(lateHits) / float64(lateTotal)
	if ratio < 0.5 {
		t.Fatalf("loop-aware steady-state hit ratio = %.2f, want >= 0.5", ratio)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopAwareDisengagesAfterLoopEnds(t *testing.T) {
	c := New(1000, LoopAware)
	// Drive it into loop mode.
	for loop := 0; loop < 10; loop++ {
		for f := Key(0); f < 12; f++ {
			c.Fetch(f, 100)
		}
	}
	if !c.Stats().LoopMode {
		t.Fatal("loop mode never engaged")
	}
	// Now a working set that fits: fresh keys, then repeated hits.
	for f := Key(100); f < 105; f++ {
		c.Fetch(f, 100)
	}
	for i := 0; i < 100; i++ {
		for f := Key(100); f < 105; f++ {
			c.Fetch(f, 100)
		}
	}
	if c.Stats().LoopMode {
		t.Fatal("loop mode stuck on after loop ended")
	}
}

func TestFitLoopAllHitsAfterFirstPass(t *testing.T) {
	for _, p := range []Policy{LRU, LoopAware} {
		c := New(1000, p)
		const frames = 10 // exactly fits
		misses := 0
		for loop := 0; loop < 5; loop++ {
			for f := Key(0); f < frames; f++ {
				if !c.Fetch(f, 100) {
					misses++
				}
			}
		}
		if misses != frames {
			t.Fatalf("%v: misses = %d, want %d (first pass only)", p, misses, frames)
		}
	}
}

func TestHitRatioDecaysOnOverflow(t *testing.T) {
	// Figure 6's cumulative ratio: UI bitmaps hit early (~70%), then an
	// over-capacity animation drives the cumulative ratio toward zero.
	c := NewDefault()
	// Prepopulate with UI chrome that keeps hitting.
	for k := Key(1000); k < 1010; k++ {
		c.Fetch(k, 2000)
	}
	for i := 0; i < 23; i++ {
		for k := Key(1000); k < 1010; k++ {
			c.Fetch(k, 2000)
		}
	}
	early := c.Stats().HitRatio()
	if early < 0.6 {
		t.Fatalf("early ratio = %.2f, want >= 0.6", early)
	}
	// 66 frames x 24 KB = 1.58 MB > 1.5 MB: overflows, loops forever.
	const frameBytes = 24 * 1024
	for loop := 0; loop < 40; loop++ {
		for f := Key(0); f < 66; f++ {
			c.Fetch(f, frameBytes)
		}
	}
	late := c.Stats().HitRatio()
	if late > early/2 {
		t.Fatalf("cumulative ratio %.2f did not decay from %.2f", late, early)
	}
}

func TestStatsReMisses(t *testing.T) {
	c := New(200, LRU)
	c.Fetch(1, 100)
	c.Fetch(2, 100)
	c.Fetch(3, 100) // evicts 1
	c.Fetch(1, 100) // re-miss
	if got := c.Stats().ReMisses; got != 1 {
		t.Fatalf("ReMisses = %d, want 1", got)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || LoopAware.String() != "loop-aware" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should stringify")
	}
}

// Property: invariants hold across arbitrary fetch sequences for both
// policies.
func TestInvariantsProperty(t *testing.T) {
	f := func(keys []uint16, policyBit bool) bool {
		policy := LRU
		if policyBit {
			policy = LoopAware
		}
		c := New(5000, policy)
		for _, k := range keys {
			size := int64(1 + int(k)%700)
			c.Fetch(Key(k%97), size)
			if c.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
