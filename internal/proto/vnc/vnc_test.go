package vnc

import (
	"testing"
	"testing/quick"

	"thinbench/internal/display"
)

func pair() (*Server, *Client) {
	return NewServer(DefaultConfig()), NewClient(DefaultConfig())
}

func TestDamageRectCoversBatch(t *testing.T) {
	srv, cli := pair()
	ops := []display.Op{
		display.FillRect{Rect: display.Rect{X: 10, Y: 10, W: 50, H: 40}, Color: 5},
		display.FillRect{Rect: display.Rect{X: 200, Y: 300, W: 20, H: 20}, Color: 9},
	}
	msgs := srv.Update(ops)
	if len(msgs) != 1 {
		t.Fatalf("VNC should ship one FramebufferUpdate per flush, got %d", len(msgs))
	}
	for _, m := range msgs {
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if !cli.Framebuffer().Equal(srv.Framebuffer().Bitmap) {
		t.Fatal("client diverged from server framebuffer")
	}
}

func TestRREWinsOnFlatContent(t *testing.T) {
	srv, _ := pair()
	// A mostly-flat region: RRE should beat Raw decisively.
	msgs := srv.Update([]display.Op{
		display.FillRect{Rect: display.Rect{X: 0, Y: 0, W: 200, H: 100}, Color: 3},
	})
	if got := msgs[0].Size(); got > 200 {
		t.Fatalf("flat 200x100 fill encoded as %d bytes; RRE not engaging", got)
	}
}

func TestRawWinsOnPhotoContent(t *testing.T) {
	srv, cli := pair()
	img := display.SyntheticPhoto(1, 0, 80, 60)
	msgs := srv.Update([]display.Op{display.PutBitmap{X: 5, Y: 5, Img: img}})
	// Raw: 16 header + 4800 pixels.
	if got := msgs[0].Size(); got < img.Bytes() {
		t.Fatalf("photo content encoded as %d bytes < raw %d; RRE misfired", got, img.Bytes())
	}
	for _, m := range msgs {
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if !cli.Framebuffer().Equal(srv.Framebuffer().Bitmap) {
		t.Fatal("photo round trip diverged")
	}
}

func TestStatelessnessAcrossRepeats(t *testing.T) {
	srv, _ := pair()
	img := display.SyntheticPhoto(2, 0, 64, 64)
	op := []display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}
	first := srv.Update(op)[0].Size()
	second := srv.Update(op)[0].Size()
	if second != first {
		t.Fatalf("VNC has no cache: repeat cost %d, first cost %d — must be equal", second, first)
	}
}

func TestPointerDeduplication(t *testing.T) {
	srv, cli := pair()
	events := []display.InputEvent{
		display.MouseMove{X: 10, Y: 10},
		display.MouseMove{X: 10, Y: 10}, // duplicate position
		display.MouseMove{X: 11, Y: 10},
	}
	var got []display.InputEvent
	for _, m := range cli.EncodeInput(events) {
		evs, err := srv.DecodeInput(m)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2 (duplicate position dropped)", len(got))
	}
}

func TestSetupBytesSmall(t *testing.T) {
	srv, _ := pair()
	if n := srv.SetupBytes(); n < 40 || n > 200 {
		t.Fatalf("RFB setup = %d bytes, expected a tiny handshake", n)
	}
}

func TestEmptyUpdateShipsNothing(t *testing.T) {
	srv, _ := pair()
	if msgs := srv.Update(nil); msgs != nil {
		t.Fatal("empty op batch produced messages")
	}
}

// Property: server and client framebuffers stay identical across random op
// batches.
func TestConvergenceProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		srv, cli := pair()
		state := seed
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		for i := 0; i < int(n)%8+1; i++ {
			var ops []display.Op
			for j := 0; j < next(3)+1; j++ {
				switch next(3) {
				case 0:
					ops = append(ops, display.FillRect{
						Rect:  display.Rect{X: next(700), Y: next(500), W: next(80) + 1, H: next(60) + 1},
						Color: byte(next(256))})
				case 1:
					ops = append(ops, display.PutBitmap{
						X: next(700), Y: next(500),
						Img: display.SyntheticFrame(uint64(next(99)), j, next(40)+2, next(30)+2)})
				default:
					ops = append(ops, display.DrawText{X: next(700), Y: next(500), Text: "vnc", Color: byte(next(256))})
				}
			}
			for _, m := range srv.Update(ops) {
				if err := cli.Apply(m); err != nil {
					return false
				}
			}
			if !cli.Framebuffer().Equal(srv.Framebuffer().Bitmap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
