// Package vnc implements a VNC-like remote display protocol, one of the
// two related-work comparators the paper discusses in §7 (Richardson et
// al., "Virtual Network Computing", IEEE Internet Computing 1998).
//
// Architecturally it differs from every drawing-order protocol in this
// repository: the server renders into its own framebuffer and ships
// *pixel rectangles* — the damaged region after each update — rather than
// drawing commands. Rectangles are encoded Raw or RRE (rise-and-run-length,
// an original RFB 3.3 encoding: a background color plus foreground
// subrectangles), whichever is smaller. There is no client-side cache, the
// property that puts VNC in the same camp as X and SLIM on animated
// content.
package vnc

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/proto"
)

// Rectangle encodings, numbered as in RFB.
const (
	encRaw      = 0
	encCopyRect = 1
	encRRE      = 2
)

// Input message types, as in RFB.
const (
	msgKeyEvent     = 4
	msgPointerEvent = 5
)

// Config parameterizes the endpoints.
type Config struct {
	// ScreenW, ScreenH size both framebuffers.
	ScreenW, ScreenH int
	// MaxRRESubrects bounds RRE analysis; damage with more distinct
	// foreground subrectangles ships Raw (RRE would expand).
	MaxRRESubrects int
}

// DefaultConfig sizes the session like the other protocols.
func DefaultConfig() Config {
	return Config{
		ScreenW:        display.TypicalScreenW,
		ScreenH:        display.TypicalScreenH,
		MaxRRESubrects: 64,
	}
}

// Server renders updates into a server-side framebuffer and encodes the
// damaged rectangle each flush.
type Server struct {
	cfg Config
	fb  *display.Framebuffer

	lastX, lastY int // pointer state from decoded input

	// Encoder scratch, reused across updates so the steady-state echo
	// pipeline allocates nothing: the pending damage list, the RRE
	// subrectangle analysis, the RRE body buffer, and the tape
	// UpdateScratch unboxes onto before delegating to UpdateTape.
	pending []display.Rect
	subs    []rreSub
	rreBuf  []byte
	enc     display.OpTape
}

// NewServer builds the application-side endpoint.
func NewServer(cfg Config) *Server {
	if cfg.ScreenW <= 0 {
		cfg = DefaultConfig()
	}
	return &Server{cfg: cfg, fb: display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH)}
}

// Name implements proto.Server.
func (s *Server) Name() string { return "vnc" }

// Framebuffer exposes the server's rendering, for tests.
func (s *Server) Framebuffer() *display.Framebuffer { return s.fb }

// SetupBytes implements proto.Server: the RFB handshake is tiny —
// ProtocolVersion exchange, security, ClientInit/ServerInit with the
// desktop name and pixel format.
func (s *Server) SetupBytes() int {
	return 12 + 12 + // ProtocolVersion both ways
		4 + 4 + // security negotiation
		1 + // ClientInit
		24 + len("thinbench-vnc") // ServerInit + name
}

// Update implements proto.Server: apply the ops to the server framebuffer,
// then ship one FramebufferUpdate carrying a rectangle per damaged region.
// On-screen copies (scrolling) become CopyRect rectangles — RFB's answer
// to scroll traffic; other damage merges where it overlaps, as a real RFB
// server's region tracking behaves.
//
// Ordering is load-bearing: a CopyRect reads the *client's* framebuffer,
// so pixel damage preceding a copy must be encoded from the server
// framebuffer as it stood before the copy executed. Pending damage is
// therefore encoded ("flushed") the moment a copy op arrives.
func (s *Server) Update(ops []display.Op) []proto.Message {
	return s.UpdateScratch(ops, &proto.Scratch{})
}

// UpdateScratch implements proto.ScratchServer by unboxing the op slice
// onto the server's scratch tape and delegating to UpdateTape, so the two
// entry points share one encoder and stay byte-identical by construction.
func (s *Server) UpdateScratch(ops []display.Op, sc *proto.Scratch) []proto.Message {
	if len(ops) == 0 {
		return nil
	}
	s.enc.Reset()
	s.enc.AppendOps(ops)
	return s.UpdateTape(&s.enc, 0, s.enc.Len(), sc)
}

// UpdateTape implements proto.TapeServer: tape entries [from, to) render
// into the server framebuffer through the concrete apply forms and encode
// into caller-owned scratch. Rectangles are written straight into one
// payload buffer in flush order with the rectangle count patched into the
// header afterward, and the damage list and RRE analysis scratch are reused
// across updates, so a warm encode allocates nothing.
//
//thinlint:hotpath
func (s *Server) UpdateTape(t *display.OpTape, from, to int, sc *proto.Scratch) []proto.Message {
	if to <= from {
		return nil
	}
	w := proto.WriterOver(sc.Buf)
	w.U8(0)  // FramebufferUpdate
	w.U8(0)  // pad
	w.U16(0) // rectangle count, patched below
	rects := 0
	s.pending = s.pending[:0]
	for i := from; i < to; i++ {
		if t.Kind(i) == display.KindCopy {
			// Encode prior damage from the pre-copy framebuffer state.
			rects = s.flushPending(&w, rects)
			src, dx, dy := t.CopyAt(i)
			s.fb.ApplyCopy(src, dx, dy)
			d := clipRect(display.Rect{X: dx, Y: dy, W: src.W, H: src.H}, s.cfg.ScreenW, s.cfg.ScreenH)
			if !d.Empty() {
				w.I16(int16(d.X)).I16(int16(d.Y))
				w.U16(uint16(d.W)).U16(uint16(d.H))
				w.U32(encCopyRect)
				w.I16(int16(src.X)).I16(int16(src.Y))
				rects++
			}
			continue
		}
		switch t.Kind(i) {
		case display.KindFill:
			r, color := t.FillAt(i)
			s.fb.ApplyFill(r, color)
		case display.KindText:
			x, y, text, color := t.TextAt(i)
			s.fb.ApplyText(x, y, text, color)
		case display.KindBlit:
			x, y, img := t.BlitAt(i)
			s.fb.ApplyBlit(x, y, img)
		}
		d := clipRect(t.BoundsAt(i), s.cfg.ScreenW, s.cfg.ScreenH)
		if !d.Empty() {
			s.pending = mergeRect(s.pending, d)
		}
	}
	rects = s.flushPending(&w, rects)
	b := w.Bytes()
	sc.Buf = b
	if rects == 0 {
		return nil
	}
	b[2] = byte(rects)
	b[3] = byte(rects >> 8)
	sc.Msgs = append(sc.Msgs[:0], proto.Message{Channel: proto.Display, Kind: "FramebufferUpdate", Payload: b})
	return sc.Msgs
}

// flushPending encodes every pending damage rectangle from the current
// framebuffer state and empties the list, returning the updated rectangle
// count.
//
//thinlint:hotpath
func (s *Server) flushPending(w *proto.Writer, rects int) int {
	for _, r := range s.pending {
		s.encodeRect(w, r)
		rects++
	}
	s.pending = s.pending[:0]
	return rects
}

// mergeRect adds r to the damage list, unioning it with any rectangle it
// intersects (repeatedly, since a union can create new intersections).
func mergeRect(rects []display.Rect, r display.Rect) []display.Rect {
	for {
		merged := false
		kept := rects[:0]
		for _, o := range rects {
			if intersects(r, o) {
				r = r.Union(o)
				merged = true
				continue
			}
			kept = append(kept, o)
		}
		rects = kept
		if !merged {
			return append(rects, r)
		}
	}
}

func intersects(a, b display.Rect) bool {
	return a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H
}

func clipRect(r display.Rect, w, h int) display.Rect {
	if r.X < 0 {
		r.W += r.X
		r.X = 0
	}
	if r.Y < 0 {
		r.H += r.Y
		r.Y = 0
	}
	if r.X+r.W > w {
		r.W = w - r.X
	}
	if r.Y+r.H > h {
		r.H = h - r.Y
	}
	return r
}

// encodeRect appends one damage rectangle encoded from the current
// framebuffer state: a 12-byte rectangle header plus Raw or RRE pixel
// data, whichever is smaller.
func (s *Server) encodeRect(w *proto.Writer, d display.Rect) {
	w.I16(int16(d.X)).I16(int16(d.Y))
	w.U16(uint16(d.W)).U16(uint16(d.H))
	if rre, ok := s.tryRRE(d); ok && len(rre) < d.W*d.H {
		w.U32(encRRE)
		w.U32(uint32(len(rre)))
		w.Raw(rre)
		return
	}
	w.U32(encRaw)
	for y := d.Y; y < d.Y+d.H; y++ {
		row := s.fb.Pix[y*s.fb.W+d.X : y*s.fb.W+d.X+d.W]
		w.Raw(row)
	}
}

// tryRRE analyzes the rectangle: most common color becomes the background;
// runs of other colors become subrectangles (height-1 runs, the simple
// variant). Fails when the subrect count exceeds the configured bound.
func (s *Server) tryRRE(d display.Rect) ([]byte, bool) {
	// Find the dominant color with a small histogram.
	var hist [256]int
	for y := d.Y; y < d.Y+d.H; y++ {
		for x := d.X; x < d.X+d.W; x++ {
			hist[s.fb.At(x, y)]++
		}
	}
	bg, best := byte(0), -1
	for c, n := range hist {
		if n > best {
			bg, best = byte(c), n
		}
	}
	subs := s.subs[:0]
	for y := d.Y; y < d.Y+d.H; y++ {
		x := d.X
		for x < d.X+d.W {
			c := s.fb.At(x, y)
			if c == bg {
				x++
				continue
			}
			run := 1
			for x+run < d.X+d.W && s.fb.At(x+run, y) == c {
				run++
			}
			subs = append(subs, rreSub{x - d.X, y - d.Y, run, c})
			if len(subs) > s.cfg.MaxRRESubrects {
				s.subs = subs
				return nil, false
			}
			x += run
		}
	}
	s.subs = subs
	w := proto.WriterOver(s.rreBuf)
	w.U32(uint32(len(subs)))
	w.U8(bg)
	for _, r := range subs {
		w.U8(r.color)
		w.U16(uint16(r.x)).U16(uint16(r.y))
		w.U16(uint16(r.w)).U16(1)
	}
	s.rreBuf = w.Bytes()
	return s.rreBuf, true
}

// rreSub is one RRE foreground subrectangle (height-1 run) found by tryRRE.
type rreSub struct {
	x, y, w int
	color   byte
}

// DecodeInput implements proto.Server: fixed-size RFB client messages, one
// per event.
func (s *Server) DecodeInput(m proto.Message) ([]display.InputEvent, error) {
	if m.Channel != proto.Input {
		return nil, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel)
	}
	r := proto.NewReader(m.Payload)
	var events []display.InputEvent
	for r.Remaining() > 0 {
		switch typ := r.U8(); typ {
		case msgKeyEvent:
			down := r.U8()
			r.U16() // pad
			key := r.U32()
			events = append(events, display.KeyEvent{Down: down != 0, Code: uint16(key)})
		case msgPointerEvent:
			mask := r.U8()
			x, y := r.I16(), r.I16()
			// Distinguish motion from clicks the way an RFB server does:
			// track pointer and button state.
			if int(x) != s.lastX || int(y) != s.lastY {
				events = append(events, display.MouseMove{X: int(x), Y: int(y)})
				s.lastX, s.lastY = int(x), int(y)
			}
			if mask&0x80 != 0 {
				events = append(events, display.MouseButton{Down: mask&1 != 0, Button: (mask >> 1) & 0x7})
			}
		default:
			return nil, fmt.Errorf("%w: unknown client message %d", proto.ErrBadMessage, typ)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return events, nil
}

// ValidateInput implements proto.InputValidator: the structural walk of
// DecodeInput — including the pointer-state tracking that distinguishes
// motion from clicks — without materializing the event slice. The two
// must accept and reject identical messages and leave identical state.
//
//thinlint:hotpath
func (s *Server) ValidateInput(m proto.Message) (int, error) {
	if m.Channel != proto.Input {
		return 0, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
	}
	r := proto.NewReader(m.Payload)
	n := 0
	for r.Remaining() > 0 {
		switch typ := r.U8(); typ {
		case msgKeyEvent:
			r.Skip(7) // down, pad, keysym
			n++
		case msgPointerEvent:
			mask := r.U8()
			x, y := r.I16(), r.I16()
			if int(x) != s.lastX || int(y) != s.lastY {
				n++
				s.lastX, s.lastY = int(x), int(y)
			}
			if mask&0x80 != 0 {
				n++
			}
		default:
			return 0, fmt.Errorf("%w: unknown client message %d", proto.ErrBadMessage, typ) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
		}
		if err := r.Err(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Client applies framebuffer updates and encodes RFB client messages.
type Client struct {
	cfg Config
	fb  *display.Framebuffer

	lastX, lastY int // pointer position carried on button events
}

// NewClient builds the terminal-side endpoint.
func NewClient(cfg Config) *Client {
	if cfg.ScreenW <= 0 {
		cfg = DefaultConfig()
	}
	return &Client{cfg: cfg, fb: display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH)}
}

// Name implements proto.Client.
func (c *Client) Name() string { return "vnc" }

// Framebuffer implements proto.Client.
func (c *Client) Framebuffer() *display.Framebuffer { return c.fb }

// Apply implements proto.Client.
func (c *Client) Apply(m proto.Message) error {
	r := proto.NewReader(m.Payload)
	if r.U8() != 0 {
		return fmt.Errorf("%w: not a FramebufferUpdate", proto.ErrBadMessage)
	}
	r.U8()
	nRects := int(r.U16())
	for i := 0; i < nRects; i++ {
		x, y := int(r.I16()), int(r.I16())
		w, h := int(r.U16()), int(r.U16())
		switch enc := r.U32(); enc {
		case encCopyRect:
			sx, sy := int(r.I16()), int(r.I16())
			if r.Err() != nil {
				return r.Err()
			}
			c.fb.Apply(display.CopyArea{Src: display.Rect{X: sx, Y: sy, W: w, H: h}, DstX: x, DstY: y})
		case encRaw:
			for yy := 0; yy < h; yy++ {
				row := r.Raw(w)
				if r.Err() != nil {
					return r.Err()
				}
				for xx := 0; xx < w; xx++ {
					c.fb.Set(x+xx, y+yy, row[xx])
				}
			}
		case encRRE:
			n := int(r.U32())
			body := proto.NewReader(r.Raw(n))
			if r.Err() != nil {
				return r.Err()
			}
			nSubs := int(body.U32())
			bg := body.U8()
			c.fb.Apply(display.FillRect{Rect: display.Rect{X: x, Y: y, W: w, H: h}, Color: bg})
			for s := 0; s < nSubs; s++ {
				color := body.U8()
				sx, sy := int(body.U16()), int(body.U16())
				sw, sh := int(body.U16()), int(body.U16())
				c.fb.Apply(display.FillRect{Rect: display.Rect{X: x + sx, Y: y + sy, W: sw, H: sh}, Color: color})
			}
			if err := body.Err(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown encoding %d", proto.ErrBadMessage, enc)
		}
	}
	return r.Err()
}

// EncodeInput implements proto.Client: one fixed-size message per event,
// all sharing a flush write (RFB clients write per event; the batch is one
// socket write).
func (c *Client) EncodeInput(events []display.InputEvent) []proto.Message {
	return c.EncodeInputScratch(events, &proto.Scratch{})
}

// EncodeInputScratch implements proto.ScratchClient: EncodeInput into
// caller-owned scratch, the zero-allocation steady-state form.
//
//thinlint:hotpath
func (c *Client) EncodeInputScratch(events []display.InputEvent, sc *proto.Scratch) []proto.Message {
	if len(events) == 0 {
		return nil
	}
	w := proto.WriterOver(sc.Buf)
	for _, ev := range events {
		switch e := ev.(type) {
		case display.KeyEvent:
			w.U8(msgKeyEvent)
			if e.Down {
				w.U8(1)
			} else {
				w.U8(0)
			}
			w.U16(0)
			w.U32(uint32(e.Code))
		case display.MouseMove:
			c.lastX, c.lastY = e.X, e.Y
			w.U8(msgPointerEvent)
			w.U8(0)
			w.I16(int16(e.X)).I16(int16(e.Y))
		case display.MouseButton:
			w.U8(msgPointerEvent)
			mask := uint8(0x80) | (e.Button&0x7)<<1
			if e.Down {
				mask |= 1
			}
			w.U8(mask)
			// Button events carry the current pointer position, so the
			// server sees no spurious motion.
			w.I16(int16(c.lastX)).I16(int16(c.lastY))
		default:
			panic(fmt.Sprintf("vnc: unsupported input event %T", ev))
		}
	}
	b := w.Bytes()
	sc.Buf = b
	sc.Msgs = append(sc.Msgs[:0], proto.Message{Channel: proto.Input, Kind: "ClientEvents", Payload: b})
	return sc.Msgs
}

// Compile-time interface conformance.
var (
	_ proto.Server         = (*Server)(nil)
	_ proto.Client         = (*Client)(nil)
	_ proto.ScratchServer  = (*Server)(nil)
	_ proto.TapeServer     = (*Server)(nil)
	_ proto.ScratchClient  = (*Client)(nil)
	_ proto.InputValidator = (*Server)(nil)
)
