// Package proto defines the wire-format core shared by the three remote
// display protocols of the reproduction: message framing, channel
// classification (the paper's display versus input channels), binary codec
// helpers, and transports (in-memory, and length-prefixed framing over any
// io.ReadWriter such as a real TCP connection).
//
// The protocol implementations live in the subpackages rdp (order-based,
// bitmap-cached, batched), xwire (X11-like verbose requests and 32-byte
// events), and lbx (a compressing proxy over xwire).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"thinbench/internal/display"
)

// Channel identifies the direction of a message, following the paper's
// definitions: the display channel carries server-to-client drawing
// traffic; the input channel carries client-to-server keystrokes and mouse
// events.
type Channel uint8

// Channels.
const (
	Display Channel = iota
	Input
)

func (c Channel) String() string {
	switch c {
	case Display:
		return "display"
	case Input:
		return "input"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// Message is one framed protocol message. Payload is the complete encoded
// message including any protocol-level header; len(Payload) is the wire
// size the paper's byte counts measure (IP/TCP overhead is accounted
// separately by the trace packetizer).
type Message struct {
	Channel Channel
	Kind    string // human-readable message kind for traces
	Payload []byte
}

// Size reports the message's wire size in bytes.
func (m Message) Size() int { return len(m.Payload) }

// Server is the application-side endpoint of a display protocol: it encodes
// screen updates and decodes input messages.
type Server interface {
	// Name identifies the protocol ("rdp", "x", "lbx").
	Name() string
	// Update encodes one screen update (a batch of drawing operations
	// produced by one application flush) into display-channel messages.
	Update(ops []display.Op) []Message
	// DecodeInput decodes an input-channel message into events.
	DecodeInput(m Message) ([]display.InputEvent, error)
	// SetupBytes reports the total session negotiation cost in bytes for
	// this protocol (both directions), the paper's §6.1.1 metric.
	SetupBytes() int
}

// Client is the terminal-side endpoint: it decodes display messages into a
// framebuffer and encodes input events.
type Client interface {
	// Name identifies the protocol.
	Name() string
	// Apply decodes a display-channel message and renders it.
	Apply(m Message) error
	// Framebuffer exposes the client's screen for verification.
	Framebuffer() *display.Framebuffer
	// EncodeInput encodes a batch of input events gathered during one
	// client-side flush interval into input-channel messages.
	EncodeInput(events []display.InputEvent) []Message
}

// Scratch is caller-owned reusable encode state for the zero-allocation
// Update/EncodeInput forms: the payload arena and the returned message
// slice both live here, so a steady-state encoder writes into memory the
// caller already owns instead of allocating per call. Messages returned
// from a scratch encode alias Buf — the caller must not reuse the Scratch
// until every message encoded into it has been consumed (for the
// simulator: delivered and applied).
type Scratch struct {
	Buf  []byte
	Msgs []Message
}

// ScratchServer is implemented by protocol servers whose Update can encode
// into caller-owned scratch. Semantics are identical to Update; only the
// allocation behavior differs.
type ScratchServer interface {
	UpdateScratch(ops []display.Op, sc *Scratch) []Message
}

// TapeServer is implemented by protocol servers that can encode a screen
// update directly from a display.OpTape window — the pointer-free,
// devirtualized form of UpdateScratch. Encoding entries [from, to) of t
// must produce byte-identical messages to UpdateScratch over the equivalent
// boxed op slice; the steady-state echo pipeline uses this form so no op is
// ever boxed into the display.Op interface.
type TapeServer interface {
	UpdateTape(t *display.OpTape, from, to int, sc *Scratch) []Message
}

// ScratchClient is implemented by protocol clients whose EncodeInput can
// encode into caller-owned scratch.
type ScratchClient interface {
	EncodeInputScratch(events []display.InputEvent, sc *Scratch) []Message
}

// SessionReusable is implemented by protocol endpoints whose state can be
// returned to the freshly constructed state without reallocating. After
// ResetSession every observable behavior — including the exact wire bytes
// of every subsequent encode — must match a brand-new endpoint of the same
// configuration: caches are emptied, directories cleared, counters zeroed;
// only the allocations survive. Session pools use it to recycle a departed
// user's codec pair for a same-seat successor.
type SessionReusable interface {
	ResetSession()
}

// InputValidator is implemented by protocol servers that can check an
// input message's structure without materializing the decoded events.
// ValidateInput must accept and reject exactly the messages DecodeInput
// does, returning the event count; callers that discard the decoded
// events (the simulator's echo path only needs the round-trip checked)
// use it to skip the decode allocations.
type InputValidator interface {
	ValidateInput(m Message) (int, error)
}

// ErrTruncated reports a message too short for its advertised structure.
var ErrTruncated = errors.New("proto: truncated message")

// ErrBadMessage reports a structurally invalid message.
var ErrBadMessage = errors.New("proto: malformed message")

// Writer builds binary payloads (little-endian, as RDP does; the X-like
// protocol reuses it since byte order is a connection-negotiated detail).
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity hint.
func NewWriter(capHint int) *Writer { return &Writer{buf: make([]byte, 0, capHint)} }

// WriterOver returns a Writer value appending into buf from length zero,
// keeping its capacity — the scratch-encoding form of NewWriter. The
// returned value can live on the caller's stack; take its address to call
// the append methods, and read Bytes back to recover the (possibly grown)
// buffer.
func WriterOver(buf []byte) Writer { return Writer{buf: buf[:0]} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the current payload size.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) *Writer { w.buf = append(w.buf, v); return w }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// I16 appends a little-endian int16.
func (w *Writer) I16(v int16) *Writer { return w.U16(uint16(v)) }

// Raw appends raw bytes.
func (w *Writer) Raw(b []byte) *Writer { w.buf = append(w.buf, b...); return w }

// Zero appends n zero bytes (fixed-size reserved fields, padding).
func (w *Writer) Zero(n int) *Writer {
	w.buf = append(w.buf, make([]byte, n)...)
	return w
}

// Pad4 pads to a 4-byte boundary, X-style.
func (w *Writer) Pad4() *Writer {
	for len(w.buf)%4 != 0 {
		w.buf = append(w.buf, 0)
	}
	return w
}

// Reader parses binary payloads written by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err reports the first decode error (ErrTruncated on overrun).
func (r *Reader) Err() error { return r.err }

// Remaining reports unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// I16 reads a little-endian int16.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// Raw reads n raw bytes (returned slice aliases the payload).
func (r *Reader) Raw(n int) []byte {
	if n < 0 {
		r.err = ErrBadMessage
		return nil
	}
	if !r.need(n) {
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// Skip discards n bytes.
func (r *Reader) Skip(n int) {
	if r.need(n) {
		r.off += n
	}
}

// Pad4 skips to the next 4-byte boundary.
func (r *Reader) Pad4() {
	for r.off%4 != 0 && r.err == nil {
		r.Skip(1)
	}
}

// Frame headers for the stream transport: 4-byte length + 1-byte channel +
// 1-byte kind-length + kind string, then the payload.
const frameHeader = 6

// WriteMessage frames a message onto a byte stream (net.Conn, net.Pipe).
func WriteMessage(w io.Writer, m Message) error {
	if len(m.Kind) > 255 {
		return fmt.Errorf("proto: kind %q too long", m.Kind)
	}
	hdr := make([]byte, 0, frameHeader+len(m.Kind))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(m.Payload)))
	hdr = append(hdr, byte(m.Channel), byte(len(m.Kind)))
	hdr = append(hdr, m.Kind...)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// ReadMessage reads one framed message from a byte stream.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > 64<<20 {
		return Message{}, fmt.Errorf("%w: frame of %d bytes", ErrBadMessage, n)
	}
	kindLen := int(hdr[5])
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kind); err != nil {
		return Message{}, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	return Message{Channel: Channel(hdr[4]), Kind: string(kind), Payload: payload}, nil
}
