package proto_test

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/slim"
	"thinbench/internal/proto/vnc"
	"thinbench/internal/proto/xwire"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := proto.NewWriter(32)
	w.U8(0xAB).U16(0x1234).U32(0xDEADBEEF).I16(-7).Raw([]byte{1, 2, 3}).Pad4().Zero(2)
	r := proto.NewReader(w.Bytes())
	if r.U8() != 0xAB || r.U16() != 0x1234 || r.U32() != 0xDEADBEEF || r.I16() != -7 {
		t.Fatal("scalar round trip failed")
	}
	if !bytes.Equal(r.Raw(3), []byte{1, 2, 3}) {
		t.Fatal("raw round trip failed")
	}
	r.Pad4()
	r.Skip(2)
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := proto.NewReader([]byte{1})
	r.U32()
	if r.Err() != proto.ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// After an error, everything returns zero values.
	if r.U8() != 0 || r.Raw(5) != nil {
		t.Fatal("post-error reads should be inert")
	}
	r2 := proto.NewReader([]byte{1, 2, 3})
	if r2.Raw(-1) != nil || r2.Err() == nil {
		t.Fatal("negative Raw should error")
	}
}

func TestMessageFramingOverBuffer(t *testing.T) {
	var buf bytes.Buffer
	in := proto.Message{Channel: proto.Input, Kind: "Events", Payload: []byte{9, 8, 7}}
	if err := proto.WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := proto.ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Channel != in.Channel || out.Kind != in.Kind || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestMessageFramingOverPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	msgs := []proto.Message{
		{Channel: proto.Display, Kind: "UpdatePDU", Payload: bytes.Repeat([]byte{0x55}, 5000)},
		{Channel: proto.Input, Kind: "InputPDU", Payload: []byte{1}},
	}
	go func() {
		for _, m := range msgs {
			proto.WriteMessage(a, m)
		}
	}()
	for _, want := range msgs {
		got, err := proto.ReadMessage(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatal("pipe round trip mismatch")
		}
	}
}

func TestChannelString(t *testing.T) {
	if proto.Display.String() != "display" || proto.Input.String() != "input" {
		t.Fatal("channel names wrong")
	}
	if proto.Channel(9).String() == "" {
		t.Fatal("unknown channel should stringify")
	}
}

// testOps is a representative op batch exercising every op type.
func testOps() []display.Op {
	return []display.Op{
		display.FillRect{Rect: display.Rect{X: 10, Y: 20, W: 100, H: 50}, Color: 3},
		display.DrawText{X: 15, Y: 25, Text: "hello, thin client", Color: 7},
		display.PutBitmap{X: 200, Y: 100, Img: display.SyntheticFrame(1, 0, 64, 48)},
		display.CopyArea{Src: display.Rect{X: 10, Y: 20, W: 40, H: 30}, DstX: 300, DstY: 220},
		display.DrawText{X: 15, Y: 45, Text: "hello again", Color: 7},
		display.PutBitmap{X: 400, Y: 300, Img: display.SyntheticFrame(2, 1, 32, 32)},
	}
}

// reference renders the same ops directly, bypassing any protocol.
func reference(ops []display.Op) *display.Framebuffer {
	fb := display.NewFramebuffer(display.TypicalScreenW, display.TypicalScreenH)
	for _, op := range ops {
		fb.Apply(op)
	}
	return fb
}

// endpoints builds a (server, client) pair per protocol, including the
// paper's §7 related-work comparators.
func endpoints(t *testing.T) map[string][2]any {
	t.Helper()
	return map[string][2]any{
		"x":    {xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH)},
		"rdp":  {rdp.NewServer(rdp.DefaultConfig()), rdp.NewClient(rdp.DefaultConfig())},
		"lbx":  {lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig())},
		"vnc":  {vnc.NewServer(vnc.DefaultConfig()), vnc.NewClient(vnc.DefaultConfig())},
		"slim": {slim.NewServer(slim.DefaultConfig()), slim.NewClient(slim.DefaultConfig())},
	}
}

func TestAllProtocolsReproducePixels(t *testing.T) {
	ops := testOps()
	want := reference(ops)
	for name, pair := range endpoints(t) {
		srv := pair[0].(proto.Server)
		cli := pair[1].(proto.Client)
		for _, m := range srv.Update(ops) {
			if err := cli.Apply(m); err != nil {
				t.Fatalf("%s: apply: %v", name, err)
			}
		}
		if !cli.Framebuffer().Equal(want.Bitmap) {
			t.Errorf("%s: client framebuffer does not match reference render", name)
		}
	}
}

func TestAllProtocolsRoundTripInput(t *testing.T) {
	events := []display.InputEvent{
		display.KeyEvent{Down: true, Code: 30},
		display.KeyEvent{Down: false, Code: 30},
		display.MouseMove{X: 100, Y: 200},
		display.MouseMove{X: 103, Y: 198},
		display.MouseButton{Down: true, Button: 1},
		display.MouseButton{Down: false, Button: 1},
		display.MouseMove{X: 500, Y: 400}, // large delta: LBX absolute escape
	}
	for name, pair := range endpoints(t) {
		srv := pair[0].(proto.Server)
		cli := pair[1].(proto.Client)
		var got []display.InputEvent
		for _, m := range cli.EncodeInput(events) {
			evs, err := srv.DecodeInput(m)
			if err != nil {
				t.Fatalf("%s: decode input: %v", name, err)
			}
			got = append(got, evs...)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: %d events decoded, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Errorf("%s: event %d = %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
}

func TestProtocolByteOrdering(t *testing.T) {
	// The paper's core network result: on a mixed interactive workload
	// (repeated photographic bitmaps, text, mouse motion), RDP moves the
	// fewest bytes, LBX is in between, X the most.
	ops := []display.Op{
		display.FillRect{Rect: display.Rect{X: 0, Y: 0, W: 300, H: 200}, Color: 2},
		display.DrawText{X: 10, Y: 10, Text: "document text being edited", Color: 1},
		display.PutBitmap{X: 50, Y: 50, Img: display.SyntheticPhoto(4, 0, 120, 90)},
		display.PutBitmap{X: 300, Y: 50, Img: display.SyntheticPhoto(4, 1, 120, 90)},
	}
	var motion []display.InputEvent
	for i := 0; i < 120; i++ {
		motion = append(motion, display.MouseMove{X: 100 + i, Y: 100 + i/3})
	}
	sizes := map[string]int{}
	for name, pair := range endpoints(t) {
		srv := pair[0].(proto.Server)
		cli := pair[1].(proto.Client)
		total := 0
		// Several passes: repeated UI content lets RDP's caches pay off,
		// as any real interaction does.
		for i := 0; i < 3; i++ {
			for _, m := range srv.Update(ops) {
				total += m.Size()
			}
			for _, m := range cli.EncodeInput(motion) {
				total += m.Size()
			}
		}
		sizes[name] = total
	}
	if !(sizes["rdp"] < sizes["lbx"] && sizes["lbx"] < sizes["x"]) {
		t.Fatalf("byte ordering violated: %v", sizes)
	}
}

func TestRDPCacheHitShrinksRepeatBitmaps(t *testing.T) {
	srv := rdp.NewServer(rdp.DefaultConfig())
	cli := rdp.NewClient(rdp.DefaultConfig())
	img := display.SyntheticFrame(9, 0, 100, 80)
	op := []display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}
	first, second := 0, 0
	for _, m := range srv.Update(op) {
		first += m.Size()
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range srv.Update(op) {
		second += m.Size()
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if second >= first/10 {
		t.Fatalf("cache hit PDU %dB not ≪ miss PDU %dB", second, first)
	}
	stats := srv.CacheStats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("cache stats = %+v", stats)
	}
	if cli.CachedBitmaps() == 0 {
		t.Fatal("client cached nothing")
	}
}

func TestRDPGlyphCachePayoff(t *testing.T) {
	srv := rdp.NewServer(rdp.DefaultConfig())
	op := []display.Op{display.DrawText{X: 0, Y: 0, Text: "abcabcabc", Color: 1}}
	var first, second int
	for _, m := range srv.Update(op) {
		first += m.Size()
	}
	for _, m := range srv.Update(op) {
		second += m.Size()
	}
	if second >= first {
		t.Fatalf("glyph cache: second text %dB not smaller than first %dB", second, first)
	}
}

func TestRDPOversizedBitmapIsOneShot(t *testing.T) {
	cfg := rdp.DefaultConfig()
	cfg.CacheBytes = 1024 // tiny cache
	srv := rdp.NewServer(cfg)
	cli := rdp.NewClient(cfg)
	img := display.SyntheticFrame(3, 0, 100, 100) // 10 KB > cache
	for i := 0; i < 3; i++ {
		for _, m := range srv.Update([]display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}) {
			if err := cli.Apply(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := reference([]display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}})
	if !cli.Framebuffer().Equal(want.Bitmap) {
		t.Fatal("one-shot path corrupted pixels")
	}
	if cli.CachedBitmaps() != 0 {
		t.Fatalf("client retained %d oversized bitmaps", cli.CachedBitmaps())
	}
}

func TestLBXFragmentsLargeTransfers(t *testing.T) {
	srv := lbx.NewServer(lbx.DefaultConfig())
	xsrv := xwire.NewServer()
	// Incompressible-ish large image: chunking should yield more messages
	// than X's single PutImage.
	img := display.SyntheticFrame(77, 0, 200, 150)
	ops := []display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}
	lbxMsgs := srv.Update(ops)
	xMsgs := xsrv.Update(ops)
	if len(lbxMsgs) <= len(xMsgs) {
		t.Fatalf("LBX sent %d messages vs X's %d; chunking missing", len(lbxMsgs), len(xMsgs))
	}
	// And fewer bytes.
	lbxBytes, xBytes := 0, 0
	for _, m := range lbxMsgs {
		lbxBytes += m.Size()
	}
	for _, m := range xMsgs {
		xBytes += m.Size()
	}
	if lbxBytes >= xBytes {
		t.Fatalf("LBX bytes %d not below X bytes %d", lbxBytes, xBytes)
	}
}

func TestLBXMotionDeltaCompression(t *testing.T) {
	cli := lbx.NewClient(lbx.DefaultConfig())
	xcli := xwire.NewClient(100, 100)
	// A smooth drag: 50 small motion deltas.
	var events []display.InputEvent
	for i := 0; i < 50; i++ {
		events = append(events, display.MouseMove{X: 10 + i, Y: 20 + i/2})
	}
	lbxBytes, xBytes := 0, 0
	for _, m := range cli.EncodeInput(events) {
		lbxBytes += m.Size()
	}
	for _, m := range xcli.EncodeInput(events) {
		xBytes += m.Size()
	}
	if lbxBytes*4 > xBytes {
		t.Fatalf("LBX motion bytes %d not ≪ X's %d", lbxBytes, xBytes)
	}
}

func TestSessionSetupCosts(t *testing.T) {
	// The paper's §6.1.1: 45,328 bytes for TSE, 16,312 for Linux/X.
	if got := rdp.NewServer(rdp.DefaultConfig()).SetupBytes(); got != 45328 {
		t.Errorf("RDP setup = %d bytes, want 45328", got)
	}
	if got := xwire.NewServer().SetupBytes(); got != 16312 {
		t.Errorf("X setup = %d bytes, want 16312", got)
	}
	lbxSetup := lbx.NewServer(lbx.DefaultConfig()).SetupBytes()
	if lbxSetup <= 16312 {
		t.Errorf("LBX setup = %d, should exceed X's (proxy negotiation)", lbxSetup)
	}
}

func TestBadInputsRejected(t *testing.T) {
	for name, pair := range endpoints(t) {
		srv := pair[0].(proto.Server)
		cli := pair[1].(proto.Client)
		if _, err := srv.DecodeInput(proto.Message{Channel: proto.Display, Kind: "x", Payload: []byte{1, 2, 3}}); err == nil {
			t.Errorf("%s: wrong-channel input accepted", name)
		}
		if err := cli.Apply(proto.Message{Channel: proto.Display, Kind: "junk", Payload: []byte{0xEE, 0xFF}}); err == nil {
			t.Errorf("%s: garbage display message accepted", name)
		}
	}
}

// Property: for random op sequences, every protocol reproduces the
// reference framebuffer exactly.
func TestPixelFidelityProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		ops := randomOps(seed, int(n)%12+1)
		want := reference(ops)
		for _, pair := range endpoints(t) {
			srv := pair[0].(proto.Server)
			cli := pair[1].(proto.Client)
			for _, m := range srv.Update(ops) {
				if err := cli.Apply(m); err != nil {
					return false
				}
			}
			if !cli.Framebuffer().Equal(want.Bitmap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomOps builds a deterministic pseudo-random op sequence.
func randomOps(seed uint64, n int) []display.Op {
	state := seed
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		v := int((state >> 33) % uint64(mod))
		return v
	}
	ops := make([]display.Op, 0, n)
	for i := 0; i < n; i++ {
		switch next(4) {
		case 0:
			ops = append(ops, display.FillRect{
				Rect:  display.Rect{X: next(700), Y: next(500), W: next(90) + 1, H: next(80) + 1},
				Color: byte(next(256)),
			})
		case 1:
			ops = append(ops, display.CopyArea{
				Src:  display.Rect{X: next(300), Y: next(300), W: next(50) + 1, H: next(50) + 1},
				DstX: next(700), DstY: next(500),
			})
		case 2:
			img := display.SyntheticFrame(uint64(next(1000)), i, next(60)+4, next(40)+4)
			ops = append(ops, display.PutBitmap{X: next(700), Y: next(500), Img: img})
		default:
			ops = append(ops, display.DrawText{X: next(700), Y: next(500), Text: "txt", Color: byte(next(255) + 1)})
		}
	}
	return ops
}
