// Package lbx implements a Low-Bandwidth-X-like protocol: a transcoding
// proxy over the xwire protocol that re-encodes verbose X requests into
// compact forms, delta-encodes input events (motion events shrink from 32
// bytes to 3), compresses large pixel payloads with DEFLATE, and splits
// the result into small framing chunks.
//
// The chunking is why the paper observes LBX sending 80% more display
// messages than X while moving half the bytes: compression shrinks
// payloads, but the proxy's framing fragments large transfers.
//
// Like the xwire package, this is a functional equivalent of LBX's
// documented behavior (Fulton & Kantarjiev 1993), not a byte-compatible
// implementation; one simplification is documented on Config.ChunkBytes
// and in DESIGN.md: compression is per-request rather than stream-wide.
package lbx

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/xwire"
)

// Compact message opcodes.
const (
	cFillRect  = 0x01
	cCopyArea  = 0x02
	cPutImage  = 0x03
	cText      = 0x04
	cEventPack = 0x05
)

// Chunk framing markers (first byte of every display-channel message).
const (
	frWhole    = 0x10 // complete compact message follows
	frChunk    = 0x11 // chunk of a fragmented message, more follow
	frChunkEnd = 0x12 // final chunk
)

// Input event opcodes inside an event pack.
const (
	iKey       = 0x01
	iMotionRel = 0x02
	iMotionAbs = 0x03
	iButton    = 0x04
)

// Config parameterizes the proxy.
type Config struct {
	// ChunkBytes is the proxy's framing unit; compact messages larger than
	// this are fragmented. (Real LBX frames over a stream-wide zlib
	// context; this implementation compresses per request so every message
	// is independently decodable, a documented simplification.)
	ChunkBytes int
	// CompressThreshold: payloads at or above this size get DEFLATE'd.
	CompressThreshold int
	// ScreenW, ScreenH size the client framebuffer.
	ScreenW, ScreenH int
}

// DefaultConfig mirrors LBX's small framing units.
func DefaultConfig() Config {
	return Config{
		ChunkBytes:        256,
		CompressThreshold: 128,
		ScreenW:           display.TypicalScreenW,
		ScreenH:           display.TypicalScreenH,
	}
}

// Server is the application-side proxy endpoint: it produces X requests via
// an embedded xwire server, transcodes them compactly, and fragments them.
type Server struct {
	cfg Config
	x   *xwire.Server

	// Motion delta state for input decoding.
	lastX, lastY int
}

// NewServer builds the application-side endpoint.
func NewServer(cfg Config) *Server {
	if cfg.ChunkBytes <= 8 {
		cfg.ChunkBytes = 256
	}
	return &Server{cfg: cfg, x: xwire.NewServer()}
}

// Name implements proto.Server.
func (s *Server) Name() string { return "lbx" }

// setupBytesTotal sums the proxied X handshake once at package init so
// per-admission SetupBytes calls don't rebuild it.
var setupBytesTotal = func() int {
	total := 146 // LBX proxy option negotiation
	for _, m := range xwire.SetupMessages() {
		total += m.Size()
	}
	return total
}()

// SetupBytes implements proto.Server: the X handshake passes through the
// proxy plus a small LBX negotiation of its own.
func (s *Server) SetupBytes() int { return setupBytesTotal }

// Update implements proto.Server: ops become X requests, each transcoded
// and (if large) fragmented.
func (s *Server) Update(ops []display.Op) []proto.Message {
	var out []proto.Message
	for _, xm := range s.x.Update(ops) {
		op, err := xwire.DecodeRequest(xm.Payload)
		if err != nil {
			panic(fmt.Sprintf("lbx: transcoding own xwire output failed: %v", err))
		}
		compact := encodeCompact(op, s.cfg.CompressThreshold)
		out = append(out, fragment(compact, xm.Kind, s.cfg.ChunkBytes)...)
	}
	return out
}

// encodeCompact re-encodes one drawing op into the proxy's compact form.
func encodeCompact(op display.Op, compressThreshold int) []byte {
	w := proto.NewWriter(16)
	switch o := op.(type) {
	case display.FillRect:
		w.U8(cFillRect)
		w.I16(int16(o.Rect.X)).I16(int16(o.Rect.Y))
		w.U16(uint16(o.Rect.W)).U16(uint16(o.Rect.H))
		w.U8(o.Color)
	case display.CopyArea:
		w.U8(cCopyArea)
		w.I16(int16(o.Src.X)).I16(int16(o.Src.Y))
		w.I16(int16(o.DstX)).I16(int16(o.DstY))
		w.U16(uint16(o.Src.W)).U16(uint16(o.Src.H))
	case display.PutBitmap:
		data := o.Img.Pix
		compressed := byte(0)
		if len(data) >= compressThreshold {
			if c := deflateBytes(data); len(c) < len(data) {
				data = c
				compressed = 1
			}
		}
		w.U8(cPutImage)
		w.I16(int16(o.X)).I16(int16(o.Y))
		w.U16(uint16(o.Img.W)).U16(uint16(o.Img.H))
		w.U8(compressed)
		w.U32(uint32(len(data)))
		w.Raw(data)
	case display.DrawText:
		if len(o.Text) > 255 {
			o.Text = o.Text[:255]
		}
		w.U8(cText)
		w.I16(int16(o.X)).I16(int16(o.Y))
		w.U8(o.Color)
		w.U8(uint8(len(o.Text)))
		w.Raw([]byte(o.Text))
	default:
		panic(fmt.Sprintf("lbx: unsupported op %T", op))
	}
	return w.Bytes()
}

// fragment wraps a compact message in framing, splitting it into chunks.
func fragment(compact []byte, kind string, chunkBytes int) []proto.Message {
	if len(compact)+1 <= chunkBytes {
		payload := append([]byte{frWhole}, compact...)
		return []proto.Message{{Channel: proto.Display, Kind: kind, Payload: payload}}
	}
	var out []proto.Message
	for off := 0; off < len(compact); off += chunkBytes - 1 {
		end := off + chunkBytes - 1
		marker := byte(frChunk)
		if end >= len(compact) {
			end = len(compact)
			marker = frChunkEnd
		}
		payload := append([]byte{marker}, compact[off:end]...)
		out = append(out, proto.Message{Channel: proto.Display, Kind: kind, Payload: payload})
	}
	return out
}

// DecodeInput implements proto.Server: unpack an event pack, applying
// motion deltas against the stream state.
func (s *Server) DecodeInput(m proto.Message) ([]display.InputEvent, error) {
	if m.Channel != proto.Input {
		return nil, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel)
	}
	r := proto.NewReader(m.Payload)
	if r.U8() != cEventPack {
		return nil, fmt.Errorf("%w: not an event pack", proto.ErrBadMessage)
	}
	n := int(r.U8())
	events := make([]display.InputEvent, 0, n)
	for i := 0; i < n; i++ {
		switch kind := r.U8(); kind {
		case iKey:
			v := r.U16()
			events = append(events, display.KeyEvent{Down: v&0x8000 != 0, Code: v & 0x7FFF})
		case iMotionRel:
			dx := int8(r.U8())
			dy := int8(r.U8())
			s.lastX += int(dx)
			s.lastY += int(dy)
			events = append(events, display.MouseMove{X: s.lastX, Y: s.lastY})
		case iMotionAbs:
			x, y := r.I16(), r.I16()
			s.lastX, s.lastY = int(x), int(y)
			events = append(events, display.MouseMove{X: s.lastX, Y: s.lastY})
		case iButton:
			flags := r.U8()
			events = append(events, display.MouseButton{Down: flags&1 != 0, Button: flags >> 1})
		default:
			return nil, fmt.Errorf("%w: unknown input kind %d", proto.ErrBadMessage, kind)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Client is the terminal-side proxy endpoint.
type Client struct {
	cfg Config
	fb  *display.Framebuffer

	partial []byte // chunk reassembly buffer

	lastX, lastY int
}

// NewClient builds the terminal-side endpoint.
func NewClient(cfg Config) *Client {
	if cfg.ScreenW <= 0 {
		cfg.ScreenW, cfg.ScreenH = display.TypicalScreenW, display.TypicalScreenH
	}
	return &Client{cfg: cfg, fb: display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH)}
}

// Name implements proto.Client.
func (c *Client) Name() string { return "lbx" }

// Framebuffer implements proto.Client.
func (c *Client) Framebuffer() *display.Framebuffer { return c.fb }

// Apply implements proto.Client: reassemble fragments, decode the compact
// message, render.
func (c *Client) Apply(m proto.Message) error {
	if len(m.Payload) == 0 {
		return proto.ErrTruncated
	}
	marker, body := m.Payload[0], m.Payload[1:]
	switch marker {
	case frWhole:
		return c.applyCompact(body)
	case frChunk:
		c.partial = append(c.partial, body...)
		return nil
	case frChunkEnd:
		full := append(c.partial, body...)
		c.partial = nil
		return c.applyCompact(full)
	default:
		return fmt.Errorf("%w: unknown frame marker %#x", proto.ErrBadMessage, marker)
	}
}

func (c *Client) applyCompact(b []byte) error {
	r := proto.NewReader(b)
	switch op := r.U8(); op {
	case cFillRect:
		x, y := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		color := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		c.fb.Apply(display.FillRect{Rect: display.Rect{X: int(x), Y: int(y), W: int(w), H: int(h)}, Color: color})
	case cCopyArea:
		sx, sy := r.I16(), r.I16()
		dx, dy := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		if r.Err() != nil {
			return r.Err()
		}
		c.fb.Apply(display.CopyArea{Src: display.Rect{X: int(sx), Y: int(sy), W: int(w), H: int(h)}, DstX: int(dx), DstY: int(dy)})
	case cPutImage:
		x, y := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		compressed := r.U8()
		n := int(r.U32())
		data := r.Raw(n)
		if r.Err() != nil {
			return r.Err()
		}
		if compressed == 1 {
			raw, err := inflateBytes(data, int(w)*int(h))
			if err != nil {
				return err
			}
			data = raw
		}
		if len(data) != int(w)*int(h) {
			return fmt.Errorf("%w: image payload %d for %dx%d", proto.ErrBadMessage, len(data), w, h)
		}
		img := display.NewBitmap(int(w), int(h))
		copy(img.Pix, data)
		c.fb.Apply(display.PutBitmap{X: int(x), Y: int(y), Img: img})
	case cText:
		x, y := r.I16(), r.I16()
		color := r.U8()
		n := int(r.U8())
		text := r.Raw(n)
		if r.Err() != nil {
			return r.Err()
		}
		c.fb.Apply(display.DrawText{X: int(x), Y: int(y), Text: string(text), Color: color})
	default:
		return fmt.Errorf("%w: unknown compact op %d", proto.ErrBadMessage, op)
	}
	return nil
}

// EncodeInput implements proto.Client: events gathered in one flush become
// one event pack with delta-encoded motion.
func (c *Client) EncodeInput(events []display.InputEvent) []proto.Message {
	if len(events) == 0 {
		return nil
	}
	if len(events) > 255 {
		events = events[:255]
	}
	w := proto.NewWriter(2 + len(events)*3)
	w.U8(cEventPack)
	w.U8(uint8(len(events)))
	for _, ev := range events {
		switch e := ev.(type) {
		case display.KeyEvent:
			v := e.Code & 0x7FFF
			if e.Down {
				v |= 0x8000
			}
			w.U8(iKey).U16(v)
		case display.MouseMove:
			dx, dy := e.X-c.lastX, e.Y-c.lastY
			if dx >= -128 && dx <= 127 && dy >= -128 && dy <= 127 {
				w.U8(iMotionRel).U8(uint8(int8(dx))).U8(uint8(int8(dy)))
			} else {
				w.U8(iMotionAbs).I16(int16(e.X)).I16(int16(e.Y))
			}
			c.lastX, c.lastY = e.X, e.Y
		case display.MouseButton:
			flags := e.Button << 1
			if e.Down {
				flags |= 1
			}
			w.U8(iButton).U8(flags)
		default:
			panic(fmt.Sprintf("lbx: unsupported input event %T", ev))
		}
	}
	return []proto.Message{{Channel: proto.Input, Kind: "EventPack", Payload: w.Bytes()}}
}

// deflateBytes compresses with DEFLATE at the default level.
func deflateBytes(src []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err) // only fails on invalid level
	}
	if _, err := zw.Write(src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// inflateBytes decompresses, expecting exactly want bytes.
func inflateBytes(src []byte, want int) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(src))
	defer zr.Close()
	out := make([]byte, 0, want)
	buf := make([]byte, 4096)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("lbx: inflate: %w", err)
		}
		if len(out) > want {
			return nil, fmt.Errorf("%w: inflated beyond expected %d bytes", proto.ErrBadMessage, want)
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("%w: inflated %d bytes, want %d", proto.ErrBadMessage, len(out), want)
	}
	return out, nil
}

// Compile-time interface conformance.
var (
	_ proto.Server = (*Server)(nil)
	_ proto.Client = (*Client)(nil)
)
