package lbx

import (
	"bytes"
	"testing"
	"testing/quick"

	"thinbench/internal/display"
	"thinbench/internal/proto"
)

func pair() (*Server, *Client) {
	return NewServer(DefaultConfig()), NewClient(DefaultConfig())
}

func TestDeflateRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{7}, 5000),
		display.SyntheticPhoto(1, 0, 50, 50).Pix,
		display.SyntheticFrame(1, 0, 50, 50).Pix,
	}
	for _, in := range cases {
		enc := deflateBytes(in)
		out, err := inflateBytes(enc, len(in))
		if err != nil {
			t.Fatalf("inflate(%d bytes): %v", len(in), err)
		}
		if !bytes.Equal(out, in) {
			t.Fatal("deflate round trip corrupted data")
		}
	}
}

func TestInflateRejectsWrongLength(t *testing.T) {
	enc := deflateBytes([]byte{1, 2, 3, 4})
	if _, err := inflateBytes(enc, 3); err == nil {
		t.Fatal("short expectation accepted")
	}
	if _, err := inflateBytes(enc, 5); err == nil {
		t.Fatal("long expectation accepted")
	}
}

func TestDeflateRoundTripProperty(t *testing.T) {
	f := func(in []byte) bool {
		out, err := inflateBytes(deflateBytes(in), len(in))
		return err == nil && bytes.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkReassembly(t *testing.T) {
	srv, cli := pair()
	img := display.SyntheticPhoto(5, 0, 120, 100) // 12 KB: many chunks
	ops := []display.Op{display.PutBitmap{X: 7, Y: 9, Img: img}}
	msgs := srv.Update(ops)
	if len(msgs) < 10 {
		t.Fatalf("12 KB image produced only %d chunks", len(msgs))
	}
	// Every chunk respects the framing bound.
	for _, m := range msgs {
		if m.Size() > DefaultConfig().ChunkBytes {
			t.Fatalf("chunk of %d bytes exceeds %d", m.Size(), DefaultConfig().ChunkBytes)
		}
	}
	for _, m := range msgs {
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	want := display.NewFramebuffer(DefaultConfig().ScreenW, DefaultConfig().ScreenH)
	want.Apply(ops[0])
	if !cli.Framebuffer().Equal(want.Bitmap) {
		t.Fatal("reassembled image diverged")
	}
}

func TestCompressionEngagesOnCompressibleContent(t *testing.T) {
	srv, _ := pair()
	flat := display.SyntheticFrame(1, 0, 100, 100) // blocky: compresses well
	photo := display.SyntheticPhoto(1, 0, 100, 100)
	flatBytes, photoBytes := 0, 0
	for _, m := range srv.Update([]display.Op{display.PutBitmap{X: 0, Y: 0, Img: flat}}) {
		flatBytes += m.Size()
	}
	for _, m := range srv.Update([]display.Op{display.PutBitmap{X: 0, Y: 0, Img: photo}}) {
		photoBytes += m.Size()
	}
	if flatBytes*3 > photoBytes {
		t.Fatalf("flat content %dB not ≪ photo %dB; DEFLATE not engaging", flatBytes, photoBytes)
	}
}

func TestMotionDeltaEscape(t *testing.T) {
	srv, cli := pair()
	events := []display.InputEvent{
		display.MouseMove{X: 100, Y: 100},
		display.MouseMove{X: 101, Y: 99},  // small delta: 3 bytes
		display.MouseMove{X: 700, Y: 500}, // large delta: absolute escape
	}
	var got []display.InputEvent
	for _, m := range cli.EncodeInput(events) {
		evs, err := srv.DecodeInput(m)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestBadFrameMarkerRejected(t *testing.T) {
	_, cli := pair()
	if err := cli.Apply(proto.Message{Channel: proto.Display, Kind: "x", Payload: []byte{0x99, 1, 2}}); err == nil {
		t.Fatal("unknown frame marker accepted")
	}
	if err := cli.Apply(proto.Message{Channel: proto.Display, Kind: "x", Payload: nil}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestSetupIncludesProxyNegotiation(t *testing.T) {
	srv, _ := pair()
	if srv.SetupBytes() != 16312+146 {
		t.Fatalf("LBX setup = %d, want X's 16,312 plus 146 proxy bytes", srv.SetupBytes())
	}
}
