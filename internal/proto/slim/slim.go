// Package slim implements a SLIM-like remote display protocol, the second
// related-work comparator of the paper's §7 (Schmidt, Lam & Northcutt,
// "The interactive performance of SLIM: a stateless, thin-client
// architecture", SOSP 1999 — the protocol inside Sun's SunRay).
//
// SLIM's design point is *statelessness*: a tiny fixed command set — SET
// (raw pixels), BITMAP (two-color bitmap, ideal for text), FILL (solid
// color), COPY (on-screen move) — with no client-side caching of any kind.
// The paper's observation, which this implementation reproduces, is that
// SLIM lands "roughly equivalent in performance to X": compact commands
// help, but without a bitmap cache, repeated and animated content costs
// full transfers every time.
package slim

import (
	"fmt"
	"unicode/utf8"

	"thinbench/internal/display"
	"thinbench/internal/proto"
)

// Command opcodes.
const (
	cmdSet    = 0x01 // raw pixel rectangle
	cmdBitmap = 0x02 // 1-bpp bitmap with foreground/background colors
	cmdFill   = 0x03 // solid rectangle
	cmdCopy   = 0x04 // on-screen copy
)

// Input event opcodes.
const (
	inKey     = 0x11
	inPointer = 0x12
	inButton  = 0x13
)

// Config sizes the endpoints.
type Config struct {
	ScreenW, ScreenH int
}

// DefaultConfig matches the other protocols' screen.
func DefaultConfig() Config {
	return Config{ScreenW: display.TypicalScreenW, ScreenH: display.TypicalScreenH}
}

// Server encodes display updates as SLIM commands; the protocol is
// stateless, so the server needs no session state at all beyond its name —
// exactly the property Schmidt et al. designed for. (The spans field is
// encoder scratch, not protocol state: per-update offset bookkeeping
// reused so steady-state encoding allocates nothing.)
type Server struct {
	cfg   Config
	spans []cmdSpan
	enc   display.OpTape
}

// cmdSpan records where one command landed in the shared payload buffer.
type cmdSpan struct {
	start, end int
	kind       string
}

// NewServer builds the application-side endpoint.
func NewServer(cfg Config) *Server {
	if cfg.ScreenW <= 0 {
		cfg = DefaultConfig()
	}
	return &Server{cfg: cfg}
}

// Name implements proto.Server.
func (s *Server) Name() string { return "slim" }

// SetupBytes implements proto.Server: SLIM's session setup is a minimal
// authentication and display-geometry exchange through the authentication
// manager.
func (s *Server) SetupBytes() int { return 642 }

// Update implements proto.Server: each operation becomes one command
// message (SLIM has no batching layer; the wire unit is the command).
func (s *Server) Update(ops []display.Op) []proto.Message {
	return s.UpdateScratch(ops, &proto.Scratch{})
}

// UpdateScratch implements proto.ScratchServer by unboxing the op slice
// onto the server's scratch tape and delegating to UpdateTape, so the two
// entry points share one encoder and stay byte-identical by construction.
func (s *Server) UpdateScratch(ops []display.Op, sc *proto.Scratch) []proto.Message {
	s.enc.Reset()
	s.enc.AppendOps(ops)
	return s.UpdateTape(&s.enc, 0, s.enc.Len(), sc)
}

// UpdateTape implements proto.TapeServer: the per-entry command messages
// are carved out of one shared payload arena — commands are encoded back to
// back with their offsets recorded, then sliced once the buffer has stopped
// growing — so a steady-state echo burst reuses a single buffer and message
// slice instead of allocating per command.
//
//thinlint:hotpath
func (s *Server) UpdateTape(t *display.OpTape, from, to int, sc *proto.Scratch) []proto.Message {
	w := proto.WriterOver(sc.Buf)
	spans := s.spans[:0]
	for i := from; i < to; i++ {
		start := w.Len()
		kind := encodeEntry(&w, t, i)
		spans = append(spans, cmdSpan{start: start, end: w.Len(), kind: kind})
	}
	s.spans = spans
	b := w.Bytes()
	sc.Buf = b
	sc.Msgs = sc.Msgs[:0]
	for _, sp := range spans {
		sc.Msgs = append(sc.Msgs, proto.Message{Channel: proto.Display, Kind: sp.kind, Payload: b[sp.start:sp.end]})
	}
	return sc.Msgs
}

func cmdHeader(w *proto.Writer, op uint8, x, y, width, height int) {
	w.U8(op)
	w.I16(int16(x)).I16(int16(y))
	w.U16(uint16(width)).U16(uint16(height))
}

// encodeEntry appends the command for tape entry i to the shared writer and
// returns its message kind.
//
//thinlint:hotpath
func encodeEntry(w *proto.Writer, t *display.OpTape, i int) string {
	switch t.Kind(i) {
	case display.KindFill:
		r, color := t.FillAt(i)
		cmdHeader(w, cmdFill, r.X, r.Y, r.W, r.H)
		w.U8(color)
		return "FILL"
	case display.KindCopy:
		src, dx, dy := t.CopyAt(i)
		cmdHeader(w, cmdCopy, src.X, src.Y, src.W, src.H)
		w.I16(int16(dx)).I16(int16(dy))
		return "COPY"
	case display.KindBlit:
		x, y, img := t.BlitAt(i)
		cmdHeader(w, cmdSet, x, y, img.W, img.H)
		w.Raw(img.Pix)
		return "SET"
	case display.KindText:
		// Text renders as a two-color BITMAP: 1 bpp glyph coverage plus
		// foreground color — SLIM's answer to fonts, far cheaper than SET.
		// The UTF-8 byte walk yields the same U+FFFD replacements a range
		// loop over the string would, glyph rows come from GlyphRowBits
		// instead of a mask bitmap, and the 255-rune cap matches the byte
		// count field as before.
		x, y, text, color := t.TextAt(i)
		n := display.CountRunes(text, 255)
		width := n * display.GlyphW
		height := display.GlyphH
		cmdHeader(w, cmdBitmap, x, y, width, height)
		w.U8(color)
		w.U8(0) // transparent background flag
		var cur byte
		bit := 0
		for yy := 0; yy < height; yy++ {
			ri := 0
			for off := 0; off < len(text) && ri < n; ri++ {
				r, size := utf8.DecodeRune(text[off:])
				off += size
				row := display.GlyphRowBits(r, yy)
				for xx := 0; xx < display.GlyphW; xx++ {
					if row>>uint(xx)&1 == 1 {
						cur |= 1 << uint(bit)
					}
					bit++
					if bit == 8 {
						w.U8(cur)
						cur, bit = 0, 0
					}
				}
			}
		}
		if bit > 0 {
			w.U8(cur)
		}
		return "BITMAP"
	default:
		panic(fmt.Sprintf("slim: unknown tape kind %d", t.Kind(i)))
	}
}

// DecodeInput implements proto.Server.
func (s *Server) DecodeInput(m proto.Message) ([]display.InputEvent, error) {
	if m.Channel != proto.Input {
		return nil, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel)
	}
	r := proto.NewReader(m.Payload)
	var events []display.InputEvent
	for r.Remaining() > 0 {
		switch typ := r.U8(); typ {
		case inKey:
			flags := r.U8()
			code := r.U16()
			events = append(events, display.KeyEvent{Down: flags&1 != 0, Code: code})
		case inPointer:
			x, y := r.I16(), r.I16()
			events = append(events, display.MouseMove{X: int(x), Y: int(y)})
		case inButton:
			flags := r.U8()
			events = append(events, display.MouseButton{Down: flags&1 != 0, Button: flags >> 1})
		default:
			return nil, fmt.Errorf("%w: unknown input type %d", proto.ErrBadMessage, typ)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return events, nil
}

// ValidateInput implements proto.InputValidator: DecodeInput's structural
// walk without materializing the event slice. The two must accept and
// reject identical messages.
//
//thinlint:hotpath
func (s *Server) ValidateInput(m proto.Message) (int, error) {
	if m.Channel != proto.Input {
		return 0, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
	}
	r := proto.NewReader(m.Payload)
	n := 0
	for r.Remaining() > 0 {
		switch typ := r.U8(); typ {
		case inKey:
			r.Skip(3) // flags, code
		case inPointer:
			r.Skip(4) // x, y
		case inButton:
			r.Skip(1) // flags
		default:
			return 0, fmt.Errorf("%w: unknown input type %d", proto.ErrBadMessage, typ) //thinlint:allow hotpath error path: runs only on a malformed input PDU, never in steady state
		}
		n++
		if err := r.Err(); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Client applies SLIM commands to its framebuffer.
type Client struct {
	cfg Config
	fb  *display.Framebuffer
}

// NewClient builds the terminal-side endpoint.
func NewClient(cfg Config) *Client {
	if cfg.ScreenW <= 0 {
		cfg = DefaultConfig()
	}
	return &Client{cfg: cfg, fb: display.NewFramebuffer(cfg.ScreenW, cfg.ScreenH)}
}

// Name implements proto.Client.
func (c *Client) Name() string { return "slim" }

// Framebuffer implements proto.Client.
func (c *Client) Framebuffer() *display.Framebuffer { return c.fb }

// Apply implements proto.Client.
func (c *Client) Apply(m proto.Message) error {
	r := proto.NewReader(m.Payload)
	op := r.U8()
	x, y := int(r.I16()), int(r.I16())
	w, h := int(r.U16()), int(r.U16())
	if err := r.Err(); err != nil {
		return err
	}
	switch op {
	case cmdFill:
		color := r.U8()
		if err := r.Err(); err != nil {
			return err
		}
		c.fb.Apply(display.FillRect{Rect: display.Rect{X: x, Y: y, W: w, H: h}, Color: color})
	case cmdCopy:
		dx, dy := int(r.I16()), int(r.I16())
		if err := r.Err(); err != nil {
			return err
		}
		c.fb.Apply(display.CopyArea{Src: display.Rect{X: x, Y: y, W: w, H: h}, DstX: dx, DstY: dy})
	case cmdSet:
		pix := r.Raw(w * h)
		if err := r.Err(); err != nil {
			return err
		}
		img := display.NewBitmap(w, h)
		copy(img.Pix, pix)
		c.fb.Apply(display.PutBitmap{X: x, Y: y, Img: img})
	case cmdBitmap:
		fg := r.U8()
		r.U8() // background flag (transparent)
		data := r.Raw((w*h + 7) / 8)
		if err := r.Err(); err != nil {
			return err
		}
		bit := 0
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				if data[bit/8]>>(uint(bit)%8)&1 == 1 {
					c.fb.Set(x+xx, y+yy, fg)
				}
				bit++
			}
		}
	default:
		return fmt.Errorf("%w: unknown command %d", proto.ErrBadMessage, op)
	}
	return nil
}

// EncodeInput implements proto.Client: compact fixed events sharing one
// flush write.
func (c *Client) EncodeInput(events []display.InputEvent) []proto.Message {
	return c.EncodeInputScratch(events, &proto.Scratch{})
}

// EncodeInputScratch implements proto.ScratchClient: EncodeInput into
// caller-owned scratch, the zero-allocation steady-state form.
//
//thinlint:hotpath
func (c *Client) EncodeInputScratch(events []display.InputEvent, sc *proto.Scratch) []proto.Message {
	if len(events) == 0 {
		return nil
	}
	w := proto.WriterOver(sc.Buf)
	for _, ev := range events {
		switch e := ev.(type) {
		case display.KeyEvent:
			flags := uint8(0)
			if e.Down {
				flags = 1
			}
			w.U8(inKey).U8(flags).U16(e.Code)
		case display.MouseMove:
			w.U8(inPointer).I16(int16(e.X)).I16(int16(e.Y))
		case display.MouseButton:
			flags := e.Button << 1
			if e.Down {
				flags |= 1
			}
			w.U8(inButton).U8(flags)
		default:
			panic(fmt.Sprintf("slim: unsupported input event %T", ev))
		}
	}
	b := w.Bytes()
	sc.Buf = b
	sc.Msgs = append(sc.Msgs[:0], proto.Message{Channel: proto.Input, Kind: "InputEvents", Payload: b})
	return sc.Msgs
}

// Compile-time interface conformance.
var (
	_ proto.Server         = (*Server)(nil)
	_ proto.Client         = (*Client)(nil)
	_ proto.ScratchServer  = (*Server)(nil)
	_ proto.TapeServer     = (*Server)(nil)
	_ proto.ScratchClient  = (*Client)(nil)
	_ proto.InputValidator = (*Server)(nil)
)
