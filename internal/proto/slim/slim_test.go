package slim

import (
	"testing"

	"thinbench/internal/display"
)

func pair() (*Server, *Client) {
	return NewServer(DefaultConfig()), NewClient(DefaultConfig())
}

func TestTextAsTwoColorBitmap(t *testing.T) {
	srv, cli := pair()
	op := display.DrawText{X: 20, Y: 30, Text: "sunray", Color: 6}
	msgs := srv.Update([]display.Op{op})
	if len(msgs) != 1 || msgs[0].Kind != "BITMAP" {
		t.Fatalf("text encoded as %v, want one BITMAP command", msgs)
	}
	// 1 bpp: payload ~ header + width*height/8, far below raw pixels.
	raw := len(op.Text) * display.GlyphW * display.GlyphH
	if msgs[0].Size() > raw/4 {
		t.Fatalf("BITMAP size %d not ≪ raw %d", msgs[0].Size(), raw)
	}
	if err := cli.Apply(msgs[0]); err != nil {
		t.Fatal(err)
	}
	want := display.NewFramebuffer(DefaultConfig().ScreenW, DefaultConfig().ScreenH)
	want.Apply(op)
	if !cli.Framebuffer().Equal(want.Bitmap) {
		t.Fatal("BITMAP text rendering diverged from reference")
	}
}

func TestSETIsRawAndStateless(t *testing.T) {
	srv, _ := pair()
	img := display.SyntheticPhoto(3, 0, 50, 40)
	op := []display.Op{display.PutBitmap{X: 0, Y: 0, Img: img}}
	a := srv.Update(op)[0].Size()
	b := srv.Update(op)[0].Size()
	if a != b {
		t.Fatal("SLIM is stateless; repeat cost must equal first cost")
	}
	if a < img.Bytes() {
		t.Fatalf("SET %d bytes < raw %d", a, img.Bytes())
	}
}

func TestFillAndCopyCompact(t *testing.T) {
	srv, _ := pair()
	msgs := srv.Update([]display.Op{
		display.FillRect{Rect: display.Rect{X: 1, Y: 2, W: 300, H: 200}, Color: 9},
		display.CopyArea{Src: display.Rect{X: 0, Y: 0, W: 100, H: 100}, DstX: 50, DstY: 50},
	})
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want one per command", len(msgs))
	}
	if msgs[0].Size() != 10 || msgs[1].Size() != 13 {
		t.Fatalf("FILL/COPY sizes = %d/%d, want 10/13", msgs[0].Size(), msgs[1].Size())
	}
}

func TestSetupTiny(t *testing.T) {
	srv, _ := pair()
	if n := srv.SetupBytes(); n > 2000 {
		t.Fatalf("SLIM setup = %d bytes; the protocol's point is minimal session state", n)
	}
}

func TestBitmapBitPackingWidthNotMultipleOf8(t *testing.T) {
	// 3 glyphs = 24 px wide; 13 rows = 312 bits = 39 bytes exactly; also
	// try 1 glyph (8 px * 13 = 104 bits = 13 bytes).
	for _, text := range []string{"abc", "x", "hello"} {
		srv, cli := pair()
		op := display.DrawText{X: 3, Y: 7, Text: text, Color: 2}
		for _, m := range srv.Update([]display.Op{op}) {
			if err := cli.Apply(m); err != nil {
				t.Fatalf("%q: %v", text, err)
			}
		}
		want := display.NewFramebuffer(DefaultConfig().ScreenW, DefaultConfig().ScreenH)
		want.Apply(op)
		if !cli.Framebuffer().Equal(want.Bitmap) {
			t.Fatalf("%q: bit packing corrupted glyphs", text)
		}
	}
}
