package protos_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/protos"
	"thinbench/internal/simclock"
)

// opGen draws randomized display-op streams: every op kind, geometry
// hanging off the screen edges, multi-byte text, and a bitmap pool reused
// across rounds so cache-bearing protocols exercise hits as well as misses.
type opGen struct {
	r    *simclock.Rand
	w, h int
	imgs []*display.Bitmap
}

func (g *opGen) bitmap() *display.Bitmap {
	if len(g.imgs) > 0 && g.r.Intn(2) == 0 {
		return g.imgs[g.r.Intn(len(g.imgs))]
	}
	img := display.NewBitmap(1+g.r.Intn(24), 1+g.r.Intn(16))
	for i := range img.Pix {
		img.Pix[i] = byte(g.r.Uint64())
	}
	g.imgs = append(g.imgs, img)
	return img
}

func (g *opGen) rect() display.Rect {
	return display.Rect{X: g.r.Intn(g.w), Y: g.r.Intn(g.h), W: 1 + g.r.Intn(64), H: 1 + g.r.Intn(32)}
}

// tapeAlphabet includes multi-byte runes so the tape's UTF-8 arena is
// exercised, not just ASCII.
var tapeAlphabet = []rune("abcdefghijklmnopqrstuvwxyz0123456789 éλ→")

func (g *opGen) op() display.Op {
	switch g.r.Intn(4) {
	case 0:
		return display.FillRect{Rect: g.rect(), Color: byte(g.r.Intn(256))}
	case 1:
		return display.CopyArea{Src: g.rect(), DstX: g.r.Intn(g.w), DstY: g.r.Intn(g.h)}
	case 2:
		s := make([]rune, 1+g.r.Intn(12))
		for i := range s {
			s[i] = tapeAlphabet[g.r.Intn(len(tapeAlphabet))]
		}
		return display.DrawText{X: g.r.Intn(g.w), Y: g.r.Intn(g.h), Text: string(s), Color: byte(g.r.Intn(256))}
	default:
		return display.PutBitmap{X: g.r.Intn(g.w), Y: g.r.Intn(g.h), Img: g.bitmap()}
	}
}

func (g *opGen) batch() []display.Op {
	ops := make([]display.Op, 1+g.r.Intn(6))
	for i := range ops {
		ops[i] = g.op()
	}
	return ops
}

// TestTapeMatchesOpsRandomStreams is the op-tape equivalence property
// test, in the calendar-vs-heap style: two independent endpoint pairs of
// the same protocol consume identical randomized op streams, one through
// the boxed []display.Op Update path and one through the pointer-free
// OpTape UpdateTape path. Every update must encode byte-identical
// messages and leave both client framebuffers pixel-identical, and every
// tape window must round-trip losslessly back to the boxed ops it came
// from — including windows that start mid-tape, where the absolute text
// offsets and bitmap indices earn their keep.
func TestTapeMatchesOpsRandomStreams(t *testing.T) {
	for _, name := range []string{"rdp", "vnc", "slim"} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s_seed%d", name, seed), func(t *testing.T) {
				srvA, cliA, _, err := protos.New(name)
				if err != nil {
					t.Fatal(err)
				}
				srvB, cliB, _, err := protos.New(name)
				if err != nil {
					t.Fatal(err)
				}
				tsrv, ok := srvB.(proto.TapeServer)
				if !ok {
					t.Fatalf("%s server does not implement proto.TapeServer", name)
				}
				fbA, fbB := cliA.Framebuffer(), cliB.Framebuffer()
				g := &opGen{r: simclock.NewRand(seed), w: fbA.W, h: fbA.H}
				var tape display.OpTape
				var sc proto.Scratch
				for round := 0; round < 200; round++ {
					ops := g.batch()
					tape.Reset()
					from := 0
					if g.r.Intn(3) == 0 {
						// A decoy prefix forces a strict [from, to) encode
						// window over non-zero arena offsets.
						tape.AppendOps(g.batch())
						from = tape.Len()
					}
					tape.AppendOps(ops)
					if got := tape.AppendTo(nil, from, tape.Len()); !reflect.DeepEqual(got, ops) {
						t.Fatalf("round %d: tape round-trip mismatch:\n got %#v\nwant %#v", round, got, ops)
					}
					msgsA := srvA.Update(ops)
					msgsB := tsrv.UpdateTape(&tape, from, tape.Len(), &sc)
					if len(msgsA) != len(msgsB) {
						t.Fatalf("round %d: ops encode %d messages, tape %d", round, len(msgsA), len(msgsB))
					}
					for i := range msgsA {
						a, b := msgsA[i], msgsB[i]
						if a.Channel != b.Channel || a.Kind != b.Kind || !bytes.Equal(a.Payload, b.Payload) {
							t.Fatalf("round %d message %d (%s): tape and ops encodes differ", round, i, a.Kind)
						}
						if err := cliA.Apply(a); err != nil {
							t.Fatalf("round %d: ops apply: %v", round, err)
						}
						if err := cliB.Apply(b); err != nil {
							t.Fatalf("round %d: tape apply: %v", round, err)
						}
					}
					if !fbA.Bitmap.Equal(fbB.Bitmap) {
						t.Fatalf("round %d: client framebuffers diverged", round)
					}
				}
			})
		}
	}
}
