// Package protos is the registry of remote display protocol
// implementations: one constructor keyed by the protocol's short name, so
// that every consumer — the shared-server contention model, the trace
// tools, the TCP streamer — builds endpoint pairs the same way instead of
// each maintaining its own switch.
//
// It lives beside the proto core rather than inside it because the core is
// imported by every codec; the registry imports every codec.
package protos

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/proto"
	"thinbench/internal/proto/lbx"
	"thinbench/internal/proto/rdp"
	"thinbench/internal/proto/slim"
	"thinbench/internal/proto/vnc"
	"thinbench/internal/proto/xwire"
	"thinbench/internal/simclock"
)

// Opts carries each protocol's characteristic client/server flushing
// behavior, used by trace replay and the shared-server session pipelines.
type Opts struct {
	// InputCoalesce merges input batches closer together than this into
	// one EncodeInput call (TSE coalesces aggressively; X flushes at
	// event-queue granularity).
	InputCoalesce simclock.Duration
	// DisplayCoalesce merges display batches within the window into one
	// Update call (TSE aggregates damage on a timer; X requests flow
	// individually).
	DisplayCoalesce simclock.Duration
}

// Names lists the registered protocol names in canonical order.
func Names() []string { return []string{"rdp", "x", "lbx", "vnc", "slim"} }

// New builds a fresh server/client endpoint pair for the named protocol
// with its default configuration and flushing behavior.
func New(name string) (proto.Server, proto.Client, Opts, error) {
	switch name {
	case "rdp":
		cfg := rdp.DefaultConfig()
		// The TSE client samples pointer motion rather than forwarding
		// every event; 1-in-8 is the registry's canonical RDP input
		// behavior for every consumer (it was previously a prototap-only
		// tweak, so thinserve's RDP input bytes changed when it moved
		// here).
		cfg.MotionSample = 8
		return rdp.NewServer(cfg), rdp.NewClient(cfg), Opts{
			InputCoalesce:   500 * simclock.Millisecond,
			DisplayCoalesce: simclock.Second,
		}, nil
	case "x":
		return xwire.NewServer(), xwire.NewClient(display.TypicalScreenW, display.TypicalScreenH), Opts{}, nil
	case "lbx":
		return lbx.NewServer(lbx.DefaultConfig()), lbx.NewClient(lbx.DefaultConfig()), Opts{
			InputCoalesce: 75 * simclock.Millisecond,
		}, nil
	case "vnc":
		return vnc.NewServer(vnc.DefaultConfig()), vnc.NewClient(vnc.DefaultConfig()), Opts{
			DisplayCoalesce: 100 * simclock.Millisecond,
		}, nil
	case "slim":
		return slim.NewServer(slim.DefaultConfig()), slim.NewClient(slim.DefaultConfig()), Opts{}, nil
	default:
		return nil, nil, Opts{}, fmt.Errorf("protos: unknown protocol %q", name)
	}
}
