package xwire

import (
	"testing"

	"thinbench/internal/display"
	"thinbench/internal/proto"
)

func TestRequestSizesMatchX11(t *testing.T) {
	srv := NewServer()
	cases := []struct {
		op   display.Op
		kind string
		size int
	}{
		{display.FillRect{Rect: display.Rect{X: 1, Y: 2, W: 3, H: 4}, Color: 5}, "PolyFillRectangle", 24},
		{display.CopyArea{Src: display.Rect{X: 1, Y: 2, W: 3, H: 4}, DstX: 5, DstY: 6}, "CopyArea", 28},
		// PutImage: 24-byte header + pixels padded to 4.
		{display.PutBitmap{X: 0, Y: 0, Img: display.NewBitmap(10, 3)}, "PutImage", 24 + 32},
		// PolyText8: 20-byte fixed part + text padded to 4.
		{display.DrawText{X: 0, Y: 0, Text: "ab", Color: 1}, "PolyText8", 24},
	}
	for _, c := range cases {
		msgs := srv.Update([]display.Op{c.op})
		if len(msgs) != 1 {
			t.Fatalf("%s: %d messages", c.kind, len(msgs))
		}
		if msgs[0].Kind != c.kind {
			t.Errorf("kind = %s, want %s", msgs[0].Kind, c.kind)
		}
		if msgs[0].Size() != c.size {
			t.Errorf("%s: size = %d, want %d", c.kind, msgs[0].Size(), c.size)
		}
	}
}

func TestEveryEventIs32Bytes(t *testing.T) {
	cli := NewClient(100, 100)
	events := []display.InputEvent{
		display.KeyEvent{Down: true, Code: 30},
		display.MouseMove{X: 1, Y: 2},
		display.MouseButton{Down: true, Button: 3},
	}
	msgs := cli.EncodeInput(events)
	if len(msgs) != 1 {
		t.Fatalf("one flush should produce one message, got %d", len(msgs))
	}
	if msgs[0].Size() != len(events)*EventSize {
		t.Fatalf("payload = %d bytes, want %d (32 per event)", msgs[0].Size(), len(events)*EventSize)
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{99, 0, 4, 0}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	if _, err := DecodeRequest([]byte{70, 0}); err == nil {
		t.Fatal("truncated request accepted")
	}
}

func TestSetupTotalsPaperValue(t *testing.T) {
	total := 0
	for _, m := range SetupMessages() {
		total += m.Size()
		if len(m.Payload) < 4 {
			t.Fatalf("setup message %s too small", m.Kind)
		}
	}
	if total != 16312 {
		t.Fatalf("setup total = %d, paper reports 16,312", total)
	}
}

func TestLongTextTruncatesSafely(t *testing.T) {
	srv := NewServer()
	cli := NewClient(display.TypicalScreenW, display.TypicalScreenH)
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	msgs := srv.Update([]display.Op{display.DrawText{X: 0, Y: 0, Text: string(long), Color: 1}})
	for _, m := range msgs {
		if err := cli.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInputEventCountMultipleRejected(t *testing.T) {
	srv := NewServer()
	_, err := srv.DecodeInput(proto.Message{Channel: proto.Input, Kind: "Events", Payload: make([]byte, 33)})
	if err == nil {
		t.Fatal("non-multiple-of-32 input accepted")
	}
}
