// Package xwire implements an X11-like remote display protocol: verbose
// fixed-layout requests on the display channel, 32-byte events on the input
// channel, raw (uncached, uncompressed) pixel pushes for image data, and a
// multi-kilobyte connection setup.
//
// It is a functional equivalent of the X protocol core rather than a
// byte-compatible implementation: request and event sizes match X's (a
// PutImage is 24 bytes plus padded pixels, every input event is a fixed 32
// bytes), which is what drives the paper's network results. Text drawing
// follows X's model of server-side fonts: glyph pixels never cross the
// wire, only string bytes do.
package xwire

import (
	"fmt"

	"thinbench/internal/display"
	"thinbench/internal/proto"
)

// Request opcodes, numbered as in the X11 core protocol.
const (
	opCopyArea     = 62
	opPolyFillRect = 70
	opPutImage     = 72
	opPolyText8    = 74
)

// Event codes, as in X11.
const (
	evKeyPress      = 2
	evKeyRelease    = 3
	evButtonPress   = 4
	evButtonRelease = 5
	evMotionNotify  = 6
)

// EventSize is X's fixed wire size for every input event.
const EventSize = 32

// ids used for the session-constant drawable and graphics context fields
// that X carries in every request.
const (
	drawableID = 0x00400001
	gcID       = 0x00400002
)

// Server encodes screen updates as X requests and decodes X events.
type Server struct {
	seq uint16
}

// NewServer builds the application-side endpoint.
func NewServer() *Server { return &Server{} }

// Name implements proto.Server.
func (s *Server) Name() string { return "x" }

// setupBytesTotal sums SetupMessages once at package init so per-admission
// SetupBytes calls don't rebuild the handshake exchange.
var setupBytesTotal = func() int {
	total := 0
	for _, m := range SetupMessages() {
		total += m.Size()
	}
	return total
}()

// SetupBytes implements proto.Server: the total connection establishment
// cost. See SetupMessages for the breakdown.
func (s *Server) SetupBytes() int { return setupBytesTotal }

// Update implements proto.Server: every drawing operation becomes its own
// request message — X has no server-side batching of the kind RDP performs.
func (s *Server) Update(ops []display.Op) []proto.Message {
	msgs := make([]proto.Message, 0, len(ops))
	for _, op := range ops {
		msgs = append(msgs, encodeRequest(op))
	}
	return msgs
}

func reqHeader(w *proto.Writer, opcode uint8, aux uint8) {
	w.U8(opcode).U8(aux)
	// Length field is patched after the body is written.
	w.U16(0)
}

func patchLength(w *proto.Writer) []byte {
	b := w.Bytes()
	n := len(b)
	b[2] = byte(n)
	b[3] = byte(n >> 8)
	return b
}

func encodeRequest(op display.Op) proto.Message {
	switch o := op.(type) {
	case display.FillRect:
		w := proto.NewWriter(24)
		reqHeader(w, opPolyFillRect, 0)
		w.U32(drawableID).U32(gcID)
		w.I16(int16(o.Rect.X)).I16(int16(o.Rect.Y))
		w.U16(uint16(o.Rect.W)).U16(uint16(o.Rect.H))
		w.U8(o.Color).Zero(3)
		return proto.Message{Channel: proto.Display, Kind: "PolyFillRectangle", Payload: patchLength(w)}
	case display.CopyArea:
		w := proto.NewWriter(28)
		reqHeader(w, opCopyArea, 0)
		w.U32(drawableID).U32(drawableID).U32(gcID)
		w.I16(int16(o.Src.X)).I16(int16(o.Src.Y))
		w.I16(int16(o.DstX)).I16(int16(o.DstY))
		w.U16(uint16(o.Src.W)).U16(uint16(o.Src.H))
		return proto.Message{Channel: proto.Display, Kind: "CopyArea", Payload: patchLength(w)}
	case display.PutBitmap:
		w := proto.NewWriter(24 + o.Img.Bytes() + 4)
		reqHeader(w, opPutImage, 2 /* ZPixmap */)
		w.U32(drawableID).U32(gcID)
		w.U16(uint16(o.Img.W)).U16(uint16(o.Img.H))
		w.I16(int16(o.X)).I16(int16(o.Y))
		w.U8(8 /* depth */).Zero(3)
		w.Raw(o.Img.Pix).Pad4()
		return proto.Message{Channel: proto.Display, Kind: "PutImage", Payload: patchLength(w)}
	case display.DrawText:
		if len(o.Text) > 255 {
			o.Text = o.Text[:255]
		}
		w := proto.NewWriter(16 + len(o.Text) + 4)
		reqHeader(w, opPolyText8, 0)
		w.U32(drawableID).U32(gcID)
		w.I16(int16(o.X)).I16(int16(o.Y))
		w.U8(o.Color).U8(uint8(len(o.Text))).Zero(2)
		w.Raw([]byte(o.Text)).Pad4()
		return proto.Message{Channel: proto.Display, Kind: "PolyText8", Payload: patchLength(w)}
	default:
		panic(fmt.Sprintf("xwire: unsupported op %T", op))
	}
}

// DecodeInput implements proto.Server: an input message holds one or more
// fixed 32-byte events.
func (s *Server) DecodeInput(m proto.Message) ([]display.InputEvent, error) {
	if m.Channel != proto.Input {
		return nil, fmt.Errorf("%w: input decode of %v message", proto.ErrBadMessage, m.Channel)
	}
	if len(m.Payload)%EventSize != 0 {
		return nil, fmt.Errorf("%w: input payload %d not a multiple of %d", proto.ErrBadMessage, len(m.Payload), EventSize)
	}
	var events []display.InputEvent
	for off := 0; off < len(m.Payload); off += EventSize {
		r := proto.NewReader(m.Payload[off : off+EventSize])
		typ := r.U8()
		detail := r.U8()
		r.U16() // sequence
		r.U32() // time
		r.U32() // root window
		r.U32() // event window
		r.U32() // child window
		r.I16() // rootX
		r.I16() // rootY
		ex := r.I16()
		ey := r.I16()
		r.U16() // state
		r.U8()  // same-screen
		r.U8()  // pad
		if err := r.Err(); err != nil {
			return nil, err
		}
		switch typ {
		case evKeyPress:
			events = append(events, display.KeyEvent{Down: true, Code: uint16(detail)})
		case evKeyRelease:
			events = append(events, display.KeyEvent{Down: false, Code: uint16(detail)})
		case evButtonPress:
			events = append(events, display.MouseButton{Down: true, Button: detail})
		case evButtonRelease:
			events = append(events, display.MouseButton{Down: false, Button: detail})
		case evMotionNotify:
			events = append(events, display.MouseMove{X: int(ex), Y: int(ey)})
		default:
			return nil, fmt.Errorf("%w: unknown event type %d", proto.ErrBadMessage, typ)
		}
	}
	return events, nil
}

// Client decodes X requests into a framebuffer and encodes input events.
type Client struct {
	fb  *display.Framebuffer
	seq uint16
}

// NewClient builds the terminal-side endpoint with the given screen size.
func NewClient(w, h int) *Client {
	return &Client{fb: display.NewFramebuffer(w, h)}
}

// Name implements proto.Client.
func (c *Client) Name() string { return "x" }

// Framebuffer implements proto.Client.
func (c *Client) Framebuffer() *display.Framebuffer { return c.fb }

// Apply implements proto.Client.
func (c *Client) Apply(m proto.Message) error {
	op, err := DecodeRequest(m.Payload)
	if err != nil {
		return err
	}
	c.fb.Apply(op)
	return nil
}

// DecodeRequest parses one encoded X request into a drawing operation.
// It is exported for the LBX proxy, which transcodes X requests.
func DecodeRequest(payload []byte) (display.Op, error) {
	r := proto.NewReader(payload)
	opcode := r.U8()
	aux := r.U8()
	r.U16() // length
	switch opcode {
	case opPolyFillRect:
		r.U32()
		r.U32()
		x, y := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		color := r.U8()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return display.FillRect{Rect: display.Rect{X: int(x), Y: int(y), W: int(w), H: int(h)}, Color: color}, nil
	case opCopyArea:
		r.U32()
		r.U32()
		r.U32()
		sx, sy := r.I16(), r.I16()
		dx, dy := r.I16(), r.I16()
		w, h := r.U16(), r.U16()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return display.CopyArea{Src: display.Rect{X: int(sx), Y: int(sy), W: int(w), H: int(h)}, DstX: int(dx), DstY: int(dy)}, nil
	case opPutImage:
		_ = aux
		r.U32()
		r.U32()
		w, h := r.U16(), r.U16()
		x, y := r.I16(), r.I16()
		r.U8()
		r.Skip(3)
		pix := r.Raw(int(w) * int(h))
		if err := r.Err(); err != nil {
			return nil, err
		}
		img := display.NewBitmap(int(w), int(h))
		copy(img.Pix, pix)
		return display.PutBitmap{X: int(x), Y: int(y), Img: img}, nil
	case opPolyText8:
		r.U32()
		r.U32()
		x, y := r.I16(), r.I16()
		color := r.U8()
		n := int(r.U8())
		r.Skip(2)
		text := r.Raw(n)
		if err := r.Err(); err != nil {
			return nil, err
		}
		return display.DrawText{X: int(x), Y: int(y), Text: string(text), Color: color}, nil
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", proto.ErrBadMessage, opcode)
	}
}

// EncodeInput implements proto.Client: each event is a fixed 32-byte X
// event; events gathered in one flush share one message (one write to the
// socket), matching how an X server flushes its event queue.
func (c *Client) EncodeInput(events []display.InputEvent) []proto.Message {
	if len(events) == 0 {
		return nil
	}
	w := proto.NewWriter(len(events) * EventSize)
	for _, ev := range events {
		c.seq++
		var typ, detail uint8
		var ex, ey int16
		switch e := ev.(type) {
		case display.KeyEvent:
			typ = evKeyRelease
			if e.Down {
				typ = evKeyPress
			}
			detail = uint8(e.Code)
		case display.MouseButton:
			typ = evButtonRelease
			if e.Down {
				typ = evButtonPress
			}
			detail = e.Button
		case display.MouseMove:
			typ = evMotionNotify
			ex, ey = int16(e.X), int16(e.Y)
		default:
			panic(fmt.Sprintf("xwire: unsupported input event %T", ev))
		}
		w.U8(typ).U8(detail).U16(c.seq)
		w.U32(0)          // timestamp
		w.U32(0x25)       // root window
		w.U32(drawableID) // event window
		w.U32(0)          // child
		w.I16(ex).I16(ey) // root coords
		w.I16(ex).I16(ey) // event coords
		w.U16(0)          // modifier state
		w.U8(1).U8(0)     // same-screen + pad
	}
	return []proto.Message{{Channel: proto.Input, Kind: "Events", Payload: w.Bytes()}}
}

// SetupMessages builds the connection establishment exchange. Component
// sizes follow a typical X11 handshake at the paper's vintage: the client's
// 48-byte connection request; the server's setup reply carrying vendor
// info, pixmap formats, visuals, and the keymap; then the application's
// font queries, atom interning, and window creation. The total matches the
// paper's measured 16,312 bytes for Linux/X session setup.
func SetupMessages() []proto.Message {
	block := func(kind string, ch proto.Channel, n int) proto.Message {
		w := proto.NewWriter(n)
		w.U8(1).U8(0).U16(uint16(n))
		w.Zero(n - 4)
		return proto.Message{Channel: ch, Kind: kind, Payload: w.Bytes()}
	}
	return []proto.Message{
		block("ConnRequest", proto.Input, 48),
		block("SetupReply", proto.Display, 8008),
		block("QueryFontReply", proto.Display, 3012),
		block("QueryFontReply", proto.Display, 3012),
		block("InternAtoms", proto.Input, 1024),
		block("CreateWindow+Map", proto.Input, 1208),
	}
}

// Compile-time interface conformance.
var (
	_ proto.Server = (*Server)(nil)
	_ proto.Client = (*Client)(nil)
)
